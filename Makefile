# Targets mirror .github/workflows/ci.yml job for job so local runs and CI
# stay in lockstep.

GO ?= go

.PHONY: all build lint docs-lint test race cover fuzz bench serve-demo zoo-demo chaos-demo torture-demo shard-demo ci

all: build

build:
	$(GO) build ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

# Documentation gate, matching the CI "docs-lint" job: every internal
# package needs a package comment, the substrate packages (federated,
# sparse, matrix, parallel) need docs on every exported identifier
# (cmd/docslint), ARCHITECTURE.md must exist and be linked from README.
docs-lint:
	$(GO) run ./cmd/docslint
	@test -f ARCHITECTURE.md || { echo "ARCHITECTURE.md missing" >&2; exit 1; }
	@grep -q 'ARCHITECTURE.md' README.md || { echo "README.md must link ARCHITECTURE.md" >&2; exit 1; }

test:
	$(GO) test ./...

# Race-detector coverage of the concurrent paths (worker pool, federated
# fan-out incl. fault injection, chaos scenarios, AdaFGL Step-2 fan-out,
# parallel kernels, serving batcher, model registry swap/acquire, partition
# determinism across worker counts, sharded routing fan-out, telemetry
# instruments under concurrent mutation), matching the CI "race" job.
race:
	$(GO) test -race ./internal/parallel/... ./internal/federated/... ./internal/scenario/... ./internal/core/... ./internal/matrix/... ./internal/sparse/... ./internal/checkpoint/... ./internal/serve/... ./internal/registry/... ./internal/partition/... ./internal/shard/... ./internal/telemetry/...

# Coverage floor on the numeric kernel, federation, serving, sharding and
# telemetry packages, matching the CI "coverage" job: internal/matrix +
# internal/sparse + internal/federated + internal/scenario + internal/serve +
# internal/registry + internal/partition + internal/shard +
# internal/telemetry must stay at >= 90% statements.
cover:
	@$(GO) test -coverprofile=cover.out ./internal/matrix ./internal/sparse ./internal/federated ./internal/scenario ./internal/serve ./internal/registry ./internal/partition ./internal/shard ./internal/telemetry
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "kernel coverage: $$total%"; \
	awk -v t="$$total" 'BEGIN { exit (t+0 < 90) ? 1 : 0 }' || \
		{ echo "coverage $$total% below the 90% floor" >&2; exit 1; }

# Bounded fuzz pass over the CSR construction, SpMM equivalence, checkpoint
# round-trip, chaos scenario-spec and shard-plan round-trip targets, matching
# the CI "fuzz" job (seed corpora in the packages' testdata/fuzz directories).
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzCSRFromEdges$$' -fuzztime=15s ./internal/sparse
	$(GO) test -run='^$$' -fuzz='^FuzzSpMMEquivalence$$' -fuzztime=15s ./internal/sparse
	$(GO) test -run='^$$' -fuzz='^FuzzCheckpointRoundTrip$$' -fuzztime=15s ./internal/checkpoint
	$(GO) test -run='^$$' -fuzz='^FuzzScenarioConfig$$' -fuzztime=15s ./internal/scenario
	$(GO) test -run='^$$' -fuzz='^FuzzShardRoundTrip$$' -fuzztime=15s ./internal/shard

# Smoke bench: every benchmark once, output preserved as the BENCH artifact
# in both raw (bench-smoke.txt) and machine-readable (BENCH_smoke.json, via
# cmd/benchjson) form. File-then-cat instead of tee so a failing benchmark
# fails the target.
bench:
	@$(GO) test -bench=. -benchtime=1x -run='^$$' ./... > bench-smoke.txt 2>&1; \
	status=$$?; cat bench-smoke.txt; \
	$(GO) run ./cmd/benchjson -in bench-smoke.txt -out BENCH_smoke.json || status=1; \
	exit $$status

# Field check of the serving subsystem: train at quickstart scale,
# checkpoint, rebuild the server from the file and fire 1000 concurrent HTTP
# queries, each cross-checked bit-for-bit against the in-process API.
serve-demo:
	$(GO) run ./examples/serve-demo

# Field check of the multi-model registry: train a version line plus AdaFGL,
# scan the artifacts into the registry, tour the v1 API, hot-swap the active
# version under concurrent load (bit-exact answers enforced) and run a live
# baseline-vs-AdaFGL A/B split.
zoo-demo:
	$(GO) run ./examples/model-zoo

# Field check of the fault-injection layer: one failure scenario from the
# chaos registry run with AdaFGL and a FedGCN reference, under FedAvg and a
# robust aggregator, against the fault-free baseline.
chaos-demo:
	$(GO) run ./examples/chaos

# Field check of the serving resilience layer: the four torture scenarios
# (overload, slowmodel, panic, corrupt) against a live loopback HTTP server,
# each enforcing the no-drop / exactly-once / Retry-After / bit-identity /
# post-storm-recovery invariants.
torture-demo:
	$(GO) run ./cmd/adafgl-bench -exp torture

# Field check of the sharding layer at full scale: stream a million-node
# graph into 1..8 shards, proving per-shard memory and fleet propagation
# time scale ~linearly with the shard count and that sharded predictions
# stay bit-identical to the unsharded server (overlap-scale cross-check).
shard-demo:
	$(GO) run ./cmd/adafgl-bench -exp shard

ci: build lint docs-lint test race cover fuzz bench
