package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/fgl"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/partition"
)

// Integration tests exercise the full cross-module pipeline:
// datasets → partition → federated/fgl/core → metrics.

func integrationScale() bench.Scale {
	return bench.Scale{Factor: 0.12, Clients: 4, Rounds: 10, LocalEpochs: 2, Runs: 1, AdaEpochs: 30, Correction: 5, Seed: 3}
}

func TestEndToEndPipelineCommunitySplit(t *testing.T) {
	s := integrationScale()
	subs, err := bench.MakeSplit("Cora", bench.Community, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	ada := core.New()
	ada.Opt.Epochs = 30
	cfg := models.DefaultConfig()
	cfg.Hidden = 16
	cfg.Dropout = 0
	fo := federated.DefaultOptions()
	fo.Rounds = 10
	fo.LocalEpochs = 2
	res, err := ada.Run(subs, cfg, fo)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAcc < 0.4 {
		t.Fatalf("end-to-end AdaFGL accuracy %.3f implausibly low", res.TestAcc)
	}
}

func TestHeadlineClaimMarginLargerUnderNonIID(t *testing.T) {
	// The abstract's claim: AdaFGL's margin over baselines is larger under
	// structure Non-iid than under community split. Verified as a shape
	// (margin difference, with generous slack for the small smoke scale).
	s := integrationScale()
	// Use a non-degenerate scale: with ~40-node clients the Step-2 modules
	// are data-starved and the claim is not meaningfully testable.
	s.Factor = 0.3
	s.Rounds = 15
	s.AdaEpochs = 50
	margin := func(kind bench.SplitKind) float64 {
		ada, err := bench.RunCell("Cora", kind, "AdaFGL", s)
		if err != nil {
			t.Fatal(err)
		}
		gcn, err := bench.RunCell("Cora", kind, "GCN", s)
		if err != nil {
			t.Fatal(err)
		}
		return ada.Mean - gcn.Mean
	}
	mComm := margin(bench.Community)
	mNI := margin(bench.NonIID)
	t.Logf("margin community %.3f, margin non-iid %.3f", mComm, mNI)
	if mNI < mComm-0.10 {
		t.Errorf("AdaFGL margin should not shrink drastically under structure Non-iid: %.3f vs %.3f", mNI, mComm)
	}
}

func TestHCSCorrelatesWithHomophilyAcrossClients(t *testing.T) {
	// Fig. 7 as a statistic: Pearson correlation between per-client HCS and
	// per-client edge homophily should be positive under structure Non-iid.
	spec, err := datasets.ByName("Cora")
	if err != nil {
		t.Fatal(err)
	}
	g := datasets.GenerateScaled(spec, 0.6, 17)
	cd := partition.StructureNonIIDSplit(g, 6, partition.DefaultNonIID(), rand.New(rand.NewSource(18)))
	cfg := models.DefaultConfig()
	cfg.Hidden = 16
	cfg.Dropout = 0
	fo := federated.DefaultOptions()
	fo.Rounds = 8
	fo.LocalEpochs = 2
	ada := core.New()
	ada.Opt.Epochs = 20
	if _, err := ada.Run(cd.Subgraphs, cfg, fo); err != nil {
		t.Fatal(err)
	}
	var hcs, homo []float64
	for _, r := range ada.Reports {
		hcs = append(hcs, r.HCS)
		homo = append(homo, r.EdgeHomophily)
	}
	r, err := metrics.Pearson(hcs, homo)
	if err != nil {
		t.Skipf("degenerate correlation inputs: %v", err)
	}
	t.Logf("Pearson(HCS, homophily) = %.3f", r)
	if r < 0 {
		t.Errorf("HCS anti-correlates with homophily: %.3f", r)
	}
}

func TestMetaInjectionHurtsMoreThanRandom(t *testing.T) {
	// Tables IV/V shape: meta-injection degrades every method at least as
	// much as random injection (within noise slack).
	s := integrationScale()
	for _, m := range []string{"FedSage+", "AdaFGL"} {
		r, err := bench.RunCell("Physics", bench.NonIID, m, s)
		if err != nil {
			t.Fatal(err)
		}
		mt, err := bench.RunCell("Physics", bench.NonIIDMeta, m, s)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: random %.3f meta %.3f", m, r.Mean, mt.Mean)
		if mt.Mean > r.Mean+0.08 {
			t.Errorf("%s: meta-injection should not help (random %.3f, meta %.3f)", m, r.Mean, mt.Mean)
		}
	}
}

func TestAllBaselinesProduceConsistentResultShapes(t *testing.T) {
	s := integrationScale()
	subs, err := bench.MakeSplit("Chameleon", bench.NonIID, s, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := models.DefaultConfig()
	cfg.Hidden = 16
	cfg.Dropout = 0
	fo := federated.DefaultOptions()
	fo.Rounds = 6
	fo.LocalEpochs = 1
	for _, name := range []string{"FedGL", "GCFL+", "FedSage+", "FED-PUB"} {
		m, err := fgl.MethodByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(cloneSubs(subs), cfg, fo)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.RoundAcc) != fo.Rounds {
			t.Errorf("%s: curve length %d != rounds %d", name, len(res.RoundAcc), fo.Rounds)
		}
		if len(res.PerClient) != len(subs) {
			t.Errorf("%s: per-client length %d != clients %d", name, len(res.PerClient), len(subs))
		}
		for _, a := range res.PerClient {
			if a < 0 || a > 1 {
				t.Errorf("%s: client accuracy %v outside [0,1]", name, a)
			}
		}
	}
}

func TestConfusionOnModelPredictions(t *testing.T) {
	// metrics × models: confusion-accuracy must equal models.Accuracy.
	spec, err := datasets.ByName("PubMed")
	if err != nil {
		t.Fatal(err)
	}
	g := datasets.GenerateScaled(spec, 0.1, 23)
	cfg := models.DefaultConfig()
	cfg.Hidden = 16
	cfg.Dropout = 0
	rng := rand.New(rand.NewSource(24))
	m := models.NewGCN(g, cfg, rng)
	opt := cfg.NewOptimizer()
	for e := 0; e < 30; e++ {
		models.TrainEpoch(m, opt, g.Labels, g.TrainMask)
	}
	logits := m.Logits(false)
	pred := matrix.ArgmaxRows(logits)
	conf := metrics.NewConfusion(g.Classes)
	if err := conf.Add(g.Labels, pred, g.TestMask); err != nil {
		t.Fatal(err)
	}
	direct := models.AccuracyFromLogits(logits, g.Labels, g.TestMask)
	if diff := conf.Accuracy() - direct; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("confusion accuracy %.6f != direct %.6f", conf.Accuracy(), direct)
	}
	if f1 := conf.MacroF1(); f1 < 0 || f1 > 1 {
		t.Fatalf("MacroF1 %v outside [0,1]", f1)
	}
}

func cloneSubs(subs []*graph.Graph) []*graph.Graph {
	out := make([]*graph.Graph, len(subs))
	for i, g := range subs {
		out[i] = g.Clone()
	}
	return out
}
