// Package repro_test hosts the top-level benchmark suite: one testing.B
// benchmark per table and figure of the AdaFGL paper, each regenerating the
// corresponding experiment at smoke scale through the bench harness, plus
// micro-benchmarks of the hot substrate paths. Run with
//
//	go test -bench=. -benchmem
//
// and use cmd/adafgl-bench for full-scale regeneration with printed tables.
package repro_test

import (
	"testing"

	"repro/internal/bench"
)

// benchScale keeps testing.B iterations affordable while exercising the
// complete pipeline of every experiment.
func benchScale() bench.Scale {
	return bench.Scale{
		Factor: 0.08, Clients: 3, Rounds: 5, LocalEpochs: 1,
		Runs: 1, AdaEpochs: 10, Correction: 3, Seed: 1,
	}
}

func runExp(b *testing.B, id string) {
	b.Helper()
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunExperiment(id, s); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkTable1DatasetStats(b *testing.B)        { runExp(b, "table1") }
func BenchmarkTable2Transductive(b *testing.B)        { runExp(b, "table2") }
func BenchmarkTable3Inductive(b *testing.B)           { runExp(b, "table3") }
func BenchmarkTable4TransductiveInject(b *testing.B)  { runExp(b, "table4") }
func BenchmarkTable5InductiveInject(b *testing.B)     { runExp(b, "table5") }
func BenchmarkTable6AblationHomophilous(b *testing.B) { runExp(b, "table6") }
func BenchmarkTable7AblationHeterophilous(b *testing.B) {
	runExp(b, "table7")
}
func BenchmarkTable8ParadigmComparison(b *testing.B) { runExp(b, "table8") }
func BenchmarkFig2EmpiricalAnalysis(b *testing.B)    { runExp(b, "fig2") }
func BenchmarkFig5TopologyHeterogeneity(b *testing.B) {
	runExp(b, "fig5")
}
func BenchmarkFig6Sensitivity(b *testing.B)          { runExp(b, "fig6") }
func BenchmarkFig7ClientHCS(b *testing.B)            { runExp(b, "fig7") }
func BenchmarkFig8ConvergenceLarge(b *testing.B)     { runExp(b, "fig8") }
func BenchmarkFig9ConvergenceSmall(b *testing.B)     { runExp(b, "fig9") }
func BenchmarkFig10Sparsity(b *testing.B)            { runExp(b, "fig10") }
func BenchmarkFig11SparseParticipation(b *testing.B) { runExp(b, "fig11") }
