// Package repro_test hosts the top-level benchmark suite: one testing.B
// benchmark per table and figure of the AdaFGL paper, each regenerating the
// corresponding experiment at smoke scale through the bench harness, plus
// micro-benchmarks of the hot substrate paths. Run with
//
//	go test -bench=. -benchmem
//
// and use cmd/adafgl-bench for full-scale regeneration with printed tables.
package repro_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/checkpoint"
	"repro/internal/federated"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/sparse"
	"repro/internal/telemetry"

	"repro/internal/datasets"
)

// benchScale keeps testing.B iterations affordable while exercising the
// complete pipeline of every experiment.
func benchScale() bench.Scale {
	return bench.Scale{
		Factor: 0.08, Clients: 3, Rounds: 5, LocalEpochs: 1,
		Runs: 1, AdaEpochs: 10, Correction: 3, Seed: 1,
	}
}

func runExp(b *testing.B, id string) {
	b.Helper()
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunExperiment(id, s); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkTable1DatasetStats(b *testing.B)        { runExp(b, "table1") }
func BenchmarkTable2Transductive(b *testing.B)        { runExp(b, "table2") }
func BenchmarkTable3Inductive(b *testing.B)           { runExp(b, "table3") }
func BenchmarkTable4TransductiveInject(b *testing.B)  { runExp(b, "table4") }
func BenchmarkTable5InductiveInject(b *testing.B)     { runExp(b, "table5") }
func BenchmarkTable6AblationHomophilous(b *testing.B) { runExp(b, "table6") }
func BenchmarkTable7AblationHeterophilous(b *testing.B) {
	runExp(b, "table7")
}
func BenchmarkTable8ParadigmComparison(b *testing.B) { runExp(b, "table8") }
func BenchmarkFig2EmpiricalAnalysis(b *testing.B)    { runExp(b, "fig2") }
func BenchmarkFig5TopologyHeterogeneity(b *testing.B) {
	runExp(b, "fig5")
}
func BenchmarkFig6Sensitivity(b *testing.B)          { runExp(b, "fig6") }
func BenchmarkFig7ClientHCS(b *testing.B)            { runExp(b, "fig7") }
func BenchmarkFig8ConvergenceLarge(b *testing.B)     { runExp(b, "fig8") }
func BenchmarkFig9ConvergenceSmall(b *testing.B)     { runExp(b, "fig9") }
func BenchmarkFig10Sparsity(b *testing.B)            { runExp(b, "fig10") }
func BenchmarkFig11SparseParticipation(b *testing.B) { runExp(b, "fig11") }

// ---- BenchmarkParallel*: worker-count scaling of the hot substrate paths.
// Each benchmark runs the identical computation under workers=1 (serial
// baseline) and workers=GOMAXPROCS, so the speedup is directly readable from
// the trajectory; outputs are bit-identical by construction.

// workerCounts returns the sweep [1, GOMAXPROCS] (deduplicated on 1-core
// machines).
func workerCounts() []int {
	n := runtime.GOMAXPROCS(0)
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

// benchGraphCSR builds a smoke-scale normalized adjacency and feature matrix
// comparable to one federated client's propagation workload.
func benchGraphCSR(n, perRow, feats int) (*sparse.CSR, *matrix.Dense) {
	rng := rand.New(rand.NewSource(7))
	coords := make([]sparse.Coord, 0, n*perRow)
	for i := 0; i < n; i++ {
		for k := 0; k < perRow; k++ {
			coords = append(coords, sparse.Coord{Row: i, Col: rng.Intn(n), Val: 1})
		}
	}
	adj := sparse.FromCoords(n, n, coords).WithSelfLoops().Normalized(sparse.NormSym)
	x := matrix.New(n, feats)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return adj, x
}

// BenchmarkParallelSparsePropagation measures K-step normalized-adjacency
// feature smoothing (Eq. 7's hot loop) across worker counts.
func BenchmarkParallelSparsePropagation(b *testing.B) {
	adj, x := benchGraphCSR(20000, 10, 32)
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			orig := parallel.SetWorkers(w)
			defer parallel.SetWorkers(orig)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cur := x
				for k := 0; k < 3; k++ {
					cur = adj.MulDense(cur)
				}
			}
		})
	}
}

// BenchmarkParallelSpMV measures sparse mat-vec across worker counts.
func BenchmarkParallelSpMV(b *testing.B) {
	adj, _ := benchGraphCSR(50000, 10, 1)
	v := make([]float64, 50000)
	rng := rand.New(rand.NewSource(8))
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			orig := parallel.SetWorkers(w)
			defer parallel.SetWorkers(orig)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = adj.MulVec(v)
			}
		})
	}
}

// BenchmarkParallelGEMM measures dense matrix multiplication across worker
// counts at a size typical of a full-graph forward pass.
func BenchmarkParallelGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	a := matrix.New(1024, 256)
	c := matrix.New(256, 256)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			orig := parallel.SetWorkers(w)
			defer parallel.SetWorkers(orig)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = matrix.Mul(a, c)
			}
		})
	}
}

// BenchmarkGEMM sweeps the dense GEMM engine across matrix sizes, tile
// configurations and worker counts, with the naive kernel as baseline, so
// the CI smoke-bench artifact tracks the blocked path's speedup. Outputs are
// bit-identical across worker counts and within 1e-12 of naive across tile
// sizes (enforced by the property suite in internal/matrix).
func BenchmarkGEMM(b *testing.B) {
	tilings := []string{"default", "32,128,64", "128,512,256"}
	for _, n := range []int{128, 256, 512} {
		x := matrix.New(n, n)
		y := matrix.New(n, n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		for i := range y.Data {
			y.Data[i] = rng.NormFloat64()
		}
		for _, w := range workerCounts() {
			b.Run(fmt.Sprintf("n=%d/path=naive/workers=%d", n, w), func(b *testing.B) {
				orig := parallel.SetWorkers(w)
				defer parallel.SetWorkers(orig)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = matrix.MulNaive(x, y)
				}
			})
			for _, spec := range tilings {
				tile := matrix.DefaultTiling()
				if spec != "default" {
					var err error
					if tile, err = matrix.ParseTiling(spec); err != nil {
						b.Fatal(err)
					}
				}
				b.Run(fmt.Sprintf("n=%d/path=blocked/tiles=%s/workers=%d", n, spec, w), func(b *testing.B) {
					orig := parallel.SetWorkers(w)
					defer parallel.SetWorkers(orig)
					origTile := matrix.SetTiling(tile)
					defer matrix.SetTiling(origTile)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						_ = matrix.Mul(x, y)
					}
				})
			}
		}
	}
}

// BenchmarkSpMM sweeps the blocked SpMM engine across graph sizes, densities
// and worker counts, with the row-streamed kernel as baseline, so the CI
// smoke-bench artifact tracks the blocked path's speedup alongside the GEMM
// trajectory. path=blocked is the one-shot dispatch (panel reorganisation
// per call); path=plan reuses one prebuilt sparse.Plan, the propagation-loop
// pattern. All three paths are bit-identical for every worker count
// (enforced by the property suite in internal/sparse).
func BenchmarkSpMM(b *testing.B) {
	const cols = 64
	for _, n := range []int{5000, 50000} {
		for _, deg := range []int{5, 20} {
			adj, x := benchGraphCSR(n, deg, cols)
			plan := sparse.NewPlan(adj)
			for _, w := range workerCounts() {
				paths := []struct {
					name string
					run  func()
				}{
					{"rowstream", func() { _ = adj.MulDenseNaive(x) }},
					{"blocked", func() { _ = adj.MulDense(x) }},
					{"plan", func() { _ = plan.MulDense(x) }},
				}
				for _, p := range paths {
					b.Run(fmt.Sprintf("n=%d/deg=%d/cols=%d/path=%s/workers=%d", n, deg, cols, p.name, w), func(b *testing.B) {
						orig := parallel.SetWorkers(w)
						defer parallel.SetWorkers(orig)
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							p.run()
						}
					})
				}
			}
		}
	}
}

// BenchmarkSpMMPlanReuse contrasts k-step propagation with and without a
// reusable plan at the engine's acceptance configuration (50k nodes, average
// degree 20, 64-column operand, 8 steps): path=rebuild pays the dispatch
// path's per-product reorganisation, path=plan builds the layout once.
func BenchmarkSpMMPlanReuse(b *testing.B) {
	const steps = 8
	adj, x := benchGraphCSR(50000, 20, 64)
	scratch := matrix.New(50000, 64)
	b.Run("steps=8/path=rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cur := x
			for k := 0; k < steps; k++ {
				cur = adj.MulDense(cur)
			}
		}
	})
	b.Run("steps=8/path=plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan := sparse.NewPlan(adj)
			plan.PropagateInto(x.Clone(), scratch, steps)
		}
	})
}

// BenchmarkFedAsyncRound sweeps the asynchronous aggregation engine across
// commit thresholds (K=1 committing on every arrival, K=N/2 buffered, K=N
// the full synchronous barrier) and worker counts under a 4x-straggler speed
// model, so the smoke-bench artifact tracks the engine-machinery overhead of
// the virtual-clock scheduler alongside the synchronous baseline
// (BenchmarkParallelFederatedRound). Results are bit-identical across worker
// counts for every K (enforced by internal/federated's async suite).
func BenchmarkFedAsyncRound(b *testing.B) {
	spec, err := datasets.ByName("Cora")
	if err != nil {
		b.Fatal(err)
	}
	const clients = 8
	speed := &federated.SpeedModel{Slowdown: []float64{4}, Jitter: 0.05, Seed: 1}
	for _, k := range []int{1, clients / 2, clients} {
		for _, w := range workerCounts() {
			b.Run(fmt.Sprintf("K=%d/workers=%d", k, w), func(b *testing.B) {
				orig := parallel.SetWorkers(w)
				defer parallel.SetWorkers(orig)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					g := datasets.GenerateScaled(spec, 0.3, 5)
					cd := partition.CommunitySplit(g, clients, rand.New(rand.NewSource(5)))
					cfg := models.DefaultConfig()
					cfg.Hidden = 32
					fleet := federated.BuildClients(cd.Subgraphs, models.Registry["GCN"], cfg, 5)
					o := federated.DefaultOptions()
					o.Rounds = 2
					o.LocalEpochs = 3
					o.Async = federated.AsyncOptions{Enabled: true, MinUpdates: k, Speed: speed}
					b.StartTimer()
					if _, err := federated.Run(fleet, 6, o); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkParallelFederatedRound measures one FedAvg round with concurrent
// per-client local training across worker counts.
func BenchmarkParallelFederatedRound(b *testing.B) {
	spec, err := datasets.ByName("Cora")
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			orig := parallel.SetWorkers(w)
			defer parallel.SetWorkers(orig)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := datasets.GenerateScaled(spec, 0.3, 5)
				cd := partition.CommunitySplit(g, 8, rand.New(rand.NewSource(5)))
				cfg := models.DefaultConfig()
				cfg.Hidden = 32
				clients := federated.BuildClients(cd.Subgraphs, models.Registry["GCN"], cfg, 5)
				srv := federated.NewServer(clients, 6)
				o := federated.DefaultOptions()
				o.Rounds = 1
				o.LocalEpochs = 3
				b.StartTimer()
				if _, err := srv.Run(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardScale sweeps the sharded graph engine across shard counts on
// one streamed graph: each op is a full 2-hop sharded propagation (every
// shard's SpMM plus the halo exchanges between hops). The custom metrics
// carry the fleet story into the smoke-bench artifact: max-shard-bytes is the
// per-process memory a shard-per-process fleet provisions — it should fall
// ~linearly with the shard count — and halo-cols counts the replicated
// boundary columns that bound the exchange traffic. path=shard2/shard4 group
// against the path=whole single-shard baseline, so BENCH_smoke.json tracks
// the serial overhead sharding adds on one machine (the fleet speedup is
// measured by `adafgl-bench -exp shard`, where shards run concurrently).
func BenchmarkShardScale(b *testing.B) {
	const n, hops = 30000, 2
	spec := datasets.DefaultStream(n, 1)
	for _, shards := range []int{1, 2, 4} {
		p, err := shard.PlanFromStream(spec, shards, 1)
		if err != nil {
			b.Fatal(err)
		}
		sh, err := shard.BuildFromStream(spec, p, sparse.NormSym)
		if err != nil {
			b.Fatal(err)
		}
		halo := 0
		for _, one := range sh.Shards {
			halo += one.Halo()
		}
		// The shard count rides inside the path token so benchjson groups
		// every row under one (n, hops) key and computes speedups against
		// the path=whole baseline. No trailing -N: benchjson strips that as
		// a GOMAXPROCS suffix.
		path := fmt.Sprintf("shard%d", shards)
		if shards == 1 {
			path = "whole"
		}
		b.Run(fmt.Sprintf("n=%d/hops=%d/path=%s", n, hops, path), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sh.Embedding(hops, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sh.MaxShardBytes()), "max-shard-bytes")
			b.ReportMetric(float64(halo), "halo-cols")
		})
	}
}

// BenchmarkObsOverhead tracks the hot-path cost of the telemetry layer in the
// smoke-bench artifact: one op is a full DefaultMaxBatch-node window Predict
// against a live SGC server — the cheapest per-window engine, hence the most
// overhead-sensitive — run with the instruments disabled (path=notelemetry,
// the baseline benchjson groups against) and fully enabled (path=telemetry).
// The enabled row's speedup in BENCH_smoke.json is its fraction of baseline
// throughput; drifting below ~0.97 means the instruments grew past the 3%
// budget `adafgl-bench -exp obs` enforces. The engine runs single-worker so
// pool-scheduling noise cannot drown the nanosecond-scale instrument costs.
func BenchmarkObsOverhead(b *testing.B) {
	spec, err := datasets.ByName("Cora")
	if err != nil {
		b.Fatal(err)
	}
	g := datasets.GenerateScaled(spec, 0.5, 7)
	cd := partition.CommunitySplit(g, 5, rand.New(rand.NewSource(7)))
	cfg := models.DefaultConfig()
	clients := federated.BuildClients(cd.Subgraphs, models.Registry["SGC"], cfg, 7)
	o := federated.DefaultOptions()
	o.Rounds = 3
	res, err := federated.Run(clients, 8, o)
	if err != nil {
		b.Fatal(err)
	}
	ck, err := checkpoint.FromResult(res, "SGC", cfg, g)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := serve.New(ck, serve.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	span := serve.DefaultMaxBatch
	if span > srv.Nodes() {
		span = srv.Nodes()
	}
	nodes := make([]int, span)
	origWorkers := parallel.SetWorkers(1)
	defer parallel.SetWorkers(origWorkers)
	for _, mode := range []struct {
		path string
		on   bool
	}{{"notelemetry", false}, {"telemetry", true}} {
		b.Run(fmt.Sprintf("arch=SGC/window=%d/path=%s", span, mode.path), func(b *testing.B) {
			telemetry.SetEnabled(mode.on)
			defer telemetry.SetEnabled(true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range nodes {
					nodes[j] = (i*span + j) % srv.Nodes()
				}
				if _, err := srv.Predict(nodes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
