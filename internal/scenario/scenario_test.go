package scenario

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/federated"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/parallel"
)

// tinyFleet builds n small deterministic labeled ring subgraphs (10 nodes, 4
// features correlated with 2 classes) — enough structure for one real
// federated round in well under a millisecond.
func tinyFleet(n int) []*graph.Graph {
	subs := make([]*graph.Graph, n)
	for i := 0; i < n; i++ {
		const nodes = 10
		rng := rand.New(rand.NewSource(int64(100 + i)))
		x := matrix.New(nodes, 4)
		labels := make([]int, nodes)
		edges := make([][2]int, 0, nodes)
		for v := 0; v < nodes; v++ {
			labels[v] = v % 2
			for f := 0; f < 4; f++ {
				x.Data[v*4+f] = 0.1*rng.NormFloat64() + float64(labels[v])*float64(f%2)
			}
			edges = append(edges, [2]int{v, (v + 1) % nodes})
		}
		g := graph.New(nodes, edges, x, labels, 2)
		for v := 0; v < nodes; v++ {
			if v < 6 {
				g.TrainMask[v] = true
			} else {
				g.TestMask[v] = true
			}
		}
		subs[i] = g
	}
	return subs
}

func tinyConfig() models.Config {
	return models.Config{Hidden: 4, Dropout: 0, Hops: 2, Alpha: 0.1, LR: 0.05}
}

func baseOpts() federated.Options {
	o := federated.DefaultOptions()
	o.Rounds = 3
	o.LocalEpochs = 1
	o.Seed = 1
	return o
}

// runScenario applies spec to a fresh tiny fleet and runs it end to end.
func runScenario(t *testing.T, specStr string, workers int) *federated.Result {
	t.Helper()
	old := parallel.Workers()
	parallel.SetWorkers(workers)
	defer parallel.SetWorkers(old)
	sc, err := Parse(specStr)
	if err != nil {
		t.Fatal(err)
	}
	subs := tinyFleet(4)
	opt := baseOpts()
	if err := sc.Apply(subs, &opt); err != nil {
		t.Fatal(err)
	}
	clients := federated.BuildClients(subs, models.Registry["GCN"], tinyConfig(), 7)
	res, err := federated.Run(clients, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNamesAndSpecRoundTrip(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("registry shrank: %v", names)
	}
	for _, name := range names {
		sc, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		back, err := Parse(sc.Spec())
		if err != nil {
			t.Fatalf("Spec round-trip of %q (%q): %v", name, sc.Spec(), err)
		}
		if back.Name != sc.Name || !reflect.DeepEqual(back.Params, sc.Params) {
			t.Fatalf("Spec round-trip drifted: %+v vs %+v", back, sc)
		}
		if sc.Title == "" {
			t.Fatalf("%s has no title", name)
		}
	}
}

func TestParseOverridesAndErrors(t *testing.T) {
	sc, err := Parse("churn:leave=2,joinat=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Params["leave"] != 2 || sc.Params["joinat"] != 0.1 || sc.Params["join"] != 1 {
		t.Fatalf("override/default mix wrong: %v", sc.Params)
	}
	for _, bad := range []string{
		"nope", "churn:bogus=1", "churn:leave", "churn:=3",
		"churn:leave=abc", "churn:leave=NaN", "churn:leave=+Inf",
	} {
		if _, err := Parse(bad); err == nil || !strings.HasPrefix(err.Error(), "scenario:") {
			t.Fatalf("Parse(%q) must fail with a scenario: error, got %v", bad, err)
		}
	}
}

func TestApplyValidatesFleetAndParams(t *testing.T) {
	subs := tinyFleet(3)
	opt := baseOpts()
	cases := []struct {
		spec string
		subs []*graph.Graph
		opt  *federated.Options
	}{
		{"steady", nil, &opt},
		{"steady", subs, nil},
		{"churn:leave=2,join=1", subs, &opt},  // no stable client left
		{"churn:leave=1.5", subs, &opt},       // fractional count
		{"crashrejoin:clients=3", subs, &opt}, // must keep one survivor
		{"crashrejoin:at=2", subs, &opt},      // fraction out of range
		{"byz-signflip:m=3", subs, &opt},      // no honest majority anchor
		{"byz-labelflip:frac=1.5", subs, &opt},
		{"byz-scale:factor=-1", subs, &opt},
		{"waves:groups=5", subs, &opt}, // more groups than clients
		{"straggler:factor=0.5", subs, &opt},
	}
	for _, c := range cases {
		sc, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if err := sc.Apply(c.subs, c.opt); err == nil || !strings.HasPrefix(err.Error(), "scenario:") {
			t.Fatalf("Apply(%q) must fail with a scenario: error, got %v", c.spec, err)
		}
	}
	badRounds := baseOpts()
	badRounds.Rounds = 0
	sc, _ := Parse("steady")
	if err := sc.Apply(subs, &badRounds); err == nil || !strings.HasPrefix(err.Error(), "scenario:") {
		t.Fatalf("zero rounds must be rejected, got %v", err)
	}
}

func TestSteadyLeavesOptionsUntouched(t *testing.T) {
	sc, err := Parse("steady")
	if err != nil {
		t.Fatal(err)
	}
	subs := tinyFleet(2)
	opt := baseOpts()
	want := opt
	if err := sc.Apply(subs, &opt); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(opt, want) {
		t.Fatalf("steady must not touch options: %+v vs %+v", opt, want)
	}
}

// Every registered scenario must be bit-identical across re-runs and across
// worker counts at a fixed seed — the chaos determinism property, enforced
// under -race by the CI race job.
func TestEveryScenarioBitIdenticalAcrossWorkersAndReruns(t *testing.T) {
	for _, name := range Names() {
		ref := runScenario(t, name, 1)
		for run, workers := range map[string]int{"rerun@1": 1, "workers=3": 3, "workers=8": 8} {
			got := runScenario(t, name, workers)
			if len(got.GlobalParams) != len(ref.GlobalParams) {
				t.Fatalf("%s %s: dim drifted", name, run)
			}
			for i := range ref.GlobalParams {
				if got.GlobalParams[i] != ref.GlobalParams[i] {
					t.Fatalf("%s %s: GlobalParams[%d] %v != %v", name, run, i, got.GlobalParams[i], ref.GlobalParams[i])
				}
			}
			if !reflect.DeepEqual(got.RoundTime, ref.RoundTime) ||
				got.DispatchedUpdates != ref.DispatchedUpdates ||
				got.DroppedUpdates != ref.DroppedUpdates {
				t.Fatalf("%s %s: schedule or ledger drifted", name, run)
			}
		}
	}
}

func TestLabelFlipPoisonsOnlyAttackerTrainLabels(t *testing.T) {
	subs := tinyFleet(3)
	before := make([][]int, len(subs))
	for i, g := range subs {
		before[i] = append([]int(nil), g.Labels...)
	}
	sc, err := Parse("byz-labelflip:m=1,frac=1")
	if err != nil {
		t.Fatal(err)
	}
	opt := baseOpts()
	if err := sc.Apply(subs, &opt); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // honest clients untouched
		if !reflect.DeepEqual(subs[i].Labels, before[i]) {
			t.Fatalf("honest client %d labels mutated", i)
		}
	}
	g := subs[2]
	for v := 0; v < g.N; v++ {
		switch {
		case g.TrainMask[v]:
			if g.Labels[v] == before[2][v] {
				t.Fatalf("frac=1 must flip every train label, node %d unchanged", v)
			}
			if g.Labels[v] < 0 || g.Labels[v] >= g.Classes {
				t.Fatalf("flipped label out of range: %d", g.Labels[v])
			}
		default:
			if g.Labels[v] != before[2][v] {
				t.Fatalf("non-train label %d mutated", v)
			}
		}
	}
	// Label flipping must not switch the engine: steady data poisoning.
	if opt.Async.Enabled {
		t.Fatal("byz-labelflip is data-level; it must not force the async engine")
	}
}

func TestChurnScheduleShape(t *testing.T) {
	subs := tinyFleet(4)
	opt := baseOpts()
	sc, err := Parse("churn:leave=1,join=2,leaveat=0.5,joinat=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Apply(subs, &opt); err != nil {
		t.Fatal(err)
	}
	f := opt.Async.Faults
	if !opt.Async.Enabled {
		t.Fatal("churn must run on the async engine")
	}
	if !reflect.DeepEqual(f.DownAtStart, []int{0, 1}) {
		t.Fatalf("joiners must start down: %v", f.DownAtStart)
	}
	if len(f.Events) != 3 {
		t.Fatalf("want 2 joins + 1 leave, got %v", f.Events)
	}
	h := horizon(subs, &opt)
	for _, ev := range f.Events {
		if ev.Time < 0 || ev.Time > h {
			t.Fatalf("event outside horizon: %+v (h=%v)", ev, h)
		}
	}
}

// The crash-rejoin scenario must actually lose in-flight work and still
// finish every round with the rejoined client participating again.
func TestCrashRejoinDropsAndRecovers(t *testing.T) {
	res := runScenario(t, "crashrejoin:clients=1,at=0.3,down=0.3", 4)
	if res.DroppedUpdates < 1 {
		t.Fatalf("crash must drop in-flight work, dropped = %d", res.DroppedUpdates)
	}
	if res.DispatchedUpdates != res.CommittedUpdates+res.DroppedUpdates+res.StragglerUpdates {
		t.Fatal("data-mass ledger out of balance")
	}
	if len(res.RoundAcc) != 3 {
		t.Fatalf("fleet survives a single crash, want 3 commits, got %d", len(res.RoundAcc))
	}
}

// Waves must keep committing while groups alternate, and the ledger still
// balances.
func TestWavesRunAndBalance(t *testing.T) {
	res := runScenario(t, "waves:groups=2,period=1", 2)
	if len(res.RoundAcc) == 0 {
		t.Fatal("waves committed nothing")
	}
	if res.DispatchedUpdates != res.CommittedUpdates+res.DroppedUpdates+res.StragglerUpdates {
		t.Fatal("data-mass ledger out of balance")
	}
}
