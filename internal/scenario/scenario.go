// Package scenario is the registry of named, seeded, reproducible
// federation failure scenarios: steady operation, client churn with
// mid-training joins and leaves, scheduled participation waves,
// crash-and-rejoin with stale parameters, straggler skew, and byzantine
// arms with label-flip / sign-flip / scaled-update attackers. A scenario
// compiles a textual spec ("churn:leave=2,leaveat=0.4") into a fault
// schedule on the async engine's virtual clock (federated.Faults) plus any
// data-level corruption (label flips on attacker subgraphs), so every
// scenario run is bit-reproducible for any worker count at a fixed seed.
// adafgl-bench's chaos experiment and examples/chaos both draw from this
// registry, mirroring how the paper's tables share one transductive /
// inductive / inject scenario split.
package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/federated"
	"repro/internal/graph"
)

// Scenario is one reproducible federation failure scenario: a name, a
// one-line description, resolved parameters (registry defaults overridden
// by the spec that built it) and a compiled Apply behaviour.
type Scenario struct {
	// Name is the registry key ("steady", "churn", "byz-signflip", ...).
	Name string
	// Title is the one-line description tables and listings print.
	Title string
	// Params holds the scenario's resolved numeric parameters.
	Params map[string]float64

	apply func(s *Scenario, subs []*graph.Graph, opt *federated.Options) error
}

// spec is one registry entry: the blueprint a Scenario is instantiated from.
type spec struct {
	name     string
	title    string
	defaults map[string]float64
	apply    func(s *Scenario, subs []*graph.Graph, opt *federated.Options) error
}

// registry lists every scenario in presentation order.
var registry = []spec{
	{
		name:     "steady",
		title:    "fault-free reference (engine untouched)",
		defaults: map[string]float64{},
		apply: func(s *Scenario, subs []*graph.Graph, opt *federated.Options) error {
			return nil
		},
	},
	{
		name:  "straggler",
		title: "straggler skew: slow clients stretch the commit schedule",
		// factor multiplies the stragglers' simulated durations; clients is
		// how many clients (the highest indices) straggle.
		defaults: map[string]float64{"factor": 4, "clients": 1},
		apply:    applyStraggler,
	},
	{
		name:  "churn",
		title: "mid-training churn: clients leave, late clients join",
		// leave clients (highest indices) leave at leaveat×horizon; join
		// clients (lowest indices) start down and join at joinat×horizon.
		defaults: map[string]float64{"leave": 1, "leaveat": 0.5, "join": 1, "joinat": 0.25},
		apply:    applyChurn,
	},
	{
		name:  "waves",
		title: "scheduled participation waves: groups alternate on a fixed period",
		// groups round-robin partitions the fleet; each wave lasts period
		// nominal rounds with exactly one group up.
		defaults: map[string]float64{"groups": 2, "period": 2},
		apply:    applyWaves,
	},
	{
		name:  "crashrejoin",
		title: "crash and rejoin: clients crash mid-flight, rejoin with stale params",
		// clients crash (highest indices) at at×horizon and rejoin after
		// down×horizon more, resuming from the broadcast they last held.
		defaults: map[string]float64{"clients": 1, "at": 0.25, "down": 0.35},
		apply:    applyCrashRejoin,
	},
	{
		name:  "byz-labelflip",
		title: "byzantine data poisoning: m clients train on flipped labels",
		// m attacker clients (highest indices) have frac of their training
		// labels deterministically flipped to a different class.
		defaults: map[string]float64{"m": 1, "frac": 1},
		apply:    applyLabelFlip,
	},
	{
		name:  "byz-signflip",
		title: "byzantine sign-flip: m clients upload negated update deltas",
		// m attacker clients (highest indices) upload base − (local − base).
		defaults: map[string]float64{"m": 1},
		apply:    applySignFlip,
	},
	{
		name:  "byz-scale",
		title: "byzantine scaled update: m clients blow their deltas up by factor",
		// m attacker clients (highest indices) upload base + factor·delta.
		defaults: map[string]float64{"m": 1, "factor": 10},
		apply:    applyScale,
	},
}

// Names returns every registered scenario name in presentation order.
func Names() []string {
	out := make([]string, len(registry))
	for i, sp := range registry {
		out[i] = sp.name
	}
	return out
}

// Parse compiles a scenario spec of the form "name" or
// "name:key=val,key=val" against the registry, applying parameter overrides
// to the scenario's defaults. Unknown names, unknown keys and malformed or
// non-finite values fail with "scenario:"-prefixed errors.
func Parse(specStr string) (*Scenario, error) {
	name, args, hasArgs := strings.Cut(specStr, ":")
	var entry *spec
	for i := range registry {
		if registry[i].name == name {
			entry = &registry[i]
			break
		}
	}
	if entry == nil {
		return nil, fmt.Errorf("scenario: unknown scenario %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	s := &Scenario{
		Name:   entry.name,
		Title:  entry.title,
		Params: make(map[string]float64, len(entry.defaults)),
		apply:  entry.apply,
	}
	for k, v := range entry.defaults {
		s.Params[k] = v
	}
	if hasArgs && args != "" {
		for _, kv := range strings.Split(args, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok || key == "" {
				return nil, fmt.Errorf("scenario: %s: malformed parameter %q (want key=value)", name, kv)
			}
			if _, known := entry.defaults[key]; !known {
				return nil, fmt.Errorf("scenario: %s: unknown parameter %q (known: %s)", name, key, paramNames(entry.defaults))
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("scenario: %s: parameter %s=%q is not a finite number", name, key, val)
			}
			s.Params[key] = f
		}
	}
	return s, nil
}

// paramNames lists a default set's keys sorted, for error messages.
func paramNames(defaults map[string]float64) string {
	keys := make([]string, 0, len(defaults))
	for k := range defaults {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// Spec renders the scenario back to its canonical "name:key=val,..." form
// (parameters sorted by key); parameter-free scenarios render as the bare
// name.
func (s *Scenario) Spec() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, s.Params[k])
	}
	return s.Name + ":" + strings.Join(parts, ",")
}

// Apply configures opt (and, for data-poisoning scenarios, the subgraphs in
// place) to run this scenario over the given fleet. Scenarios that inject
// faults or speed skew switch opt.Async on — their schedules live on the
// async engine's virtual clock — while "steady" leaves opt untouched so the
// caller's engine choice stands. Event times are laid out in units of the
// fleet's nominal commit period (LocalEpochs × slowest client's train size),
// making one spec reproducible across dataset scales. Apply validates its
// parameters against the fleet and fails with "scenario:"-prefixed errors;
// on error opt and the subgraphs are unchanged.
func (s *Scenario) Apply(subs []*graph.Graph, opt *federated.Options) error {
	if len(subs) == 0 {
		return fmt.Errorf("scenario: %s: empty fleet", s.Name)
	}
	if opt == nil {
		return fmt.Errorf("scenario: %s: nil options", s.Name)
	}
	if opt.Rounds < 1 {
		return fmt.Errorf("scenario: %s: options need Rounds >= 1, got %d", s.Name, opt.Rounds)
	}
	return s.apply(s, subs, opt)
}

// intParam resolves an integral parameter in [lo, hi], rejecting fractional
// or out-of-range values.
func (s *Scenario) intParam(key string, lo, hi int) (int, error) {
	v := s.Params[key]
	if v != math.Trunc(v) {
		return 0, fmt.Errorf("scenario: %s: parameter %s=%v must be an integer", s.Name, key, v)
	}
	n := int(v)
	if n < lo || n > hi {
		return 0, fmt.Errorf("scenario: %s: parameter %s=%d outside [%d, %d]", s.Name, key, n, lo, hi)
	}
	return n, nil
}

// fracParam resolves a parameter constrained to [lo, hi].
func (s *Scenario) fracParam(key string, lo, hi float64) (float64, error) {
	v := s.Params[key]
	if !(v >= lo && v <= hi) {
		return 0, fmt.Errorf("scenario: %s: parameter %s=%v outside [%v, %v]", s.Name, key, v, lo, hi)
	}
	return v, nil
}

// commitPeriod estimates the fleet's nominal commit period — LocalEpochs ×
// the slowest client's labeled-node count, the exact duration model the
// virtual clock charges at nominal speed — with a floor of 1 time unit so
// zero-epoch runs still order events sanely.
func commitPeriod(subs []*graph.Graph, opt *federated.Options) float64 {
	maxW := 1
	for _, g := range subs {
		if w := graph.CountMask(g.TrainMask); w > maxW {
			maxW = w
		}
	}
	epochs := opt.LocalEpochs
	if epochs < 1 {
		epochs = 1
	}
	return float64(epochs * maxW)
}

// horizon is the run's nominal virtual duration: Rounds commit periods.
func horizon(subs []*graph.Graph, opt *federated.Options) float64 {
	return float64(opt.Rounds) * commitPeriod(subs, opt)
}

func applyStraggler(s *Scenario, subs []*graph.Graph, opt *federated.Options) error {
	n := len(subs)
	count, err := s.intParam("clients", 1, n)
	if err != nil {
		return err
	}
	factor, err := s.fracParam("factor", 1, 1e6)
	if err != nil {
		return err
	}
	slowdown := make([]float64, n)
	for i := range slowdown {
		slowdown[i] = 1
	}
	for i := n - count; i < n; i++ {
		slowdown[i] = factor
	}
	opt.Async.Enabled = true
	opt.Async.Speed = &federated.SpeedModel{Slowdown: slowdown, Seed: opt.Seed}
	return nil
}

func applyChurn(s *Scenario, subs []*graph.Graph, opt *federated.Options) error {
	n := len(subs)
	leave, err := s.intParam("leave", 0, n)
	if err != nil {
		return err
	}
	join, err := s.intParam("join", 0, n)
	if err != nil {
		return err
	}
	if leave+join >= n {
		return fmt.Errorf("scenario: churn: leave=%d + join=%d must keep at least one stable client of %d", leave, join, n)
	}
	leaveAt, err := s.fracParam("leaveat", 0, 1)
	if err != nil {
		return err
	}
	joinAt, err := s.fracParam("joinat", 0, 1)
	if err != nil {
		return err
	}
	h := horizon(subs, opt)
	var f federated.Faults
	for i := 0; i < join; i++ {
		f.DownAtStart = append(f.DownAtStart, i)
		f.Events = append(f.Events, federated.FaultEvent{Time: joinAt * h, Client: i, Kind: federated.FaultJoin})
	}
	for i := n - leave; i < n; i++ {
		f.Events = append(f.Events, federated.FaultEvent{Time: leaveAt * h, Client: i, Kind: federated.FaultLeave})
	}
	opt.Async.Enabled = true
	opt.Async.Faults = f
	return nil
}

func applyWaves(s *Scenario, subs []*graph.Graph, opt *federated.Options) error {
	n := len(subs)
	groups, err := s.intParam("groups", 2, n)
	if err != nil {
		return err
	}
	period, err := s.fracParam("period", 0.25, 1e6)
	if err != nil {
		return err
	}
	group := func(ci int) int { return ci % groups }
	h := horizon(subs, opt)
	waveLen := period * commitPeriod(subs, opt)
	var f federated.Faults
	// Group 0 opens; everyone else waits for their wave.
	for ci := 0; ci < n; ci++ {
		if group(ci) != 0 {
			f.DownAtStart = append(f.DownAtStart, ci)
		}
	}
	up := 0 // the group currently up
	for wave := 1; float64(wave)*waveLen < h; wave++ {
		t := float64(wave) * waveLen
		next := wave % groups
		if next == up {
			continue
		}
		for ci := 0; ci < n; ci++ {
			switch group(ci) {
			case up:
				f.Events = append(f.Events, federated.FaultEvent{Time: t, Client: ci, Kind: federated.FaultLeave})
			case next:
				f.Events = append(f.Events, federated.FaultEvent{Time: t, Client: ci, Kind: federated.FaultJoin})
			}
		}
		up = next
	}
	opt.Async.Enabled = true
	opt.Async.Faults = f
	return nil
}

func applyCrashRejoin(s *Scenario, subs []*graph.Graph, opt *federated.Options) error {
	n := len(subs)
	count, err := s.intParam("clients", 1, n-1)
	if err != nil {
		return err
	}
	at, err := s.fracParam("at", 0, 1)
	if err != nil {
		return err
	}
	down, err := s.fracParam("down", 0, 1)
	if err != nil {
		return err
	}
	h := horizon(subs, opt)
	var f federated.Faults
	for i := n - count; i < n; i++ {
		f.Events = append(f.Events,
			federated.FaultEvent{Time: at * h, Client: i, Kind: federated.FaultCrash},
			federated.FaultEvent{Time: (at + down) * h, Client: i, Kind: federated.FaultJoin},
		)
	}
	opt.Async.Enabled = true
	opt.Async.Faults = f
	return nil
}

// attackerCount resolves the byzantine scenarios' m against the fleet,
// keeping an honest majority impossible to silence (m < n).
func (s *Scenario) attackerCount(n int) (int, error) {
	return s.intParam("m", 1, n-1)
}

func applyLabelFlip(s *Scenario, subs []*graph.Graph, opt *federated.Options) error {
	n := len(subs)
	m, err := s.attackerCount(n)
	if err != nil {
		return err
	}
	frac, err := s.fracParam("frac", 0, 1)
	if err != nil {
		return err
	}
	for i := n - m; i < n; i++ {
		g := subs[i]
		if g.Labels == nil || g.Classes < 2 {
			return fmt.Errorf("scenario: byz-labelflip: client %d needs labeled data with >= 2 classes", i)
		}
	}
	// Deterministic poisoning: one seeded stream per attacker, labels of
	// train-masked nodes flipped to a different class with probability frac.
	for i := n - m; i < n; i++ {
		g := subs[i]
		rng := rand.New(rand.NewSource(opt.Seed*1_000_003 + int64(i)*8191 + 17))
		for v := 0; v < g.N; v++ {
			if !g.TrainMask[v] {
				continue
			}
			if frac < 1 && rng.Float64() >= frac {
				continue
			}
			g.Labels[v] = (g.Labels[v] + 1 + rng.Intn(g.Classes-1)) % g.Classes
		}
	}
	return nil
}

// applyUploadAttack installs a from-the-start corrupt event on the last m
// clients.
func applyUploadAttack(s *Scenario, subs []*graph.Graph, opt *federated.Options, atk federated.Attack) error {
	n := len(subs)
	m, err := s.attackerCount(n)
	if err != nil {
		return err
	}
	var f federated.Faults
	for i := n - m; i < n; i++ {
		f.Events = append(f.Events, federated.FaultEvent{Time: 0, Client: i, Kind: federated.FaultCorrupt, Attack: atk})
	}
	opt.Async.Enabled = true
	opt.Async.Faults = f
	return nil
}

func applySignFlip(s *Scenario, subs []*graph.Graph, opt *federated.Options) error {
	return applyUploadAttack(s, subs, opt, federated.Attack{Kind: federated.AttackSignFlip})
}

func applyScale(s *Scenario, subs []*graph.Graph, opt *federated.Options) error {
	factor, err := s.fracParam("factor", 0, 1e6)
	if err != nil {
		return err
	}
	return applyUploadAttack(s, subs, opt, federated.Attack{Kind: federated.AttackScale, Factor: factor})
}
