package scenario

import (
	"strings"
	"testing"

	"repro/internal/federated"
	"repro/internal/models"
)

// FuzzScenarioConfig feeds arbitrary scenario specs through the full
// pipeline — parse, apply to a tiny fleet, run one federated round — and
// requires that nothing ever panics and every failure is a named-op error
// ("scenario:" or "federated:" prefixed). The checked-in corpus under
// testdata/fuzz/FuzzScenarioConfig seeds every registry scenario plus the
// interesting malformed shapes; CI runs this bounded (-fuzztime) on every
// push.
func FuzzScenarioConfig(f *testing.F) {
	for _, name := range Names() {
		f.Add(name)
	}
	f.Add("churn:leave=2,leaveat=0.9,join=1,joinat=0")
	f.Add("byz-scale:m=2,factor=1000")
	f.Add("waves:groups=3,period=0.5")
	f.Add("straggler:factor=1e6,clients=3")
	f.Add("crashrejoin:clients=2,at=0,down=1")
	f.Add("byz-labelflip:m=1,frac=0.5")
	f.Add("")
	f.Add("churn:")
	f.Add("churn:leave=-1")
	f.Add("steady:x=1")
	f.Add("byz-scale:factor=NaN")
	f.Add(":,=,:")
	f.Fuzz(func(t *testing.T, specStr string) {
		requireNamed := func(stage string, err error) {
			if !strings.HasPrefix(err.Error(), "scenario:") && !strings.HasPrefix(err.Error(), "federated:") {
				t.Fatalf("%s(%q): unnamed error %v", stage, specStr, err)
			}
		}
		sc, err := Parse(specStr)
		if err != nil {
			requireNamed("Parse", err)
			return
		}
		subs := tinyFleet(4)
		opt := baseOpts()
		opt.Rounds = 1
		if err := sc.Apply(subs, &opt); err != nil {
			requireNamed("Apply", err)
			return
		}
		clients := federated.BuildClients(subs, models.Registry["MLP"], tinyConfig(), 3)
		if _, err := federated.Run(clients, 4, opt); err != nil {
			requireNamed("Run", err)
		}
	})
}
