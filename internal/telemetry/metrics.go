package telemetry

import (
	"math"
	"sync/atomic"
)

// DefBuckets are the classic Prometheus default histogram bounds, suitable
// for second-scale request latencies.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// LatencyBuckets are fine-grained bounds for the microsecond-to-second
// latencies of the in-process serving path.
var LatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 10,
}

// Counter is a monotonically increasing count backed by a single atomic.
// The zero value is usable, but instruments should come from a Registry so
// they are scraped.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. It is a no-op while telemetry is disabled.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.n.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a settable value backed by an atomic float64-bit cell, or — when
// created via GaugeFunc — a callback evaluated at read time.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64
}

// Set stores v. It is a no-op while telemetry is disabled and on
// func-backed gauges.
func (g *Gauge) Set(v float64) {
	if g.fn != nil || !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (CAS loop). It is a no-op while telemetry is
// disabled and on func-backed gauges.
func (g *Gauge) Add(d float64) {
	if g.fn != nil || !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (the callback's result for func-backed
// gauges).
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: cumulative-on-read bucket
// counts and a running sum, all atomic. Bounds are the upper edges (le) in
// ascending order; an implicit +Inf bucket catches the tail. The total count
// is derived from the buckets at read time, keeping Observe at two atomic
// ops — it sits on the per-request serving hot path.
type Histogram struct {
	le      []float64
	buckets []atomic.Uint64 // len(le)+1; last is the +Inf overflow
	sumBits atomic.Uint64
}

func newHistogram(le []float64) *Histogram {
	return &Histogram{le: le, buckets: make([]atomic.Uint64, len(le)+1)}
}

// Observe records one sample. It is a no-op while telemetry is disabled.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := 0
	for i < len(h.le) && v > h.le[i] {
		i++
	}
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observed samples (the bucket total).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// cumulative returns the cumulative bucket counts (aligned with le, +Inf
// last) as required by the exposition format.
func (h *Histogram) cumulative() []uint64 {
	out := make([]uint64, len(h.buckets))
	var run uint64
	for i := range h.buckets {
		run += h.buckets[i].Load()
		out[i] = run
	}
	return out
}

// Counter registers (or returns) the unlabeled counter family name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return f.get("", func() any { return new(Counter) }).(*Counter)
}

// Gauge registers (or returns) the unlabeled gauge family name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return f.get("", func() any { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers an unlabeled gauge whose value is fn's result at
// scrape time (e.g. a queue depth or a runtime/metrics sample). Re-registering
// the same name keeps the first callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	f.get("", func() any { return &Gauge{fn: fn} })
}

// Histogram registers (or returns) the unlabeled histogram family name with
// the given bucket upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, KindHistogram, buckets, nil)
	return f.get("", func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec is a labeled counter family; With resolves one series.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) the labeled counter family name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, nil, labels)}
}

// With returns the series for the given label values (one per label name,
// in order), creating it on first use. Callers on hot paths should resolve
// series once and cache the pointer.
func (v *CounterVec) With(vals ...string) *Counter {
	v.f.checkArity(vals)
	return v.f.get(key(vals), func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a labeled gauge family; With resolves one series.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) the labeled gauge family name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, nil, labels)}
}

// With returns the series for the given label values, creating it on first
// use.
func (v *GaugeVec) With(vals ...string) *Gauge {
	v.f.checkArity(vals)
	return v.f.get(key(vals), func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a labeled histogram family; With resolves one series.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) the labeled histogram family name
// with the given bucket upper bounds (nil means DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.register(name, help, KindHistogram, buckets, labels)}
}

// With returns the series for the given label values, creating it on first
// use.
func (v *HistogramVec) With(vals ...string) *Histogram {
	v.f.checkArity(vals)
	return v.f.get(key(vals), func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}
