// Package telemetry is the unified observability plane of the AdaFGL
// reproduction: a process-wide, dependency-free metrics registry (atomic
// counters, gauges, bounded histograms, labeled families) with Prometheus
// text-format exposition, plus a lightweight span tracer that threads
// per-request trace IDs through context.Context and records sampled
// structured span events. Every runtime layer (serve, registry, shard,
// federated, parallel) instruments itself onto the Default registry; the
// serving binary exposes it as GET /v1/metrics and optionally wires
// net/http/pprof and runtime/metrics snapshots behind -pprof-addr.
//
// The design invariant is that telemetry can never change results:
// instruments only observe — they never feed back into control flow, RNG
// streams or numeric kernels — so predictions and training runs are
// bit-identical whether telemetry is enabled or disabled (enforced by the
// bit-identity suites in internal/serve and internal/federated, and measured
// by `adafgl-bench -exp obs`). SetEnabled(false) turns every mutation into a
// cheap no-op for baseline measurements.
//
// Metric naming follows the Prometheus convention
// adafgl_<subsystem>_<metric>[_<unit>][_total]; the full reference table
// lives in README.md.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled is the process-wide telemetry switch. Mutations (counter adds,
// gauge sets, histogram observes, span recording) are no-ops while it is
// false; registration and exposition always work.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled flips the process-wide telemetry switch and returns the
// previous value so tests and benchmarks can restore it. Disabling freezes
// every instrument at its current value; it never unregisters anything.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether telemetry mutations are currently recorded.
func Enabled() bool { return enabled.Load() }

// Kind classifies a metric family for the TYPE exposition line.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down (or is read from a
	// callback at scrape time).
	KindGauge
	// KindHistogram is a bounded-bucket distribution with sum and count.
	KindHistogram
)

// String renders the Prometheus TYPE token.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Registry is a set of named metric families. All methods are safe for
// concurrent use; registration is idempotent (the same name returns the same
// family) and a name re-registered with a different kind or label set panics,
// because silently forking a metric is a programmer error no scrape would
// ever surface.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric family: fixed kind, label names and (for
// histograms) bucket bounds, with one series per distinct label-value tuple.
type family struct {
	name, help string
	kind       Kind
	labels     []string
	buckets    []float64

	mu     sync.Mutex
	series map[string]any // *Counter / *Gauge / *Histogram, keyed by joined label values
}

// NewRegistry creates an empty registry. Most callers want Default instead,
// so every layer's families land on one scrape surface.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry behind Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every runtime layer instruments
// itself onto — the one GET /v1/metrics exposes.
func Default() *Registry { return defaultRegistry }

// seriesSep joins label values into a series key; \xff cannot appear in
// valid UTF-8 label text positions that would collide.
const seriesSep = "\xff"

// checkMetricName validates a Prometheus metric or label name.
func checkMetricName(kind, name string) {
	if name == "" {
		panic(fmt.Sprintf("telemetry: empty %s name", kind))
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			panic(fmt.Sprintf("telemetry: invalid %s name %q", kind, name))
		}
	}
}

// register returns the family for name, creating it on first use and
// verifying kind/labels/buckets agree on every later use.
func (r *Registry) register(name, help string, kind Kind, buckets []float64, labels []string) *family {
	checkMetricName("metric", name)
	for _, l := range labels {
		checkMetricName("label", l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: %s already registered as %s, not %s", name, f.kind, kind))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: %s already registered with labels %v", name, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: %s already registered with labels %v", name, f.labels))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]any),
	}
	r.families[name] = f
	return f
}

// get returns the series for the joined label-value key, creating it with
// make on first use.
func (f *family) get(key string, make func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := make()
	f.series[key] = s
	return s
}

// checkArity panics unless vals matches the family's label names.
func (f *family) checkArity(vals []string) {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s: %d label values for labels %v", f.name, len(vals), f.labels))
	}
}

// key joins label values into the series map key.
func key(vals []string) string {
	switch len(vals) {
	case 0:
		return ""
	case 1:
		return vals[0]
	}
	k := vals[0]
	for _, v := range vals[1:] {
		k += seriesSep + v
	}
	return k
}

// sortedFamilies snapshots the registry's families in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedSeries snapshots a family's series in label-value order, returning
// parallel key and value slices.
func (f *family) sortedSeries() ([]string, []any) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]any, len(keys))
	for i, k := range keys {
		vals[i] = f.series[k]
	}
	f.mu.Unlock()
	return keys, vals
}
