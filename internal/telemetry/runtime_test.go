package telemetry

import (
	"strings"
	"testing"
)

// TestRuntimeGauges checks the go_* families register and scrape live
// runtime values.
func TestRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeGauges(r)
	RegisterRuntimeGauges(r) // idempotent
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, fam := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_cycles_total", "go_gomaxprocs"} {
		if !HasFamily([]byte(out), fam) {
			t.Errorf("missing family %s", fam)
		}
	}
	if err := CheckExposition([]byte(out)); err != nil {
		t.Fatalf("runtime exposition invalid: %v", err)
	}
	if v := runtimeSample("/sched/goroutines:goroutines")(); v < 1 {
		t.Fatalf("goroutines = %v", v)
	}
	if v := runtimeSample("/does/not/exist:none")(); v != 0 {
		t.Fatalf("unknown metric = %v, want 0", v)
	}
}

// TestRuntimeSnapshot checks the debug snapshot contains scalar runtime
// metrics and the key filter works.
func TestRuntimeSnapshot(t *testing.T) {
	snap := RuntimeSnapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	if _, ok := snap["/sched/goroutines:goroutines"]; !ok {
		t.Fatal("snapshot missing goroutine count")
	}
	keys := RuntimeSnapshotKeys(snap, "/gc/")
	if len(keys) == 0 {
		t.Fatal("no /gc/ keys")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("keys not sorted")
		}
	}
	for _, k := range keys {
		if !strings.HasPrefix(k, "/gc/") {
			t.Fatalf("filter leaked key %s", k)
		}
	}
}
