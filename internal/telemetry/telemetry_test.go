package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeBasics exercises the scalar instruments end to end.
func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_requests_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("t_requests_total", "requests"); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("t_depth", "depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	r.GaugeFunc("t_func", "func gauge", func() float64 { return 42 })
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "t_func 42\n") {
		t.Fatalf("func gauge not scraped:\n%s", buf.String())
	}
}

// TestHistogram checks bucket assignment, cumulative counts, sum and count.
func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.5+0.5+5+50; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	cum := h.cumulative()
	want := []uint64{1, 3, 4, 5}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", cum, want)
		}
	}
}

// TestVecSeries checks labeled families resolve stable per-tuple series.
func TestVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("t_by_arch_total", "per arch", "arch")
	v.With("GCN").Add(2)
	v.With("SGC").Inc()
	if v.With("GCN").Value() != 2 || v.With("SGC").Value() != 1 {
		t.Fatal("vec series not independent")
	}
	gv := r.GaugeVec("t_g", "g", "a", "b")
	gv.With("x", "y").Set(7)
	if gv.With("x", "y").Value() != 7 {
		t.Fatal("gauge vec lost value")
	}
	hv := r.HistogramVec("t_h", "h", nil, "arch")
	hv.With("GCN").Observe(0.02)
	if hv.With("GCN").Count() != 1 {
		t.Fatal("histogram vec lost observation")
	}
}

// TestRegistrationConflicts checks kind and label mismatches panic.
func TestRegistrationConflicts(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_x", "x")
	for name, fn := range map[string]func(){
		"kind":   func() { r.Gauge("t_x", "x") },
		"labels": func() { r.CounterVec("t_x", "x", "arch") },
		"name":   func() { r.Counter("bad name", "x") },
		"label":  func() { r.CounterVec("t_y", "y", "bad-label") },
		"arity":  func() { r.CounterVec("t_z", "z", "a").With("1", "2") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestDisabledFreezesInstruments checks SetEnabled(false) turns every
// mutation into a no-op — the mechanism behind the notelemetry baseline.
func TestDisabledFreezesInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_c", "c")
	g := r.Gauge("t_g", "g")
	h := r.Histogram("t_h", "h", nil)
	c.Inc()
	g.Set(1)
	h.Observe(1)

	prev := SetEnabled(false)
	defer SetEnabled(prev)
	c.Add(100)
	g.Set(100)
	g.Add(100)
	h.Observe(100)
	if c.Value() != 1 || g.Value() != 1 || h.Count() != 1 {
		t.Fatalf("instruments mutated while disabled: c=%d g=%v h=%d", c.Value(), g.Value(), h.Count())
	}

	tr := NewTracer(8, 1)
	if sp := tr.Span(NewTraceID(), "x"); sp != nil {
		t.Fatal("tracer produced a span while disabled")
	}
}

// TestConcurrentInstruments hammers one counter/histogram from many
// goroutines; run under -race this is the data-race gate for the atomics.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_c", "c")
	h := r.Histogram("t_h", "h", []float64{0.5})
	v := r.CounterVec("t_v", "v", "k")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.25)
				v.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || v.With("a").Value() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d v=%d", c.Value(), h.Count(), v.With("a").Value())
	}
}
