package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition format
// 0.0.4: families in name order, each preceded by # HELP and # TYPE lines,
// series in label-value order, histograms as cumulative _bucket{le=...}
// plus _sum and _count. Output is deterministic for a fixed registry state,
// which the golden tests rely on.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		keys, vals := f.sortedSeries()
		for i, k := range keys {
			lbl := labelString(f.labels, strings.Split(k, seriesSep))
			switch m := vals[i].(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, lbl, m.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, lbl, formatFloat(m.Value()))
			case *Histogram:
				cum := m.cumulative()
				for bi, le := range f.buckets {
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
						labelStringExtra(f.labels, strings.Split(k, seriesSep), "le", formatFloat(le)), cum[bi])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
					labelStringExtra(f.labels, strings.Split(k, seriesSep), "le", "+Inf"), cum[len(cum)-1])
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, lbl, formatFloat(m.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, lbl, m.Count())
			}
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry's Prometheus
// exposition with the text-format content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslashes, quotes and newlines in a label value.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// labelString renders {k1="v1",k2="v2"} (empty string for no labels).
func labelString(names, vals []string) string {
	if len(names) == 0 {
		return ""
	}
	return labelStringExtra(names, vals, "", "")
}

// labelStringExtra renders the label block with an optional extra pair
// appended (used for histogram le labels).
func labelStringExtra(names, vals []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(vals) {
			v = vals[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteString(`"`)
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// sampleLine matches one exposition sample: name, optional label block,
// value.
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$`)

// CheckExposition validates Prometheus text-format output structurally:
// every sample line parses, every sample belongs to a family declared by a
// preceding # TYPE line (histogram samples may use the _bucket/_sum/_count
// suffixes), every family carries both HELP and TYPE, and every histogram
// has a +Inf bucket whose value equals its _count. It returns the first
// violation found, or nil. serve-demo and CI use it to fail on malformed
// scrapes.
func CheckExposition(data []byte) error {
	type fam struct {
		kind    string
		help    bool
		inf     map[string]string // histogram: label-key (minus le) -> +Inf bucket value
		cnt     map[string]string // histogram: label-key -> _count value
		samples int
	}
	fams := make(map[string]*fam)
	get := func(name string) *fam {
		f, ok := fams[name]
		if !ok {
			f = &fam{inf: map[string]string{}, cnt: map[string]string{}}
			fams[name] = f
		}
		return f
	}
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			get(parts[0]).help = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(parts) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", ln+1, parts[1])
			}
			get(parts[0]).kind = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", ln+1, line)
		}
		name, labels, value := m[1], m[2], m[3]
		base := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, sfx) {
				if f, ok := fams[name[:len(name)-len(sfx)]]; ok && f.kind == "histogram" {
					base, suffix = name[:len(name)-len(sfx)], sfx
					break
				}
			}
		}
		f, ok := fams[base]
		if !ok || f.kind == "" {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE", ln+1, name)
		}
		f.samples++
		if suffix == "_bucket" {
			key, le, ok := splitLE(labels)
			if !ok {
				return fmt.Errorf("line %d: histogram bucket without le label: %q", ln+1, line)
			}
			if le == "+Inf" {
				f.inf[key] = value
			}
		}
		if suffix == "_count" {
			f.cnt[strings.Trim(labels, "{}")] = value
		}
	}
	for name, f := range fams {
		if f.kind == "" {
			return fmt.Errorf("family %s: HELP without TYPE", name)
		}
		if !f.help {
			return fmt.Errorf("family %s: TYPE without HELP", name)
		}
		if f.kind == "histogram" {
			for key, cnt := range f.cnt {
				inf, ok := f.inf[key]
				if !ok {
					return fmt.Errorf("family %s{%s}: histogram without +Inf bucket", name, key)
				}
				if inf != cnt {
					return fmt.Errorf("family %s{%s}: +Inf bucket %s != count %s", name, key, inf, cnt)
				}
			}
		}
	}
	return nil
}

// splitLE strips the le="..." pair from a label block, returning the
// residual pairs (the series identity) and the le value.
func splitLE(labels string) (rest, le string, ok bool) {
	inner := strings.Trim(labels, "{}")
	var keep []string
	for _, pair := range splitPairs(inner) {
		if v, found := strings.CutPrefix(pair, `le="`); found {
			le = strings.TrimSuffix(v, `"`)
			ok = true
			continue
		}
		keep = append(keep, pair)
	}
	return strings.Join(keep, ","), le, ok
}

// splitPairs splits a label block interior on commas outside quotes.
func splitPairs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// HasFamily reports whether the exposition data declares a # TYPE line for
// the named family — the core-family presence check used by serve-demo.
func HasFamily(data []byte, name string) bool {
	return strings.Contains(string(data), "# TYPE "+name+" ")
}
