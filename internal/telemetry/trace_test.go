package telemetry

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestTraceContext checks ID threading through contexts and the wire form.
func TestTraceContext(t *testing.T) {
	id := NewTraceID()
	if id == 0 {
		t.Fatal("zero trace ID minted")
	}
	ctx := ContextWithTrace(context.Background(), id)
	got, ok := TraceFrom(ctx)
	if !ok || got != id {
		t.Fatalf("TraceFrom = %v,%v want %v,true", got, ok, id)
	}
	if _, ok := TraceFrom(context.Background()); ok {
		t.Fatal("trace found in empty context")
	}
	ctx2, id2 := EnsureTrace(ctx)
	if id2 != id || ctx2 != ctx {
		t.Fatal("EnsureTrace minted a fresh ID over an existing one")
	}
	_, id3 := EnsureTrace(context.Background())
	if id3 == 0 || id3 == id {
		t.Fatal("EnsureTrace did not mint a fresh ID")
	}

	parsed, ok := ParseTraceID(id.String())
	if !ok || parsed != id {
		t.Fatalf("round trip %q -> %v,%v", id.String(), parsed, ok)
	}
	for _, bad := range []string{"", "zz", "0", "10000000000000000f"} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

// TestTracerRecordsSpans checks span recording, attributes, nil-safety and
// the ring wrap.
func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer(4, 1)
	ctx, sp := tr.Start(context.Background(), "serve.request")
	if sp == nil {
		t.Fatal("span not sampled at sampleEvery=1")
	}
	id, ok := TraceFrom(ctx)
	if !ok {
		t.Fatal("Start did not inject a trace")
	}
	sp.Attr("nodes", 3).End()

	evs := tr.Events()
	if len(evs) != 1 || evs[0].Name != "serve.request" || evs[0].Trace != id {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Attrs["nodes"] != 3 {
		t.Fatalf("attrs = %v", evs[0].Attrs)
	}

	var nilSpan *Span
	nilSpan.Attr("k", "v")
	nilSpan.End() // must not panic

	for i := 0; i < 10; i++ {
		tr.Span(id, "wrap").End()
	}
	if got := len(tr.Events()); got != 4 {
		t.Fatalf("ring holds %d events, want capacity 4", got)
	}
	seen, kept := tr.Stats()
	if seen != 11 || kept != 11 {
		t.Fatalf("stats = %d,%d want 11,11", seen, kept)
	}
	tr.Reset()
	if evs := tr.Events(); len(evs) != 0 {
		t.Fatalf("reset left %d events", len(evs))
	}
}

// TestTracerSampling checks deterministic ID-mod sampling.
func TestTracerSampling(t *testing.T) {
	tr := NewTracer(16, 4)
	for id := TraceID(1); id <= 8; id++ {
		tr.Span(id, "s").End()
	}
	seen, kept := tr.Stats()
	if seen != 8 || kept != 2 { // ids 4 and 8
		t.Fatalf("stats = %d,%d want 8,2", seen, kept)
	}
}

// TestTracerLogger checks recorded spans stream to the attached slog
// logger.
func TestTracerLogger(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(4, 1)
	tr.SetLogger(slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug})))
	tr.Span(TraceID(7), "shard.exchange").Attr("bytes", 128).End()
	out := buf.String()
	if !strings.Contains(out, `"span":"shard.exchange"`) || !strings.Contains(out, "0000000000000007") {
		t.Fatalf("span log missing fields: %s", out)
	}
}

// TestTraceHTTP checks the middleware honours an incoming X-Trace-Id,
// mints one otherwise, and echoes it on the response.
func TestTraceHTTP(t *testing.T) {
	var got TraceID
	h := TraceHTTP(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, _ = TraceFrom(r.Context())
	}))

	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(TraceHeader, "00000000000000ff")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got != TraceID(0xff) {
		t.Fatalf("incoming trace not honoured: %v", got)
	}
	if rec.Header().Get(TraceHeader) != "00000000000000ff" {
		t.Fatalf("trace not echoed: %q", rec.Header().Get(TraceHeader))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if got == 0 || rec.Header().Get(TraceHeader) != got.String() {
		t.Fatalf("minted trace %v not echoed (%q)", got, rec.Header().Get(TraceHeader))
	}
}
