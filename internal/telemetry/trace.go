package telemetry

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one request's journey through the serving stack:
// HTTP handler → batcher enqueue → window dispatch → engine forward /
// shard halo-exchange. IDs are process-unique and allocated from an atomic
// counter, so assigning one never perturbs any seeded RNG stream.
type TraceID uint64

// String renders the ID as 16 lowercase hex digits (the X-Trace-Id wire
// form).
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseTraceID parses the hex wire form; ok is false for anything that is
// not a non-zero 64-bit hex value.
func ParseTraceID(s string) (TraceID, bool) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return TraceID(v), true
}

// nextTrace allocates process-unique trace IDs, starting at 1 so a zero
// TraceID always means "absent".
var nextTrace atomic.Uint64

// NewTraceID returns a fresh process-unique trace ID.
func NewTraceID() TraceID { return TraceID(nextTrace.Add(1)) }

// traceKey is the context key carrying the request's TraceID.
type traceKey struct{}

// ContextWithTrace returns a context carrying the trace ID.
func ContextWithTrace(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom extracts the trace ID threaded through ctx, if any.
func TraceFrom(ctx context.Context) (TraceID, bool) {
	id, ok := ctx.Value(traceKey{}).(TraceID)
	return id, ok && id != 0
}

// EnsureTrace returns ctx carrying a trace ID, minting a fresh one only
// when absent.
func EnsureTrace(ctx context.Context) (context.Context, TraceID) {
	if id, ok := TraceFrom(ctx); ok {
		return ctx, id
	}
	id := NewTraceID()
	return ContextWithTrace(ctx, id), id
}

// SpanEvent is one recorded span: a named stage of a trace with its wall
// start time, duration, and small attribute set. Events are exported as the
// sampled structured event log (Tracer.Events, or slog via SetLogger).
type SpanEvent struct {
	// Trace is the request's trace ID.
	Trace TraceID `json:"trace"`
	// Name is the stage, e.g. "serve.request", "serve.window",
	// "shard.exchange".
	Name string `json:"span"`
	// Start is the wall-clock start of the span.
	Start time.Time `json:"start"`
	// Duration is the span's elapsed time.
	Duration time.Duration `json:"dur_ns"`
	// Attrs are small span-scoped facts (node counts, shard IDs, bytes).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Tracer records sampled span events into a bounded ring. Recording is
// observation-only — it is skipped entirely when telemetry is disabled and
// never influences the traced computation. Safe for concurrent use.
type Tracer struct {
	sample uint64 // record traces with id%sample==0; 1 records all

	seen atomic.Uint64 // spans offered
	kept atomic.Uint64 // spans recorded

	mu     sync.Mutex
	ring   []SpanEvent
	next   int
	full   bool
	logger *slog.Logger
}

// NewTracer creates a tracer with a ring of capacity events that records
// every sampleEvery-th trace (deterministic on the trace ID; <=1 records
// all).
func NewTracer(capacity, sampleEvery int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Tracer{ring: make([]SpanEvent, capacity), sample: uint64(sampleEvery)}
}

// defaultTracer backs DefaultTracer.
var defaultTracer = NewTracer(4096, 1)

// DefaultTracer returns the process-wide tracer the runtime layers record
// onto.
func DefaultTracer() *Tracer { return defaultTracer }

// SetLogger streams every recorded span to l (as a structured "span" record)
// in addition to the ring; nil disables streaming.
func (t *Tracer) SetLogger(l *slog.Logger) {
	t.mu.Lock()
	t.logger = l
	t.mu.Unlock()
}

// sampled reports whether the deterministic sampler keeps this trace.
func (t *Tracer) sampled(id TraceID) bool { return uint64(id)%t.sample == 0 }

// Span is one in-flight stage measurement. A nil *Span is valid and inert,
// so callers never branch on sampling decisions.
type Span struct {
	t     *Tracer
	id    TraceID
	name  string
	start time.Time
	attrs map[string]any
}

// Start begins a span for the trace carried by ctx (minting one if absent),
// returning the possibly-extended context and the span. The span is nil —
// and the returned context unchanged beyond trace injection — when the
// tracer is nil, telemetry is disabled, or the trace is not sampled.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil || !enabled.Load() {
		return ctx, nil
	}
	ctx, id := EnsureTrace(ctx)
	return ctx, t.Span(id, name)
}

// Span begins a span for an explicit trace ID, for callers that carry the
// ID outside a context (e.g. the batcher's request structs). Returns nil
// when recording is off or the trace is not sampled.
func (t *Tracer) Span(id TraceID, name string) *Span {
	if t == nil || !enabled.Load() {
		return nil
	}
	t.seen.Add(1)
	if !t.sampled(id) {
		return nil
	}
	return &Span{t: t, id: id, name: name, start: time.Now()}
}

// Attr attaches one attribute to the span and returns it for chaining.
// Safe on a nil span.
func (s *Span) Attr(k string, v any) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[k] = v
	return s
}

// End records the span event. Safe on a nil span; End on an already-ended
// span records a duplicate, so call it once (typically deferred).
func (s *Span) End() {
	if s == nil {
		return
	}
	ev := SpanEvent{
		Trace:    s.id,
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    s.attrs,
	}
	t := s.t
	t.kept.Add(1)
	t.mu.Lock()
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	logger := t.logger
	t.mu.Unlock()
	if logger != nil {
		logger.LogAttrs(context.Background(), slog.LevelDebug, "span",
			slog.String("trace", ev.Trace.String()),
			slog.String("span", ev.Name),
			slog.Duration("dur", ev.Duration),
			slog.Any("attrs", ev.Attrs),
		)
	}
}

// Events returns the recorded span events, oldest first.
func (t *Tracer) Events() []SpanEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]SpanEvent(nil), t.ring[:t.next]...)
	}
	out := make([]SpanEvent, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Stats returns how many spans were offered to and kept by the sampler
// since construction (or the last Reset).
func (t *Tracer) Stats() (seen, kept uint64) {
	return t.seen.Load(), t.kept.Load()
}

// Reset clears the ring and the seen/kept counters (test helper).
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next, t.full = 0, false
	t.seen.Store(0)
	t.kept.Store(0)
}

// TraceHeader is the HTTP header carrying a request's trace ID in hex.
const TraceHeader = "X-Trace-Id"

// TraceHTTP wraps an HTTP handler so every request runs with a trace ID in
// its context: an incoming X-Trace-Id header is honoured (letting callers
// correlate across services), otherwise a fresh ID is minted. The ID is
// echoed on the response so clients can quote it in bug reports.
func TraceHTTP(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, ok := ParseTraceID(r.Header.Get(TraceHeader))
		if !ok {
			id = NewTraceID()
		}
		w.Header().Set(TraceHeader, id.String())
		next.ServeHTTP(w, r.WithContext(ContextWithTrace(r.Context(), id)))
	})
}
