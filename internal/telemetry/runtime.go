package telemetry

import (
	"runtime"
	rtm "runtime/metrics"
	"sort"
	"strings"
)

// RegisterRuntimeGauges registers Go runtime health gauges on r, read fresh
// at every scrape via runtime/metrics: goroutine count, heap bytes, total GC
// cycles and GOMAXPROCS. Callers (the serving binary) invoke it once at
// startup; re-registration is a no-op.
func RegisterRuntimeGauges(r *Registry) {
	r.GaugeFunc("go_goroutines", "Number of live goroutines.",
		runtimeSample("/sched/goroutines:goroutines"))
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		runtimeSample("/memory/classes/heap/objects:bytes"))
	r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles since process start.",
		runtimeSample("/gc/cycles/total:gc-cycles"))
	r.GaugeFunc("go_gomaxprocs", "Value of GOMAXPROCS.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
}

// runtimeSample returns a callback reading one runtime/metrics sample as a
// float64 (0 when the metric is unknown to this Go version).
func runtimeSample(name string) func() float64 {
	return func() float64 {
		s := []rtm.Sample{{Name: name}}
		rtm.Read(s)
		switch s[0].Value.Kind() {
		case rtm.KindUint64:
			return float64(s[0].Value.Uint64())
		case rtm.KindFloat64:
			return s[0].Value.Float64()
		}
		return 0
	}
}

// RuntimeSnapshot reads every scalar metric the Go runtime exports
// (runtime/metrics) into a sorted-key map, for the -pprof-addr debug
// endpoint's JSON snapshot. Histogram-kind metrics are skipped.
func RuntimeSnapshot() map[string]float64 {
	descs := rtm.All()
	samples := make([]rtm.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	rtm.Read(samples)
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		switch s.Value.Kind() {
		case rtm.KindUint64:
			out[s.Name] = float64(s.Value.Uint64())
		case rtm.KindFloat64:
			out[s.Name] = s.Value.Float64()
		}
	}
	return out
}

// RuntimeSnapshotKeys returns the sorted metric names of a snapshot,
// optionally filtered to a prefix — a stable iteration aid for renderers.
func RuntimeSnapshotKeys(snap map[string]float64, prefix string) []string {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
