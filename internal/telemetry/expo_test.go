package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden pins the full text exposition of a small registry —
// family order, HELP/TYPE lines, label rendering, histogram expansion —
// so metric names and format stay stable across refactors.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	req := r.CounterVec("adafgl_serve_requests_total", "Completed predict calls.", "arch")
	req.With("GCN").Add(3)
	req.With("SGC").Add(1)
	r.Gauge("adafgl_federated_round_accuracy", "Latest global round accuracy.").Set(0.825)
	h := r.Histogram("adafgl_serve_request_latency_seconds", "Request latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP adafgl_federated_round_accuracy Latest global round accuracy.
# TYPE adafgl_federated_round_accuracy gauge
adafgl_federated_round_accuracy 0.825
# HELP adafgl_serve_request_latency_seconds Request latency.
# TYPE adafgl_serve_request_latency_seconds histogram
adafgl_serve_request_latency_seconds_bucket{le="0.01"} 1
adafgl_serve_request_latency_seconds_bucket{le="0.1"} 2
adafgl_serve_request_latency_seconds_bucket{le="+Inf"} 3
adafgl_serve_request_latency_seconds_sum 5.055
adafgl_serve_request_latency_seconds_count 3
# HELP adafgl_serve_requests_total Completed predict calls.
# TYPE adafgl_serve_requests_total counter
adafgl_serve_requests_total{arch="GCN"} 3
adafgl_serve_requests_total{arch="SGC"} 1
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if err := CheckExposition([]byte(buf.String())); err != nil {
		t.Fatalf("golden exposition fails its own checker: %v", err)
	}
}

// TestLabelEscaping checks quotes/backslashes/newlines in label values are
// escaped into valid exposition.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("t_esc", "esc", "path").With(`a"b\c` + "\nd").Inc()
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `t_esc{path="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaping wrong:\n%s", buf.String())
	}
	if err := CheckExposition([]byte(buf.String())); err != nil {
		t.Fatalf("escaped exposition rejected: %v", err)
	}
}

// TestHandler checks the HTTP scrape endpoint sets the exposition content
// type and serves the registry.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_hits_total", "hits").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "t_hits_total 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestCheckExposition feeds the checker valid and broken documents.
func TestCheckExposition(t *testing.T) {
	valid := "# HELP a_total x\n# TYPE a_total counter\na_total 3\n"
	if err := CheckExposition([]byte(valid)); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	cases := map[string]string{
		"sample without TYPE": "a_total 3\n",
		"TYPE without HELP":   "# TYPE a_total counter\na_total 3\n",
		"HELP without TYPE":   "# HELP a_total x\na_total 3\n",
		"malformed sample":    "# HELP a x\n# TYPE a counter\na{ 3\n",
		"unknown kind":        "# HELP a x\n# TYPE a widget\na 3\n",
		"histogram no inf": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 2` + "\nh_sum 2\nh_count 2\n",
		"inf != count": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 2\nh_count 3\n",
	}
	for name, doc := range cases {
		if err := CheckExposition([]byte(doc)); err == nil {
			t.Errorf("%s: checker accepted broken doc:\n%s", name, doc)
		}
	}
	histo := "# HELP h x\n# TYPE h histogram\n" +
		`h_bucket{arch="GCN",le="1"} 1` + "\n" + `h_bucket{arch="GCN",le="+Inf"} 2` + "\n" +
		`h_sum{arch="GCN"} 3` + "\n" + `h_count{arch="GCN"} 2` + "\n"
	if err := CheckExposition([]byte(histo)); err != nil {
		t.Fatalf("labeled histogram rejected: %v", err)
	}
	if !HasFamily([]byte(valid), "a_total") || HasFamily([]byte(valid), "b_total") {
		t.Fatal("HasFamily wrong")
	}
}
