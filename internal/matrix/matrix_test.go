package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	row := m.Row(1)
	row[0] = -1
	if m.At(1, 0) != -1 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged input should error")
	}
}

func TestIdentityMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	i3 := Identity(3)
	got := Mul(a, i3)
	if !Equal(a, got, 0) {
		t.Fatalf("A*I = %v, want %v", got, a)
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(want, got, 1e-12) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(4, 7)
	RandomNormal(m, 0, 1, rng)
	if !Equal(m, Transpose(Transpose(m)), 0) {
		t.Fatal("transpose twice should be identity")
	}
}

func TestTMulMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := New(5, 3), New(5, 4)
	RandomNormal(a, 0, 1, rng)
	RandomNormal(b, 0, 1, rng)
	if !Equal(TMul(a, b), Mul(Transpose(a), b), 1e-10) {
		t.Fatal("TMul must equal explicit aᵀ·b")
	}
}

func TestMulTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := New(4, 6), New(3, 6)
	RandomNormal(a, 0, 1, rng)
	RandomNormal(b, 0, 1, rng)
	if !Equal(MulT(a, b), Mul(a, Transpose(b)), 1e-10) {
		t.Fatal("MulT must equal explicit a·bᵀ")
	}
}

func TestAddSubHadamardScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, -2}, {3, 0}})
	b, _ := FromRows([][]float64{{4, 5}, {-1, 2}})
	if got := Add(a, b).At(0, 1); got != 3 {
		t.Fatalf("Add = %v, want 3", got)
	}
	if got := Sub(a, b).At(1, 0); got != 4 {
		t.Fatalf("Sub = %v, want 4", got)
	}
	if got := Hadamard(a, b).At(0, 0); got != 4 {
		t.Fatalf("Hadamard = %v, want 4", got)
	}
	if got := Scale(2, a).At(1, 0); got != 6 {
		t.Fatalf("Scale = %v, want 6", got)
	}
}

func TestAddScaledAndInPlace(t *testing.T) {
	a := New(2, 2)
	b, _ := FromRows([][]float64{{1, 1}, {1, 1}})
	AddScaled(a, 0.5, b)
	if a.At(0, 0) != 0.5 {
		t.Fatalf("AddScaled got %v", a.At(0, 0))
	}
	AddInPlace(a, b)
	if a.At(1, 1) != 1.5 {
		t.Fatalf("AddInPlace got %v", a.At(1, 1))
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := New(10, 5)
	RandomNormal(m, 0, 10, rng)
	s := SoftmaxRows(m)
	for i, sum := range RowSums(s) {
		if !almostEqual(sum, 1, 1e-9) {
			t.Fatalf("row %d softmax sums to %v", i, sum)
		}
	}
	for _, v := range s.Data {
		if v < 0 || v > 1 {
			t.Fatalf("softmax value %v outside [0,1]", v)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	m, _ := FromRows([][]float64{{1000, 1000, 999}})
	s := SoftmaxRows(m)
	for _, v := range s.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("softmax overflowed on large inputs")
		}
	}
}

func TestArgmaxRows(t *testing.T) {
	m, _ := FromRows([][]float64{{0, 5, 2}, {9, 1, 1}, {-3, -2, -10}})
	got := ArgmaxRows(m)
	want := []int{1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgmaxRows[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestConcatAndSliceCols(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5}, {6}})
	c := ConcatCols(a, b)
	if c.Cols != 3 || c.At(1, 2) != 6 {
		t.Fatalf("ConcatCols wrong: %v", c)
	}
	s := SliceCols(c, 1, 3)
	if s.At(0, 0) != 2 || s.At(0, 1) != 5 {
		t.Fatalf("SliceCols wrong: %v", s)
	}
}

func TestSelectRows(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	s := SelectRows(m, []int{2, 0})
	if s.At(0, 0) != 3 || s.At(1, 1) != 1 {
		t.Fatalf("SelectRows wrong: %v", s)
	}
}

func TestColRowSums(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	cs := ColSums(m)
	if cs[0] != 4 || cs[1] != 6 {
		t.Fatalf("ColSums = %v", cs)
	}
	rs := RowSums(m)
	if rs[0] != 3 || rs[1] != 7 {
		t.Fatalf("RowSums = %v", rs)
	}
}

func TestAddRowVector(t *testing.T) {
	m := New(2, 3)
	AddRowVector(m, []float64{1, 2, 3})
	if m.At(1, 2) != 3 {
		t.Fatalf("AddRowVector got %v", m.At(1, 2))
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 4}})
	if got := FrobeniusNorm(m); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
}

func TestNormalizeRowsL1(t *testing.T) {
	m, _ := FromRows([][]float64{{2, 2}, {0, 0}, {-1, 3}})
	NormalizeRowsL1(m)
	if !almostEqual(m.At(0, 0), 0.5, 1e-12) {
		t.Fatalf("row 0 not normalised: %v", m.Row(0))
	}
	if m.At(1, 0) != 0 {
		t.Fatal("zero row must be untouched")
	}
	// L1 normalisation uses |.|: row sums of abs values equal 1.
	if s := math.Abs(m.At(2, 0)) + math.Abs(m.At(2, 1)); !almostEqual(s, 1, 1e-12) {
		t.Fatalf("row 2 abs-sum = %v", s)
	}
}

func TestXavierKaimingBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(30, 20)
	XavierUniform(m, rng)
	bound := math.Sqrt(6.0 / 50.0)
	for _, v := range m.Data {
		if math.Abs(v) > bound {
			t.Fatalf("Xavier value %v outside ±%v", v, bound)
		}
	}
	KaimingUniform(m, rng)
	kb := math.Sqrt(6.0 / 30.0)
	for _, v := range m.Data {
		if math.Abs(v) > kb {
			t.Fatalf("Kaiming value %v outside ±%v", v, kb)
		}
	}
}

func TestMeanMaxAbs(t *testing.T) {
	m, _ := FromRows([][]float64{{-4, 2}, {1, 1}})
	if Mean(m) != 0 {
		t.Fatalf("Mean = %v, want 0", Mean(m))
	}
	if MaxAbs(m) != 4 {
		t.Fatalf("MaxAbs = %v, want 4", MaxAbs(m))
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random matrices.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k, p := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := New(n, k), New(k, p)
		RandomNormal(a, 0, 1, rng)
		RandomNormal(b, 0, 1, rng)
		return Equal(Transpose(Mul(a, b)), Mul(Transpose(b), Transpose(a)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestQuickDistributivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k, p := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a, b, c := New(n, k), New(k, p), New(k, p)
		RandomNormal(a, 0, 1, rng)
		RandomNormal(b, 0, 1, rng)
		RandomNormal(c, 0, 1, rng)
		return Equal(Mul(a, Add(b, c)), Add(Mul(a, b), Mul(a, c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax is invariant to adding a constant to a row.
func TestQuickSoftmaxShiftInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(3, 4)
		RandomNormal(m, 0, 3, rng)
		shifted := m.Clone()
		c := rng.NormFloat64() * 5
		for i := range shifted.Data {
			shifted.Data[i] += c
		}
		return Equal(SoftmaxRows(m), SoftmaxRows(shifted), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := New(128, 128), New(128, 128)
	RandomNormal(x, 0, 1, rng)
	RandomNormal(y, 0, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}
