//go:build !amd64

package matrix

// useSIMD is always false off amd64: the blocked engine runs on the portable
// scalar micro-kernel.
var useSIMD = false

// microKernelAVX is never called when useSIMD is false.
func microKernelAVX(dst *float64, stride, kw int, ap, bp *float64) {
	panic("matrix: SIMD micro-kernel unavailable on this architecture")
}
