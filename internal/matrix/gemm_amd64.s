// AVX2+FMA micro-kernel for the blocked GEMM engine (see gemm.go). Only
// full 4x4 tiles are dispatched here; edge tiles take the portable scalar
// kernel. Each dst element accumulates its tile partial sum in ascending
// shared-dimension order — one fused-multiply-add chain per element — so the
// summation order matches the scalar kernel and is independent of the worker
// count.

#include "textflag.h"

// func hasAVX2FMA() bool
//
// CPUID.1:ECX must report FMA, OSXSAVE and AVX; XCR0 must have the SSE and
// AVX state bits enabled by the OS; CPUID.(7,0):EBX must report AVX2.
TEXT ·hasAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	MOVL CX, SI
	ANDL $(1<<12 | 1<<27 | 1<<28), SI
	CMPL SI, $(1<<12 | 1<<27 | 1<<28)
	JNE  no

	MOVL $0, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no

	MOVL $7, AX
	MOVL $0, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func microKernelAVX(dst *float64, stride, kw int, ap, bp *float64)
//
// Accumulates the 4x4 tile partial sum over kw shared-dimension steps from
// mr-interleaved packed A (ap) and nr-interleaved packed B (bp) into dst,
// where dst[r*stride+c] addresses tile cell (r, c). Y0..Y3 hold one output
// row each; per step: one 4-wide load of B, four broadcasts of A and four
// VFMADD231PD.
TEXT ·microKernelAVX(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ stride+8(FP), SI
	MOVQ kw+16(FP), CX
	MOVQ ap+24(FP), R8
	MOVQ bp+32(FP), R9

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

	TESTQ CX, CX
	JZ    store

loop:
	VMOVUPD      (R9), Y4
	VBROADCASTSD (R8), Y5
	VFMADD231PD  Y4, Y5, Y0
	VBROADCASTSD 8(R8), Y5
	VFMADD231PD  Y4, Y5, Y1
	VBROADCASTSD 16(R8), Y5
	VFMADD231PD  Y4, Y5, Y2
	VBROADCASTSD 24(R8), Y5
	VFMADD231PD  Y4, Y5, Y3
	ADDQ         $32, R8
	ADDQ         $32, R9
	DECQ         CX
	JNZ          loop

store:
	SHLQ    $3, SI
	VMOVUPD (DI), Y4
	VADDPD  Y0, Y4, Y4
	VMOVUPD Y4, (DI)
	ADDQ    SI, DI
	VMOVUPD (DI), Y4
	VADDPD  Y1, Y4, Y4
	VMOVUPD Y4, (DI)
	ADDQ    SI, DI
	VMOVUPD (DI), Y4
	VADDPD  Y2, Y4, Y4
	VMOVUPD Y4, (DI)
	ADDQ    SI, DI
	VMOVUPD (DI), Y4
	VADDPD  Y3, Y4, Y4
	VMOVUPD Y4, (DI)
	VZEROUPPER
	RET
