package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	a, b := New(7, 5), New(5, 4)
	RandomNormal(a, 0, 1, rng)
	RandomNormal(b, 0, 1, rng)
	dst := New(7, 4)
	dst.Fill(99) // must be overwritten, not accumulated
	MulInto(dst, a, b)
	if !Equal(dst, Mul(a, b), 1e-12) {
		t.Fatal("MulInto disagrees with Mul")
	}
}

func TestMulIntoShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong dst shape")
		}
	}()
	MulInto(New(2, 2), New(2, 3), New(3, 4))
}

func TestFromSlicePanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong data length")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dims")
		}
	}()
	New(-1, 3)
}

func TestEmptyMatrixOps(t *testing.T) {
	e := New(0, 0)
	if Mean(e) != 0 || FrobeniusNorm(e) != 0 || MaxAbs(e) != 0 {
		t.Fatal("empty matrix reductions must be 0")
	}
	if c := ConcatCols(); c.Rows != 0 || c.Cols != 0 {
		t.Fatal("empty ConcatCols must be 0x0")
	}
}

func TestStringRendering(t *testing.T) {
	small, _ := FromRows([][]float64{{1, 2}})
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty String for small matrix")
	}
	big := New(30, 30)
	if s := big.String(); s != "Dense(30x30)" {
		t.Fatalf("large matrix should render compactly, got %q", s)
	}
}

func TestEqualNaNSemantics(t *testing.T) {
	nan := math.NaN()
	a, _ := FromRows([][]float64{{1, nan}})
	b, _ := FromRows([][]float64{{1, nan}})
	if !Equal(a, b, 0) {
		t.Fatal("NaN at matching positions must compare equal")
	}
	c, _ := FromRows([][]float64{{1, 2}})
	if Equal(a, c, 1e9) {
		t.Fatal("NaN vs finite must compare unequal at any tolerance")
	}
	if Equal(c, a, 1e9) {
		t.Fatal("finite vs NaN must compare unequal at any tolerance")
	}
}

func TestScaleInPlaceAndFill(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	ScaleInPlace(m, 2)
	if m.At(1, 1) != 6 {
		t.Fatalf("ScaleInPlace got %v", m.At(1, 1))
	}
	m.Zero()
	if m.At(0, 0) != 0 {
		t.Fatal("Zero failed")
	}
}
