package matrix

import (
	"math/rand"
	"testing"
)

func TestParseTiling(t *testing.T) {
	got, err := ParseTiling("64, 256,128")
	if err != nil {
		t.Fatal(err)
	}
	if got != (Tiling{MC: 64, KC: 256, NC: 128}) {
		t.Fatalf("ParseTiling = %+v", got)
	}
	for _, bad := range []string{"", "64", "64,256", "64,256,128,1", "a,b,c", "64,-1,128"} {
		if _, err := ParseTiling(bad); err == nil {
			t.Fatalf("ParseTiling(%q) accepted", bad)
		}
	}
	// Zero fields keep that tile's default after SetTiling.
	z, err := ParseTiling("0,0,0")
	if err != nil {
		t.Fatal(err)
	}
	defer SetTiling(SetTiling(DefaultTiling()))
	SetTiling(z)
	if CurrentTiling() != DefaultTiling() {
		t.Fatalf("SetTiling(zero) = %+v, want defaults", CurrentTiling())
	}
}

func TestSetTilingSpec(t *testing.T) {
	orig := CurrentTiling()
	defer SetTiling(orig)

	if err := SetTilingSpec(""); err != nil {
		t.Fatalf("empty spec must be a no-op, got %v", err)
	}
	if CurrentTiling() != orig {
		t.Fatal("empty spec changed the tiling")
	}
	if err := SetTilingSpec("16,32,16"); err != nil {
		t.Fatal(err)
	}
	if CurrentTiling() != (Tiling{MC: 16, KC: 32, NC: 16}) {
		t.Fatalf("tiling = %+v after spec", CurrentTiling())
	}
	if err := SetTilingSpec("nope"); err == nil {
		t.Fatal("bad spec must error")
	}
}

func TestSetTilingClampsAndRestores(t *testing.T) {
	orig := CurrentTiling()
	defer SetTiling(orig)

	prev := SetTiling(Tiling{MC: 5, KC: 10, NC: 6})
	if prev != orig {
		t.Fatalf("SetTiling returned prev %+v, want %+v", prev, orig)
	}
	got := CurrentTiling()
	// MC and NC round up to micro-kernel multiples; KC is free.
	if got.MC != 8 || got.KC != 10 || got.NC != 8 {
		t.Fatalf("clamped tiling = %+v, want {8 10 8}", got)
	}
}

// TestBlockedDegenerateShapes covers empty operands and single-row/column
// extremes straight through the blocked engine.
func TestBlockedDegenerateShapes(t *testing.T) {
	defer SetTiling(SetTiling(DefaultTiling()))
	SetTiling(Tiling{MC: 4, KC: 2, NC: 4})
	cases := [][3]int{{0, 5, 3}, {5, 0, 3}, {5, 3, 0}, {1, 1, 1}, {1, 9, 1}, {3, 1, 5}}
	rng := rand.New(rand.NewSource(3))
	for _, s := range cases {
		a, b := New(s[0], s[1]), New(s[1], s[2])
		randContents(a, rng)
		randContents(b, rng)
		blocked := New(s[0], s[2])
		blockedMulInto(blocked, a, b)
		naive := New(s[0], s[2])
		naiveMulInto(naive, a, b)
		if !Equal(blocked, naive, 1e-12) {
			t.Fatalf("shape %v: blocked diverges from naive", s)
		}
	}
}

// TestBlockedOverwritesDst verifies the engine resets dst rather than
// accumulating into stale contents, matching MulInto's contract.
func TestBlockedOverwritesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := New(70, 70), New(70, 70)
	randContents(a, rng)
	randContents(b, rng)
	dst := New(70, 70)
	dst.Fill(99)
	blockedMulInto(dst, a, b)
	want := New(70, 70)
	naiveMulInto(want, a, b)
	if !Equal(dst, want, 1e-12) {
		t.Fatal("blockedMulInto accumulated into stale dst contents")
	}
}

func TestMulNaiveMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Above the cutover Mul takes the blocked engine; MulNaive must still
	// pin the naive path and the two must agree.
	a, b := New(128, 128), New(128, 128)
	randContents(a, rng)
	randContents(b, rng)
	if !Equal(Mul(a, b), MulNaive(a, b), 1e-12) {
		t.Fatal("Mul and MulNaive diverge above the cutover")
	}
}
