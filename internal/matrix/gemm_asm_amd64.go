//go:build amd64

package matrix

// hasAVX2FMA reports whether the CPU and OS support the AVX2+FMA micro-kernel
// (implemented in gemm_amd64.s).
func hasAVX2FMA() bool

// microKernelAVX is the 4x4 AVX2+FMA tile kernel (gemm_amd64.s). It must
// only be called when useSIMD is true and the tile is full (vr == mr,
// vc == nr).
//
//go:noescape
func microKernelAVX(dst *float64, stride, kw int, ap, bp *float64)

// useSIMD gates the assembly micro-kernel. Detected once at start-up;
// overridable in tests to exercise the scalar path on SIMD machines.
var useSIMD = hasAVX2FMA()
