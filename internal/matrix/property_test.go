package matrix

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// propertyTilings are deliberately awkward tile configurations: tiny tiles
// force edge micro-kernels everywhere, non-default shapes shift every panel
// boundary. Results must be invariant (to 1e-12) under all of them.
var propertyTilings = []Tiling{
	DefaultTiling(),
	{MC: 4, KC: 1, NC: 4},
	{MC: 8, KC: 3, NC: 8},
	{MC: 12, KC: 7, NC: 20},
	{MC: 32, KC: 64, NC: 48},
	{MC: 256, KC: 512, NC: 512},
}

// randShape draws a dimension that is frequently a multiple of the
// micro-kernel tile and frequently not, covering both kernel paths.
func randShape(rng *rand.Rand) int {
	n := 1 + rng.Intn(96)
	if rng.Intn(2) == 0 {
		n = (n/4 + 1) * 4
	}
	return n
}

// randContents fills with unit-scale values and sprinkles exact zeros so the
// naive kernels' zero-skip branch is exercised against the blocked path.
func randContents(m *Dense, rng *rand.Rand) {
	for i := range m.Data {
		if rng.Intn(8) == 0 {
			m.Data[i] = 0
			continue
		}
		m.Data[i] = rng.Float64()*2 - 1
	}
}

// withScalarKernel runs fn twice when the SIMD micro-kernel is available —
// once with it, once forced onto the portable scalar kernel — so both
// engines face every property on SIMD machines.
func withScalarKernel(t *testing.T, fn func(t *testing.T)) {
	t.Run("kernel=auto", fn)
	if !useSIMD {
		return
	}
	t.Run("kernel=scalar", func(t *testing.T) {
		useSIMD = false
		defer func() { useSIMD = true }()
		fn(t)
	})
}

// TestPropertyBlockedMatchesNaiveMul drives the blocked engine directly
// (ignoring the cutover) over random shapes, contents and tilings and
// demands agreement with the naive kernel within 1e-12.
func TestPropertyBlockedMatchesNaiveMul(t *testing.T) {
	withScalarKernel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		defer SetTiling(SetTiling(DefaultTiling()))
		for iter := 0; iter < 80; iter++ {
			n, k, p := randShape(rng), randShape(rng), randShape(rng)
			tile := propertyTilings[rng.Intn(len(propertyTilings))]
			SetTiling(tile)
			a, b := New(n, k), New(k, p)
			randContents(a, rng)
			randContents(b, rng)
			blocked := New(n, p)
			blockedMulInto(blocked, a, b)
			naive := New(n, p)
			naiveMulInto(naive, a, b)
			if !Equal(blocked, naive, 1e-12) {
				t.Fatalf("iter %d: blocked (%dx%d)·(%dx%d) tiles %+v diverges from naive", iter, n, k, k, p, tile)
			}
		}
	})
}

// TestPropertyDispatchedKernelsMatchNaive exercises the public entry points
// at shapes straddling the cutover: whichever path dispatch picks, Mul, MulT
// and TMul must agree with their naive references within 1e-12.
func TestPropertyDispatchedKernelsMatchNaive(t *testing.T) {
	withScalarKernel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(13))
		defer SetTiling(SetTiling(DefaultTiling()))
		// 64^3 == BlockedCutover, so dims around 64 land on both sides.
		dims := []int{31, 63, 64, 65, 96, 128}
		for iter := 0; iter < 40; iter++ {
			n := dims[rng.Intn(len(dims))]
			k := dims[rng.Intn(len(dims))]
			p := dims[rng.Intn(len(dims))]
			SetTiling(propertyTilings[rng.Intn(len(propertyTilings))])
			a, b := New(n, k), New(k, p)
			randContents(a, rng)
			randContents(b, rng)
			if !Equal(Mul(a, b), MulNaive(a, b), 1e-12) {
				t.Fatalf("iter %d: Mul (%d,%d,%d) diverges from MulNaive", iter, n, k, p)
			}
			bt := New(p, k)
			randContents(bt, rng)
			wantMulT := New(n, p)
			naiveMulTInto(wantMulT, a, bt)
			if !Equal(MulT(a, bt), wantMulT, 1e-12) {
				t.Fatalf("iter %d: MulT (%d,%d,%d) diverges from naive", iter, n, k, p)
			}
			at := New(k, n)
			randContents(at, rng)
			wantTMul := New(n, p)
			naiveTMulInto(wantTMul, at, b)
			if !Equal(TMul(at, b), wantTMul, 1e-12) {
				t.Fatalf("iter %d: TMul (%d,%d,%d) diverges from naive", iter, n, k, p)
			}
		}
	})
}

// TestPropertyBlockedBitIdenticalAcrossWorkers enforces the tiled path's
// determinism contract: for any tiling and any shape — aligned or not — the
// blocked engine returns bit-identical results for every worker count.
func TestPropertyBlockedBitIdenticalAcrossWorkers(t *testing.T) {
	withScalarKernel(t, func(t *testing.T) {
		defer SetTiling(SetTiling(DefaultTiling()))
		shapes := [][3]int{{160, 120, 140}, {257, 129, 67}, {64, 512, 64}, {501, 33, 77}}
		for _, tile := range propertyTilings {
			SetTiling(tile)
			for _, s := range shapes {
				n, k, p := s[0], s[1], s[2]
				a, b := randDense(n, k, int64(n+k)), randDense(k, p, int64(k+p))
				orig := parallel.SetWorkers(1)
				serial := New(n, p)
				blockedMulInto(serial, a, b)
				for _, w := range []int{2, 3, 8} {
					parallel.SetWorkers(w)
					got := New(n, p)
					blockedMulInto(got, a, b)
					exactEqual(t, fmt.Sprintf("blocked %v tiles %+v workers=%d", s, tile, w), got, serial)
				}
				parallel.SetWorkers(orig)
			}
		}
	})
}
