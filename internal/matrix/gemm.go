// Blocked GEMM engine. Dense matrix products above a flop cutover run on a
// cache-tiled, pool-aware path: B is packed one KC x NC panel at a time into
// an nr-interleaved scratch buffer, each worker packs MC x KC panels of A
// into an mr-interleaved buffer, and an mr x nr register-blocked micro-kernel
// accumulates tile partial sums. Work is distributed over output rows with
// parallel.ForGrain, so every dst row is written by exactly one worker block
// and the per-element accumulation order (KC tiles ascending, then the
// shared dimension ascending within a tile) is a pure function of shapes and
// tile sizes — results are bit-identical for every worker count, exactly the
// contract the naive kernels already satisfy.
//
// Products below the cutover keep the naive kernels: for small operands the
// packing traffic costs more than the cache misses it avoids.
//
// The two paths agree to 1e-12 on finite inputs (enforced by the property
// suite). Non-finite operands are outside that contract: the naive kernels
// skip exact-zero A terms (a measurable win on post-ReLU activations), so
// 0·Inf contributes nothing there but NaN on the blocked path.
package matrix

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// mr x nr is the register tile of the micro-kernel: 16 independent
// accumulator chains, enough ILP to keep a scalar FPU busy without spilling.
const (
	mr = 4
	nr = 4
)

// BlockedCutover is the multiply-add count (rows x inner x cols) at and
// above which Mul, MulInto, MulT and TMul take the blocked engine; smaller
// products stay on the naive kernels.
const BlockedCutover = 1 << 18

// Tiling holds the blocked-GEMM tile sizes, all in elements:
//
//	MC — rows of A packed per panel by each worker (L2-resident with KC)
//	KC — shared-dimension depth of the A and B panels
//	NC — columns of B packed per panel (B panel is KC x NC, L2-resident)
type Tiling struct {
	MC, KC, NC int
}

// DefaultTiling returns the default tile sizes: an A panel of 64x256 (128 KiB)
// and a B panel of 256x128 (256 KiB), sized for common L2 caches while the
// 4-row dst stripe stays in L1.
func DefaultTiling() Tiling { return Tiling{MC: 64, KC: 256, NC: 128} }

// currentTiling holds the process-wide Tiling; nil means DefaultTiling().
var currentTiling atomic.Pointer[Tiling]

// SetTiling sets the process-wide blocked-GEMM tile sizes and returns the
// previous value so callers can restore it. Fields <= 0 fall back to the
// default; MC and NC are rounded up to multiples of the micro-kernel tile.
// Tile sizes affect only performance, never results.
func SetTiling(t Tiling) Tiling {
	prev := CurrentTiling()
	d := DefaultTiling()
	if t.MC <= 0 {
		t.MC = d.MC
	}
	if t.KC <= 0 {
		t.KC = d.KC
	}
	if t.NC <= 0 {
		t.NC = d.NC
	}
	t.MC = roundUp(t.MC, mr)
	t.NC = roundUp(t.NC, nr)
	currentTiling.Store(&t)
	return prev
}

// CurrentTiling returns the tile sizes the blocked engine is using.
func CurrentTiling() Tiling {
	if t := currentTiling.Load(); t != nil {
		return *t
	}
	return DefaultTiling()
}

// ParseTiling parses a "MC,KC,NC" spec (e.g. "64,256,128") as passed to the
// -gemm-tiles flag of cmd/adafgl-bench and the examples. A zero field keeps
// that tile's default.
func ParseTiling(s string) (Tiling, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return Tiling{}, fmt.Errorf("matrix: tiling spec %q, want \"MC,KC,NC\"", s)
	}
	var vals [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return Tiling{}, fmt.Errorf("matrix: tiling spec %q: bad field %q", s, p)
		}
		vals[i] = v
	}
	return Tiling{MC: vals[0], KC: vals[1], NC: vals[2]}, nil
}

// SetTilingSpec parses and applies a "MC,KC,NC" spec; the empty string is a
// no-op. One-line wiring for the -gemm-tiles flag, mirroring how
// parallel.SetWorkers backs -workers.
func SetTilingSpec(s string) error {
	if s == "" {
		return nil
	}
	t, err := ParseTiling(s)
	if err != nil {
		return err
	}
	SetTiling(t)
	return nil
}

// Mul returns a*b (matrix product).
func Mul(a, b *Dense) *Dense {
	shapeCheck(a.Cols == b.Rows, "Mul", a, b)
	out := New(a.Rows, b.Cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes dst = a*b. dst must be a.Rows x b.Cols and must not alias
// a or b.
func MulInto(dst, a, b *Dense) {
	shapeCheck(a.Cols == b.Rows, "MulInto", a, b)
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: MulInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if gemmFlops(a.Rows, a.Cols, b.Cols) >= BlockedCutover {
		blockedMulInto(dst, a, b)
		return
	}
	naiveMulInto(dst, a, b)
}

// MulT returns a * bᵀ, useful for similarity matrices H·Hᵀ. Above the
// cutover the blocked engine packs B panels straight from b's strided
// layout — no transposed temporary is materialised.
func MulT(a, b *Dense) *Dense {
	shapeCheck(a.Cols == b.Cols, "MulT", a, b)
	out := New(a.Rows, b.Rows)
	if gemmFlops(a.Rows, a.Cols, b.Rows) >= BlockedCutover {
		blockedGEMM(out, a, false, b, true)
		return out
	}
	naiveMulTInto(out, a, b)
	return out
}

// TMul returns aᵀ * b, the workhorse of dense gradient computation. Above
// the cutover the blocked engine packs A panels straight from a's strided
// layout — no transposed temporary is materialised.
func TMul(a, b *Dense) *Dense {
	shapeCheck(a.Rows == b.Rows, "TMul", a, b)
	out := New(a.Cols, b.Cols)
	if gemmFlops(a.Cols, a.Rows, b.Cols) >= BlockedCutover {
		blockedGEMM(out, a, true, b, false)
		return out
	}
	naiveTMulInto(out, a, b)
	return out
}

// MulNaive computes a*b on the naive kernel regardless of size. It is the
// reference implementation the property/equivalence harness and the
// BenchmarkGEMM sweep compare the blocked engine against.
func MulNaive(a, b *Dense) *Dense {
	shapeCheck(a.Cols == b.Rows, "MulNaive", a, b)
	out := New(a.Rows, b.Cols)
	naiveMulInto(out, a, b)
	return out
}

// gemmFlops estimates a product's multiply-add count for cutover and
// work-gate decisions.
func gemmFlops(n, k, p int) int { return n * k * p }

// ---- Naive kernels (reference path, small operands) ----

// naiveMulInto is the unblocked i-k-j product: streams b and dst rows for
// locality; row blocks write disjoint dst rows, so the parallel path is
// exact.
func naiveMulInto(dst, a, b *Dense) {
	dst.Zero()
	n, k, p := a.Rows, a.Cols, b.Cols
	parallel.ForWork(n, gemmFlops(n, k, p), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			drow := dst.Data[i*p : (i+1)*p]
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := b.Data[kk*p : (kk+1)*p]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// naiveMulTInto computes dst = a * bᵀ by row dot products.
func naiveMulTInto(dst, a, b *Dense) {
	parallel.ForWork(a.Rows, gemmFlops(a.Rows, a.Cols, b.Rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var s float64
				for t, av := range arow {
					s += av * brow[t]
				}
				orow[j] = s
			}
		}
	})
}

// naiveTMulInto computes dst = aᵀ * b. Parallelized over dst rows (a's
// columns): each block owns a disjoint stripe of dst, and for a fixed t the
// accumulation order over i is the same ascending order as the serial loop,
// keeping results exact.
func naiveTMulInto(dst, a, b *Dense) {
	dst.Zero()
	p := b.Cols
	parallel.ForWork(a.Cols, gemmFlops(a.Cols, a.Rows, b.Cols), func(tlo, thi int) {
		for i := 0; i < a.Rows; i++ {
			arow := a.Row(i)
			brow := b.Row(i)
			for t := tlo; t < thi; t++ {
				av := arow[t]
				if av == 0 {
					continue
				}
				orow := dst.Data[t*p : (t+1)*p]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// ---- Blocked engine ----

// blockedMulInto computes dst = a*b with panel packing and the mr x nr
// micro-kernel. Loop structure (GotoBLAS order, NC/KC/rows):
//
//	for each NC-wide column panel of B:
//	  for each KC-deep slice:                       // ascending, serial
//	    pack B[kc, jc] once (shared, read-only)
//	    parallel over dst rows (mr-aligned blocks):
//	      for each MC-high row chunk: pack A[ic, kc] per worker
//	        micro-kernels accumulate dst tiles
//
// Each dst element receives its KC-tile partial sums in ascending kc order,
// and each tile's partial sum is accumulated in ascending shared-dimension
// order inside the micro-kernel, so the arithmetic is independent of the
// worker count.
// packBuffers recycles panel scratch across GEMM calls and worker blocks:
// packing buffers are the hottest allocation in training loops (one A panel
// per worker block per (jc,kc) pair) and would otherwise be steady GC churn.
var packBuffers = sync.Pool{New: func() any { return new([]float64) }}

// getPackBuffer returns a scratch slice of length n (zeroing not needed —
// packing overwrites every element it reads back).
func getPackBuffer(n int) *[]float64 {
	buf := packBuffers.Get().(*[]float64)
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return buf
}

func blockedMulInto(dst, a, b *Dense) { blockedGEMM(dst, a, false, b, false) }

// blockedGEMM computes dst = op(a)·op(b), where op transposes the operand
// when its flag is set. Transposition happens inside the packing routines —
// they read the operand with the appropriate stride — so no transposed
// temporary is ever materialised and the tile/micro-kernel structure (and
// with it the determinism contract) is identical for all four variants.
func blockedGEMM(dst *Dense, a *Dense, aT bool, b *Dense, bT bool) {
	dst.Zero()
	n, k := a.Rows, a.Cols
	if aT {
		n, k = a.Cols, a.Rows
	}
	p := b.Cols
	if bT {
		p = b.Rows
	}
	if n == 0 || k == 0 || p == 0 {
		return
	}
	t := CurrentTiling()
	mc, kcT, ncT := t.MC, t.KC, t.NC
	bpBuf := getPackBuffer(min(kcT, k) * min(ncT, roundUp(p, nr)))
	defer packBuffers.Put(bpBuf)
	bp := *bpBuf
	for jc := 0; jc < p; jc += ncT {
		jw := min(ncT, p-jc)
		jwR := roundUp(jw, nr)
		for kc := 0; kc < k; kc += kcT {
			kw := min(kcT, k-kc)
			packB(bp, b, bT, kc, kw, jc, jw, jwR)
			parallel.ForWorkGrain(n, gemmFlops(n, kw, jw), mr, func(lo, hi int) {
				apBuf := getPackBuffer(mc * kw)
				defer packBuffers.Put(apBuf)
				ap := *apBuf
				for i0 := lo; i0 < hi; i0 += mc {
					iw := min(mc, hi-i0)
					iwR := roundUp(iw, mr)
					packA(ap, a, aT, i0, iw, iwR, kc, kw)
					for ir := 0; ir < iwR; ir += mr {
						vr := min(mr, iw-ir)
						apn := ap[(ir/mr)*kw*mr:]
						for jr := 0; jr < jwR; jr += nr {
							vc := min(nr, jw-jr)
							bpn := bp[(jr/nr)*kw*nr:]
							d := dst.Data[(i0+ir)*p+jc+jr:]
							if useSIMD && vr == mr && vc == nr {
								microKernelAVX(&d[0], p, kw, &apn[0], &bpn[0])
							} else {
								microKernel(d, p, vr, vc, kw, apn, bpn)
							}
						}
					}
				}
			})
		}
	}
}

// packB copies the kw x jw logical panel of op(b) at (kc, jc) into bp as
// nr-wide micro-panels: micro-panel g (columns jc+g*nr ..) occupies
// bp[g*kw*nr :] with element (kk, c) at kk*nr+c, trailing columns
// zero-padded. The micro-kernel then streams contiguous nr-vectors per
// shared-dim step. With bT set, logical element (kk, j) is b[j][kk], read
// contiguously along kk per column.
func packB(bp []float64, b *Dense, bT bool, kc, kw, jc, jw, jwR int) {
	for g := 0; g < jwR/nr; g++ {
		off := g * kw * nr
		j0 := jc + g*nr
		w := min(nr, jw-g*nr)
		if bT {
			k := b.Cols
			for c := 0; c < w; c++ {
				src := b.Data[(j0+c)*k+kc : (j0+c)*k+kc+kw]
				for kk, v := range src {
					bp[off+kk*nr+c] = v
				}
			}
			for c := w; c < nr; c++ {
				for kk := 0; kk < kw; kk++ {
					bp[off+kk*nr+c] = 0
				}
			}
			continue
		}
		p := b.Cols
		for kk := 0; kk < kw; kk++ {
			src := b.Data[(kc+kk)*p+j0 : (kc+kk)*p+j0+w]
			d := bp[off+kk*nr : off+kk*nr+nr]
			copy(d, src)
			for c := w; c < nr; c++ {
				d[c] = 0
			}
		}
	}
}

// packA copies the iw x kw logical panel of op(a) at (i0, kc) into ap as
// mr-high micro-panels: micro-panel g (rows i0+g*mr ..) occupies
// ap[g*kw*mr :] with element (kk, r) at kk*mr+r, trailing rows zero-padded.
// Padded rows are computed by the micro-kernel but never stored. With aT
// set, logical row i0+r is column i0+r of a, read contiguously along r per
// shared-dim step.
func packA(ap []float64, a *Dense, aT bool, i0, iw, iwR, kc, kw int) {
	for g := 0; g < iwR/mr; g++ {
		off := g * kw * mr
		h := min(mr, iw-g*mr)
		if aT {
			n := a.Cols
			base := i0 + g*mr
			for kk := 0; kk < kw; kk++ {
				src := a.Data[(kc+kk)*n+base : (kc+kk)*n+base+h]
				d := ap[off+kk*mr : off+kk*mr+mr]
				copy(d, src)
				for r := h; r < mr; r++ {
					d[r] = 0
				}
			}
			continue
		}
		k := a.Cols
		for r := 0; r < h; r++ {
			src := a.Data[(i0+g*mr+r)*k+kc : (i0+g*mr+r)*k+kc+kw]
			for kk, v := range src {
				ap[off+kk*mr+r] = v
			}
		}
		for r := h; r < mr; r++ {
			for kk := 0; kk < kw; kk++ {
				ap[off+kk*mr+r] = 0
			}
		}
	}
}

// microKernel accumulates an mr x nr tile partial sum over kw shared-dim
// steps from packed micro-panels ap (mr-interleaved) and bp (nr-interleaved)
// into dst, where dst[r*stride+c] addresses tile cell (r, c) and only the
// valid vr x vc region is stored. The 16 accumulators live in registers for
// the whole kw loop; terms are added in ascending kk order.
func microKernel(dst []float64, stride, vr, vc, kw int, ap, bp []float64) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	ap = ap[: kw*mr : kw*mr]
	bp = bp[: kw*nr : kw*nr]
	for kk := 0; kk < kw; kk++ {
		ao, bo := kk*mr, kk*nr
		a0, a1, a2, a3 := ap[ao], ap[ao+1], ap[ao+2], ap[ao+3]
		b0, b1, b2, b3 := bp[bo], bp[bo+1], bp[bo+2], bp[bo+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	if vr == mr && vc == nr {
		d := dst[0:4]
		d[0] += c00
		d[1] += c01
		d[2] += c02
		d[3] += c03
		d = dst[stride : stride+4]
		d[0] += c10
		d[1] += c11
		d[2] += c12
		d[3] += c13
		d = dst[2*stride : 2*stride+4]
		d[0] += c20
		d[1] += c21
		d[2] += c22
		d[3] += c23
		d = dst[3*stride : 3*stride+4]
		d[0] += c30
		d[1] += c31
		d[2] += c32
		d[3] += c33
		return
	}
	cs := [mr][nr]float64{
		{c00, c01, c02, c03},
		{c10, c11, c12, c13},
		{c20, c21, c22, c23},
		{c30, c31, c32, c33},
	}
	for r := 0; r < vr; r++ {
		d := dst[r*stride : r*stride+vc]
		for c := range d {
			d[c] += cs[r][c]
		}
	}
}

func roundUp(v, m int) int { return (v + m - 1) / m * m }
