package matrix

import (
	"math"
	"testing"
)

// Golden-value regression tests for the row-wise reduction kernels. Each
// case pins the exact expected output — these edge behaviors (uniform
// fallback, -Inf masking, tie-breaking) are relied on by the loss and
// accuracy layers and must not drift.

func TestSoftmaxRowsGoldenAllEqual(t *testing.T) {
	m, _ := FromRows([][]float64{
		{5, 5, 5, 5},
		{-2, -2, -2, -2},
		{0, 0, 0, 0},
	})
	got := SoftmaxRows(m)
	// exp(0) == 1 exactly for every entry, so each probability is exactly
	// 1/cols regardless of the shared logit value.
	for i := 0; i < got.Rows; i++ {
		for j := 0; j < got.Cols; j++ {
			if got.At(i, j) != 0.25 {
				t.Fatalf("row %d col %d = %v, want exactly 0.25", i, j, got.At(i, j))
			}
		}
	}
}

func TestSoftmaxRowsGoldenNegInf(t *testing.T) {
	inf := math.Inf(1)
	m, _ := FromRows([][]float64{
		{0, -inf, 0},       // masked middle: exactly [0.5, 0, 0.5]
		{-inf, 3, -inf},    // single survivor: exactly [0, 1, 0]
		{-inf, -inf, -inf}, // degenerate: uniform fallback 1/3
	})
	got := SoftmaxRows(m)
	want := [][]float64{
		{0.5, 0, 0.5},
		{0, 1, 0},
		{1.0 / 3, 1.0 / 3, 1.0 / 3},
	}
	for i, row := range want {
		for j, w := range row {
			if got.At(i, j) != w {
				t.Fatalf("row %d col %d = %v, want exactly %v", i, j, got.At(i, j), w)
			}
		}
	}
}

func TestSoftmaxRowsGoldenSingleColumn(t *testing.T) {
	m, _ := FromRows([][]float64{{3}, {-40}, {math.Inf(-1)}})
	got := SoftmaxRows(m)
	// One column: every row is a full probability mass of exactly 1, with
	// the all--Inf row saved by the uniform fallback.
	for i := 0; i < got.Rows; i++ {
		if got.At(i, 0) != 1 {
			t.Fatalf("row %d = %v, want exactly 1", i, got.At(i, 0))
		}
	}
}

func TestSoftmaxRowsGoldenNaN(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	m, _ := FromRows([][]float64{
		{nan, nan, nan},   // all NaN: must propagate, not fall back to uniform
		{1, nan, 2},       // NaN among finite logits: poisons the whole row
		{-inf, nan, -inf}, // NaN hidden behind -Inf max: still propagates
	})
	got := SoftmaxRows(m)
	for i := 0; i < got.Rows; i++ {
		for j := 0; j < got.Cols; j++ {
			if !math.IsNaN(got.At(i, j)) {
				t.Fatalf("row %d col %d = %v, want NaN", i, j, got.At(i, j))
			}
		}
	}
}

func TestSoftmaxRowsRowsSumToOne(t *testing.T) {
	m, _ := FromRows([][]float64{
		{1, 2, 3, 4},
		{-1000, 0, 1000, 2},
		{1e-300, -1e-300, 0, 1},
	})
	got := SoftmaxRows(m)
	for i := 0; i < got.Rows; i++ {
		var s float64
		for j := 0; j < got.Cols; j++ {
			v := got.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("row %d col %d = %v outside [0,1]", i, j, v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestArgmaxRowsGolden(t *testing.T) {
	inf := math.Inf(1)
	m, _ := FromRows([][]float64{
		{7, 7, 7},          // all equal: ties resolve to the first index
		{-inf, -inf, -inf}, // all -Inf: nothing beats the initial best, index 0
		{1, 3, 3},          // tie at the max: first of the tied wins
		{-5, -2, -9},       // interior max
		{0, -1, 2},         // max at the last column
		{-inf, -3, -inf},   // finite value beats -Inf
	})
	want := []int{0, 0, 1, 1, 2, 1}
	got := ArgmaxRows(m)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("row %d argmax = %d, want %d", i, got[i], w)
		}
	}
}

func TestArgmaxRowsSingleColumn(t *testing.T) {
	m, _ := FromRows([][]float64{{42}, {math.Inf(-1)}, {-0.5}})
	for i, v := range ArgmaxRows(m) {
		if v != 0 {
			t.Fatalf("row %d argmax = %d, want 0 (only column)", i, v)
		}
	}
}
