package matrix

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

func randDense(rows, cols int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// exactEqual fails the test unless a and b match bit-for-bit; the parallel
// kernels preserve the serial per-element arithmetic order, so tolerance-free
// comparison is the contract.
func exactEqual(t *testing.T, name string, got, want *Dense) {
	t.Helper()
	if !SameShape(got, want) {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if v != want.Data[i] {
			t.Fatalf("%s: element %d = %v, serial %v", name, i, v, want.Data[i])
		}
	}
}

func TestDenseKernelsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	// Sizes chosen to exceed parallel.MinWork so the parallel path runs.
	a := randDense(160, 120, 1)
	b := randDense(120, 140, 2)
	c := randDense(160, 120, 3)
	big := randDense(256, 256, 4)

	orig := parallel.SetWorkers(1)
	defer parallel.SetWorkers(orig)
	mul := Mul(a, b)
	mulT := MulT(a, c)
	tMul := TMul(a, c)
	add := Add(a, c)
	sub := Sub(a, c)
	had := Hadamard(a, c)
	scale := Scale(1.7, big)
	soft := SoftmaxRows(big)

	for _, w := range []int{2, 8} {
		parallel.SetWorkers(w)
		exactEqual(t, "Mul", Mul(a, b), mul)
		exactEqual(t, "MulT", MulT(a, c), mulT)
		exactEqual(t, "TMul", TMul(a, c), tMul)
		exactEqual(t, "Add", Add(a, c), add)
		exactEqual(t, "Sub", Sub(a, c), sub)
		exactEqual(t, "Hadamard", Hadamard(a, c), had)
		exactEqual(t, "Scale", Scale(1.7, big), scale)
		exactEqual(t, "SoftmaxRows", SoftmaxRows(big), soft)
	}
}

func TestInPlaceKernelsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	base := randDense(300, 120, 5)
	delta := randDense(300, 120, 6)

	orig := parallel.SetWorkers(1)
	defer parallel.SetWorkers(orig)
	serialAdd := base.Clone()
	AddInPlace(serialAdd, delta)
	serialScaled := base.Clone()
	AddScaled(serialScaled, 0.3, delta)

	parallel.SetWorkers(8)
	gotAdd := base.Clone()
	AddInPlace(gotAdd, delta)
	gotScaled := base.Clone()
	AddScaled(gotScaled, 0.3, delta)
	exactEqual(t, "AddInPlace", gotAdd, serialAdd)
	exactEqual(t, "AddScaled", gotScaled, serialScaled)
}
