// Package matrix provides dense row-major float64 matrices and the linear
// algebra primitives used throughout the AdaFGL reproduction: matrix
// multiplication, elementwise arithmetic, row-wise softmax, norms, and
// deterministic random initialisation.
//
// All operations are CPU-only and allocation-explicit; functions that write
// into an existing destination are suffixed Into. The zero value of Dense is
// an empty 0x0 matrix ready for use.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
)

// Dense is a dense row-major matrix of float64 values.
type Dense struct {
	Rows, Cols int
	// Data holds Rows*Cols values; element (i,j) is Data[i*Cols+j].
	Data []float64
}

// New returns a zeroed rows x cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: New negative dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (len rows*cols) as a rows x cols matrix without copying.
func FromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix from a slice of equal-length rows, copying data.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (no copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether a and b have identical dimensions.
func SameShape(a, b *Dense) bool { return a.Rows == b.Rows && a.Cols == b.Cols }

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("matrix: incompatible shapes")

// shapeCheck panics with a descriptive message on dimension mismatch.
// Internal invariant violations are programming errors, hence panic.
func shapeCheck(ok bool, op string, a, b *Dense) {
	if !ok {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Transpose returns mᵀ.
func Transpose(m *Dense) *Dense {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Add returns a+b.
func Add(a, b *Dense) *Dense {
	shapeCheck(SameShape(a, b), "Add", a, b)
	out := New(a.Rows, a.Cols)
	parallel.ForWork(len(a.Data), len(a.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
	})
	return out
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Dense) {
	shapeCheck(SameShape(a, b), "AddInPlace", a, b)
	parallel.ForWork(len(a.Data), len(a.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Data[i] += b.Data[i]
		}
	})
}

// AddScaled computes a += s*b.
func AddScaled(a *Dense, s float64, b *Dense) {
	shapeCheck(SameShape(a, b), "AddScaled", a, b)
	parallel.ForWork(len(a.Data), len(a.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Data[i] += s * b.Data[i]
		}
	})
}

// Sub returns a-b.
func Sub(a, b *Dense) *Dense {
	shapeCheck(SameShape(a, b), "Sub", a, b)
	out := New(a.Rows, a.Cols)
	parallel.ForWork(len(a.Data), len(a.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] - b.Data[i]
		}
	})
	return out
}

// Hadamard returns the elementwise product a⊙b.
func Hadamard(a, b *Dense) *Dense {
	shapeCheck(SameShape(a, b), "Hadamard", a, b)
	out := New(a.Rows, a.Cols)
	parallel.ForWork(len(a.Data), len(a.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] * b.Data[i]
		}
	})
	return out
}

// Scale returns s*m as a new matrix.
func Scale(s float64, m *Dense) *Dense {
	out := New(m.Rows, m.Cols)
	parallel.ForWork(len(m.Data), len(m.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = s * m.Data[i]
		}
	})
	return out
}

// ScaleInPlace multiplies every element of m by s.
func ScaleInPlace(m *Dense, s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddRowVector adds vector v (len Cols) to every row of m in place,
// implementing bias addition.
func AddRowVector(m *Dense, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("matrix: AddRowVector len %d, want %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, b := range v {
			row[j] += b
		}
	}
}

// ColSums returns the per-column sums of m (used for bias gradients).
func ColSums(m *Dense) []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// RowSums returns the per-row sums of m.
func RowSums(m *Dense) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		out[i] = s
	}
	return out
}

// SoftmaxRows returns the row-wise softmax of m, numerically stabilised by
// subtracting the row max.
func SoftmaxRows(m *Dense) *Dense {
	out := New(m.Rows, m.Cols)
	// exp is expensive relative to a flop; weight the work estimate so
	// moderately sized logit matrices still parallelize.
	parallel.ForWork(m.Rows, 8*len(m.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			softmaxRow(m.Row(i), out.Row(i), m.Cols)
		}
	})
	return out
}

// softmaxRow writes the stabilised softmax of row into orow.
func softmaxRow(row, orow []float64, cols int) {
	max := math.Inf(-1)
	for _, v := range row {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		// No logit beat -Inf. NaNs (invisible to the > comparison) must
		// propagate rather than be masked; a genuinely all--Inf row falls
		// back to uniform so fully-masked rows keep a finite loss.
		for _, v := range row {
			if math.IsNaN(v) {
				nan := math.NaN()
				for j := range orow {
					orow[j] = nan
				}
				return
			}
		}
		u := 1 / float64(cols)
		for j := range orow {
			orow[j] = u
		}
		return
	}
	// max > -Inf, so when it is finite the max element contributes
	// exp(0) == 1 and sum >= 1: the normalisation is well-defined. NaN
	// logits — and +Inf logits, for which exp(Inf-Inf) is NaN — make sum
	// NaN and propagate through the division.
	var sum float64
	for j, v := range row {
		e := math.Exp(v - max)
		orow[j] = e
		sum += e
	}
	inv := 1 / sum
	for j := range orow {
		orow[j] *= inv
	}
}

// ArgmaxRows returns, for each row, the index of its maximum element.
func ArgmaxRows(m *Dense) []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// ConcatCols horizontally concatenates the given matrices, which must share a
// row count.
func ConcatCols(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	total := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("matrix: ConcatCols row mismatch %d vs %d", m.Rows, rows))
		}
		total += m.Cols
	}
	out := New(rows, total)
	for i := 0; i < rows; i++ {
		off := 0
		orow := out.Row(i)
		for _, m := range ms {
			copy(orow[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// SliceCols returns a copy of columns [lo, hi) of m.
func SliceCols(m *Dense, lo, hi int) *Dense {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("matrix: SliceCols [%d,%d) of %d cols", lo, hi, m.Cols))
	}
	out := New(m.Rows, hi-lo)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out
}

// SelectRows returns a copy of the rows of m indexed by idx, in order.
func SelectRows(m *Dense, idx []int) *Dense {
	out := New(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm sqrt(Σ m_ij²).
func FrobeniusNorm(m *Dense) float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns max |m_ij|, used for gradient-clipping diagnostics.
func MaxAbs(m *Dense) float64 {
	var s float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// XavierUniform fills m with Glorot-uniform values in
// [-sqrt(6/(fanIn+fanOut)), +sqrt(6/(fanIn+fanOut))].
func XavierUniform(m *Dense, rng *rand.Rand) {
	bound := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * bound
	}
}

// KaimingUniform fills m with He-uniform values scaled by fan-in, suited to
// ReLU networks.
func KaimingUniform(m *Dense, rng *rand.Rand) {
	bound := math.Sqrt(6.0 / float64(m.Rows))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * bound
	}
}

// RandomNormal fills m with N(mean, std²) values.
func RandomNormal(m *Dense, mean, std float64, rng *rand.Rand) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()*std + mean
	}
}

// Equal reports whether a and b have the same shape and all elements within
// tol of each other. NaN is treated consistently: NaN matches NaN (so two
// kernels that both produce NaN at a position compare equal) and nothing
// else — previously |NaN-x| > tol was always false, silently equating NaN
// with every finite value.
func Equal(a, b *Dense, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i, v := range a.Data {
		w := b.Data[i]
		if math.IsNaN(v) || math.IsNaN(w) {
			if math.IsNaN(v) != math.IsNaN(w) {
				return false
			}
			continue
		}
		if math.Abs(v-w) > tol {
			return false
		}
	}
	return true
}

// Mean returns the arithmetic mean of all elements (0 for empty matrices).
func Mean(m *Dense) float64 {
	if len(m.Data) == 0 {
		return 0
	}
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s / float64(len(m.Data))
}

// NormalizeRowsL1 scales each row of m in place to sum to 1. Rows summing to
// zero are left untouched.
func NormalizeRowsL1(m *Dense) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += math.Abs(v)
		}
		if s == 0 {
			continue
		}
		inv := 1 / s
		for j := range row {
			row[j] *= inv
		}
	}
}

// String renders small matrices for debugging.
func (m *Dense) String() string {
	if m.Rows*m.Cols > 400 {
		return fmt.Sprintf("Dense(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Dense(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
