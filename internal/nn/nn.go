// Package nn implements the neural-network training substrate for the AdaFGL
// reproduction: parameters with gradients, linear layers, activations,
// dropout, softmax cross-entropy, optimisers (SGD, Adam) and parameter
// (de)serialisation for federated model transport. Backpropagation is manual:
// each layer caches its forward inputs and exposes Backward.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/matrix"
)

// Parameter is a trainable tensor with an accumulated gradient.
type Parameter struct {
	Name  string
	Value *matrix.Dense
	Grad  *matrix.Dense
}

// NewParameter allocates a named rows x cols parameter with a zero gradient.
func NewParameter(name string, rows, cols int) *Parameter {
	return &Parameter{Name: name, Value: matrix.New(rows, cols), Grad: matrix.New(rows, cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Parameter) ZeroGrad() { p.Grad.Zero() }

// Module is anything exposing trainable parameters.
type Module interface {
	Params() []*Parameter
}

// ZeroGrads clears gradients of every parameter of m.
func ZeroGrads(m Module) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total scalar parameter count of m.
func NumParams(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Value.Data)
	}
	return n
}

// Flatten serialises all parameter values of m into one vector, the unit of
// federated communication (model upload/broadcast).
func Flatten(m Module) []float64 {
	out := make([]float64, 0, NumParams(m))
	for _, p := range m.Params() {
		out = append(out, p.Value.Data...)
	}
	return out
}

// Unflatten loads a vector produced by Flatten back into m's parameters.
func Unflatten(m Module, v []float64) error {
	off := 0
	for _, p := range m.Params() {
		n := len(p.Value.Data)
		if off+n > len(v) {
			return fmt.Errorf("nn: Unflatten vector too short: have %d, need >= %d", len(v), off+n)
		}
		copy(p.Value.Data, v[off:off+n])
		off += n
	}
	if off != len(v) {
		return fmt.Errorf("nn: Unflatten vector too long: %d values for %d params", len(v), off)
	}
	return nil
}

// FlattenGrads serialises all gradients of m (GCFL+ clusters on gradients).
func FlattenGrads(m Module) []float64 {
	out := make([]float64, 0, NumParams(m))
	for _, p := range m.Params() {
		out = append(out, p.Grad.Data...)
	}
	return out
}

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	W *Parameter // in x out
	B *Parameter // 1 x out

	lastInput *matrix.Dense
}

// NewLinear creates a Linear layer with Xavier-uniform weights.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		W: NewParameter(name+".W", in, out),
		B: NewParameter(name+".B", 1, out),
	}
	matrix.XavierUniform(l.W.Value, rng)
	return l
}

// Params implements Module.
func (l *Linear) Params() []*Parameter { return []*Parameter{l.W, l.B} }

// Forward computes x·W + b, caching x for Backward.
func (l *Linear) Forward(x *matrix.Dense) *matrix.Dense {
	l.lastInput = x
	out := matrix.Mul(x, l.W.Value)
	matrix.AddRowVector(out, l.B.Value.Data)
	return out
}

// Backward accumulates dL/dW and dL/db from dL/dy and returns dL/dx.
func (l *Linear) Backward(gradOut *matrix.Dense) *matrix.Dense {
	if l.lastInput == nil {
		panic("nn: Linear.Backward before Forward")
	}
	matrix.AddInPlace(l.W.Grad, matrix.TMul(l.lastInput, gradOut))
	bias := matrix.ColSums(gradOut)
	for j, v := range bias {
		l.B.Grad.Data[j] += v
	}
	return matrix.MulT(gradOut, l.W.Value) // gradOut · Wᵀ
}

// ReLU is the rectified linear activation with cached mask.
type ReLU struct {
	mask []bool
}

// Forward returns max(x, 0) elementwise.
func (r *ReLU) Forward(x *matrix.Dense) *matrix.Dense {
	out := matrix.New(x.Rows, x.Cols)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward zeroes gradient where the forward input was non-positive.
func (r *ReLU) Backward(gradOut *matrix.Dense) *matrix.Dense {
	out := matrix.New(gradOut.Rows, gradOut.Cols)
	for i, v := range gradOut.Data {
		if r.mask[i] {
			out.Data[i] = v
		}
	}
	return out
}

// Dropout zeroes activations with probability P during training and rescales
// survivors by 1/(1-P) (inverted dropout).
type Dropout struct {
	P    float64
	rng  *rand.Rand
	mask []float64
}

// NewDropout creates a Dropout layer; p outside (0,1) disables it.
func NewDropout(p float64, rng *rand.Rand) *Dropout { return &Dropout{P: p, rng: rng} }

// Forward applies dropout when train is true; identity otherwise.
func (d *Dropout) Forward(x *matrix.Dense, train bool) *matrix.Dense {
	if !train || d.P <= 0 || d.P >= 1 {
		d.mask = nil
		return x
	}
	out := matrix.New(x.Rows, x.Cols)
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float64, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = 0
		} else {
			d.mask[i] = scale
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward routes gradients through the surviving units.
func (d *Dropout) Backward(gradOut *matrix.Dense) *matrix.Dense {
	if d.mask == nil {
		return gradOut
	}
	out := matrix.New(gradOut.Rows, gradOut.Cols)
	for i, v := range gradOut.Data {
		out.Data[i] = v * d.mask[i]
	}
	return out
}

// SoftmaxCrossEntropy computes the mean masked cross-entropy between
// row-softmaxed logits and integer labels, plus dL/dlogits. Only rows with
// mask true contribute; the gradient of other rows is zero. Returns loss 0
// and a zero gradient when the mask is empty.
func SoftmaxCrossEntropy(logits *matrix.Dense, labels []int, mask []bool) (float64, *matrix.Dense) {
	probs := matrix.SoftmaxRows(logits)
	grad := matrix.New(logits.Rows, logits.Cols)
	count := 0
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		if mask != nil && !mask[i] {
			continue
		}
		count++
		c := labels[i]
		p := probs.At(i, c)
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		grow := grad.Row(i)
		prow := probs.Row(i)
		copy(grow, prow)
		grow[c] -= 1
	}
	if count == 0 {
		return 0, grad
	}
	inv := 1 / float64(count)
	loss *= inv
	matrix.ScaleInPlace(grad, inv)
	return loss, grad
}

// MSELoss computes mean squared error ‖a-b‖²/(n) and dL/da.
func MSELoss(a, b *matrix.Dense) (float64, *matrix.Dense) {
	if !matrix.SameShape(a, b) {
		panic("nn: MSELoss shape mismatch")
	}
	n := float64(len(a.Data))
	if n == 0 {
		return 0, matrix.New(a.Rows, a.Cols)
	}
	grad := matrix.New(a.Rows, a.Cols)
	var loss float64
	for i, v := range a.Data {
		d := v - b.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}

// Optimizer updates module parameters from their accumulated gradients.
type Optimizer interface {
	Step(m Module)
}

// SGD is stochastic gradient descent with optional L2 weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// Step applies one SGD update.
func (o *SGD) Step(m Module) {
	for _, p := range m.Params() {
		for i, g := range p.Grad.Data {
			if o.WeightDecay > 0 {
				g += o.WeightDecay * p.Value.Data[i]
			}
			p.Value.Data[i] -= o.LR * g
		}
	}
}

// Adam implements the Adam optimiser (Kingma & Ba) with per-parameter state
// keyed by parameter identity.
type Adam struct {
	LR, Beta1, Beta2, Eps, WeightDecay float64

	t     int
	state map[*Parameter]*adamState
}

type adamState struct{ m, v []float64 }

// NewAdam returns an Adam optimiser with the standard defaults.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		state: make(map[*Parameter]*adamState)}
}

// Step applies one Adam update to every parameter of m.
func (o *Adam) Step(m Module) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range m.Params() {
		st := o.state[p]
		if st == nil {
			st = &adamState{m: make([]float64, len(p.Value.Data)), v: make([]float64, len(p.Value.Data))}
			o.state[p] = st
		}
		for i, g := range p.Grad.Data {
			if o.WeightDecay > 0 {
				g += o.WeightDecay * p.Value.Data[i]
			}
			st.m[i] = o.Beta1*st.m[i] + (1-o.Beta1)*g
			st.v[i] = o.Beta2*st.v[i] + (1-o.Beta2)*g*g
			mHat := st.m[i] / bc1
			vHat := st.v[i] / bc2
			p.Value.Data[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
		}
	}
}

// ClipGradNorm rescales all gradients of m so their global L2 norm does not
// exceed maxNorm; returns the pre-clip norm.
func ClipGradNorm(m Module, maxNorm float64) float64 {
	var sq float64
	for _, p := range m.Params() {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range m.Params() {
			matrix.ScaleInPlace(p.Grad, scale)
		}
	}
	return norm
}

// ParamGroup aggregates several modules into one Module (for joint
// optimisation of decoupled components, e.g. AdaFGL Step 2).
type ParamGroup []Module

// Params implements Module.
func (g ParamGroup) Params() []*Parameter {
	var out []*Parameter
	for _, m := range g {
		out = append(out, m.Params()...)
	}
	return out
}
