package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestLinearForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("l", 2, 2, rng)
	l.W.Value, _ = matrix.FromRows([][]float64{{1, 0}, {0, 2}})
	l.B.Value.Data = []float64{1, -1}
	x, _ := matrix.FromRows([][]float64{{3, 4}})
	y := l.Forward(x)
	if y.At(0, 0) != 4 || y.At(0, 1) != 7 {
		t.Fatalf("Forward = %v", y)
	}
}

// numericalGrad estimates dLoss/dθ by central differences.
func numericalGrad(theta []float64, i int, loss func() float64) float64 {
	const h = 1e-5
	orig := theta[i]
	theta[i] = orig + h
	lp := loss()
	theta[i] = orig - h
	lm := loss()
	theta[i] = orig
	return (lp - lm) / (2 * h)
}

func TestLinearGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear("l", 3, 2, rng)
	x := matrix.New(4, 3)
	matrix.RandomNormal(x, 0, 1, rng)
	labels := []int{0, 1, 1, 0}

	loss := func() float64 {
		y := l.Forward(x)
		lv, _ := SoftmaxCrossEntropy(y, labels, nil)
		return lv
	}
	// Analytic gradients.
	ZeroGrads(l)
	y := l.Forward(x)
	_, g := SoftmaxCrossEntropy(y, labels, nil)
	gx := l.Backward(g)

	for _, p := range l.Params() {
		for i := range p.Value.Data {
			num := numericalGrad(p.Value.Data, i, loss)
			if math.Abs(num-p.Grad.Data[i]) > 1e-6 {
				t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
	// Input gradient check.
	for i := range x.Data {
		num := numericalGrad(x.Data, i, loss)
		if math.Abs(num-gx.Data[i]) > 1e-6 {
			t.Fatalf("dL/dx[%d]: analytic %v vs numeric %v", i, gx.Data[i], num)
		}
	}
}

func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP("mlp", []int{4, 5, 3}, 0, rng) // dropout off for determinism
	x := matrix.New(6, 4)
	matrix.RandomNormal(x, 0, 1, rng)
	labels := []int{0, 1, 2, 0, 1, 2}
	mask := []bool{true, true, false, true, true, true}

	loss := func() float64 {
		y := m.Forward(x)
		lv, _ := SoftmaxCrossEntropy(y, labels, mask)
		return lv
	}
	ZeroGrads(m)
	y := m.Forward(x)
	_, g := SoftmaxCrossEntropy(y, labels, mask)
	m.Backward(g)

	for _, p := range m.Params() {
		for i := range p.Value.Data {
			num := numericalGrad(p.Value.Data, i, loss)
			if math.Abs(num-p.Grad.Data[i]) > 1e-5 {
				t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestSoftmaxCrossEntropyMaskedRows(t *testing.T) {
	logits, _ := matrix.FromRows([][]float64{{10, 0}, {0, 10}})
	labels := []int{0, 0}
	_, g := SoftmaxCrossEntropy(logits, labels, []bool{true, false})
	for _, v := range g.Row(1) {
		if v != 0 {
			t.Fatal("masked row must have zero gradient")
		}
	}
	loss, _ := SoftmaxCrossEntropy(logits, labels, []bool{false, false})
	if loss != 0 {
		t.Fatal("empty mask must give zero loss")
	}
}

func TestSoftmaxCrossEntropyPerfectPrediction(t *testing.T) {
	logits, _ := matrix.FromRows([][]float64{{100, 0, 0}})
	loss, _ := SoftmaxCrossEntropy(logits, []int{0}, nil)
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction loss = %v", loss)
	}
}

func TestMSELoss(t *testing.T) {
	a, _ := matrix.FromRows([][]float64{{1, 2}})
	b, _ := matrix.FromRows([][]float64{{0, 0}})
	loss, grad := MSELoss(a, b)
	if math.Abs(loss-2.5) > 1e-12 { // (1+4)/2
		t.Fatalf("MSE = %v, want 2.5", loss)
	}
	if math.Abs(grad.At(0, 1)-2.0) > 1e-12 { // 2*2/2
		t.Fatalf("grad = %v", grad)
	}
}

func TestMSEGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := matrix.New(3, 2), matrix.New(3, 2)
	matrix.RandomNormal(a, 0, 1, rng)
	matrix.RandomNormal(b, 0, 1, rng)
	_, grad := MSELoss(a, b)
	loss := func() float64 { l, _ := MSELoss(a, b); return l }
	for i := range a.Data {
		num := numericalGrad(a.Data, i, loss)
		if math.Abs(num-grad.Data[i]) > 1e-6 {
			t.Fatalf("MSE grad[%d] analytic %v numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x, _ := matrix.FromRows([][]float64{{-1, 2}, {0, -3}})
	y := r.Forward(x)
	if y.At(0, 0) != 0 || y.At(0, 1) != 2 || y.At(1, 0) != 0 {
		t.Fatalf("ReLU forward = %v", y)
	}
	g, _ := matrix.FromRows([][]float64{{5, 5}, {5, 5}})
	gx := r.Backward(g)
	if gx.At(0, 0) != 0 || gx.At(0, 1) != 5 {
		t.Fatalf("ReLU backward = %v", gx)
	}
}

func TestDropoutEvalIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout(0.5, rng)
	x := matrix.New(3, 3)
	matrix.RandomNormal(x, 0, 1, rng)
	y := d.Forward(x, false)
	if !matrix.Equal(x, y, 0) {
		t.Fatal("eval-mode dropout must be identity")
	}
}

func TestDropoutTrainExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDropout(0.3, rng)
	x := matrix.New(200, 50)
	x.Fill(1)
	y := d.Forward(x, true)
	// Inverted dropout preserves expectation ≈ 1.
	if m := matrix.Mean(y); math.Abs(m-1) > 0.05 {
		t.Fatalf("dropout mean = %v, want ≈1", m)
	}
	// Backward must use the same mask.
	g := matrix.New(200, 50)
	g.Fill(1)
	gb := d.Backward(g)
	for i := range y.Data {
		if (y.Data[i] == 0) != (gb.Data[i] == 0) {
			t.Fatal("dropout backward mask differs from forward")
		}
	}
}

func TestSGDStepAndWeightDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewLinear("l", 1, 1, rng)
	l.W.Value.Data[0] = 2
	l.W.Grad.Data[0] = 1
	(&SGD{LR: 0.1}).Step(l)
	if math.Abs(l.W.Value.Data[0]-1.9) > 1e-12 {
		t.Fatalf("SGD step got %v", l.W.Value.Data[0])
	}
	l.W.Grad.Data[0] = 0
	(&SGD{LR: 0.1, WeightDecay: 1}).Step(l)
	if l.W.Value.Data[0] >= 1.9 {
		t.Fatal("weight decay must shrink weights")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewLinear("l", 1, 1, rng)
	opt := NewAdam(0.1, 0)
	// Minimise (w - 3)² via manual gradient.
	for i := 0; i < 300; i++ {
		ZeroGrads(l)
		l.W.Grad.Data[0] = 2 * (l.W.Value.Data[0] - 3)
		opt.Step(l)
	}
	if math.Abs(l.W.Value.Data[0]-3) > 1e-2 {
		t.Fatalf("Adam did not converge: w = %v", l.W.Value.Data[0])
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP("m", []int{3, 4, 2}, 0.5, rng)
	v := Flatten(m)
	if len(v) != NumParams(m) {
		t.Fatalf("Flatten len %d, want %d", len(v), NumParams(m))
	}
	m2 := NewMLP("m", []int{3, 4, 2}, 0.5, rng)
	if err := Unflatten(m2, v); err != nil {
		t.Fatal(err)
	}
	v2 := Flatten(m2)
	for i := range v {
		if v[i] != v2[i] {
			t.Fatal("round trip mismatch")
		}
	}
	if err := Unflatten(m2, v[:len(v)-1]); err == nil {
		t.Fatal("short vector must error")
	}
	if err := Unflatten(m2, append(v, 0)); err == nil {
		t.Fatal("long vector must error")
	}
}

func TestClipGradNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := NewLinear("l", 2, 2, rng)
	for i := range l.W.Grad.Data {
		l.W.Grad.Data[i] = 10
	}
	pre := ClipGradNorm(l, 1)
	if pre < 10 {
		t.Fatalf("pre-clip norm = %v", pre)
	}
	var sq float64
	for _, p := range l.Params() {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v, want 1", math.Sqrt(sq))
	}
}

func TestParamGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewLinear("a", 2, 2, rng)
	b := NewLinear("b", 2, 2, rng)
	g := ParamGroup{a, b}
	if len(g.Params()) != 4 {
		t.Fatalf("ParamGroup params = %d, want 4", len(g.Params()))
	}
}

func TestMLPTrainsOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 60
	x := matrix.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		labels[i] = c
		x.Set(i, 0, rng.NormFloat64()+float64(c*4))
		x.Set(i, 1, rng.NormFloat64())
	}
	m := NewMLP("m", []int{2, 8, 2}, 0, rng)
	opt := NewAdam(0.05, 0)
	m.SetTraining(true)
	for e := 0; e < 100; e++ {
		ZeroGrads(m)
		y := m.Forward(x)
		_, g := SoftmaxCrossEntropy(y, labels, nil)
		m.Backward(g)
		opt.Step(m)
	}
	m.SetTraining(false)
	pred := matrix.ArgmaxRows(m.Forward(x))
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.95 {
		t.Fatalf("MLP accuracy %v on separable data", acc)
	}
}

// Property: softmax CE gradient rows sum to 0 for unmasked rows (probability
// simplex tangency), a structural invariant of the loss.
func TestQuickCEGradRowsSumZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := 1+rng.Intn(5), 2+rng.Intn(4)
		logits := matrix.New(n, c)
		matrix.RandomNormal(logits, 0, 2, rng)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(c)
		}
		_, g := SoftmaxCrossEntropy(logits, labels, nil)
		for i := 0; i < n; i++ {
			var s float64
			for _, v := range g.Row(i) {
				s += v
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMLPTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP("m", []int{64, 64, 8}, 0.5, rng)
	x := matrix.New(500, 64)
	matrix.RandomNormal(x, 0, 1, rng)
	labels := make([]int, 500)
	for i := range labels {
		labels[i] = rng.Intn(8)
	}
	opt := NewAdam(0.01, 0)
	m.SetTraining(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ZeroGrads(m)
		y := m.Forward(x)
		_, g := SoftmaxCrossEntropy(y, labels, nil)
		m.Backward(g)
		opt.Step(m)
	}
}
