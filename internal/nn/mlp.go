package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/matrix"
)

// MLP is a multi-layer perceptron: Linear → ReLU → Dropout repeated, with a
// final Linear producing logits. It is the MessageUpdater of Eq. (7), the
// topology-independent feature encoder of Eq. (10) and the message encoder of
// Eq. (11) in the AdaFGL paper, and the client model of several baselines.
type MLP struct {
	Layers   []*Linear
	acts     []*ReLU
	drops    []*Dropout
	training bool
}

// NewMLP builds an MLP with the given layer dimensions, e.g.
// dims = [in, hidden, out] for a two-layer network.
func NewMLP(name string, dims []int, dropout float64, rng *rand.Rand) *MLP {
	if len(dims) < 2 {
		panic(fmt.Sprintf("nn: MLP needs >= 2 dims, got %v", dims))
	}
	m := &MLP{}
	for i := 0; i+1 < len(dims); i++ {
		m.Layers = append(m.Layers, NewLinear(fmt.Sprintf("%s.l%d", name, i), dims[i], dims[i+1], rng))
		if i+2 < len(dims) {
			m.acts = append(m.acts, &ReLU{})
			m.drops = append(m.drops, NewDropout(dropout, rng))
		}
	}
	return m
}

// Params implements Module.
func (m *MLP) Params() []*Parameter {
	var out []*Parameter
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// SetTraining toggles dropout.
func (m *MLP) SetTraining(train bool) { m.training = train }

// Forward runs the network, caching activations for Backward.
func (m *MLP) Forward(x *matrix.Dense) *matrix.Dense {
	h := x
	for i, l := range m.Layers {
		h = l.Forward(h)
		if i < len(m.acts) {
			h = m.acts[i].Forward(h)
			h = m.drops[i].Forward(h, m.training)
		}
	}
	return h
}

// Backward backpropagates dL/dlogits through the whole stack and returns
// dL/dinput.
func (m *MLP) Backward(gradOut *matrix.Dense) *matrix.Dense {
	g := gradOut
	for i := len(m.Layers) - 1; i >= 0; i-- {
		if i < len(m.acts) {
			g = m.drops[i].Backward(g)
			g = m.acts[i].Backward(g)
		}
		g = m.Layers[i].Backward(g)
	}
	return g
}

// OutDim returns the output dimension of the final layer.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].W.Value.Cols }

// InDim returns the expected input dimension.
func (m *MLP) InDim() int { return m.Layers[0].W.Value.Rows }
