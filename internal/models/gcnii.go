package models

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/nn"
	"repro/internal/sparse"
)

// GCNII implements Chen et al.'s deep GCN with initial residual and identity
// mapping (Sec. II-B of the paper). Layer l computes
//
//	U^(l) = (1-α)·Ã·H^(l-1) + α·H^(0)
//	H^(l) = ReLU( U^(l) · ((1-β_l)·I + β_l·W^(l)) ),  β_l = λ/l
//
// with an input encoder H^(0) = ReLU(X·W_in) and an output head.
type GCNII struct {
	g   *graph.Graph
	adj *sparse.Plan // reusable blocked-SpMM plan for Ã

	in   *nn.Linear
	out  *nn.Linear
	ws   []*nn.Parameter // hidden x hidden per layer
	drop *nn.Dropout

	alpha  float64
	lambda float64

	// forward caches
	inAct *nn.ReLU
	acts  []*nn.ReLU
	h0    *matrix.Dense
	us    []*matrix.Dense // U^(l)
	hLast *matrix.Dense
	betas []float64
}

// NewGCNII builds a GCNII with cfg.Hops hidden layers.
func NewGCNII(g *graph.Graph, cfg Config, rng *rand.Rand) *GCNII {
	layers := cfg.Hops
	if layers < 1 {
		layers = 1
	}
	m := &GCNII{
		g:      g,
		adj:    g.NormAdjPlan(sparse.NormSym),
		in:     nn.NewLinear("gcnii.in", g.X.Cols, cfg.Hidden, rng),
		out:    nn.NewLinear("gcnii.out", cfg.Hidden, g.Classes, rng),
		drop:   nn.NewDropout(cfg.Dropout, rng),
		alpha:  cfg.Alpha,
		lambda: 0.5,
		inAct:  &nn.ReLU{},
	}
	if m.alpha <= 0 || m.alpha >= 1 {
		m.alpha = 0.1
	}
	for l := 1; l <= layers; l++ {
		w := nn.NewParameter("gcnii.w", cfg.Hidden, cfg.Hidden)
		matrix.XavierUniform(w.Value, rng)
		m.ws = append(m.ws, w)
		m.acts = append(m.acts, &nn.ReLU{})
		m.betas = append(m.betas, m.lambda/float64(l))
	}
	return m
}

// Params implements nn.Module.
func (m *GCNII) Params() []*nn.Parameter {
	out := append(m.in.Params(), m.out.Params()...)
	return append(out, m.ws...)
}

// Logits implements Model.
func (m *GCNII) Logits(train bool) *matrix.Dense {
	h := m.in.Forward(m.drop.Forward(m.g.X, train))
	h = m.inAct.Forward(h)
	m.h0 = h
	m.us = m.us[:0]
	for l, w := range m.ws {
		ah := m.adj.MulDense(h)
		u := matrix.Scale(1-m.alpha, ah)
		matrix.AddScaled(u, m.alpha, m.h0)
		m.us = append(m.us, u)
		beta := m.betas[l]
		// V = (1-β)·U + β·U·W
		v := matrix.Scale(1-beta, u)
		matrix.AddScaled(v, beta, matrix.Mul(u, w.Value))
		h = m.acts[l].Forward(v)
	}
	m.hLast = h
	return m.out.Forward(h)
}

// Backward implements Model.
func (m *GCNII) Backward(grad *matrix.Dense) {
	dh := m.out.Backward(grad)
	dh0 := matrix.New(m.h0.Rows, m.h0.Cols)
	for l := len(m.ws) - 1; l >= 0; l-- {
		dv := m.acts[l].Backward(dh)
		beta := m.betas[l]
		w := m.ws[l]
		// dW += β·Uᵀ·dV ; dU = (1-β)·dV + β·dV·Wᵀ
		matrix.AddScaled(w.Grad, beta, matrix.TMul(m.us[l], dv))
		du := matrix.Scale(1-beta, dv)
		matrix.AddScaled(du, beta, matrix.MulT(dv, w.Value))
		// U = (1-α)ÃH + αH0.
		matrix.AddScaled(dh0, m.alpha, du)
		dh = matrix.Scale(1-m.alpha, m.adj.MulDense(du))
	}
	matrix.AddInPlace(dh0, dh)
	g := m.inAct.Backward(dh0)
	g = m.in.Backward(g)
	m.drop.Backward(g)
}
