package models

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/nn"
	"repro/internal/sparse"
)

// GCN is the two-layer graph convolutional network of Kipf & Welling
// (Eq. (1) of the AdaFGL paper with r = 1/2):
//
//	Z = Ã · ReLU(Ã · X · W₁) · W₂
//
// Backpropagation through the SpMM uses Ãᵀ = Ã (symmetric normalisation).
type GCN struct {
	g    *graph.Graph
	adj  *sparse.Plan // reusable blocked-SpMM plan for Ã
	l1   *nn.Linear
	l2   *nn.Linear
	act  *nn.ReLU
	drop *nn.Dropout

	// forward caches
	h1 *matrix.Dense // Ã·X·W₁ pre-activation input to layer 2 chain
}

// NewGCN builds a 2-layer GCN bound to g. The Ã propagation plan is shared
// with every other model bound to g, so its blocking cost is amortised
// across all forward/backward passes of a training run.
func NewGCN(g *graph.Graph, cfg Config, rng *rand.Rand) *GCN {
	return &GCN{
		g:    g,
		adj:  g.NormAdjPlan(sparse.NormSym),
		l1:   nn.NewLinear("gcn.l1", g.X.Cols, cfg.Hidden, rng),
		l2:   nn.NewLinear("gcn.l2", cfg.Hidden, g.Classes, rng),
		act:  &nn.ReLU{},
		drop: nn.NewDropout(cfg.Dropout, rng),
	}
}

// Params implements nn.Module.
func (m *GCN) Params() []*nn.Parameter {
	return append(m.l1.Params(), m.l2.Params()...)
}

// Logits implements Model: Ã·dropout(ReLU(Ã·X·W₁))·W₂.
func (m *GCN) Logits(train bool) *matrix.Dense {
	ax := m.adj.MulDense(m.g.X)  // Ã·X
	h := m.l1.Forward(ax)        // Ã·X·W₁
	h = m.act.Forward(h)         // ReLU
	h = m.drop.Forward(h, train) // dropout
	ah := m.adj.MulDense(h)      // Ã·H
	m.h1 = ah
	return m.l2.Forward(ah) // Ã·H·W₂
}

// Backward implements Model.
func (m *GCN) Backward(grad *matrix.Dense) {
	g := m.l2.Backward(grad) // d(Ã·H)
	g = m.adj.MulDense(g)    // Ãᵀ·g = Ã·g (dH)
	g = m.drop.Backward(g)
	g = m.act.Backward(g)
	g = m.l1.Backward(g) // d(Ã·X): not propagated further (X is input)
	_ = g
}
