// Package models implements the centralized GNN architectures evaluated in
// the AdaFGL paper as client-side models: GCN, SGC, GCNII, GAMLP (homophilous
// family) and GPRGNN, GGCN, GloGNN (heterophilous family), plus a plain MLP.
// Each model binds to one graph at construction (its client subgraph in the
// federated setting) and exposes logits plus manual backpropagation, so all
// models share one training loop and one FedAvg parameter layout.
package models

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/nn"
)

// Model is a node classifier bound to a fixed graph.
type Model interface {
	nn.Module
	// Logits returns the N x Classes score matrix. train toggles dropout.
	Logits(train bool) *matrix.Dense
	// Backward backpropagates dL/dlogits into parameter gradients.
	Backward(grad *matrix.Dense)
}

// Config carries the architecture hyperparameters shared by all models,
// matching Sec. IV-A of the paper (hidden 64, dropout 0.5 unless noted).
type Config struct {
	Hidden  int
	Dropout float64
	// Hops is the propagation depth K for decoupled models (SGC, GAMLP,
	// GPRGNN) and the layer count for deep models (GCNII).
	Hops int
	// Alpha is the residual/teleport coefficient (GCNII initial residual,
	// GPRGNN PPR initialisation, GloGNN mixing).
	Alpha float64
	// LR and WeightDecay configure the optimiser built by NewOptimizer.
	LR          float64
	WeightDecay float64
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	return Config{Hidden: 64, Dropout: 0.5, Hops: 3, Alpha: 0.1, LR: 0.01, WeightDecay: 5e-4}
}

// NewOptimizer builds the Adam optimiser used across all experiments.
func (c Config) NewOptimizer() nn.Optimizer { return nn.NewAdam(c.LR, c.WeightDecay) }

// Builder constructs a model of some architecture bound to g. Federated
// clients use a shared Builder so parameter layouts align for FedAvg.
type Builder func(g *graph.Graph, cfg Config, rng *rand.Rand) Model

// Registry maps the architecture names used in the paper's tables to
// builders.
var Registry = map[string]Builder{
	"MLP":    func(g *graph.Graph, c Config, r *rand.Rand) Model { return NewMLPModel(g, c, r) },
	"GCN":    func(g *graph.Graph, c Config, r *rand.Rand) Model { return NewGCN(g, c, r) },
	"SGC":    func(g *graph.Graph, c Config, r *rand.Rand) Model { return NewSGC(g, c, r) },
	"GCNII":  func(g *graph.Graph, c Config, r *rand.Rand) Model { return NewGCNII(g, c, r) },
	"GAMLP":  func(g *graph.Graph, c Config, r *rand.Rand) Model { return NewGAMLP(g, c, r) },
	"GPRGNN": func(g *graph.Graph, c Config, r *rand.Rand) Model { return NewGPRGNN(g, c, r) },
	"GGCN":   func(g *graph.Graph, c Config, r *rand.Rand) Model { return NewGGCN(g, c, r) },
	"GloGNN": func(g *graph.Graph, c Config, r *rand.Rand) Model { return NewGloGNN(g, c, r) },
}

// BuilderFor returns the registered builder or an error for unknown names.
func BuilderFor(name string) (Builder, error) {
	b, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown architecture %q", name)
	}
	return b, nil
}

// TrainEpoch runs one full-batch gradient step on the given mask and returns
// the loss. It is the LocalTraining primitive of Eq. (3).
func TrainEpoch(m Model, opt nn.Optimizer, labels []int, mask []bool) float64 {
	nn.ZeroGrads(m)
	logits := m.Logits(true)
	loss, grad := nn.SoftmaxCrossEntropy(logits, labels, mask)
	m.Backward(grad)
	opt.Step(m)
	return loss
}

// Accuracy evaluates m on the given mask.
func Accuracy(m Model, labels []int, mask []bool) float64 {
	logits := m.Logits(false)
	return AccuracyFromLogits(logits, labels, mask)
}

// AccuracyFromLogits computes masked argmax accuracy.
func AccuracyFromLogits(logits *matrix.Dense, labels []int, mask []bool) float64 {
	pred := matrix.ArgmaxRows(logits)
	correct, total := 0, 0
	for i, p := range pred {
		if mask != nil && !mask[i] {
			continue
		}
		total++
		if p == labels[i] {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// MLPModel is a topology-free baseline: logits = MLP(X).
type MLPModel struct {
	g   *graph.Graph
	mlp *nn.MLP
}

// NewMLPModel builds a 2-layer MLP classifier on node features.
func NewMLPModel(g *graph.Graph, cfg Config, rng *rand.Rand) *MLPModel {
	return &MLPModel{g: g, mlp: nn.NewMLP("mlp", []int{g.X.Cols, cfg.Hidden, g.Classes}, cfg.Dropout, rng)}
}

// Params implements nn.Module.
func (m *MLPModel) Params() []*nn.Parameter { return m.mlp.Params() }

// Logits implements Model.
func (m *MLPModel) Logits(train bool) *matrix.Dense {
	m.mlp.SetTraining(train)
	return m.mlp.Forward(m.g.X)
}

// Backward implements Model.
func (m *MLPModel) Backward(grad *matrix.Dense) { m.mlp.Backward(grad) }
