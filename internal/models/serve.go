package models

import (
	"repro/internal/matrix"
	"repro/internal/nn"
	"repro/internal/sparse"
)

// HeadLayer is one affine layer of a decoupled model's inference head:
// out = in·W + Bias, followed by ReLU when ReLU is true. The weights alias
// the model's live parameters (no copy), so factors extracted after loading
// a checkpoint always reflect the loaded values.
type HeadLayer struct {
	W    *matrix.Dense // in × out weight matrix
	Bias []float64     // out bias vector
	ReLU bool          // apply ReLU after the affine map
}

// Decoupled is implemented by architectures whose inference factorises into
// a fixed propagated embedding and a dense head: logits(v) depends only on
// row v of the embedding. SGC, GAMLP and the MLP baseline qualify; message-
// passing models (GCN, GCNII, ...) do not, because their logits couple all
// nodes through per-forward propagation. The serving layer uses this to
// propagate once at load time and answer queries with per-row dense GEMVs.
type Decoupled interface {
	Model
	// InferenceFactors returns the N×F propagated embedding and the head
	// evaluated on its rows. Called after parameters are final (e.g. after
	// nn.Unflatten); the embedding reflects the current parameter values.
	InferenceFactors() (*matrix.Dense, []HeadLayer)
}

// headFromMLP flattens an inference-time MLP into head layers (dropout is an
// identity at inference and is dropped; every non-final layer gains a ReLU).
func headFromMLP(m *nn.MLP) []HeadLayer {
	out := make([]HeadLayer, len(m.Layers))
	for i, l := range m.Layers {
		out[i] = HeadLayer{W: l.W.Value, Bias: l.B.Value.Data, ReLU: i+1 < len(m.Layers)}
	}
	return out
}

// InferenceFactors implements Decoupled: SGC is a linear head on the cached
// k-step propagated features X^(k).
func (m *SGC) InferenceFactors() (*matrix.Dense, []HeadLayer) {
	return m.xk, []HeadLayer{{W: m.linear.W.Value, Bias: m.linear.B.Value.Data}}
}

// InferenceFactors implements Decoupled: GAMLP's embedding is the hop
// combination under the current gate softmax (recomputed here so it reflects
// loaded parameters), and its head is the MLP.
func (m *GAMLP) InferenceFactors() (*matrix.Dense, []HeadLayer) {
	combo, _ := m.combine()
	return combo, headFromMLP(m.mlp)
}

// InferenceFactors implements Decoupled: the MLP baseline is topology-free,
// so its "embedding" is the raw feature matrix.
func (m *MLPModel) InferenceFactors() (*matrix.Dense, []HeadLayer) {
	return m.g.X, headFromMLP(m.mlp)
}

// EmbeddingSpec is the *recipe* for a decoupled model's embedding — how many
// propagation hops to run and how to combine them — as opposed to
// InferenceFactors, which returns the embedding already materialised for the
// whole graph. A sharded server uses the recipe to rebuild each shard's
// slice of the embedding locally (with halo exchange at shard edges) without
// ever holding the full matrix.
type EmbeddingSpec struct {
	// Hops is the propagation depth K.
	Hops int
	// HopWeights, when non-nil (len Hops+1), combine the hop stack
	// Σ_k HopWeights[k]·X^(k) in ascending k order (GAMLP); nil takes the
	// final hop X^(K) alone (SGC, and the K=0 MLP case).
	HopWeights []float64
	// Norm is the adjacency normalisation the hops propagate with.
	Norm sparse.NormKind
}

// ShardableDecoupled is a Decoupled model that can also describe its
// embedding as a recipe, enabling shard-local cache construction.
type ShardableDecoupled interface {
	Decoupled
	// EmbeddingSpec returns the recipe under the current parameter values.
	EmbeddingSpec() EmbeddingSpec
}

// EmbeddingSpec implements ShardableDecoupled: SGC's embedding is the final
// hop X^(K).
func (m *SGC) EmbeddingSpec() EmbeddingSpec {
	return EmbeddingSpec{Hops: m.hops, Norm: sparse.NormSym}
}

// EmbeddingSpec implements ShardableDecoupled: GAMLP combines all K+1 hops
// under the current gate softmax.
func (m *GAMLP) EmbeddingSpec() EmbeddingSpec {
	return EmbeddingSpec{Hops: len(m.hops) - 1, HopWeights: softmaxVec(m.gate.Value.Data), Norm: sparse.NormSym}
}

// EmbeddingSpec implements ShardableDecoupled: the MLP baseline never
// propagates, so its embedding is hop zero (the raw features).
func (m *MLPModel) EmbeddingSpec() EmbeddingSpec { return EmbeddingSpec{Norm: sparse.NormSym} }

// InferenceLayer is one step of a message-passing model's inference
// pipeline: either a propagation (one Ã multiply) or a row-wise dense head
// layer. The alternating sequence lets a sharded engine interleave local
// SpMM with halo exchange while applying the dense steps row-locally.
type InferenceLayer struct {
	// Propagate marks a Ã·H step; Head is ignored when set.
	Propagate bool
	// Head is the affine(+ReLU) step applied to every row independently.
	Head HeadLayer
}

// Layered is implemented by message-passing architectures whose inference
// decomposes into an alternating propagate / row-wise-dense pipeline. GCN
// qualifies (dropout is an identity at inference); architectures with
// cross-layer residuals to the input do not.
type Layered interface {
	Model
	// InferenceLayers returns the pipeline under the current parameters;
	// weights alias live parameters like InferenceFactors.
	InferenceLayers() []InferenceLayer
	// PropagationNorm is the adjacency normalisation the propagation steps
	// use.
	PropagationNorm() sparse.NormKind
}

// InferenceLayers implements Layered: Ã → W₁+ReLU → Ã → W₂.
func (m *GCN) InferenceLayers() []InferenceLayer {
	return []InferenceLayer{
		{Propagate: true},
		{Head: HeadLayer{W: m.l1.W.Value, Bias: m.l1.B.Value.Data, ReLU: true}},
		{Propagate: true},
		{Head: HeadLayer{W: m.l2.W.Value, Bias: m.l2.B.Value.Data}},
	}
}

// PropagationNorm implements Layered.
func (m *GCN) PropagationNorm() sparse.NormKind { return sparse.NormSym }
