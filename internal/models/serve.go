package models

import (
	"repro/internal/matrix"
	"repro/internal/nn"
)

// HeadLayer is one affine layer of a decoupled model's inference head:
// out = in·W + Bias, followed by ReLU when ReLU is true. The weights alias
// the model's live parameters (no copy), so factors extracted after loading
// a checkpoint always reflect the loaded values.
type HeadLayer struct {
	W    *matrix.Dense // in × out weight matrix
	Bias []float64     // out bias vector
	ReLU bool          // apply ReLU after the affine map
}

// Decoupled is implemented by architectures whose inference factorises into
// a fixed propagated embedding and a dense head: logits(v) depends only on
// row v of the embedding. SGC, GAMLP and the MLP baseline qualify; message-
// passing models (GCN, GCNII, ...) do not, because their logits couple all
// nodes through per-forward propagation. The serving layer uses this to
// propagate once at load time and answer queries with per-row dense GEMVs.
type Decoupled interface {
	Model
	// InferenceFactors returns the N×F propagated embedding and the head
	// evaluated on its rows. Called after parameters are final (e.g. after
	// nn.Unflatten); the embedding reflects the current parameter values.
	InferenceFactors() (*matrix.Dense, []HeadLayer)
}

// headFromMLP flattens an inference-time MLP into head layers (dropout is an
// identity at inference and is dropped; every non-final layer gains a ReLU).
func headFromMLP(m *nn.MLP) []HeadLayer {
	out := make([]HeadLayer, len(m.Layers))
	for i, l := range m.Layers {
		out[i] = HeadLayer{W: l.W.Value, Bias: l.B.Value.Data, ReLU: i+1 < len(m.Layers)}
	}
	return out
}

// InferenceFactors implements Decoupled: SGC is a linear head on the cached
// k-step propagated features X^(k).
func (m *SGC) InferenceFactors() (*matrix.Dense, []HeadLayer) {
	return m.xk, []HeadLayer{{W: m.linear.W.Value, Bias: m.linear.B.Value.Data}}
}

// InferenceFactors implements Decoupled: GAMLP's embedding is the hop
// combination under the current gate softmax (recomputed here so it reflects
// loaded parameters), and its head is the MLP.
func (m *GAMLP) InferenceFactors() (*matrix.Dense, []HeadLayer) {
	combo, _ := m.combine()
	return combo, headFromMLP(m.mlp)
}

// InferenceFactors implements Decoupled: the MLP baseline is topology-free,
// so its "embedding" is the raw feature matrix.
func (m *MLPModel) InferenceFactors() (*matrix.Dense, []HeadLayer) {
	return m.g.X, headFromMLP(m.mlp)
}
