package models

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/nn"
	"repro/internal/sparse"
)

// GGCN is a signed, degree-corrected message-passing network in the spirit of
// Yan et al. ("Two sides of the same coin"). Edges are partitioned into
// positive (feature-similar) and negative (feature-dissimilar) sets from the
// cosine similarity of raw features; the layer mixes self, positive and
// negative aggregations with learnable scalar gates:
//
//	H = α₀·T + α₁·S⁺·T − α₂·S⁻·T,  T = ReLU(X·W₁)
//
// followed by a linear head. The signed split is what lets GGCN exploit
// heterophilous edges as (negated) evidence, the property the paper's
// structure Non-iid experiments reward.
type GGCN struct {
	g *graph.Graph

	pos, neg   *sparse.Plan // row-normalised signed adjacencies (blocked plans)
	posT, negT *sparse.Plan

	l1    *nn.Linear
	l2    *nn.Linear
	gates *nn.Parameter // 1x3: self, positive, negative
	act   *nn.ReLU
	drop  *nn.Dropout

	// caches
	t, pt, nt *matrix.Dense
}

// NewGGCN builds a GGCN bound to g, precomputing the signed adjacencies and
// their propagation plans (each signed operator is applied every epoch in
// both directions).
func NewGGCN(g *graph.Graph, cfg Config, rng *rand.Rand) *GGCN {
	pos, neg := signedSplit(g)
	m := &GGCN{
		g:     g,
		pos:   sparse.NewPlan(pos),
		neg:   sparse.NewPlan(neg),
		posT:  sparse.NewPlan(pos.Transpose()),
		negT:  sparse.NewPlan(neg.Transpose()),
		l1:    nn.NewLinear("ggcn.l1", g.X.Cols, cfg.Hidden, rng),
		l2:    nn.NewLinear("ggcn.l2", cfg.Hidden, g.Classes, rng),
		gates: nn.NewParameter("ggcn.gates", 1, 3),
		act:   &nn.ReLU{},
		drop:  nn.NewDropout(cfg.Dropout, rng),
	}
	m.gates.Value.Data[0] = 1
	m.gates.Value.Data[1] = 0.5
	m.gates.Value.Data[2] = 0.5
	return m
}

// signedSplit partitions edges by the sign of centred cosine feature
// similarity, returning row-normalised positive and negative operators.
func signedSplit(g *graph.Graph) (pos, neg *sparse.CSR) {
	var pc, nc []sparse.Coord
	for _, e := range g.Edges {
		if e[0] == e[1] {
			continue
		}
		s := cosine(g.X.Row(e[0]), g.X.Row(e[1]))
		if s >= 0 {
			pc = append(pc, sparse.Coord{Row: e[0], Col: e[1], Val: 1}, sparse.Coord{Row: e[1], Col: e[0], Val: 1})
		} else {
			nc = append(nc, sparse.Coord{Row: e[0], Col: e[1], Val: 1}, sparse.Coord{Row: e[1], Col: e[0], Val: 1})
		}
	}
	pos = rowNormalize(sparse.FromCoords(g.N, g.N, pc))
	neg = rowNormalize(sparse.FromCoords(g.N, g.N, nc))
	return pos, neg
}

func rowNormalize(m *sparse.CSR) *sparse.CSR {
	out := m.Clone()
	for i := 0; i < out.NRows; i++ {
		lo, hi := out.RowPtr[i], out.RowPtr[i+1]
		var s float64
		for _, v := range out.Val[lo:hi] {
			s += v
		}
		if s == 0 {
			continue
		}
		for k := lo; k < hi; k++ {
			out.Val[k] /= s
		}
	}
	return out
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Params implements nn.Module.
func (m *GGCN) Params() []*nn.Parameter {
	out := append(m.l1.Params(), m.l2.Params()...)
	return append(out, m.gates)
}

// Logits implements Model.
func (m *GGCN) Logits(train bool) *matrix.Dense {
	t := m.l1.Forward(m.g.X)
	t = m.act.Forward(t)
	t = m.drop.Forward(t, train)
	m.t = t
	m.pt = m.pos.MulDense(t)
	m.nt = m.neg.MulDense(t)
	a := m.gates.Value.Data
	h := matrix.Scale(a[0], t)
	matrix.AddScaled(h, a[1], m.pt)
	matrix.AddScaled(h, -a[2], m.nt)
	return m.l2.Forward(h)
}

// Backward implements Model.
func (m *GGCN) Backward(grad *matrix.Dense) {
	dh := m.l2.Backward(grad)
	a := m.gates.Value.Data
	// Gate gradients.
	m.gates.Grad.Data[0] += dotAll(dh, m.t)
	m.gates.Grad.Data[1] += dotAll(dh, m.pt)
	m.gates.Grad.Data[2] -= dotAll(dh, m.nt)
	// dT = α₀·dH + α₁·S⁺ᵀ·dH − α₂·S⁻ᵀ·dH.
	dt := matrix.Scale(a[0], dh)
	matrix.AddScaled(dt, a[1], m.posT.MulDense(dh))
	matrix.AddScaled(dt, -a[2], m.negT.MulDense(dh))
	dt = m.drop.Backward(dt)
	dt = m.act.Backward(dt)
	m.l1.Backward(dt)
}

func dotAll(a, b *matrix.Dense) float64 {
	var s float64
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// GloGNN follows Li et al.: each node aggregates from the whole subgraph via
// a coefficient matrix T derived from node similarity, mixed with the ego
// embedding (Sec. II-B: Z = (1-γ)·T·H + γ·H). T is the closed-form global
// coefficient matrix computed once from the scaled feature Gram matrix
// (row-softmax), so it captures global, topology-independent affinity —
// the property that makes GloGNN strong under heterophily. Dense N×N work
// makes this suitable for client-scale subgraphs, exactly where the paper
// uses it.
type GloGNN struct {
	g *graph.Graph

	l1   *nn.Linear
	l2   *nn.Linear
	mixP *nn.Parameter // scalar logit; γ = sigmoid(mixP)
	act  *nn.ReLU
	drop *nn.Dropout

	tMat  *matrix.Dense // fixed global coefficient matrix
	tMatT *matrix.Dense

	// caches
	h0    *matrix.Dense
	gamma float64
}

// NewGloGNN builds a GloGNN bound to g, precomputing the global coefficient
// matrix from feature similarity.
func NewGloGNN(g *graph.Graph, cfg Config, rng *rand.Rand) *GloGNN {
	scale := 1 / math.Sqrt(float64(g.X.Cols))
	tMat := matrix.SoftmaxRows(matrix.Scale(scale, matrix.MulT(g.X, g.X)))
	m := &GloGNN{
		g:     g,
		l1:    nn.NewLinear("glognn.l1", g.X.Cols, cfg.Hidden, rng),
		l2:    nn.NewLinear("glognn.l2", cfg.Hidden, g.Classes, rng),
		mixP:  nn.NewParameter("glognn.mix", 1, 1),
		act:   &nn.ReLU{},
		drop:  nn.NewDropout(cfg.Dropout, rng),
		tMat:  tMat,
		tMatT: matrix.Transpose(tMat),
	}
	return m
}

// Params implements nn.Module.
func (m *GloGNN) Params() []*nn.Parameter {
	out := append(m.l1.Params(), m.l2.Params()...)
	return append(out, m.mixP)
}

// Logits implements Model.
func (m *GloGNN) Logits(train bool) *matrix.Dense {
	h := m.l1.Forward(m.g.X)
	h = m.act.Forward(h)
	h = m.drop.Forward(h, train)
	m.h0 = h
	m.gamma = sigmoid(m.mixP.Value.Data[0])
	z := matrix.Scale(1-m.gamma, matrix.Mul(m.tMat, h))
	matrix.AddScaled(z, m.gamma, h)
	return m.l2.Forward(z)
}

// Backward implements Model.
func (m *GloGNN) Backward(grad *matrix.Dense) {
	dz := m.l2.Backward(grad)
	th := matrix.Mul(m.tMat, m.h0)
	// dγ (through sigmoid): z = (1-γ)TH + γH ⇒ ∂z/∂γ = H − TH.
	dgamma := dotAll(dz, m.h0) - dotAll(dz, th)
	m.mixP.Grad.Data[0] += dgamma * m.gamma * (1 - m.gamma)
	// dH = (1-γ)·Tᵀ·dz + γ·dz.
	dh := matrix.Scale(1-m.gamma, matrix.Mul(m.tMatT, dz))
	matrix.AddScaled(dh, m.gamma, dz)
	dh = m.drop.Backward(dh)
	dh = m.act.Backward(dh)
	m.l1.Backward(dh)
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
