package models

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/nn"
	"repro/internal/sparse"
)

// PropagateK returns [X, ÃX, Ã²X, …, ÃᵏX] (k+1 matrices), the shared
// pre-propagation step of the decoupled models and of AdaFGL Eq. (7). It
// takes a propagation plan so the blocked layout of Ã is reused across all
// k steps (and across every caller sharing the plan).
func PropagateK(adj *sparse.Plan, x *matrix.Dense, k int) []*matrix.Dense {
	out := make([]*matrix.Dense, 0, k+1)
	out = append(out, x)
	cur := x
	for i := 0; i < k; i++ {
		cur = adj.MulDense(cur)
		out = append(out, cur)
	}
	return out
}

// SGC is the simplified graph convolution of Wu et al.: a linear model on
// k-step propagated features, X^(k) = ÃᵏX (Sec. II-B of the paper).
type SGC struct {
	g      *graph.Graph
	hops   int
	xk     *matrix.Dense
	linear *nn.Linear
}

// NewSGC builds SGC with cfg.Hops propagation steps.
func NewSGC(g *graph.Graph, cfg Config, rng *rand.Rand) *SGC {
	adj := g.NormAdjPlan(sparse.NormSym)
	hops := PropagateK(adj, g.X, cfg.Hops)
	return &SGC{
		g:      g,
		hops:   cfg.Hops,
		xk:     hops[len(hops)-1],
		linear: nn.NewLinear("sgc", g.X.Cols, g.Classes, rng),
	}
}

// Params implements nn.Module.
func (m *SGC) Params() []*nn.Parameter { return m.linear.Params() }

// Logits implements Model.
func (m *SGC) Logits(train bool) *matrix.Dense { return m.linear.Forward(m.xk) }

// Backward implements Model.
func (m *SGC) Backward(grad *matrix.Dense) { m.linear.Backward(grad) }

// GAMLP follows Zhang et al.: k-hop propagated features combined by a
// learnable attention over hops (softmax-gated), then an MLP:
//
//	Z = MLP( Σ_k softmax(θ)_k · X^(k) )
//
// This is the recursive-attention variant reduced to hop-level gates, which
// preserves the architecture's behaviour (adaptive receptive field) while
// staying dependency-free.
type GAMLP struct {
	g    *graph.Graph
	hops []*matrix.Dense
	gate *nn.Parameter // 1 x (K+1) hop logits
	mlp  *nn.MLP

	// caches
	weights []float64
	combo   *matrix.Dense
}

// NewGAMLP builds GAMLP with cfg.Hops hops and a 2-layer MLP head.
func NewGAMLP(g *graph.Graph, cfg Config, rng *rand.Rand) *GAMLP {
	adj := g.NormAdjPlan(sparse.NormSym)
	m := &GAMLP{
		g:    g,
		hops: PropagateK(adj, g.X, cfg.Hops),
		gate: nn.NewParameter("gamlp.gate", 1, cfg.Hops+1),
		mlp:  nn.NewMLP("gamlp", []int{g.X.Cols, cfg.Hidden, g.Classes}, cfg.Dropout, rng),
	}
	return m
}

// Params implements nn.Module.
func (m *GAMLP) Params() []*nn.Parameter {
	return append([]*nn.Parameter{m.gate}, m.mlp.Params()...)
}

// combine returns the hop combination Σ_k softmax(θ)_k·X^(k) under the
// current gate values, plus the softmax weights (shared by training forward
// passes and inference-factor extraction, so the two can never drift).
func (m *GAMLP) combine() (*matrix.Dense, []float64) {
	weights := softmaxVec(m.gate.Value.Data)
	combo := matrix.New(m.g.N, m.g.X.Cols)
	for k, h := range m.hops {
		matrix.AddScaled(combo, weights[k], h)
	}
	return combo, weights
}

// Logits implements Model.
func (m *GAMLP) Logits(train bool) *matrix.Dense {
	m.combo, m.weights = m.combine()
	m.mlp.SetTraining(train)
	return m.mlp.Forward(m.combo)
}

// Backward implements Model.
func (m *GAMLP) Backward(grad *matrix.Dense) {
	gc := m.mlp.Backward(grad)
	// dL/dw_k = <gc, X^(k)>; then softmax backward into gate logits.
	dw := make([]float64, len(m.hops))
	for k, h := range m.hops {
		var s float64
		for i, v := range gc.Data {
			s += v * h.Data[i]
		}
		dw[k] = s
	}
	var dot float64
	for k, w := range m.weights {
		dot += w * dw[k]
	}
	for k, w := range m.weights {
		m.gate.Grad.Data[k] += w * (dw[k] - dot)
	}
}

func softmaxVec(v []float64) []float64 {
	out := make([]float64, len(v))
	max := math.Inf(-1)
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	var sum float64
	for i, x := range v {
		out[i] = math.Exp(x - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// GPRGNN is the generalized PageRank GNN of Chien et al. (Sec. II-B):
//
//	Z = Σ_{k=0}^{K} γ_k · Ãᵏ · MLP(X)
//
// with learnable γ initialised to the PPR profile γ_k = α(1-α)^k. Negative
// learned γ_k let the model exploit heterophily.
type GPRGNN struct {
	g     *graph.Graph
	adj   *sparse.Plan  // reusable blocked-SpMM plan for Ã
	gamma *nn.Parameter // 1 x (K+1)
	mlp   *nn.MLP

	hk []*matrix.Dense // cached H^(k) from the last forward
}

// NewGPRGNN builds GPRGNN with cfg.Hops propagation steps and PPR init.
func NewGPRGNN(g *graph.Graph, cfg Config, rng *rand.Rand) *GPRGNN {
	m := &GPRGNN{
		g:     g,
		adj:   g.NormAdjPlan(sparse.NormSym),
		gamma: nn.NewParameter("gpr.gamma", 1, cfg.Hops+1),
		mlp:   nn.NewMLP("gpr", []int{g.X.Cols, cfg.Hidden, g.Classes}, cfg.Dropout, rng),
	}
	a := cfg.Alpha
	if a <= 0 || a >= 1 {
		a = 0.1
	}
	for k := 0; k <= cfg.Hops; k++ {
		if k == cfg.Hops {
			m.gamma.Value.Data[k] = math.Pow(1-a, float64(k))
		} else {
			m.gamma.Value.Data[k] = a * math.Pow(1-a, float64(k))
		}
	}
	return m
}

// Params implements nn.Module.
func (m *GPRGNN) Params() []*nn.Parameter {
	return append([]*nn.Parameter{m.gamma}, m.mlp.Params()...)
}

// Logits implements Model.
func (m *GPRGNN) Logits(train bool) *matrix.Dense {
	m.mlp.SetTraining(train)
	h0 := m.mlp.Forward(m.g.X)
	k := len(m.gamma.Value.Data) - 1
	m.hk = PropagateK(m.adj, h0, k)
	z := matrix.New(h0.Rows, h0.Cols)
	for i, h := range m.hk {
		matrix.AddScaled(z, m.gamma.Value.Data[i], h)
	}
	return z
}

// Backward implements Model.
func (m *GPRGNN) Backward(grad *matrix.Dense) {
	// dγ_k = <grad, H^(k)>.
	for k, h := range m.hk {
		var s float64
		for i, v := range grad.Data {
			s += v * h.Data[i]
		}
		m.gamma.Grad.Data[k] += s
	}
	// dH0 = Σ_k γ_k Ãᵏ·grad (Ã symmetric), accumulated iteratively.
	acc := matrix.Scale(m.gamma.Value.Data[0], grad)
	cur := grad
	for k := 1; k < len(m.gamma.Value.Data); k++ {
		cur = m.adj.MulDense(cur)
		matrix.AddScaled(acc, m.gamma.Value.Data[k], cur)
	}
	m.mlp.Backward(acc)
}
