package models

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/nn"
	"repro/internal/sparse"
)

// testGraph builds a small two-community graph with informative features.
// If homophilous, communities are densely intra-connected; otherwise the
// wiring is mostly cross-class.
func testGraph(n int, homophilous bool, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 2
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			same := labels[i] == labels[j]
			p := 0.05
			if same == homophilous {
				p = 0.3
			}
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	x := matrix.New(n, 6)
	for i := 0; i < n; i++ {
		for j := 0; j < 6; j++ {
			x.Set(i, j, rng.NormFloat64()*0.8+float64(labels[i])*1.5)
		}
	}
	g := graph.New(n, edges, x, labels, 2)
	g.SplitTransductive(0.4, 0.2, rng)
	return g
}

func gradCheckModel(t *testing.T, name string, build func(g *graph.Graph, rng *rand.Rand) Model) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	g := testGraph(12, true, 7)
	m := build(g, rng)

	labels := g.Labels
	mask := g.TrainMask
	loss := func() float64 {
		l, _ := nn.SoftmaxCrossEntropy(m.Logits(false), labels, mask)
		return l
	}
	nn.ZeroGrads(m)
	logits := m.Logits(false)
	_, grad := nn.SoftmaxCrossEntropy(logits, labels, mask)
	m.Backward(grad)

	for _, p := range m.Params() {
		// Spot-check a handful of coordinates per parameter to keep runtime low.
		step := len(p.Value.Data)/5 + 1
		for i := 0; i < len(p.Value.Data); i += step {
			const h = 1e-5
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			lp := loss()
			p.Value.Data[i] = orig - h
			lm := loss()
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-p.Grad.Data[i]) > 1e-4 {
				t.Fatalf("%s: %s grad[%d] analytic %v vs numeric %v", name, p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func noDropout() Config {
	cfg := DefaultConfig()
	cfg.Dropout = 0
	cfg.Hidden = 8
	cfg.Hops = 2
	return cfg
}

func TestGradCheckGCN(t *testing.T) {
	gradCheckModel(t, "GCN", func(g *graph.Graph, r *rand.Rand) Model { return NewGCN(g, noDropout(), r) })
}

func TestGradCheckSGC(t *testing.T) {
	gradCheckModel(t, "SGC", func(g *graph.Graph, r *rand.Rand) Model { return NewSGC(g, noDropout(), r) })
}

func TestGradCheckGCNII(t *testing.T) {
	gradCheckModel(t, "GCNII", func(g *graph.Graph, r *rand.Rand) Model { return NewGCNII(g, noDropout(), r) })
}

func TestGradCheckGAMLP(t *testing.T) {
	gradCheckModel(t, "GAMLP", func(g *graph.Graph, r *rand.Rand) Model { return NewGAMLP(g, noDropout(), r) })
}

func TestGradCheckGPRGNN(t *testing.T) {
	gradCheckModel(t, "GPRGNN", func(g *graph.Graph, r *rand.Rand) Model { return NewGPRGNN(g, noDropout(), r) })
}

func TestGradCheckGGCN(t *testing.T) {
	gradCheckModel(t, "GGCN", func(g *graph.Graph, r *rand.Rand) Model { return NewGGCN(g, noDropout(), r) })
}

func TestGradCheckGloGNN(t *testing.T) {
	gradCheckModel(t, "GloGNN", func(g *graph.Graph, r *rand.Rand) Model { return NewGloGNN(g, noDropout(), r) })
}

func TestGradCheckMLP(t *testing.T) {
	gradCheckModel(t, "MLP", func(g *graph.Graph, r *rand.Rand) Model { return NewMLPModel(g, noDropout(), r) })
}

// trainToConvergence trains m for a fixed number of epochs.
func trainToConvergence(m Model, g *graph.Graph, cfg Config, epochs int) {
	opt := cfg.NewOptimizer()
	for e := 0; e < epochs; e++ {
		TrainEpoch(m, opt, g.Labels, g.TrainMask)
	}
}

func TestAllModelsLearnHomophilousGraph(t *testing.T) {
	g := testGraph(60, true, 11)
	for name, build := range Registry {
		rng := rand.New(rand.NewSource(3))
		cfg := noDropout()
		m := build(g, cfg, rng)
		trainToConvergence(m, g, cfg, 120)
		if acc := Accuracy(m, g.Labels, g.TestMask); acc < 0.7 {
			t.Errorf("%s: homophilous test accuracy %v < 0.7", name, acc)
		}
	}
}

func TestHeterophilousModelsBeatGCNOnHeterophily(t *testing.T) {
	g := testGraph(80, false, 13)
	cfg := noDropout()
	run := func(name string) float64 {
		rng := rand.New(rand.NewSource(5))
		b, err := BuilderFor(name)
		if err != nil {
			t.Fatal(err)
		}
		m := b(g, cfg, rng)
		trainToConvergence(m, g, cfg, 150)
		return Accuracy(m, g.Labels, g.TestMask)
	}
	gcn := run("GCN")
	ggcn := run("GGCN")
	glognn := run("GloGNN")
	best := math.Max(ggcn, glognn)
	if best < gcn-0.05 {
		t.Errorf("heterophilous models (GGCN %.3f, GloGNN %.3f) should not trail GCN (%.3f) on heterophilous data", ggcn, glognn, gcn)
	}
}

func TestBuilderForUnknown(t *testing.T) {
	if _, err := BuilderFor("nope"); err == nil {
		t.Fatal("unknown architecture must error")
	}
}

func TestAccuracyFromLogits(t *testing.T) {
	logits, _ := matrix.FromRows([][]float64{{2, 1}, {0, 3}, {5, 0}})
	labels := []int{0, 1, 1}
	if acc := AccuracyFromLogits(logits, labels, nil); math.Abs(acc-2.0/3.0) > 1e-12 {
		t.Fatalf("accuracy = %v", acc)
	}
	if acc := AccuracyFromLogits(logits, labels, []bool{true, true, false}); acc != 1 {
		t.Fatalf("masked accuracy = %v", acc)
	}
	if acc := AccuracyFromLogits(logits, labels, []bool{false, false, false}); acc != 0 {
		t.Fatal("empty mask accuracy must be 0")
	}
}

func TestPropagateK(t *testing.T) {
	g := testGraph(10, true, 17)
	plan := g.NormAdjPlan(sparse.NormSym)
	adj := plan.Matrix()
	hops := PropagateK(plan, g.X, 3)
	if len(hops) != 4 {
		t.Fatalf("PropagateK returned %d matrices, want 4", len(hops))
	}
	if hops[0] != g.X {
		t.Fatal("hop 0 must be the input")
	}
	want := adj.MulDense(adj.MulDense(g.X))
	if !matrix.Equal(hops[2], want, 1e-10) {
		t.Fatal("hop 2 must equal Ã²X")
	}
}

func TestFederatedParameterAlignment(t *testing.T) {
	// Two clients building the same architecture must have identical
	// parameter layouts, the precondition for FedAvg.
	g1 := testGraph(20, true, 19)
	g2 := testGraph(25, false, 23)
	for name, build := range Registry {
		cfg := noDropout()
		m1 := build(g1, cfg, rand.New(rand.NewSource(1)))
		m2 := build(g2, cfg, rand.New(rand.NewSource(2)))
		v1, v2 := nn.Flatten(m1), nn.Flatten(m2)
		if len(v1) != len(v2) {
			t.Errorf("%s: parameter count differs across clients: %d vs %d", name, len(v1), len(v2))
			continue
		}
		if err := nn.Unflatten(m2, v1); err != nil {
			t.Errorf("%s: cross-client unflatten failed: %v", name, err)
		}
	}
}

func TestGCNSmoothsTowardNeighbors(t *testing.T) {
	// Structural sanity: on a homophilous graph GCN test accuracy should
	// comfortably beat the topology-free MLP given weak features.
	rng := rand.New(rand.NewSource(29))
	n := 80
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 2
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := 0.01
			if labels[i] == labels[j] {
				p = 0.25
			}
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	x := matrix.New(n, 4)
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			// Very weak signal: heavy noise.
			x.Set(i, j, rng.NormFloat64()*3+float64(labels[i]))
		}
	}
	g := graph.New(n, edges, x, labels, 2)
	g.SplitTransductive(0.2, 0.2, rng)
	cfg := noDropout()
	gcn := NewGCN(g, cfg, rand.New(rand.NewSource(1)))
	mlp := NewMLPModel(g, cfg, rand.New(rand.NewSource(1)))
	trainToConvergence(gcn, g, cfg, 150)
	trainToConvergence(mlp, g, cfg, 150)
	ga := Accuracy(gcn, g.Labels, g.TestMask)
	ma := Accuracy(mlp, g.Labels, g.TestMask)
	if ga < ma-0.05 {
		t.Errorf("GCN (%.3f) should not trail MLP (%.3f) on homophilous graph with weak features", ga, ma)
	}
}

func BenchmarkGCNTrainEpoch(b *testing.B) {
	g := testGraph(300, true, 31)
	cfg := DefaultConfig()
	m := NewGCN(g, cfg, rand.New(rand.NewSource(1)))
	opt := cfg.NewOptimizer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainEpoch(m, opt, g.Labels, g.TrainMask)
	}
}
