package datasets

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestRegistryHasTwelveDatasets(t *testing.T) {
	if len(Registry) != 12 {
		t.Fatalf("registry has %d datasets, want 12 (Table I)", len(Registry))
	}
	seen := map[string]bool{}
	for _, s := range Registry {
		if seen[s.Name] {
			t.Fatalf("duplicate dataset %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Cora")
	if err != nil {
		t.Fatal(err)
	}
	if s.Classes != 7 {
		t.Fatalf("Cora classes = %d, want 7", s.Classes)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != len(Registry) || names[0] != "Cora" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestGenerateMatchesSpecShape(t *testing.T) {
	for _, s := range Registry {
		g := GenerateScaled(s, 0.25, 1)
		if g.Classes != s.Classes {
			t.Errorf("%s: classes %d, want %d", s.Name, g.Classes, s.Classes)
		}
		if g.X.Cols != s.Features {
			t.Errorf("%s: features %d, want %d", s.Name, g.X.Cols, s.Features)
		}
		if g.N < 50 {
			t.Errorf("%s: too few nodes %d", s.Name, g.N)
		}
	}
}

func TestGenerateHitsTargetHomophily(t *testing.T) {
	for _, s := range Registry {
		g := Generate(s, 7)
		got := g.EdgeHomophily()
		// Homophilous sampling occasionally rejects; allow a small band.
		if math.Abs(got-s.EdgeHomophily) > 0.08 {
			t.Errorf("%s: edge homophily %.3f, target %.3f", s.Name, got, s.EdgeHomophily)
		}
	}
}

func TestGenerateHomophilyPolarity(t *testing.T) {
	cora := Generate(mustSpec(t, "Cora"), 3)
	cham := Generate(mustSpec(t, "Chameleon"), 3)
	if cora.EdgeHomophily() <= cham.EdgeHomophily() {
		t.Fatalf("Cora (%.3f) must be more homophilous than Chameleon (%.3f)",
			cora.EdgeHomophily(), cham.EdgeHomophily())
	}
}

func mustSpec(t *testing.T, name string) Spec {
	t.Helper()
	s, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateDeterministic(t *testing.T) {
	s := mustSpec(t, "Cora")
	a := GenerateScaled(s, 0.2, 99)
	b := GenerateScaled(s, 0.2, 99)
	if a.M() != b.M() || a.N != b.N {
		t.Fatal("same seed must give identical topology")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("edge lists differ under same seed")
		}
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ under same seed")
		}
	}
	c := GenerateScaled(s, 0.2, 100)
	if a.M() == c.M() && len(a.Edges) > 0 && a.Edges[0] == c.Edges[0] && a.Edges[len(a.Edges)-1] == c.Edges[len(c.Edges)-1] {
		t.Log("warning: different seeds produced suspiciously similar graphs")
	}
}

func TestGenerateSplitFractions(t *testing.T) {
	s := mustSpec(t, "Chameleon") // 60/20/20
	g := Generate(s, 5)
	st := g.Summary()
	total := float64(st.Train + st.Val + st.Test)
	if math.Abs(float64(st.Train)/total-0.6) > 0.05 {
		t.Fatalf("train frac = %v, want ≈0.6", float64(st.Train)/total)
	}
	if math.Abs(float64(st.Val)/total-0.2) > 0.05 {
		t.Fatalf("val frac = %v, want ≈0.2", float64(st.Val)/total)
	}
}

func TestGenerateBalancedLabels(t *testing.T) {
	s := mustSpec(t, "PubMed")
	g := Generate(s, 11)
	dist := g.LabelDistribution()
	for c, k := range dist {
		expect := float64(g.N) / float64(g.Classes)
		if math.Abs(float64(k)-expect) > expect*0.1 {
			t.Fatalf("class %d count %d far from balanced %v", c, k, expect)
		}
	}
}

func TestGenerateFeaturesInformative(t *testing.T) {
	// Per-class feature means must differ (class-conditional Gaussians).
	s := mustSpec(t, "Cora")
	g := GenerateScaled(s, 0.5, 13)
	sums := make([][]float64, g.Classes)
	counts := make([]int, g.Classes)
	for c := range sums {
		sums[c] = make([]float64, g.X.Cols)
	}
	for i := 0; i < g.N; i++ {
		c := g.Labels[i]
		counts[c]++
		for j, v := range g.X.Row(i) {
			sums[c][j] += v
		}
	}
	var dist float64
	for j := 0; j < g.X.Cols; j++ {
		m0 := sums[0][j] / float64(counts[0])
		m1 := sums[1][j] / float64(counts[1])
		dist += (m0 - m1) * (m0 - m1)
	}
	if math.Sqrt(dist) < 0.5 {
		t.Fatalf("class means too close: %v", math.Sqrt(dist))
	}
}

func TestHomophilousClassification(t *testing.T) {
	for _, name := range []string{"Cora", "PubMed", "Physics", "Reddit"} {
		if s := mustSpec(t, name); !s.Homophilous() {
			t.Errorf("%s should be homophilous", name)
		}
	}
	for _, name := range []string{"Chameleon", "Squirrel", "Actor", "Penn94", "arxiv-year", "Flickr"} {
		if s := mustSpec(t, name); s.Homophilous() {
			t.Errorf("%s should be heterophilous", name)
		}
	}
}

func TestStatsTable(t *testing.T) {
	s := mustSpec(t, "Cora")
	g := GenerateScaled(s, 0.2, 1)
	rows := StatsTable(map[string]*graph.Graph{"Cora": g})
	if len(rows) != 2 {
		t.Fatalf("StatsTable rows = %d, want header + 1", len(rows))
	}
	if !strings.Contains(rows[1], "Cora") {
		t.Fatalf("row missing dataset name: %q", rows[1])
	}
}

// Property: generated graphs never contain duplicate or out-of-range edges.
func TestQuickEdgeValidity(t *testing.T) {
	f := func(seed int64) bool {
		s := Registry[int(uint64(seed)%uint64(len(Registry)))]
		g := GenerateScaled(s, 0.1, seed)
		seen := map[[2]int]bool{}
		for _, e := range g.Edges {
			if e[0] < 0 || e[1] >= g.N || e[0] > e[1] {
				return false
			}
			if seen[e] {
				return false
			}
			seen[e] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
