package datasets

import (
	"testing"
)

// TestStreamSpecValidate covers every rejection branch and the defaults.
func TestStreamSpecValidate(t *testing.T) {
	good := DefaultStream(100, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.NumCommunities() != 64 {
		t.Fatalf("NumCommunities = %d", good.NumCommunities())
	}
	zero := StreamSpec{Nodes: 100, Features: 4, Classes: 4}
	if zero.NumCommunities() != 32 {
		t.Fatalf("default communities = %d, want 8*classes", zero.NumCommunities())
	}
	bad := []func(*StreamSpec){
		func(s *StreamSpec) { s.Nodes = 0 },
		func(s *StreamSpec) { s.Features = 0 },
		func(s *StreamSpec) { s.Classes = 0 },
		func(s *StreamSpec) { s.Communities = 4 }, // < classes
		func(s *StreamSpec) { s.Communities = s.Nodes + 1 },
		func(s *StreamSpec) { s.AvgDegree = -1 },
		func(s *StreamSpec) { s.EdgeHomophily = 1.5 },
		func(s *StreamSpec) { s.TrainFrac = 0.9; s.ValFrac = 0.2 },
	}
	for i, mut := range bad {
		s := DefaultStream(100, 1)
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

// TestStreamDeterministicAndO1 pins the pure-function contract: replaying
// the stream yields the identical edge sequence, and the O(1) accessors
// agree with the materialised graph.
func TestStreamDeterministicAndO1(t *testing.T) {
	spec := DefaultStream(300, 9)
	var first, second [][2]int
	spec.ForEachEdge(func(u, v int) { first = append(first, [2]int{u, v}) })
	spec.ForEachEdge(func(u, v int) { second = append(second, [2]int{u, v}) })
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("replay lengths %d/%d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("edge %d differs across replays", i)
		}
	}
	for i := range first {
		u, v := first[i][0], first[i][1]
		if u < 0 || u >= spec.Nodes || v < 0 || v >= spec.Nodes || u == v {
			t.Fatalf("edge %d = (%d,%d) invalid", i, u, v)
		}
	}

	g := spec.Materialize()
	if g.N != spec.Nodes || g.Classes != spec.Classes {
		t.Fatalf("materialised shape %d/%d", g.N, g.Classes)
	}
	row := make([]float64, spec.Features)
	for v := 0; v < g.N; v += 17 {
		if g.Labels[v] != spec.Label(v) || spec.Label(v) != spec.Community(v)%spec.Classes {
			t.Fatalf("label of %d inconsistent", v)
		}
		spec.FeatureRow(v, row)
		for j := range row {
			if g.X.Row(v)[j] != row[j] {
				t.Fatalf("feature row of %d differs at %d", v, j)
			}
		}
		train, val, test := spec.MaskOf(v)
		if g.TrainMask[v] != train || g.ValMask[v] != val || g.TestMask[v] != test {
			t.Fatalf("masks of %d inconsistent", v)
		}
		if b2i(train)+b2i(val)+b2i(test) != 1 {
			t.Fatalf("node %d in %d splits", v, b2i(train)+b2i(val)+b2i(test))
		}
	}
}

// TestStreamHomophilyKnob checks the planted structure responds to the
// homophily knob: a homophilous stream keeps most edges inside communities,
// a heterophilous one sends most to different-class communities.
func TestStreamHomophilyKnob(t *testing.T) {
	for _, tc := range []struct {
		h       float64
		minSame float64
		maxSame float64
	}{{0.9, 0.8, 1.0}, {0.1, 0.0, 0.3}} {
		spec := DefaultStream(2000, 4)
		spec.EdgeHomophily = tc.h
		same, crossClass, total := 0, 0, 0
		spec.ForEachEdge(func(u, v int) {
			total++
			if spec.Community(u) == spec.Community(v) {
				same++
			} else if spec.Label(u) != spec.Label(v) {
				crossClass++
			}
		})
		frac := float64(same) / float64(total)
		if frac < tc.minSame || frac > tc.maxSame {
			t.Fatalf("homophily %g: same-community fraction %g outside [%g,%g]",
				tc.h, frac, tc.minSame, tc.maxSame)
		}
		if same+crossClass != total {
			t.Fatalf("homophily %g: %d cross-community same-class edges (want 0)",
				tc.h, total-same-crossClass)
		}
	}
}

// TestMaterializePanicsOnInvalid pins the Generate-mirroring panic contract.
func TestMaterializePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StreamSpec{}.Materialize()
}

// b2i converts a bool to 0/1.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
