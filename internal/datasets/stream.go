package datasets

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/matrix"
)

// StreamSpec describes a synthetic attributed graph whose every property —
// edges, features, labels, masks — is a pure function of (spec, index), so
// arbitrarily large graphs can be *streamed* instead of materialised: a
// consumer replays the edge stream in bounded-memory passes (ForEachEdge)
// and derives any node's metadata in O(1) (Label, FeatureRow, MaskOf). The
// planted structure mirrors the registry generator: nodes belong to
// round-robin communities, communities carry class labels, and each edge is
// homophilous (same community) with probability EdgeHomophily, else lands on
// a different-class community — the same knobs Table I's datasets use, now
// at million-node scale.
type StreamSpec struct {
	// Nodes, Features and Classes size the graph.
	Nodes, Features, Classes int
	// Communities is the number of planted communities (>= Classes);
	// community c holds the nodes {c, c+Communities, c+2·Communities, ...}
	// and carries class c mod Classes. 0 selects 8·Classes.
	Communities int
	// AvgDegree controls the edge-stream length: M = Nodes·AvgDegree/2
	// draws (duplicates collapse on construction, exactly like the
	// materialised generator's edge list).
	AvgDegree float64
	// EdgeHomophily is the probability an edge stays inside its source
	// community; the remainder lands on a uniformly random community of a
	// *different* class.
	EdgeHomophily float64
	// FeatureSignal scales the class-mean separation of the Gaussian
	// features.
	FeatureSignal float64
	// TrainFrac/ValFrac set the per-node split masks (remainder is test).
	TrainFrac, ValFrac float64
	// Seed drives every hash stream; equal specs yield bit-equal graphs.
	Seed int64
}

// DefaultStream returns a million-node-ready spec at the given node count:
// 16 features, 8 classes, 64 communities, average degree 8, Cora-like
// homophily.
func DefaultStream(nodes int, seed int64) StreamSpec {
	return StreamSpec{
		Nodes: nodes, Features: 16, Classes: 8, Communities: 64,
		AvgDegree: 8, EdgeHomophily: 0.8, FeatureSignal: 0.5,
		TrainFrac: 0.2, ValFrac: 0.4, Seed: seed,
	}
}

// Validate checks the spec is generatable.
func (s StreamSpec) Validate() error {
	c := s.communities()
	switch {
	case s.Nodes < 1:
		return fmt.Errorf("datasets: StreamSpec: Nodes %d < 1", s.Nodes)
	case s.Features < 1:
		return fmt.Errorf("datasets: StreamSpec: Features %d < 1", s.Features)
	case s.Classes < 1:
		return fmt.Errorf("datasets: StreamSpec: Classes %d < 1", s.Classes)
	case c < s.Classes:
		return fmt.Errorf("datasets: StreamSpec: %d communities < %d classes", c, s.Classes)
	case c > s.Nodes:
		return fmt.Errorf("datasets: StreamSpec: %d communities > %d nodes", c, s.Nodes)
	case s.AvgDegree < 0:
		return fmt.Errorf("datasets: StreamSpec: AvgDegree %g < 0", s.AvgDegree)
	case s.EdgeHomophily < 0 || s.EdgeHomophily > 1:
		return fmt.Errorf("datasets: StreamSpec: EdgeHomophily %g outside [0,1]", s.EdgeHomophily)
	case s.TrainFrac < 0 || s.ValFrac < 0 || s.TrainFrac+s.ValFrac > 1:
		return fmt.Errorf("datasets: StreamSpec: bad split fractions %g/%g", s.TrainFrac, s.ValFrac)
	}
	return nil
}

// NumCommunities resolves the planted community count (the Communities
// default applied).
func (s StreamSpec) NumCommunities() int { return s.communities() }

// communities resolves the Communities default.
func (s StreamSpec) communities() int {
	if s.Communities > 0 {
		return s.Communities
	}
	return 8 * s.Classes
}

// NumEdges returns the edge-stream length (draws, before dedup).
func (s StreamSpec) NumEdges() int {
	return int(float64(s.Nodes) * s.AvgDegree / 2)
}

// Community returns node v's community id.
func (s StreamSpec) Community(v int) int { return v % s.communities() }

// Label returns node v's class (its community's class).
func (s StreamSpec) Label(v int) int { return s.Community(v) % s.Classes }

// commSize returns the number of member nodes of community c.
func (s StreamSpec) commSize(c int) int {
	n, k := s.Nodes, s.communities()
	size := n / k
	if c < n%k {
		size++
	}
	return size
}

// member returns the i-th member node of community c.
func (s StreamSpec) member(c, i int) int { return c + i*s.communities() }

// EdgeAt derives the endpoints of the i-th edge draw in O(1). ok is false
// for the draws that land on a self-pair — consumers skip those, so every
// replay of the stream sees the identical edge sequence.
func (s StreamSpec) EdgeAt(i int) (u, v int, ok bool) {
	h := newHashStream(uint64(s.Seed), 0xed6e, uint64(i))
	u = int(h.next() % uint64(s.Nodes))
	cu := s.Community(u)
	var cv int
	if h.unit() < s.EdgeHomophily || s.Classes < 2 {
		cv = cu
	} else {
		// A different-class community: pick a class q != label(u), then a
		// community carrying q. Communities of class q are {q, q+Q, ...}.
		q := int(h.next() % uint64(s.Classes-1))
		if q >= s.Label(u) {
			q++
		}
		nq := (s.communities() - q - 1) / s.Classes // communities of class q, minus one
		cv = q + int(h.next()%uint64(nq+1))*s.Classes
	}
	v = s.member(cv, int(h.next()%uint64(s.commSize(cv))))
	return u, v, u != v
}

// ForEachEdge replays the whole edge stream in index order, calling fn for
// every valid draw. Memory use is O(1); callers needing several passes (e.g.
// degree counting then row construction) simply call it again.
func (s StreamSpec) ForEachEdge(fn func(u, v int)) {
	for i, m := 0, s.NumEdges(); i < m; i++ {
		if u, v, ok := s.EdgeAt(i); ok {
			fn(u, v)
		}
	}
}

// FeatureRow derives node v's feature row into dst (len Features): the
// class mean plus unit Gaussian noise, both hash-seeded, matching the
// registry generator's structure without storing any matrix.
func (s StreamSpec) FeatureRow(v int, dst []float64) {
	q := s.Label(v)
	for j := range dst {
		mean := newHashStream(uint64(s.Seed), 0x3ea7, uint64(q)<<20|uint64(j))
		noise := newHashStream(uint64(s.Seed), 0xf0a7, uint64(v)<<16|uint64(j))
		dst[j] = s.FeatureSignal*mean.gauss() + noise.gauss()
	}
}

// MaskOf returns node v's split membership (exactly one of the three).
func (s StreamSpec) MaskOf(v int) (train, val, test bool) {
	r := newHashStream(uint64(s.Seed), 0x3a5c, uint64(v)).unit()
	switch {
	case r < s.TrainFrac:
		return true, false, false
	case r < s.TrainFrac+s.ValFrac:
		return false, true, false
	default:
		return false, false, true
	}
}

// Materialize assembles the full in-memory graph the stream describes —
// the cross-check anchor for the sharded builders, and the direct path for
// specs small enough to fit. Panics on an invalid spec (mirroring Generate);
// stream consumers that need an error call Validate first.
func (s StreamSpec) Materialize() *graph.Graph {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	edges := make([][2]int, 0, s.NumEdges())
	s.ForEachEdge(func(u, v int) { edges = append(edges, [2]int{u, v}) })
	x := matrix.New(s.Nodes, s.Features)
	labels := make([]int, s.Nodes)
	for v := 0; v < s.Nodes; v++ {
		s.FeatureRow(v, x.Row(v))
		labels[v] = s.Label(v)
	}
	g := graph.New(s.Nodes, edges, x, labels, s.Classes)
	for v := 0; v < s.Nodes; v++ {
		g.TrainMask[v], g.ValMask[v], g.TestMask[v] = s.MaskOf(v)
	}
	return g
}

// hashStream is a tiny counter-based PRNG: a splitmix64 chain seeded from
// (seed, tag, index), so any (node, edge, feature) draw is reachable in O(1)
// without shared state.
type hashStream struct{ state uint64 }

// newHashStream seeds a stream for one (tag, index) cell.
func newHashStream(seed, tag, index uint64) *hashStream {
	return &hashStream{state: splitmix64(splitmix64(seed^splitmix64(tag)) ^ splitmix64(index))}
}

// next advances the chain and returns 64 fresh bits.
func (h *hashStream) next() uint64 {
	h.state = splitmix64(h.state)
	return h.state
}

// unit returns a uniform draw in [0, 1).
func (h *hashStream) unit() float64 {
	return float64(h.next()>>11) * 0x1p-53
}

// gauss returns a standard normal draw (Box–Muller).
func (h *hashStream) gauss() float64 {
	u1 := float64(h.next()>>11+1) * 0x1p-53 // (0, 1]: log stays finite
	u2 := h.unit()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// splitmix64 is the SplitMix64 finalizer — a full-avalanche 64-bit mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
