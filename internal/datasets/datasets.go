// Package datasets generates the synthetic stand-ins for the 12 graph
// benchmarks of Table I of the AdaFGL paper. The generator plants a label
// partition, wires edges with a per-edge homophily Bernoulli calibrated to
// the dataset's published edge homophily, and draws class-conditional
// Gaussian features, so homophilous specs behave like Cora/PubMed and
// heterophilous specs like Chameleon/Squirrel. Node counts of the largest
// graphs are scaled down to laptop scale (documented in DESIGN.md); scale
// does not change the direction of any comparison the paper reports.
package datasets

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/matrix"
)

// Task distinguishes the two evaluation protocols of the paper.
type Task int

const (
	// Transductive: test nodes and their edges are visible during training.
	Transductive Task = iota
	// Inductive: test nodes are held out of the training topology.
	Inductive
)

// Spec describes one benchmark dataset to synthesise.
type Spec struct {
	Name     string
	Nodes    int
	Features int
	Classes  int
	// AvgDegree controls edge count: M ≈ Nodes*AvgDegree/2.
	AvgDegree float64
	// EdgeHomophily is the target fraction of intra-class edges (Table I).
	EdgeHomophily float64
	// TrainFrac/ValFrac follow Table I (remainder is test).
	TrainFrac, ValFrac float64
	// FeatureSignal controls class separation of the Gaussian features;
	// larger means more linearly separable.
	FeatureSignal float64
	Task          Task
	Description   string
}

// Registry lists the 12 paper datasets with laptop-scaled sizes. Original
// sizes are recorded in the description for traceability.
var Registry = []Spec{
	{Name: "Cora", Nodes: 1400, Features: 64, Classes: 7, AvgDegree: 4.0, EdgeHomophily: 0.810, TrainFrac: 0.2, ValFrac: 0.4, FeatureSignal: 0.45, Task: Transductive, Description: "citation network (orig 2708 nodes, 1433 feats)"},
	{Name: "CiteSeer", Nodes: 1300, Features: 80, Classes: 6, AvgDegree: 2.8, EdgeHomophily: 0.736, TrainFrac: 0.2, ValFrac: 0.4, FeatureSignal: 0.35, Task: Transductive, Description: "citation network (orig 3327 nodes, 3703 feats)"},
	{Name: "PubMed", Nodes: 2000, Features: 48, Classes: 3, AvgDegree: 4.5, EdgeHomophily: 0.802, TrainFrac: 0.2, ValFrac: 0.4, FeatureSignal: 0.5, Task: Transductive, Description: "citation network (orig 19717 nodes, 500 feats)"},
	{Name: "Computer", Nodes: 1800, Features: 56, Classes: 10, AvgDegree: 18.0, EdgeHomophily: 0.777, TrainFrac: 0.2, ValFrac: 0.4, FeatureSignal: 0.4, Task: Transductive, Description: "co-purchase network (orig 13381 nodes)"},
	{Name: "Physics", Nodes: 2200, Features: 96, Classes: 5, AvgDegree: 14.0, EdgeHomophily: 0.931, TrainFrac: 0.2, ValFrac: 0.4, FeatureSignal: 0.5, Task: Transductive, Description: "co-authorship network (orig 34493 nodes, 8415 feats)"},
	{Name: "Chameleon", Nodes: 1200, Features: 48, Classes: 5, AvgDegree: 16.0, EdgeHomophily: 0.234, TrainFrac: 0.6, ValFrac: 0.2, FeatureSignal: 0.4, Task: Transductive, Description: "wiki pages network (orig 2277 nodes)"},
	{Name: "Squirrel", Nodes: 1600, Features: 44, Classes: 5, AvgDegree: 20.0, EdgeHomophily: 0.223, TrainFrac: 0.6, ValFrac: 0.2, FeatureSignal: 0.35, Task: Transductive, Description: "wiki pages network (orig 5201 nodes)"},
	{Name: "Actor", Nodes: 1500, Features: 40, Classes: 5, AvgDegree: 7.0, EdgeHomophily: 0.216, TrainFrac: 0.6, ValFrac: 0.2, FeatureSignal: 0.3, Task: Transductive, Description: "movie co-occurrence network (orig 7600 nodes)"},
	{Name: "Penn94", Nodes: 2000, Features: 5, Classes: 2, AvgDegree: 30.0, EdgeHomophily: 0.470, TrainFrac: 0.6, ValFrac: 0.2, FeatureSignal: 0.5, Task: Transductive, Description: "dating network (orig 41554 nodes, scaled)"},
	{Name: "arxiv-year", Nodes: 2400, Features: 32, Classes: 5, AvgDegree: 12.0, EdgeHomophily: 0.222, TrainFrac: 0.6, ValFrac: 0.2, FeatureSignal: 0.4, Task: Transductive, Description: "publish network (orig 169343 nodes, scaled)"},
	{Name: "Reddit", Nodes: 2600, Features: 64, Classes: 7, AvgDegree: 18.0, EdgeHomophily: 0.756, TrainFrac: 0.5, ValFrac: 0.25, FeatureSignal: 0.45, Task: Inductive, Description: "social network (orig 89250 nodes, scaled)"},
	{Name: "Flickr", Nodes: 2400, Features: 48, Classes: 7, AvgDegree: 10.0, EdgeHomophily: 0.319, TrainFrac: 0.66, ValFrac: 0.1, FeatureSignal: 0.4, Task: Inductive, Description: "image network (orig 232965 nodes, 41 classes, scaled)"},
}

// ByName returns the registered Spec or an error.
func ByName(name string) (Spec, error) {
	for _, s := range Registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// Names lists the registered dataset names in registry order.
func Names() []string {
	out := make([]string, len(Registry))
	for i, s := range Registry {
		out[i] = s.Name
	}
	return out
}

// Homophilous reports whether the spec's target edge homophily is >= 0.5.
func (s Spec) Homophilous() bool { return s.EdgeHomophily >= 0.5 }

// Generate synthesises the dataset deterministically from the seed.
//
// Wiring: nodes receive labels (balanced with Zipf-ish class-size noise) and
// a community id within their class to create clustered topology (Louvain
// needs real community structure). Each edge flips a homophily coin with
// p = EdgeHomophily: heads connects two same-label nodes (same community
// preferentially), tails connects nodes of different labels. A preferential-
// attachment bias gives a heavy-ish degree tail.
func Generate(s Spec, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := s.Nodes

	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % s.Classes
	}
	rng.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })

	// Community structure: each class is split into a few communities; each
	// node also gets a geographic block to correlate heterophilous wiring.
	commPerClass := 3
	community := make([]int, n)
	for i := range community {
		community[i] = labels[i]*commPerClass + rng.Intn(commPerClass)
	}
	byClass := make([][]int, s.Classes)
	byComm := make(map[int][]int)
	for i, c := range labels {
		byClass[c] = append(byClass[c], i)
		byComm[community[i]] = append(byComm[community[i]], i)
	}

	target := int(float64(n) * s.AvgDegree / 2)
	edges := make([][2]int, 0, target)
	seen := make(map[[2]int]bool, target)
	addEdge := func(u, v int) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		k := [2]int{u, v}
		if seen[k] {
			return false
		}
		seen[k] = true
		edges = append(edges, k)
		return true
	}
	// Degree-biased sampling pool: start uniform, append endpoints of placed
	// edges to approximate preferential attachment.
	pool := make([]int, 0, n+4*target)
	for i := 0; i < n; i++ {
		pool = append(pool, i)
	}
	pick := func(candidates []int) int {
		return candidates[rng.Intn(len(candidates))]
	}
	for len(edges) < target {
		u := pool[rng.Intn(len(pool))]
		var v int
		if rng.Float64() < s.EdgeHomophily {
			// Homophilous edge: same label, preferring the same community.
			if rng.Float64() < 0.8 {
				v = pick(byComm[community[u]])
			} else {
				v = pick(byClass[labels[u]])
			}
		} else {
			// Heterophilous edge: different label.
			for tries := 0; tries < 16; tries++ {
				v = pool[rng.Intn(len(pool))]
				if labels[v] != labels[u] {
					break
				}
			}
			if labels[v] == labels[u] {
				continue
			}
		}
		if addEdge(u, v) {
			pool = append(pool, u, v)
		}
	}

	// Class-conditional Gaussian features with per-class mean vectors.
	x := matrix.New(n, s.Features)
	means := make([][]float64, s.Classes)
	for c := range means {
		means[c] = make([]float64, s.Features)
		for j := range means[c] {
			means[c][j] = rng.NormFloat64() * s.FeatureSignal
		}
	}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		mu := means[labels[i]]
		for j := range row {
			row[j] = mu[j] + rng.NormFloat64()
		}
	}

	g := graph.New(n, edges, x, labels, s.Classes)
	g.SplitTransductive(s.TrainFrac, s.ValFrac, rng)
	return g
}

// GenerateScaled generates the dataset with the node count multiplied by
// factor (min 50 nodes), used by smoke tests and quick benches.
func GenerateScaled(s Spec, factor float64, seed int64) *graph.Graph {
	s.Nodes = int(float64(s.Nodes) * factor)
	if s.Nodes < 50 {
		s.Nodes = 50
	}
	return Generate(s, seed)
}

// StatsTable renders Table I style statistics for the given graphs in
// registry order; keys of gs are dataset names.
func StatsTable(gs map[string]*graph.Graph) []string {
	names := make([]string, 0, len(gs))
	for n := range gs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, 0, len(names)+1)
	out = append(out, fmt.Sprintf("%-12s %8s %8s %8s %8s %8s", "Dataset", "#Nodes", "#Edges", "#Feat", "#Class", "E.Homo"))
	for _, n := range names {
		g := gs[n]
		st := g.Summary()
		out = append(out, fmt.Sprintf("%-12s %8d %8d %8d %8d %8.3f", n, st.Nodes, st.Edges, st.Features, st.Classes, st.EdgeHomophily))
	}
	return out
}
