// Blocked SpMM engine. Sparse-dense products above a work cutover run on a
// cache-blocked, pool-aware path mirroring the blocked GEMM engine of
// internal/matrix: the CSR is reorganised once into column panels sized so
// the referenced slice of the dense operand stays L2-resident, each panel
// stores only its non-empty rows (compressed-sparse-block style, so empty
// row scans cost nothing), and the per-row entry runs are streamed through a
// vectorised axpy micro-kernel — AVX on amd64 with a portable scalar
// fallback. Work is distributed over grain-aligned row blocks with
// parallel.ForWorkGrain inside each panel sweep, so every dst row is written
// by exactly one worker block and each dst element accumulates its terms in
// ascending column order — the same order as the row-streamed reference
// kernel. The micro-kernel uses separate multiply and add (no FMA
// contraction), so blocked results are bit-identical to MulDenseNaive and to
// themselves for every worker count and panel width.
//
// Products below the cutover keep the row-streamed kernel: for small
// operands the panel reorganisation costs more than the locality it buys.
// Callers that multiply the same matrix repeatedly (k-step propagation,
// per-epoch GNN passes) should build a Plan once instead, which keeps the
// blocked layout and skips the per-call reorganisation entirely.
package sparse

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// BlockedSpMMCutover is the multiply-add count (nnz x operand columns) at
// and above which MulDense/MulDenseInto reorganise into the blocked engine;
// smaller products stay on the row-streamed kernel.
const BlockedSpMMCutover = 1 << 18

// blockGrain aligns worker row-block boundaries in the blocked kernel and in
// Normalized: 64-row blocks keep each worker's dst stripe and RowPtr slice
// aligned to whole cache lines.
const blockGrain = 64

// Blocking holds the blocked-SpMM layout parameter:
//
//	Panel — sparse-matrix columns per panel. The dense-operand rows a panel
//	references span Panel x x.Cols float64s; the default keeps that slice
//	L2-resident for the 16-64 column operands of the GNN hot paths.
type Blocking struct {
	Panel int
}

// DefaultBlocking returns the default panel width: 4096 columns, a 2 MiB
// operand window at 64 columns.
func DefaultBlocking() Blocking { return Blocking{Panel: 4096} }

// currentBlocking holds the process-wide Blocking; nil means default.
var currentBlocking atomic.Pointer[Blocking]

// SetBlocking sets the process-wide blocked-SpMM panel width and returns the
// previous value so callers can restore it. Panel <= 0 falls back to the
// default. The panel width affects only performance, never results.
func SetBlocking(b Blocking) Blocking {
	prev := CurrentBlocking()
	if b.Panel <= 0 {
		b.Panel = DefaultBlocking().Panel
	}
	currentBlocking.Store(&b)
	return prev
}

// CurrentBlocking returns the panel width the blocked engine is using.
func CurrentBlocking() Blocking {
	if b := currentBlocking.Load(); b != nil {
		return *b
	}
	return DefaultBlocking()
}

// blockedCSR is the column-panel layout: panel i covers sparse columns
// [i*panel, (i+1)*panel). Each panel lists its non-empty rows ascending with
// CSR-style entry ranges; column indices stay absolute so the kernel indexes
// the dense operand directly. Index slices are int32 (the engine guards
// dimensions at build time), halving index traffic against []int.
type blockedCSR struct {
	nRows, nCols int
	panel        int
	panels       []spmmPanel

	// Slabs backing every panel's slices, kept so on-the-fly products can
	// return them to the pools afterwards.
	slabI32 *[]int32
	slabF64 *[]float64
}

// spmmPanel is one column panel.
type spmmPanel struct {
	rows []int32   // non-empty row ids, ascending
	ptr  []int32   // len(rows)+1 entry ranges into cols/vals
	cols []int32   // absolute column indices, ascending within each row
	vals []float64 // entry values, aligned with cols
}

// blockable reports whether m's dimensions fit the int32 panel layout.
func (m *CSR) blockable() bool {
	return m.NRows <= math.MaxInt32 && m.NCols <= math.MaxInt32 && m.NNZ() <= math.MaxInt32
}

// newBlocked reorganises m into column panels of the given width. Two passes
// over the entries: size every panel exactly, then fill. The layout is a
// pure function of (m, panel).
func newBlocked(m *CSR, panel int) *blockedCSR {
	if panel <= 0 {
		panel = DefaultBlocking().Panel
	}
	if !m.blockable() {
		panic(fmt.Sprintf("sparse: blocked layout needs int32-indexable dimensions, got %dx%d nnz %d",
			m.NRows, m.NCols, m.NNZ()))
	}
	nP := (m.NCols + panel - 1) / panel
	if nP < 1 {
		nP = 1
	}
	b := &blockedCSR{nRows: m.NRows, nCols: m.NCols, panel: panel, panels: make([]spmmPanel, nP)}

	// Pass 1: per-panel entry and non-empty-row counts. Runs are delimited by
	// panel-boundary comparison (columns are sorted), one division per run.
	nnzOf := make([]int, nP)
	rowsOf := make([]int, nP)
	for i := 0; i < m.NRows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; {
			p := m.ColIdx[k] / panel
			end := (p + 1) * panel
			j := k + 1
			for j < hi && m.ColIdx[j] < end {
				j++
			}
			nnzOf[p] += j - k
			rowsOf[p]++
			k = j
		}
	}

	// Carve every panel's slices out of two shared slabs.
	nnz := m.NNZ()
	totalRows := 0
	for _, r := range rowsOf {
		totalRows += r + 1 // +1 for each panel's ptr sentinel
	}
	b.slabI32 = getI32(2*totalRows + nnz) // rows + ptr + cols
	b.slabF64 = getF64(nnz)
	i32, f64 := *b.slabI32, *b.slabF64
	carveI32 := func(n int) []int32 { s := i32[:n:n]; i32 = i32[n:]; return s }
	for p := range b.panels {
		b.panels[p] = spmmPanel{
			rows: carveI32(rowsOf[p])[:0],
			ptr:  carveI32(rowsOf[p] + 1)[:1],
			cols: carveI32(nnzOf[p])[:0],
		}
		b.panels[p].ptr[0] = 0
		b.panels[p].vals, f64 = f64[:nnzOf[p]:nnzOf[p]][:0], f64[nnzOf[p]:]
	}

	// Pass 2: fill. Rows are visited ascending and entries within a row are
	// already column-sorted, so every panel's rows and per-row columns come
	// out ascending.
	for i := 0; i < m.NRows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; {
			p := m.ColIdx[k] / panel
			end := (p + 1) * panel
			j := k + 1
			for j < hi && m.ColIdx[j] < end {
				j++
			}
			pn := &b.panels[p]
			pn.rows = append(pn.rows, int32(i))
			for t := k; t < j; t++ {
				pn.cols = append(pn.cols, int32(m.ColIdx[t]))
			}
			pn.vals = append(pn.vals, m.Val[k:j]...)
			pn.ptr = append(pn.ptr, int32(len(pn.cols)))
			k = j
		}
	}
	return b
}

// release returns the slabs to the pools. Only on-the-fly products call
// this; Plan keeps its layout alive.
func (b *blockedCSR) release() {
	i32Pool.Put(b.slabI32)
	f64Pool.Put(b.slabF64)
	b.slabI32, b.slabF64, b.panels = nil, nil, nil
}

// mulInto computes dst = blocked(m)·x. Panels are swept ascending (serial),
// and inside each panel rows are distributed over grain-aligned blocks; a
// worker locates its slice of the panel's non-empty rows by binary search.
// Every dst element therefore accumulates its terms in ascending column
// order regardless of the worker count — the row-streamed kernel's exact
// order.
func (b *blockedCSR) mulInto(dst, x *matrix.Dense) {
	dst.Zero()
	p := x.Cols
	if p == 0 {
		return
	}
	for pi := range b.panels {
		pn := &b.panels[pi]
		if len(pn.rows) == 0 {
			continue
		}
		parallel.ForWorkGrain(b.nRows, len(pn.cols)*p, blockGrain, func(rlo, rhi int) {
			lo := searchI32(pn.rows, int32(rlo))
			hi := searchI32(pn.rows, int32(rhi))
			for ri := lo; ri < hi; ri++ {
				i := int(pn.rows[ri])
				s, e := pn.ptr[ri], pn.ptr[ri+1]
				axpyRun(dst.Data[i*p:(i+1)*p], x.Data, p, pn.cols[s:e], pn.vals[s:e])
			}
		})
	}
}

// searchI32 returns the first index in the ascending slice s with s[i] >= v.
func searchI32(s []int32, v int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// axpyRun accumulates dst += Σ_k vals[k]·x[cols[k]·p : +p], one run of
// same-row entries, ascending k. The AVX kernel and the scalar loop compute
// every element with a separate multiply and add in the same order, so the
// two are bit-identical.
func axpyRun(dst []float64, x []float64, p int, cols []int32, vals []float64) {
	if len(cols) == 0 {
		return
	}
	if useSIMD && p >= 4 {
		spmmRunAVX(&dst[0], &x[0], p, &cols[0], &vals[0], len(cols))
		return
	}
	for k, c := range cols {
		v := vals[k]
		xrow := x[int(c)*p : int(c)*p+p]
		for j, xv := range xrow {
			dst[j] += v * xv
		}
	}
}

// ---- pooled scratch ----

// Slab pools recycle the blocked layout's index/value slabs across on-the-fly
// products and the degree scratch of Normalized — the hottest per-call
// allocations of the sparse layer in training loops. Zeroing is never
// needed: every slab element handed out is overwritten before it is read.
// Get/Put move the same holder pointer, mirroring matrix.packBuffers.
var (
	i32Pool = sync.Pool{New: func() any { return new([]int32) }}
	f64Pool = sync.Pool{New: func() any { return new([]float64) }}
)

func getI32(n int) *[]int32 {
	buf := i32Pool.Get().(*[]int32)
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return buf
}

func getF64(n int) *[]float64 {
	buf := f64Pool.Get().(*[]float64)
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return buf
}
