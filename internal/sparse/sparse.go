// Package sparse implements compressed sparse row (CSR) matrices for graph
// adjacency structures, including the generalized degree normalisation
// D^{r-1}·Â·D^{-r} from Eq. (1) of the AdaFGL paper and sparse-dense matrix
// multiplication (SpMM), the hot path of every GNN in this repository.
package sparse

import (
	"fmt"
	"math"
	"sort"
	"unsafe"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// CSR is a sparse matrix in compressed sparse row format. Column indices
// within each row are sorted ascending and unique.
type CSR struct {
	NRows, NCols int
	RowPtr       []int     // len NRows+1
	ColIdx       []int     // len nnz
	Val          []float64 // len nnz
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// Coord is a coordinate-format entry used to assemble CSR matrices.
type Coord struct {
	Row, Col int
	Val      float64
}

// FromCoords builds an nRows x nCols CSR matrix from coordinate entries.
// Duplicate (row, col) pairs are summed. Entries summing to exactly zero are
// kept (callers that want pruning can use Prune).
func FromCoords(nRows, nCols int, entries []Coord) *CSR {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= nRows || e.Col < 0 || e.Col >= nCols {
			panic(fmt.Sprintf("sparse: FromCoords entry (%d,%d) outside %dx%d", e.Row, e.Col, nRows, nCols))
		}
	}
	sorted := make([]Coord, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{NRows: nRows, NCols: nCols, RowPtr: make([]int, nRows+1)}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		m.ColIdx = append(m.ColIdx, sorted[i].Col)
		m.Val = append(m.Val, v)
		m.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < nRows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// FromEdges builds an n x n unweighted adjacency CSR from an undirected edge
// list. Each edge {u,v} contributes entries (u,v) and (v,u) with value 1;
// self-loops contribute a single diagonal 1. Duplicate edges collapse to a
// single unit entry.
func FromEdges(n int, edges [][2]int) *CSR {
	seen := make(map[[2]int]bool, 2*len(edges))
	coords := make([]Coord, 0, 2*len(edges))
	add := func(u, v int) {
		k := [2]int{u, v}
		if !seen[k] {
			seen[k] = true
			coords = append(coords, Coord{u, v, 1})
		}
	}
	for _, e := range edges {
		add(e[0], e[1])
		if e[0] != e[1] {
			add(e[1], e[0])
		}
	}
	return FromCoords(n, n, coords)
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		NRows: m.NRows, NCols: m.NCols,
		RowPtr: make([]int, len(m.RowPtr)),
		ColIdx: make([]int, len(m.ColIdx)),
		Val:    make([]float64, len(m.Val)),
	}
	copy(c.RowPtr, m.RowPtr)
	copy(c.ColIdx, m.ColIdx)
	copy(c.Val, m.Val)
	return c
}

// At returns element (i, j) via binary search within row i.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	idx := sort.SearchInts(m.ColIdx[lo:hi], j)
	if lo+idx < hi && m.ColIdx[lo+idx] == j {
		return m.Val[lo+idx]
	}
	return 0
}

// Row returns views of the column indices and values in row i.
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// RowDegree returns the number of stored entries in row i.
func (m *CSR) RowDegree(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// Degrees returns the per-row sums of values — for an unweighted adjacency
// matrix this is the node degree (self-loop counted once).
func (m *CSR) Degrees() []float64 {
	d := make([]float64, m.NRows)
	m.degreesInto(d)
	return d
}

// degreesInto computes per-row value sums into d (len NRows). Internal
// callers pass pooled scratch so the hot normalisation path allocates
// nothing per call.
func (m *CSR) degreesInto(d []float64) {
	parallel.ForWork(m.NRows, m.NNZ(), func(rlo, rhi int) {
		for i := rlo; i < rhi; i++ {
			lo, hi := m.RowPtr[i], m.RowPtr[i+1]
			var s float64
			for _, v := range m.Val[lo:hi] {
				s += v
			}
			d[i] = s
		}
	})
}

// WithSelfLoops returns a copy of m (square) with the diagonal set to at
// least 1 (Â = A + I semantics: existing diagonal entries are left alone).
func (m *CSR) WithSelfLoops() *CSR {
	if m.NRows != m.NCols {
		panic(fmt.Sprintf("sparse: WithSelfLoops requires a square matrix, got %dx%d", m.NRows, m.NCols))
	}
	coords := make([]Coord, 0, m.NNZ()+m.NRows)
	for i := 0; i < m.NRows; i++ {
		cols, vals := m.Row(i)
		hasDiag := false
		for k, c := range cols {
			coords = append(coords, Coord{i, c, vals[k]})
			if c == i {
				hasDiag = true
			}
		}
		if !hasDiag {
			coords = append(coords, Coord{i, i, 1})
		}
	}
	return FromCoords(m.NRows, m.NCols, coords)
}

// NormKind selects the degree-normalisation variant of Eq. (1).
type NormKind int

const (
	// NormSym is D^{-1/2} Â D^{-1/2} (GCN, r = 1/2).
	NormSym NormKind = iota
	// NormRW is Â D^{-1} (random walk, r = 1).
	NormRW
	// NormReverse is D^{-1} Â (reverse transition, r = 0).
	NormReverse
)

// Normalized returns the degree-normalised version of m per Eq. (1),
// D^{r-1}·Â·D^{-r}. m should already include self-loops for GCN semantics
// (use WithSelfLoops). Zero-degree rows are left as zero rows.
func (m *CSR) Normalized(kind NormKind) *CSR {
	degBuf := getF64(m.NRows)
	deg := *degBuf
	m.degreesInto(deg)
	out := m.Clone()
	parallel.ForWorkGrain(out.NRows, out.NNZ(), blockGrain, func(rlo, rhi int) {
		for i := rlo; i < rhi; i++ {
			normalizeRow(out, deg, i, kind)
		}
	})
	f64Pool.Put(degBuf)
	return out
}

// normalizeRow applies the Eq. (1) scaling to one row of out.
func normalizeRow(out *CSR, deg []float64, i int, kind NormKind) {
	lo, hi := out.RowPtr[i], out.RowPtr[i+1]
	for k := lo; k < hi; k++ {
		j := out.ColIdx[k]
		di, dj := deg[i], deg[j]
		switch kind {
		case NormSym:
			if di > 0 && dj > 0 {
				out.Val[k] /= sqrt(di) * sqrt(dj)
			} else {
				out.Val[k] = 0
			}
		case NormRW:
			// Â D^{-r} with r=1: divide by column degree.
			if dj > 0 {
				out.Val[k] /= dj
			} else {
				out.Val[k] = 0
			}
		case NormReverse:
			// D^{r-1} Â with r=0: divide by row degree.
			if di > 0 {
				out.Val[k] /= di
			} else {
				out.Val[k] = 0
			}
		}
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// MulDense computes m · x (SpMM) into a new dense matrix. Products with
// nnz·x.Cols at or above BlockedSpMMCutover run on the blocked engine (see
// blocked.go); smaller ones stay on the row-streamed kernel. Both paths are
// bit-identical.
func (m *CSR) MulDense(x *matrix.Dense) *matrix.Dense {
	if m.NCols != x.Rows {
		panic(fmt.Sprintf("sparse: MulDense %dx%d · %dx%d", m.NRows, m.NCols, x.Rows, x.Cols))
	}
	out := matrix.New(m.NRows, x.Cols)
	m.MulDenseInto(out, x)
	return out
}

// MulDenseInto computes dst = m·x. dst must be m.NRows x x.Cols and must not
// alias x. At or above the nnz·cols cutover the product reorganises into the
// blocked engine with pooled scratch; callers multiplying the same matrix
// repeatedly should build a Plan once instead.
func (m *CSR) MulDenseInto(dst, x *matrix.Dense) {
	if m.NCols != x.Rows || dst.Rows != m.NRows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: MulDenseInto dst %dx%d for %dx%d · %dx%d",
			dst.Rows, dst.Cols, m.NRows, m.NCols, x.Rows, x.Cols))
	}
	checkNoAlias("MulDenseInto", dst, x)
	if m.blockedWorthwhile(x.Cols) {
		b := newBlocked(m, CurrentBlocking().Panel)
		b.mulInto(dst, x)
		b.release()
		return
	}
	m.mulDenseRowsInto(dst, x)
}

// spmmRebuildFactor is the madds-per-reorganised-element margin the one-shot
// blocked path must clear: reorganisation costs O(nnz + rows) regardless of
// the operand width, while the kernel win scales with nnz·cols, so narrow
// operands fall back to the row-streamed kernel (a Plan amortises the
// rebuild away and has no such floor).
const spmmRebuildFactor = 48

// blockedWorthwhile reports whether a one-shot product should pay the panel
// reorganisation.
func (m *CSR) blockedWorthwhile(p int) bool {
	work := m.NNZ() * p
	return work >= BlockedSpMMCutover && work >= spmmRebuildFactor*(m.NNZ()+m.NRows) && m.blockable()
}

// MulDenseNaive computes m·x on the row-streamed kernel regardless of size.
// It is the reference implementation the property/equivalence harness and
// the BenchmarkSpMM sweep compare the blocked engine against.
func (m *CSR) MulDenseNaive(x *matrix.Dense) *matrix.Dense {
	if m.NCols != x.Rows {
		panic(fmt.Sprintf("sparse: MulDenseNaive %dx%d · %dx%d", m.NRows, m.NCols, x.Rows, x.Cols))
	}
	out := matrix.New(m.NRows, x.Cols)
	m.mulDenseRowsInto(out, x)
	return out
}

// mulDenseRowsInto is the row-streamed SpMM kernel: each dst row accumulates
// its entries in ascending column order; row blocks write disjoint dst rows,
// so the parallel path is exact.
func (m *CSR) mulDenseRowsInto(dst, x *matrix.Dense) {
	dst.Zero()
	p := x.Cols
	parallel.ForWork(m.NRows, m.NNZ()*p, func(rlo, rhi int) {
		for i := rlo; i < rhi; i++ {
			lo, hi := m.RowPtr[i], m.RowPtr[i+1]
			drow := dst.Data[i*p : (i+1)*p]
			for k := lo; k < hi; k++ {
				v := m.Val[k]
				xrow := x.Data[m.ColIdx[k]*p : (m.ColIdx[k]+1)*p]
				for j, xv := range xrow {
					drow[j] += v * xv
				}
			}
		}
	})
}

// checkNoAlias panics with a named-op message when dst's backing array
// overlaps x's (including partial overlaps via subslices of one buffer):
// SpMM reads x rows after writing dst rows, so an aliased destination
// silently corrupts the product.
func checkNoAlias(op string, dst, x *matrix.Dense) {
	if dst != x && (len(dst.Data) == 0 || len(x.Data) == 0) {
		return
	}
	if dst != x {
		d0 := uintptr(unsafe.Pointer(&dst.Data[0]))
		dEnd := d0 + uintptr(len(dst.Data))*unsafe.Sizeof(dst.Data[0])
		x0 := uintptr(unsafe.Pointer(&x.Data[0]))
		xEnd := x0 + uintptr(len(x.Data))*unsafe.Sizeof(x.Data[0])
		if dEnd <= x0 || xEnd <= d0 {
			return
		}
	}
	panic(fmt.Sprintf("sparse: %s dst must not alias x", op))
}

// MulVec computes m · v for a dense vector v.
func (m *CSR) MulVec(v []float64) []float64 {
	if m.NCols != len(v) {
		panic(fmt.Sprintf("sparse: MulVec %dx%d · vector of len %d", m.NRows, m.NCols, len(v)))
	}
	out := make([]float64, m.NRows)
	parallel.ForWork(m.NRows, m.NNZ(), func(rlo, rhi int) {
		for i := rlo; i < rhi; i++ {
			lo, hi := m.RowPtr[i], m.RowPtr[i+1]
			var s float64
			for k := lo; k < hi; k++ {
				s += m.Val[k] * v[m.ColIdx[k]]
			}
			out[i] = s
		}
	})
	return out
}

// Transpose returns mᵀ.
func (m *CSR) Transpose() *CSR {
	coords := make([]Coord, 0, m.NNZ())
	for i := 0; i < m.NRows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			coords = append(coords, Coord{c, i, vals[k]})
		}
	}
	return FromCoords(m.NCols, m.NRows, coords)
}

// Dense converts m to a dense matrix (for tests and small P matrices).
func (m *CSR) Dense() *matrix.Dense {
	out := matrix.New(m.NRows, m.NCols)
	for i := 0; i < m.NRows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			out.Set(i, c, vals[k])
		}
	}
	return out
}

// Prune returns a copy of m with entries |v| <= tol removed.
func (m *CSR) Prune(tol float64) *CSR {
	coords := make([]Coord, 0, m.NNZ())
	for i := 0; i < m.NRows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			if vals[k] > tol || vals[k] < -tol {
				coords = append(coords, Coord{i, c, vals[k]})
			}
		}
	}
	return FromCoords(m.NRows, m.NCols, coords)
}

// Submatrix returns the square submatrix induced by keeping the given rows
// and the same columns (for node-induced subgraphs). idx values must be
// unique and in range; the i-th row/col of the result corresponds to idx[i].
func (m *CSR) Submatrix(idx []int) *CSR {
	if m.NRows != m.NCols {
		panic(fmt.Sprintf("sparse: Submatrix requires a square matrix, got %dx%d", m.NRows, m.NCols))
	}
	remap := make(map[int]int, len(idx))
	for newID, old := range idx {
		remap[old] = newID
	}
	coords := make([]Coord, 0)
	for newRow, old := range idx {
		cols, vals := m.Row(old)
		for k, c := range cols {
			if nc, ok := remap[c]; ok {
				coords = append(coords, Coord{newRow, nc, vals[k]})
			}
		}
	}
	return FromCoords(len(idx), len(idx), coords)
}
