package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// pathGraph returns the adjacency of a path 0-1-2-...-(n-1).
func pathGraph(n int) *CSR {
	edges := make([][2]int, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return FromEdges(n, edges)
}

func TestFromEdgesSymmetric(t *testing.T) {
	m := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 1}}) // duplicate edge
	if m.NNZ() != 6 {
		t.Fatalf("NNZ = %d, want 6", m.NNZ())
	}
	if m.At(0, 1) != 1 || m.At(1, 0) != 1 {
		t.Fatal("edge (0,1) must be symmetric with value 1")
	}
	if m.At(0, 2) != 0 {
		t.Fatal("non-edge must be 0")
	}
}

func TestFromEdgesSelfLoop(t *testing.T) {
	m := FromEdges(2, [][2]int{{0, 0}, {0, 1}})
	if m.At(0, 0) != 1 {
		t.Fatal("self-loop missing")
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
}

func TestFromCoordsDuplicatesSummed(t *testing.T) {
	m := FromCoords(2, 2, []Coord{{0, 1, 2}, {0, 1, 3}})
	if m.At(0, 1) != 5 {
		t.Fatalf("At(0,1) = %v, want 5", m.At(0, 1))
	}
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1", m.NNZ())
	}
}

func TestDegrees(t *testing.T) {
	m := pathGraph(4)
	d := m.Degrees()
	want := []float64{1, 2, 2, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Degrees[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestWithSelfLoops(t *testing.T) {
	m := pathGraph(3).WithSelfLoops()
	for i := 0; i < 3; i++ {
		if m.At(i, i) != 1 {
			t.Fatalf("diagonal %d missing self-loop", i)
		}
	}
	// Idempotent on diagonal: applying again must not double it.
	m2 := m.WithSelfLoops()
	if m2.At(1, 1) != 1 {
		t.Fatalf("self-loop doubled: %v", m2.At(1, 1))
	}
}

func TestNormalizedSymRowSumsOnRegularGraph(t *testing.T) {
	// On a d-regular graph with self-loops, sym-normalised rows sum to 1.
	// Cycle of 4 nodes: degree 2 + self-loop = 3 for every node.
	m := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}).WithSelfLoops()
	norm := m.Normalized(NormSym)
	for i := 0; i < 4; i++ {
		_, vals := norm.Row(i)
		var s float64
		for _, v := range vals {
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v, want 1", i, s)
		}
	}
}

func TestNormalizedReverseRowStochastic(t *testing.T) {
	m := pathGraph(5).WithSelfLoops()
	norm := m.Normalized(NormReverse)
	for i := 0; i < 5; i++ {
		_, vals := norm.Row(i)
		var s float64
		for _, v := range vals {
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("D^{-1}A row %d sums to %v, want 1", i, s)
		}
	}
}

func TestNormalizedRWColumnStochastic(t *testing.T) {
	m := pathGraph(5).WithSelfLoops()
	norm := m.Normalized(NormRW).Transpose()
	// Columns of A·D^{-1} are rows of its transpose and must sum to 1.
	for i := 0; i < 5; i++ {
		_, vals := norm.Row(i)
		var s float64
		for _, v := range vals {
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("AD^{-1} column %d sums to %v, want 1", i, s)
		}
	}
}

func TestNormalizedZeroDegree(t *testing.T) {
	// Node 2 is isolated with no self-loop; normalisation must not NaN.
	m := FromEdges(3, [][2]int{{0, 1}})
	norm := m.Normalized(NormSym)
	for _, v := range norm.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("normalisation produced NaN/Inf on zero-degree node")
		}
	}
}

func TestMulDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}, {1, 4}}).WithSelfLoops().Normalized(NormSym)
	x := matrix.New(6, 3)
	matrix.RandomNormal(x, 0, 1, rng)
	got := m.MulDense(x)
	want := matrix.Mul(m.Dense(), x)
	if !matrix.Equal(got, want, 1e-10) {
		t.Fatal("SpMM disagrees with dense reference")
	}
}

func TestMulVec(t *testing.T) {
	m := pathGraph(3)
	got := m.MulVec([]float64{1, 10, 100})
	want := []float64{10, 101, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTransposeSymmetricAdjacency(t *testing.T) {
	m := FromEdges(5, [][2]int{{0, 1}, {1, 3}, {2, 4}})
	tr := m.Transpose()
	if !matrix.Equal(m.Dense(), tr.Dense(), 0) {
		t.Fatal("undirected adjacency must be symmetric under transpose")
	}
}

func TestTransposeGeneral(t *testing.T) {
	m := FromCoords(2, 3, []Coord{{0, 2, 5}, {1, 0, -1}})
	tr := m.Transpose()
	if tr.NRows != 3 || tr.NCols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.NRows, tr.NCols)
	}
	if tr.At(2, 0) != 5 || tr.At(0, 1) != -1 {
		t.Fatal("transpose values wrong")
	}
}

func TestPrune(t *testing.T) {
	m := FromCoords(2, 2, []Coord{{0, 0, 1e-12}, {0, 1, 0.5}, {1, 1, -1e-12}})
	p := m.Prune(1e-9)
	if p.NNZ() != 1 {
		t.Fatalf("Prune NNZ = %d, want 1", p.NNZ())
	}
	if p.At(0, 1) != 0.5 {
		t.Fatal("Prune dropped a significant entry")
	}
}

func TestSubmatrix(t *testing.T) {
	m := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	sub := m.Submatrix([]int{1, 2, 3})
	// Path 1-2-3 survives; edges to 0 and 4 are cut.
	if sub.At(0, 1) != 1 || sub.At(1, 2) != 1 {
		t.Fatal("internal edges missing in submatrix")
	}
	if sub.NNZ() != 4 {
		t.Fatalf("Submatrix NNZ = %d, want 4", sub.NNZ())
	}
}

func TestRowViews(t *testing.T) {
	m := FromEdges(3, [][2]int{{0, 1}, {0, 2}})
	cols, vals := m.Row(0)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 2 {
		t.Fatalf("Row(0) cols = %v", cols)
	}
	if vals[0] != 1 {
		t.Fatalf("Row(0) vals = %v", vals)
	}
	if m.RowDegree(0) != 2 || m.RowDegree(1) != 1 {
		t.Fatal("RowDegree wrong")
	}
}

// Property: for random graphs, (Mᵀ)ᵀ = M and SpMM agrees with the dense path.
func TestQuickTransposeInvolutionAndSpMM(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		m := FromEdges(n, edges).WithSelfLoops().Normalized(NormSym)
		if !matrix.Equal(m.Dense(), m.Transpose().Transpose().Dense(), 1e-12) {
			return false
		}
		x := matrix.New(n, 2)
		matrix.RandomNormal(x, 0, 1, rng)
		return matrix.Equal(m.MulDense(x), matrix.Mul(m.Dense(), x), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: sym-normalised adjacency has spectral radius <= 1, checked via
// power iteration on random graphs (the key stability property for deep
// propagation in Eq. (7)).
func TestQuickSymNormSpectralRadius(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		var edges [][2]int
		for i := 0; i < n-1; i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
		for k := 0; k < n; k++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		m := FromEdges(n, edges).WithSelfLoops().Normalized(NormSym)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		for it := 0; it < 50; it++ {
			v = m.MulVec(v)
			var norm float64
			for _, x := range v {
				norm += x * x
			}
			norm = math.Sqrt(norm)
			if norm == 0 {
				return true
			}
			for i := range v {
				v[i] /= norm
			}
		}
		w := m.MulVec(v)
		var rayleigh float64
		for i := range v {
			rayleigh += v[i] * w[i]
		}
		return rayleigh <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulDenseSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 2000
	var edges [][2]int
	for i := 0; i < n; i++ {
		for k := 0; k < 5; k++ {
			edges = append(edges, [2]int{i, rng.Intn(n)})
		}
	}
	m := FromEdges(n, edges).WithSelfLoops().Normalized(NormSym)
	x := matrix.New(n, 64)
	matrix.RandomNormal(x, 0, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulDense(x)
	}
}
