package sparse

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// The blocked-SpMM property suite. The engine's contract is stronger than
// the GEMM engine's 1e-12: because the micro-kernel never contracts
// multiply-add into FMA and panels preserve ascending column order, the
// blocked path must be BIT-identical to the row-streamed reference for
// every shape, density, panel width, worker count and SIMD setting.

// sprinkledCSR builds an nr x nc CSR with roughly density fraction of
// entries, including duplicate coordinates (summed by FromCoords).
func sprinkledCSR(nr, nc int, density float64, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	n := int(density * float64(nr) * float64(nc))
	coords := make([]Coord, 0, n+2)
	for i := 0; i < n; i++ {
		coords = append(coords, Coord{rng.Intn(nr), rng.Intn(nc), rng.NormFloat64()})
	}
	if n > 0 { // force at least one duplicate pair
		coords = append(coords, coords[0], coords[0])
	}
	return FromCoords(nr, nc, coords)
}

func assertBitIdentical(t *testing.T, tag string, got, want *matrix.Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", tag, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if v != want.Data[i] {
			t.Fatalf("%s: element %d = %v, reference %v", tag, i, v, want.Data[i])
		}
	}
}

// TestBlockedSpMMMatchesNaive sweeps shapes, densities, operand widths and
// panel widths: the plan product must be bit-identical to MulDenseNaive
// (which also bounds it far inside the 1e-12 acceptance tolerance).
func TestBlockedSpMMMatchesNaive(t *testing.T) {
	shapes := []struct{ nr, nc, p int }{
		{1, 1, 1}, {3, 7, 5}, {40, 40, 1}, {64, 128, 3},
		{200, 50, 16}, {50, 200, 33}, {300, 300, 8},
	}
	densities := []float64{0, 0.01, 0.1, 0.5}
	panels := []int{1, 3, 16, 64, 4096}
	for _, sh := range shapes {
		for _, d := range densities {
			m := sprinkledCSR(sh.nr, sh.nc, d, int64(sh.nr*1000+sh.nc+int(d*100)))
			x := randomDense(sh.nc, sh.p, int64(sh.p))
			want := m.MulDenseNaive(x)
			for _, panel := range panels {
				pl := NewPlanBlocking(m, Blocking{Panel: panel})
				assertBitIdentical(t, "plan", pl.MulDense(x), want)
			}
			assertBitIdentical(t, "dispatch", m.MulDense(x), want)
		}
	}
}

// TestBlockedSpMMAboveCutover exercises the on-the-fly blocked dispatch path
// (pooled reorganisation per call) against the reference kernel, and pins
// the dispatch predicate itself: wide-operand products clear the rebuild
// margin, narrow ones fall back to the row-streamed kernel.
func TestBlockedSpMMAboveCutover(t *testing.T) {
	m := sprinkledCSR(2000, 2000, 0.005, 9) // ~20k nnz
	x := randomDense(2000, 64, 10)
	if !m.blockedWorthwhile(x.Cols) {
		t.Fatalf("%d nnz x %d cols should dispatch to the blocked engine", m.NNZ(), x.Cols)
	}
	if m.blockedWorthwhile(4) {
		t.Fatal("narrow operand should stay on the row-streamed kernel")
	}
	// Twice, so the second call reuses pooled slabs from the first's release.
	assertBitIdentical(t, "above-cutover", m.MulDense(x), m.MulDenseNaive(x))
	assertBitIdentical(t, "above-cutover pooled", m.MulDense(x), m.MulDenseNaive(x))
}

// TestBlockedSpMMWorkerBitIdentity fixes the engine's determinism contract:
// identical bits for every worker count, on both the plan path and the
// dispatching path.
func TestBlockedSpMMWorkerBitIdentity(t *testing.T) {
	m := sprinkledCSR(1500, 1500, 0.01, 11)
	x := randomDense(1500, 24, 12)
	pl := NewPlanBlocking(m, Blocking{Panel: 256})

	orig := parallel.SetWorkers(1)
	defer parallel.SetWorkers(orig)
	serialPlan := pl.MulDense(x)
	serialDispatch := m.MulDense(x)

	for _, w := range []int{2, 3, 4, 8, 13} {
		parallel.SetWorkers(w)
		assertBitIdentical(t, "plan workers", pl.MulDense(x), serialPlan)
		assertBitIdentical(t, "dispatch workers", m.MulDense(x), serialDispatch)
	}
}

// TestBlockedSpMMScalarFallback forces the portable scalar micro-kernel and
// requires bit-identity with both the SIMD result and the reference — the
// no-FMA design means the AVX kernel computes exactly the scalar arithmetic.
func TestBlockedSpMMScalarFallback(t *testing.T) {
	m := sprinkledCSR(400, 400, 0.05, 13)
	x := randomDense(400, 17, 14) // odd width exercises the 4-wide + scalar tails
	pl := NewPlanBlocking(m, Blocking{Panel: 128})
	want := m.MulDenseNaive(x)

	simd := pl.MulDense(x)
	defer func(v bool) { useSIMD = v }(useSIMD)
	useSIMD = false
	scalar := pl.MulDense(x)

	assertBitIdentical(t, "scalar vs reference", scalar, want)
	assertBitIdentical(t, "simd vs scalar", simd, scalar)
}

// TestMulDenseIntoAliasPanics pins the satellite fix: an aliased destination
// must panic with a named-op message instead of silently corrupting the
// product.
func TestMulDenseIntoAliasPanics(t *testing.T) {
	m := sprinkledCSR(20, 20, 0.2, 15)
	x := randomDense(20, 20, 16)
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"MulDenseInto", func() { m.MulDenseInto(x, x) }},
		{"Plan.MulDenseInto", func() { NewPlan(m).MulDenseInto(x, x) }},
		{"MulDenseInto shared backing", func() {
			y := matrix.FromSlice(20, 20, x.Data)
			m.MulDenseInto(y, x)
		}},
		{"MulDenseInto partial overlap", func() {
			buf := make([]float64, 21*20)
			dst := matrix.FromSlice(20, 20, buf[:20*20])
			src := matrix.FromSlice(20, 20, buf[20:])
			m.MulDenseInto(dst, src)
		}},
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: aliased dst did not panic", tc.name)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "MulDenseInto") || !strings.Contains(msg, "alias") {
					t.Fatalf("%s: panic %v does not name the op and the alias", tc.name, r)
				}
			}()
			tc.call()
		}()
	}
}

// TestPlanPropagateInto checks the allocation-free k-step helper against
// repeated MulDense calls.
func TestPlanPropagateInto(t *testing.T) {
	m := sprinkledCSR(120, 120, 0.05, 17)
	pl := NewPlan(m)
	if pl.Matrix() != m {
		t.Fatal("Plan.Matrix must return the source CSR")
	}
	x := randomDense(120, 9, 18)

	want := x.Clone()
	for i := 0; i < 5; i++ {
		want = pl.MulDense(want)
	}
	got := pl.PropagateInto(x.Clone(), matrix.New(120, 9), 5)
	assertBitIdentical(t, "PropagateInto", got, want)
}

// TestBlockingConfig covers the process-wide panel knob.
func TestBlockingConfig(t *testing.T) {
	orig := SetBlocking(Blocking{Panel: 123})
	defer SetBlocking(orig)
	if got := CurrentBlocking().Panel; got != 123 {
		t.Fatalf("Panel = %d after SetBlocking(123)", got)
	}
	SetBlocking(Blocking{Panel: 0}) // falls back to the default
	if got, want := CurrentBlocking().Panel, DefaultBlocking().Panel; got != want {
		t.Fatalf("Panel = %d after reset, want default %d", got, want)
	}
}

// TestNormalizedPooledMatchesSequential guards the pooled/parallel
// Normalized rewrite: results must equal an entry-by-entry sequential
// recomputation for every norm kind, and Degrees must be unaffected by
// pooling.
func TestNormalizedPooledMatchesSequential(t *testing.T) {
	m := sprinkledCSR(600, 600, 0.02, 19).WithSelfLoops()
	deg := m.Degrees()
	for i := 0; i < m.NRows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		var s float64
		for _, v := range m.Val[lo:hi] {
			s += v
		}
		if s != deg[i] {
			t.Fatalf("Degrees row %d = %v, want %v", i, deg[i], s)
		}
	}
	for _, kind := range []NormKind{NormSym, NormRW, NormReverse} {
		// Run twice so the second call consumes pooled scratch.
		first := m.Normalized(kind)
		second := m.Normalized(kind)
		for k := range first.Val {
			if first.Val[k] != second.Val[k] {
				t.Fatalf("kind=%d: pooled rerun diverges at nnz %d", kind, k)
			}
		}
	}
}
