// AVX axpy micro-kernel for the blocked SpMM engine (see blocked.go). One
// call streams a run of same-row entries: dst[0:p] += Σ_k vals[k]·x-row_k,
// entries processed in ascending k, two at a time so each dst vector is
// loaded and stored once per pair. Every element uses a separate multiply
// and add (VMULPD/VADDPD, never FMA), and pairs accumulate as
// (dst + v1·x1) + v2·x2 — exactly the scalar loop's order — so the kernel is
// bit-identical to the portable fallback and to the row-streamed reference.
// Upcoming x rows are software-prefetched one pair ahead to overlap the
// random row fetches that dominate SpMM on large graphs.

#include "textflag.h"

// func hasAVX() bool
//
// CPUID.1:ECX must report OSXSAVE and AVX; XCR0 must have the SSE and AVX
// state bits enabled by the OS. The kernel needs AVX only (no FMA/AVX2).
TEXT ·hasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	MOVL CX, SI
	ANDL $(1<<27 | 1<<28), SI
	CMPL SI, $(1<<27 | 1<<28)
	JNE  no

	MOVL $0, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func spmmRunAVX(dst, x *float64, p int, cols *int32, vals *float64, n int)
//
// DI dst base, SI x base, DX p (elements), BX p*8 (x row stride in bytes),
// R8 cols cursor, R9 vals cursor, CX entries remaining, R10/R11 current x
// row pointers, R12 dst cursor, R13 inner element count, R14 scratch.
TEXT ·spmmRunAVX(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ p+16(FP), DX
	MOVQ cols+24(FP), R8
	MOVQ vals+32(FP), R9
	MOVQ n+40(FP), CX
	MOVQ DX, BX
	SHLQ $3, BX

pair:
	CMPQ CX, $2
	JL   single

	// x row pointers and broadcast values for entries k, k+1.
	MOVLQSX (R8), R10
	IMULQ   BX, R10
	ADDQ    SI, R10
	MOVLQSX 4(R8), R11
	IMULQ   BX, R11
	ADDQ    SI, R11
	VBROADCASTSD (R9), Y14
	VBROADCASTSD 8(R9), Y15

	// Prefetch the next pair's x rows (only when they exist).
	CMPQ CX, $4
	JL   nopf
	MOVLQSX 8(R8), R14
	IMULQ   BX, R14
	ADDQ    SI, R14
	PREFETCHT0 (R14)
	PREFETCHT0 256(R14)
	MOVLQSX 12(R8), R14
	IMULQ   BX, R14
	ADDQ    SI, R14
	PREFETCHT0 (R14)
	PREFETCHT0 256(R14)

nopf:
	MOVQ DI, R12
	MOVQ DX, R13

pair8:
	CMPQ R13, $8
	JL   pair4
	VMOVUPD (R12), Y0
	VMOVUPD 32(R12), Y1
	VMOVUPD (R10), Y2
	VMULPD  Y14, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD 32(R10), Y3
	VMULPD  Y14, Y3, Y3
	VADDPD  Y3, Y1, Y1
	VMOVUPD (R11), Y2
	VMULPD  Y15, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD 32(R11), Y3
	VMULPD  Y15, Y3, Y3
	VADDPD  Y3, Y1, Y1
	VMOVUPD Y0, (R12)
	VMOVUPD Y1, 32(R12)
	ADDQ    $64, R12
	ADDQ    $64, R10
	ADDQ    $64, R11
	SUBQ    $8, R13
	JMP     pair8

pair4:
	CMPQ R13, $4
	JL   pairtail
	VMOVUPD (R12), Y0
	VMOVUPD (R10), Y2
	VMULPD  Y14, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD (R11), Y2
	VMULPD  Y15, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD Y0, (R12)
	ADDQ    $32, R12
	ADDQ    $32, R10
	ADDQ    $32, R11
	SUBQ    $4, R13

pairtail:
	TESTQ R13, R13
	JZ    pairnext
	VMOVSD (R12), X0
	VMOVSD (R10), X2
	VMULSD X14, X2, X2
	VADDSD X2, X0, X0
	VMOVSD (R11), X2
	VMULSD X15, X2, X2
	VADDSD X2, X0, X0
	VMOVSD X0, (R12)
	ADDQ   $8, R12
	ADDQ   $8, R10
	ADDQ   $8, R11
	DECQ   R13
	JMP    pairtail

pairnext:
	ADDQ $8, R8
	ADDQ $16, R9
	SUBQ $2, CX
	JMP  pair

single:
	TESTQ CX, CX
	JZ    done
	MOVLQSX (R8), R10
	IMULQ   BX, R10
	ADDQ    SI, R10
	VBROADCASTSD (R9), Y14
	MOVQ DI, R12
	MOVQ DX, R13

single4:
	CMPQ R13, $4
	JL   singletail
	VMOVUPD (R12), Y0
	VMOVUPD (R10), Y2
	VMULPD  Y14, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD Y0, (R12)
	ADDQ    $32, R12
	ADDQ    $32, R10
	SUBQ    $4, R13
	JMP     single4

singletail:
	TESTQ R13, R13
	JZ    done
	VMOVSD (R12), X0
	VMOVSD (R10), X2
	VMULSD X14, X2, X2
	VADDSD X2, X0, X0
	VMOVSD X0, (R12)
	ADDQ   $8, R12
	ADDQ   $8, R10
	DECQ   R13
	JMP    singletail

done:
	VZEROUPPER
	RET
