package sparse

import "testing"

func TestFromCoordsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range coord")
		}
	}()
	FromCoords(2, 2, []Coord{{Row: 2, Col: 0, Val: 1}})
}

func TestWithSelfLoopsNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-square matrix")
		}
	}()
	FromCoords(2, 3, nil).WithSelfLoops()
}

func TestSubmatrixNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-square Submatrix")
		}
	}()
	FromCoords(2, 3, nil).Submatrix([]int{0})
}

func TestEmptyMatrix(t *testing.T) {
	m := FromCoords(3, 3, nil)
	if m.NNZ() != 0 {
		t.Fatal("empty matrix has entries")
	}
	d := m.Degrees()
	for _, v := range d {
		if v != 0 {
			t.Fatal("empty matrix degree nonzero")
		}
	}
	out := m.MulVec([]float64{1, 2, 3})
	for _, v := range out {
		if v != 0 {
			t.Fatal("empty SpMV nonzero")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromEdges(3, [][2]int{{0, 1}})
	c := m.Clone()
	c.Val[0] = 42
	if m.Val[0] == 42 {
		t.Fatal("Clone must copy values")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	m := FromEdges(4, [][2]int{{0, 1}, {2, 3}, {1, 2}})
	d := m.Dense()
	back := FromCoords(4, 4, denseCoords(d.Rows, d.Cols, d.Data))
	if back.NNZ() != m.NNZ() {
		t.Fatalf("round trip NNZ %d != %d", back.NNZ(), m.NNZ())
	}
}

func denseCoords(rows, cols int, data []float64) []Coord {
	var out []Coord
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := data[i*cols+j]; v != 0 {
				out = append(out, Coord{Row: i, Col: j, Val: v})
			}
		}
	}
	return out
}
