//go:build !amd64

package sparse

// useSIMD is always false off amd64: the blocked engine runs on the portable
// scalar axpy loop.
var useSIMD = false

// spmmRunAVX is never called when useSIMD is false.
func spmmRunAVX(dst, x *float64, p int, cols *int32, vals *float64, n int) {
	panic("sparse: SIMD axpy kernel unavailable on this architecture")
}
