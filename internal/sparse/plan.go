package sparse

import (
	"fmt"

	"repro/internal/matrix"
)

// Plan is a reusable propagation plan: the blocked layout of one CSR, built
// once and shared by every subsequent product with that matrix. The k-step
// propagation loops of the GNN hot paths (Eq. (7) smoothing, decoupled
// pre-propagation, label propagation, per-epoch GCN/GCNII passes) multiply
// the same normalized adjacency dozens to thousands of times; a Plan
// amortises the panel reorganisation the on-the-fly blocked path would
// otherwise pay per call. A Plan is immutable after construction and safe
// for concurrent use; it must be rebuilt if the underlying CSR is mutated.
type Plan struct {
	m *CSR
	b *blockedCSR
}

// NewPlan builds a propagation plan for m with the process-wide panel width
// (CurrentBlocking).
func NewPlan(m *CSR) *Plan { return NewPlanBlocking(m, CurrentBlocking()) }

// NewPlanBlocking builds a propagation plan for m with an explicit panel
// width. The layout affects only performance, never results.
func NewPlanBlocking(m *CSR, b Blocking) *Plan {
	if b.Panel <= 0 {
		b.Panel = DefaultBlocking().Panel
	}
	return &Plan{m: m, b: newBlocked(m, b.Panel)}
}

// Matrix returns the CSR the plan was built from. Callers must not mutate it.
func (pl *Plan) Matrix() *CSR { return pl.m }

// MulDense computes plan·x into a new dense matrix on the blocked engine.
func (pl *Plan) MulDense(x *matrix.Dense) *matrix.Dense {
	if pl.m.NCols != x.Rows {
		panic(fmt.Sprintf("sparse: Plan.MulDense %dx%d · %dx%d", pl.m.NRows, pl.m.NCols, x.Rows, x.Cols))
	}
	out := matrix.New(pl.m.NRows, x.Cols)
	pl.MulDenseInto(out, x)
	return out
}

// MulDenseInto computes dst = plan·x. dst must be NRows x x.Cols and must
// not alias x. Results are bit-identical to CSR.MulDenseNaive for every
// worker count and panel width.
func (pl *Plan) MulDenseInto(dst, x *matrix.Dense) {
	if pl.m.NCols != x.Rows || dst.Rows != pl.m.NRows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: Plan.MulDenseInto dst %dx%d for %dx%d · %dx%d",
			dst.Rows, dst.Cols, pl.m.NRows, pl.m.NCols, x.Rows, x.Cols))
	}
	checkNoAlias("Plan.MulDenseInto", dst, x)
	pl.b.mulInto(dst, x)
}

// PropagateInto runs the k-step smoothing X ← plan·X in place, ping-ponging
// between x and the scratch matrix, and returns the matrix holding the final
// step (one of x or scratch). Both must be NRows x cols and distinct; this
// is the allocation-free core of repeated propagation.
func (pl *Plan) PropagateInto(x, scratch *matrix.Dense, k int) *matrix.Dense {
	cur, next := x, scratch
	for i := 0; i < k; i++ {
		pl.MulDenseInto(next, cur)
		cur, next = next, cur
	}
	return cur
}
