//go:build amd64

package sparse

// hasAVX reports whether the CPU and OS support the AVX axpy micro-kernel
// (implemented in spmm_amd64.s).
func hasAVX() bool

// spmmRunAVX accumulates dst[0:p] += Σ_{k<n} vals[k]·x[cols[k]*p : +p] in
// ascending k, using separate VMULPD/VADDPD per element (no FMA contraction)
// so results are bit-identical to the scalar loop in axpyRun. It must only
// be called when useSIMD is true, p >= 4 and n >= 1.
//
//go:noescape
func spmmRunAVX(dst, x *float64, p int, cols *int32, vals *float64, n int)

// useSIMD gates the assembly micro-kernel. Detected once at start-up;
// overridable in tests to exercise the scalar path on SIMD machines.
var useSIMD = hasAVX()
