package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// randomCSR builds a CSR large enough to cross the parallel work threshold.
func randomCSR(n, perRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coords := make([]Coord, 0, n*perRow)
	for i := 0; i < n; i++ {
		for k := 0; k < perRow; k++ {
			coords = append(coords, Coord{i, rng.Intn(n), rng.NormFloat64()})
		}
	}
	return FromCoords(n, n, coords)
}

func randomDense(rows, cols int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	x := matrix.New(rows, cols)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

// TestMulDenseBitIdenticalAcrossWorkerCounts is the sparse-layer determinism
// contract: row-block parallel SpMM must reproduce the serial result exactly
// (==, not within tolerance) for any worker count.
func TestMulDenseBitIdenticalAcrossWorkerCounts(t *testing.T) {
	m := randomCSR(1200, 8, 1)
	x := randomDense(1200, 16, 2)

	orig := parallel.SetWorkers(1)
	defer parallel.SetWorkers(orig)
	serial := m.MulDense(x)

	for _, w := range []int{2, 4, 8} {
		parallel.SetWorkers(w)
		got := m.MulDense(x)
		for i, v := range got.Data {
			if v != serial.Data[i] {
				t.Fatalf("workers=%d: element %d = %v, serial %v", w, i, v, serial.Data[i])
			}
		}
	}
}

func TestMulVecBitIdenticalAcrossWorkerCounts(t *testing.T) {
	m := randomCSR(20000, 6, 3)
	v := make([]float64, 20000)
	rng := rand.New(rand.NewSource(4))
	for i := range v {
		v[i] = rng.NormFloat64()
	}

	orig := parallel.SetWorkers(1)
	defer parallel.SetWorkers(orig)
	serial := m.MulVec(v)

	parallel.SetWorkers(8)
	got := m.MulVec(v)
	for i := range got {
		if got[i] != serial[i] {
			t.Fatalf("element %d = %v, serial %v", i, got[i], serial[i])
		}
	}
}

func TestNormalizedBitIdenticalAcrossWorkerCounts(t *testing.T) {
	m := randomCSR(8000, 5, 5).WithSelfLoops()
	for _, kind := range []NormKind{NormSym, NormRW, NormReverse} {
		orig := parallel.SetWorkers(1)
		serial := m.Normalized(kind)
		parallel.SetWorkers(8)
		got := m.Normalized(kind)
		parallel.SetWorkers(orig)
		for i := range got.Val {
			if got.Val[i] != serial.Val[i] {
				t.Fatalf("kind=%d: nnz %d = %v, serial %v", kind, i, got.Val[i], serial.Val[i])
			}
		}
	}
}
