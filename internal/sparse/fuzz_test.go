package sparse

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

// Native fuzz targets for the CSR layer. Seed corpora live in
// testdata/fuzz/<Target>/ (also replayed by plain `go test`); CI runs each
// target for a bounded window. Run locally with:
//
//	go test -run='^$' -fuzz='^FuzzCSRFromEdges$' -fuzztime=30s ./internal/sparse
//
// Inputs are raw bytes decoded into small graphs/matrices, so the fuzzer
// explores structure (duplicates, self-loops, empty rows, dimension edges)
// rather than huge payloads.

// decodeEdges turns fuzz bytes into (n, edge list): first byte sizes the
// graph, the rest pair up into endpoints reduced mod n. Capped at 512 edges
// so adversarial inputs stay cheap.
func decodeEdges(data []byte) (int, [][2]int) {
	if len(data) == 0 {
		return 1, nil
	}
	n := 1 + int(data[0])%32
	rest := data[1:]
	if len(rest) > 1024 {
		rest = rest[:1024]
	}
	var edges [][2]int
	for i := 0; i+1 < len(rest); i += 2 {
		edges = append(edges, [2]int{int(rest[i]) % n, int(rest[i+1]) % n})
	}
	return n, edges
}

// checkWellFormed asserts the structural CSR invariants every constructor
// must uphold: consistent lengths, monotone row pointers, and sorted,
// unique, in-range column indices per row.
func checkWellFormed(t *testing.T, m *CSR) {
	t.Helper()
	if len(m.RowPtr) != m.NRows+1 {
		t.Fatalf("RowPtr len %d, want %d", len(m.RowPtr), m.NRows+1)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.NRows] != m.NNZ() {
		t.Fatalf("RowPtr ends %d..%d, want 0..%d", m.RowPtr[0], m.RowPtr[m.NRows], m.NNZ())
	}
	if len(m.Val) != len(m.ColIdx) {
		t.Fatalf("Val len %d vs ColIdx len %d", len(m.Val), len(m.ColIdx))
	}
	for i := 0; i < m.NRows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		if lo > hi {
			t.Fatalf("row %d: RowPtr decreases (%d > %d)", i, lo, hi)
		}
		for k := lo; k < hi; k++ {
			c := m.ColIdx[k]
			if c < 0 || c >= m.NCols {
				t.Fatalf("row %d: column %d outside [0,%d)", i, c, m.NCols)
			}
			if k > lo && m.ColIdx[k-1] >= c {
				t.Fatalf("row %d: columns not strictly ascending at %d", i, k)
			}
		}
	}
}

func FuzzCSRFromEdges(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 0x00, 0x01, 0x01, 0x02, 0x03, 0x03})
	f.Add([]byte{0x1f, 0x00, 0x00, 0x01, 0x02, 0x02, 0x01, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, edges := decodeEdges(data)
		m := FromEdges(n, edges)
		if m.NRows != n || m.NCols != n {
			t.Fatalf("FromEdges(%d) built %dx%d", n, m.NRows, m.NCols)
		}
		checkWellFormed(t, m)
		// Every requested edge must be present with unit weight, in both
		// directions (FromEdges builds undirected adjacency).
		for _, e := range edges {
			if m.At(e[0], e[1]) != 1 || m.At(e[1], e[0]) != 1 {
				t.Fatalf("edge %v not symmetric unit entries", e)
			}
		}
		// Global symmetry: the transpose must be identical.
		if !matrix.Equal(m.Dense(), m.Transpose().Dense(), 0) {
			t.Fatal("adjacency not symmetric")
		}
		// Degrees (value sums) must add up to NNZ since all values are 1.
		var degSum float64
		for _, d := range m.Degrees() {
			degSum += d
		}
		if degSum != float64(m.NNZ()) {
			t.Fatalf("degree sum %v, want nnz %d", degSum, m.NNZ())
		}
		// Self-loop closure must keep the diagonal at exactly 1 everywhere.
		withLoops := m.WithSelfLoops()
		checkWellFormed(t, withLoops)
		for i := 0; i < n; i++ {
			if withLoops.At(i, i) != 1 {
				t.Fatalf("WithSelfLoops diagonal (%d,%d) = %v", i, i, withLoops.At(i, i))
			}
		}
	})
}

// decodeSpMM turns fuzz bytes into a small CSR plus a dense right-hand side:
// three header bytes size the operands, then byte triples become coordinate
// entries and the tail fills the dense matrix.
func decodeSpMM(data []byte) (*CSR, *matrix.Dense) {
	nr, nc, xc := 1, 1, 1
	if len(data) > 0 {
		nr = 1 + int(data[0])%16
	}
	if len(data) > 1 {
		nc = 1 + int(data[1])%16
	}
	if len(data) > 2 {
		xc = 1 + int(data[2])%8
	}
	var rest []byte
	if len(data) > 3 {
		rest = data[3:]
	}
	nCoords := len(rest) / 3
	if nCoords > 256 {
		nCoords = 256
	}
	coords := make([]Coord, 0, nCoords)
	for i := 0; i < nCoords; i++ {
		b := rest[3*i : 3*i+3]
		coords = append(coords, Coord{
			Row: int(b[0]) % nr,
			Col: int(b[1]) % nc,
			Val: float64(int(b[2])-128) / 32,
		})
	}
	m := FromCoords(nr, nc, coords)
	x := matrix.New(nc, xc)
	tail := rest[3*nCoords:]
	for i := range x.Data {
		if i < len(tail) {
			x.Data[i] = float64(int(tail[i])-128) / 64
		}
	}
	return m, x
}

func FuzzSpMMEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x04, 0x02, 0x00, 0x01, 0xff, 0x02, 0x03, 0x40, 0x10, 0x20, 0x30, 0x40})
	f.Add([]byte{0x0f, 0x0f, 0x07, 0x05, 0x05, 0x00, 0x05, 0x05, 0x80, 0x01, 0x02, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, x := decodeSpMM(data)
		got := m.MulDense(x)
		want := matrix.MulNaive(m.Dense(), x)
		if !matrix.Equal(got, want, 1e-9) {
			t.Fatalf("SpMM diverges from dense reference for %dx%d (nnz %d) · %dx%d",
				m.NRows, m.NCols, m.NNZ(), x.Rows, x.Cols)
		}
		// The blocked engine must reproduce the row-streamed kernel
		// bit-for-bit at every panel width, including widths that split the
		// columns into many panels. The width is derived from the input so
		// the fuzzer explores panel-boundary interactions.
		ref := m.MulDenseNaive(x)
		pw := 1
		if len(data) > 1 {
			pw = 1 + int(data[1])%8
		}
		for _, panel := range []int{pw, m.NCols} {
			pl := NewPlanBlocking(m, Blocking{Panel: panel})
			blocked := pl.MulDense(x)
			for i, v := range blocked.Data {
				if v != ref.Data[i] {
					t.Fatalf("blocked (panel=%d) diverges from row-streamed kernel at %d: %v vs %v",
						panel, i, v, ref.Data[i])
				}
			}
			// Plan.MulDenseInto must overwrite stale dst contents too.
			pdst := matrix.New(m.NRows, x.Cols)
			pdst.Fill(math.Pi)
			pl.MulDenseInto(pdst, x)
			if !matrix.Equal(pdst, want, 1e-9) {
				t.Fatalf("Plan.MulDenseInto (panel=%d) accumulated into stale dst", panel)
			}
		}
		// MulDenseInto must overwrite stale dst contents, not accumulate.
		dst := matrix.New(m.NRows, x.Cols)
		dst.Fill(math.Pi)
		m.MulDenseInto(dst, x)
		if !matrix.Equal(dst, want, 1e-9) {
			t.Fatal("MulDenseInto accumulated into stale dst")
		}
		// SpMV on the first column must agree with the SpMM column.
		v := make([]float64, m.NCols)
		for i := 0; i < m.NCols; i++ {
			v[i] = x.At(i, 0)
		}
		mv := m.MulVec(v)
		for i, s := range mv {
			if math.Abs(s-got.At(i, 0)) > 1e-9 {
				t.Fatalf("MulVec row %d = %v, SpMM column gives %v", i, s, got.At(i, 0))
			}
		}
	})
}
