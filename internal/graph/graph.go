// Package graph defines the attributed-graph data model shared by every
// subsystem of the AdaFGL reproduction: node features, labels, train/val/test
// masks and an undirected topology, together with the homophily metrics of
// Eq. (2) of the paper and the structural operations (subgraph induction,
// edge perturbation) needed by the federated data-simulation pipelines.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/matrix"
	"repro/internal/sparse"
)

// Graph is an undirected attributed graph for semi-supervised node
// classification. Edges holds each undirected edge once with u <= v; Adj is
// the symmetric adjacency derived from Edges (without self-loops unless a
// self-edge is present).
type Graph struct {
	N                            int           // number of nodes
	Edges                        [][2]int      // canonical undirected edge list, u <= v, no duplicates
	X                            *matrix.Dense // N x F feature matrix
	Labels                       []int         // N class ids in [0, Classes)
	Classes                      int
	TrainMask, ValMask, TestMask []bool

	// Eval, when non-nil, marks this graph as the *observed* (training)
	// graph of an inductive protocol: models train on this graph's topology
	// but are evaluated on Eval (the full graph including unseen test nodes
	// and their edges). Transductive graphs leave Eval nil.
	Eval *Graph

	adjMu sync.Mutex  // guards adj and norm: clients may share a graph across goroutines
	adj   *sparse.CSR // lazily built
	norm  map[sparse.NormKind]*sparse.Plan
}

// NodeSource is the shard-aware read surface of a serving graph: the node
// and class counts plus ground-truth label lookups — everything the serving
// layer needs to validate queries and score online accuracy, and nothing
// that assumes the topology or features are resident in this process.
// *Graph implements it for the single-process path; internal/shard
// implements it per shard so a serve.Server can be bound to a slice of a
// graph that never exists whole in memory.
type NodeSource interface {
	// NumNodes returns the number of servable nodes.
	NumNodes() int
	// NumClasses returns the number of output classes.
	NumClasses() int
	// Label returns node's ground-truth class and whether one is known.
	Label(node int) (int, bool)
}

// NumNodes implements NodeSource.
func (g *Graph) NumNodes() int { return g.N }

// NumClasses implements NodeSource.
func (g *Graph) NumClasses() int { return g.Classes }

// Label implements NodeSource: node's ground-truth class, with ok=false for
// unlabelled graphs and out-of-range ids.
func (g *Graph) Label(node int) (int, bool) {
	if g.Labels == nil || node < 0 || node >= len(g.Labels) {
		return 0, false
	}
	return g.Labels[node], true
}

// New assembles a graph, canonicalising the edge list (deduplicated, u <= v).
func New(n int, edges [][2]int, x *matrix.Dense, labels []int, classes int) *Graph {
	if x != nil && x.Rows != n {
		panic(fmt.Sprintf("graph: X has %d rows for %d nodes", x.Rows, n))
	}
	if labels != nil && len(labels) != n {
		panic(fmt.Sprintf("graph: %d labels for %d nodes", len(labels), n))
	}
	g := &Graph{
		N: n, X: x, Labels: labels, Classes: classes,
		TrainMask: make([]bool, n), ValMask: make([]bool, n), TestMask: make([]bool, n),
	}
	g.Edges = Canonicalize(edges)
	return g
}

// Canonicalize deduplicates an undirected edge list and orders endpoints
// u <= v, dropping nothing else (self-loops are kept).
func Canonicalize(edges [][2]int) [][2]int {
	seen := make(map[[2]int]bool, len(edges))
	out := make([][2]int, 0, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		k := [2]int{u, v}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.Edges) }

// Adj returns the symmetric adjacency CSR (cached; safe for concurrent use
// as long as the topology is not mutated concurrently).
func (g *Graph) Adj() *sparse.CSR {
	g.adjMu.Lock()
	defer g.adjMu.Unlock()
	if g.adj == nil {
		g.adj = sparse.FromEdges(g.N, g.Edges)
	}
	return g.adj
}

// InvalidateAdj drops the cached adjacency (and the normalised plans built
// from it) after a topology mutation.
func (g *Graph) InvalidateAdj() {
	g.adjMu.Lock()
	g.adj = nil
	g.norm = nil
	g.adjMu.Unlock()
}

// NormAdj returns the self-looped, normalised adjacency Ã per Eq. (1).
// The result is cached per NormKind and shared across callers, which must
// treat it as read-only (mutate topology via AddEdges/RemoveEdges instead).
func (g *Graph) NormAdj(kind sparse.NormKind) *sparse.CSR {
	return g.NormAdjPlan(kind).Matrix()
}

// NormAdjPlan returns a reusable propagation plan for Ã (the blocked SpMM
// layout of NormAdj, see sparse.Plan), built lazily once per NormKind. Every
// model and propagation loop bound to g shares the same plan, so the
// normalisation and panel reorganisation cost is paid once per graph rather
// than per product or per model.
func (g *Graph) NormAdjPlan(kind sparse.NormKind) *sparse.Plan {
	g.adjMu.Lock()
	defer g.adjMu.Unlock()
	if pl, ok := g.norm[kind]; ok {
		return pl
	}
	if g.adj == nil {
		g.adj = sparse.FromEdges(g.N, g.Edges)
	}
	pl := sparse.NewPlan(g.adj.WithSelfLoops().Normalized(kind))
	if g.norm == nil {
		g.norm = make(map[sparse.NormKind]*sparse.Plan, 1)
	}
	g.norm[kind] = pl
	return pl
}

// SeedNormAdj installs a precomputed normalised adjacency (e.g. loaded from
// a checkpoint) as the cached Ã for kind, so the first NormAdjPlan call skips
// the self-loop and normalisation passes. m must be the
// WithSelfLoops().Normalized(kind) of this graph's adjacency — callers own
// that guarantee — and is dropped like any cache entry on InvalidateAdj.
func (g *Graph) SeedNormAdj(kind sparse.NormKind, m *sparse.CSR) {
	g.adjMu.Lock()
	defer g.adjMu.Unlock()
	if g.norm == nil {
		g.norm = make(map[sparse.NormKind]*sparse.Plan, 1)
	}
	g.norm[kind] = sparse.NewPlan(m)
}

// Neighbors returns the neighbour ids of node v (no self).
func (g *Graph) Neighbors(v int) []int {
	cols, _ := g.Adj().Row(v)
	out := make([]int, 0, len(cols))
	for _, c := range cols {
		if c != v {
			out = append(out, c)
		}
	}
	return out
}

// Degrees returns per-node degree (self-loops excluded).
func (g *Graph) Degrees() []int {
	d := make([]int, g.N)
	for _, e := range g.Edges {
		if e[0] == e[1] {
			continue
		}
		d[e[0]]++
		d[e[1]]++
	}
	return d
}

// OneHotLabels returns the N x Classes one-hot label matrix Y.
func (g *Graph) OneHotLabels() *matrix.Dense {
	y := matrix.New(g.N, g.Classes)
	for i, c := range g.Labels {
		if c >= 0 && c < g.Classes {
			y.Set(i, c, 1)
		}
	}
	return y
}

// MaskIdx returns the indices where mask is true.
func MaskIdx(mask []bool) []int {
	var out []int
	for i, b := range mask {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// CountMask returns the number of true entries.
func CountMask(mask []bool) int {
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}

// EdgeHomophily computes H_edge of Eq. (2): the fraction of edges whose
// endpoints share a label. Self-loops count as homophilous. Returns 0 for
// edgeless graphs.
func (g *Graph) EdgeHomophily() float64 {
	if len(g.Edges) == 0 {
		return 0
	}
	same := 0
	for _, e := range g.Edges {
		if g.Labels[e[0]] == g.Labels[e[1]] {
			same++
		}
	}
	return float64(same) / float64(len(g.Edges))
}

// NodeHomophily computes H_node of Eq. (2): the mean over nodes of the
// fraction of same-label neighbours. Isolated nodes are skipped (they carry
// no topological evidence either way).
func (g *Graph) NodeHomophily() float64 {
	var total float64
	counted := 0
	for v := 0; v < g.N; v++ {
		nbrs := g.Neighbors(v)
		if len(nbrs) == 0 {
			continue
		}
		same := 0
		for _, u := range nbrs {
			if g.Labels[u] == g.Labels[v] {
				same++
			}
		}
		total += float64(same) / float64(len(nbrs))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// Subgraph returns the node-induced subgraph on idx (order defines new ids),
// copying features, labels and masks. The mapping old->new is also returned.
func (g *Graph) Subgraph(idx []int) (*Graph, map[int]int) {
	remap := make(map[int]int, len(idx))
	for newID, old := range idx {
		remap[old] = newID
	}
	var edges [][2]int
	for _, e := range g.Edges {
		nu, okU := remap[e[0]]
		nv, okV := remap[e[1]]
		if okU && okV {
			edges = append(edges, [2]int{nu, nv})
		}
	}
	var x *matrix.Dense
	if g.X != nil {
		x = matrix.SelectRows(g.X, idx)
	}
	labels := make([]int, len(idx))
	sub := New(len(idx), edges, x, labels, g.Classes)
	for newID, old := range idx {
		labels[newID] = g.Labels[old]
		sub.TrainMask[newID] = g.TrainMask[old]
		sub.ValMask[newID] = g.ValMask[old]
		sub.TestMask[newID] = g.TestMask[old]
	}
	return sub, remap
}

// Clone deep-copies the graph (including the inductive Eval graph, if any).
func (g *Graph) Clone() *Graph {
	edges := make([][2]int, len(g.Edges))
	copy(edges, g.Edges)
	labels := make([]int, len(g.Labels))
	copy(labels, g.Labels)
	var x *matrix.Dense
	if g.X != nil {
		x = g.X.Clone()
	}
	c := New(g.N, edges, x, labels, g.Classes)
	copy(c.TrainMask, g.TrainMask)
	copy(c.ValMask, g.ValMask)
	copy(c.TestMask, g.TestMask)
	if g.Eval != nil {
		c.Eval = g.Eval.Clone()
	}
	return c
}

// MakeInductive converts g into the inductive protocol: the returned graph
// is the node-induced subgraph on the non-test nodes (what training may
// observe), with Eval pointing at the full graph g for evaluation on the
// unseen test nodes and their edges.
func MakeInductive(g *Graph) *Graph {
	var keep []int
	for v := 0; v < g.N; v++ {
		if !g.TestMask[v] {
			keep = append(keep, v)
		}
	}
	observed, _ := g.Subgraph(keep)
	observed.Eval = g
	return observed
}

// AddEdges inserts the given undirected edges (duplicates ignored) and
// invalidates the cached adjacency.
func (g *Graph) AddEdges(edges [][2]int) {
	combined := make([][2]int, 0, len(g.Edges)+len(edges))
	combined = append(combined, g.Edges...)
	combined = append(combined, edges...)
	g.Edges = Canonicalize(combined)
	g.InvalidateAdj()
}

// RemoveEdges deletes the given undirected edges (order-insensitive; absent
// edges are ignored) and invalidates the cached adjacency.
func (g *Graph) RemoveEdges(edges [][2]int) {
	if len(edges) == 0 {
		return
	}
	drop := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		drop[[2]int{u, v}] = true
	}
	kept := g.Edges[:0]
	for _, e := range g.Edges {
		if !drop[e] {
			kept = append(kept, e)
		}
	}
	g.Edges = kept
	g.InvalidateAdj()
}

// RemoveEdgesRandom deletes approximately frac of the edges uniformly at
// random (used for the edge-sparsity experiments of Fig. 10).
func (g *Graph) RemoveEdgesRandom(frac float64, rng *rand.Rand) {
	if frac <= 0 {
		return
	}
	kept := g.Edges[:0]
	for _, e := range g.Edges {
		if rng.Float64() >= frac {
			kept = append(kept, e)
		}
	}
	g.Edges = kept
	g.InvalidateAdj()
}

// HasEdge reports whether the undirected edge {u,v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	// Edges is sorted; binary search.
	i := sort.Search(len(g.Edges), func(i int) bool {
		if g.Edges[i][0] != u {
			return g.Edges[i][0] >= u
		}
		return g.Edges[i][1] >= v
	})
	return i < len(g.Edges) && g.Edges[i][0] == u && g.Edges[i][1] == v
}

// ConnectedComponents labels each node with a component id and returns the
// ids plus the component count.
func (g *Graph) ConnectedComponents() ([]int, int) {
	comp := make([]int, g.N)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	queue := make([]int, 0, g.N)
	for s := 0; s < g.N; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if comp[u] < 0 {
					comp[u] = next
					queue = append(queue, u)
				}
			}
		}
		next++
	}
	return comp, next
}

// LabelDistribution returns the per-class node counts (Fig. 2(a) data).
func (g *Graph) LabelDistribution() []int {
	counts := make([]int, g.Classes)
	for _, c := range g.Labels {
		if c >= 0 && c < g.Classes {
			counts[c]++
		}
	}
	return counts
}

// SplitTransductive assigns train/val/test masks by the given fractions,
// stratified per class so every class appears in training (matching the
// 20/40/40 and 60/20/20 protocols of Table I).
func (g *Graph) SplitTransductive(trainFrac, valFrac float64, rng *rand.Rand) {
	byClass := make(map[int][]int)
	for i, c := range g.Labels {
		byClass[c] = append(byClass[c], i)
	}
	for i := range g.TrainMask {
		g.TrainMask[i], g.ValMask[i], g.TestMask[i] = false, false, false
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		nodes := byClass[c]
		rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
		nTrain := int(float64(len(nodes)) * trainFrac)
		if nTrain == 0 && len(nodes) > 0 {
			nTrain = 1
		}
		nVal := int(float64(len(nodes)) * valFrac)
		for i, v := range nodes {
			switch {
			case i < nTrain:
				g.TrainMask[v] = true
			case i < nTrain+nVal:
				g.ValMask[v] = true
			default:
				g.TestMask[v] = true
			}
		}
	}
}

// Stats is a compact numeric summary used by the Table I reproduction.
type Stats struct {
	Nodes, Edges, Features, Classes int
	EdgeHomophily, NodeHomophily    float64
	Train, Val, Test                int
}

// Summary computes Stats for g.
func (g *Graph) Summary() Stats {
	f := 0
	if g.X != nil {
		f = g.X.Cols
	}
	return Stats{
		Nodes: g.N, Edges: g.M(), Features: f, Classes: g.Classes,
		EdgeHomophily: g.EdgeHomophily(), NodeHomophily: g.NodeHomophily(),
		Train: CountMask(g.TrainMask), Val: CountMask(g.ValMask), Test: CountMask(g.TestMask),
	}
}
