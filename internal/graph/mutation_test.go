package graph

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/sparse"
)

// mutationFixture builds a small random labelled, featured, masked graph.
func mutationFixture(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for i := 0; i < 3*n; i++ {
		edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	x := matrix.New(n, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := make([]int, n)
	for v := range labels {
		labels[v] = rng.Intn(4)
	}
	g := New(n, edges, x, labels, 4)
	for v := 0; v < n; v++ {
		switch v % 3 {
		case 0:
			g.TrainMask[v] = true
		case 1:
			g.ValMask[v] = true
		default:
			g.TestMask[v] = true
		}
	}
	return g
}

// allNormKinds enumerates every adjacency normalisation the cache keys on.
var allNormKinds = []sparse.NormKind{sparse.NormSym, sparse.NormRW, sparse.NormReverse}

// missingEdge finds a node pair not yet connected in g.
func missingEdge(t *testing.T, g *Graph) [2]int {
	t.Helper()
	have := make(map[[2]int]bool, len(g.Edges))
	for _, e := range g.Edges {
		have[e] = true
	}
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			if !have[[2]int{u, v}] {
				return [2]int{u, v}
			}
		}
	}
	t.Fatal("fixture graph is complete")
	return [2]int{}
}

// sameCSR reports bit-equality of two CSR matrices.
func sameCSR(a, b *sparse.CSR) bool {
	if a.NRows != b.NRows || a.NCols != b.NCols || len(a.ColIdx) != len(b.ColIdx) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// TestAddEdgesDropsEveryNormCache is the cache-coherence regression test:
// after AddEdges, both the NormAdj matrix and the NormAdjPlan propagation
// plan of every NormKind must reflect the new topology — a stale cache for
// any kind would silently serve the old graph.
func TestAddEdgesDropsEveryNormCache(t *testing.T) {
	g := mutationFixture(40, 1)
	before := make(map[sparse.NormKind]*sparse.CSR)
	plansBefore := make(map[sparse.NormKind]*sparse.Plan)
	for _, kind := range allNormKinds {
		plansBefore[kind] = g.NormAdjPlan(kind)
		before[kind] = g.NormAdj(kind)
	}
	// Connect a pair that is not yet adjacent, so the topology genuinely
	// changes and every normalised value in their rows must follow.
	g.AddEdges([][2]int{missingEdge(t, g)})
	fresh := New(g.N, g.Edges, g.X, g.Labels, g.Classes)
	for _, kind := range allNormKinds {
		if g.NormAdjPlan(kind) == plansBefore[kind] {
			t.Fatalf("kind %v: NormAdjPlan still the pre-mutation plan", kind)
		}
		got := g.NormAdj(kind)
		if sameCSR(got, before[kind]) {
			t.Fatalf("kind %v: NormAdj unchanged after AddEdges", kind)
		}
		if want := fresh.NormAdj(kind); !sameCSR(got, want) {
			t.Fatalf("kind %v: post-mutation NormAdj differs from scratch rebuild", kind)
		}
	}
}

// TestRemoveEdgesDropsEveryNormCache mirrors the AddEdges regression for
// deletion, and checks InvalidateAdj alone forces a rebuild.
func TestRemoveEdgesDropsEveryNormCache(t *testing.T) {
	g := mutationFixture(30, 2)
	for _, kind := range allNormKinds {
		g.NormAdjPlan(kind)
	}
	victim := g.Edges[0]
	g.RemoveEdges([][2]int{victim})
	fresh := New(g.N, g.Edges, g.X, g.Labels, g.Classes)
	for _, kind := range allNormKinds {
		if !sameCSR(g.NormAdj(kind), fresh.NormAdj(kind)) {
			t.Fatalf("kind %v: post-removal NormAdj differs from scratch rebuild", kind)
		}
	}

	// Explicit invalidation must also drop the plain adjacency cache.
	adj := g.Adj()
	g.InvalidateAdj()
	if g.Adj() == adj {
		t.Fatal("Adj still the pre-invalidation cache")
	}
}

// TestSubgraphMatchesScratchRebuild is the remap property test: the induced
// subgraph must equal a graph built from scratch out of the remapped edge
// list and the selected feature/label/mask rows — for a shuffled,
// non-contiguous node selection.
func TestSubgraphMatchesScratchRebuild(t *testing.T) {
	g := mutationFixture(50, 3)
	idx := []int{41, 3, 17, 8, 29, 0, 45, 12, 33, 21, 5}
	sub, remap := g.Subgraph(idx)

	if sub.N != len(idx) || sub.Classes != g.Classes {
		t.Fatalf("subgraph shape %d/%d", sub.N, sub.Classes)
	}
	for newID, old := range idx {
		if remap[old] != newID {
			t.Fatalf("remap[%d] = %d, want %d", old, remap[old], newID)
		}
		if sub.Labels[newID] != g.Labels[old] {
			t.Fatalf("label of new %d (old %d) is %d, want %d", newID, old, sub.Labels[newID], g.Labels[old])
		}
		if sub.TrainMask[newID] != g.TrainMask[old] ||
			sub.ValMask[newID] != g.ValMask[old] ||
			sub.TestMask[newID] != g.TestMask[old] {
			t.Fatalf("masks of new %d (old %d) not carried over", newID, old)
		}
		for j := 0; j < g.X.Cols; j++ {
			if sub.X.Row(newID)[j] != g.X.Row(old)[j] {
				t.Fatalf("feature row of new %d (old %d) differs at %d", newID, old, j)
			}
		}
	}

	// Scratch rebuild: remap the kept edges by hand and compare adjacency.
	var edges [][2]int
	for _, e := range g.Edges {
		nu, okU := remap[e[0]]
		nv, okV := remap[e[1]]
		if okU && okV {
			edges = append(edges, [2]int{nu, nv})
		}
	}
	scratch := New(len(idx), edges, nil, nil, 0)
	if !sameCSR(sub.Adj(), scratch.Adj()) {
		t.Fatal("subgraph adjacency differs from scratch rebuild")
	}
	for _, kind := range allNormKinds {
		if !sameCSR(sub.NormAdj(kind), scratch.NormAdj(kind)) {
			t.Fatalf("kind %v: subgraph NormAdj differs from scratch rebuild", kind)
		}
	}
	// Membership must be exact: an edge with exactly one endpoint selected
	// may not survive.
	for _, e := range sub.Edges {
		if e[0] >= sub.N || e[1] >= sub.N {
			t.Fatalf("edge %v outside subgraph", e)
		}
	}
}
