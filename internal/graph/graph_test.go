package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// twoBlocks returns a graph with two fully homophilous triangles of
// different classes joined by one heterophilous bridge.
func twoBlocks() *Graph {
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}}
	labels := []int{0, 0, 0, 1, 1, 1}
	x := matrix.New(6, 2)
	return New(6, edges, x, labels, 2)
}

func TestCanonicalize(t *testing.T) {
	edges := Canonicalize([][2]int{{2, 1}, {1, 2}, {0, 0}, {3, 1}})
	want := [][2]int{{0, 0}, {1, 2}, {1, 3}}
	if len(edges) != len(want) {
		t.Fatalf("got %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestEdgeHomophily(t *testing.T) {
	g := twoBlocks()
	// 6 intra-class edges, 1 bridge => 6/7.
	if got := g.EdgeHomophily(); math.Abs(got-6.0/7.0) > 1e-12 {
		t.Fatalf("EdgeHomophily = %v, want %v", got, 6.0/7.0)
	}
}

func TestNodeHomophily(t *testing.T) {
	g := twoBlocks()
	// Nodes 0,1,4,5: homophily 1. Nodes 2,3: 2/3 each.
	want := (4.0 + 2.0*2.0/3.0) / 6.0
	if got := g.NodeHomophily(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("NodeHomophily = %v, want %v", got, want)
	}
}

func TestHomophilyBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(3)
		}
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		g := New(n, edges, nil, labels, 3)
		eh, nh := g.EdgeHomophily(), g.NodeHomophily()
		return eh >= 0 && eh <= 1 && nh >= 0 && nh <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsAndDegrees(t *testing.T) {
	g := twoBlocks()
	nbrs := g.Neighbors(2)
	if len(nbrs) != 3 {
		t.Fatalf("Neighbors(2) = %v, want 3 neighbours", nbrs)
	}
	d := g.Degrees()
	if d[2] != 3 || d[0] != 2 {
		t.Fatalf("Degrees = %v", d)
	}
}

func TestOneHotLabels(t *testing.T) {
	g := twoBlocks()
	y := g.OneHotLabels()
	if y.At(0, 0) != 1 || y.At(0, 1) != 0 || y.At(5, 1) != 1 {
		t.Fatal("one-hot encoding wrong")
	}
	for i := 0; i < g.N; i++ {
		var s float64
		for _, v := range y.Row(i) {
			s += v
		}
		if s != 1 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := twoBlocks()
	g.TrainMask[3] = true
	sub, remap := g.Subgraph([]int{3, 4, 5})
	if sub.N != 3 || sub.M() != 3 {
		t.Fatalf("subgraph %d nodes %d edges, want 3/3", sub.N, sub.M())
	}
	if sub.Labels[0] != 1 {
		t.Fatal("labels not remapped")
	}
	if !sub.TrainMask[remap[3]] {
		t.Fatal("train mask not carried over")
	}
	if got := sub.EdgeHomophily(); got != 1 {
		t.Fatalf("pure block homophily = %v, want 1", got)
	}
}

func TestSubgraphDropsCrossEdges(t *testing.T) {
	g := twoBlocks()
	sub, _ := g.Subgraph([]int{2, 3})
	if sub.M() != 1 {
		t.Fatalf("bridge-only subgraph has %d edges, want 1", sub.M())
	}
}

func TestCloneIndependence(t *testing.T) {
	g := twoBlocks()
	c := g.Clone()
	c.AddEdges([][2]int{{0, 5}})
	c.Labels[0] = 1
	c.X.Set(0, 0, 9)
	if g.HasEdge(0, 5) || g.Labels[0] == 1 || g.X.At(0, 0) == 9 {
		t.Fatal("Clone must be fully independent")
	}
}

func TestAddEdgesDedupAndInvalidate(t *testing.T) {
	g := twoBlocks()
	m0 := g.M()
	_ = g.Adj() // populate cache
	g.AddEdges([][2]int{{0, 1}, {0, 4}})
	if g.M() != m0+1 {
		t.Fatalf("M = %d, want %d", g.M(), m0+1)
	}
	if g.Adj().At(0, 4) != 1 {
		t.Fatal("cached adjacency not invalidated")
	}
}

func TestRemoveEdgesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := twoBlocks()
	g.RemoveEdgesRandom(1.0, rng)
	if g.M() != 0 {
		t.Fatalf("frac=1 should remove all edges, left %d", g.M())
	}
	g2 := twoBlocks()
	g2.RemoveEdgesRandom(0, rng)
	if g2.M() != 7 {
		t.Fatal("frac=0 should remove nothing")
	}
}

func TestHasEdge(t *testing.T) {
	g := twoBlocks()
	if !g.HasEdge(3, 2) {
		t.Fatal("HasEdge must be order-insensitive")
	}
	if g.HasEdge(0, 5) {
		t.Fatal("phantom edge")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(5, [][2]int{{0, 1}, {2, 3}}, nil, []int{0, 0, 0, 0, 0}, 1)
	comp, n := g.ConnectedComponents()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] || comp[4] == comp[0] {
		t.Fatalf("component labels wrong: %v", comp)
	}
}

func TestLabelDistribution(t *testing.T) {
	g := twoBlocks()
	d := g.LabelDistribution()
	if d[0] != 3 || d[1] != 3 {
		t.Fatalf("LabelDistribution = %v", d)
	}
}

func TestSplitTransductiveStratified(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 100
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 4
	}
	g := New(n, nil, nil, labels, 4)
	g.SplitTransductive(0.2, 0.4, rng)
	s := g.Summary()
	if s.Train != 20 || s.Val != 40 || s.Test != 40 {
		t.Fatalf("split = %d/%d/%d, want 20/40/40", s.Train, s.Val, s.Test)
	}
	// Every class must appear in training (stratification).
	perClass := make([]int, 4)
	for i, m := range g.TrainMask {
		if m {
			perClass[labels[i]]++
		}
	}
	for c, k := range perClass {
		if k == 0 {
			t.Fatalf("class %d absent from training set", c)
		}
	}
	// Masks must be disjoint and exhaustive.
	for i := 0; i < n; i++ {
		cnt := 0
		for _, m := range []bool{g.TrainMask[i], g.ValMask[i], g.TestMask[i]} {
			if m {
				cnt++
			}
		}
		if cnt != 1 {
			t.Fatalf("node %d in %d masks", i, cnt)
		}
	}
}

func TestMaskHelpers(t *testing.T) {
	mask := []bool{true, false, true}
	idx := MaskIdx(mask)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Fatalf("MaskIdx = %v", idx)
	}
	if CountMask(mask) != 2 {
		t.Fatal("CountMask wrong")
	}
}

func TestSummary(t *testing.T) {
	g := twoBlocks()
	s := g.Summary()
	if s.Nodes != 6 || s.Edges != 7 || s.Features != 2 || s.Classes != 2 {
		t.Fatalf("Summary = %+v", s)
	}
}

// Property: subgraph homophily of a single-class node set is always 1 when
// it has at least one internal edge.
func TestQuickSingleClassSubgraphHomophily(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(6)
		labels := make([]int, n)
		for i := n / 2; i < n; i++ {
			labels[i] = 1
		}
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		g := New(n, edges, nil, labels, 2)
		idx := make([]int, 0, n/2)
		for i := 0; i < n/2; i++ {
			idx = append(idx, i)
		}
		sub, _ := g.Subgraph(idx)
		if sub.M() == 0 {
			return true
		}
		return sub.EdgeHomophily() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
