// Package metrics provides the evaluation metrics used across the AdaFGL
// reproduction: masked accuracy, per-class confusion counts, macro-F1, and
// aggregation helpers for multi-seed experiment cells.
package metrics

import (
	"fmt"
	"math"
)

// Confusion is a square class-confusion matrix: Counts[i][j] counts nodes of
// true class i predicted as class j.
type Confusion struct {
	Classes int
	Counts  [][]int
}

// NewConfusion allocates a zeroed confusion matrix.
func NewConfusion(classes int) *Confusion {
	c := &Confusion{Classes: classes, Counts: make([][]int, classes)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, classes)
	}
	return c
}

// Add accumulates predictions over the masked nodes (mask nil = all).
func (c *Confusion) Add(labels, pred []int, mask []bool) error {
	if len(labels) != len(pred) {
		return fmt.Errorf("metrics: %d labels vs %d predictions", len(labels), len(pred))
	}
	for i := range labels {
		if mask != nil && !mask[i] {
			continue
		}
		if labels[i] < 0 || labels[i] >= c.Classes || pred[i] < 0 || pred[i] >= c.Classes {
			return fmt.Errorf("metrics: class out of range at %d (true %d, pred %d)", i, labels[i], pred[i])
		}
		c.Counts[labels[i]][pred[i]]++
	}
	return nil
}

// Total returns the number of accumulated samples.
func (c *Confusion) Total() int {
	t := 0
	for _, row := range c.Counts {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Accuracy returns the trace fraction.
func (c *Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.Classes; i++ {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(t)
}

// MacroF1 returns the unweighted mean of per-class F1 scores. Classes with
// no true or predicted samples contribute F1 = 0 only if they appear in the
// data; entirely absent classes are skipped.
func (c *Confusion) MacroF1() float64 {
	var sum float64
	counted := 0
	for k := 0; k < c.Classes; k++ {
		tp := c.Counts[k][k]
		fp, fn := 0, 0
		for j := 0; j < c.Classes; j++ {
			if j != k {
				fp += c.Counts[j][k]
				fn += c.Counts[k][j]
			}
		}
		if tp+fp+fn == 0 {
			continue // class absent entirely
		}
		counted++
		if tp == 0 {
			continue // F1 = 0
		}
		prec := float64(tp) / float64(tp+fp)
		rec := float64(tp) / float64(tp+fn)
		sum += 2 * prec * rec / (prec + rec)
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// Accuracy computes masked argmax accuracy directly from predictions.
func Accuracy(labels, pred []int, mask []bool) float64 {
	correct, total := 0, 0
	for i := range labels {
		if mask != nil && !mask[i] {
			continue
		}
		total++
		if labels[i] == pred[i] {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// MeanStd returns the sample mean and (n-1) standard deviation.
func MeanStd(v []float64) (mean, std float64) {
	if len(v) == 0 {
		return 0, 0
	}
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	if len(v) < 2 {
		return mean, 0
	}
	for _, x := range v {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(v)-1))
}

// Pearson returns the Pearson correlation of two equal-length series, the
// statistic behind the Fig. 7 "HCS tracks homophily" claim.
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) < 2 {
		return 0, fmt.Errorf("metrics: need >= 2 points")
	}
	ma, _ := MeanStd(a)
	mb, _ := MeanStd(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, fmt.Errorf("metrics: zero variance")
	}
	return cov / math.Sqrt(va*vb), nil
}
