package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfusionAccuracy(t *testing.T) {
	c := NewConfusion(2)
	if err := c.Add([]int{0, 0, 1, 1}, []int{0, 1, 1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("accuracy = %v, want 0.75", got)
	}
	if c.Total() != 4 {
		t.Fatalf("total = %d", c.Total())
	}
}

func TestConfusionMasked(t *testing.T) {
	c := NewConfusion(2)
	if err := c.Add([]int{0, 1}, []int{1, 1}, []bool{false, true}); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 1 || c.Accuracy() != 1 {
		t.Fatalf("masked accumulation wrong: total %d acc %v", c.Total(), c.Accuracy())
	}
}

func TestConfusionErrors(t *testing.T) {
	c := NewConfusion(2)
	if err := c.Add([]int{0}, []int{0, 1}, nil); err == nil {
		t.Fatal("length mismatch must error")
	}
	if err := c.Add([]int{5}, []int{0}, nil); err == nil {
		t.Fatal("out-of-range class must error")
	}
}

func TestMacroF1PerfectAndWorst(t *testing.T) {
	c := NewConfusion(3)
	if err := c.Add([]int{0, 1, 2}, []int{0, 1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.MacroF1(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect MacroF1 = %v", got)
	}
	w := NewConfusion(2)
	if err := w.Add([]int{0, 1}, []int{1, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if got := w.MacroF1(); got != 0 {
		t.Fatalf("all-wrong MacroF1 = %v", got)
	}
}

func TestMacroF1Imbalanced(t *testing.T) {
	// Class 0: 3 true all correct. Class 1: 1 true, predicted 0.
	c := NewConfusion(2)
	if err := c.Add([]int{0, 0, 0, 1}, []int{0, 0, 0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	// F1(0): prec 3/4, rec 1 → 6/7. F1(1): 0. Macro = 3/7.
	want := (6.0/7.0 + 0) / 2
	if got := c.MacroF1(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MacroF1 = %v, want %v", got, want)
	}
}

func TestMacroF1SkipsAbsentClasses(t *testing.T) {
	c := NewConfusion(5)
	if err := c.Add([]int{0, 1}, []int{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.MacroF1(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MacroF1 with absent classes = %v, want 1", got)
	}
}

func TestAccuracyHelper(t *testing.T) {
	if got := Accuracy([]int{0, 1, 1}, []int{0, 1, 0}, nil); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := Accuracy(nil, nil, nil); got != 0 {
		t.Fatal("empty accuracy must be 0")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
	if math.Abs(s-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("std = %v", s)
	}
	if _, s := MeanStd([]float64{3}); s != 0 {
		t.Fatal("single sample std must be 0")
	}
}

func TestPearson(t *testing.T) {
	r, err := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", r)
	}
	r, err = Pearson([]float64{1, 2, 3}, []float64{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", r)
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("too few points must error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("zero variance must error")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

// Property: confusion accuracy equals direct accuracy for random data.
func TestQuickConfusionMatchesAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 1+rng.Intn(50), 2+rng.Intn(5)
		labels := make([]int, n)
		pred := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(k)
			pred[i] = rng.Intn(k)
		}
		c := NewConfusion(k)
		if err := c.Add(labels, pred, nil); err != nil {
			return false
		}
		return math.Abs(c.Accuracy()-Accuracy(labels, pred, nil)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: MacroF1 is within [0, 1].
func TestQuickMacroF1Bounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 1+rng.Intn(30), 2+rng.Intn(4)
		labels := make([]int, n)
		pred := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(k)
			pred[i] = rng.Intn(k)
		}
		c := NewConfusion(k)
		if err := c.Add(labels, pred, nil); err != nil {
			return false
		}
		f1 := c.MacroF1()
		return f1 >= 0 && f1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
