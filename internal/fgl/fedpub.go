package fgl

import (
	"math"

	"repro/internal/federated"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/nn"
)

// FedPub implements the FED-PUB mechanism of Baek et al.: the server builds
// a personalised aggregate for every client, weighting other clients by the
// (temperature-scaled, softmaxed) cosine similarity of their uploaded model
// weights; each client additionally keeps a personalised sparse mask that
// pins its most locally important parameters to their local values, so only
// the subgraph-relevant subset of the aggregate is adopted.
type FedPub struct {
	// Tau is the similarity softmax temperature.
	Tau float64
	// MaskFraction is the fraction of parameters each client keeps local
	// (the personalised sparse mask).
	MaskFraction float64
}

// NewFedPub returns FED-PUB with the defaults used in the experiments.
func NewFedPub() *FedPub { return &FedPub{Tau: 5, MaskFraction: 0.3} }

// Name implements Method.
func (m *FedPub) Name() string { return "FED-PUB" }

// Run implements Method.
func (m *FedPub) Run(subgraphs []*graph.Graph, cfg models.Config, opt federated.Options) (*federated.Result, error) {
	build, err := models.BuilderFor("GCN")
	if err != nil {
		return nil, err
	}
	clients := federated.BuildClients(subgraphs, build, cfg, opt.Seed)
	dim := len(nn.Flatten(clients[0].Model))
	n := len(clients)

	// Per-client personalised models, initialised identically.
	personal := make([][]float64, n)
	init := nn.Flatten(clients[0].Model)
	for i := range personal {
		personal[i] = append([]float64(nil), init...)
	}
	// Communication: model params both ways plus the personalised sparse
	// mask (one bit per parameter) each client maintains (Table VIII).
	res := &federated.Result{BytesPerRound: n*dim*8*2 + n*dim/8}
	locals := make([][]float64, n)

	for round := 0; round < opt.Rounds; round++ {
		for ci, c := range clients {
			if err := nn.Unflatten(c.Model, personal[ci]); err != nil {
				return nil, err
			}
			c.TrainLocal(opt.LocalEpochs)
			locals[ci] = nn.Flatten(c.Model)
		}
		// Weight-similarity personalised aggregation.
		for i := 0; i < n; i++ {
			weights := make([]float64, n)
			var wsum float64
			for j := 0; j < n; j++ {
				weights[j] = math.Exp(m.Tau * cosineVec(locals[i], locals[j]))
				wsum += weights[j]
			}
			agg := make([]float64, dim)
			for j := 0; j < n; j++ {
				w := weights[j] / wsum
				for t, v := range locals[j] {
					agg[t] += w * v
				}
			}
			// Personalised sparse mask: pin the locally most-changed
			// parameters (highest |local - personal_prev|) to local values.
			kLocal := int(m.MaskFraction * float64(dim))
			if kLocal > 0 {
				thresh := kthLargestAbsDiff(locals[i], personal[i], kLocal)
				for t := range agg {
					if abs(locals[i][t]-personal[i][t]) >= thresh {
						agg[t] = locals[i][t]
					}
				}
			}
			personal[i] = agg
		}
		res.RoundAcc = append(res.RoundAcc, m.evalPersonal(clients, personal))
	}
	// The mean personalised model stands in for a global model.
	mean := make([]float64, dim)
	for _, p := range personal {
		for t, v := range p {
			mean[t] += v / float64(n)
		}
	}
	res.GlobalParams = mean

	var weighted, total float64
	for ci, c := range clients {
		if err := nn.Unflatten(c.Model, personal[ci]); err != nil {
			return nil, err
		}
		if opt.LocalCorrection > 0 {
			c.TrainLocal(opt.LocalCorrection)
		}
		acc := c.TestAccuracy()
		res.PerClient = append(res.PerClient, acc)
		w := float64(c.TestSize())
		weighted += acc * w
		total += w
	}
	if total > 0 {
		res.TestAcc = weighted / total
	}
	return res, nil
}

func (m *FedPub) evalPersonal(clients []*federated.Client, personal [][]float64) float64 {
	var weighted, total float64
	for ci, c := range clients {
		if err := nn.Unflatten(c.Model, personal[ci]); err != nil {
			return 0
		}
		w := float64(c.TestSize())
		weighted += c.TestAccuracy() * w
		total += w
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// kthLargestAbsDiff returns the k-th largest |a[i]-b[i]| via a partial
// selection (quickselect on a copy).
func kthLargestAbsDiff(a, b []float64, k int) float64 {
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = abs(a[i] - b[i])
	}
	if k >= len(diffs) {
		k = len(diffs) - 1
	}
	return quickselect(diffs, k)
}

// quickselect finds the k-th largest element (0-based) in place.
func quickselect(v []float64, k int) float64 {
	lo, hi := 0, len(v)-1
	for lo < hi {
		p := v[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for v[i] > p {
				i++
			}
			for v[j] < p {
				j--
			}
			if i <= j {
				v[i], v[j] = v[j], v[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return v[k]
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
