package fgl

import (
	"math/rand"

	"repro/internal/federated"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/nn"
)

// FedGL implements Chen et al.'s global self-supervision mechanism: clients
// upload local predictions; the server fuses them into global pseudo-labels
// for confident unlabeled nodes; clients then train with the densified
// supervision. Its failure mode under topology heterogeneity — low-quality
// pseudo-labels from topology-misled local models — emerges naturally.
type FedGL struct {
	// Confidence is the softmax threshold above which an unlabeled node
	// receives a pseudo-label.
	Confidence float64
	// RefreshEvery controls how often (in rounds) pseudo-labels are rebuilt.
	RefreshEvery int
}

// NewFedGL returns FedGL with the defaults used in the experiments.
func NewFedGL() *FedGL { return &FedGL{Confidence: 0.9, RefreshEvery: 10} }

// Name implements Method.
func (m *FedGL) Name() string { return "FedGL" }

// Run implements Method.
func (m *FedGL) Run(subgraphs []*graph.Graph, cfg models.Config, opt federated.Options) (*federated.Result, error) {
	build, err := models.BuilderFor("GCN")
	if err != nil {
		return nil, err
	}
	// Work on copies: pseudo-labeling mutates labels/masks.
	work := make([]*graph.Graph, len(subgraphs))
	orig := make([]*graph.Graph, len(subgraphs))
	for i, g := range subgraphs {
		work[i] = g.Clone()
		orig[i] = g
	}
	clients := federated.BuildClients(work, build, cfg, opt.Seed)
	rng := freshRNG(opt, 17)

	dim := len(nn.Flatten(clients[0].Model))
	global := nn.Flatten(clients[0].Model)
	// Communication: model params both ways, plus each client's uploaded
	// node predictions and embeddings (N_i × classes + N_i × classes soft
	// scores) that the server fuses into global supervision (Table VIII).
	extra := 0
	for _, g := range work {
		extra += 2 * g.N * g.Classes * 8
	}
	res := &federated.Result{BytesPerRound: len(clients)*dim*8*2 + extra}

	for round := 0; round < opt.Rounds; round++ {
		agg := make([]float64, dim)
		var totalW float64
		for _, c := range clients {
			if err := nn.Unflatten(c.Model, global); err != nil {
				return nil, err
			}
			c.TrainLocal(opt.LocalEpochs)
			w := float64(c.TrainSize())
			if w == 0 {
				w = 1
			}
			for i, v := range nn.Flatten(c.Model) {
				agg[i] += w * v
			}
			totalW += w
		}
		for i := range agg {
			agg[i] /= totalW
		}
		global = agg

		if (round+1)%m.RefreshEvery == 0 {
			m.refreshPseudoLabels(clients, orig, global, rng)
		}
		res.RoundAcc = append(res.RoundAcc, evalOnOriginal(clients, orig, global))
	}
	res.GlobalParams = global
	finalEval(res, clients, orig, global, opt.LocalCorrection)
	return res, nil
}

// refreshPseudoLabels loads the global model into each client and marks
// confident unlabeled nodes as pseudo-training nodes (the server-side
// "pseudo graph + pseudo prediction" of Table VIII).
func (m *FedGL) refreshPseudoLabels(clients []*federated.Client, orig []*graph.Graph, global []float64, rng *rand.Rand) {
	for ci, c := range clients {
		if err := nn.Unflatten(c.Model, global); err != nil {
			return
		}
		probs := matrix.SoftmaxRows(c.Model.Logits(false))
		og := orig[ci]
		for v := 0; v < c.Graph.N; v++ {
			if og.TrainMask[v] || og.ValMask[v] {
				continue
			}
			row := probs.Row(v)
			best, bi := 0.0, 0
			for j, p := range row {
				if p > best {
					best, bi = p, j
				}
			}
			if best >= m.Confidence {
				c.Graph.TrainMask[v] = true
				c.Graph.Labels[v] = bi
			} else if c.Graph.TrainMask[v] && !og.TrainMask[v] {
				// Drop stale pseudo-labels that lost confidence.
				c.Graph.TrainMask[v] = false
				c.Graph.Labels[v] = og.Labels[v]
			}
		}
	}
}

// evalOnOriginal computes weighted test accuracy against the ORIGINAL labels
// and masks (pseudo-labels must never leak into evaluation).
func evalOnOriginal(clients []*federated.Client, orig []*graph.Graph, global []float64) float64 {
	var weighted, total float64
	for ci, c := range clients {
		if err := nn.Unflatten(c.Model, global); err != nil {
			return 0
		}
		logits := c.Model.Logits(false)
		acc := models.AccuracyFromLogits(logits, orig[ci].Labels, orig[ci].TestMask)
		w := float64(graph.CountMask(orig[ci].TestMask))
		weighted += acc * w
		total += w
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// finalEval fills Result.PerClient/TestAcc after optional local correction,
// always scoring against original labels.
func finalEval(res *federated.Result, clients []*federated.Client, orig []*graph.Graph, global []float64, correction int) {
	var weighted, total float64
	for ci, c := range clients {
		if err := nn.Unflatten(c.Model, global); err != nil {
			return
		}
		if correction > 0 {
			c.TrainLocal(correction)
		}
		logits := c.Model.Logits(false)
		acc := models.AccuracyFromLogits(logits, orig[ci].Labels, orig[ci].TestMask)
		res.PerClient = append(res.PerClient, acc)
		w := float64(graph.CountMask(orig[ci].TestMask))
		weighted += acc * w
		total += w
	}
	if total > 0 {
		res.TestAcc = weighted / total
	}
}
