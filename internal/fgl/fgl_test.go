package fgl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/partition"
)

func quickCfg() models.Config {
	cfg := models.DefaultConfig()
	cfg.Hidden = 16
	cfg.Dropout = 0
	return cfg
}

func quickOpts() federated.Options {
	o := federated.DefaultOptions()
	o.Rounds = 10
	o.LocalEpochs = 2
	return o
}

func communitySubgraphs(t testing.TB, name string, k int, seed int64) []*graph.Graph {
	t.Helper()
	s, err := datasets.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g := datasets.GenerateScaled(s, 0.3, seed)
	cd := partition.CommunitySplit(g, k, rand.New(rand.NewSource(seed)))
	return cd.Subgraphs
}

func nonIIDSubgraphs(t testing.TB, name string, k int, seed int64) []*graph.Graph {
	t.Helper()
	s, err := datasets.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g := datasets.GenerateScaled(s, 0.3, seed)
	cd := partition.StructureNonIIDSplit(g, k, partition.DefaultNonIID(), rand.New(rand.NewSource(seed)))
	return cd.Subgraphs
}

func runMethod(t *testing.T, m Method, subs []*graph.Graph) *federated.Result {
	t.Helper()
	res, err := m.Run(subs, quickCfg(), quickOpts())
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	return res
}

func TestAllMethodsRunAndLearn(t *testing.T) {
	subs := communitySubgraphs(t, "Cora", 4, 1)
	for _, m := range Methods([]string{"GCN", "GloGNN"}, 5) {
		res := runMethod(t, m, subs)
		if res.TestAcc < 0.4 {
			t.Errorf("%s: accuracy %.3f < 0.4 on homophilous community split", m.Name(), res.TestAcc)
		}
		if len(res.RoundAcc) != 10 {
			t.Errorf("%s: missing convergence curve", m.Name())
		}
		if len(res.PerClient) != 4 {
			t.Errorf("%s: per-client accuracies missing", m.Name())
		}
		if res.BytesPerRound <= 0 {
			t.Errorf("%s: communication accounting missing", m.Name())
		}
	}
}

func TestMethodByName(t *testing.T) {
	for _, name := range []string{"FedGL", "GCFL+", "FedSage+", "FED-PUB", "FedGCN", "GCN", "FedGloGNN"} {
		if _, err := MethodByName(name); err != nil {
			t.Errorf("MethodByName(%q): %v", name, err)
		}
	}
	if _, err := MethodByName("bogus"); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestFedGLPseudoLabelsDoNotLeakIntoEval(t *testing.T) {
	subs := communitySubgraphs(t, "Cora", 3, 3)
	// Record original test masks.
	origTest := make([][]bool, len(subs))
	for i, g := range subs {
		origTest[i] = append([]bool(nil), g.TestMask...)
	}
	m := NewFedGL()
	m.RefreshEvery = 2
	res := runMethod(t, m, subs)
	// Inputs must be untouched (FedGL works on clones).
	for i, g := range subs {
		for v := range g.TestMask {
			if g.TestMask[v] != origTest[i][v] {
				t.Fatal("FedGL mutated caller's masks")
			}
		}
	}
	if res.TestAcc <= 0 {
		t.Fatal("FedGL produced no accuracy")
	}
}

func TestGCFLSplitsUnderTopologyVariance(t *testing.T) {
	// Under structure Non-iid the update directions diverge, so GCFL+
	// should end with more than one cluster at a low threshold.
	subs := nonIIDSubgraphs(t, "Cora", 6, 5)
	m := NewGCFL()
	m.SplitThreshold = 0.05
	o := quickOpts()
	o.Rounds = 12
	res, err := m.Run(subs, quickCfg(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAcc <= 0.2 {
		t.Fatalf("GCFL+ accuracy %.3f implausibly low", res.TestAcc)
	}
}

func TestFedSageMendsLowDegreeNodes(t *testing.T) {
	subs := communitySubgraphs(t, "Cora", 3, 7)
	m := NewFedSage()
	g := subs[0]
	mended := m.mendSubgraph(g, rand.New(rand.NewSource(8)))
	wantExtra := int(float64(g.N)*m.GenFraction) * m.NeighborsPerNode
	if mended.N != g.N+wantExtra {
		t.Fatalf("mended N = %d, want %d", mended.N, g.N+wantExtra)
	}
	if mended.M() <= g.M() {
		t.Fatal("mending must add edges")
	}
	// Generated nodes carry no evaluation masks.
	for v := g.N; v < mended.N; v++ {
		if mended.TrainMask[v] || mended.ValMask[v] || mended.TestMask[v] {
			t.Fatal("generated node joined a mask")
		}
	}
	// Original masks preserved.
	for v := 0; v < g.N; v++ {
		if mended.TestMask[v] != g.TestMask[v] {
			t.Fatal("original mask lost")
		}
	}
}

func TestFedPubMaskKeepsLocalValues(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 0, 3, 0}
	// diffs: 0,2,0,4 — 2nd largest (k=1, 0-based) is 2.
	if got := kthLargestAbsDiff(a, b, 1); got != 2 {
		t.Fatalf("kthLargestAbsDiff = %v, want 2", got)
	}
	if got := quickselect([]float64{5, 1, 3}, 0); got != 5 {
		t.Fatalf("quickselect largest = %v", got)
	}
	if got := quickselect([]float64{5, 1, 3}, 2); got != 1 {
		t.Fatalf("quickselect smallest = %v", got)
	}
}

func TestFedPubPersonalizationHelpsUnderHeterogeneity(t *testing.T) {
	// FED-PUB should not be worse than plain FedGCN by a wide margin under
	// community split (both are competitive per Table II).
	subs := communitySubgraphs(t, "Cora", 4, 9)
	pub := runMethod(t, NewFedPub(), subs)
	gcn := runMethod(t, FedModel{Arch: "GCN"}, subs)
	if pub.TestAcc < gcn.TestAcc-0.15 {
		t.Fatalf("FED-PUB %.3f far below FedGCN %.3f under community split", pub.TestAcc, gcn.TestAcc)
	}
}

func TestCosineVec(t *testing.T) {
	if c := cosineVec([]float64{1, 0}, []float64{1, 0}); math.Abs(c-1) > 1e-12 {
		t.Fatalf("cos = %v", c)
	}
	if c := cosineVec([]float64{1, 0}, []float64{0, 1}); math.Abs(c) > 1e-12 {
		t.Fatalf("cos = %v", c)
	}
	if c := cosineVec([]float64{0, 0}, []float64{1, 1}); c != 0 {
		t.Fatalf("zero vector cos = %v", c)
	}
}

func TestFedModelUnknownArch(t *testing.T) {
	m := FedModel{Arch: "nope"}
	if _, err := m.Run(communitySubgraphs(t, "Cora", 2, 11), quickCfg(), quickOpts()); err == nil {
		t.Fatal("unknown architecture must error")
	}
}

func TestHeterophilyAdvantageShape(t *testing.T) {
	// The paper's central empirical claim (Fig. 2(c)): on structure Non-iid
	// splits, the heterophily-aware FedGloGNN should close or reverse the
	// gap to FedGCN relative to community split.
	comm := communitySubgraphs(t, "Chameleon", 4, 13)
	noniid := nonIIDSubgraphs(t, "Chameleon", 4, 13)
	o := quickOpts()
	o.Rounds = 15
	run := func(arch string, subs []*graph.Graph) float64 {
		res, err := FedModel{Arch: arch, Correction: 10}.Run(subs, quickCfg(), o)
		if err != nil {
			t.Fatal(err)
		}
		return res.TestAcc
	}
	gcnComm := run("GCN", comm)
	gloComm := run("GloGNN", comm)
	gcnNI := run("GCN", noniid)
	gloNI := run("GloGNN", noniid)
	t.Logf("community: GCN %.3f GloGNN %.3f | non-iid: GCN %.3f GloGNN %.3f", gcnComm, gloComm, gcnNI, gloNI)
	// Shape check with slack: GloGNN's relative standing should not
	// deteriorate when moving to the Non-iid split.
	if (gloNI - gcnNI) < (gloComm-gcnComm)-0.2 {
		t.Errorf("heterophilous advantage shape violated")
	}
}
