// Package fgl implements the federated graph learning baselines the AdaFGL
// paper compares against (Sec. II-C, Table VIII): federated wrappers of
// centralized GNNs (FedGCN, FedGloGNN, …), FedGL (global pseudo-label
// supervision), GCFL+ (gradient-similarity clustered aggregation), FedSage+
// (NeighGen-style local subgraph augmentation) and FED-PUB (weight-similarity
// personalised aggregation with personalised masks). Each baseline is
// reimplemented at the mechanism level described in the paper, which is what
// determines its behaviour under topology heterogeneity.
package fgl

import (
	"fmt"
	"math/rand"

	"repro/internal/federated"
	"repro/internal/graph"
	"repro/internal/models"
)

// Method is a federated node-classification algorithm run over the clients'
// private subgraphs.
type Method interface {
	Name() string
	Run(subgraphs []*graph.Graph, cfg models.Config, opt federated.Options) (*federated.Result, error)
}

// FedModel is plain FedAvg over any registered GNN architecture — the
// paper's "federated implementation of representative GNNs" (FedGCN,
// FedGCNII, FedGAMLP, FedGPRGNN, FedGGCN, FedGloGNN), including the local
// correction the paper applies for fair comparison.
type FedModel struct {
	Arch string
	// Correction is the number of local fine-tuning epochs after the final
	// round (paper: "local corrections ... to achieve maximum convergence").
	Correction int
}

// Name implements Method.
func (m FedModel) Name() string { return "Fed" + m.Arch }

// Run implements Method.
func (m FedModel) Run(subgraphs []*graph.Graph, cfg models.Config, opt federated.Options) (*federated.Result, error) {
	build, err := models.BuilderFor(m.Arch)
	if err != nil {
		return nil, err
	}
	clients := federated.BuildClients(subgraphs, build, cfg, opt.Seed)
	if m.Correction > 0 {
		opt.LocalCorrection = m.Correction
	}
	return federated.Run(clients, opt.Seed+1, opt)
}

// Methods returns the baseline set of the paper's main tables for the given
// split family. All four FGL systems plus the GNN wrappers named.
func Methods(archWrappers []string, correction int) []Method {
	out := make([]Method, 0, len(archWrappers)+4)
	for _, a := range archWrappers {
		out = append(out, FedModel{Arch: a, Correction: correction})
	}
	out = append(out,
		NewFedGL(),
		NewGCFL(),
		NewFedSage(),
		NewFedPub(),
	)
	return out
}

// MethodByName resolves the names used in the paper's tables.
func MethodByName(name string) (Method, error) {
	switch name {
	case "FedGL":
		return NewFedGL(), nil
	case "GCFL+":
		return NewGCFL(), nil
	case "FedSage+":
		return NewFedSage(), nil
	case "FED-PUB":
		return NewFedPub(), nil
	}
	if len(name) > 3 && name[:3] == "Fed" {
		if _, err := models.BuilderFor(name[3:]); err == nil {
			return FedModel{Arch: name[3:], Correction: 20}, nil
		}
	}
	if _, err := models.BuilderFor(name); err == nil {
		return FedModel{Arch: name, Correction: 20}, nil
	}
	return nil, fmt.Errorf("fgl: unknown method %q", name)
}

// freshRNG derives a deterministic rng from run options and a salt.
func freshRNG(opt federated.Options, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(opt.Seed*1_000_003 + salt))
}
