package fgl

import (
	"math/rand"
	"sort"

	"repro/internal/federated"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/models"
)

// FedSage implements the FedSage+ mechanism of Zhang et al.: every client
// runs a NeighGen-style generator that mends its subgraph by synthesising the
// neighbours lost to the partition cut, then federated training proceeds on
// the mended subgraphs. Our generator follows the published design at the
// mechanism level: it detects under-connected (boundary-like) nodes, predicts
// how many neighbours are missing from the degree distribution, and generates
// neighbour features from the class-conditional feature model of the local
// training data — which implicitly assumes homophily, producing FedSage+'s
// characteristic collapse under structure Non-iid (Table II).
type FedSage struct {
	// GenFraction is the fraction of lowest-degree nodes that get mended.
	GenFraction float64
	// NeighborsPerNode is the number of generated neighbours per mended node.
	NeighborsPerNode int
}

// NewFedSage returns FedSage+ with the paper's searched defaults
// (augment fraction 0.1, 2 generated neighbours).
func NewFedSage() *FedSage { return &FedSage{GenFraction: 0.1, NeighborsPerNode: 2} }

// Name implements Method.
func (m *FedSage) Name() string { return "FedSage+" }

// Run implements Method.
func (m *FedSage) Run(subgraphs []*graph.Graph, cfg models.Config, opt federated.Options) (*federated.Result, error) {
	rng := freshRNG(opt, 29)
	mended := make([]*graph.Graph, len(subgraphs))
	for i, g := range subgraphs {
		mended[i] = m.mendSubgraph(g, rng)
	}
	build, err := models.BuilderFor("GCN")
	if err != nil {
		return nil, err
	}
	clients := federated.BuildClients(mended, build, cfg, opt.Seed)
	res, err := federated.Run(clients, opt.Seed+1, opt)
	if err != nil {
		return nil, err
	}
	// Communication: on top of the model params, FedSage+ exchanges node
	// embeddings and NeighGen gradients across clients during generator
	// training (Table VIII); accounted as one hidden-dim embedding per
	// mended node per round.
	for _, g := range subgraphs {
		nMend := int(float64(g.N) * m.GenFraction)
		res.BytesPerRound += nMend * cfg.Hidden * 8 * 2
	}
	// Evaluation on mended graphs uses the original nodes' masks only
	// (generated nodes carry no masks), so accuracies are comparable.
	return res, nil
}

// mendSubgraph returns a copy of g augmented with generated neighbours.
// Generated nodes receive features drawn from the ego node's class-
// conditional Gaussian fitted on local training nodes (labels of unlabeled
// egos are approximated by their nearest class centroid), and are connected
// only to their ego. Generated nodes join no train/val/test mask.
func (m *FedSage) mendSubgraph(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	if g.N == 0 {
		return g.Clone()
	}
	// Class centroids from training nodes.
	centroids, counts := classCentroids(g)
	// Rank nodes by degree ascending: the most under-connected first.
	deg := g.Degrees()
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if deg[order[a]] != deg[order[b]] {
			return deg[order[a]] < deg[order[b]]
		}
		return order[a] < order[b]
	})
	nMend := int(float64(g.N) * m.GenFraction)
	if nMend < 1 {
		nMend = 1
	}
	if nMend > g.N {
		nMend = g.N
	}

	newN := g.N + nMend*m.NeighborsPerNode
	x := matrix.New(newN, g.X.Cols)
	for i := 0; i < g.N; i++ {
		copy(x.Row(i), g.X.Row(i))
	}
	labels := make([]int, newN)
	copy(labels, g.Labels)
	edges := make([][2]int, len(g.Edges), len(g.Edges)+nMend*m.NeighborsPerNode)
	copy(edges, g.Edges)

	next := g.N
	for _, ego := range order[:nMend] {
		c := egoClass(g, ego, centroids, counts)
		for k := 0; k < m.NeighborsPerNode; k++ {
			row := x.Row(next)
			if counts[c] > 0 {
				for j := range row {
					row[j] = centroids.At(c, j) + rng.NormFloat64()*0.5
				}
			} else {
				copy(row, g.X.Row(ego))
			}
			labels[next] = c
			edges = append(edges, [2]int{ego, next})
			next++
		}
	}
	ng := graph.New(newN, edges, x, labels, g.Classes)
	copy(ng.TrainMask, g.TrainMask)
	copy(ng.ValMask, g.ValMask)
	copy(ng.TestMask, g.TestMask)
	return ng
}

// classCentroids fits per-class mean features on training nodes.
func classCentroids(g *graph.Graph) (*matrix.Dense, []int) {
	centroids := matrix.New(g.Classes, g.X.Cols)
	counts := make([]int, g.Classes)
	for i := 0; i < g.N; i++ {
		if !g.TrainMask[i] {
			continue
		}
		c := g.Labels[i]
		counts[c]++
		row := centroids.Row(c)
		for j, v := range g.X.Row(i) {
			row[j] += v
		}
	}
	for c := 0; c < g.Classes; c++ {
		if counts[c] == 0 {
			continue
		}
		row := centroids.Row(c)
		for j := range row {
			row[j] /= float64(counts[c])
		}
	}
	return centroids, counts
}

// egoClass returns the ego's label when known (train node) or the nearest
// class centroid otherwise — the homophily assumption at the heart of
// neighbour generation.
func egoClass(g *graph.Graph, ego int, centroids *matrix.Dense, counts []int) int {
	if g.TrainMask[ego] {
		return g.Labels[ego]
	}
	best, bestD := 0, -1.0
	for c := 0; c < g.Classes; c++ {
		if counts[c] == 0 {
			continue
		}
		var d float64
		for j, v := range g.X.Row(ego) {
			diff := v - centroids.At(c, j)
			d += diff * diff
		}
		if bestD < 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
