package fgl

import (
	"math"

	"repro/internal/federated"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/nn"
)

// GCFL implements Xie et al.'s GCFL+ mechanism: the server observes each
// client's model-update (gradient) sequence, bipartitions clients whose
// update directions diverge, and aggregates per cluster. Clustered
// aggregation shields homophilous clients from heterophilous ones — but only
// coarsely, which is why it trails personalised methods in the paper.
type GCFL struct {
	// SplitThreshold triggers a cluster bipartition when the mean pairwise
	// cosine dissimilarity of updates inside a cluster exceeds it.
	SplitThreshold float64
	// MaxClusters bounds recursive splitting.
	MaxClusters int
}

// NewGCFL returns GCFL+ with the defaults used in the experiments.
func NewGCFL() *GCFL { return &GCFL{SplitThreshold: 0.4, MaxClusters: 4} }

// Name implements Method.
func (m *GCFL) Name() string { return "GCFL+" }

// Run implements Method.
func (m *GCFL) Run(subgraphs []*graph.Graph, cfg models.Config, opt federated.Options) (*federated.Result, error) {
	build, err := models.BuilderFor("GCN")
	if err != nil {
		return nil, err
	}
	clients := federated.BuildClients(subgraphs, build, cfg, opt.Seed)
	dim := len(nn.Flatten(clients[0].Model))

	// cluster[i] = cluster id of client i; one global model per cluster.
	cluster := make([]int, len(clients))
	clusterModels := map[int][]float64{0: nn.Flatten(clients[0].Model)}
	nClusters := 1

	// Communication: model params both ways plus the per-client gradient
	// (update) sequence the server clusters on (Table VIII).
	res := &federated.Result{BytesPerRound: len(clients) * dim * 8 * 3}
	updates := make([][]float64, len(clients))

	for round := 0; round < opt.Rounds; round++ {
		// Per-cluster FedAvg with update recording.
		agg := map[int][]float64{}
		wsum := map[int]float64{}
		for ci, c := range clients {
			g := clusterModels[cluster[ci]]
			if err := nn.Unflatten(c.Model, g); err != nil {
				return nil, err
			}
			c.TrainLocal(opt.LocalEpochs)
			local := nn.Flatten(c.Model)
			upd := make([]float64, dim)
			for i := range upd {
				upd[i] = local[i] - g[i]
			}
			updates[ci] = upd
			w := float64(c.TrainSize())
			if w == 0 {
				w = 1
			}
			if agg[cluster[ci]] == nil {
				agg[cluster[ci]] = make([]float64, dim)
			}
			for i, v := range local {
				agg[cluster[ci]][i] += w * v
			}
			wsum[cluster[ci]] += w
		}
		for cid, a := range agg {
			for i := range a {
				a[i] /= wsum[cid]
			}
			clusterModels[cid] = a
		}

		// Gradient-sequence clustering: split divergent clusters.
		if nClusters < m.MaxClusters && (round+1)%5 == 0 {
			nClusters = m.maybeSplit(cluster, updates, clusterModels, nClusters)
		}

		res.RoundAcc = append(res.RoundAcc, m.evalClustered(clients, cluster, clusterModels))
	}
	// Report the largest cluster's model as "global" for knowledge-extractor
	// style consumers.
	res.GlobalParams = clusterModels[largestCluster(cluster, nClusters)]

	var weighted, total float64
	for ci, c := range clients {
		if err := nn.Unflatten(c.Model, clusterModels[cluster[ci]]); err != nil {
			return nil, err
		}
		if opt.LocalCorrection > 0 {
			c.TrainLocal(opt.LocalCorrection)
		}
		acc := c.TestAccuracy()
		res.PerClient = append(res.PerClient, acc)
		w := float64(c.TestSize())
		weighted += acc * w
		total += w
	}
	if total > 0 {
		res.TestAcc = weighted / total
	}
	return res, nil
}

// maybeSplit bipartitions any cluster whose internal update dissimilarity
// exceeds the threshold, seeding the two halves from the most dissimilar
// pair (the GCFL dynamic bipartition).
func (m *GCFL) maybeSplit(cluster []int, updates [][]float64, clusterModels map[int][]float64, nClusters int) int {
	for cid := 0; cid < nClusters && nClusters < m.MaxClusters; cid++ {
		members := []int{}
		for ci, c := range cluster {
			if c == cid {
				members = append(members, ci)
			}
		}
		if len(members) < 2 {
			continue
		}
		// Mean pairwise dissimilarity and the worst pair.
		var sum float64
		var count int
		worstA, worstB, worst := -1, -1, -1.0
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				d := 1 - cosineVec(updates[members[i]], updates[members[j]])
				sum += d
				count++
				if d > worst {
					worst, worstA, worstB = d, members[i], members[j]
				}
			}
		}
		if count == 0 || sum/float64(count) <= m.SplitThreshold {
			continue
		}
		// Bipartition: assign each member to the nearer seed.
		newID := nClusters
		nClusters++
		for _, ci := range members {
			da := 1 - cosineVec(updates[ci], updates[worstA])
			db := 1 - cosineVec(updates[ci], updates[worstB])
			if db < da {
				cluster[ci] = newID
			} else {
				cluster[ci] = cid
			}
		}
		clusterModels[newID] = append([]float64(nil), clusterModels[cid]...)
	}
	return nClusters
}

func (m *GCFL) evalClustered(clients []*federated.Client, cluster []int, clusterModels map[int][]float64) float64 {
	var weighted, total float64
	for ci, c := range clients {
		if err := nn.Unflatten(c.Model, clusterModels[cluster[ci]]); err != nil {
			return 0
		}
		w := float64(c.TestSize())
		weighted += c.TestAccuracy() * w
		total += w
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

func largestCluster(cluster []int, n int) int {
	counts := make([]int, n)
	for _, c := range cluster {
		counts[c]++
	}
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}

func cosineVec(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
