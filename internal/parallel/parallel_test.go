package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSetWorkersRoundTrip(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)

	if prev := SetWorkers(3); prev != orig {
		t.Fatalf("SetWorkers returned prev=%d, want %d", prev, orig)
	}
	if w := Workers(); w != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", w)
	}
	SetWorkers(0) // reset to GOMAXPROCS
	if w := Workers(); w < 1 {
		t.Fatalf("Workers() = %d after SetWorkers(0), want >= 1", w)
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)

	for _, w := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 15, 16, 31, 32, 100, 1000, 1024} {
			SetWorkers(w)
			counts := make([]int32, n)
			For(n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("w=%d n=%d: bad block [%d,%d)", w, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("w=%d n=%d: index %d visited %d times", w, n, i, c)
				}
			}
		}
	}
}

// TestForBlockLayoutIsDeterministic locks in that the block boundaries are a
// pure function of (n, workers) — the property that makes row-parallel
// kernels bit-reproducible.
func TestForBlockLayoutIsDeterministic(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	SetWorkers(4)

	layout := func() [][2]int {
		var mu sync.Mutex
		var blocks [][2]int
		For(1000, func(lo, hi int) {
			mu.Lock()
			blocks = append(blocks, [2]int{lo, hi})
			mu.Unlock()
		})
		return blocks
	}
	a, b := layout(), layout()
	if len(a) != len(b) {
		t.Fatalf("block count varies across runs: %d vs %d", len(a), len(b))
	}
	seen := make(map[[2]int]bool, len(a))
	for _, blk := range a {
		seen[blk] = true
	}
	for _, blk := range b {
		if !seen[blk] {
			t.Fatalf("block %v appears in one run but not the other", blk)
		}
	}
}

// TestForGrainAlignsBlockBoundaries verifies ForGrain's contract: full
// coverage, each index exactly once, and every block boundary except the
// final n on a multiple of the grain.
func TestForGrainAlignsBlockBoundaries(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)

	for _, w := range []int{1, 2, 4, 8} {
		for _, grain := range []int{1, 3, 4, 7, 16} {
			for _, n := range []int{0, 1, 5, 63, 64, 100, 1000, 1021} {
				SetWorkers(w)
				counts := make([]int32, n)
				var mu sync.Mutex
				var blocks [][2]int
				ForGrain(n, grain, func(lo, hi int) {
					if lo%grain != 0 {
						t.Errorf("w=%d grain=%d n=%d: block start %d not grain-aligned", w, grain, n, lo)
					}
					if hi != n && hi%grain != 0 {
						t.Errorf("w=%d grain=%d n=%d: block end %d not grain-aligned", w, grain, n, hi)
					}
					mu.Lock()
					blocks = append(blocks, [2]int{lo, hi})
					mu.Unlock()
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("w=%d grain=%d n=%d: index %d visited %d times", w, grain, n, i, c)
					}
				}
			}
		}
	}
}

// TestForGrainOneMatchesFor locks in that grain <= 1 degenerates to exactly
// For's block layout, so ForGrain is a strict generalization.
func TestForGrainOneMatchesFor(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	SetWorkers(4)

	layout := func(run func(n int, body func(lo, hi int))) map[[2]int]bool {
		var mu sync.Mutex
		blocks := make(map[[2]int]bool)
		run(1000, func(lo, hi int) {
			mu.Lock()
			blocks[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return blocks
	}
	a := layout(For)
	b := layout(func(n int, body func(lo, hi int)) { ForGrain(n, 1, body) })
	if len(a) != len(b) {
		t.Fatalf("For produced %d blocks, ForGrain(1) %d", len(a), len(b))
	}
	for blk := range a {
		if !b[blk] {
			t.Fatalf("block %v in For but not ForGrain(1)", blk)
		}
	}
}

func TestForWorkGrainStaysSerialBelowThreshold(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	SetWorkers(8)

	calls := 0
	ForWorkGrain(1000, MinWork-1, 4, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 1000 {
			t.Fatalf("serial ForWorkGrain got block [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("ForWorkGrain below threshold ran body %d times, want 1", calls)
	}

	var covered atomic.Int64
	ForWorkGrain(1000, MinWork, 4, func(lo, hi int) {
		if lo%4 != 0 {
			t.Fatalf("ForWorkGrain block start %d not grain-aligned", lo)
		}
		covered.Add(int64(hi - lo))
	})
	if covered.Load() != 1000 {
		t.Fatalf("ForWorkGrain covered %d rows, want 1000", covered.Load())
	}
}

func TestForSerialWhenOneWorker(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	SetWorkers(1)

	calls := 0
	For(500, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 500 {
			t.Fatalf("serial For got block [%d,%d), want [0,500)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial For ran body %d times, want 1", calls)
	}
}

func TestPoolRunsEveryTask(t *testing.T) {
	p := NewPool(4)
	var sum atomic.Int64
	const n = 200
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			sum.Add(int64(i))
		})
	}
	wg.Wait()
	p.Close()
	if got, want := sum.Load(), int64(n*(n+1)/2); got != want {
		t.Fatalf("task sum = %d, want %d", got, want)
	}
}

func TestPoolSubmitAfterCloseRunsInline(t *testing.T) {
	p := NewPool(2)
	p.Close()
	ran := false
	p.Submit(func() { ran = true })
	if !ran {
		t.Fatal("Submit after Close did not run the task inline")
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("TrySubmit accepted a task after Close")
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Close()

	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 50; i++ {
		wg.Add(1)
		task := func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			<-gate
			cur.Add(-1)
		}
		// Only count tasks the pool actually accepted; overflow runs on the
		// caller and would block this loop on the gate, so skip those.
		if !p.TrySubmit(task) {
			wg.Done()
		}
	}
	close(gate)
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("pool ran %d tasks at once, bound is %d", got, workers)
	}
}

func TestGroupWaitsForAllTasks(t *testing.T) {
	g := NewGroup(4)
	var done atomic.Int64
	for i := 0; i < 100; i++ {
		g.Go(func() error {
			done.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait() = %v", err)
	}
	if done.Load() != 100 {
		t.Fatalf("only %d/100 tasks ran before Wait returned", done.Load())
	}
}

func TestGroupReturnsFirstError(t *testing.T) {
	g := NewGroup(2)
	want := errors.New("boom")
	for i := 0; i < 10; i++ {
		g.Go(func() error {
			if i == 4 {
				return want
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, want) {
		t.Fatalf("Wait() = %v, want %v", err, want)
	}
}

func TestGroupConcurrencyLimit(t *testing.T) {
	const limit = 2
	g := NewGroup(limit)
	var cur, peak atomic.Int64
	for i := 0; i < 20; i++ {
		g.Go(func() error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			defer cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > limit {
		t.Fatalf("group ran %d tasks at once, limit is %d", got, limit)
	}
}

// TestNestedForUnderGroupDoesNotDeadlock exercises the federated shape:
// a bounded fan-out whose tasks each run row-parallel loops. The pool's
// run-inline overflow policy must keep this deadlock-free.
func TestNestedForUnderGroupDoesNotDeadlock(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	SetWorkers(4)

	g := NewGroup(4)
	var total atomic.Int64
	for c := 0; c < 8; c++ {
		g.Go(func() error {
			For(512, func(lo, hi int) {
				total.Add(int64(hi - lo))
			})
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 8*512 {
		t.Fatalf("nested For covered %d rows, want %d", total.Load(), 8*512)
	}
}

// TestNestedForInsideForDoesNotDeadlock covers For bodies that themselves
// call For: the offloaded outer blocks run on pool workers, which then wait
// on their inner blocks. Without waiters help-draining the queue this
// deadlocks (all workers parked, inner blocks stuck in the queue).
func TestNestedForInsideForDoesNotDeadlock(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	SetWorkers(4)

	var total atomic.Int64
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		For(256, func(lo, hi int) {
			For(256, func(l2, h2 int) {
				total.Add(int64(h2 - l2))
			})
		})
	}()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("nested For deadlocked")
	}
	// 256/minBlock = 16 candidate blocks capped at 4 workers → 4 outer
	// blocks, each running a full inner For over 256 rows.
	if total.Load() != 4*256 {
		t.Fatalf("nested For covered %d rows, want %d", total.Load(), 4*256)
	}
}

func TestForWorkStaysSerialBelowThreshold(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	SetWorkers(8)

	calls := 0
	ForWork(1000, MinWork-1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 1000 {
			t.Fatalf("serial ForWork got block [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("ForWork below threshold ran body %d times, want 1", calls)
	}

	var covered atomic.Int64
	ForWork(1000, MinWork, func(lo, hi int) {
		covered.Add(int64(hi - lo))
	})
	if covered.Load() != 1000 {
		t.Fatalf("ForWork above threshold covered %d rows, want 1000", covered.Load())
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			orig := SetWorkers(w)
			defer SetWorkers(orig)
			x := make([]float64, 1<<16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				For(len(x), func(lo, hi int) {
					for j := lo; j < hi; j++ {
						x[j] += 1
					}
				})
			}
		})
	}
}
