package parallel

// Telemetry for the parallel substrate. Counters record where tasks actually
// ran (pool worker vs inline on the submitter); the gauges sample the shared
// pool's live queue depth and the process worker setting. Everything is
// observation-only: nothing here feeds scheduling decisions, and For's block
// layout stays a pure function of (n, grain, Workers()).

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// sharedPtr mirrors the shared pool for lock-free gauge sampling; it is set
// exactly once, inside sharedOnce.Do.
var sharedPtr atomic.Pointer[Pool]

var (
	// telPoolTasks / telInlineTasks count task executions by venue. Inline
	// runs (queue full or pool closed) are the back-pressure signal: a high
	// inline share means the pool is saturated.
	telPoolTasks = telemetry.Default().Counter(
		"adafgl_parallel_pool_tasks_total",
		"Tasks executed by pool worker goroutines.")
	telInlineTasks = telemetry.Default().Counter(
		"adafgl_parallel_inline_tasks_total",
		"Tasks executed inline on the submitting goroutine (pool saturated or closed).")
)

// The gauges sample live state at scrape time: the shared pool's queued-task
// backlog (0 until the pool first starts) and the SetWorkers setting.
func init() {
	telemetry.Default().GaugeFunc(
		"adafgl_parallel_queue_depth",
		"Queued tasks in the shared pool at scrape time.",
		func() float64 {
			if p := sharedPtr.Load(); p != nil {
				return float64(len(p.tasks))
			}
			return 0
		})
	telemetry.Default().GaugeFunc(
		"adafgl_parallel_workers",
		"Process-wide parallel worker count (SetWorkers).",
		func() float64 { return float64(Workers()) })
}
