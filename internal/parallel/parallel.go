// Package parallel is the shared parallel-execution substrate of the AdaFGL
// reproduction. It provides three primitives used across the hot layers of
// the system (sparse propagation, dense GEMM, per-client federated training):
//
//   - Pool: a bounded worker pool with non-blocking submission. Tasks that
//     cannot be enqueued run on the caller's goroutine, so composing Pool
//     with nested parallel code can never deadlock.
//   - For: a deterministic row-range parallel loop. [0, n) is split into
//     contiguous blocks, each processed by exactly one invocation of the
//     body, so any computation whose per-row output is independent of other
//     rows produces bit-identical results for every worker count.
//   - Group: an errgroup-style fan-out helper with a concurrency bound and
//     first-error capture, used for per-client federated work.
//
// The process-wide worker count defaults to GOMAXPROCS and is configurable
// via SetWorkers (wired to the -workers flag of cmd/adafgl-bench and the
// examples). Workers() == 1 makes every primitive run serially on the
// calling goroutine.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var workerCount atomic.Int64

func init() { workerCount.Store(int64(runtime.GOMAXPROCS(0))) }

// SetWorkers sets the process-wide default worker count used by For, Group
// and the shared pool. n <= 0 resets to GOMAXPROCS. It returns the previous
// value so tests can restore it.
func SetWorkers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(workerCount.Swap(int64(n)))
}

// Workers returns the current process-wide worker count.
func Workers() int { return int(workerCount.Load()) }

// Pool is a bounded worker pool: a fixed set of goroutines draining a task
// queue. Submission is non-blocking — TrySubmit refuses when the queue is
// full and Submit falls back to running the task on the caller's goroutine —
// which keeps nested parallel constructs deadlock-free by construction.
type Pool struct {
	tasks   chan func()
	workers sync.WaitGroup
	mu      sync.RWMutex // guards closed against concurrent submission
	closed  bool
}

// NewPool starts a pool with n workers (n <= 0 means GOMAXPROCS) and a task
// queue of 4n entries.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: make(chan func(), 4*n)}
	p.workers.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.workers.Done()
			for fn := range p.tasks {
				fn()
				telPoolTasks.Inc()
			}
		}()
	}
	return p
}

// TrySubmit enqueues fn if queue space is available, reporting whether it
// was accepted. It never blocks and never runs fn on the caller.
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// Submit runs fn via the pool, executing it on the calling goroutine when
// the queue is full or the pool is closed. fn always runs exactly once.
func (p *Pool) Submit(fn func()) {
	if !p.TrySubmit(fn) {
		fn()
		telInlineTasks.Inc()
	}
}

// runOne pops and runs one queued task, reporting whether it did. Waiters
// use it to help drain the queue, so a task blocked on subtasks can never
// starve them of workers.
func (p *Pool) runOne() bool {
	select {
	case fn, ok := <-p.tasks:
		if !ok {
			return false
		}
		fn()
		telPoolTasks.Inc()
		return true
	default:
		return false
	}
}

// Close stops accepting tasks, drains the queue and waits for the workers to
// exit. Pending tasks still run.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.workers.Wait()
}

// sharedPool lazily starts the process-wide pool backing For. Sized to the
// machine (GOMAXPROCS), not to Workers(): the per-call block count already
// honours Workers(), the pool only caps physical concurrency.
var (
	sharedOnce sync.Once
	shared     *Pool
)

func sharedPool() *Pool {
	sharedOnce.Do(func() {
		shared = NewPool(runtime.GOMAXPROCS(0))
		sharedPtr.Store(shared)
	})
	return shared
}

// minBlock is the smallest row-block For will hand to a worker; below this
// the scheduling overhead outweighs the work for the row-wise kernels in
// this repository.
const minBlock = 16

// For executes body over contiguous blocks covering [0, n) exactly once.
// The block layout depends only on n and Workers(), never on scheduling, so
// computations whose rows are mutually independent are bit-reproducible for
// any worker count. The first block runs on the calling goroutine; the rest
// are offloaded to the shared pool (or run inline when it is saturated).
// While waiting for offloaded blocks the caller helps drain the pool queue,
// so nested For — including from inside a pool worker — cannot deadlock.
// With Workers() <= 1 or n < 2*minBlock the body runs serially as
// body(0, n).
func For(n int, body func(lo, hi int)) { forBlocks(n, 1, body) }

// ForGrain is For with a block-alignment grain: every block boundary except
// the final n is a multiple of grain. Tiled kernels that process rows in
// grain-sized groups (e.g. the blocked GEMM micro-kernel) therefore see at
// most one partial group per call instead of one per worker block. The
// layout is a pure function of (n, grain, Workers()), preserving For's
// bit-reproducibility contract; grain <= 1 is exactly For.
func ForGrain(n, grain int, body func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	forBlocks(n, grain, body)
}

// forBlocks implements For/ForGrain: split [0, n) into up to Workers()
// contiguous blocks of at least minBlock rows, each starting on a multiple
// of grain.
func forBlocks(n, grain int, body func(lo, hi int)) {
	w := Workers()
	if n <= 0 {
		return
	}
	nb := n / minBlock
	if nb > w {
		nb = w
	}
	units := (n + grain - 1) / grain
	if nb > units {
		nb = units
	}
	if w <= 1 || nb < 2 {
		body(0, n)
		return
	}
	// Even split (in grain units) with the remainder spread over the first
	// blocks keeps the layout a pure function of (n, grain, nb).
	size, rem := units/nb, units%nb
	bounds := func(b int) (int, int) {
		ulo := b*size + min(b, rem)
		uhi := ulo + size
		if b < rem {
			uhi++
		}
		lo, hi := ulo*grain, uhi*grain
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	var pending atomic.Int64
	pending.Store(int64(nb - 1))
	done := make(chan struct{})
	pool := sharedPool()
	for b := 1; b < nb; b++ {
		lo, hi := bounds(b)
		pool.Submit(func() {
			body(lo, hi)
			if pending.Add(-1) == 0 {
				close(done)
			}
		})
	}
	lo, hi := bounds(0)
	body(lo, hi)
	// Help-drain until our blocks finish: every waiter doing this guarantees
	// queued tasks always have a goroutine to run on, even when all pool
	// workers are themselves blocked waiting on nested submissions.
	for {
		select {
		case <-done:
			return
		default:
		}
		if !pool.runOne() {
			// Queue empty: our remaining blocks are running on other
			// goroutines; block until the last one signals.
			<-done
			return
		}
	}
}

// MinWork is the default approximate per-call work (flops or elements
// touched) below which ForWork runs serially; smaller kernels are dominated
// by scheduling overhead.
const MinWork = 1 << 14

// ForWork is For with a work gate: callers pass an estimate of the total
// work and the loop stays serial below MinWork. Shared by the sparse and
// dense kernel layers so their parallelization thresholds cannot drift
// apart.
func ForWork(n, work int, body func(lo, hi int)) {
	if work < MinWork {
		body(0, n)
		return
	}
	For(n, body)
}

// ForWorkGrain is ForGrain with the same work gate as ForWork.
func ForWorkGrain(n, work, grain int, body func(lo, hi int)) {
	if work < MinWork {
		body(0, n)
		return
	}
	ForGrain(n, grain, body)
}

// Group is an errgroup-style fan-out: Go launches tasks bounded by a
// concurrency limit, Wait blocks until all complete and returns the first
// error. The zero value is not usable; use NewGroup.
type Group struct {
	sem  chan struct{}
	wg   sync.WaitGroup
	once sync.Once
	err  error
}

// NewGroup returns a Group running at most limit tasks concurrently
// (limit <= 0 means Workers()).
func NewGroup(limit int) *Group {
	if limit <= 0 {
		limit = Workers()
	}
	return &Group{sem: make(chan struct{}, limit)}
}

// Go schedules fn, blocking the caller while the group is at its
// concurrency limit (errgroup.SetLimit semantics). Do not call Go from
// inside a task of the same group.
func (g *Group) Go(fn func() error) {
	g.sem <- struct{}{}
	g.wg.Add(1)
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		if err := fn(); err != nil {
			g.once.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every task launched with Go has finished and returns
// the first error encountered (nil if none).
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}
