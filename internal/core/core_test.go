package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/partition"
)

// blockGraph builds a homophilous (or heterophilous) two-class graph.
func blockGraph(n int, homophilous bool, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 2
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			same := labels[i] == labels[j]
			p := 0.04
			if same == homophilous {
				p = 0.25
			}
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	x := matrix.New(n, 6)
	for i := 0; i < n; i++ {
		for j := 0; j < 6; j++ {
			x.Set(i, j, rng.NormFloat64()+float64(labels[i])*1.2)
		}
	}
	g := graph.New(n, edges, x, labels, 2)
	g.SplitTransductive(0.4, 0.2, rng)
	return g
}

func TestNonParamLPPropagatesOnHomophilousGraph(t *testing.T) {
	g := blockGraph(40, true, 1)
	y := NonParamLP(g, g.TrainMask, 0.5, 5)
	pred := matrix.ArgmaxRows(y)
	correct, total := 0, 0
	for v := 0; v < g.N; v++ {
		if g.TrainMask[v] {
			continue
		}
		total++
		if pred[v] == g.Labels[v] {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.7 {
		t.Fatalf("LP accuracy %.3f < 0.7 on homophilous graph", acc)
	}
}

func TestNonParamLPRowsAreDistributions(t *testing.T) {
	g := blockGraph(30, true, 2)
	y := NonParamLP(g, g.TrainMask, 0.5, 5)
	for i := 0; i < y.Rows; i++ {
		for _, v := range y.Row(i) {
			if v < -1e-9 {
				t.Fatalf("negative mass %v", v)
			}
		}
	}
}

func TestHCSHighOnHomophilyLowOnHeterophily(t *testing.T) {
	homo := blockGraph(60, true, 3)
	hetero := blockGraph(60, false, 3)
	rng := rand.New(rand.NewSource(4))
	hHomo := HCS(homo, 0.5, 5, 0.5, rng)
	hHetero := HCS(hetero, 0.5, 5, 0.5, rng)
	if hHomo <= hHetero {
		t.Fatalf("HCS(homo)=%.3f must exceed HCS(hetero)=%.3f", hHomo, hHetero)
	}
	if hHomo < 0.6 {
		t.Fatalf("HCS on homophilous graph = %.3f, want >= 0.6", hHomo)
	}
	if hHomo > 1 || hHetero < 0 {
		t.Fatal("HCS outside [0,1]")
	}
}

func TestHCSTracksSubgraphHomophily(t *testing.T) {
	// Fig. 7's claim: HCS ≈ subgraph homophily across a range of mixes.
	rng := rand.New(rand.NewSource(5))
	for _, target := range []bool{true, false} {
		g := blockGraph(80, target, 6)
		h := HCS(g, 0.5, 5, 0.5, rng)
		eh := g.EdgeHomophily()
		// Loose tracking band: same side of 0.5.
		if (h >= 0.5) != (eh >= 0.5) {
			t.Errorf("HCS %.3f and homophily %.3f on opposite sides of 0.5", h, eh)
		}
	}
}

func TestHCSFewTrainingNodes(t *testing.T) {
	g := blockGraph(10, true, 7)
	for i := range g.TrainMask {
		g.TrainMask[i] = false
	}
	g.TrainMask[0] = true
	rng := rand.New(rand.NewSource(8))
	if h := HCS(g, 0.5, 5, 0.5, rng); h != 0.5 {
		t.Fatalf("HCS with 1 train node = %v, want fallback 0.5", h)
	}
}

func TestOptimizedPropagationProperties(t *testing.T) {
	g := blockGraph(25, true, 9)
	phat := matrix.SoftmaxRows(g.X) // any row-stochastic stand-in
	pt := OptimizedPropagation(g, phat, 0.7)
	if pt.Rows != g.N || pt.Cols != g.N {
		t.Fatalf("P̃ shape %dx%d", pt.Rows, pt.Cols)
	}
	for i := 0; i < g.N; i++ {
		if pt.At(i, i) != 0 {
			t.Fatalf("diagonal not removed at %d", i)
		}
	}
	for _, v := range pt.Data {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("invalid entry %v", v)
		}
	}
}

func TestSoftmaxBackwardMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	z := matrix.New(3, 4)
	matrix.RandomNormal(z, 0, 1, rng)
	dS := matrix.New(3, 4)
	matrix.RandomNormal(dS, 0, 1, rng)
	s := matrix.SoftmaxRows(z)
	got := softmaxBackward(s, dS)
	// numeric: L = <softmax(z), dS>.
	loss := func() float64 {
		sm := matrix.SoftmaxRows(z)
		var l float64
		for i, v := range sm.Data {
			l += v * dS.Data[i]
		}
		return l
	}
	const h = 1e-6
	for i := range z.Data {
		orig := z.Data[i]
		z.Data[i] = orig + h
		lp := loss()
		z.Data[i] = orig - h
		lm := loss()
		z.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-got.Data[i]) > 1e-5 {
			t.Fatalf("softmaxBackward[%d]: %v vs %v", i, got.Data[i], num)
		}
	}
}

func TestProbCrossEntropyGrad(t *testing.T) {
	probs, _ := matrix.FromRows([][]float64{{0.9, 0.1}, {0.2, 0.8}})
	labels := []int{0, 0}
	mask := []bool{true, true}
	loss, grad := probCrossEntropyGrad(probs, labels, mask)
	want := -(math.Log(0.9) + math.Log(0.2)) / 2
	if math.Abs(loss-want) > 1e-12 {
		t.Fatalf("loss = %v, want %v", loss, want)
	}
	if math.Abs(grad.At(0, 0)-(-1/0.9/2)) > 1e-12 {
		t.Fatalf("grad = %v", grad.At(0, 0))
	}
	if grad.At(0, 1) != 0 {
		t.Fatal("off-label gradient must be 0")
	}
}

func TestSplitSigns(t *testing.T) {
	p, _ := matrix.FromRows([][]float64{{1, -2}, {0, 3}})
	pos, neg := splitSigns(p)
	if pos.At(0, 0) != 1 || pos.At(0, 1) != 0 || neg.At(0, 1) != 2 || neg.At(1, 1) != 0 {
		t.Fatalf("splitSigns wrong: pos=%v neg=%v", pos, neg)
	}
}

func adaSubgraphs(t testing.TB, name string, k int, nonIID bool, seed int64) []*graph.Graph {
	t.Helper()
	s, err := datasets.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g := datasets.GenerateScaled(s, 0.25, seed)
	if nonIID {
		cd := partition.StructureNonIIDSplit(g, k, partition.DefaultNonIID(), rand.New(rand.NewSource(seed)))
		return cd.Subgraphs
	}
	cd := partition.CommunitySplit(g, k, rand.New(rand.NewSource(seed)))
	return cd.Subgraphs
}

func quickCfg() models.Config {
	cfg := models.DefaultConfig()
	cfg.Hidden = 16
	cfg.Dropout = 0
	return cfg
}

func quickFed() federated.Options {
	o := federated.DefaultOptions()
	o.Rounds = 10
	o.LocalEpochs = 2
	return o
}

func quickAda() Options {
	o := DefaultOptions()
	o.Epochs = 30
	o.K = 2
	return o
}

func TestAdaFGLRunsOnCommunitySplit(t *testing.T) {
	subs := adaSubgraphs(t, "Cora", 4, false, 1)
	a := &AdaFGL{Opt: quickAda()}
	res, err := a.Run(subs, quickCfg(), quickFed())
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAcc < 0.5 {
		t.Fatalf("AdaFGL accuracy %.3f < 0.5 on homophilous community split", res.TestAcc)
	}
	if len(a.Reports) != 4 {
		t.Fatalf("reports = %d, want 4", len(a.Reports))
	}
	for i, r := range a.Reports {
		if r.HCS < 0 || r.HCS > 1 {
			t.Fatalf("client %d HCS %v outside [0,1]", i, r.HCS)
		}
	}
}

func TestAdaFGLBeatsFedGCNOnStructureNonIID(t *testing.T) {
	// The headline claim: under structure Non-iid, AdaFGL outperforms plain
	// federated GCN because personalized propagation adapts per client.
	subs := adaSubgraphs(t, "Cora", 5, true, 2)
	cfg := quickCfg()
	fo := quickFed()
	fo.Rounds = 15

	a := &AdaFGL{Opt: quickAda()}
	resAda, err := a.Run(subs, cfg, fo)
	if err != nil {
		t.Fatal(err)
	}
	gcnClients := federated.BuildClients(subs, models.Registry["GCN"], cfg, fo.Seed)
	srv := federated.NewServer(gcnClients, fo.Seed+1)
	foGCN := fo
	foGCN.LocalCorrection = 10
	resGCN, err := srv.Run(foGCN)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("AdaFGL %.3f vs FedGCN %.3f", resAda.TestAcc, resGCN.TestAcc)
	if resAda.TestAcc < resGCN.TestAcc-0.02 {
		t.Errorf("AdaFGL %.3f below FedGCN %.3f under structure Non-iid", resAda.TestAcc, resGCN.TestAcc)
	}
}

func TestAdaFGLHCSReflectsInjectedTopology(t *testing.T) {
	subs := adaSubgraphs(t, "Cora", 6, true, 3)
	a := &AdaFGL{Opt: quickAda()}
	if _, err := a.Run(subs, quickCfg(), quickFed()); err != nil {
		t.Fatal(err)
	}
	// Fig. 7: HCS should correlate with true subgraph homophily across
	// clients. Check rank agreement between extremes.
	var loH, hiH = -1, -1
	for i := range a.Reports {
		if loH == -1 || a.Reports[i].EdgeHomophily < a.Reports[loH].EdgeHomophily {
			loH = i
		}
		if hiH == -1 || a.Reports[i].EdgeHomophily > a.Reports[hiH].EdgeHomophily {
			hiH = i
		}
	}
	if a.Reports[hiH].HCS < a.Reports[loH].HCS-0.1 {
		t.Errorf("most homophilous client has HCS %.3f < least homophilous %.3f",
			a.Reports[hiH].HCS, a.Reports[loH].HCS)
	}
}

func TestAdaFGLAblationsDegrade(t *testing.T) {
	// Tables VI/VII shape: every ablation should cost accuracy (allowing
	// noise slack on small synthetic graphs).
	subs := adaSubgraphs(t, "Cora", 4, true, 4)
	cfg := quickCfg()
	fo := quickFed()
	run := func(mod func(*Options)) float64 {
		o := quickAda()
		mod(&o)
		a := &AdaFGL{Opt: o}
		res, err := a.Run(subs, cfg, fo)
		if err != nil {
			t.Fatal(err)
		}
		return res.TestAcc
	}
	full := run(func(o *Options) {})
	ablations := map[string]func(*Options){
		"w/o K.P.": func(o *Options) { o.DisableKP = true },
		"w/o T.F.": func(o *Options) { o.DisableTF = true },
		"w/o L.M.": func(o *Options) { o.DisableLM = true },
		"w/o L.T.": func(o *Options) { o.DisableLT = true },
		"w/o HCS":  func(o *Options) { o.DisableHCS = true },
	}
	for name, mod := range ablations {
		acc := run(mod)
		t.Logf("%s: %.3f (full %.3f)", name, acc, full)
		if acc > full+0.08 {
			t.Errorf("%s unexpectedly improved accuracy by a wide margin: %.3f > %.3f", name, acc, full)
		}
	}
}

func TestAdaFGLEmptyInput(t *testing.T) {
	a := New()
	if _, err := a.Run(nil, quickCfg(), quickFed()); err == nil {
		t.Fatal("empty subgraphs must error")
	}
}

func TestAdaFGLDeterministic(t *testing.T) {
	run := func() float64 {
		subs := adaSubgraphs(t, "Cora", 3, true, 5)
		a := &AdaFGL{Opt: quickAda()}
		res, err := a.Run(subs, quickCfg(), quickFed())
		if err != nil {
			t.Fatal(err)
		}
		return res.TestAcc
	}
	if a, b := run(), run(); math.Abs(a-b) > 1e-12 {
		t.Fatalf("non-deterministic: %.6f vs %.6f", a, b)
	}
}

func BenchmarkAdaFGLPersonalizedEpoch(b *testing.B) {
	g := blockGraph(200, true, 1)
	cfg := quickCfg()
	rng := rand.New(rand.NewSource(2))
	extractor := models.NewGCN(g, cfg, rng)
	p := newPersonal(g, extractor, cfg, DefaultOptions(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.train(1)
	}
}
