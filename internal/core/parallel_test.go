package core

import (
	"testing"

	"repro/internal/federated"
	"repro/internal/graph"
	"repro/internal/parallel"
)

func adaRunWithWorkers(t *testing.T, workers int, inductive bool) (*federated.Result, []ClientReport) {
	t.Helper()
	orig := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(orig)

	subs := adaSubgraphs(t, "Cora", 4, false, 31)
	if inductive {
		for i, g := range subs {
			subs[i] = graph.MakeInductive(g)
		}
	}
	cfg := quickCfg()
	cfg.Dropout = 0.5 // exercise the per-client RNG isolation, not just pure math
	fo := quickFed()
	fo.Rounds = 4
	a := &AdaFGL{Opt: quickAda()}
	a.Opt.Epochs = 8
	res, err := a.Run(subs, cfg, fo)
	if err != nil {
		t.Fatal(err)
	}
	return res, a.Reports
}

// TestAdaFGLBitIdenticalAcrossWorkerCounts is the end-to-end determinism
// contract of the whole pipeline: Step-1 federated extraction plus the
// concurrent Step-2 personalized training must reproduce the serial run
// exactly — same weighted accuracy, per-client accuracies and per-client
// HCS diagnostics — because every client is seeded from (seed, client id)
// alone and reductions happen in client order.
func TestAdaFGLBitIdenticalAcrossWorkerCounts(t *testing.T) {
	serialRes, serialRep := adaRunWithWorkers(t, 1, false)
	for _, w := range []int{2, 8} {
		parRes, parRep := adaRunWithWorkers(t, w, false)
		if parRes.TestAcc != serialRes.TestAcc {
			t.Fatalf("workers=%d: TestAcc %v, serial %v", w, parRes.TestAcc, serialRes.TestAcc)
		}
		for ci := range parRes.PerClient {
			if parRes.PerClient[ci] != serialRes.PerClient[ci] {
				t.Fatalf("workers=%d: client %d acc %v, serial %v",
					w, ci, parRes.PerClient[ci], serialRes.PerClient[ci])
			}
		}
		for r := range parRes.RoundAcc {
			if parRes.RoundAcc[r] != serialRes.RoundAcc[r] {
				t.Fatalf("workers=%d: round %d acc %v, serial %v",
					w, r, parRes.RoundAcc[r], serialRes.RoundAcc[r])
			}
		}
		for ci := range parRep {
			if parRep[ci].HCS != serialRep[ci].HCS {
				t.Fatalf("workers=%d: client %d HCS %v, serial %v",
					w, ci, parRep[ci].HCS, serialRep[ci].HCS)
			}
			if parRep[ci].TestAccuracy != serialRep[ci].TestAccuracy {
				t.Fatalf("workers=%d: client %d report acc %v, serial %v",
					w, ci, parRep[ci].TestAccuracy, serialRep[ci].TestAccuracy)
			}
		}
	}
}

// TestAdaFGLInductiveBitIdenticalAcrossWorkerCounts covers the inductive
// protocol, whose Step-2 rebuilds the pipeline on each client's evaluation
// graph inside the fan-out.
func TestAdaFGLInductiveBitIdenticalAcrossWorkerCounts(t *testing.T) {
	serialRes, _ := adaRunWithWorkers(t, 1, true)
	parRes, _ := adaRunWithWorkers(t, 8, true)
	if parRes.TestAcc != serialRes.TestAcc {
		t.Fatalf("inductive: TestAcc %v, serial %v", parRes.TestAcc, serialRes.TestAcc)
	}
	for ci := range parRes.PerClient {
		if parRes.PerClient[ci] != serialRes.PerClient[ci] {
			t.Fatalf("inductive: client %d acc %v, serial %v",
				ci, parRes.PerClient[ci], serialRes.PerClient[ci])
		}
	}
}
