// Package core implements AdaFGL, the paper's contribution: a decoupled
// two-step personalized federated paradigm for node classification under
// topology heterogeneity. Step 1 obtains a federated knowledge extractor by
// standard collaborative training and uses it to optimise each client's
// probability propagation matrix (Eq. 5–6). Step 2 runs homophilous and
// heterophilous personalized propagation (Eq. 7–13) combined adaptively by
// the Homophily Confidence Score (Definition 2, Eq. 16–17).
package core

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// NonParamLP runs the K-step non-parametric label propagation of Eq. (15):
//
//	Ŷ^(k) = κ·Ŷ⁰ + (1-κ)·D̃^{-1/2}ÃD̃^{-1/2}·Ŷ^(k-1)
//
// Labeled nodes (labelMask true) start one-hot; unlabeled nodes start
// uniform. Returns the soft label matrix after K steps.
func NonParamLP(g *graph.Graph, labelMask []bool, kappa float64, steps int) *matrix.Dense {
	n, c := g.N, g.Classes
	y0 := matrix.New(n, c)
	uniform := 1 / float64(c)
	for i := 0; i < n; i++ {
		if labelMask[i] {
			y0.Set(i, g.Labels[i], 1)
		} else {
			row := y0.Row(i)
			for j := range row {
				row[j] = uniform
			}
		}
	}
	// The graph's propagation plan is shared with every model bound to g, so
	// the K LP steps (and each HCS call) reuse one blocked Ã layout.
	adj := g.NormAdjPlan(sparse.NormSym)
	y := y0.Clone()
	for k := 0; k < steps; k++ {
		prop := adj.MulDense(y)
		next := matrix.Scale(kappa, y0)
		matrix.AddScaled(next, 1-kappa, prop)
		y = next
	}
	return y
}

// HCS computes the Homophily Confidence Score of Definition 2: mask a
// fraction of the training labels, propagate the remainder with Non-param
// LP, and score the masked nodes. HCS ≈ 1 on homophilous subgraphs (labels
// propagate correctly along edges) and ≈ chance under heterophily.
// Falls back to 0.5 (uninformative) when the subgraph has too few training
// nodes to mask.
func HCS(g *graph.Graph, kappa float64, steps int, maskProb float64, rng *rand.Rand) float64 {
	train := graph.MaskIdx(g.TrainMask)
	if len(train) < 2 {
		return 0.5
	}
	masked := make([]bool, g.N)
	remaining := make([]bool, g.N)
	nMasked := 0
	for _, v := range train {
		if rng.Float64() < maskProb {
			masked[v] = true
			nMasked++
		} else {
			remaining[v] = true
		}
	}
	if nMasked == 0 || nMasked == len(train) {
		// Degenerate draw: deterministically mask half.
		nMasked = 0
		for i, v := range train {
			masked[v] = i%2 == 0
			remaining[v] = !masked[v]
			if masked[v] {
				nMasked++
			}
		}
	}
	y := NonParamLP(g, remaining, kappa, steps)
	pred := matrix.ArgmaxRows(y)
	correct := 0
	for v := 0; v < g.N; v++ {
		if masked[v] && pred[v] == g.Labels[v] {
			correct++
		}
	}
	return float64(correct) / float64(nMasked)
}
