package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/federated"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// Options configures the AdaFGL pipeline; defaults follow Sec. IV-A.
type Options struct {
	// Alpha is the topology-optimisation coefficient of Eq. (5).
	Alpha float64
	// Beta is the propagation-rule residual of Eq. (11).
	Beta float64
	// K is the federated knowledge-guided smoothing depth of Eq. (7).
	K int
	// LPSteps and Kappa parameterise Non-param LP (Eq. 15; paper: K=5, κ=0.5).
	LPSteps int
	Kappa   float64
	// MaskProb is the HCS masking probability (Definition 2; paper: 0.5).
	MaskProb float64
	// Epochs is the number of Step-2 personalized training epochs per client.
	Epochs int
	// ExtractorArch selects the Step-1 knowledge extractor architecture
	// (any models.Registry name; the paper uses GCN but frames Step 1 as
	// pluggable — "AdaFGL can benefit from advancements in FL optimization
	// and GNNs to obtain a more powerful federated knowledge extractor").
	ExtractorArch string

	// Ablation switches (Tables VI/VII).
	DisableKP  bool // knowledge preserving loss (Homo.)
	DisableTF  bool // topology-independent feature embedding (Hete.)
	DisableLM  bool // learnable message-passing embedding (Hete.)
	DisableLT  bool // local topology optimisation (use raw Ã instead of P̃)
	DisableHCS bool // adaptive combination (use fixed 0.5)
}

// DefaultOptions mirrors the paper's settings.
func DefaultOptions() Options {
	return Options{Alpha: 0.7, Beta: 0.7, K: 3, LPSteps: 5, Kappa: 0.5, MaskProb: 0.5, Epochs: 60, ExtractorArch: "GCN"}
}

// ClientReport captures the per-client diagnostics used by Figs. 2(d) and 7.
type ClientReport struct {
	HCS           float64
	EdgeHomophily float64
	TestAccuracy  float64
}

// AdaFGL is the two-step paradigm (implements the fgl.Method contract).
type AdaFGL struct {
	Opt Options
	// Reports is filled by Run with per-client diagnostics of the last call.
	Reports []ClientReport
}

// New returns AdaFGL with default options.
func New() *AdaFGL { return &AdaFGL{Opt: DefaultOptions()} }

// Name implements the method contract.
func (a *AdaFGL) Name() string { return "AdaFGL" }

// Run executes both steps: federated knowledge extraction (Alg. 1) and
// adaptive personalized propagation (Alg. 2).
func (a *AdaFGL) Run(subgraphs []*graph.Graph, cfg models.Config, fedOpt federated.Options) (*federated.Result, error) {
	if len(subgraphs) == 0 {
		return nil, fmt.Errorf("core: no subgraphs")
	}
	// ---- Step 1: federated knowledge extractor (FedAvg over the chosen
	// architecture; GCN by default). ----
	arch := a.Opt.ExtractorArch
	if arch == "" {
		arch = "GCN"
	}
	build, err := models.BuilderFor(arch)
	if err != nil {
		return nil, err
	}
	clients := federated.BuildClients(subgraphs, build, cfg, fedOpt.Seed)
	// federated.Run picks the synchronous reference or the asynchronous
	// staleness-aware engine per fedOpt.Async.
	fedRes, err := federated.Run(clients, fedOpt.Seed+1, fedOpt)
	if err != nil {
		return nil, err
	}

	res := &federated.Result{
		RoundAcc:      fedRes.RoundAcc,
		GlobalParams:  fedRes.GlobalParams,
		BytesPerRound: fedRes.BytesPerRound,
		RoundTime:     fedRes.RoundTime,
		MeanStaleness: fedRes.MeanStaleness,
	}
	a.Reports = a.Reports[:0]

	// ---- Step 2: per-client personalized training. ----
	// Each client's Step-2 pipeline is independent and seeded from
	// (fedOpt.Seed, ci) alone, so the fan-out below is bit-reproducible for
	// any worker count; results land in per-client slots and are reduced
	// sequentially in client order.
	type step2 struct {
		acc, w, hcs float64
	}
	outs := make([]step2, len(clients))
	grp := parallel.NewGroup(parallel.Workers())
	for ci, c := range clients {
		grp.Go(func() error {
			rng := rand.New(rand.NewSource(fedOpt.Seed*7919 + int64(ci)))
			if err := nn.Unflatten(c.Model, fedRes.GlobalParams); err != nil {
				return err
			}
			p := newPersonal(c.Graph, c.Model, cfg, a.Opt, rng)
			p.train(a.Opt.Epochs)

			o := step2{hcs: p.hcs}
			if c.Graph.Eval != nil {
				// Inductive protocol: rebuild the Step-1/Step-2 pipeline on the
				// full evaluation graph and transplant the trained parameters.
				evalExtractor := build(c.Graph.Eval, cfg, rand.New(rand.NewSource(fedOpt.Seed*7919+int64(ci)+500)))
				if err := nn.Unflatten(evalExtractor, fedRes.GlobalParams); err != nil {
					return err
				}
				pe := newPersonal(c.Graph.Eval, evalExtractor, cfg, a.Opt, rand.New(rand.NewSource(fedOpt.Seed*7919+int64(ci)+900)))
				if err := nn.Unflatten(pe.modules(), nn.Flatten(p.modules())); err != nil {
					return err
				}
				pe.hcs = p.hcs // the observed topology decided the combination
				o.acc = pe.testAccuracy()
				o.w = float64(graph.CountMask(c.Graph.Eval.TestMask))
			} else {
				o.acc = p.testAccuracy()
				o.w = float64(graph.CountMask(c.Graph.TestMask))
			}
			outs[ci] = o
			return nil
		})
	}
	if err := grp.Wait(); err != nil {
		return nil, err
	}

	var weighted, total float64
	for ci, c := range clients {
		o := outs[ci]
		res.PerClient = append(res.PerClient, o.acc)
		weighted += o.acc * o.w
		total += o.w
		a.Reports = append(a.Reports, ClientReport{
			HCS:           o.hcs,
			EdgeHomophily: c.Graph.EdgeHomophily(),
			TestAccuracy:  o.acc,
		})
	}
	if total > 0 {
		res.TestAcc = weighted / total
	}
	return res, nil
}

// personal holds one client's Step-2 state.
type personal struct {
	g   *graph.Graph
	opt Options

	// Step-1 artifacts.
	extLogits *matrix.Dense // knowledge extractor logits Ẑ
	phat      *matrix.Dense // P̂ = softmax(Ẑ)
	ptilde    *matrix.Dense // optimized propagation matrix P̃ (Eq. 5–6)
	propX     *matrix.Dense // [X̃(1) || … || X̃(K)] (Eq. 7)

	// Trainable modules.
	knowledge *nn.MLP // MessageUpdater Θ_knowledge → H̃ logits
	feature   *nn.MLP // Θ_feature (Eq. 10) → Hf logits
	message   *nn.MLP // Θ_message (Eq. 11) → Hm' logits

	hcs float64

	// forward caches
	hTilde, hf, hmPrime, hm1 *matrix.Dense
	sHT, sHF, sHM            *matrix.Dense
	pPos, pPosT, pNegT, pNeg *matrix.Dense
	yhat                     *matrix.Dense
	optimizer                nn.Optimizer
}

func newPersonal(g *graph.Graph, extractor models.Model, cfg models.Config, opt Options, rng *rand.Rand) *personal {
	p := &personal{g: g, opt: opt}

	// Knowledge extractor outputs on the local subgraph.
	p.extLogits = extractor.Logits(false)
	p.phat = matrix.SoftmaxRows(p.extLogits)

	// Eq. (5)–(6): optimized probability propagation matrix, then the
	// Eq. (7) K-step federated knowledge-guided smoothing. The hop-0
	// features are included in the concatenation so the MessageUpdater can
	// weigh raw against smoothed evidence (the ego term of Eq. 7's X^(0)).
	// With the learned blend, P̃ is dense and the K steps ride the blocked
	// GEMM engine; under the LT ablation P̃ is the sparse Ã, so the steps
	// reuse the graph's shared blocked-SpMM plan instead of densifying the
	// product.
	var hops []*matrix.Dense
	if opt.DisableLT {
		plan := g.NormAdjPlan(sparse.NormSym)
		p.ptilde = plan.Matrix().Dense()
		hops = models.PropagateK(plan, g.X, opt.K)
	} else {
		p.ptilde = OptimizedPropagation(g, p.phat, opt.Alpha)
		hops = make([]*matrix.Dense, 0, opt.K+1)
		hops = append(hops, g.X)
		cur := g.X
		for k := 0; k < opt.K; k++ {
			cur = matrix.Mul(p.ptilde, cur)
			hops = append(hops, cur)
		}
	}
	p.propX = matrix.ConcatCols(hops...)

	hidden := cfg.Hidden
	p.knowledge = nn.NewMLP("ada.knowledge", []int{p.propX.Cols, hidden, g.Classes}, 0, rng)
	p.feature = nn.NewMLP("ada.feature", []int{g.X.Cols, hidden, g.Classes}, 0, rng)
	p.message = nn.NewMLP("ada.message", []int{g.Classes, hidden, g.Classes}, 0, rng)

	// HCS (Definition 2) drives the adaptive combination.
	if opt.DisableHCS {
		p.hcs = 0.5
	} else {
		p.hcs = HCS(g, opt.Kappa, opt.LPSteps, opt.MaskProb, rng)
	}

	p.optimizer = cfg.NewOptimizer()
	return p
}

// OptimizedPropagation computes P̃ of Eq. (5)–(6): blend the local adjacency
// with the knowledge extractor's prediction-similarity matrix, zero the
// diagonal and degree-normalise symmetrically.
func OptimizedPropagation(g *graph.Graph, phat *matrix.Dense, alpha float64) *matrix.Dense {
	n := g.N
	// The α·Ã term reuses the graph's cached normalised adjacency (shared
	// with the Step-1 extractor and the LP/HCS propagation plans).
	adense := g.NormAdjPlan(sparse.NormSym).Matrix().Dense()
	// P = α·A + (1-α)·P̂P̂ᵀ.
	pp := matrix.MulT(phat, phat)
	p := matrix.Scale(alpha, adense)
	matrix.AddScaled(p, 1-alpha, pp)
	// Eq. (6): remove self-aggregation and scale by the induced degrees.
	for i := 0; i < n; i++ {
		p.Set(i, i, 0)
	}
	deg := matrix.RowSums(p)
	for i := 0; i < n; i++ {
		row := p.Row(i)
		for j := range row {
			d := deg[i] * deg[j]
			if d > 0 {
				row[j] /= sqrtf(d)
			}
		}
	}
	return p
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// modules returns the trainable parameter group for the optimiser.
func (p *personal) modules() nn.ParamGroup {
	return nn.ParamGroup{p.knowledge, p.feature, p.message}
}

// forward computes Ŷ of Eq. (17) and caches intermediates for backward.
func (p *personal) forward() *matrix.Dense {
	// Homophilous branch: H̃ from knowledge-guided smoothing.
	p.hTilde = p.knowledge.Forward(p.propX)
	p.sHT = matrix.SoftmaxRows(p.hTilde)

	// Heterophilous branch.
	if !p.opt.DisableTF {
		p.hf = p.feature.Forward(p.g.X)
		p.sHF = matrix.SoftmaxRows(p.hf)
	}
	if !p.opt.DisableLM {
		// Eq. (11)–(12) with one learnable message layer. The evolved P̃^(1)
		// and its signed parts are recomputed from the current (detached)
		// message embeddings each forward pass.
		p.hmPrime = p.message.Forward(p.hTilde)
		gram := matrix.MulT(p.hmPrime, p.hmPrime)
		matrix.NormalizeRowsL1(gram)
		pEvo := matrix.Scale(p.opt.Beta, p.ptilde)
		matrix.AddScaled(pEvo, 1-p.opt.Beta, gram)
		p.pPos, p.pNeg = splitSigns(pEvo)
		p.pPosT = matrix.Transpose(p.pPos)
		p.pNegT = matrix.Transpose(p.pNeg)
		// H_m^(1) = H' + P⁺H' − P⁻H'.
		p.hm1 = matrix.Add(p.hmPrime, matrix.Sub(matrix.Mul(p.pPos, p.hmPrime), matrix.Mul(p.pNeg, p.hmPrime)))
		p.sHM = matrix.SoftmaxRows(p.hm1)
	}

	// Eq. (9): Ŷ_ho = (softmax(H̃) + P̂)/2.
	yho := matrix.Scale(0.5, p.sHT)
	matrix.AddScaled(yho, 0.5, p.phat)

	// Eq. (13): Ŷ_he = mean of available heterophilous heads.
	heads := []*matrix.Dense{p.sHT}
	if !p.opt.DisableTF {
		heads = append(heads, p.sHF)
	}
	if !p.opt.DisableLM {
		heads = append(heads, p.sHM)
	}
	yhe := matrix.New(p.g.N, p.g.Classes)
	for _, h := range heads {
		matrix.AddScaled(yhe, 1/float64(len(heads)), h)
	}

	// Eq. (17).
	p.yhat = matrix.Scale(p.hcs, yho)
	matrix.AddScaled(p.yhat, 1-p.hcs, yhe)
	return p.yhat
}

// splitSigns returns ReLU(P) and ReLU(−P) (PoSign / NeSign of Eq. 11).
func splitSigns(p *matrix.Dense) (pos, neg *matrix.Dense) {
	pos = matrix.New(p.Rows, p.Cols)
	neg = matrix.New(p.Rows, p.Cols)
	for i, v := range p.Data {
		if v > 0 {
			pos.Data[i] = v
		} else {
			neg.Data[i] = -v
		}
	}
	return pos, neg
}

// train runs Step-2 epochs minimising Eq. (14): L = L_CE + L_knowledge.
func (p *personal) train(epochs int) {
	group := p.modules()
	for e := 0; e < epochs; e++ {
		nn.ZeroGrads(group)
		yhat := p.forward()

		// CE on the combined probability matrix.
		_, dY := probCrossEntropyGrad(yhat, p.g.Labels, p.g.TrainMask)
		p.backward(dY)

		// Eq. (8): knowledge preserving on the homophilous branch.
		if !p.opt.DisableKP {
			_, dKP := nn.MSELoss(p.hTilde, p.extLogits)
			p.knowledge.Backward(dKP)
		}
		p.optimizer.Step(group)
	}
}

// backward routes dL/dŶ through every branch of forward.
func (p *personal) backward(dY *matrix.Dense) {
	nHeads := 1
	if !p.opt.DisableTF {
		nHeads++
	}
	if !p.opt.DisableLM {
		nHeads++
	}
	heWeight := (1 - p.hcs) / float64(nHeads)

	// d softmax(H̃): from Ŷ_ho (weight hcs·½) and Ŷ_he (weight heWeight).
	dSHT := matrix.Scale(p.hcs*0.5+heWeight, dY)
	dHT := softmaxBackward(p.sHT, dSHT)

	if !p.opt.DisableLM {
		dSHM := matrix.Scale(heWeight, dY)
		dHM1 := softmaxBackward(p.sHM, dSHM)
		// H_m^(1) = (I + P⁺ − P⁻)·H' ⇒ dH' = (I + P⁺ᵀ − P⁻ᵀ)·dH_m.
		dHP := matrix.Add(dHM1, matrix.Sub(matrix.Mul(p.pPosT, dHM1), matrix.Mul(p.pNegT, dHM1)))
		matrix.AddInPlace(dHT, p.message.Backward(dHP))
	}
	p.knowledge.Backward(dHT)

	if !p.opt.DisableTF {
		dSHF := matrix.Scale(heWeight, dY)
		p.feature.Backward(softmaxBackward(p.sHF, dSHF))
	}
}

// testAccuracy scores the combined prediction on the local test mask.
func (p *personal) testAccuracy() float64 {
	yhat := p.forward()
	return models.AccuracyFromLogits(yhat, p.g.Labels, p.g.TestMask)
}

// probCrossEntropyGrad computes masked mean NLL on a probability matrix and
// its gradient dL/dP.
func probCrossEntropyGrad(probs *matrix.Dense, labels []int, mask []bool) (float64, *matrix.Dense) {
	grad := matrix.New(probs.Rows, probs.Cols)
	count := 0
	var loss float64
	for i := 0; i < probs.Rows; i++ {
		if mask != nil && !mask[i] {
			continue
		}
		count++
		pv := probs.At(i, labels[i])
		if pv < 1e-9 {
			pv = 1e-9
		}
		loss -= math.Log(pv)
		grad.Set(i, labels[i], -1/pv)
	}
	if count == 0 {
		return 0, grad
	}
	inv := 1 / float64(count)
	matrix.ScaleInPlace(grad, inv)
	return loss * inv, grad
}

// softmaxBackward computes dL/dZ from S = softmax(Z) and dL/dS.
func softmaxBackward(s, dS *matrix.Dense) *matrix.Dense {
	out := matrix.New(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		srow, drow, orow := s.Row(i), dS.Row(i), out.Row(i)
		var dot float64
		for j := range srow {
			dot += srow[j] * drow[j]
		}
		for j := range srow {
			orow[j] = srow[j] * (drow[j] - dot)
		}
	}
	return out
}
