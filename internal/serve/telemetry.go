package serve

import (
	"context"

	"repro/internal/matrix"
	"repro/internal/telemetry"
)

// CtxModel is implemented by engines whose full-graph logits pass can use
// the window's request context — the sharded engine threads it into the
// halo exchange so one trace ID spans HTTP handler → batcher window →
// shard exchange. Engines without the method run exactly as before; the
// context carries observability identity only and never alters results.
type CtxModel interface {
	// LogitsCtx is models.Model.Logits under a request context.
	LogitsCtx(ctx context.Context, train bool) *matrix.Dense
}

// Serving-layer metric families on the process-wide telemetry registry.
// One series per served architecture; every counter mirrors a field of the
// bit-compatible Snapshot, so /stats and /v1/metrics can never disagree on
// what they count.
var (
	telRequests = telemetry.Default().CounterVec("adafgl_serve_requests_total",
		"Completed Predict calls.", "arch")
	telNodes = telemetry.Default().CounterVec("adafgl_serve_nodes_total",
		"Node queries answered.", "arch")
	telBatches = telemetry.Default().CounterVec("adafgl_serve_batches_total",
		"Executed batch windows.", "arch")
	telShed = telemetry.Default().CounterVec("adafgl_serve_shed_total",
		"Predict calls rejected by admission control.", "arch")
	telDeadlines = telemetry.Default().CounterVec("adafgl_serve_deadline_total",
		"Predict calls that missed their deadline.", "arch")
	telPanics = telemetry.Default().CounterVec("adafgl_serve_panics_total",
		"Predict calls failed by a recovered engine panic.", "arch")
	telLatency = telemetry.Default().HistogramVec("adafgl_serve_request_latency_seconds",
		"End-to-end Predict latency.", telemetry.LatencyBuckets, "arch")
	telPending = telemetry.Default().GaugeVec("adafgl_serve_pending_nodes",
		"Admitted-but-unanswered queried nodes.", "arch")
)

// telSeries caches one server's resolved telemetry series so the hot path
// never pays a family map lookup. A nil *telSeries (zero-value Metrics
// outside a server) records nothing.
type telSeries struct {
	requests, nodes, batches *telemetry.Counter
	shed, deadlines, panics  *telemetry.Counter
	latency                  *telemetry.Histogram
	pending                  *telemetry.Gauge
}

// newTelSeries resolves the per-arch series once at server construction.
func newTelSeries(arch string) *telSeries {
	return &telSeries{
		requests:  telRequests.With(arch),
		nodes:     telNodes.With(arch),
		batches:   telBatches.With(arch),
		shed:      telShed.With(arch),
		deadlines: telDeadlines.With(arch),
		panics:    telPanics.With(arch),
		latency:   telLatency.With(arch),
		pending:   telPending.With(arch),
	}
}
