package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// slowOptions builds a server config whose every window stalls, so requests
// reliably sit in the pending state while tests race admissions against it.
func slowOptions(maxPending int, timeout time.Duration) Options {
	return Options{
		MaxBatch: 4, MaxWait: 0, Seed: 1,
		MaxPending:     maxPending,
		RequestTimeout: timeout,
		Chaos:          ChaosOptions{DelayEvery: 1, Delay: 40 * time.Millisecond},
	}
}

// TestAdmissionControlSheds pins the shed contract: a request that would
// push pending nodes past MaxPending fails fast with ErrOverloaded, while a
// single request larger than the whole budget is still admitted when nothing
// is pending.
func TestAdmissionControlSheds(t *testing.T) {
	ck := trainedCheckpoint(t, "SGC", 1)
	srv, err := New(ck, slowOptions(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Fill the budget with a slow 4-node request...
	first := make(chan error, 1)
	go func() {
		_, err := srv.Predict([]int{0, 1, 2, 3})
		first <- err
	}()
	waitPending(t, srv, 4)

	// ...then any further request must shed.
	if _, err := srv.Predict([]int{4}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if err := <-first; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
	if got := srv.Stats().Shed; got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}

	// Oversized single request with nothing pending: admitted, answered.
	if _, err := srv.Predict([]int{0, 1, 2, 3, 4, 5}); err != nil {
		t.Fatalf("oversized-but-alone request: %v", err)
	}

	// Negative MaxPending disables admission control entirely.
	open, err := New(ck, Options{MaxBatch: 4, Seed: 1, MaxPending: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer open.Close()
	if _, err := open.Predict([]int{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		t.Fatalf("disabled admission control shed: %v", err)
	}
}

// waitPending blocks until the server's pending-node gauge reaches want.
func waitPending(t *testing.T, srv *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for srv.pending.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("pending never reached %d (at %d)", want, srv.pending.Load())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestRequestDeadline pins the deadline contract: both the server-side
// RequestTimeout and a caller context deadline fail with ErrDeadline, the
// failure is counted exactly once, and the rest of the window still answers
// bit-identically.
func TestRequestDeadline(t *testing.T) {
	ck := trainedCheckpoint(t, "SGC", 1)
	srv, err := New(ck, slowOptions(0, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Predict([]int{0}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("RequestTimeout: want ErrDeadline, got %v", err)
	}
	if got := srv.Stats().Deadlines; got != 1 {
		t.Fatalf("Deadlines = %d, want 1 (deadline double-counted?)", got)
	}

	// Caller context deadline wins over the (absent) server timeout.
	clean, err := New(ck, Options{MaxBatch: 4, Seed: 1, Chaos: ChaosOptions{DelayEvery: 1, Delay: 40 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := clean.PredictCtx(ctx, []int{0}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("ctx deadline: want ErrDeadline, got %v", err)
	}

	// An already-expired context never enqueues.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := clean.PredictCtx(done, []int{0}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired ctx: want ErrDeadline, got %v", err)
	}
}

// TestDeadlineSurvivorsBitIdentical checks a window where one request
// expires and another survives: the survivor's logits match a fault-free
// server bit for bit.
func TestDeadlineSurvivorsBitIdentical(t *testing.T) {
	ck := trainedCheckpoint(t, "SGC", 1)
	clean, err := New(ck, Options{MaxBatch: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	wantPreds, err := clean.Predict([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	want := wantPreds[0].Logits

	// MaxWait large enough that the doomed and the surviving request share a
	// window; the doomed one's deadline lapses while the window fills.
	srv, err := New(ck, Options{MaxBatch: 8, MaxWait: 30 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	doomed := make(chan error, 1)
	go func() {
		_, err := srv.PredictCtx(ctx, []int{1})
		doomed <- err
	}()
	time.Sleep(time.Millisecond)
	preds, err := srv.Predict([]int{2})
	if err != nil {
		t.Fatalf("survivor failed: %v", err)
	}
	if err := <-doomed; !errors.Is(err, ErrDeadline) {
		t.Fatalf("doomed request: want ErrDeadline, got %v", err)
	}
	for j, v := range preds[0].Logits {
		if v != want[j] {
			t.Fatalf("survivor logit %d differs bitwise: %v vs %v", j, v, want[j])
		}
	}
}

// TestPanicIsolation pins the recovery contract: a panicking engine window
// fails its requests with ErrModelPanic, the dispatcher survives, and the
// next window answers bit-identically to the pre-panic one.
func TestPanicIsolation(t *testing.T) {
	ck := trainedCheckpoint(t, "SGC", 1)
	srv, err := New(ck, Options{MaxBatch: 4, Seed: 1, Chaos: ChaosOptions{PanicEvery: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	before, err := srv.Predict([]int{3}) // window 1: clean
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Predict([]int{3}); !errors.Is(err, ErrModelPanic) { // window 2: panics
		t.Fatalf("want ErrModelPanic, got %v", err)
	}
	after, err := srv.Predict([]int{3}) // window 3: clean again
	if err != nil {
		t.Fatalf("server died after panic: %v", err)
	}
	for j := range before[0].Logits {
		if before[0].Logits[j] != after[0].Logits[j] {
			t.Fatalf("post-panic logit %d differs bitwise", j)
		}
	}
	if got := srv.Stats().Panics; got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
}

// TestResilienceHTTPStatuses pins the HTTP mapping of the new failure modes:
// shed 503 with Retry-After, deadline 504 with code "deadline", panic 500 —
// all as structured envelopes.
func TestResilienceHTTPStatuses(t *testing.T) {
	ck := trainedCheckpoint(t, "SGC", 1)
	srv, err := New(ck, slowOptions(2, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Deadline: every window stalls past the 5ms request timeout.
	resp, err := http.Get(ts.URL + "/predict?node=0")
	if err != nil {
		t.Fatal(err)
	}
	checkEnvelope(t, resp, http.StatusGatewayTimeout, "deadline")

	// Shed: saturate the 2-node budget, then query over HTTP.
	bg := make(chan error, 1)
	go func() {
		_, err := srv.Predict([]int{0, 1})
		bg <- err
	}()
	waitPending(t, srv, 2)
	resp, err = http.Get(ts.URL + "/predict?node=2")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	checkEnvelope(t, resp, http.StatusServiceUnavailable, "unavailable")
	<-bg
}

// checkEnvelope asserts a structured error envelope with the given status
// and code, draining the body.
func checkEnvelope(t *testing.T, resp *http.Response, status int, code string) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != status {
		t.Fatalf("status = %d, want %d", resp.StatusCode, status)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Error.Code != code || env.Error.Op == "" || env.Error.Msg == "" {
		t.Fatalf("envelope = %+v, want code %s", env.Error, code)
	}
}

// TestRecoverMiddleware pins panic isolation at the HTTP layer: a handler
// panic answers the structured 500 envelope instead of killing the
// connection.
func TestRecoverMiddleware(t *testing.T) {
	h := Recover("test.op", http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatalf("connection died on handler panic: %v", err)
	}
	checkEnvelope(t, resp, http.StatusInternalServerError, "internal")
}

// TestRetryAfterHint pins the advisory-backoff contract WriteError stamps
// headers from.
func TestRetryAfterHint(t *testing.T) {
	if d, ok := RetryAfterHint(ErrOverloaded); !ok || d != DefaultRetryAfter {
		t.Fatalf("ErrOverloaded hint = %v %v", d, ok)
	}
	if d, ok := RetryAfterHint(ErrDraining); !ok || d != DefaultRetryAfter {
		t.Fatalf("ErrDraining hint = %v %v", d, ok)
	}
	if _, ok := RetryAfterHint(ErrDeadline); ok {
		t.Fatal("ErrDeadline must carry no retry hint")
	}
	if _, ok := RetryAfterHint(errors.New("other")); ok {
		t.Fatal("plain errors must carry no retry hint")
	}
}

// TestDrainDuringShedStorm is the graceful-drain-under-overload contract: a
// Drain issued while admission control is actively shedding still answers
// every admitted request, and every call issued after the drain began that
// was turned away reports ErrDraining (which also matches ErrClosed), never
// a hang or a lost answer. Run under -race in CI.
func TestDrainDuringShedStorm(t *testing.T) {
	ck := trainedCheckpoint(t, "SGC", 1)
	srv, err := New(ck, Options{
		MaxBatch: 4, MaxWait: 0, Seed: 1, MaxPending: 8,
		Chaos: ChaosOptions{DelayEvery: 4, Delay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		answered int
		sheds    int
		drained  int
		bad      []error
	)
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				preds, err := srv.Predict([]int{(w*31 + i) % srv.Nodes()})
				mu.Lock()
				switch {
				case err == nil && len(preds) == 1:
					answered++
				case errors.Is(err, ErrOverloaded):
					sheds++
				case errors.Is(err, ErrDraining):
					if !errors.Is(err, ErrClosed) {
						bad = append(bad, errors.New("ErrDraining does not match ErrClosed"))
					}
					drained++
					mu.Unlock()
					return
				case errors.Is(err, ErrClosed):
					// A request that raced past the draining gate before the
					// dispatcher stopped: answered with the close error, not
					// lost. Acceptable exactly-once outcome.
					drained++
					mu.Unlock()
					return
				default:
					bad = append(bad, err)
					mu.Unlock()
					return
				}
				mu.Unlock()
			}
		}(w)
	}

	// Let the storm shed for a moment, then drain mid-flight.
	time.Sleep(20 * time.Millisecond)
	srv.Drain()
	close(stop)
	wg.Wait()

	if len(bad) > 0 {
		t.Fatalf("unexpected outcomes during drain storm: %v", bad)
	}
	if answered == 0 {
		t.Fatal("storm answered nothing")
	}
	// After Drain returns every new call must be ErrDraining, and it must
	// keep matching the legacy ErrClosed contract.
	_, err = srv.Predict([]int{0})
	if !errors.Is(err, ErrDraining) || !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain Predict = %v, want ErrDraining wrapping ErrClosed", err)
	}
	if !strings.Contains(err.Error(), "draining") {
		t.Fatalf("post-drain error text %q lacks draining", err)
	}
	t.Logf("storm: answered=%d sheds=%d drained-workers=%d", answered, sheds, drained)
}
