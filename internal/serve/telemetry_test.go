package serve

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestServeTelemetryBitIdentical is the observation-only contract at the
// serving layer: the same queries answered with telemetry enabled and
// disabled must return bitwise-equal logits and classes.
func TestServeTelemetryBitIdentical(t *testing.T) {
	ck := trainedCheckpoint(t, "SGC", 41)
	nodes := []int{0, 3, 9, 1, 17, 5}

	run := func(enabled bool) []Prediction {
		t.Helper()
		defer telemetry.SetEnabled(telemetry.SetEnabled(enabled))
		srv, err := New(ck, Options{MaxBatch: 4, MaxWait: time.Millisecond, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		preds, err := srv.Predict(nodes)
		if err != nil {
			t.Fatal(err)
		}
		return preds
	}
	on := run(true)
	off := run(false)

	for i := range on {
		if on[i].Node != off[i].Node || on[i].Class != off[i].Class {
			t.Fatalf("query %d: on (%d,%d) vs off (%d,%d)",
				i, on[i].Node, on[i].Class, off[i].Node, off[i].Class)
		}
		for j := range on[i].Logits {
			if on[i].Logits[j] != off[i].Logits[j] {
				t.Fatalf("query %d logit %d differs between telemetry on and off", i, j)
			}
		}
	}
}

// TestServeTelemetryCounters covers the serving families: completed requests
// and answered nodes advance their per-arch counters by exactly the local
// Snapshot's deltas, and the latency histogram records one sample per
// request — /stats and /v1/metrics can never disagree on what they count.
func TestServeTelemetryCounters(t *testing.T) {
	defer telemetry.SetEnabled(telemetry.SetEnabled(true))
	ck := trainedCheckpoint(t, "SGC", 43)
	srv, err := New(ck, Options{MaxBatch: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	arch := srv.Arch()
	reqBefore := telRequests.With(arch).Value()
	nodeBefore := telNodes.With(arch).Value()
	latBefore := telLatency.With(arch).Count()

	queries := [][]int{{0}, {1, 2}, {3, 4, 5}}
	wantNodes := uint64(0)
	for _, q := range queries {
		if _, err := srv.Predict(q); err != nil {
			t.Fatal(err)
		}
		wantNodes += uint64(len(q))
	}

	if got := telRequests.With(arch).Value() - reqBefore; got != uint64(len(queries)) {
		t.Errorf("requests counter advanced by %d, want %d", got, len(queries))
	}
	if got := telNodes.With(arch).Value() - nodeBefore; got != wantNodes {
		t.Errorf("nodes counter advanced by %d, want %d", got, wantNodes)
	}
	if got := telLatency.With(arch).Count() - latBefore; got != uint64(len(queries)) {
		t.Errorf("latency histogram recorded %d samples, want %d", got, len(queries))
	}
}
