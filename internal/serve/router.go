package serve

import (
	"net/http"

	"repro/internal/telemetry"
)

// Handler returns the single-model HTTP surface of the server:
//
//	POST /predict      {"nodes":[0,5]} or {"all":true}
//	GET  /predict?node=3     single node
//	GET  /predict?nodes=1,2  node set
//	GET  /predict/all        full-graph warm path
//	GET  /healthz            liveness + model identity
//	GET  /stats              latency/throughput snapshot
//	GET  /metrics            Prometheus text exposition (process-wide)
//
// Malformed or truncated input yields HTTP 400 with a structured error
// envelope ({"error":{"op","code","msg"}}, see ErrorEnvelope) — handlers
// validate before touching the engine, so corrupt requests can never panic
// the server. Overload sheds answer 503 with Retry-After, missed deadlines
// 504, recovered engine panics 500; the whole mux is wrapped in Recover, so
// even a handler panic answers the structured 500 envelope instead of
// killing the connection. The multi-model v1 API (/v1/models/{name}/...) is
// the registry package's Handler, which routes onto servers like this one.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/predict/all", s.handlePredictAll)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.Handle("/metrics", telemetry.Default().Handler())
	return Recover("serve.handler", telemetry.TraceHTTP(mux))
}
