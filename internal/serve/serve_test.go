package serve

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/models"
	"repro/internal/partition"
)

// trainedCheckpoint runs a tiny federation of arch over a scaled Cora and
// packages the global model on the full graph.
func trainedCheckpoint(t testing.TB, arch string, seed int64) *checkpoint.Checkpoint {
	t.Helper()
	spec, err := datasets.ByName("Cora")
	if err != nil {
		t.Fatal(err)
	}
	g := datasets.GenerateScaled(spec, 0.2, seed)
	cd := partition.CommunitySplit(g, 3, rand.New(rand.NewSource(seed)))
	cfg := models.DefaultConfig()
	cfg.Hidden = 8
	cfg.Dropout = 0
	clients := federated.BuildClients(cd.Subgraphs, models.Registry[arch], cfg, seed)
	opt := federated.DefaultOptions()
	opt.Rounds = 3
	opt.LocalEpochs = 1
	res, err := federated.Run(clients, seed+1, opt)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := checkpoint.FromResult(res, arch, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// reference computes the expected logits matrix for a checkpoint by direct
// model evaluation.
func reference(t testing.TB, ck *checkpoint.Checkpoint) [][]float64 {
	t.Helper()
	m, err := ck.Model(1)
	if err != nil {
		t.Fatal(err)
	}
	lg := m.Logits(false)
	out := make([][]float64, lg.Rows)
	for i := range out {
		out[i] = append([]float64(nil), lg.Row(i)...)
	}
	return out
}

// TestPredictMatchesModel checks both engine paths answer what the
// underlying model computes, for single-node, node-set and full-graph
// queries. The coupled path gathers the model's own logits, so it must match
// bit for bit; the decoupled head evaluates rows in serve's fixed GEMV order
// (chosen for cross-batch bit-identity, which matrix.Mul's size-dependent
// dispatch cannot give), so it is held to the kernels' 1e-12 equivalence
// bound instead.
func TestPredictMatchesModel(t *testing.T) {
	for _, arch := range []string{"GCN", "SGC", "GAMLP", "MLP"} {
		ck := trainedCheckpoint(t, arch, 11)
		want := reference(t, ck)
		srv, err := New(ck, Options{MaxBatch: 16, MaxWait: time.Millisecond, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		wantDecoupled := arch != "GCN"
		if srv.Decoupled() != wantDecoupled {
			t.Fatalf("%s: Decoupled() = %v, want %v", arch, srv.Decoupled(), wantDecoupled)
		}
		tol := 0.0
		if wantDecoupled {
			tol = 1e-12
		}

		single, err := srv.Predict([]int{3})
		if err != nil {
			t.Fatalf("%s: single: %v", arch, err)
		}
		checkPred(t, arch, single[0], 3, want, tol)

		set, err := srv.Predict([]int{7, 0, 3, 7})
		if err != nil {
			t.Fatalf("%s: set: %v", arch, err)
		}
		for i, node := range []int{7, 0, 3, 7} {
			checkPred(t, arch, set[i], node, want, tol)
		}

		all, err := srv.PredictAll()
		if err != nil {
			t.Fatalf("%s: all: %v", arch, err)
		}
		if len(all) != srv.Nodes() {
			t.Fatalf("%s: PredictAll returned %d of %d nodes", arch, len(all), srv.Nodes())
		}
		for i, p := range all {
			checkPred(t, arch, p, i, want, tol)
		}
		srv.Close()
	}
}

// checkPred asserts one prediction equals the reference row within tol
// (0 = bit-identical) and is internally consistent.
func checkPred(t *testing.T, arch string, p Prediction, node int, want [][]float64, tol float64) {
	t.Helper()
	if p.Node != node {
		t.Fatalf("%s: predicted node %d, queried %d", arch, p.Node, node)
	}
	ref := want[node]
	if len(p.Logits) != len(ref) {
		t.Fatalf("%s: node %d: %d logits, want %d", arch, node, len(p.Logits), len(ref))
	}
	for j, v := range ref {
		d := p.Logits[j] - v
		if d < 0 {
			d = -d
		}
		if d > tol {
			t.Fatalf("%s: node %d logit %d: %v != %v (tol %g)", arch, node, j, p.Logits[j], v, tol)
		}
	}
	if p.Class != rowArgmax(p.Logits) {
		t.Fatalf("%s: node %d class %d inconsistent with its logits", arch, node, p.Class)
	}
	if p.Class != rowArgmax(ref) {
		t.Fatalf("%s: node %d class %d, want %d", arch, node, p.Class, rowArgmax(ref))
	}
}

// TestPredictValidation covers the named-op error paths.
func TestPredictValidation(t *testing.T) {
	ck := trainedCheckpoint(t, "SGC", 13)
	srv, err := New(ck, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Predict(nil); err == nil {
		t.Fatal("empty query must fail")
	}
	if _, err := srv.Predict([]int{-1}); err == nil {
		t.Fatal("negative node must fail")
	}
	if _, err := srv.Predict([]int{srv.Nodes()}); err == nil {
		t.Fatal("out-of-range node must fail")
	}
	srv.Close()
	if _, err := srv.Predict([]int{0}); err == nil {
		t.Fatal("predict after Close must fail")
	}
	srv.Close() // second Close must be safe
	if _, err := New(ck, Options{MaxBatch: -3}); err == nil {
		t.Fatal("negative MaxBatch must fail")
	}
}

// TestStats checks the metrics pipeline counts requests, nodes and batches
// and produces sane latency percentiles.
func TestStats(t *testing.T) {
	ck := trainedCheckpoint(t, "SGC", 17)
	srv, err := New(ck, Options{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 10; i++ {
		if _, err := srv.Predict([]int{i % srv.Nodes()}); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.Requests != 10 || st.Nodes != 10 {
		t.Fatalf("counted %d requests / %d nodes, want 10/10", st.Requests, st.Nodes)
	}
	if st.Batches == 0 || st.Batches > 10 {
		t.Fatalf("batches %d out of range", st.Batches)
	}
	if st.MeanBatch <= 0 {
		t.Fatalf("mean batch %v", st.MeanBatch)
	}
	if st.P50 < 0 || st.P99 < st.P50 {
		t.Fatalf("latency percentiles inconsistent: p50 %v p99 %v", st.P50, st.P99)
	}
	if st.QueriesPerSec <= 0 {
		t.Fatalf("qps %v", st.QueriesPerSec)
	}
}
