package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDrainAnswersAdmitted checks the graceful-retirement contract: every
// Predict admitted before Drain is answered (never failed), every Predict
// after Drain fails fast with ErrClosed, and Drain itself returns only once
// the dispatcher has exited.
func TestDrainAnswersAdmitted(t *testing.T) {
	ck := trainedCheckpoint(t, "SGC", 17)
	srv, err := New(ck, Options{MaxBatch: 8, MaxWait: time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	const callers = 32
	var answered, failed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < 20; q++ {
				_, err := srv.Predict([]int{(c*20 + q) % srv.Nodes()})
				switch {
				case err == nil:
					answered.Add(1)
				case errors.Is(err, ErrClosed):
					failed.Add(1)
					return // drained: stop querying
				default:
					t.Errorf("unexpected predict error: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond) // let some queries through first
	srv.Drain()
	wg.Wait()

	if answered.Load() == 0 {
		t.Fatal("no queries answered before drain")
	}
	// After Drain returns, the server is closed: Predict must fail fast.
	if _, err := srv.Predict([]int{0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Predict after Drain = %v, want ErrClosed", err)
	}
	// Idempotent, including interleaved with Close.
	srv.Drain()
	srv.Close()
}
