package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// httpServer spins up the handler over a trained SGC checkpoint.
func httpServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	ck := trainedCheckpoint(t, "SGC", 29)
	srv, err := New(ck, Options{MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// decode parses a JSON response body into v.
func decode(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPPredict covers the GET and POST query surfaces against the Go API.
func TestHTTPPredict(t *testing.T) {
	srv, ts := httpServer(t)
	want, err := srv.Predict([]int{1, 5})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/predict?nodes=1,5")
	if err != nil {
		t.Fatal(err)
	}
	var got PredictResponse
	decode(t, resp, &got)
	if len(got.Predictions) != 2 {
		t.Fatalf("got %d predictions", len(got.Predictions))
	}
	for i, p := range got.Predictions {
		if p.Node != want[i].Node || p.Class != want[i].Class {
			t.Fatalf("prediction %d drifted over HTTP: %+v vs %+v", i, p, want[i])
		}
		for j, v := range want[i].Logits {
			if p.Logits[j] != v {
				t.Fatalf("logit %d/%d drifted over HTTP", i, j)
			}
		}
	}

	resp, err = http.Post(ts.URL+"/predict", "application/json", strings.NewReader(`{"nodes":[1,5]}`))
	if err != nil {
		t.Fatal(err)
	}
	var post PredictResponse
	decode(t, resp, &post)
	if len(post.Predictions) != 2 || post.Predictions[0].Class != want[0].Class {
		t.Fatalf("POST drifted: %+v", post.Predictions)
	}

	resp, err = http.Get(ts.URL + "/predict/all")
	if err != nil {
		t.Fatal(err)
	}
	var all PredictResponse
	decode(t, resp, &all)
	if len(all.Predictions) != srv.Nodes() {
		t.Fatalf("full-graph path returned %d of %d nodes", len(all.Predictions), srv.Nodes())
	}
}

// TestHTTPErrors drives malformed and corrupt requests through every
// endpoint: the server must answer with a named-op ("serve: ...") JSON
// error and the right status, never panic or hang.
func TestHTTPErrors(t *testing.T) {
	_, ts := httpServer(t)
	cases := []struct {
		name   string
		do     func() (*http.Response, error)
		status int
	}{
		{"truncated json", func() (*http.Response, error) {
			return http.Post(ts.URL+"/predict", "application/json", strings.NewReader(`{"nodes":[1,`))
		}, http.StatusBadRequest},
		{"not json", func() (*http.Response, error) {
			return http.Post(ts.URL+"/predict", "application/json", strings.NewReader(`garbage`))
		}, http.StatusBadRequest},
		{"out of range", func() (*http.Response, error) {
			return http.Get(ts.URL + "/predict?node=99999999")
		}, http.StatusBadRequest},
		{"bad id", func() (*http.Response, error) {
			return http.Get(ts.URL + "/predict?node=abc")
		}, http.StatusBadRequest},
		{"missing params", func() (*http.Response, error) {
			return http.Get(ts.URL + "/predict")
		}, http.StatusBadRequest},
		{"empty list", func() (*http.Response, error) {
			return http.Post(ts.URL+"/predict", "application/json", strings.NewReader(`{"nodes":[]}`))
		}, http.StatusBadRequest},
		{"bad method", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/predict", nil)
			return http.DefaultClient.Do(req)
		}, http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		resp, err := c.do()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if resp.StatusCode != c.status {
			t.Fatalf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
		var e ErrorEnvelope
		decode(t, resp, &e)
		if !strings.HasPrefix(e.Error.Msg, "serve:") {
			t.Fatalf("%s: error msg not named-op: %q", c.name, e.Error.Msg)
		}
		if e.Error.Op == "" || e.Error.Code != CodeForStatus(c.status) {
			t.Fatalf("%s: envelope op/code wrong: %+v", c.name, e.Error)
		}
	}
}

// TestHTTPHealthAndStats checks the operational endpoints.
func TestHTTPHealthAndStats(t *testing.T) {
	srv, ts := httpServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	decode(t, resp, &hz)
	if hz["status"] != "ok" || hz["arch"] != "SGC" || hz["decoupled"] != true {
		t.Fatalf("healthz: %+v", hz)
	}

	if _, err := srv.Predict([]int{2}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Snapshot
	decode(t, resp, &st)
	if st.Requests == 0 || st.Nodes == 0 {
		t.Fatalf("stats empty after a request: %+v", st)
	}
}

// TestPrimaryRoutesCarryNoDeprecationHeaders pins that the single-model
// server's own flat routes are the primary surface here — only the registry's
// aliases onto these paths are deprecated, so this handler must never stamp
// Deprecation or successor Link headers.
func TestPrimaryRoutesCarryNoDeprecationHeaders(t *testing.T) {
	_, ts := httpServer(t)
	for _, path := range []string{"/predict?node=0", "/predict/all", "/healthz", "/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		if d := resp.Header.Get("Deprecation"); d != "" {
			t.Errorf("%s stamped Deprecation %q on the primary surface", path, d)
		}
		if l := resp.Header.Get("Link"); l != "" {
			t.Errorf("%s stamped Link %q on the primary surface", path, l)
		}
	}
}
