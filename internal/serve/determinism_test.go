package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/parallel"
)

// TestServeDeterminism is the serving determinism contract: the same query
// stream must produce bit-identical predictions for every worker count,
// batch budget and batch window — including the degenerate single-request
// server — on both engine paths (coupled GCN, decoupled SGC).
func TestServeDeterminism(t *testing.T) {
	defer parallel.SetWorkers(parallel.SetWorkers(0))
	for _, arch := range []string{"GCN", "SGC"} {
		ck := trainedCheckpoint(t, arch, 23)
		queries := make([][]int, 0, 40)
		for q := 0; q < 40; q++ {
			queries = append(queries, []int{(q * 13) % ck.Graph.N, (q * 7) % ck.Graph.N})
		}

		type cfg struct {
			workers, batch int
			wait           time.Duration
		}
		cfgs := []cfg{
			{1, 1, 0},
			{1, 64, time.Millisecond},
			{4, 1, 0},
			{4, 16, 0},
			{4, 64, 2 * time.Millisecond},
			{8, 256, time.Millisecond},
		}
		var want map[string][]float64
		for _, c := range cfgs {
			parallel.SetWorkers(c.workers)
			srv, err := New(ck, Options{MaxBatch: c.batch, MaxWait: c.wait, Seed: 1})
			if err != nil {
				t.Fatalf("%s %+v: %v", arch, c, err)
			}
			got := make(map[string][]float64)
			var mu sync.Mutex
			var wg sync.WaitGroup
			for _, q := range queries {
				wg.Add(1)
				go func() {
					defer wg.Done()
					preds, err := srv.Predict(q)
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					defer mu.Unlock()
					for _, p := range preds {
						got[fmt.Sprintf("n%d", p.Node)] = p.Logits
					}
				}()
			}
			wg.Wait()
			srv.Close()
			if t.Failed() {
				t.FailNow()
			}
			if want == nil {
				want = got
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("%s %+v: answered %d nodes, want %d", arch, c, len(got), len(want))
			}
			for k, ref := range want {
				cur := got[k]
				for j := range ref {
					if cur[j] != ref[j] {
						t.Fatalf("%s %+v: %s logit %d: %v != %v (batching changed the bits)",
							arch, c, k, j, cur[j], ref[j])
					}
				}
			}
		}
	}
}
