package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// PredictRequest is the JSON body of the POST predict endpoints (both the
// legacy /predict and the v1 /v1/models/{name}/predict routes).
type PredictRequest struct {
	// Nodes lists the node ids to classify.
	Nodes []int `json:"nodes"`
	// All, when true, classifies every node (ignores Nodes) — the
	// full-graph warm path.
	All bool `json:"all,omitempty"`
}

// PredictResponse is the JSON answer of the predict endpoints.
type PredictResponse struct {
	// Predictions holds one entry per queried node, in query order.
	Predictions []Prediction `json:"predictions"`
}

// ParseNodesQuery decodes the node/nodes query parameters of a GET predict
// request; shared by the single-model handlers and the registry's v1 API.
func ParseNodesQuery(r *http.Request) ([]int, error) {
	q := r.URL.Query()
	var raw []string
	if v := q.Get("node"); v != "" {
		raw = []string{v}
	} else if v := q.Get("nodes"); v != "" {
		raw = strings.Split(v, ",")
	} else {
		return nil, fmt.Errorf("serve: predict: missing node or nodes query parameter")
	}
	nodes := make([]int, len(raw))
	for i, s := range raw {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("serve: predict: bad node id %q", s)
		}
		nodes[i] = n
	}
	return nodes, nil
}

// DecodePredictBody decodes the JSON body of a POST predict request with a
// size cap, so oversized or truncated bodies fail with a named-op error
// before any engine work.
func DecodePredictBody(w http.ResponseWriter, r *http.Request) (PredictRequest, error) {
	var req PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("serve: predict: decode request: %w", err)
	}
	return req, nil
}

// handlePredict answers single-node and node-set queries.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var nodes []int
	switch r.Method {
	case http.MethodGet:
		var err error
		if nodes, err = ParseNodesQuery(r); err != nil {
			WriteError(w, http.StatusBadRequest, "serve.predict", err)
			return
		}
	case http.MethodPost:
		req, err := DecodePredictBody(w, r)
		if err != nil {
			WriteError(w, http.StatusBadRequest, "serve.predict", err)
			return
		}
		if req.All {
			s.handlePredictAll(w, r)
			return
		}
		nodes = req.Nodes
	default:
		WriteError(w, http.StatusMethodNotAllowed, "serve.predict",
			fmt.Errorf("serve: predict: method %s not allowed", r.Method))
		return
	}
	// The request context carries the trace ID the TraceHTTP middleware
	// injected (when mounted), so the batcher's window spans join it.
	preds, err := s.PredictCtx(r.Context(), nodes)
	if err != nil {
		WriteError(w, PredictStatus(err), "serve.predict", err)
		return
	}
	WriteJSON(w, http.StatusOK, PredictResponse{Predictions: preds})
}

// handlePredictAll answers the full-graph warm path.
func (s *Server) handlePredictAll(w http.ResponseWriter, r *http.Request) {
	nodes := make([]int, s.Nodes())
	for i := range nodes {
		nodes[i] = i
	}
	preds, err := s.PredictCtx(r.Context(), nodes)
	if err != nil {
		WriteError(w, PredictStatus(err), "serve.predict", err)
		return
	}
	WriteJSON(w, http.StatusOK, PredictResponse{Predictions: preds})
}

// PredictStatus maps Predict errors to HTTP statuses: an overload shed or a
// closed/draining server is 503 (WriteError adds Retry-After), a missed
// deadline is 504, a recovered engine panic is 500, everything else
// (validation) is 400.
func PredictStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrModelPanic):
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// handleHealthz reports liveness and the served model's identity.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"arch":      s.arch,
		"nodes":     s.Nodes(),
		"classes":   s.Classes(),
		"decoupled": s.Decoupled(),
	})
}

// handleStats reports the metrics snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, s.Stats())
}
