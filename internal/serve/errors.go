package serve

import (
	"encoding/json"
	"net/http"
)

// APIError is the structured JSON error body shared by every HTTP handler of
// the serving surface — the single envelope of the v1 API, the single-model
// Handler, and the legacy aliases. Op names the failing operation
// ("serve.predict", "registry.swap", ...), Code is a machine-routable
// category derived from the HTTP status, and Msg carries the full named-op
// error text.
type APIError struct {
	// Op is the dotted name of the operation that failed.
	Op string `json:"op"`
	// Code is the machine-readable error category ("bad_request",
	// "not_found", "conflict", "method_not_allowed", "unavailable",
	// "internal").
	Code string `json:"code"`
	// Msg is the human-readable named-op error message.
	Msg string `json:"msg"`
}

// ErrorEnvelope is the top-level JSON shape of every HTTP error response:
// {"error":{"op":...,"code":...,"msg":...}}.
type ErrorEnvelope struct {
	// Error is the structured error body.
	Error APIError `json:"error"`
}

// CodeForStatus maps an HTTP status onto the envelope's machine-readable
// error code.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

// WriteJSON writes v as the JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// WriteError writes err as the structured JSON error envelope with the given
// status, stamping op and the status-derived code.
func WriteError(w http.ResponseWriter, status int, op string, err error) {
	WriteJSON(w, status, ErrorEnvelope{Error: APIError{
		Op: op, Code: CodeForStatus(status), Msg: err.Error(),
	}})
}
