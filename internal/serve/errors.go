package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// APIError is the structured JSON error body shared by every HTTP handler of
// the serving surface — the single envelope of the v1 API, the single-model
// Handler, and the legacy aliases. Op names the failing operation
// ("serve.predict", "registry.swap", ...), Code is a machine-routable
// category derived from the HTTP status, and Msg carries the full named-op
// error text.
type APIError struct {
	// Op is the dotted name of the operation that failed.
	Op string `json:"op"`
	// Code is the machine-readable error category ("bad_request",
	// "not_found", "conflict", "method_not_allowed", "unavailable",
	// "internal").
	Code string `json:"code"`
	// Msg is the human-readable named-op error message.
	Msg string `json:"msg"`
}

// ErrorEnvelope is the top-level JSON shape of every HTTP error response:
// {"error":{"op":...,"code":...,"msg":...}}.
type ErrorEnvelope struct {
	// Error is the structured error body.
	Error APIError `json:"error"`
}

// CodeForStatus maps an HTTP status onto the envelope's machine-readable
// error code.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "deadline"
	default:
		return "internal"
	}
}

// RetryAfterer is implemented by errors that carry an advisory client
// backoff — the registry's circuit-breaker error reports its remaining trip
// window this way. WriteError turns the hint into a Retry-After header.
type RetryAfterer interface {
	// RetryAfter is the advisory delay before the client should retry.
	RetryAfter() time.Duration
}

// DefaultRetryAfter is the advisory Retry-After delay stamped on shed and
// draining responses whose error carries no explicit hint.
const DefaultRetryAfter = time.Second

// RetryAfterHint returns the advisory Retry-After delay for err: the
// explicit hint when err implements RetryAfterer, DefaultRetryAfter for the
// transient serving failures a client should simply retry (overload shed,
// draining, closed), and false for everything else (validation errors,
// deadlines the client chose, engine panics).
func RetryAfterHint(err error) (time.Duration, bool) {
	var ra RetryAfterer
	if errors.As(err, &ra) {
		return ra.RetryAfter(), true
	}
	if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrClosed) {
		return DefaultRetryAfter, true
	}
	return 0, false
}

// WriteJSON writes v as the JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// WriteError writes err as the structured JSON error envelope with the given
// status, stamping op and the status-derived code. Errors carrying a retry
// hint (overload sheds, draining servers, tripped breakers — see
// RetryAfterHint) additionally get a Retry-After header in whole seconds
// (minimum 1), so well-behaved clients back off instead of hammering.
func WriteError(w http.ResponseWriter, status int, op string, err error) {
	if d, ok := RetryAfterHint(err); ok {
		secs := int(d / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	WriteJSON(w, status, ErrorEnvelope{Error: APIError{
		Op: op, Code: CodeForStatus(status), Msg: err.Error(),
	}})
}

// Recover wraps h so a panic anywhere below it — a handler bug, a model
// blowing up outside the batcher's own recovery — answers the structured 500
// envelope instead of killing the connection. Both HTTP surfaces (the
// single-model Handler and the registry's v1 API) wrap their whole mux in
// it, so every route is panic-isolated: one poisoned request can never take
// the process or even its own keep-alive connection down. If the handler
// already started writing a response the envelope cannot be delivered; the
// panic is still swallowed and the connection completes.
func Recover(op string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				WriteError(w, http.StatusInternalServerError, op,
					fmt.Errorf("serve: %s: handler panic: %v", op, rec))
			}
		}()
		h.ServeHTTP(w, r)
	})
}
