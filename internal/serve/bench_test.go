package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/parallel"
)

// BenchmarkServeBatching prices request coalescing: 64 concurrent
// single-node queries answered by a single-request server (path=single, the
// baseline benchjson divides by) versus a batching server (path=batch64),
// across worker counts and both engine paths (coupled GCN propagates per
// window, decoupled SGC rides the embedding cache). ns/op covers one full
// 64-query wave, so the ns/op ratio is the throughput ratio.
func BenchmarkServeBatching(b *testing.B) {
	const conc = 64
	for _, arch := range []string{"GCN", "SGC"} {
		ck := trainedCheckpoint(b, arch, 31)
		for _, workers := range []int{1, 4} {
			for _, mode := range []struct {
				path  string
				batch int
				wait  time.Duration
			}{
				{"single", 1, 0},
				{"batch64", conc, 2 * time.Millisecond},
			} {
				name := fmt.Sprintf("arch=%s/conc=%d/workers=%d/path=%s", arch, conc, workers, mode.path)
				b.Run(name, func(b *testing.B) {
					defer parallel.SetWorkers(parallel.SetWorkers(workers))
					srv, err := New(ck, Options{MaxBatch: mode.batch, MaxWait: mode.wait, Seed: 1})
					if err != nil {
						b.Fatal(err)
					}
					defer srv.Close()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						var wg sync.WaitGroup
						for q := 0; q < conc; q++ {
							wg.Add(1)
							go func() {
								defer wg.Done()
								if _, err := srv.Predict([]int{(q * 17) % srv.Nodes()}); err != nil {
									b.Error(err)
								}
							}()
						}
						wg.Wait()
					}
					b.StopTimer()
					if el := b.Elapsed().Seconds(); el > 0 {
						b.ReportMetric(float64(conc*b.N)/el, "queries/s")
					}
				})
			}
		}
	}
}

// BenchmarkMetricsSnapshot guards the stats-path lock contract with the
// latency ring at its full 16K capacity: snapshot() must copy the ring under
// the lock but sort OUTSIDE it, so a stats poller never stalls the
// dispatcher's record() path. snapshot-full-ring prices one percentile
// computation; record-under-polling times record() while a poller hammers
// snapshot() concurrently — if the sort ever moves back under the lock,
// record's ns/op jumps by orders of magnitude and this benchmark is the
// regression alarm.
func BenchmarkMetricsSnapshot(b *testing.B) {
	newFullRing := func() *Metrics {
		var m Metrics
		m.reset()
		for i := 0; i < latWindow; i++ {
			m.record(1, time.Duration(i%2048)*time.Microsecond)
		}
		return &m
	}
	b.Run("snapshot-full-ring", func(b *testing.B) {
		m := newFullRing()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = m.snapshot()
		}
	})
	b.Run("record-under-polling", func(b *testing.B) {
		m := newFullRing()
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = m.snapshot()
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.record(1, time.Duration(i%2048)*time.Microsecond)
		}
		b.StopTimer()
		close(done)
		wg.Wait()
	})
}
