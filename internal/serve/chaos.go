package serve

import "time"

// ChaosOptions is the batcher's deterministic fault-injection surface — the
// serving-side analogue of the federation layer's fault schedules. It exists
// so the torture harness (adafgl-bench -exp torture) and the resilience
// tests can drive the real recovery machinery (panic isolation, deadline
// expiry, circuit breaking) through the production code path instead of
// mocks: faults fire on a deterministic window counter owned by the single
// dispatcher goroutine, so a seeded scenario injects the same faults at the
// same windows on every run. The zero value injects nothing and costs
// nothing.
type ChaosOptions struct {
	// PanicEvery panics the batch engine on every PanicEvery-th batch
	// window (the PanicEvery-th, 2·PanicEvery-th, ...). The panic unwinds
	// through the dispatcher's recovery: the window's requests fail with
	// ErrModelPanic, the server keeps running. 0 disables.
	PanicEvery int
	// DelayEvery stalls every DelayEvery-th batch window by Delay before
	// the engine runs — a deterministic slow-model simulation that lets
	// deadline and overload behaviour be provoked on fast hardware. 0
	// disables.
	DelayEvery int
	// Delay is the stall injected by DelayEvery windows.
	Delay time.Duration
}

// active reports whether any fault is configured.
func (c ChaosOptions) active() bool {
	return c.PanicEvery > 0 || (c.DelayEvery > 0 && c.Delay > 0)
}
