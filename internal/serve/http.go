package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// PredictRequest is the JSON body of POST /predict.
type PredictRequest struct {
	// Nodes lists the node ids to classify.
	Nodes []int `json:"nodes"`
	// All, when true, classifies every node (ignores Nodes) — the
	// full-graph warm path.
	All bool `json:"all,omitempty"`
}

// PredictResponse is the JSON answer of the predict endpoints.
type PredictResponse struct {
	// Predictions holds one entry per queried node, in query order.
	Predictions []Prediction `json:"predictions"`
}

// errorResponse is the JSON error envelope; Error always carries a named-op
// message ("serve: ...").
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP surface of the server:
//
//	POST /predict      {"nodes":[0,5]} or {"all":true}
//	GET  /predict?node=3     single node
//	GET  /predict?nodes=1,2  node set
//	GET  /predict/all        full-graph warm path
//	GET  /healthz            liveness + model identity
//	GET  /stats              latency/throughput snapshot
//
// Malformed or truncated input yields HTTP 400 with a named-op error in a
// JSON envelope — handlers validate before touching the engine, so corrupt
// requests can never panic the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/predict/all", s.handlePredictAll)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeError maps a serving error onto an HTTP status and the JSON envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// parseNodesQuery decodes the node/nodes query parameters of GET /predict.
func parseNodesQuery(r *http.Request) ([]int, error) {
	q := r.URL.Query()
	var raw []string
	if v := q.Get("node"); v != "" {
		raw = []string{v}
	} else if v := q.Get("nodes"); v != "" {
		raw = strings.Split(v, ",")
	} else {
		return nil, fmt.Errorf("serve: predict: missing node or nodes query parameter")
	}
	nodes := make([]int, len(raw))
	for i, s := range raw {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("serve: predict: bad node id %q", s)
		}
		nodes[i] = n
	}
	return nodes, nil
}

// handlePredict answers single-node and node-set queries.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var nodes []int
	switch r.Method {
	case http.MethodGet:
		var err error
		if nodes, err = parseNodesQuery(r); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case http.MethodPost:
		var req PredictRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: predict: decode request: %w", err))
			return
		}
		if req.All {
			s.handlePredictAll(w, r)
			return
		}
		nodes = req.Nodes
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: predict: method %s not allowed", r.Method))
		return
	}
	preds, err := s.Predict(nodes)
	if err != nil {
		writeError(w, predictStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Predictions: preds})
}

// handlePredictAll answers the full-graph warm path.
func (s *Server) handlePredictAll(w http.ResponseWriter, r *http.Request) {
	preds, err := s.PredictAll()
	if err != nil {
		writeError(w, predictStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Predictions: preds})
}

// predictStatus maps Predict errors to HTTP statuses: a closed server is
// 503, everything else (validation) is 400.
func predictStatus(err error) int {
	if errors.Is(err, ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// handleHealthz reports liveness and the served model's identity.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"arch":      s.arch,
		"nodes":     s.g.N,
		"classes":   s.g.Classes,
		"decoupled": s.Decoupled(),
	})
}

// handleStats reports the metrics snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
