// Package serve is the batched inference layer of the AdaFGL reproduction:
// it rebuilds a trained model from a checkpoint and answers concurrent
// node-classification queries by coalescing them into batch windows, so the
// propagate+transform hot path the kernel engines accelerate runs once per
// window instead of once per request. Decoupled architectures (SGC, GAMLP,
// MLP) propagate once at load time and answer from a precomputed embedding
// cache with per-row dense GEMVs; message-passing architectures run one
// plan-reused full propagation per window. Predictions are bit-identical for
// every batch size, batch window and worker count. The server is embeddable
// as a Go API (Predict/PredictAll) and exposed over HTTP by Handler.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/models"
)

// Options configures the batching behaviour of a Server.
type Options struct {
	// MaxBatch is the number of queried nodes that closes a batch window
	// early. 1 disables coalescing (every request is its own window);
	// 0 selects DefaultMaxBatch.
	MaxBatch int
	// MaxWait bounds how long the first request of a window waits for
	// company before the batch runs anyway. 0 flushes as soon as the queue
	// is drained (lowest latency, still coalescing under concurrency);
	// negative selects DefaultMaxWait.
	MaxWait time.Duration
	// Seed drives the model-rebuild RNG. It only affects training-time
	// dropout streams, never inference outputs.
	Seed int64
}

// DefaultMaxBatch is the batch-window node budget used when
// Options.MaxBatch is 0.
const DefaultMaxBatch = 64

// DefaultMaxWait is the batch-window deadline used when Options.MaxWait is
// negative.
const DefaultMaxWait = 2 * time.Millisecond

// ErrClosed is the failure every Predict call sinks to once the server has
// been closed; test with errors.Is.
var ErrClosed = errors.New("serve: Predict: server closed")

// Prediction is the answer for one queried node.
type Prediction struct {
	// Node is the queried node id.
	Node int `json:"node"`
	// Class is the argmax predicted class.
	Class int `json:"class"`
	// Logits is the full class-score row for the node.
	Logits []float64 `json:"logits"`
}

// Server is an embedded batched-inference server bound to one checkpointed
// model. Concurrent Predict calls are coalesced by a single dispatcher into
// batch windows; the numeric work of each window runs on the bounded
// parallel pool. Create with New, release with Close.
type Server struct {
	g     *graph.Graph
	model models.Model
	arch  string

	// Decoupled fast path: non-nil emb means queries are answered from this
	// precomputed embedding via the dense head, one row at a time.
	emb  *matrix.Dense
	head []models.HeadLayer

	opt     Options
	queue   chan *request
	quit    chan struct{}
	stopped chan struct{}
	once    sync.Once

	// draining gates new Predict admissions during Drain; inflight counts
	// admitted Predict calls that have not returned yet, so Drain knows when
	// every accepted request has been answered.
	draining atomic.Bool
	inflight atomic.Int64

	metrics Metrics
}

// New rebuilds the checkpointed model and starts the batching dispatcher.
// Decoupled architectures pay their propagation exactly once here, so the
// construction cost covers all future queries.
func New(ck *checkpoint.Checkpoint, opt Options) (*Server, error) {
	if opt.MaxBatch == 0 {
		opt.MaxBatch = DefaultMaxBatch
	}
	if opt.MaxBatch < 1 {
		return nil, fmt.Errorf("serve: New: MaxBatch %d < 1", opt.MaxBatch)
	}
	if opt.MaxWait < 0 {
		opt.MaxWait = DefaultMaxWait
	}
	m, err := ck.Model(opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("serve: New: %w", err)
	}
	s := &Server{
		g: ck.Graph, model: m, arch: ck.Arch, opt: opt,
		queue:   make(chan *request, 4*opt.MaxBatch),
		quit:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	if dec, ok := m.(models.Decoupled); ok {
		s.emb, s.head = dec.InferenceFactors()
	}
	s.metrics.reset()
	go s.dispatch()
	return s, nil
}

// Arch returns the served architecture's registry name.
func (s *Server) Arch() string { return s.arch }

// Nodes returns the number of servable nodes (the graph size).
func (s *Server) Nodes() int { return s.g.N }

// Classes returns the number of output classes.
func (s *Server) Classes() int { return s.g.Classes }

// Decoupled reports whether queries ride the precomputed-embedding fast
// path (true) or a per-window full propagation (false).
func (s *Server) Decoupled() bool { return s.emb != nil }

// Predict classifies the given nodes, blocking until the batch window
// containing them has run. Node ids outside the graph yield a named-op
// error before any work is enqueued; a closed server yields an error too.
// Results are bit-identical for every batch size, window and worker count.
func (s *Server) Predict(nodes []int) ([]Prediction, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("serve: Predict: empty node list")
	}
	for _, v := range nodes {
		if v < 0 || v >= s.g.N {
			return nil, fmt.Errorf("serve: Predict: node %d outside graph of %d nodes", v, s.g.N)
		}
	}
	// Admission control for Drain: the inflight increment must precede the
	// draining check (both are sequentially consistent atomics), so Drain —
	// which stores draining before polling inflight — either turns this call
	// away here or observes its inflight count and waits for its answer.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		return nil, ErrClosed
	}
	req := &request{
		nodes: append([]int(nil), nodes...),
		enq:   time.Now(),
		done:  make(chan struct{}),
	}
	select {
	case s.queue <- req:
	case <-s.quit:
		return nil, ErrClosed
	}
	// The enqueue above can win its select race against a concurrent Close
	// (both channels ready), leaving the request in a queue no dispatcher
	// will drain — so waiting must also watch for dispatcher exit.
	select {
	case <-req.done:
	case <-s.stopped:
		select {
		case <-req.done: // answered (or failed) during shutdown
		default:
			return nil, ErrClosed
		}
	}
	return req.preds, req.err
}

// PredictAll classifies every node of the graph — the full-graph warm path.
func (s *Server) PredictAll() ([]Prediction, error) {
	nodes := make([]int, s.g.N)
	for i := range nodes {
		nodes[i] = i
	}
	return s.Predict(nodes)
}

// Stats returns a snapshot of the server's latency/throughput metrics.
func (s *Server) Stats() Snapshot { return s.metrics.snapshot() }

// Label returns node's ground-truth class and whether the serving graph
// carries a label for it. The registry layer uses it for online-accuracy
// accounting (per-model stats, A/B reports) without reaching into the graph.
func (s *Server) Label(node int) (int, bool) {
	if s.g.Labels == nil || node < 0 || node >= len(s.g.Labels) {
		return 0, false
	}
	return s.g.Labels[node], true
}

// Drain gracefully retires the server: new Predict calls are turned away
// with ErrClosed immediately, every already-admitted call is answered by the
// dispatcher as usual, and only then is the batcher stopped. Safe to call
// more than once and concurrently with Close; blocks until the dispatcher
// has exited. This is what lets a registry swap checkpoints with zero
// dropped requests: in-flight batch windows finish on the old model while
// new requests route to the new one.
func (s *Server) Drain() {
	s.draining.Store(true)
	for s.inflight.Load() != 0 {
		time.Sleep(50 * time.Microsecond)
	}
	s.Close()
}

// Close stops the dispatcher and fails queued and future Predict calls.
// Safe to call more than once; blocks until the dispatcher has exited.
func (s *Server) Close() {
	s.once.Do(func() { close(s.quit) })
	<-s.stopped
}
