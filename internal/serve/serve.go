// Package serve is the batched inference layer of the AdaFGL reproduction:
// it rebuilds a trained model from a checkpoint and answers concurrent
// node-classification queries by coalescing them into batch windows, so the
// propagate+transform hot path the kernel engines accelerate runs once per
// window instead of once per request. Decoupled architectures (SGC, GAMLP,
// MLP) propagate once at load time and answer from a precomputed embedding
// cache with per-row dense GEMVs; message-passing architectures run one
// plan-reused full propagation per window. Predictions are bit-identical for
// every batch size, batch window and worker count. The server is embeddable
// as a Go API (Predict/PredictAll) and exposed over HTTP by Handler.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/telemetry"
)

// Options configures the batching behaviour of a Server.
type Options struct {
	// MaxBatch is the number of queried nodes that closes a batch window
	// early. 1 disables coalescing (every request is its own window);
	// 0 selects DefaultMaxBatch.
	MaxBatch int
	// MaxWait bounds how long the first request of a window waits for
	// company before the batch runs anyway. 0 flushes as soon as the queue
	// is drained (lowest latency, still coalescing under concurrency);
	// negative selects DefaultMaxWait.
	MaxWait time.Duration
	// MaxPending is the admission-control budget: the total number of
	// queried nodes admitted but not yet answered. A Predict call that would
	// push the pending total past the budget is shed immediately with
	// ErrOverloaded (HTTP 503 + Retry-After) instead of queueing unboundedly.
	// A request larger than the whole budget is still admitted when nothing
	// else is pending, so full-graph queries always make progress. 0 selects
	// DefaultMaxPending; negative disables admission control.
	MaxPending int
	// RequestTimeout is the per-request deadline Predict applies when the
	// caller's context carries none. A request whose deadline passes before
	// its batch window runs fails with ErrDeadline (HTTP 504) while the rest
	// of the window completes normally — survivors' answers stay
	// bit-identical. 0 disables the server-side deadline.
	RequestTimeout time.Duration
	// Seed drives the model-rebuild RNG. It only affects training-time
	// dropout streams, never inference outputs.
	Seed int64
	// Chaos injects deterministic faults into the batch engine for the
	// torture harness and resilience tests. The zero value injects nothing.
	Chaos ChaosOptions
}

// DefaultMaxBatch is the batch-window node budget used when
// Options.MaxBatch is 0.
const DefaultMaxBatch = 64

// DefaultMaxWait is the batch-window deadline used when Options.MaxWait is
// negative.
const DefaultMaxWait = 2 * time.Millisecond

// DefaultMaxPending is the admission-control budget (in queued nodes) used
// when Options.MaxPending is 0.
const DefaultMaxPending = 1 << 14

// ErrClosed is the failure every Predict call sinks to once the server has
// been closed; test with errors.Is.
var ErrClosed = errors.New("serve: Predict: server closed")

// ErrDraining is the failure new Predict calls sink to while Drain retires
// the server: admitted requests are still answered, new ones are turned away.
// It wraps ErrClosed, so existing errors.Is(err, ErrClosed) checks keep
// matching; test for the draining phase specifically with
// errors.Is(err, ErrDraining).
var ErrDraining = fmt.Errorf("serve: Predict: server draining: %w", ErrClosed)

// ErrOverloaded marks a Predict call shed by admission control: the pending
// node budget (Options.MaxPending) was exhausted. The HTTP layer maps it to
// 503 with a Retry-After header; test with errors.Is.
var ErrOverloaded = errors.New("serve: Predict: overloaded: pending-node budget exhausted")

// ErrDeadline marks a Predict call that missed its deadline (the caller's
// context deadline or Options.RequestTimeout) before or while its batch
// window ran. The HTTP layer maps it to 504; test with errors.Is.
var ErrDeadline = errors.New("serve: Predict: request deadline exceeded")

// ErrModelPanic marks a batch window whose model engine panicked. The
// dispatcher recovers, fails only that window's requests with this error
// (HTTP 500) and keeps serving; the registry's circuit breaker counts these
// toward tripping the model. Test with errors.Is.
var ErrModelPanic = errors.New("serve: Predict: model engine panicked")

// Prediction is the answer for one queried node.
type Prediction struct {
	// Node is the queried node id.
	Node int `json:"node"`
	// Class is the argmax predicted class.
	Class int `json:"class"`
	// Logits is the full class-score row for the node.
	Logits []float64 `json:"logits"`
}

// Predictor is the serving surface shared by the single-process *Server and
// the shard-routed server in internal/shard: everything the registry, the
// HTTP handlers and the A/B splitter need from a model instance. The
// registry stores Predictors, so a sharded fleet drops into the same swap /
// LRU / circuit-breaker machinery as a single-graph server.
type Predictor interface {
	// Predict classifies nodes (see Server.Predict).
	Predict(nodes []int) ([]Prediction, error)
	// PredictCtx is Predict under a caller context (see Server.PredictCtx).
	PredictCtx(ctx context.Context, nodes []int) ([]Prediction, error)
	// PredictAll classifies every servable node.
	PredictAll() ([]Prediction, error)
	// Arch returns the served architecture's registry name.
	Arch() string
	// Nodes returns the number of servable nodes.
	Nodes() int
	// Classes returns the number of output classes.
	Classes() int
	// Decoupled reports whether queries ride an embedding fast path.
	Decoupled() bool
	// Label returns a node's ground-truth class when known.
	Label(node int) (int, bool)
	// Stats snapshots the latency/throughput metrics.
	Stats() Snapshot
	// Drain retires the instance gracefully (see Server.Drain).
	Drain()
	// Close stops the instance immediately (see Server.Close).
	Close()
}

// Server is an embedded batched-inference server bound to one checkpointed
// model. Concurrent Predict calls are coalesced by a single dispatcher into
// batch windows; the numeric work of each window runs on the bounded
// parallel pool. Create with New, release with Close.
type Server struct {
	src   graph.NodeSource
	model models.Model
	arch  string

	// Decoupled fast path: non-nil emb means queries are answered from this
	// precomputed embedding via the dense head, one row at a time.
	emb  *matrix.Dense
	head []models.HeadLayer

	opt     Options
	queue   chan *request
	quit    chan struct{}
	stopped chan struct{}
	once    sync.Once

	// draining gates new Predict admissions during Drain; inflight counts
	// admitted Predict calls that have not returned yet, so Drain knows when
	// every accepted request has been answered.
	draining atomic.Bool
	inflight atomic.Int64

	// pending counts admitted-but-unanswered queried nodes — the admission
	// budget MaxPending is enforced against. windows counts executed batch
	// windows; it is owned by the dispatcher goroutine and drives the
	// deterministic chaos fault schedule.
	pending atomic.Int64
	windows int

	metrics Metrics
}

// withDefaults resolves the Options defaults shared by every constructor.
func (opt Options) withDefaults() (Options, error) {
	if opt.MaxBatch == 0 {
		opt.MaxBatch = DefaultMaxBatch
	}
	if opt.MaxBatch < 1 {
		return opt, fmt.Errorf("serve: New: MaxBatch %d < 1", opt.MaxBatch)
	}
	if opt.MaxWait < 0 {
		opt.MaxWait = DefaultMaxWait
	}
	if opt.MaxPending == 0 {
		opt.MaxPending = DefaultMaxPending
	}
	if opt.RequestTimeout < 0 {
		return opt, fmt.Errorf("serve: New: RequestTimeout %v < 0", opt.RequestTimeout)
	}
	return opt, nil
}

// New rebuilds the checkpointed model and starts the batching dispatcher.
// Decoupled architectures pay their propagation exactly once here, so the
// construction cost covers all future queries.
func New(ck *checkpoint.Checkpoint, opt Options) (*Server, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	m, err := ck.Model(opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("serve: New: %w", err)
	}
	return newServer(ck.Graph, m, ck.Arch, opt), nil
}

// NewFromModel starts a server over an already-built model bound to src.
// The sharded serving layer uses it to put the batching dispatcher, metrics
// and admission control in front of a shard-routed engine; single-process
// callers normally go through New.
func NewFromModel(src graph.NodeSource, m models.Model, arch string, opt Options) (*Server, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if src == nil || m == nil {
		return nil, fmt.Errorf("serve: NewFromModel: nil source or model")
	}
	return newServer(src, m, arch, opt), nil
}

// NewFromFactors starts a decoupled server directly from a precomputed
// embedding and head — no checkpoint or model rebuild. Each shard of a
// sharded graph serves its local embedding slab this way: emb holds one row
// per src node (shard-local ids), and the head weights are shared across
// shards.
func NewFromFactors(src graph.NodeSource, emb *matrix.Dense, head []models.HeadLayer, arch string, opt Options) (*Server, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if src == nil || emb == nil {
		return nil, fmt.Errorf("serve: NewFromFactors: nil source or embedding")
	}
	if emb.Rows != src.NumNodes() {
		return nil, fmt.Errorf("serve: NewFromFactors: embedding has %d rows for %d nodes", emb.Rows, src.NumNodes())
	}
	s := newServer(src, nil, arch, opt)
	s.emb, s.head = emb, head
	return s, nil
}

// newServer assembles a server over resolved options and starts its
// dispatcher.
func newServer(src graph.NodeSource, m models.Model, arch string, opt Options) *Server {
	s := &Server{
		src: src, model: m, arch: arch, opt: opt,
		queue:   make(chan *request, 4*opt.MaxBatch),
		quit:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	if dec, ok := m.(models.Decoupled); ok {
		s.emb, s.head = dec.InferenceFactors()
	}
	s.metrics.tel = newTelSeries(arch)
	s.metrics.reset()
	go s.dispatch()
	return s
}

// Arch returns the served architecture's registry name.
func (s *Server) Arch() string { return s.arch }

// Nodes returns the number of servable nodes (the graph size).
func (s *Server) Nodes() int { return s.src.NumNodes() }

// Classes returns the number of output classes.
func (s *Server) Classes() int { return s.src.NumClasses() }

// Decoupled reports whether queries ride the precomputed-embedding fast
// path (true) or a per-window full propagation (false).
func (s *Server) Decoupled() bool { return s.emb != nil }

// Predict classifies the given nodes, blocking until the batch window
// containing them has run. Node ids outside the graph yield a named-op
// error before any work is enqueued; a closed server yields an error too.
// Results are bit-identical for every batch size, window and worker count.
// Equivalent to PredictCtx with a background context: the only deadline is
// Options.RequestTimeout, the only shed admission control.
func (s *Server) Predict(nodes []int) ([]Prediction, error) {
	return s.PredictCtx(context.Background(), nodes)
}

// PredictCtx is Predict under a caller-supplied context. The effective
// deadline is the context's when it carries one, else Options.RequestTimeout
// when set; a request that misses it — queued too long, or stuck behind a
// slow batch window — fails with ErrDeadline while the rest of its window
// completes normally with bit-identical answers. Requests that would exceed
// the pending-node budget (Options.MaxPending) are shed immediately with
// ErrOverloaded. Every admitted request is answered exactly once: with
// predictions, or with exactly one of ErrDeadline/ErrModelPanic/ErrClosed.
func (s *Server) PredictCtx(ctx context.Context, nodes []int) ([]Prediction, error) {
	preds, err := s.predictCtx(ctx, nodes)
	// Metrics for the failure modes are counted here, at the single point
	// every Predict outcome funnels through, so a request shed or expired on
	// either side (caller or dispatcher) is counted exactly once.
	switch {
	case errors.Is(err, ErrOverloaded):
		s.metrics.recordShed()
	case errors.Is(err, ErrDeadline):
		s.metrics.recordDeadline()
	case errors.Is(err, ErrModelPanic):
		s.metrics.recordPanic()
	}
	return preds, err
}

// predictCtx validates, admits, enqueues and awaits one request.
func (s *Server) predictCtx(ctx context.Context, nodes []int) ([]Prediction, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("serve: Predict: empty node list")
	}
	for _, v := range nodes {
		if v < 0 || v >= s.src.NumNodes() {
			return nil, fmt.Errorf("serve: Predict: node %d outside graph of %d nodes", v, s.src.NumNodes())
		}
	}
	// Admission control for Drain: the inflight increment must precede the
	// draining check (both are sequentially consistent atomics), so Drain —
	// which stores draining before polling inflight — either turns this call
	// away here or observes its inflight count and waits for its answer.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		return nil, ErrDraining
	}
	// Admission control for load: shed when the pending-node budget is
	// exhausted — unless nothing is pending, so one request larger than the
	// whole budget (a full-graph query) still makes progress.
	n := int64(len(nodes))
	if budget := int64(s.opt.MaxPending); budget > 0 {
		for {
			cur := s.pending.Load()
			if cur > 0 && cur+n > budget {
				return nil, fmt.Errorf("serve: Predict: %d nodes pending, %d more would exceed budget %d: %w",
					cur, n, budget, ErrOverloaded)
			}
			if s.pending.CompareAndSwap(cur, cur+n) {
				break
			}
		}
	} else {
		s.pending.Add(n)
	}
	defer s.pending.Add(-n)

	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline && s.opt.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opt.RequestTimeout)
		defer cancel()
		deadline, hasDeadline = ctx.Deadline()
	}
	// The trace ID rides the request struct (not a context) so the
	// dispatcher can stamp window spans without touching caller contexts.
	// Only callers that arrive WITH a trace (the HTTP middleware injects
	// one for every request) get spans; embedded in-process Predict calls
	// mint an ID for correlation — a single atomic add that never touches
	// any seeded RNG stream — but pay no recording cost on the hot path.
	trace, hasTrace := telemetry.TraceFrom(ctx)
	if !hasTrace {
		trace = telemetry.NewTraceID()
	}
	req := &request{
		nodes:  append([]int(nil), nodes...),
		trace:  trace,
		traced: hasTrace,
		enq:    time.Now(),
		done:   make(chan struct{}),
	}
	if hasDeadline {
		req.deadline = deadline
	}
	if hasTrace {
		sp := telemetry.DefaultTracer().Span(trace, "serve.request")
		defer func() {
			if sp != nil {
				sp.Attr("arch", s.arch).Attr("nodes", len(nodes)).End()
			}
		}()
	}
	select {
	case s.queue <- req:
	case <-ctx.Done():
		return nil, fmt.Errorf("serve: Predict: expired before enqueue: %w", ErrDeadline)
	case <-s.quit:
		return nil, ErrClosed
	}
	// The enqueue above can win its select race against a concurrent Close
	// (both channels ready), leaving the request in a queue no dispatcher
	// will drain — so waiting must also watch for dispatcher exit. A context
	// expiry while waiting abandons the answer (the dispatcher will also
	// notice the lapsed deadline and skip the work when it opens the window).
	select {
	case <-req.done:
	case <-ctx.Done():
		return nil, fmt.Errorf("serve: Predict: expired in queue: %w", ErrDeadline)
	case <-s.stopped:
		select {
		case <-req.done: // answered (or failed) during shutdown
		default:
			return nil, ErrClosed
		}
	}
	return req.preds, req.err
}

// PredictAll classifies every node of the graph — the full-graph warm path.
func (s *Server) PredictAll() ([]Prediction, error) {
	nodes := make([]int, s.src.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	return s.Predict(nodes)
}

// Stats returns a snapshot of the server's latency/throughput metrics.
func (s *Server) Stats() Snapshot { return s.metrics.snapshot() }

// Label returns node's ground-truth class and whether the serving graph
// carries a label for it. The registry layer uses it for online-accuracy
// accounting (per-model stats, A/B reports) without reaching into the graph.
func (s *Server) Label(node int) (int, bool) { return s.src.Label(node) }

// Drain gracefully retires the server: new Predict calls are turned away
// with ErrDraining (which wraps ErrClosed) immediately, every
// already-admitted call is answered by the dispatcher as usual, and only
// then is the batcher stopped. Safe to call
// more than once and concurrently with Close; blocks until the dispatcher
// has exited. This is what lets a registry swap checkpoints with zero
// dropped requests: in-flight batch windows finish on the old model while
// new requests route to the new one.
func (s *Server) Drain() {
	s.draining.Store(true)
	for s.inflight.Load() != 0 {
		time.Sleep(50 * time.Microsecond)
	}
	s.Close()
}

// Close stops the dispatcher and fails queued and future Predict calls.
// Safe to call more than once; blocks until the dispatcher has exited.
func (s *Server) Close() {
	s.once.Do(func() { close(s.quit) })
	<-s.stopped
}
