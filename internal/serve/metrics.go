package serve

import (
	"sort"
	"sync"
	"time"
)

// latWindow bounds the latency reservoir: percentiles are computed over the
// most recent latWindow completed requests.
const latWindow = 1 << 14

// Metrics accumulates per-request latency and throughput counters for one
// Server. All methods are safe for concurrent use; tests and callers only
// see it through Snapshot. Every mutation is mirrored onto the process-wide
// telemetry registry (the adafgl_serve_* families) via the cached tel
// series; the Snapshot fields themselves stay the source of truth for
// Stats(), bit-compatible with the pre-telemetry layout.
type Metrics struct {
	tel *telSeries // per-arch registry series; nil records locally only

	mu        sync.Mutex
	start     time.Time
	requests  uint64
	nodes     uint64
	batches   uint64
	shed      uint64
	deadlines uint64
	panics    uint64
	lat       []time.Duration // ring buffer of request latencies
	latNext   int
	latFull   bool
}

// reset starts the metrics epoch.
func (m *Metrics) reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.start = time.Now()
	m.requests, m.nodes, m.batches = 0, 0, 0
	m.shed, m.deadlines, m.panics = 0, 0, 0
	m.lat = make([]time.Duration, 0, 1024)
	m.latNext, m.latFull = 0, false
}

// record accounts one completed request of n queried nodes.
func (m *Metrics) record(n int, lat time.Duration) {
	if m.tel != nil {
		m.tel.requests.Inc()
		m.tel.nodes.Add(uint64(n))
		m.tel.latency.Observe(lat.Seconds())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	m.nodes += uint64(n)
	if m.latFull {
		m.lat[m.latNext] = lat
		m.latNext = (m.latNext + 1) % latWindow
	} else {
		m.lat = append(m.lat, lat)
		if len(m.lat) == latWindow {
			m.latFull = true
		}
	}
}

// recordBatch accounts one executed batch window.
func (m *Metrics) recordBatch() {
	if m.tel != nil {
		m.tel.batches.Inc()
	}
	m.mu.Lock()
	m.batches++
	m.mu.Unlock()
}

// recordShed accounts one Predict call rejected by admission control.
func (m *Metrics) recordShed() {
	if m.tel != nil {
		m.tel.shed.Inc()
	}
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// recordDeadline accounts one Predict call that missed its deadline.
func (m *Metrics) recordDeadline() {
	if m.tel != nil {
		m.tel.deadlines.Inc()
	}
	m.mu.Lock()
	m.deadlines++
	m.mu.Unlock()
}

// recordPanic accounts one Predict call failed by an engine panic.
func (m *Metrics) recordPanic() {
	if m.tel != nil {
		m.tel.panics.Inc()
	}
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// Snapshot is a point-in-time view of a Server's serving metrics.
type Snapshot struct {
	// Requests is the number of completed Predict calls.
	Requests uint64 `json:"requests"`
	// Nodes is the total number of node queries answered.
	Nodes uint64 `json:"nodes"`
	// Batches is the number of executed batch windows.
	Batches uint64 `json:"batches"`
	// Shed is the number of Predict calls rejected by admission control
	// (ErrOverloaded).
	Shed uint64 `json:"shed"`
	// Deadlines is the number of Predict calls that missed their deadline
	// (ErrDeadline).
	Deadlines uint64 `json:"deadlines"`
	// Panics is the number of Predict calls failed by a recovered engine
	// panic (ErrModelPanic).
	Panics uint64 `json:"panics"`
	// MeanBatch is Nodes/Batches — the achieved coalescing factor.
	MeanBatch float64 `json:"mean_batch"`
	// P50 and P99 are request-latency percentiles over the recent window.
	P50 time.Duration `json:"p50_ns"`
	// P99 is the 99th-percentile request latency.
	P99 time.Duration `json:"p99_ns"`
	// Elapsed is the time since the server started.
	Elapsed time.Duration `json:"elapsed_ns"`
	// QueriesPerSec is Nodes/Elapsed — end-to-end node-query throughput.
	QueriesPerSec float64 `json:"queries_per_sec"`
}

// snapshot computes the current Snapshot. The latency window is copied
// under the lock but sorted outside it: sorting 16K samples must not stall
// the dispatcher's record() path (and with it every in-flight Predict)
// while a stats poller computes percentiles.
func (m *Metrics) snapshot() Snapshot {
	m.mu.Lock()
	s := Snapshot{
		Requests: m.requests, Nodes: m.nodes, Batches: m.batches,
		Shed: m.shed, Deadlines: m.deadlines, Panics: m.panics,
		Elapsed: time.Since(m.start),
	}
	if m.batches > 0 {
		s.MeanBatch = float64(m.nodes) / float64(m.batches)
	}
	if s.Elapsed > 0 {
		s.QueriesPerSec = float64(m.nodes) / s.Elapsed.Seconds()
	}
	sorted := append([]time.Duration(nil), m.lat...)
	m.mu.Unlock()

	if len(sorted) > 0 {
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.P50 = sorted[len(sorted)/2]
		s.P99 = sorted[(len(sorted)*99)/100]
	}
	return s
}
