package serve

import (
	"context"
	"fmt"
	"time"

	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// request is one in-flight Predict call from enqueue to completion. A
// non-zero deadline is enforced twice: by the caller's context select while
// waiting, and by the dispatcher when it opens the window — an expired
// request is failed with ErrDeadline instead of computed, so a stale caller
// never costs engine work. trace is the caller's telemetry trace ID, carried
// so the window span and the sharded engine's exchange spans join the same
// trace.
type request struct {
	nodes []int
	trace telemetry.TraceID
	// traced marks requests whose caller context carried the trace (HTTP
	// requests via the TraceHTTP middleware); only those pay for span
	// recording — embedded Predict calls stay span-free on the hot path.
	traced   bool
	enq      time.Time
	deadline time.Time
	preds    []Prediction
	err      error
	done     chan struct{}
}

// dispatch is the batching loop: one goroutine owns the model and coalesces
// queued requests into windows of at most MaxBatch queried nodes, waiting at
// most MaxWait for a window to fill. Single ownership means the engine never
// needs a lock around model state, and window boundaries can never change
// results — every per-node answer is computed by a row-independent kernel.
func (s *Server) dispatch() {
	defer close(s.stopped)
	for {
		var first *request
		select {
		case first = <-s.queue:
		case <-s.quit:
			s.failPending()
			return
		}
		batch := []*request{first}
		n := len(first.nodes)
		if s.opt.MaxWait > 0 && n < s.opt.MaxBatch {
			timer := time.NewTimer(s.opt.MaxWait)
		fill:
			for n < s.opt.MaxBatch {
				select {
				case r := <-s.queue:
					batch = append(batch, r)
					n += len(r.nodes)
				case <-timer.C:
					break fill
				case <-s.quit:
					// Serve what is already collected, then unwind.
					timer.Stop()
					s.runBatch(batch)
					s.failPending()
					return
				}
			}
			timer.Stop()
		} else {
			// Immediate mode: take whatever is already queued, never block.
		drain:
			for n < s.opt.MaxBatch {
				select {
				case r := <-s.queue:
					batch = append(batch, r)
					n += len(r.nodes)
				default:
					break drain
				}
			}
		}
		s.runBatch(batch)
	}
}

// failPending drains the queue after Close and fails the callers.
func (s *Server) failPending() {
	for {
		select {
		case r := <-s.queue:
			r.err = ErrClosed
			close(r.done)
		default:
			return
		}
	}
}

// runBatch answers one window: requests whose deadline already lapsed are
// failed with ErrDeadline without costing engine work, then a single logits
// source is produced for the union of the surviving queried nodes — the
// decoupled embedding head on gathered rows, or one full plan-reused
// propagation — and scattered back per request. Dropping expired requests
// never changes survivors' answers: every per-node result is computed by a
// row-independent kernel, so window composition cannot leak between rows.
// An engine panic (a model bug, or injected chaos) is recovered here and
// fails only this window's live requests with ErrModelPanic — the
// dispatcher, and with it the server, keeps running.
func (s *Server) runBatch(batch []*request) {
	s.windows++
	now := time.Now()
	live := batch[:0]
	for _, r := range batch {
		if !r.deadline.IsZero() && now.After(r.deadline) {
			r.err = fmt.Errorf("serve: Predict: expired before batch window: %w", ErrDeadline)
			close(r.done)
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}

	var ids []int
	for _, r := range live {
		ids = append(ids, r.nodes...)
	}
	// The window runs under the first traced live request's trace: batch
	// windows have no identity of their own, so the span that paid for the
	// engine pass joins the trace that opened the window. The context
	// carries observability identity only — the engine's numeric work never
	// reads it. Windows with no traced request (embedded callers) skip the
	// span and the context allocation entirely.
	wctx := context.Background()
	var wsp *telemetry.Span
	for _, r := range live {
		if r.traced {
			wctx = telemetry.ContextWithTrace(wctx, r.trace)
			wsp = telemetry.DefaultTracer().Span(r.trace, "serve.window")
			break
		}
	}
	rows, err := s.safeLogitsFor(wctx, ids)
	if wsp != nil {
		wsp.Attr("requests", len(live)).Attr("nodes", len(ids)).End()
	}
	if err != nil {
		for _, r := range live {
			r.err = err
			close(r.done)
		}
		return
	}

	off := 0
	for _, r := range live {
		r.preds = make([]Prediction, len(r.nodes))
		for i, node := range r.nodes {
			row := rows.Row(off + i)
			logits := append([]float64(nil), row...)
			r.preds[i] = Prediction{Node: node, Class: rowArgmax(row), Logits: logits}
		}
		off += len(r.nodes)
		s.metrics.record(len(r.nodes), time.Since(r.enq))
		close(r.done)
	}
	s.metrics.recordBatch()
	// The pending gauge is sampled every 64th window (from the admission
	// counter the budget is enforced against) instead of updated on every
	// Predict: the gauge is a load indicator, and sampling it keeps the
	// per-request path free of gauge traffic.
	if tel := s.metrics.tel; tel != nil && s.windows%64 == 0 {
		tel.pending.Set(float64(s.pending.Load()))
	}
}

// safeLogitsFor runs the model engine for one window behind a recover
// barrier, converting a panic — and the chaos schedule's injected faults —
// into an ErrModelPanic the window's requests fail with. The fault schedule
// keys off s.windows, owned by this (the dispatcher's) goroutine, so a
// seeded scenario injects the same faults at the same windows on every run.
func (s *Server) safeLogitsFor(ctx context.Context, ids []int) (rows *matrix.Dense, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			rows = nil
			err = fmt.Errorf("serve: Predict: engine panic: %v: %w", rec, ErrModelPanic)
		}
	}()
	if c := s.opt.Chaos; c.active() {
		if c.DelayEvery > 0 && c.Delay > 0 && s.windows%c.DelayEvery == 0 {
			time.Sleep(c.Delay)
		}
		if c.PanicEvery > 0 && s.windows%c.PanicEvery == 0 {
			panic(fmt.Sprintf("chaos: injected engine panic at window %d", s.windows))
		}
	}
	return s.logitsFor(ctx, ids), nil
}

// logitsFor computes the class-score rows for ids, in order.
func (s *Server) logitsFor(ctx context.Context, ids []int) *matrix.Dense {
	if s.emb == nil {
		// Coupled path: one full propagation per window (the plan cached on
		// the graph is reused across windows), then a row gather. An engine
		// that accepts the window context (the sharded forward) gets it, so
		// its halo-exchange spans join the request trace.
		var full *matrix.Dense
		if cm, ok := s.model.(CtxModel); ok {
			full = cm.LogitsCtx(ctx, false)
		} else {
			full = s.model.Logits(false)
		}
		out := matrix.New(len(ids), full.Cols)
		for i, id := range ids {
			copy(out.Row(i), full.Row(id))
		}
		return out
	}
	// Decoupled path: gather cached embedding rows and run the dense head
	// row-wise. Each output row depends only on its own input row and the
	// head weights, evaluated in a fixed sequential order — that is what
	// makes predictions bit-identical across batch compositions and worker
	// counts.
	in := matrix.New(len(ids), s.emb.Cols)
	for i, id := range ids {
		copy(in.Row(i), s.emb.Row(id))
	}
	return ApplyHead(s.head, in)
}

// ApplyHead evaluates a dense head on every row of in: per row, a sequence
// of GEMVs (out_j = b_j + Σ_k in_k·W_kj, bias first, k ascending) with
// optional ReLU. Rows fan out over the bounded pool; within a row the
// accumulation order is fixed, so results never depend on batching, worker
// count — or, because each row is computed alone, on which row subset
// (shard) it is evaluated in. That row-subset stability is what lets the
// sharded serving path in internal/shard reuse this exact kernel and stay
// bit-identical to the single-process server.
func ApplyHead(head []models.HeadLayer, in *matrix.Dense) *matrix.Dense {
	cur := in
	for _, l := range head {
		out := matrix.New(cur.Rows, l.W.Cols)
		src, w := cur, l
		parallel.For(cur.Rows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := src.Row(i)
				orow := out.Row(i)
				copy(orow, w.Bias)
				for k, x := range row {
					wrow := w.W.Row(k)
					for j, wv := range wrow {
						orow[j] += x * wv
					}
				}
				if w.ReLU {
					for j, v := range orow {
						if v < 0 {
							orow[j] = 0
						}
					}
				}
			}
		})
		cur = out
	}
	return cur
}

// rowArgmax returns the first index of the row maximum (the tie rule of
// matrix.ArgmaxRows, applied to one row).
func rowArgmax(row []float64) int {
	best := 0
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return best
}
