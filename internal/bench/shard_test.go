package bench

import (
	"strings"
	"testing"
)

// TestShardExperiment runs the scaling sweep at a tiny node count and checks
// the report's shape: header, one row per shard count, and the bit-identity
// overlap check passing.
func TestShardExperiment(t *testing.T) {
	s := tinyScale()
	s.ShardNodes = 3000
	s.ShardMax = 4
	lines, err := ShardExp(s)
	if err != nil {
		t.Fatal(err)
	}
	// 2 header lines + rows for shards 1, 2, 4 + the overlap line.
	if len(lines) != 6 {
		t.Fatalf("shard lines = %d, want 6: %q", len(lines), lines)
	}
	for i, shards := range []string{"1", "2", "4"} {
		if !strings.HasPrefix(strings.TrimSpace(lines[2+i]), shards+" ") {
			t.Fatalf("row %d = %q, want shard count %s", i, lines[2+i], shards)
		}
	}
	if !strings.Contains(lines[5], "bit-identical") {
		t.Fatalf("missing overlap check line: %q", lines[5])
	}
}

// TestShardExperimentDefaults checks the zero-value Scale falls back to the
// smoke defaults rather than a degenerate sweep.
func TestShardExperimentDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("60k-node default sweep skipped in -short mode")
	}
	lines, err := ShardExp(Scale{Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 2 headers + shards 1,2,4,8 + overlap line.
	if len(lines) != 7 {
		t.Fatalf("default shard lines = %d, want 7: %q", len(lines), lines)
	}
}
