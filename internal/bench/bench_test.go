package bench

import (
	"strings"
	"testing"
)

// tinyScale keeps harness tests fast.
func tinyScale() Scale {
	return Scale{Factor: 0.08, Clients: 3, Rounds: 6, LocalEpochs: 1, Runs: 1, AdaEpochs: 15, Correction: 5, Seed: 1}
}

func TestMakeSplitKinds(t *testing.T) {
	s := tinyScale()
	for _, kind := range []SplitKind{Community, NonIID, NonIIDMeta} {
		subs, err := MakeSplit("Cora", kind, s, 1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(subs) != s.Clients {
			t.Fatalf("%v: %d subgraphs, want %d", kind, len(subs), s.Clients)
		}
	}
	if _, err := MakeSplit("bogus", Community, s, 1); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestResolveMethod(t *testing.T) {
	s := tinyScale()
	for _, name := range []string{"AdaFGL", "GCN", "FedGL", "GCFL+", "FedSage+", "FED-PUB", "GloGNN"} {
		m, err := ResolveMethod(name, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() == "" {
			t.Fatalf("%s: empty name", name)
		}
	}
	if _, err := ResolveMethod("nope", s); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestRunCellProducesStats(t *testing.T) {
	s := tinyScale()
	s.Runs = 2
	c, err := RunCell("Cora", Community, "GCN", s)
	if err != nil {
		t.Fatal(err)
	}
	if c.Mean <= 0 || c.Mean > 1 {
		t.Fatalf("mean %v outside (0,1]", c.Mean)
	}
	if len(c.Curve) != s.Rounds {
		t.Fatalf("curve len %d, want %d", len(c.Curve), s.Rounds)
	}
	if len(c.PerClient) != s.Clients {
		t.Fatalf("per-client len %d, want %d", len(c.PerClient), s.Clients)
	}
}

func TestMeanStd(t *testing.T) {
	m, sd := meanStd([]float64{1, 2, 3})
	if m != 2 {
		t.Fatalf("mean %v", m)
	}
	if sd != 1 {
		t.Fatalf("std %v", sd)
	}
	if m, sd = meanStd(nil); m != 0 || sd != 0 {
		t.Fatal("empty meanStd must be 0,0")
	}
	if _, sd = meanStd([]float64{5}); sd != 0 {
		t.Fatal("single-value std must be 0")
	}
}

func TestTable1Lines(t *testing.T) {
	lines, err := Table1(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 14 { // title + header + 12 datasets
		t.Fatalf("Table1 lines = %d, want 14", len(lines))
	}
	if !strings.Contains(lines[2], "Cora") {
		t.Fatalf("first dataset row = %q", lines[2])
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table3i", "table4", "table5", "table6", "table7", "table8",
		"fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "gemm", "spmm", "async", "chaos", "serve", "zoo", "torture", "shard", "obs"}
	for _, id := range want {
		if _, ok := Experiments[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(Experiments) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(Experiments), len(want))
	}
}

func TestGEMMExperiment(t *testing.T) {
	lines, err := GEMM(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// Header (3 lines) + one row per size.
	if len(lines) != 6 {
		t.Fatalf("GEMM lines = %d, want 6", len(lines))
	}
	if !strings.Contains(lines[3], "128x128") || !strings.Contains(lines[3], "x") {
		t.Fatalf("first size row = %q", lines[3])
	}
}

func TestSpMMExperiment(t *testing.T) {
	lines, err := SpMM(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// Header (3 lines) + one row per case, the last being the engine's
	// 50k-node / avg-degree-20 / 64-column acceptance configuration.
	if len(lines) != 7 {
		t.Fatalf("SpMM lines = %d, want 7", len(lines))
	}
	if !strings.Contains(lines[6], "50000n/d20 x 64") {
		t.Fatalf("acceptance row = %q", lines[6])
	}
}

func TestAsyncExperiment(t *testing.T) {
	s := tinyScale()
	s.Rounds = 8
	lines, err := Async(s)
	if err != nil { // includes the K=N vs Server.Run bit-parity cross-check
		t.Fatal(err)
	}
	// Header (3 lines) + sync + async K=N + rows for K in {N-1, ceil(N/2), 1}
	// (deduplicated at tiny client counts).
	if len(lines) < 7 {
		t.Fatalf("Async lines = %d: %v", len(lines), lines)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"sync", "async K=", "staleness"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}

func TestServeExperiment(t *testing.T) {
	s := tinyScale()
	lines, err := Serve(s) // includes the batched-vs-unbatched bit-identity cross-check
	if err != nil {
		t.Fatal(err)
	}
	// Header + (single, batched) per arch in {GCN, SGC}.
	if len(lines) != 5 {
		t.Fatalf("Serve lines = %d: %v", len(lines), lines)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"single", "batched", "speedup", "bit-identical ok", "GCN", "SGC"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("serve output missing %q:\n%s", want, joined)
		}
	}
}

func TestZooExperiment(t *testing.T) {
	s := tinyScale()
	lines, err := Zoo(s) // includes routed-vs-direct bit-identity and the overhead bound
	if err != nil {
		t.Fatal(err)
	}
	// Header + roster + routing line + A/B header + 2 arms + delta.
	if len(lines) != 7 {
		t.Fatalf("Zoo lines = %d: %v", len(lines), lines)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"3 artifacts", "fedgcn@1:GCN", "fedsgc@1:SGC", "adafgl@1:GCN",
		"routing", "overhead", "bit-identical ok", "A/B", "control", "candidate", "delta"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("zoo output missing %q:\n%s", want, joined)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("nope", tinyScale()); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestTable8Paradigms(t *testing.T) {
	lines, err := Table8(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 7 { // title + header + 5 methods
		t.Fatalf("Table8 lines = %d: %v", len(lines), lines)
	}
	if !strings.Contains(lines[len(lines)-1], "AdaFGL") {
		t.Fatal("AdaFGL row missing")
	}
}

func TestFig2Smoke(t *testing.T) {
	lines, err := Fig2(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"FIG 2(a)", "FIG 2(b)", "FIG 2(c)", "FIG 2(d)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing section %s", want)
		}
	}
}

func TestFig7HCSTracking(t *testing.T) {
	lines, err := Fig7(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) < 13 { // title + 6 datasets × 2 splits
		t.Fatalf("Fig7 lines = %d", len(lines))
	}
}

func TestSplitKindString(t *testing.T) {
	if Community.String() != "Community" || NonIID.String() != "Non-iid" || NonIIDMeta.String() != "Non-iid(meta)" {
		t.Fatal("SplitKind strings wrong")
	}
	if SplitKind(99).String() != "?" {
		t.Fatal("unknown kind must render ?")
	}
}

func TestChaosExperiment(t *testing.T) {
	s := tinyScale()
	lines, err := Chaos(s)
	if err != nil { // includes the steady-scenario bit-identity cross-checks
		t.Fatal(err)
	}
	// Title + cross-check + header + 6 scenarios x 4 aggregators + headline.
	if len(lines) != 3+6*4+1 {
		t.Fatalf("Chaos lines = %d, want %d:\n%s", len(lines), 3+6*4+1, strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[1], "cross-check passed") {
		t.Fatalf("cross-check line = %q", lines[1])
	}
	for _, scen := range []string{"steady", "churn", "crashrejoin", "byz-labelflip", "byz-signflip", "byz-scale"} {
		found := false
		for _, l := range lines {
			if strings.HasPrefix(l, scen) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no table row for scenario %s", scen)
		}
	}
	if !strings.HasPrefix(lines[len(lines)-1], "headline:") {
		t.Fatalf("missing degradation headline, last line %q", lines[len(lines)-1])
	}
}
