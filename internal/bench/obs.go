package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// obsReps is how many paired repetitions the overhead measurement runs; each
// times both modes back-to-back and the median on/off ratio is reported,
// which discards noise bursts confined to single repetitions.
const obsReps = 7

// obsQueries is the sequential full-window request count per repetition:
// each request queries DefaultMaxBatch nodes, so every request is exactly
// one batch window — the unit of engine work the serving layer is built
// around, and the scale instrumentation cost must be judged against.
const obsQueries = 800

// obsChunk is how many windows each timed slice runs before the modes swap;
// at roughly a millisecond per slice, noise bursts span both modes of a pair
// instead of skewing one.
const obsChunk = 25

// obsMaxOverheadPct is the acceptance ceiling on hot-path instrumentation
// overhead (the ISSUE's <= 3% budget).
const obsMaxOverheadPct = 3.0

// obsCoreFamilies are the metric families every instrumented layer must
// expose; their presence in one scrape proves the registrations are linked.
var obsCoreFamilies = []string{
	"adafgl_serve_requests_total",
	"adafgl_serve_request_latency_seconds",
	"adafgl_registry_cold_starts_total",
	"adafgl_shard_exchange_total",
	"adafgl_federated_rounds_total",
	"adafgl_parallel_pool_tasks_total",
}

// Obs proves the telemetry layer's two contracts. Correctness: with metrics
// and tracing fully enabled, served predictions and a short federated
// training run are bit-identical to a telemetry-disabled run, and the
// Prometheus exposition is structurally valid with every layer's core
// families present. Cost: the enabled instruments add at most
// obsMaxOverheadPct to the hot serve path, measured as the median paired
// enabled/disabled ratio over storms of sequential full-window requests on
// an SGC server (the cheapest per-window engine, hence the most
// overhead-sensitive).
func Obs(s Scale) ([]string, error) {
	defer telemetry.SetEnabled(telemetry.SetEnabled(true))
	factor := s.Factor
	if factor <= 0 {
		factor = 0.5 // quickstart scale
	}
	ck, err := serveCheckpoint("SGC", factor, s)
	if err != nil {
		return nil, err
	}

	// Bit-identity, serving: the same concurrent load with telemetry on and
	// off must answer every node with bitwise-equal logits.
	opt := serve.Options{MaxBatch: serveConc, MaxWait: 2 * time.Millisecond, Seed: s.Seed}
	_, onPreds, err := serveLoad(ck, opt)
	if err != nil {
		return nil, err
	}
	telemetry.SetEnabled(false)
	_, offPreds, err := serveLoad(ck, opt)
	telemetry.SetEnabled(true)
	if err != nil {
		return nil, err
	}
	if err := comparePreds(onPreds, offPreds); err != nil {
		return nil, fmt.Errorf("bench: obs: serve telemetry on vs off: %w", err)
	}

	// Bit-identity, training: a short federated run repeated under both
	// telemetry states must land on bitwise-equal global parameters.
	onParams, err := obsFedRun(s, factor, true)
	if err != nil {
		return nil, err
	}
	offParams, err := obsFedRun(s, factor, false)
	if err != nil {
		return nil, err
	}
	if len(onParams) != len(offParams) {
		return nil, fmt.Errorf("bench: obs: federated param dims differ: %d vs %d", len(onParams), len(offParams))
	}
	for i := range onParams {
		if onParams[i] != offParams[i] {
			return nil, fmt.Errorf("bench: obs: federated param %d differs bitwise: %v vs %v", i, onParams[i], offParams[i])
		}
	}

	// Overhead: sequential full-window requests against one live server,
	// alternating modes within every repetition so drift hits both equally.
	// The engine runs single-worker for the measurement: pool scheduling
	// noise would otherwise dwarf the nanosecond-scale instrument costs,
	// and the per-request telemetry path is identical for every worker
	// count.
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	srv, err := serve.New(ck, serve.Options{Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	span := serve.DefaultMaxBatch
	if span > srv.Nodes() {
		span = srv.Nodes()
	}
	nodes := make([]int, span)
	chunk := func(on bool, q0, k int) (time.Duration, error) {
		telemetry.SetEnabled(on)
		defer telemetry.SetEnabled(true)
		start := time.Now()
		for q := q0; q < q0+k; q++ {
			for i := range nodes {
				nodes[i] = (q*span + i) % srv.Nodes()
			}
			if _, err := srv.Predict(nodes); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	// One discarded warmup pass per mode heats caches, page tables and CPU
	// frequency before anything is timed — cold first invocations otherwise
	// land in the measurement.
	for _, on := range []bool{false, true} {
		if _, err := chunk(on, 0, obsQueries); err != nil {
			return nil, err
		}
	}
	// The two modes alternate in millisecond-scale chunks of obsChunk windows
	// (order flipping per chunk and per rep) so scheduler or VM noise bursts
	// span both modes of a pair instead of landing in one 30ms mode-block.
	// Each repetition's accumulated on/off ratio is one sample; the median
	// over obsReps is the overhead estimate, robust against reps that catch a
	// sustained burst.
	ratios := make([]float64, 0, obsReps)
	total := map[bool]time.Duration{}
	for rep := 0; rep < obsReps; rep++ {
		times := map[bool]time.Duration{}
		for q := 0; q < obsQueries; q += obsChunk {
			k := obsChunk
			if q+k > obsQueries {
				k = obsQueries - q
			}
			order := []bool{false, true}
			if (rep+q/obsChunk)%2 == 1 {
				order[0], order[1] = order[1], order[0]
			}
			for _, on := range order {
				d, err := chunk(on, q, k)
				if err != nil {
					return nil, err
				}
				times[on] += d
			}
		}
		total[false] += times[false]
		total[true] += times[true]
		ratios = append(ratios, times[true].Seconds()/times[false].Seconds())
	}
	sort.Float64s(ratios)
	overheadPct := 100 * (ratios[len(ratios)/2] - 1)
	if overheadPct > obsMaxOverheadPct {
		return nil, fmt.Errorf("bench: obs: telemetry overhead %.2f%% exceeds %.1f%% budget (median of %d chunk-interleaved reps; total on %v vs off %v)",
			overheadPct, obsMaxOverheadPct, obsReps, total[true], total[false])
	}

	// Exposition: one scrape of the process registry must be structurally
	// valid and cover every instrumented layer.
	var buf bytes.Buffer
	if err := telemetry.Default().WritePrometheus(&buf); err != nil {
		return nil, err
	}
	if err := telemetry.CheckExposition(buf.Bytes()); err != nil {
		return nil, fmt.Errorf("bench: obs: exposition invalid: %w", err)
	}
	for _, famName := range obsCoreFamilies {
		if !telemetry.HasFamily(buf.Bytes(), famName) {
			return nil, fmt.Errorf("bench: obs: exposition missing family %s", famName)
		}
	}
	seen, kept := telemetry.DefaultTracer().Stats()

	return []string{
		fmt.Sprintf("Observability: telemetry on vs off, SGC nodes=%d, %d sequential %d-node windows x %d paired reps",
			ck.Graph.N, obsQueries, span, obsReps),
		fmt.Sprintf("serve  preds bit-identical over %d nodes; federated params bit-identical over dim %d",
			len(onPreds), len(onParams)),
		fmt.Sprintf("hot path  off=%-8v on=%-8v overhead %+.2f%% median of %d chunk-interleaved reps (budget %.1f%%)",
			total[false].Round(time.Microsecond), total[true].Round(time.Microsecond), overheadPct, obsReps, obsMaxOverheadPct),
		fmt.Sprintf("exposition %d bytes valid; %d core families present; tracer %d/%d spans kept",
			buf.Len(), len(obsCoreFamilies), kept, seen),
	}, nil
}

// obsFedRun executes the short training run of the bit-identity pair under
// the given telemetry state and returns the final global parameters.
func obsFedRun(s Scale, factor float64, enabled bool) ([]float64, error) {
	telemetry.SetEnabled(enabled)
	defer telemetry.SetEnabled(true)
	spec, err := datasets.ByName("Cora")
	if err != nil {
		return nil, err
	}
	g := datasets.GenerateScaled(spec, factor, s.Seed)
	cd := partition.CommunitySplit(g, 5, rand.New(rand.NewSource(s.Seed+101)))
	clients := federated.BuildClients(cd.Subgraphs, models.Registry["SGC"], s.cfg(), s.Seed)
	opt := s.fedOpts(s.Seed)
	if opt.Rounds > 5 {
		opt.Rounds = 5 // the pair only needs enough rounds to exercise the loop
	}
	res, err := federated.Run(clients, s.Seed+1, opt)
	if err != nil {
		return nil, err
	}
	return res.GlobalParams, nil
}
