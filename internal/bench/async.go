package bench

import (
	"fmt"

	"repro/internal/federated"
	"repro/internal/models"
)

// Async is the aggregation-engine experiment ("async"): sync vs async
// rounds-to-accuracy and simulated wall-clock under a skewed client-speed
// distribution. One client runs 4x slower than the rest (plus mild jitter),
// the scenario the asynchronous engine targets: the synchronous barrier pays
// the straggler every round, while K-of-N buffered commits ride the fast
// clients and fold the straggler's updates in staleness-discounted. The
// experiment cross-checks the engine's degradation contract on every run —
// the K=N async row must be bit-identical to the synchronous reference — and
// reports, per engine, the commit count and simulated time at which the run
// first reaches 95% of the synchronous final accuracy.
func Async(s Scale) ([]string, error) {
	const dataset = "Cora"
	const skew = 4.0
	newClients := func() ([]*federated.Client, error) {
		subs, err := MakeSplit(dataset, Community, s, s.Seed)
		if err != nil {
			return nil, err
		}
		return federated.BuildClients(subs, models.Registry["GCN"], s.cfg(), s.Seed), nil
	}
	probe, err := newClients()
	if err != nil {
		return nil, err
	}
	n := len(probe)
	// Clients beyond len(Slowdown) run at nominal speed, so one entry skews
	// exactly one straggler.
	speed := &federated.SpeedModel{Slowdown: []float64{skew}, Jitter: 0.05, Seed: s.Seed}

	// The experiment owns its engine configuration end to end — the global
	// -async/-async-k/-async-staleness flags (Scale.Async) must not bleed
	// into either the synchronous reference or the K sweep, or the K=N
	// bit-parity cross-check below would be comparing different protocols.
	run := func(k int) (*federated.Result, error) {
		clients, err := newClients()
		if err != nil {
			return nil, err
		}
		o := s.fedOpts(s.Seed)
		// Equal total work across engines: a K-of-N commit consumes K local
		// updates where a synchronous round consumes N, so K gets N/K times
		// the commits of the sync run (exactly Rounds at K = N, keeping the
		// bit-parity cross-check meaningful).
		o.Rounds = (o.Rounds*n + k - 1) / k
		o.Async = federated.AsyncOptions{Enabled: true, MinUpdates: k, Speed: speed}
		return federated.Run(clients, s.Seed+1, o)
	}

	// Synchronous reference (real Server.Run) and its async K=N twin, which
	// must be bit-identical and additionally carries the simulated timeline.
	syncOpts := s.fedOpts(s.Seed)
	syncOpts.Async = federated.AsyncOptions{}
	syncRes, err := federated.Run(probe, s.Seed+1, syncOpts)
	if err != nil {
		return nil, err
	}
	barrier, err := run(n)
	if err != nil {
		return nil, err
	}
	for i := range syncRes.GlobalParams {
		if barrier.GlobalParams[i] != syncRes.GlobalParams[i] {
			return nil, fmt.Errorf("bench: async K=N diverges from the synchronous reference at param %d", i)
		}
	}

	target := 0.95 * syncRes.TestAcc
	lines := []string{
		fmt.Sprintf("Async aggregation: sync vs K-of-N commits on %s, %d clients, %d rounds", dataset, n, syncOpts.Rounds),
		fmt.Sprintf("speed skew: client 0 at %.0fx, jitter 5%%; target = 95%% of sync final accuracy (%.3f)", skew, target),
		fmt.Sprintf("%-12s %9s %9s %12s %12s %10s", "engine", "final", "@target", "t(target)", "t(end)", "staleness"),
	}
	row := func(name string, r *federated.Result) {
		hitRound, hitTime := -1, 0.0
		for i, acc := range r.RoundAcc {
			if acc >= target {
				hitRound = i + 1
				if len(r.RoundTime) > i {
					hitTime = r.RoundTime[i]
				}
				break
			}
		}
		at, tTarget, tEnd := "never", "-", "-"
		if hitRound > 0 {
			at = fmt.Sprintf("r%d", hitRound)
			if len(r.RoundTime) > 0 {
				tTarget = fmt.Sprintf("%.0f", hitTime)
			}
		}
		if len(r.RoundTime) > 0 {
			tEnd = fmt.Sprintf("%.0f", r.RoundTime[len(r.RoundTime)-1])
		}
		lines = append(lines, fmt.Sprintf("%-12s %9.3f %9s %12s %12s %10.2f",
			name, r.TestAcc, at, tTarget, tEnd, r.MeanStaleness))
	}
	row("sync", syncRes)
	row(fmt.Sprintf("async K=%d", n), barrier)
	seen := map[int]bool{n: true}
	for _, k := range []int{n - 1, (n + 1) / 2, 1} {
		if k < 1 || k >= n || seen[k] {
			continue
		}
		seen[k] = true
		r, err := run(k)
		if err != nil {
			return nil, err
		}
		row(fmt.Sprintf("async K=%d", k), r)
	}
	return lines, nil
}
