package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/models"
	"repro/internal/partition"
	"repro/internal/registry"
	"repro/internal/serve"
)

// zooReqs and zooReqNodes shape the routing-overhead workload: zooReqs
// sequential predict calls of zooReqNodes nodes each, per path.
const (
	zooReqs     = 128
	zooReqNodes = 64
)

// zooOverheadLimit is the acceptance bound on the registry's routing tax:
// Registry.Predict (acquire, A/B check, per-model accounting) over a direct
// serve.Server.Predict on the same workload.
const zooOverheadLimit = 10.0 // percent

// zooTimingAttempts bounds the re-measurements allowed before the overhead
// figure is declared over budget (single-run wall times on a busy CI box are
// noisy; the min over attempts is the honest estimate of the intrinsic cost).
const zooTimingAttempts = 5

// Zoo regenerates the multi-model serving comparison: three artifacts — a
// federated GCN baseline, a federated SGC baseline and the AdaFGL Step-1
// extractor, all trained on one shared scaled Cora — are checkpointed into a
// temp directory, scanned into a model registry (internal/registry), and
// served side by side. Reported are the registry's routing overhead over a
// directly held server on the decoupled SGC path (cross-checked
// bit-identical, must stay within 10%), and the live A/B comparison of
// baseline vs AdaFGL under a 50/50 deterministic node split — the paper's
// baseline-vs-AdaFGL table as an online measurement.
func Zoo(s Scale) ([]string, error) {
	factor := s.Factor
	if factor <= 0 {
		factor = 0.5 // quickstart scale
	}

	// One shared graph and split so every artifact answers the same nodes and
	// online accuracy is comparable across arms.
	spec, err := datasets.ByName("Cora")
	if err != nil {
		return nil, err
	}
	g := datasets.GenerateScaled(spec, factor, s.Seed)
	cd := partition.CommunitySplit(g, s.Clients, partitionRNG(s.Seed))
	cfg := s.cfg()
	opt := s.fedOpts(s.Seed)
	if opt.Rounds > 10 {
		opt.Rounds = 10 // training cost is not what this experiment measures
	}

	dir, err := os.MkdirTemp("", "adafgl-zoo-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Train and persist the zoo: plain federated baselines via federated.Run,
	// AdaFGL via its two-step pipeline (the servable artifact is the Step-1
	// federated knowledge extractor).
	for _, arch := range []string{"GCN", "SGC"} {
		clients := federated.BuildClients(cloneSubs(cd.Subgraphs), models.Registry[arch], cfg, s.Seed)
		res, err := federated.Run(clients, s.Seed+1, opt)
		if err != nil {
			return nil, err
		}
		ck, err := checkpoint.FromResult(res, arch, cfg, g)
		if err != nil {
			return nil, err
		}
		name := "fedgcn"
		if arch == "SGC" {
			name = "fedsgc"
		}
		if err := checkpoint.Save(filepath.Join(dir, name+"@1.ckpt"), ck); err != nil {
			return nil, err
		}
	}
	ada := s.adaMethod()
	resAda, err := ada.Run(cloneSubs(cd.Subgraphs), cfg, opt)
	if err != nil {
		return nil, err
	}
	ckAda, err := checkpoint.FromResult(resAda, ada.Opt.ExtractorArch, cfg, g)
	if err != nil {
		return nil, err
	}
	if err := checkpoint.Save(filepath.Join(dir, "adafgl@1.ckpt"), ckAda); err != nil {
		return nil, err
	}

	reg := registry.New(registry.Options{
		Serve: serve.Options{MaxBatch: zooReqNodes, MaxWait: 0, Seed: s.Seed},
	})
	defer reg.Close()
	infos, err := reg.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	lines := []string{
		"Model zoo: registry-routed multi-model serving vs direct servers, plus live A/B",
		fmt.Sprintf("zoo: %d artifacts over %d nodes / %d classes (%s)",
			len(infos), g.N, g.Classes, zooRoster(infos)),
	}

	// Routing overhead on the decoupled SGC path: the same sequential
	// request stream answered by a directly held server and by
	// Registry.Predict, bit-identity cross-checked, wall times compared.
	overheadLine, err := zooOverhead(reg)
	if err != nil {
		return nil, err
	}
	lines = append(lines, overheadLine)

	// Live A/B: control = federated GCN baseline, candidate = AdaFGL, 50/50
	// deterministic node split on control-addressed traffic.
	abLines, err := zooAB(reg, g.N, s.Seed)
	if err != nil {
		return nil, err
	}
	return append(lines, abLines...), nil
}

// zooRoster formats "name@version(arch)" for the zoo header.
func zooRoster(infos []registry.ModelInfo) string {
	out := ""
	for i, info := range infos {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s@%d:%s", info.Name, info.Version, info.Arch)
	}
	return out
}

// zooBatch builds the node set of request i.
func zooBatch(i, n int) []int {
	nodes := make([]int, zooReqNodes)
	for j := range nodes {
		nodes[j] = ((i*zooReqNodes + j) * 13) % n
	}
	return nodes
}

// zooOverhead measures the registry's routing tax on fedsgc and enforces the
// acceptance bound. Both paths run the identical request stream; per-attempt
// wall times are compared and the minimum over attempts taken, so scheduler
// noise cannot fail a genuinely cheap path.
func zooOverhead(reg *registry.Registry) (string, error) {
	h, err := reg.Acquire("fedsgc")
	if err != nil {
		return "", err
	}
	defer h.Release()
	srv := h.Server()
	n := srv.Nodes()

	direct := func(i int) ([]serve.Prediction, error) { return srv.Predict(zooBatch(i, n)) }
	routed := func(i int) ([]serve.Prediction, error) { return reg.Predict("fedsgc", zooBatch(i, n)) }

	// Warm both paths (embedding cache, lazily started server) and
	// cross-check bit-identity on the way.
	for i := 0; i < 4; i++ {
		dp, err := direct(i)
		if err != nil {
			return "", err
		}
		rp, err := routed(i)
		if err != nil {
			return "", err
		}
		if err := comparePredSlices(dp, rp); err != nil {
			return "", fmt.Errorf("bench: zoo: routed vs direct: %w", err)
		}
	}

	var bestDirect, bestRouted, overhead time.Duration
	pct := 0.0
	for attempt := 0; attempt < zooTimingAttempts; attempt++ {
		dt, err := zooTime(direct)
		if err != nil {
			return "", err
		}
		rt, err := zooTime(routed)
		if err != nil {
			return "", err
		}
		if bestDirect == 0 || dt < bestDirect {
			bestDirect = dt
		}
		if bestRouted == 0 || rt < bestRouted {
			bestRouted = rt
		}
		overhead = bestRouted - bestDirect
		pct = 100 * float64(overhead) / float64(bestDirect)
		if pct <= zooOverheadLimit {
			break
		}
	}
	if pct > zooOverheadLimit {
		return "", fmt.Errorf("bench: zoo: routing overhead %.1f%% exceeds %.0f%% (direct %v, routed %v per %d-node request)",
			pct, zooOverheadLimit, bestDirect/zooReqs, bestRouted/zooReqs, zooReqNodes)
	}
	if pct < 0 {
		pct = 0
	}
	return fmt.Sprintf("routing: direct %v/req vs routed %v/req -> overhead %.1f%% (limit %.0f%%, %d requests x %d nodes, bit-identical ok)",
		(bestDirect / zooReqs).Round(time.Microsecond), (bestRouted / zooReqs).Round(time.Microsecond),
		pct, zooOverheadLimit, zooReqs, zooReqNodes), nil
}

// zooTime runs the zooReqs-request stream through one predict path.
func zooTime(predict func(i int) ([]serve.Prediction, error)) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < zooReqs; i++ {
		if _, err := predict(i); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// comparePredSlices requires bit-identical positional predictions.
func comparePredSlices(a, b []serve.Prediction) error {
	if len(a) != len(b) {
		return fmt.Errorf("answer lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Class != b[i].Class {
			return fmt.Errorf("position %d differs: %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].Logits {
			if a[i].Logits[j] != b[i].Logits[j] {
				return fmt.Errorf("node %d logit %d differs bitwise", a[i].Node, j)
			}
		}
	}
	return nil
}

// zooAB installs the baseline-vs-AdaFGL experiment, drives every node through
// the control-addressed endpoint, and renders the per-arm report.
func zooAB(reg *registry.Registry, n int, seed int64) ([]string, error) {
	cfg := registry.ABConfig{Control: "fedgcn", Candidate: "adafgl", Fraction: 0.5, Salt: uint64(seed)}
	if err := reg.ConfigureAB(cfg); err != nil {
		return nil, err
	}
	for at := 0; at < n; at += zooReqNodes {
		hi := at + zooReqNodes
		if hi > n {
			hi = n
		}
		nodes := make([]int, hi-at)
		for i := range nodes {
			nodes[i] = at + i
		}
		if _, err := reg.Predict("fedgcn", nodes); err != nil {
			return nil, err
		}
	}
	rep, err := reg.ABReportNow()
	if err != nil {
		return nil, err
	}
	arm := func(label string, a registry.ABArmReport) string {
		return fmt.Sprintf("A/B %-9s %-8s acc=%.3f over %d nodes (%d req, mean %v)",
			label, a.Model, a.Stats.Accuracy, a.Stats.Labelled, a.Stats.Requests,
			a.Stats.MeanLat.Round(time.Microsecond))
	}
	return []string{
		fmt.Sprintf("A/B split: %s vs %s at fraction %.2f (deterministic per-node hash, salt %d)",
			cfg.Control, cfg.Candidate, cfg.Fraction, cfg.Salt),
		arm("control", rep.Control),
		arm("candidate", rep.Candidate),
		fmt.Sprintf("A/B delta: candidate %+.3f accuracy vs control",
			rep.Candidate.Stats.Accuracy-rep.Control.Stats.Accuracy),
	}, nil
}
