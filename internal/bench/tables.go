package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/graph"
)

// TransductiveDatasets lists the Table II columns in paper order.
var TransductiveDatasets = []string{
	"Cora", "CiteSeer", "PubMed", "Computer", "Physics",
	"Chameleon", "Squirrel", "Actor", "Penn94", "arxiv-year",
}

// InductiveDatasets lists the Table III datasets.
var InductiveDatasets = []string{"Flickr", "Reddit"}

// MainMethods lists the Table II row methods in paper order.
var MainMethods = []string{
	"GCN", "GCNII", "GAMLP", "GGCN", "GloGNN", "GPRGNN",
	"FedGL", "GCFL+", "FedSage+", "FED-PUB", "AdaFGL",
}

// InductiveMethods lists the Table III rows.
var InductiveMethods = []string{"GCNII", "GloGNN", "FedGL", "GCFL+", "FedSage+", "FED-PUB", "AdaFGL"}

// Table1 regenerates the dataset statistics table.
func Table1(s Scale) ([]string, error) {
	out := []string{"TABLE I: dataset statistics (synthetic, scaled)",
		fmt.Sprintf("%-12s %8s %8s %8s %8s %8s %8s", "Dataset", "#Nodes", "#Edges", "#Feat", "#Class", "E.Homo", "target")}
	for _, spec := range datasets.Registry {
		g := datasets.GenerateScaled(spec, s.Factor, s.Seed)
		st := g.Summary()
		out = append(out, fmt.Sprintf("%-12s %8d %8d %8d %8d %8.3f %8.3f",
			spec.Name, st.Nodes, st.Edges, st.Features, st.Classes, st.EdgeHomophily, spec.EdgeHomophily))
	}
	return out, nil
}

// accuracyTable renders one split block of Table II/III.
func accuracyTable(title string, dsets, methods []string, kind SplitKind, s Scale) ([]string, error) {
	out := []string{title}
	header := fmt.Sprintf("%-10s", "Method")
	for _, d := range dsets {
		header += fmt.Sprintf(" %12s", d)
	}
	out = append(out, header)
	cols := make([][]Cell, len(dsets)) // per dataset, per method
	for di := range dsets {
		cols[di] = make([]Cell, len(methods))
	}
	for mi, m := range methods {
		for di, d := range dsets {
			c, err := RunCell(d, kind, m, s)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", m, d, err)
			}
			cols[di][mi] = c
		}
	}
	for mi, m := range methods {
		row := fmt.Sprintf("%-10s", m)
		for di := range dsets {
			cellStr := fmtCell(cols[di][mi])
			if isBest(cols[di], mi) {
				cellStr = "*" + cellStr + "*"
			}
			row += fmt.Sprintf(" %12s", cellStr)
		}
		out = append(out, row)
	}
	return out, nil
}

func isBest(col []Cell, mi int) bool {
	for _, c := range col {
		if c.Mean > col[mi].Mean {
			return false
		}
	}
	return true
}

// Table2 regenerates the transductive comparison (both splits).
func Table2(s Scale) ([]string, error) {
	return accuracyTableTwoSplits("TABLE II: transductive accuracy", TransductiveDatasets, MainMethods, s)
}

// Table3 regenerates the inductive comparison (both splits).
func Table3(s Scale) ([]string, error) {
	return accuracyTableTwoSplits("TABLE III: inductive accuracy", InductiveDatasets, InductiveMethods, s)
}

func accuracyTableTwoSplits(title string, dsets, methods []string, s Scale) ([]string, error) {
	out := []string{}
	a, err := accuracyTable(title+" — community split", dsets, methods, Community, s)
	if err != nil {
		return nil, err
	}
	out = append(out, a...)
	b, err := accuracyTable(title+" — structure Non-iid split", dsets, methods, NonIID, s)
	if err != nil {
		return nil, err
	}
	out = append(out, "")
	return append(out, b...), nil
}

// injectionTable powers Tables IV and V: random vs meta injection.
func injectionTable(title string, dsets []string, methods []string, s Scale) ([]string, error) {
	out := []string{title, fmt.Sprintf("%-10s %s", "Method", func() string {
		h := ""
		for _, d := range dsets {
			h += fmt.Sprintf(" %12s(R) %12s(M)", d, d)
		}
		return h
	}())}
	for _, m := range methods {
		row := fmt.Sprintf("%-10s", m)
		for _, d := range dsets {
			r, err := RunCell(d, NonIID, m, s)
			if err != nil {
				return nil, err
			}
			mt, err := RunCell(d, NonIIDMeta, m, s)
			if err != nil {
				return nil, err
			}
			row += fmt.Sprintf(" %15s %15s", fmtCell(r), fmtCell(mt))
		}
		out = append(out, row)
	}
	return out, nil
}

// Table4Methods lists the rows of Tables IV/V.
var Table4Methods = []string{"FedGL", "GCFL+", "FedSage+", "FED-PUB", "AdaFGL"}

// Table4 regenerates the transductive injection comparison (Physics, Penn94).
func Table4(s Scale) ([]string, error) {
	return injectionTable("TABLE IV: transductive, random vs meta injection", []string{"Physics", "Penn94"}, Table4Methods, s)
}

// Table5 regenerates the inductive injection comparison (Flickr, Reddit).
func Table5(s Scale) ([]string, error) {
	return injectionTable("TABLE V: inductive, random vs meta injection", []string{"Flickr", "Reddit"}, Table4Methods, s)
}

// ablationCell runs AdaFGL with one component disabled.
func ablationCell(dataset string, kind SplitKind, mod func(*core.Options), s Scale) (Cell, error) {
	var accs []float64
	var cell Cell
	for r := 0; r < s.Runs; r++ {
		seed := s.Seed + int64(r)*1000
		subs, err := MakeSplit(dataset, kind, s, seed)
		if err != nil {
			return cell, err
		}
		a := s.adaMethod()
		mod(&a.Opt)
		res, err := a.Run(subs, s.cfg(), s.fedOpts(seed))
		if err != nil {
			return cell, err
		}
		accs = append(accs, res.TestAcc)
	}
	cell.Mean, cell.Std = meanStd(accs)
	return cell, nil
}

// Ablations enumerates the component switches of Tables VI/VII.
var Ablations = []struct {
	Name string
	Mod  func(*core.Options)
}{
	{"w/o K.P.", func(o *core.Options) { o.DisableKP = true }},
	{"w/o T.F.", func(o *core.Options) { o.DisableTF = true }},
	{"w/o L.M.", func(o *core.Options) { o.DisableLM = true }},
	{"w/o L.T.", func(o *core.Options) { o.DisableLT = true }},
	{"w/o HCS", func(o *core.Options) { o.DisableHCS = true }},
	{"AdaFGL", func(o *core.Options) {}},
}

func ablationTable(title string, dsets []string, s Scale) ([]string, error) {
	out := []string{title}
	header := fmt.Sprintf("%-10s", "Component")
	for _, d := range dsets {
		header += fmt.Sprintf(" %10s-Com %9s-NIID", d, d)
	}
	out = append(out, header)
	for _, ab := range Ablations {
		row := fmt.Sprintf("%-10s", ab.Name)
		for _, d := range dsets {
			com, err := ablationCell(d, Community, ab.Mod, s)
			if err != nil {
				return nil, err
			}
			ni, err := ablationCell(d, NonIID, ab.Mod, s)
			if err != nil {
				return nil, err
			}
			row += fmt.Sprintf(" %14s %14s", fmtCell(com), fmtCell(ni))
		}
		out = append(out, row)
	}
	return out, nil
}

// Table6 regenerates the homophilous ablation study (Computer, Reddit).
func Table6(s Scale) ([]string, error) {
	return ablationTable("TABLE VI: ablation on homophilous datasets", []string{"Computer", "Reddit"}, s)
}

// Table7 regenerates the heterophilous ablation study (arxiv-year, Flickr).
func Table7(s Scale) ([]string, error) {
	return ablationTable("TABLE VII: ablation on heterophilous datasets", []string{"arxiv-year", "Flickr"}, s)
}

// Table3Inductive regenerates Table III under the paper's true inductive
// protocol: each client trains on the subgraph induced over its non-test
// nodes and is evaluated on the full subgraph (unseen nodes and edges
// revealed at test time). Restricted to the methods whose evaluation path
// supports parameter transplantation onto the full graph.
func Table3Inductive(s Scale) ([]string, error) {
	methods := []string{"GCNII", "GloGNN", "GCFL+", "FED-PUB", "AdaFGL"}
	out := []string{"TABLE III (true inductive protocol): accuracy on unseen test nodes"}
	for _, kind := range []SplitKind{Community, NonIID} {
		out = append(out, "  "+kind.String())
		for _, mn := range methods {
			row := fmt.Sprintf("   %-10s", mn)
			for _, d := range InductiveDatasets {
				var accs []float64
				for r := 0; r < s.Runs; r++ {
					seed := s.Seed + int64(r)*1000
					subs, err := MakeSplit(d, kind, s, seed)
					if err != nil {
						return nil, err
					}
					for i := range subs {
						subs[i] = graph.MakeInductive(subs[i])
					}
					m, err := ResolveMethod(mn, s)
					if err != nil {
						return nil, err
					}
					res, err := m.Run(subs, s.cfg(), s.fedOpts(seed))
					if err != nil {
						return nil, err
					}
					accs = append(accs, res.TestAcc)
				}
				mean, std := meanStd(accs)
				row += fmt.Sprintf(" %s=%5.1f±%.1f", d, mean*100, std*100)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// Table8 regenerates the paradigm comparison: the static taxonomy of
// Sec. IV-D augmented with measured per-round communication volume.
func Table8(s Scale) ([]string, error) {
	subs, err := MakeSplit("Cora", Community, s, s.Seed)
	if err != nil {
		return nil, err
	}
	rows := []struct {
		name, typ, comm string
	}{
		{"FedGL", "FedC", "Model Param. + Node Pred. + Node Emb."},
		{"GCFL+", "FedS", "Model Param. + Model Grad."},
		{"FedSage+", "FedC", "Model Param. + Node Emb. + NeighGen Grad."},
		{"FED-PUB", "FedC", "Model Param. + Model Mask"},
		{"AdaFGL", "FedC", "Model Param. only"},
	}
	out := []string{"TABLE VIII: FGL paradigm comparison",
		fmt.Sprintf("%-10s %-6s %-46s %14s", "Method", "Type", "Communication content", "bytes/round")}
	for _, r := range rows {
		m, err := ResolveMethod(r.name, s)
		if err != nil {
			return nil, err
		}
		res, err := m.Run(cloneSubs(subs), s.cfg(), s.fedOpts(s.Seed))
		if err != nil {
			return nil, err
		}
		out = append(out, fmt.Sprintf("%-10s %-6s %-46s %14d", r.name, r.typ, r.comm, res.BytesPerRound))
	}
	return out, nil
}

func cloneSubs(subs []*graph.Graph) []*graph.Graph {
	out := make([]*graph.Graph, len(subs))
	for i, g := range subs {
		out[i] = g.Clone()
	}
	return out
}

// Sanity helper reused by figures: run one method once.
func runOnce(m Method, subs []*graph.Graph, s Scale, seed int64) (*federated.Result, error) {
	return m.Run(subs, s.cfg(), s.fedOpts(seed))
}

// partitionRNG builds the deterministic rng used by split generation in
// figure runners that need direct partition control.
func partitionRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed + 101)) }
