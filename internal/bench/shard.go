package bench

import (
	"fmt"
	"time"

	"repro/internal/datasets"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/sparse"
)

// ShardExp is the million-node scaling experiment ("shard"): it streams one
// synthetic graph (never materialising the full edge list) into 1, 2, 4, …
// ShardMax shards and measures, per shard count, the largest shard's memory
// footprint — what one process of a shard-per-process fleet provisions — the
// fleet propagation wall-clock (the slowest shard's 2-hop time, since shards
// propagate concurrently and synchronise only at halo exchanges), and the
// routed serving throughput of the sharded Predictor. Memory linearity is
// enforced (±25% of the balanced share, deterministic); timing linearity is
// reported as the fleet speedup column. A final overlap-scale cross-check
// rebuilds a smaller graph at 1 and ShardMax shards and fails the experiment
// unless the sharded server's predictions are bit-identical to the unsharded
// ones.
func ShardExp(s Scale) ([]string, error) {
	nodes := s.ShardNodes
	if nodes <= 0 {
		nodes = 60_000
	}
	maxShards := s.ShardMax
	if maxShards <= 0 {
		maxShards = 8
	}
	reps := s.Runs
	if reps < 1 {
		reps = 1
	}
	const hops = 2
	spec := datasets.DefaultStream(nodes, s.Seed)

	lines := []string{
		fmt.Sprintf("Shard: streamed %d-node graph (avg degree %g) across shard counts, %d-hop windows", nodes, spec.AvgDegree, hops),
		fmt.Sprintf("%7s %10s %10s %8s %10s %10s %9s %10s", "shards", "build", "max-shard", "mem-lin", "halo-frac", "fleet-prop", "fleet-spd", "routed-qps"),
	}

	var totalOne int           // Bytes() of the 1-shard build: the memory baseline
	var fleetOne time.Duration // 1-shard propagation time: the speedup baseline
	for shards := 1; shards <= maxShards; shards *= 2 {
		p, err := shard.PlanFromStream(spec, shards, s.Seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		sh, err := shard.BuildFromStream(spec, p, sparse.NormSym)
		if err != nil {
			return nil, err
		}
		tBuild := time.Since(start)

		if shards == 1 {
			totalOne = sh.Bytes()
		}
		maxBytes := sh.MaxShardBytes()
		// mem-lin is the largest shard's footprint over the balanced share of
		// the unsharded build: 1.0 = perfectly linear scaling, and anything
		// past 1.25 means a fleet can no longer provision 1/shards of the
		// single-process memory per process.
		memLin := float64(maxBytes) * float64(shards) / float64(totalOne)
		if memLin > 1.25 {
			return nil, fmt.Errorf("bench: shard memory non-linear at %d shards: largest shard %d bytes is %.2fx the balanced share of %d",
				shards, maxBytes, memLin, totalOne)
		}
		halo, cols := 0, 0
		for _, one := range sh.Shards {
			halo += one.Halo()
			cols += len(one.Cols)
		}

		// Fleet propagation: each shard's SpMM runs on its own process, so
		// the fleet's wall-clock per hop is the slowest shard's product. The
		// plan build is shared setup; MulDense is the per-hop cost.
		slabs := sh.FeatureSlabs()
		plans := make([]*sparse.Plan, len(sh.Shards))
		for i, one := range sh.Shards {
			plans[i] = sparse.NewPlan(one.Adj)
		}
		var fleet time.Duration
		for i := range plans {
			t := best(reps, func() { _ = plans[i].MulDense(slabs[i]) })
			if t > fleet {
				fleet = t
			}
		}
		fleet *= hops
		if shards == 1 {
			fleetOne = fleet
		}

		qps, err := routedThroughput(sh, spec)
		if err != nil {
			return nil, err
		}
		lines = append(lines, fmt.Sprintf("%7d %10v %9.1fM %7.2fx %9.3f%% %10v %8.2fx %10.0f",
			shards, tBuild.Round(time.Millisecond), float64(maxBytes)/1e6, memLin,
			100*float64(halo)/float64(cols), fleet.Round(time.Microsecond),
			float64(fleetOne)/float64(fleet), qps))
	}

	if err := shardOverlapCheck(s, maxShards); err != nil {
		return nil, err
	}
	lines = append(lines, fmt.Sprintf("overlap check: %d-shard predictions bit-identical to unsharded ✓", maxShards))
	return lines, nil
}

// routedThroughput serves the sharded build behind a fixed SGC-shaped head
// and measures routed queries per second over a strided node sample.
func routedThroughput(sh *shard.Sharded, spec datasets.StreamSpec) (float64, error) {
	srv, err := shard.NewFromParts(sh, "SGC", shardBenchHead(spec), models.EmbeddingSpec{Hops: 2, Norm: sparse.NormSym}, serve.Options{})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	const batch = 256
	queries := spec.Nodes / 50
	if queries < batch {
		queries = batch
	}
	stride := spec.Nodes/queries | 1
	nodes := make([]int, 0, batch)
	served := 0
	start := time.Now()
	for v := 0; served < queries; v = (v + stride) % spec.Nodes {
		nodes = append(nodes, v)
		if len(nodes) == batch {
			if _, err := srv.Predict(nodes); err != nil {
				return 0, err
			}
			served += len(nodes)
			nodes = nodes[:0]
		}
	}
	return float64(served) / time.Since(start).Seconds(), nil
}

// shardBenchHead builds the deterministic single-layer head every shard
// measurement serves behind, so throughput differences come from routing and
// propagation, never from the head.
func shardBenchHead(spec datasets.StreamSpec) []models.HeadLayer {
	w := matrix.New(spec.Features, spec.Classes)
	for i := range w.Data {
		w.Data[i] = float64(i%13) - 6
	}
	return []models.HeadLayer{{W: w, Bias: make([]float64, spec.Classes)}}
}

// shardOverlapCheck rebuilds a smaller graph — one that fits a single shard —
// at 1 and maxShards shards and verifies the two servers answer a strided
// sample bit-identically, anchoring the big sweep's correctness.
func shardOverlapCheck(s Scale, maxShards int) error {
	nodes := s.ShardNodes
	if nodes <= 0 || nodes > 20_000 {
		nodes = 20_000
	}
	spec := datasets.DefaultStream(nodes, s.Seed+1)
	rec := models.EmbeddingSpec{Hops: 2, Norm: sparse.NormSym}
	head := shardBenchHead(spec)

	servers := make([]*shard.Server, 0, 2)
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()
	for _, shards := range []int{1, maxShards} {
		p, err := shard.PlanFromStream(spec, shards, s.Seed)
		if err != nil {
			return err
		}
		sh, err := shard.BuildFromStream(spec, p, sparse.NormSym)
		if err != nil {
			return err
		}
		srv, err := shard.NewFromParts(sh, "SGC", head, rec, serve.Options{})
		if err != nil {
			return err
		}
		servers = append(servers, srv)
	}
	var sample []int
	for v := 0; v < nodes; v += 37 {
		sample = append(sample, v)
	}
	a, err := servers[0].Predict(sample)
	if err != nil {
		return err
	}
	b, err := servers[1].Predict(sample)
	if err != nil {
		return err
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Class != b[i].Class {
			return fmt.Errorf("bench: shard overlap check: query %d routed to (%d,%d) sharded vs (%d,%d) unsharded",
				i, b[i].Node, b[i].Class, a[i].Node, a[i].Class)
		}
		for j := range a[i].Logits {
			if a[i].Logits[j] != b[i].Logits[j] {
				return fmt.Errorf("bench: shard overlap check: node %d logit %d differs between %d-shard and unsharded",
					a[i].Node, j, maxShards)
			}
		}
	}
	return nil
}
