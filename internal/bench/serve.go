package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/models"
	"repro/internal/partition"
	"repro/internal/serve"
)

// serveConc is the query concurrency of the serving experiment (the 64-way
// load of the acceptance scenario).
const serveConc = 64

// serveQueriesPerWorker is how many single-node queries each concurrent
// client fires per mode.
const serveQueriesPerWorker = 16

// Serve regenerates the serving-layer comparison: a model is trained at
// quickstart scale, checkpointed, and served twice — once with batching
// disabled (every request is its own propagation window) and once with a
// 64-node batch window — under 64-way concurrent single-node query load.
// Reported are queries/sec, p50/p99 latency and the achieved batch size,
// with the batched predictions cross-checked bit-identical to the unbatched
// ones. Both engine paths run: GCN (per-window plan-reused propagation,
// where coalescing pays ~windowfold) and SGC (precomputed-embedding cache,
// where per-query work is already one dense GEMV).
func Serve(s Scale) ([]string, error) {
	factor := s.Factor
	if factor <= 0 {
		factor = 0.5 // quickstart scale
	}
	lines := []string{
		fmt.Sprintf("Serving: single-request vs batched inference, %d concurrent clients x %d queries",
			serveConc, serveQueriesPerWorker),
	}
	for _, arch := range []string{"GCN", "SGC"} {
		ck, err := serveCheckpoint(arch, factor, s)
		if err != nil {
			return nil, err
		}
		single, singlePreds, err := serveLoad(ck, serve.Options{MaxBatch: 1, Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		batched, batchedPreds, err := serveLoad(ck, serve.Options{MaxBatch: serveConc, MaxWait: 2 * time.Millisecond, Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		if err := comparePreds(singlePreds, batchedPreds); err != nil {
			return nil, fmt.Errorf("bench: serve: %s: %w", arch, err)
		}
		lines = append(lines,
			fmt.Sprintf("%-4s nodes=%d  single : %9.0f q/s  p50=%-8v p99=%-8v batch=%.1f",
				arch, ck.Graph.N, single.QueriesPerSec, single.P50.Round(time.Microsecond), single.P99.Round(time.Microsecond), single.MeanBatch),
			fmt.Sprintf("%-4s nodes=%d  batched: %9.0f q/s  p50=%-8v p99=%-8v batch=%.1f  speedup %.1fx  (bit-identical ok)",
				arch, ck.Graph.N, batched.QueriesPerSec, batched.P50.Round(time.Microsecond), batched.P99.Round(time.Microsecond), batched.MeanBatch,
				batched.QueriesPerSec/single.QueriesPerSec),
		)
	}
	return lines, nil
}

// serveCheckpoint trains arch briefly over a community split of a scaled
// Cora and packages the global model on the full graph.
func serveCheckpoint(arch string, factor float64, s Scale) (*checkpoint.Checkpoint, error) {
	spec, err := datasets.ByName("Cora")
	if err != nil {
		return nil, err
	}
	g := datasets.GenerateScaled(spec, factor, s.Seed)
	cd := partition.CommunitySplit(g, 5, rand.New(rand.NewSource(s.Seed+101)))
	cfg := s.cfg()
	clients := federated.BuildClients(cd.Subgraphs, models.Registry[arch], cfg, s.Seed)
	opt := s.fedOpts(s.Seed)
	if opt.Rounds > 10 {
		opt.Rounds = 10 // training cost is not what this experiment measures
	}
	res, err := federated.Run(clients, s.Seed+1, opt)
	if err != nil {
		return nil, err
	}
	return checkpoint.FromResult(res, arch, cfg, g)
}

// serveLoad drives the concurrent query storm against one server config and
// returns the metrics snapshot plus every prediction keyed by node.
func serveLoad(ck *checkpoint.Checkpoint, opt serve.Options) (serve.Snapshot, map[int]serve.Prediction, error) {
	srv, err := serve.New(ck, opt)
	if err != nil {
		return serve.Snapshot{}, nil, err
	}
	defer srv.Close()
	preds := make(map[int]serve.Prediction)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, serveConc)
	for w := 0; w < serveConc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < serveQueriesPerWorker; q++ {
				node := (w*serveQueriesPerWorker + q*131) % srv.Nodes()
				ps, err := srv.Predict([]int{node})
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				preds[node] = ps[0]
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return serve.Snapshot{}, nil, err
	}
	return srv.Stats(), preds, nil
}

// comparePreds requires bit-identical logits and classes across modes.
func comparePreds(a, b map[int]serve.Prediction) error {
	if len(a) != len(b) {
		return fmt.Errorf("answered node sets differ: %d vs %d", len(a), len(b))
	}
	for node, pa := range a {
		pb, ok := b[node]
		if !ok {
			return fmt.Errorf("node %d missing from batched answers", node)
		}
		if pa.Class != pb.Class {
			return fmt.Errorf("node %d class differs: %d vs %d", node, pa.Class, pb.Class)
		}
		for j := range pa.Logits {
			if pa.Logits[j] != pb.Logits[j] {
				return fmt.Errorf("node %d logit %d differs bitwise: %v vs %v", node, j, pa.Logits[j], pb.Logits[j])
			}
		}
	}
	return nil
}
