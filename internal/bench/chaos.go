package bench

import (
	"fmt"

	"repro/internal/federated"
	"repro/internal/fgl"
	"repro/internal/graph"
	"repro/internal/scenario"
)

// chaosAggregators is the robust-aggregation sweep of the chaos experiment:
// plain FedAvg, FedAvg under update-norm clipping (calibrated at runtime to
// half the steady run's max update norm), coordinate median and trimmed mean.
var chaosAggregators = []struct {
	name string
	ro   federated.RobustOptions
}{
	{"fedavg", federated.RobustOptions{}},
	{"clip", federated.RobustOptions{ClipNorm: -1}}, // calibrated per run
	{"median", federated.RobustOptions{Aggregator: federated.AggMedian}},
	{"trim", federated.RobustOptions{Aggregator: federated.AggTrimmedMean, TrimFrac: 0.25}},
}

// chaosScenarios is the failure sweep: the fault-free reference plus churn,
// crash-and-rejoin and the two upload-attack byzantine arms.
var chaosScenarios = []string{
	"steady",
	"churn",
	"crashrejoin",
	"byz-labelflip",
	"byz-signflip",
	"byz-scale",
}

// Chaos is the failure-realistic federation experiment ("chaos"): every
// scenario from the scenario registry's failure sweep crossed with the robust
// aggregation sweep, AdaFGL against the FedGCN baseline in each cell. Before
// the table runs, the fault-free scenario is cross-checked bit-identical
// against today's engines — scenario-steady Step-1 must reproduce both
// Server.Run and AsyncServer.Run exactly — so the fault layer provably costs
// nothing when unused. Each non-steady row also reports degradation versus
// the same aggregator's steady row; the closing headline names the
// churn/byzantine scenario where AdaFGL's personalized Step-2 recovers most
// relative to the baseline.
func Chaos(s Scale) ([]string, error) {
	const dataset = "Cora"
	const baseline = "FedGCN"

	newSubs := func() ([]*graph.Graph, error) {
		return MakeSplit(dataset, Community, s, s.Seed)
	}
	if err := chaosCrossCheck(s, newSubs); err != nil {
		return nil, err
	}

	// Calibrate the clip column: a huge limit never rescales, so the steady
	// run under it both stays exact and reports the raw max update norm.
	calOpt := s.fedOpts(s.Seed)
	calOpt.Robust = federated.RobustOptions{ClipNorm: 1e9}
	calSubs, err := newSubs()
	if err != nil {
		return nil, err
	}
	calMethod, err := ResolveMethod(baseline, s)
	if err != nil {
		return nil, err
	}
	calRes, err := calMethod.Run(calSubs, s.cfg(), calOpt)
	if err != nil {
		return nil, err
	}
	clipNorm := calRes.MaxUpdateNorm / 2
	if clipNorm <= 0 {
		return nil, fmt.Errorf("bench: chaos: clip calibration measured no update norm")
	}

	// One run per scenario x aggregator x method, all from one seed: chaos
	// compares degradation shapes, not error bars.
	run := func(specStr string, ro federated.RobustOptions, methodName string) (*federated.Result, error) {
		sc, err := scenario.Parse(specStr)
		if err != nil {
			return nil, err
		}
		subs, err := newSubs()
		if err != nil {
			return nil, err
		}
		opt := s.fedOpts(s.Seed)
		opt.Async = federated.AsyncOptions{} // scenarios own the engine choice
		if err := sc.Apply(subs, &opt); err != nil {
			return nil, err
		}
		opt.Robust = ro
		m, err := ResolveMethod(methodName, s)
		if err != nil {
			return nil, err
		}
		return m.Run(subs, s.cfg(), opt)
	}

	lines := []string{
		fmt.Sprintf("Chaos: federation under failure on %s, %d clients, %d rounds — AdaFGL vs %s test accuracy",
			dataset, s.Clients, s.Rounds, baseline),
		fmt.Sprintf("cross-check passed: steady scenario bit-identical to Server.Run and AsyncServer.Run; clip calibrated to %.4g (half the steady max update norm %.4g)",
			clipNorm, calRes.MaxUpdateNorm),
		fmt.Sprintf("%-14s %-8s %8s %8s %8s %8s", "scenario", "agg", "AdaFGL", baseline, "Δada", "Δfgl"),
	}

	// steadyAcc[agg][method] anchors the degradation columns.
	steadyAcc := map[string]map[string]float64{}
	type headline struct {
		scen, agg    string
		dAda, dBase  float64
		adaAdvantage float64
		hasAdvantage bool
	}
	var best headline
	for _, specStr := range chaosScenarios {
		for _, agg := range chaosAggregators {
			ro := agg.ro
			if ro.ClipNorm < 0 {
				ro.ClipNorm = clipNorm
			}
			adaRes, err := run(specStr, ro, "AdaFGL")
			if err != nil {
				return nil, fmt.Errorf("bench: chaos: %s/%s/AdaFGL: %w", specStr, agg.name, err)
			}
			baseRes, err := run(specStr, ro, baseline)
			if err != nil {
				return nil, fmt.Errorf("bench: chaos: %s/%s/%s: %w", specStr, agg.name, baseline, err)
			}
			dAda, dBase := "-", "-"
			if specStr == "steady" {
				steadyAcc[agg.name] = map[string]float64{"ada": adaRes.TestAcc, "base": baseRes.TestAcc}
			} else if anchor, ok := steadyAcc[agg.name]; ok {
				da := anchor["ada"] - adaRes.TestAcc
				db := anchor["base"] - baseRes.TestAcc
				dAda = fmt.Sprintf("%+.3f", -da)
				dBase = fmt.Sprintf("%+.3f", -db)
				if adv := db - da; !best.hasAdvantage || adv > best.adaAdvantage {
					best = headline{scen: specStr, agg: agg.name, dAda: da, dBase: db,
						adaAdvantage: adv, hasAdvantage: true}
				}
			}
			lines = append(lines, fmt.Sprintf("%-14s %-8s %8.3f %8.3f %8s %8s",
				specStr, agg.name, adaRes.TestAcc, baseRes.TestAcc, dAda, dBase))
		}
	}
	if best.hasAdvantage {
		lines = append(lines, fmt.Sprintf(
			"headline: under %s/%s AdaFGL degrades %.1f pts vs %s %.1f pts (advantage %+.1f pts)",
			best.scen, best.agg, best.dAda*100, baseline, best.dBase*100, best.adaAdvantage*100))
	}
	return lines, nil
}

// chaosCrossCheck proves the fault layer is free when unused: the steady
// scenario applied over fresh data must leave Step-1 bit-identical to a
// direct Server.Run, and its async twin bit-identical to a direct
// AsyncServer.Run at the same K.
func chaosCrossCheck(s Scale, newSubs func() ([]*graph.Graph, error)) error {
	type variant struct {
		name  string
		async federated.AsyncOptions
	}
	variants := []variant{
		{"Server.Run", federated.AsyncOptions{}},
		{"AsyncServer.Run", federated.AsyncOptions{Enabled: true, MinUpdates: 2, Staleness: 0.5,
			Speed: &federated.SpeedModel{Slowdown: []float64{3}, Jitter: 0.1, Seed: s.Seed}}},
	}
	for _, v := range variants {
		direct, err := chaosStepOne(s, newSubs, v.async, false)
		if err != nil {
			return err
		}
		viaScenario, err := chaosStepOne(s, newSubs, v.async, true)
		if err != nil {
			return err
		}
		if len(direct.GlobalParams) != len(viaScenario.GlobalParams) {
			return fmt.Errorf("bench: chaos cross-check: %s: dimension drifted", v.name)
		}
		for i := range direct.GlobalParams {
			if direct.GlobalParams[i] != viaScenario.GlobalParams[i] {
				return fmt.Errorf("bench: chaos cross-check: steady scenario diverges from %s at param %d", v.name, i)
			}
		}
	}
	return nil
}

// chaosStepOne runs one bare Step-1 federation (no Step-2, no correction),
// optionally routed through the steady scenario's Apply.
func chaosStepOne(s Scale, newSubs func() ([]*graph.Graph, error), async federated.AsyncOptions, viaScenario bool) (*federated.Result, error) {
	subs, err := newSubs()
	if err != nil {
		return nil, err
	}
	opt := s.fedOpts(s.Seed)
	opt.Async = async
	opt.Robust = federated.RobustOptions{}
	if viaScenario {
		sc, err := scenario.Parse("steady")
		if err != nil {
			return nil, err
		}
		if err := sc.Apply(subs, &opt); err != nil {
			return nil, err
		}
	}
	m := fgl.FedModel{Arch: "GCN"}
	return m.Run(subs, s.cfg(), opt)
}
