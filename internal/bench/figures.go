package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Fig2 regenerates the empirical analysis of Fig. 2 on Cora with
// s.Clients clients: (a) per-client label distributions, (b) per-client
// topology distributions, (c) round-accuracy curves, (d) per-client accuracy.
func Fig2(s Scale) ([]string, error) {
	spec, err := datasets.ByName("Cora")
	if err != nil {
		return nil, err
	}
	g := datasets.GenerateScaled(spec, s.Factor, s.Seed)
	comm := partition.CommunitySplit(g, s.Clients, partitionRNG(s.Seed))
	noniid := partition.StructureNonIIDSplit(g.Clone(), s.Clients, partition.DefaultNonIID(), partitionRNG(s.Seed+1))

	out := []string{"FIG 2(a): per-client label distributions (rows=clients, cols=classes)"}
	describe := func(name string, cd *partition.ClientData) {
		out = append(out, "  "+name)
		for i, sub := range cd.Subgraphs {
			out = append(out, fmt.Sprintf("   client %2d: %v", i, sub.LabelDistribution()))
		}
	}
	describe("community split", comm)
	describe("structure Non-iid split", noniid)

	out = append(out, "", "FIG 2(b): per-client topology distributions (node/edge homophily)")
	topo := func(name string, cd *partition.ClientData) {
		out = append(out, "  "+name)
		for i, sub := range cd.Subgraphs {
			out = append(out, fmt.Sprintf("   client %2d: node %.3f edge %.3f", i, sub.NodeHomophily(), sub.EdgeHomophily()))
		}
	}
	topo("community split", comm)
	topo("structure Non-iid split", noniid)

	out = append(out, "", "FIG 2(c): round-accuracy curves (every 5th round)")
	curveMethods := []string{"GCN", "GloGNN", "FedGL", "FedSage+", "FED-PUB"}
	for _, kind := range []SplitKind{Community, NonIID} {
		out = append(out, "  "+kind.String())
		for _, mn := range curveMethods {
			c, err := RunCell("Cora", kind, mn, singleRun(s))
			if err != nil {
				return nil, err
			}
			out = append(out, fmt.Sprintf("   %-10s %s", mn, fmtCurve(c.Curve, 5)))
		}
	}

	out = append(out, "", "FIG 2(d): per-client accuracy (GCN)")
	for _, kind := range []SplitKind{Community, NonIID} {
		c, err := RunCell("Cora", kind, "GCN", singleRun(s))
		if err != nil {
			return nil, err
		}
		out = append(out, fmt.Sprintf("  %-10s %v", kind.String(), fmtClientAccs(c.PerClient)))
	}
	return out, nil
}

func singleRun(s Scale) Scale { s.Runs = 1; return s }

func fmtClientAccs(a []float64) string {
	out := ""
	for i, v := range a {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.2f", v)
	}
	return out
}

// Fig5 regenerates the topology-heterogeneity sweep: accuracy vs injection
// intensity (sampling ratio for random, budget for meta) on PubMed, Flickr
// and Reddit.
func Fig5(s Scale) ([]string, error) {
	out := []string{"FIG 5: accuracy under varying topology heterogeneity"}
	methods := []string{"FedSage+", "FED-PUB", "AdaFGL"}
	ratios := []float64{0.1, 0.3, 0.5, 0.7}
	for _, d := range []string{"PubMed", "Flickr", "Reddit"} {
		out = append(out, "  "+d)
		for _, mn := range methods {
			row := fmt.Sprintf("   %-10s", mn)
			for _, ratio := range ratios {
				acc, err := injectionSweepCell(d, mn, ratio, false, s)
				if err != nil {
					return nil, err
				}
				row += fmt.Sprintf(" r%.1f=%.3f", ratio, acc)
			}
			for _, budget := range []float64{0.1, 0.2} {
				acc, err := injectionSweepCell(d, mn, budget, true, s)
				if err != nil {
					return nil, err
				}
				row += fmt.Sprintf(" m%.1f=%.3f", budget, acc)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func injectionSweepCell(dataset, methodName string, intensity float64, meta bool, s Scale) (float64, error) {
	spec, err := datasets.ByName(dataset)
	if err != nil {
		return 0, err
	}
	g := datasets.GenerateScaled(spec, s.Factor, s.Seed)
	opt := partition.DefaultNonIID()
	if meta {
		opt.Meta = true
		opt.MetaBudget = intensity
	} else {
		opt.SamplingRatio = intensity
	}
	cd := partition.StructureNonIIDSplit(g, s.Clients, opt, partitionRNG(s.Seed))
	m, err := ResolveMethod(methodName, s)
	if err != nil {
		return 0, err
	}
	res, err := runOnce(m, cd.Subgraphs, s, s.Seed)
	if err != nil {
		return 0, err
	}
	return res.TestAcc, nil
}

// Fig6 regenerates the α/β sensitivity grids on one homophilous and one
// heterophilous dataset under both splits.
func Fig6(s Scale) ([]string, error) {
	out := []string{"FIG 6: hyperparameter sensitivity (rows α, cols β; cells accuracy)"}
	grid := []float64{0.1, 0.5, 0.9}
	for _, d := range []string{"Cora", "Chameleon"} {
		for _, kind := range []SplitKind{Community, NonIID} {
			out = append(out, fmt.Sprintf("  %s — %s", d, kind))
			subs, err := MakeSplit(d, kind, s, s.Seed)
			if err != nil {
				return nil, err
			}
			for _, alpha := range grid {
				row := fmt.Sprintf("   α=%.1f:", alpha)
				for _, beta := range grid {
					a := s.adaMethod()
					a.Opt.Alpha = alpha
					a.Opt.Beta = beta
					res, err := runOnce(a, cloneSubs(subs), s, s.Seed)
					if err != nil {
						return nil, err
					}
					row += fmt.Sprintf(" β=%.1f→%.3f", beta, res.TestAcc)
				}
				out = append(out, row)
			}
		}
	}
	return out, nil
}

// Fig7 regenerates the client-dependent HCS comparison: HCS vs true
// subgraph homophily per client under both splits.
func Fig7(s Scale) ([]string, error) {
	out := []string{"FIG 7: per-client HCS vs subgraph edge homophily"}
	for _, d := range []string{"Cora", "CiteSeer", "PubMed", "Chameleon", "Squirrel", "Actor"} {
		for _, kind := range []SplitKind{Community, NonIID} {
			subs, err := MakeSplit(d, kind, s, s.Seed)
			if err != nil {
				return nil, err
			}
			a := s.adaMethod()
			if _, err := runOnce(a, subs, s, s.Seed); err != nil {
				return nil, err
			}
			row := fmt.Sprintf("  %-10s %-12s", d, kind)
			for _, r := range a.Reports {
				row += fmt.Sprintf(" (hcs %.2f|homo %.2f)", r.HCS, r.EdgeHomophily)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// Fig8 regenerates the convergence curves on Penn94, Flickr and Reddit.
func Fig8(s Scale) ([]string, error) {
	return convergenceFigure("FIG 8: convergence curves", []string{"Penn94", "Flickr", "Reddit"}, s)
}

// Fig9 regenerates the convergence curves on the six smaller datasets.
func Fig9(s Scale) ([]string, error) {
	return convergenceFigure("FIG 9: convergence curves",
		[]string{"Cora", "CiteSeer", "PubMed", "Chameleon", "Squirrel", "Actor"}, s)
}

func convergenceFigure(title string, dsets []string, s Scale) ([]string, error) {
	out := []string{title + " (every 5th round)"}
	methods := []string{"GCN", "GloGNN", "FED-PUB", "AdaFGL"}
	for _, d := range dsets {
		for _, kind := range []SplitKind{Community, NonIID} {
			out = append(out, fmt.Sprintf("  %s — %s", d, kind))
			for _, mn := range methods {
				c, err := RunCell(d, kind, mn, singleRun(s))
				if err != nil {
					return nil, err
				}
				out = append(out, fmt.Sprintf("   %-10s %s (final %.3f)", mn, fmtCurve(c.Curve, 5), c.Mean))
			}
		}
	}
	return out, nil
}

// Fig10 regenerates the sparsity experiments on Computer: feature, edge and
// label sparsity sweeps under both splits.
func Fig10(s Scale) ([]string, error) {
	out := []string{"FIG 10: sparsity robustness on Computer"}
	methods := []string{"FedSage+", "FED-PUB", "AdaFGL"}
	levels := []float64{0.2, 0.5, 0.8}
	kinds := []SplitKind{Community, NonIID}
	modes := []struct {
		name  string
		apply func(g *graph.Graph, frac float64, rng *rand.Rand)
	}{
		{"feature", func(g *graph.Graph, f float64, rng *rand.Rand) { partition.SparsifyFeatures(g, f, rng) }},
		{"edge", func(g *graph.Graph, f float64, rng *rand.Rand) { g.RemoveEdgesRandom(f, rng) }},
		{"label", func(g *graph.Graph, f float64, rng *rand.Rand) { partition.SparsifyLabels(g, f, rng) }},
	}
	for _, mode := range modes {
		for _, kind := range kinds {
			out = append(out, fmt.Sprintf("  %s sparsity — %s", mode.name, kind))
			for _, mn := range methods {
				row := fmt.Sprintf("   %-10s", mn)
				for _, lvl := range levels {
					subs, err := MakeSplit("Computer", kind, s, s.Seed)
					if err != nil {
						return nil, err
					}
					rng := rand.New(rand.NewSource(s.Seed + int64(lvl*100)))
					for _, sub := range subs {
						mode.apply(sub, lvl, rng)
					}
					m, err := ResolveMethod(mn, s)
					if err != nil {
						return nil, err
					}
					res, err := runOnce(m, subs, s, s.Seed)
					if err != nil {
						return nil, err
					}
					row += fmt.Sprintf(" %.1f→%.3f", lvl, res.TestAcc)
				}
				out = append(out, row)
			}
		}
	}
	return out, nil
}

// Fig11 regenerates the sparse client-participation experiment with 20
// clients on arxiv-year, Flickr and Reddit.
func Fig11(s Scale) ([]string, error) {
	out := []string{"FIG 11: accuracy vs participation ratio (20-client split)"}
	s20 := s
	s20.Clients = s.Clients * 2
	methods := []string{"FedGL", "FedSage+", "FED-PUB", "AdaFGL"}
	ratios := []float64{0.2, 0.5, 1.0}
	for _, d := range []string{"arxiv-year", "Flickr", "Reddit"} {
		for _, kind := range []SplitKind{Community, NonIID} {
			out = append(out, fmt.Sprintf("  %s — %s", d, kind))
			for _, mn := range methods {
				row := fmt.Sprintf("   %-10s", mn)
				for _, ratio := range ratios {
					subs, err := MakeSplit(d, kind, s20, s.Seed)
					if err != nil {
						return nil, err
					}
					m, err := ResolveMethod(mn, s20)
					if err != nil {
						return nil, err
					}
					fo := s20.fedOpts(s.Seed)
					fo.Participation = ratio
					res, err := m.Run(subs, s20.cfg(), fo)
					if err != nil {
						return nil, err
					}
					row += fmt.Sprintf(" p%.1f=%.3f", ratio, res.TestAcc)
				}
				out = append(out, row)
			}
		}
	}
	return out, nil
}
