package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/registry"
	"repro/internal/serve"
)

// TortureScenario is one named, seeded serving-failure scenario of the HTTP
// torture harness: a registry-backed server is driven through an overload,
// slow-model, engine-panic or corrupt-artifact regime while the harness
// enforces the resilience invariants — zero connection drops, every admitted
// request answered exactly once, every shed carrying Retry-After, every
// success bit-identical to a never-stressed reference server, and the server
// answering normally again after the storm.
type TortureScenario struct {
	// Name is the registry key ("overload", "slowmodel", "panic", "corrupt").
	Name string
	// Title is the one-line description listings print.
	Title string
	// Params holds the scenario's resolved numeric parameters (registry
	// defaults overridden by the spec that built it).
	Params map[string]float64
}

// tortureSpec is one registry entry: the blueprint a TortureScenario is
// instantiated from.
type tortureSpec struct {
	name     string
	title    string
	defaults map[string]float64
}

// tortureRegistry lists every serving-failure scenario in presentation
// order. Parameter conventions: conc concurrent clients each firing reqs
// requests of nodes nodes; the rest are per-scenario knobs.
var tortureRegistry = []tortureSpec{
	{
		name:  "overload",
		title: "request storm against a tiny pending budget: sheds carry Retry-After, survivors stay bit-identical",
		// pending is the serve.Options.MaxPending node budget.
		defaults: map[string]float64{"conc": 24, "reqs": 16, "nodes": 48, "pending": 96},
	},
	{
		name:  "slowmodel",
		title: "deterministically stalled batch windows under a request deadline: 504s, survivors bit-identical",
		// every delayEvery-th window stalls delayms; requests carry a
		// timeoutms server-side deadline.
		defaults: map[string]float64{"conc": 8, "reqs": 12, "nodes": 8, "every": 2, "delayms": 30, "timeoutms": 10},
	},
	{
		name:  "panic",
		title: "engine panics on a deterministic schedule: 500 envelopes, breaker trips, process survives",
		// every panicEvery-th window panics; threshold consecutive failures
		// trip the model's breaker for backoffms (doubling per trip).
		defaults: map[string]float64{"conc": 8, "reqs": 12, "nodes": 8, "every": 3, "threshold": 3, "backoffms": 80},
	},
	{
		name:     "corrupt",
		title:    "corrupt artifact in the zoo: lenient scan quarantines it, the fleet stays ready and serves",
		defaults: map[string]float64{"conc": 4, "reqs": 8, "nodes": 8},
	},
}

// TortureNames returns every registered torture scenario name in
// presentation order.
func TortureNames() []string {
	out := make([]string, len(tortureRegistry))
	for i, sp := range tortureRegistry {
		out[i] = sp.name
	}
	return out
}

// ParseTorture compiles a torture spec — "name" or "name:key=val,key=val" —
// against the scenario registry, the same spec grammar the federation chaos
// suite uses (internal/scenario). Unknown names and parameters error.
func ParseTorture(spec string) (*TortureScenario, error) {
	name, rest, _ := strings.Cut(strings.TrimSpace(spec), ":")
	var blueprint *tortureSpec
	for i := range tortureRegistry {
		if tortureRegistry[i].name == name {
			blueprint = &tortureRegistry[i]
			break
		}
	}
	if blueprint == nil {
		return nil, fmt.Errorf("bench: torture: unknown scenario %q (have %s)",
			name, strings.Join(TortureNames(), ", "))
	}
	sc := &TortureScenario{Name: name, Title: blueprint.title, Params: map[string]float64{}}
	for k, v := range blueprint.defaults {
		sc.Params[k] = v
	}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(kv, "=")
			key = strings.TrimSpace(key)
			if !ok {
				return nil, fmt.Errorf("bench: torture: %s: bad parameter %q (want key=val)", name, kv)
			}
			if _, known := blueprint.defaults[key]; !known {
				return nil, fmt.Errorf("bench: torture: %s: unknown parameter %q", name, key)
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil {
				return nil, fmt.Errorf("bench: torture: %s: bad value for %q: %v", name, key, err)
			}
			sc.Params[key] = f
		}
	}
	return sc, nil
}

// Spec renders the scenario back into its canonical textual spec
// (parameters sorted), so Parse(sc.Spec()) round-trips.
func (sc *TortureScenario) Spec() string {
	if len(sc.Params) == 0 {
		return sc.Name
	}
	keys := make([]string, 0, len(sc.Params))
	for k := range sc.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%g", k, sc.Params[k])
	}
	return sc.Name + ":" + strings.Join(parts, ",")
}

// param reads a resolved scenario parameter as int.
func (sc *TortureScenario) param(key string) int { return int(sc.Params[key]) }

// TortureReport is the outcome accounting of one torture scenario run — the
// machine-readable half of the harness, consumed by the benchmark layer
// (shed-rate and p99-under-overload land in BENCH_smoke.json) and rendered
// as one line per scenario by the CLI experiment.
type TortureReport struct {
	// Scenario is the canonical spec of the run.
	Scenario string `json:"scenario"`
	// Requests is the number of storm requests fired; every one of them must
	// be answered exactly once.
	Requests int `json:"requests"`
	// OK counts 200 answers (each cross-checked bit-identical to the
	// reference server); Shed 503s, Deadline 504s, EnginePanic 500s, OtherErr
	// everything else.
	OK, Shed, Deadline, EnginePanic, OtherErr int
	// TransportErrors counts dropped or failed connections (must be 0).
	TransportErrors int `json:"transport_errors"`
	// MissingRetryAfter counts 503s without a Retry-After header (must be 0).
	MissingRetryAfter int `json:"missing_retry_after"`
	// Mismatches counts 200 answers that differed from the reference (must
	// be 0).
	Mismatches int `json:"mismatches"`
	// Quarantined is the number of artifacts the lenient scan refused.
	Quarantined int `json:"quarantined"`
	// PostStorm reports whether the server answered a steady-state request
	// bit-identically after the storm (breaker recovery included).
	PostStorm bool `json:"post_storm_ok"`
	// ShedRate is Shed/Requests; P99 the client-observed 99th-percentile
	// request latency across the storm.
	ShedRate float64       `json:"shed_rate"`
	P99      time.Duration `json:"p99_ns"`
}

// line renders the one-line scenario summary of the CLI experiment.
func (r *TortureReport) line() string {
	return fmt.Sprintf("%-34s %4d req: ok=%-4d shed=%-4d deadline=%-4d panic=%-3d quarantined=%d p99=%-9v post-storm=%v invariants ok",
		r.Scenario, r.Requests, r.OK, r.Shed, r.Deadline, r.EnginePanic,
		r.Quarantined, r.P99.Round(time.Microsecond), r.PostStorm)
}

// Torture regenerates the serving-resilience suite: one SGC artifact (plus a
// deliberately corrupt zoo file) is served by the registry's full HTTP stack
// on a loopback listener and driven through every registered scenario —
// overload shedding, stalled windows under deadlines, scheduled engine
// panics with circuit breaking, and a corrupt-artifact quarantine — with the
// harness's invariants enforced on every run.
func Torture(s Scale) ([]string, error) {
	dir, ck, cleanup, err := tortureArtifacts(s)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	lines := []string{
		fmt.Sprintf("Torture: registry-backed HTTP serving under %d failure scenarios (seed %d, %d-node graph)",
			len(tortureRegistry), s.Seed, ck.Graph.N),
		"invariants: no dropped connections; admitted => answered exactly once; 503s carry Retry-After;",
		"            200s bit-identical to a never-stressed server; steady-state restored post-storm",
	}
	for _, sp := range tortureRegistry {
		sc, err := ParseTorture(sp.name)
		if err != nil {
			return nil, err
		}
		rep, err := runTortureScenario(sc, s, dir, ck)
		if err != nil {
			return nil, fmt.Errorf("bench: torture: %s: %w", sp.name, err)
		}
		lines = append(lines, rep.line())
	}
	return lines, nil
}

// RunTorture runs a single scenario spec ("overload:conc=32,...") against a
// freshly built artifact zoo and returns its report; invariant violations
// surface as errors. This is the entry point the benchmark layer uses.
func RunTorture(spec string, s Scale) (*TortureReport, error) {
	sc, err := ParseTorture(spec)
	if err != nil {
		return nil, err
	}
	dir, ck, cleanup, err := tortureArtifacts(s)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	return runTortureScenario(sc, s, dir, ck)
}

// tortureArtifacts trains one small SGC model, checkpoints it as m@1.ckpt
// into a temp zoo directory next to a deliberately corrupt bad@1.ckpt, and
// returns the directory, the in-memory checkpoint (for the reference server)
// and a cleanup func.
func tortureArtifacts(s Scale) (string, *checkpoint.Checkpoint, func(), error) {
	factor := s.Factor
	if factor <= 0 {
		factor = 0.3
	}
	ck, err := serveCheckpoint("SGC", factor, s)
	if err != nil {
		return "", nil, nil, err
	}
	dir, err := os.MkdirTemp("", "adafgl-torture-*")
	if err != nil {
		return "", nil, nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	if err := checkpoint.Save(filepath.Join(dir, "m@1.ckpt"), ck); err != nil {
		cleanup()
		return "", nil, nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "bad@1.ckpt"), []byte("definitely not a checkpoint"), 0o644); err != nil {
		cleanup()
		return "", nil, nil, err
	}
	return dir, ck, cleanup, nil
}

// tortureOptions builds the scenario's registry configuration: lenient scan
// (the corrupt zoo member must quarantine, not abort), seeded breaker, and
// the scenario's serve-layer fault regime.
func tortureOptions(sc *TortureScenario, s Scale) registry.Options {
	opt := registry.Options{
		Serve:        serve.Options{MaxBatch: 32, MaxWait: 0, Seed: s.Seed},
		DefaultModel: "m",
		LenientScan:  true,
		Breaker:      registry.BreakerOptions{Seed: s.Seed},
	}
	switch sc.Name {
	case "overload":
		opt.Serve.MaxPending = sc.param("pending")
	case "slowmodel":
		opt.Serve.RequestTimeout = time.Duration(sc.param("timeoutms")) * time.Millisecond
		opt.Serve.Chaos = serve.ChaosOptions{
			DelayEvery: sc.param("every"),
			Delay:      time.Duration(sc.param("delayms")) * time.Millisecond,
		}
	case "panic":
		opt.Serve.Chaos = serve.ChaosOptions{PanicEvery: sc.param("every")}
		opt.Breaker.Threshold = sc.param("threshold")
		opt.Breaker.Backoff = time.Duration(sc.param("backoffms")) * time.Millisecond
	}
	return opt
}

// tortureNodes is the seeded node set of request q from worker w: the same
// (seed, worker, request) triple always queries the same nodes, which is
// what lets every 200 answer be cross-checked against the reference server.
func tortureNodes(seed int64, w, q, n, k int) []int {
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(w)*10_007 + int64(q)))
	nodes := make([]int, k)
	for i := range nodes {
		nodes[i] = rng.Intn(n)
	}
	return nodes
}

// runTortureScenario serves the zoo at dir over real loopback HTTP under the
// scenario's fault regime, fires the seeded storm, enforces the invariants
// and assembles the report.
func runTortureScenario(sc *TortureScenario, s Scale, dir string, ck *checkpoint.Checkpoint) (*TortureReport, error) {
	// Strict-scan contract, checked once per scenario run because it is
	// cheap: the corrupt zoo member must fail a strict LoadDir with the typed
	// checkpoint corruption cause.
	strict := registry.New(registry.Options{Serve: serve.Options{Seed: s.Seed}})
	if _, err := strict.LoadDir(dir); !errors.Is(err, checkpoint.ErrCorrupt) {
		strict.Close()
		return nil, fmt.Errorf("strict LoadDir: want checkpoint.ErrCorrupt, got %v", err)
	}
	strict.Close()

	reg := registry.New(tortureOptions(sc, s))
	defer reg.Close()
	infos, err := reg.LoadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lenient LoadDir: %v", err)
	}
	if len(infos) != 1 {
		return nil, fmt.Errorf("lenient LoadDir registered %d artifacts, want 1", len(infos))
	}
	quarantined := reg.Quarantined()
	if len(quarantined) != 1 || quarantined[0].Reason != "corrupt" {
		return nil, fmt.Errorf("quarantine = %+v, want one corrupt entry", quarantined)
	}

	// The real HTTP stack: a TCP listener on a loopback ephemeral port, the
	// registry's full Handler behind an http.Server — not a stubbed
	// RoundTripper — so connection behaviour under faults is what production
	// would see.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: reg.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// The never-stressed reference: a direct server on the same checkpoint
	// with no faults. Bit-identity of survivors against it is the harness's
	// strongest invariant — overload, deadlines and panics may fail requests
	// but must never change an answer.
	ref, err := serve.New(ck, serve.Options{MaxBatch: 32, MaxWait: 0, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	defer ref.Close()

	rep := &TortureReport{Scenario: sc.Spec(), Quarantined: len(quarantined)}
	conc, reqs, k := sc.param("conc"), sc.param("reqs"), sc.param("nodes")
	rep.Requests = conc * reqs
	client := &http.Client{Timeout: 30 * time.Second}

	var mu sync.Mutex
	var lats []time.Duration
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < reqs; q++ {
				nodes := tortureNodes(s.Seed, w, q, ck.Graph.N, k)
				start := time.Now()
				status, retryAfter, preds, err := torturePredict(client, base, nodes)
				lat := time.Since(start)
				mu.Lock()
				lats = append(lats, lat)
				switch {
				case err != nil:
					rep.TransportErrors++
				case status == http.StatusOK:
					rep.OK++
					if cmpErr := tortureCompare(ref, nodes, preds); cmpErr != nil {
						rep.Mismatches++
					}
				case status == http.StatusServiceUnavailable:
					rep.Shed++
					if retryAfter == "" {
						rep.MissingRetryAfter++
					}
				case status == http.StatusGatewayTimeout:
					rep.Deadline++
				case status == http.StatusInternalServerError:
					rep.EnginePanic++
				default:
					rep.OtherErr++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		rep.P99 = lats[(len(lats)*99)/100]
	}
	rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)

	// Post-storm steady state: the server must answer a clean request
	// bit-identically again. Tripped breakers are honoured (sleep out the
	// advertised Retry-After) and permanently scheduled faults (the panic
	// scenario injects forever) are ridden out by bounded retry — the
	// invariant is liveness plus determinism, not fault-freedom.
	nodes := tortureNodes(s.Seed, 0, 0, ck.Graph.N, k)
	for attempt := 0; attempt < 50 && !rep.PostStorm; attempt++ {
		status, retryAfter, preds, err := torturePredict(client, base, nodes)
		switch {
		case err != nil:
			rep.TransportErrors++
		case status == http.StatusOK:
			if cmpErr := tortureCompare(ref, nodes, preds); cmpErr != nil {
				return nil, fmt.Errorf("post-storm answer diverged: %v", cmpErr)
			}
			rep.PostStorm = true
		case status == http.StatusServiceUnavailable:
			d := 20 * time.Millisecond
			if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 1 {
				d = 100 * time.Millisecond
			}
			time.Sleep(d)
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}

	answered := rep.OK + rep.Shed + rep.Deadline + rep.EnginePanic + rep.OtherErr
	switch {
	case rep.TransportErrors > 0:
		return nil, fmt.Errorf("%d dropped/failed connections (want 0); report %+v", rep.TransportErrors, rep)
	case answered != rep.Requests:
		return nil, fmt.Errorf("%d of %d requests answered (want exactly once each)", answered, rep.Requests)
	case rep.MissingRetryAfter > 0:
		return nil, fmt.Errorf("%d sheds without Retry-After (want 0)", rep.MissingRetryAfter)
	case rep.Mismatches > 0:
		return nil, fmt.Errorf("%d answers diverged from the reference server (want bit-identical)", rep.Mismatches)
	case rep.OtherErr > 0:
		return nil, fmt.Errorf("%d unexpected statuses; report %+v", rep.OtherErr, rep)
	case !rep.PostStorm:
		return nil, fmt.Errorf("server did not return to steady state after the storm; report %+v", rep)
	}
	return rep, nil
}

// torturePredict fires one POST predict against the v1 API and decodes the
// outcome; err is non-nil only for transport-level failures (the dropped
// connections the harness forbids).
func torturePredict(client *http.Client, base string, nodes []int) (status int, retryAfter string, preds []serve.Prediction, err error) {
	body, _ := json.Marshal(serve.PredictRequest{Nodes: nodes})
	resp, err := client.Post(base+"/v1/models/m/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var pr serve.PredictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			return 0, "", nil, fmt.Errorf("truncated 200 body: %w", err)
		}
		return resp.StatusCode, "", pr.Predictions, nil
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), nil, nil
}

// tortureCompare checks one HTTP answer bit-identical against the reference
// server's answer for the same nodes.
func tortureCompare(ref *serve.Server, nodes []int, got []serve.Prediction) error {
	want, err := ref.Predict(nodes)
	if err != nil {
		return fmt.Errorf("reference predict: %w", err)
	}
	return comparePredSlices(want, got)
}
