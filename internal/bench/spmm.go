package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/matrix"
	"repro/internal/sparse"
)

// SpMM is the sparse-kernel micro experiment ("spmm"), mirroring the "gemm"
// experiment for the blocked SpMM engine: it times the row-streamed
// reference kernel against the blocked engine and against a reusable
// propagation plan on GNN-shaped workloads, reports speedups, and
// cross-checks every path to 1e-12 on every cell (the engine's actual
// contract is bit-identity, enforced by the property suite). The headline
// row is the acceptance configuration of the engine: a 50k-node,
// avg-degree-20 graph against a 64-column operand at the default worker
// count. The plan row amortises one blocked layout over 8 propagation
// steps — the Eq. (7)/LP reuse pattern — so its per-step time shows the
// additional win of skipping the per-product reorganisation.
func SpMM(s Scale) ([]string, error) {
	reps := s.Runs
	if reps < 1 {
		reps = 1
	}
	const steps = 8
	b := sparse.CurrentBlocking()
	lines := []string{
		"SpMM: row-streamed vs blocked sparse kernels (per-product time)",
		fmt.Sprintf("panel %d cols, cutover %d madds, reps %d, plan amortised over %d propagation steps",
			b.Panel, sparse.BlockedSpMMCutover, reps, steps),
		fmt.Sprintf("%22s %12s %12s %12s %9s %9s", "graph x cols", "rowstream", "blocked", "plan/step", "blk-spd", "plan-spd"),
	}
	cases := []struct {
		n, deg, cols int
	}{
		{10000, 20, 64},
		{50000, 5, 64},
		{50000, 20, 16},
		{50000, 20, 64},
	}
	for _, c := range cases {
		adj := benchAdjacency(c.n, c.deg, s.Seed)
		x := matrix.New(c.n, c.cols)
		rng := rand.New(rand.NewSource(s.Seed + int64(c.cols)))
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}

		var naive, blocked *matrix.Dense
		tNaive := best(reps, func() { naive = adj.MulDenseNaive(x) })
		tBlocked := best(reps, func() { blocked = adj.MulDense(x) })
		if !matrix.Equal(naive, blocked, 1e-12) {
			return nil, fmt.Errorf("bench: spmm paths diverge at n=%d deg=%d cols=%d", c.n, c.deg, c.cols)
		}

		// Plan reuse: one layout, k products. Verify the propagated result
		// against k reference products before timing.
		plan := sparse.NewPlan(adj)
		want := x
		for k := 0; k < steps; k++ {
			want = adj.MulDenseNaive(want)
		}
		got := plan.PropagateInto(x.Clone(), matrix.New(c.n, c.cols), steps)
		if !matrix.Equal(got, want, 1e-12) {
			return nil, fmt.Errorf("bench: spmm plan propagation diverges at n=%d deg=%d cols=%d", c.n, c.deg, c.cols)
		}
		scratch := matrix.New(c.n, c.cols)
		xbuf := matrix.New(c.n, c.cols)
		tPlan := best(reps, func() {
			copy(xbuf.Data, x.Data)
			plan = sparse.NewPlan(adj) // plan build is part of the amortised cost
			plan.PropagateInto(xbuf, scratch, steps)
		}) / steps

		lines = append(lines, fmt.Sprintf("%22s %12v %12v %12v %8.2fx %8.2fx",
			fmt.Sprintf("%dn/d%d x %d", c.n, c.deg, c.cols),
			tNaive.Round(time.Microsecond), tBlocked.Round(time.Microsecond), tPlan.Round(time.Microsecond),
			float64(tNaive)/float64(tBlocked), float64(tNaive)/float64(tPlan)))
	}
	return lines, nil
}

// benchAdjacency builds the normalised adjacency of a random graph with n
// nodes and roughly deg entries per row (uniformly random endpoints — the
// least cache-friendly topology, so the reported speedups are the engine's
// floor rather than a locality best case).
func benchAdjacency(n, deg int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed + int64(n*deg)))
	coords := make([]sparse.Coord, 0, n*deg)
	for i := 0; i < n; i++ {
		for k := 0; k < deg; k++ {
			coords = append(coords, sparse.Coord{Row: i, Col: rng.Intn(n), Val: 1})
		}
	}
	return sparse.FromCoords(n, n, coords).WithSelfLoops().Normalized(sparse.NormSym)
}
