package bench

import (
	"strings"
	"testing"
)

// TestTortureParse covers the spec grammar: defaults, overrides, round-trip,
// and rejection of unknown scenarios, unknown keys and malformed pairs.
func TestTortureParse(t *testing.T) {
	sc, err := ParseTorture("overload")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Params["pending"] != 96 || sc.Params["conc"] != 24 {
		t.Fatalf("defaults not applied: %v", sc.Params)
	}
	sc, err = ParseTorture("overload:pending=8,conc=4")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Params["pending"] != 8 || sc.Params["conc"] != 4 {
		t.Fatalf("overrides not applied: %v", sc.Params)
	}
	rt, err := ParseTorture(sc.Spec())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", sc.Spec(), err)
	}
	for k, v := range sc.Params {
		if rt.Params[k] != v {
			t.Fatalf("round-trip lost %s: %v vs %v", k, rt.Params[k], v)
		}
	}
	for _, bad := range []string{"nope", "overload:bogus=1", "overload:pending", "overload:pending=x"} {
		if _, err := ParseTorture(bad); err == nil {
			t.Errorf("ParseTorture(%q) accepted", bad)
		}
	}
	if len(TortureNames()) != 4 {
		t.Fatalf("scenario registry has %d entries, want 4", len(TortureNames()))
	}
}

// TestTortureOverloadScenario runs the overload scenario end to end at tiny
// scale: the harness's own invariant checks (no drops, exactly-once,
// Retry-After on sheds, bit-identical survivors, post-storm recovery) are
// the assertions. How much actually sheds depends on machine timing, so the
// test pins the outcome accounting, not a shed count.
func TestTortureOverloadScenario(t *testing.T) {
	rep, err := RunTorture("overload:conc=8,reqs=8,nodes=32,pending=64", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK+rep.Shed != rep.Requests {
		t.Fatalf("outcomes don't cover requests: %+v", rep)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("lenient scan quarantined %d artifacts, want 1: %+v", rep.Quarantined, rep)
	}
	if !strings.HasPrefix(rep.Scenario, "overload:") {
		t.Fatalf("canonical spec = %q", rep.Scenario)
	}
}

// BenchmarkTortureOverload is the smoke-bench probe of serving resilience:
// one seeded overload storm per iteration, reporting shed-rate and
// client-observed p99 under overload as extra metrics so cmd/benchjson
// records them in BENCH_smoke.json.
func BenchmarkTortureOverload(b *testing.B) {
	s := tinyScale()
	for i := 0; i < b.N; i++ {
		rep, err := RunTorture("overload:conc=8,reqs=8,nodes=32,pending=64", s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.ShedRate, "shed-rate")
		b.ReportMetric(float64(rep.P99.Nanoseconds()), "p99-ns")
	}
}
