package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/matrix"
)

// GEMM is the dense-kernel micro experiment ("gemm"): it times the naive
// kernel against the blocked engine across matrix sizes, reports the
// speedup, and cross-checks the two paths to 1e-12 on every cell — a quick
// field check of the engine on whatever machine the harness runs on,
// complementing the BenchmarkGEMM sweep in bench_test.go. Scale.Runs sets
// the repetitions per cell (best time wins, amortising scheduler noise).
func GEMM(s Scale) ([]string, error) {
	reps := s.Runs
	if reps < 1 {
		reps = 1
	}
	t := matrix.CurrentTiling()
	lines := []string{
		"GEMM: naive vs blocked dense kernels",
		fmt.Sprintf("tiles MC=%d KC=%d NC=%d, cutover %d madds, reps %d", t.MC, t.KC, t.NC, matrix.BlockedCutover, reps),
		fmt.Sprintf("%8s %14s %14s %9s", "size", "naive", "blocked", "speedup"),
	}
	for _, n := range []int{128, 256, 512} {
		rng := rand.New(rand.NewSource(s.Seed + int64(n)))
		a, b := matrix.New(n, n), matrix.New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		var naive, blocked *matrix.Dense
		tNaive := best(reps, func() { naive = matrix.MulNaive(a, b) })
		tBlocked := best(reps, func() { blocked = matrix.Mul(a, b) })
		if !matrix.Equal(naive, blocked, 1e-12) {
			return nil, fmt.Errorf("bench: gemm paths diverge at n=%d", n)
		}
		lines = append(lines, fmt.Sprintf("%8s %14v %14v %8.2fx",
			fmt.Sprintf("%dx%d", n, n),
			tNaive.Round(time.Microsecond), tBlocked.Round(time.Microsecond),
			float64(tNaive)/float64(tBlocked)))
	}
	return lines, nil
}

// best returns the fastest of reps timed runs of fn.
func best(reps int, fn func()) time.Duration {
	var min time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		fn()
		if d := time.Since(start); r == 0 || d < min {
			min = d
		}
	}
	return min
}
