// Package bench is the experiment harness of the AdaFGL reproduction: one
// runner per table and figure of the paper's evaluation section, each
// regenerating the same rows/series the paper reports (at configurable
// scale). Runners return formatted text lines so they can be driven by the
// adafgl-bench CLI, Go benchmarks, and tests alike.
package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/fgl"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/partition"
)

// Method is the common contract satisfied by fgl baselines and core.AdaFGL.
type Method interface {
	Name() string
	Run(subgraphs []*graph.Graph, cfg models.Config, opt federated.Options) (*federated.Result, error)
}

// Scale controls experiment cost. Defaults regenerate the paper's shape in
// minutes on one CPU; raise the fields toward the paper's protocol (factor 1,
// 100 rounds, 10 runs) for tighter numbers.
type Scale struct {
	// Factor scales dataset node counts (1 = registry size).
	Factor float64
	// Clients is the federation size (paper default: 10).
	Clients int
	// Rounds / LocalEpochs configure Step-1 federated training.
	Rounds, LocalEpochs int
	// Runs is the number of seeds averaged per cell (paper: 10).
	Runs int
	// AdaEpochs is AdaFGL's Step-2 epoch budget.
	AdaEpochs int
	// Correction is the local-correction epoch budget for GNN wrappers.
	Correction int
	Seed       int64
	// Async configures the Step-1 aggregation engine for every experiment
	// (wired to the -async/-async-k/-async-staleness flags of
	// cmd/adafgl-bench); the zero value keeps the synchronous reference.
	Async federated.AsyncOptions
	// Robust configures Step-1 robust aggregation for every experiment
	// (wired to the -robust/-trim-frac/-clip/-dp-noise flags of
	// cmd/adafgl-bench); the zero value keeps exact FedAvg. The chaos
	// experiment owns its aggregator sweep and ignores this field.
	Robust federated.RobustOptions
	// ShardNodes / ShardMax size the "shard" scaling experiment: the
	// streamed graph's node count and the largest shard count of the sweep
	// (wired to -shard-nodes/-shard-max; zero selects the smoke defaults of
	// 60k nodes and 8 shards — the CLI default is the million-node run).
	ShardNodes, ShardMax int
}

// DefaultScale is the smoke scale used by tests and testing.B benches.
func DefaultScale() Scale {
	return Scale{Factor: 0.2, Clients: 5, Rounds: 12, LocalEpochs: 2, Runs: 2, AdaEpochs: 80, Correction: 10, Seed: 1}
}

// PaperScale approximates the paper's protocol (expensive on one CPU).
func PaperScale() Scale {
	return Scale{Factor: 1, Clients: 10, Rounds: 100, LocalEpochs: 5, Runs: 10, AdaEpochs: 100, Correction: 20, Seed: 1}
}

func (s Scale) cfg() models.Config {
	cfg := models.DefaultConfig()
	cfg.Hidden = 32
	cfg.Dropout = 0
	return cfg
}

func (s Scale) fedOpts(seed int64) federated.Options {
	o := federated.DefaultOptions()
	o.Rounds = s.Rounds
	o.LocalEpochs = s.LocalEpochs
	o.Seed = seed
	o.Async = s.Async
	o.Robust = s.Robust
	return o
}

func (s Scale) adaMethod() *core.AdaFGL {
	a := core.New()
	a.Opt.Epochs = s.AdaEpochs
	return a
}

// SplitKind selects the data simulation strategy.
type SplitKind int

const (
	// Community is the Louvain-based community split.
	Community SplitKind = iota
	// NonIID is the structure Non-iid split with random-injection.
	NonIID
	// NonIIDMeta is the structure Non-iid split with meta-injection.
	NonIIDMeta
)

func (k SplitKind) String() string {
	switch k {
	case Community:
		return "Community"
	case NonIID:
		return "Non-iid"
	case NonIIDMeta:
		return "Non-iid(meta)"
	}
	return "?"
}

// MakeSplit generates the dataset and applies the chosen strategy.
func MakeSplit(name string, kind SplitKind, s Scale, seed int64) ([]*graph.Graph, error) {
	spec, err := datasets.ByName(name)
	if err != nil {
		return nil, err
	}
	g := datasets.GenerateScaled(spec, s.Factor, seed)
	rng := rand.New(rand.NewSource(seed + 101))
	switch kind {
	case Community:
		return partition.CommunitySplit(g, s.Clients, rng).Subgraphs, nil
	case NonIID:
		return partition.StructureNonIIDSplit(g, s.Clients, partition.DefaultNonIID(), rng).Subgraphs, nil
	case NonIIDMeta:
		opt := partition.DefaultNonIID()
		opt.Meta = true
		return partition.StructureNonIIDSplit(g, s.Clients, opt, rng).Subgraphs, nil
	}
	return nil, fmt.Errorf("bench: unknown split %v", kind)
}

// ResolveMethod returns the named method; "AdaFGL" resolves to the core
// implementation, everything else through the fgl registry.
func ResolveMethod(name string, s Scale) (Method, error) {
	if name == "AdaFGL" {
		return s.adaMethod(), nil
	}
	m, err := fgl.MethodByName(name)
	if err != nil {
		return nil, err
	}
	if fm, ok := m.(fgl.FedModel); ok {
		fm.Correction = s.Correction
		return fm, nil
	}
	return m, nil
}

// Cell is one mean±std accuracy measurement.
type Cell struct {
	Mean, Std float64
	// Curve is the round-accuracy trace of the first run.
	Curve []float64
	// PerClient holds the first run's per-client accuracies.
	PerClient []float64
}

// RunCell evaluates a method on a dataset/split over s.Runs seeds.
func RunCell(dataset string, kind SplitKind, methodName string, s Scale) (Cell, error) {
	var accs []float64
	var cell Cell
	for r := 0; r < s.Runs; r++ {
		seed := s.Seed + int64(r)*1000
		subs, err := MakeSplit(dataset, kind, s, seed)
		if err != nil {
			return cell, err
		}
		m, err := ResolveMethod(methodName, s)
		if err != nil {
			return cell, err
		}
		res, err := m.Run(subs, s.cfg(), s.fedOpts(seed))
		if err != nil {
			return cell, err
		}
		accs = append(accs, res.TestAcc)
		if r == 0 {
			cell.Curve = res.RoundAcc
			cell.PerClient = res.PerClient
		}
	}
	cell.Mean, cell.Std = meanStd(accs)
	return cell, nil
}

func meanStd(v []float64) (float64, float64) { return metrics.MeanStd(v) }

// fmtCell renders "82.9±0.5" in the paper's percent convention.
func fmtCell(c Cell) string { return fmt.Sprintf("%5.1f±%.1f", c.Mean*100, c.Std*100) }

// fmtCurve renders a sparkline-ish numeric series.
func fmtCurve(curve []float64, every int) string {
	s := ""
	for i := 0; i < len(curve); i += every {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%.2f", curve[i])
	}
	return s
}
