package bench

import (
	"fmt"
	"sort"
)

// Experiment couples an id with its runner and paper reference.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) ([]string, error)
}

// Experiments registers every table and figure of the evaluation section.
var Experiments = map[string]Experiment{
	"table1":  {"table1", "Table I: dataset statistics", Table1},
	"table2":  {"table2", "Table II: transductive performance, both splits", Table2},
	"table3":  {"table3", "Table III: inductive performance, both splits", Table3},
	"table3i": {"table3i", "Table III variant: true inductive protocol (hidden test nodes)", Table3Inductive},
	"table4":  {"table4", "Table IV: transductive, random vs meta injection", Table4},
	"table5":  {"table5", "Table V: inductive, random vs meta injection", Table5},
	"table6":  {"table6", "Table VI: ablation, homophilous datasets", Table6},
	"table7":  {"table7", "Table VII: ablation, heterophilous datasets", Table7},
	"table8":  {"table8", "Table VIII: FGL paradigm comparison", Table8},
	"fig2":    {"fig2", "Fig. 2: empirical analysis of the two splits", Fig2},
	"fig5":    {"fig5", "Fig. 5: varying topology heterogeneity", Fig5},
	"fig6":    {"fig6", "Fig. 6: α/β sensitivity", Fig6},
	"fig7":    {"fig7", "Fig. 7: client-dependent HCS", Fig7},
	"fig8":    {"fig8", "Fig. 8: convergence (large datasets)", Fig8},
	"fig9":    {"fig9", "Fig. 9: convergence (small datasets)", Fig9},
	"fig10":   {"fig10", "Fig. 10: sparsity robustness", Fig10},
	"fig11":   {"fig11", "Fig. 11: sparse client participation", Fig11},
	"gemm":    {"gemm", "Micro: naive vs blocked dense GEMM speedup", GEMM},
	"spmm":    {"spmm", "Micro: row-streamed vs blocked SpMM speedup (plan reuse included)", SpMM},
	"async":   {"async", "Micro: sync vs async aggregation under client-speed skew", Async},
	"chaos":   {"chaos", "Chaos: failure scenarios x robust aggregators, AdaFGL vs FGL baseline", Chaos},
	"serve":   {"serve", "Micro: single-request vs batched inference serving", Serve},
	"zoo":     {"zoo", "Micro: multi-model registry serving, routing overhead + live A/B", Zoo},
	"torture": {"torture", "Torture: HTTP serving resilience under overload/deadline/panic/corrupt scenarios", Torture},
	"shard":   {"shard", "Scale: streamed million-node graph sharding, memory/throughput linearity + bit-identity", ShardExp},
	"obs":     {"obs", "Micro: telemetry bit-identity (serve + federated) and hot-path overhead budget", Obs},
}

// IDs returns the experiment ids sorted.
func IDs() []string {
	out := make([]string, 0, len(Experiments))
	for id := range Experiments {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RunExperiment executes one experiment by id.
func RunExperiment(id string, s Scale) ([]string, error) {
	e, ok := Experiments[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return e.Run(s)
}
