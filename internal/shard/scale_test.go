package shard

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// TestScaleSmoke is the CI-sized slice of the million-node story: a
// 100k-node graph is stream-built into 4 shards without ever materialising
// the full edge list, every shard stays within a balanced memory budget,
// and the routed server answers bit-identically to the single-shard one on
// the same seed. The 1M+ sweep lives in `adafgl-bench -exp shard`
// (make shard-demo); this test keeps the invariant on every CI run.
// Skipped in -short mode and under the race detector, where instrumented
// 100k-node builds dominate the package's runtime.
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("scale smoke skipped under the race detector")
	}
	const shards = 4
	spec := datasets.DefaultStream(100_000, 77)

	p, err := PlanFromStream(spec, shards, 7)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := BuildFromStream(spec, p, sparse.NormSym)
	if err != nil {
		t.Fatal(err)
	}
	// Memory budget: the largest shard must stay near the balanced share —
	// its footprint is what a per-process fleet provisions for.
	budget := int(float64(sh.Bytes()) / shards * 1.35)
	if got := sh.MaxShardBytes(); got > budget {
		t.Fatalf("largest shard %d bytes exceeds balanced budget %d (total %d)", got, budget, sh.Bytes())
	}

	one, err := NewPlan(make([]int32, spec.Nodes), 1)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := BuildFromStream(spec, one, sparse.NormSym)
	if err != nil {
		t.Fatal(err)
	}

	// The reassembled 2-hop embedding must match the single-shard one bit
	// for bit before any serving machinery is involved.
	gotLoc, err := sh.Embedding(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantLoc, err := whole.Embedding(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, want := gatherGlobal(sh, gotLoc), gatherGlobal(whole, wantLoc)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("100k embedding differs from unsharded at %d", i)
		}
	}

	// Serving path: both fleets behind the same head answer one strided
	// sample of nodes bit-identically.
	w := matrix.New(spec.Features, spec.Classes)
	for i := range w.Data {
		w.Data[i] = float64(i%13) - 6
	}
	head := []models.HeadLayer{{W: w, Bias: make([]float64, spec.Classes)}}
	rec := models.EmbeddingSpec{Hops: 2, Norm: sparse.NormSym}
	srv, err := NewFromParts(sh, "SGC", head, rec, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ref, err := NewFromParts(whole, "SGC", head, rec, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	var nodes []int
	for v := 0; v < spec.Nodes; v += 97 {
		nodes = append(nodes, v)
	}
	a, err := srv.Predict(nodes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ref.Predict(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Class != b[i].Class {
			t.Fatalf("query %d: sharded (%d,%d) vs unsharded (%d,%d)",
				i, a[i].Node, a[i].Class, b[i].Node, b[i].Class)
		}
		for j := range a[i].Logits {
			if a[i].Logits[j] != b[i].Logits[j] {
				t.Fatalf("query %d logit %d differs", i, j)
			}
		}
	}
}
