package shard

import (
	"context"
	"fmt"
	"time"

	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// The slab protocol: each shard's working state during propagation is a
// len(Cols) × F dense slab, one row per column-space node — owned rows live
// at colOfLocal positions, halo rows at the halo positions. A propagation
// hop is then purely local SpMM (the shard's Adj over its own slab) followed
// by one Exchange that refreshes every halo row from its owner's slab. In a
// real fleet Exchange is the network step; here it is a bounded set of row
// copies, which keeps the simulated fleet's numerics exactly those of the
// distributed one.

// FeatureSlabs builds the hop-zero slabs: every shard's feature rows
// scattered to their column positions, halos filled by one exchange.
func (sh *Sharded) FeatureSlabs() []*matrix.Dense {
	return sh.featureSlabsCtx(context.Background())
}

// featureSlabsCtx is FeatureSlabs under a request context (trace threading
// only).
func (sh *Sharded) featureSlabsCtx(ctx context.Context) []*matrix.Dense {
	slabs := make([]*matrix.Dense, len(sh.Shards))
	for i, s := range sh.Shards {
		slab := matrix.New(len(s.Cols), sh.Features)
		for local, pos := range s.colOfLocal {
			copy(slab.Row(int(pos)), s.X.Row(local))
		}
		slabs[i] = slab
	}
	sh.ExchangeCtx(ctx, slabs)
	return slabs
}

// Exchange refreshes every shard's halo rows from the owners' slabs — the
// cross-shard traffic of one propagation hop. Halo rows are exact copies of
// the owner's rows, never recomputed, so a value observed through a halo is
// bit-equal to the value the owner holds.
func (sh *Sharded) Exchange(slabs []*matrix.Dense) {
	sh.ExchangeCtx(context.Background(), slabs)
}

// ExchangeCtx is Exchange under a request context: when the context carries
// a telemetry trace ID (a serving window's), the exchange records a span on
// that trace, so one trace follows a request from the HTTP handler through
// the batch window into the halo exchange it paid for. The exchanged bytes
// and wall time feed the adafgl_shard_exchange_* families either way. The
// row copies themselves are identical to Exchange — observation only.
func (sh *Sharded) ExchangeCtx(ctx context.Context, slabs []*matrix.Dense) {
	observe := telemetry.Enabled()
	var start time.Time
	var sp *telemetry.Span
	if observe {
		if id, ok := telemetry.TraceFrom(ctx); ok {
			sp = telemetry.DefaultTracer().Span(id, "shard.exchange")
		}
		start = time.Now()
	}
	var rows, bytes uint64
	for i, s := range sh.Shards {
		for _, h := range s.halos {
			copy(slabs[i].Row(int(h.pos)), slabs[h.owner].Row(int(h.row)))
		}
		if observe {
			rows += uint64(len(s.halos))
			bytes += uint64(len(s.halos)) * uint64(slabs[i].Cols) * 8
		}
	}
	if observe {
		telExchanges.Inc()
		telExchangeBytes.Add(bytes)
		telExchangeSeconds.Observe(time.Since(start).Seconds())
		sp.Attr("halo_rows", rows).Attr("bytes", bytes).End()
	}
}

// PropagateSlabs runs one Ã·H hop: per shard, the local blocked SpMM over
// its slab produces the owned rows of the next layer, which are scattered
// into a fresh slab; one Exchange then fills the halo rows. Each owned
// output row accumulates its neighbour terms in ascending global-column
// order — the same order as the unsharded kernel — which is what keeps
// sharded propagation bit-identical to single-process propagation.
func (sh *Sharded) PropagateSlabs(slabs []*matrix.Dense) []*matrix.Dense {
	return sh.propagateSlabsCtx(context.Background(), slabs)
}

// propagateSlabsCtx is PropagateSlabs under a request context (trace
// threading only).
func (sh *Sharded) propagateSlabsCtx(ctx context.Context, slabs []*matrix.Dense) []*matrix.Dense {
	next := make([]*matrix.Dense, len(sh.Shards))
	for i, s := range sh.Shards {
		local := s.plan.MulDense(slabs[i])
		slab := matrix.New(len(s.Cols), local.Cols)
		for l, pos := range s.colOfLocal {
			copy(slab.Row(int(pos)), local.Row(l))
		}
		next[i] = slab
	}
	sh.ExchangeCtx(ctx, next)
	return next
}

// LocalRows gathers each shard's owned rows out of its slab, in local-id
// order — the per-shard slice of the global matrix the slabs represent.
func (sh *Sharded) LocalRows(slabs []*matrix.Dense) []*matrix.Dense {
	out := make([]*matrix.Dense, len(sh.Shards))
	for i, s := range sh.Shards {
		m := matrix.New(len(s.Nodes), slabs[i].Cols)
		for l, pos := range s.colOfLocal {
			copy(m.Row(l), slabs[i].Row(int(pos)))
		}
		out[i] = m
	}
	return out
}

// Embedding materialises each shard's slice of a decoupled model's
// propagated embedding (models.EmbeddingSpec): K hops of halo-exchanged
// propagation, taking the final hop alone (weights nil) or combining all
// K+1 hops Σ_k weights[k]·X^(k) in ascending k order — the accumulation
// order GAMLP's combine uses, so the shard rows are bit-equal to the
// corresponding rows of the unsharded embedding.
func (sh *Sharded) Embedding(hops int, weights []float64) ([]*matrix.Dense, error) {
	if hops < 0 {
		return nil, fmt.Errorf("shard: Embedding: %d hops < 0", hops)
	}
	if weights != nil && len(weights) != hops+1 {
		return nil, fmt.Errorf("shard: Embedding: %d weights for %d hops (want %d)", len(weights), hops, hops+1)
	}
	slabs := sh.FeatureSlabs()
	if weights == nil {
		for k := 0; k < hops; k++ {
			slabs = sh.PropagateSlabs(slabs)
		}
		return sh.LocalRows(slabs), nil
	}
	acc := make([]*matrix.Dense, len(sh.Shards))
	for i, s := range sh.Shards {
		acc[i] = matrix.New(len(s.Nodes), sh.Features)
	}
	for k := 0; k <= hops; k++ {
		if k > 0 {
			slabs = sh.PropagateSlabs(slabs)
		}
		locals := sh.LocalRows(slabs)
		for i := range acc {
			matrix.AddScaled(acc[i], weights[k], locals[i])
		}
	}
	return acc, nil
}

// Forward runs a message-passing model's inference pipeline
// (models.Layered) over the shards: propagation steps go through
// PropagateSlabs (local SpMM + halo exchange), dense head steps apply
// row-wise to the whole slab — halo rows transform exactly like the owner's
// copies, because a head step is a pure per-row function, so no exchange is
// needed between a head step and the next propagation. Returns each shard's
// owned logit rows.
func (sh *Sharded) Forward(layers []models.InferenceLayer) []*matrix.Dense {
	return sh.ForwardCtx(context.Background(), layers)
}

// ForwardCtx is Forward under a request context: the batching window's
// trace ID rides ctx into every halo exchange of the pipeline, so the
// exchange spans of a served request join its trace. Numerics are identical
// to Forward.
func (sh *Sharded) ForwardCtx(ctx context.Context, layers []models.InferenceLayer) []*matrix.Dense {
	slabs := sh.featureSlabsCtx(ctx)
	for _, l := range layers {
		if l.Propagate {
			slabs = sh.propagateSlabsCtx(ctx, slabs)
			continue
		}
		for i, slab := range slabs {
			slabs[i] = serve.ApplyHead([]models.HeadLayer{l.Head}, slab)
		}
	}
	return sh.LocalRows(slabs)
}
