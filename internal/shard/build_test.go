package shard

import (
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// buildPair constructs the same sharded graph twice — from the materialised
// graph and from the edge stream — under one plan.
func buildPair(t *testing.T, spec datasets.StreamSpec, shards int, kind sparse.NormKind) (*Sharded, *Sharded) {
	t.Helper()
	p, err := PlanFromStream(spec, shards, 17)
	if err != nil {
		t.Fatal(err)
	}
	fromStream, err := BuildFromStream(spec, p, kind)
	if err != nil {
		t.Fatal(err)
	}
	fromGraph, err := BuildFromGraph(spec.Materialize(), p, kind)
	if err != nil {
		t.Fatal(err)
	}
	return fromStream, fromGraph
}

// TestStreamBuildMatchesGraphBuild is the tentpole equivalence: the
// bounded-memory streaming builder must produce shards bit-equal to slicing
// the materialised graph — same column spaces, same normalised adjacency
// values, same features and labels — for every normalisation kind.
func TestStreamBuildMatchesGraphBuild(t *testing.T) {
	spec := datasets.DefaultStream(400, 21)
	for _, kind := range []sparse.NormKind{sparse.NormSym, sparse.NormRW, sparse.NormReverse} {
		st, gr := buildPair(t, spec, 4, kind)
		if st.Features != gr.Features || st.Classes != gr.Classes || st.Norm != gr.Norm {
			t.Fatalf("kind %v: dims differ", kind)
		}
		for i := range st.Shards {
			a, b := st.Shards[i], gr.Shards[i]
			if len(a.Nodes) != len(b.Nodes) || len(a.Cols) != len(b.Cols) {
				t.Fatalf("kind %v shard %d: shape %d/%d vs %d/%d",
					kind, i, len(a.Nodes), len(a.Cols), len(b.Nodes), len(b.Cols))
			}
			for j := range a.Cols {
				if a.Cols[j] != b.Cols[j] {
					t.Fatalf("kind %v shard %d: col %d is %d vs %d", kind, i, j, a.Cols[j], b.Cols[j])
				}
			}
			if len(a.Adj.ColIdx) != len(b.Adj.ColIdx) {
				t.Fatalf("kind %v shard %d: nnz %d vs %d", kind, i, len(a.Adj.ColIdx), len(b.Adj.ColIdx))
			}
			for k := range a.Adj.ColIdx {
				if a.Adj.ColIdx[k] != b.Adj.ColIdx[k] || a.Adj.Val[k] != b.Adj.Val[k] {
					t.Fatalf("kind %v shard %d: entry %d is (%d,%v) vs (%d,%v)",
						kind, i, k, a.Adj.ColIdx[k], a.Adj.Val[k], b.Adj.ColIdx[k], b.Adj.Val[k])
				}
			}
			for k := range a.X.Data {
				if a.X.Data[k] != b.X.Data[k] {
					t.Fatalf("kind %v shard %d: feature %d is %v vs %v", kind, i, k, a.X.Data[k], b.X.Data[k])
				}
			}
			for j := range a.Labels {
				if a.Labels[j] != b.Labels[j] {
					t.Fatalf("kind %v shard %d: label %d is %d vs %d", kind, i, j, a.Labels[j], b.Labels[j])
				}
			}
		}
	}
}

// TestShardStructure checks the halo tables: every shard column is either
// owned (indexed by colOfLocal) or a halo wired to its owner's local row,
// and the byte accounting is positive and dominated by the largest shard.
func TestShardStructure(t *testing.T) {
	spec := datasets.DefaultStream(300, 2)
	sh, _ := buildPair(t, spec, 3, sparse.NormSym)
	for _, s := range sh.Shards {
		owned := make(map[int]bool, len(s.Nodes))
		for i, v := range s.Nodes {
			pos := int(s.colOfLocal[i])
			if s.Cols[pos] != v {
				t.Fatalf("shard %d: colOfLocal[%d] -> col %d, want node %d", s.ID, i, s.Cols[pos], v)
			}
			owned[pos] = true
		}
		if len(s.halos) != len(s.Cols)-len(s.Nodes) {
			t.Fatalf("shard %d: %d halos for %d cols / %d nodes", s.ID, len(s.halos), len(s.Cols), len(s.Nodes))
		}
		if s.Halo() != len(s.halos) {
			t.Fatalf("shard %d: Halo() = %d, want %d", s.ID, s.Halo(), len(s.halos))
		}
		for _, h := range s.halos {
			if owned[int(h.pos)] {
				t.Fatalf("shard %d: halo at owned position %d", s.ID, h.pos)
			}
			v := s.Cols[h.pos]
			o := sh.Shards[h.owner]
			if int(h.owner) == s.ID || o.Cols[o.colOfLocal[sh.Plan.LocalID(v)]] != v || int(h.row) != int(o.colOfLocal[sh.Plan.LocalID(v)]) {
				t.Fatalf("shard %d: halo for node %d miswired to shard %d row %d", s.ID, v, h.owner, h.row)
			}
		}
		if s.Bytes() <= 0 {
			t.Fatalf("shard %d: Bytes() = %d", s.ID, s.Bytes())
		}
	}
	if sh.MaxShardBytes() > sh.Bytes() || sh.MaxShardBytes() <= 0 {
		t.Fatalf("MaxShardBytes %d vs total %d", sh.MaxShardBytes(), sh.Bytes())
	}
}

// TestBuildErrors covers the builders' validation paths.
func TestBuildErrors(t *testing.T) {
	spec := datasets.DefaultStream(100, 4)
	g := spec.Materialize()
	p, err := PlanFromStream(spec, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	noX := graph.New(g.N, g.Edges, nil, g.Labels, g.Classes)
	if _, err := BuildFromGraph(noX, p, sparse.NormSym); err == nil || !strings.Contains(err.Error(), "no features") {
		t.Fatalf("featureless build: %v", err)
	}
	small := datasets.DefaultStream(99, 4)
	if _, err := BuildFromGraph(small.Materialize(), p, sparse.NormSym); err == nil {
		t.Fatal("expected plan/graph size mismatch")
	}
	if _, err := BuildFromStream(small, p, sparse.NormSym); err == nil {
		t.Fatal("expected plan/spec size mismatch")
	}
	bad := spec
	bad.Classes = 0
	if _, err := BuildFromStream(bad, p, sparse.NormSym); err == nil {
		t.Fatal("expected invalid-spec error")
	}
}
