package shard

import (
	"context"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// label routes a global node id to its owner shard's label table.
func (sh *Sharded) label(v int) (int, bool) {
	if v < 0 || v >= sh.Plan.N() {
		return 0, false
	}
	s := sh.Shards[sh.Plan.Owner(v)]
	if s.Labels == nil {
		return 0, false
	}
	return s.Labels[sh.Plan.LocalID(v)], true
}

// shardSource exposes one shard as a graph.NodeSource (local ids): the node
// universe a per-shard serve.Server validates and answers against.
type shardSource struct {
	s       *Shard
	classes int
}

func (src shardSource) NumNodes() int   { return len(src.s.Nodes) }
func (src shardSource) NumClasses() int { return src.classes }
func (src shardSource) Label(local int) (int, bool) {
	if src.s.Labels == nil || local < 0 || local >= len(src.s.Labels) {
		return 0, false
	}
	return src.s.Labels[local], true
}

// globalSource exposes the whole sharded set as one graph.NodeSource
// (global ids) — the universe the coupled window server serves.
type globalSource struct{ sh *Sharded }

func (src globalSource) NumNodes() int           { return src.sh.Plan.N() }
func (src globalSource) NumClasses() int         { return src.sh.Classes }
func (src globalSource) Label(v int) (int, bool) { return src.sh.label(v) }

// windowModel adapts a sharded message-passing pipeline to models.Model, so
// one serve.Server can batch over it: every Logits call runs the full
// halo-exchanged Forward across the shards and reassembles the global logit
// matrix. It is inference-only — it carries no parameters and cannot train.
type windowModel struct {
	sh     *Sharded
	layers []models.InferenceLayer
}

func (m *windowModel) Params() []*nn.Parameter { return nil }

func (m *windowModel) Logits(train bool) *matrix.Dense {
	return m.LogitsCtx(context.Background(), train)
}

// LogitsCtx implements serve.CtxModel: the batching window's context (and
// with it the request's telemetry trace) threads into the halo-exchanged
// forward, so exchange spans join the trace that opened the window. The
// computation is exactly Logits.
func (m *windowModel) LogitsCtx(ctx context.Context, train bool) *matrix.Dense {
	locals := m.sh.ForwardCtx(ctx, m.layers)
	out := matrix.New(m.sh.Plan.N(), locals[0].Cols)
	for i, s := range m.sh.Shards {
		for l, v := range s.Nodes {
			copy(out.Row(v), locals[i].Row(l))
		}
	}
	return out
}

func (m *windowModel) Backward(grad *matrix.Dense) {
	panic("shard: windowModel is inference-only")
}

// Server routes node-classification queries across per-shard serving
// instances: each shard runs its own serve.Server over its local embedding
// slab, and the router sends every queried node to its owner, reassembling
// answers in query order with global node ids. It implements
// serve.Predictor, so the registry's swap/LRU/breaker machinery and the v1
// HTTP API drive a sharded fleet exactly like a single-process server.
type Server struct {
	sh    *Sharded
	arch  string
	subs  []*serve.Server
	route []routeSeries // per-owner fan-out counters, resolved once
}

// NewFromParts starts a sharded decoupled server from an already-built
// shard set: the embedding recipe is replayed shard-locally (halo exchange
// at the boundaries), and each shard serves its slab behind the shared
// head. The head weights are shared — in a real fleet they are broadcast
// once, dwarfed by the per-shard slabs.
func NewFromParts(sh *Sharded, arch string, head []models.HeadLayer, spec models.EmbeddingSpec, opt serve.Options) (*Server, error) {
	if sh == nil {
		return nil, fmt.Errorf("shard: NewFromParts: nil shard set")
	}
	if sh.Norm != spec.Norm {
		return nil, fmt.Errorf("shard: NewFromParts: shards built with norm %v, spec wants %v", sh.Norm, spec.Norm)
	}
	locals, err := sh.Embedding(spec.Hops, spec.HopWeights)
	if err != nil {
		return nil, fmt.Errorf("shard: NewFromParts: %w", err)
	}
	s := &Server{
		sh: sh, arch: arch,
		subs:  make([]*serve.Server, len(sh.Shards)),
		route: newRouteSeries(len(sh.Shards)),
	}
	for i, shd := range sh.Shards {
		sub, err := serve.NewFromFactors(shardSource{s: shd, classes: sh.Classes}, locals[i], head, arch, opt)
		if err != nil {
			for _, prev := range s.subs[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("shard: NewFromParts: shard %d: %w", i, err)
		}
		s.subs[i] = sub
	}
	return s, nil
}

// NewServer builds a sharded Predictor from a checkpoint: the graph is
// METIS-planned into the given shard count and served shard-aware. With one
// shard it returns the plain single-process server — the degenerate fleet —
// so predictions on any graph that fits in one shard are trivially
// bit-identical to the unsharded path. Decoupled architectures route
// queries to per-shard embedding caches (bit-identical to unsharded at
// every shard count); message-passing architectures batch through a
// halo-exchanged window engine (bit-identical across shard counts).
func NewServer(ck *checkpoint.Checkpoint, shards int, opt serve.Options) (serve.Predictor, error) {
	if ck == nil {
		return nil, fmt.Errorf("shard: NewServer: nil checkpoint")
	}
	if shards <= 1 {
		return serve.New(ck, opt)
	}
	m, err := ck.Model(opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("shard: NewServer: %w", err)
	}
	plan, err := PlanFromGraph(ck.Graph, shards, opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("shard: NewServer: %w", err)
	}
	switch mm := m.(type) {
	case models.ShardableDecoupled:
		spec := mm.EmbeddingSpec()
		sh, err := BuildFromGraph(ck.Graph, plan, spec.Norm)
		if err != nil {
			return nil, fmt.Errorf("shard: NewServer: %w", err)
		}
		_, head := mm.InferenceFactors()
		return NewFromParts(sh, ck.Arch, head, spec, opt)
	case models.Layered:
		sh, err := BuildFromGraph(ck.Graph, plan, mm.PropagationNorm())
		if err != nil {
			return nil, fmt.Errorf("shard: NewServer: %w", err)
		}
		return serve.NewFromModel(globalSource{sh}, &windowModel{sh: sh, layers: mm.InferenceLayers()}, ck.Arch, opt)
	}
	return nil, fmt.Errorf("shard: NewServer: architecture %q is neither decoupled nor layered", ck.Arch)
}

// Predict classifies global node ids, routing each to its owner shard.
// Results come back in query order with global ids; per-node answers are
// bit-identical to the unsharded server's at every shard count.
func (s *Server) Predict(nodes []int) ([]serve.Prediction, error) {
	return s.PredictCtx(context.Background(), nodes)
}

// PredictCtx is Predict under a caller context; deadlines and admission
// control apply per owner-shard sub-request.
func (s *Server) PredictCtx(ctx context.Context, nodes []int) ([]serve.Prediction, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("shard: Predict: empty node list")
	}
	n := s.sh.Plan.N()
	for _, v := range nodes {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("shard: Predict: node %d outside graph of %d nodes", v, n)
		}
	}
	shards := s.sh.Plan.NumShards()
	locals := make([][]int, shards)
	at := make([][]int, shards)
	for i, v := range nodes {
		o := s.sh.Plan.Owner(v)
		locals[o] = append(locals[o], s.sh.Plan.LocalID(v))
		at[o] = append(at[o], i)
	}
	fanout := 0
	if id, ok := telemetry.TraceFrom(ctx); ok {
		sp := telemetry.DefaultTracer().Span(id, "shard.route")
		defer func() { sp.Attr("shards", fanout).Attr("nodes", len(nodes)).End() }()
	}
	out := make([]serve.Prediction, len(nodes))
	for o := 0; o < shards; o++ {
		if len(locals[o]) == 0 {
			continue
		}
		fanout++
		s.route[o].requests.Inc()
		s.route[o].nodes.Add(uint64(len(locals[o])))
		preds, err := s.subs[o].PredictCtx(ctx, locals[o])
		if err != nil {
			return nil, err
		}
		for j, p := range preds {
			p.Node = nodes[at[o][j]]
			out[at[o][j]] = p
		}
	}
	return out, nil
}

// PredictAll classifies every node of the sharded graph.
func (s *Server) PredictAll() ([]serve.Prediction, error) {
	nodes := make([]int, s.sh.Plan.N())
	for i := range nodes {
		nodes[i] = i
	}
	return s.Predict(nodes)
}

// Arch returns the served architecture's registry name.
func (s *Server) Arch() string { return s.arch }

// Nodes returns the total node count across shards.
func (s *Server) Nodes() int { return s.sh.Plan.N() }

// Classes returns the number of output classes.
func (s *Server) Classes() int { return s.sh.Classes }

// Decoupled reports true: the routed path always serves embedding caches.
func (s *Server) Decoupled() bool { return true }

// Label routes a global node id to its owner shard's label table.
func (s *Server) Label(node int) (int, bool) { return s.sh.label(node) }

// Stats aggregates the per-shard serving metrics into one fleet snapshot:
// counters sum, latency percentiles take the worst shard (a query is as
// slow as the shard that answers it), and throughput is total nodes over
// the longest-running shard's window.
func (s *Server) Stats() serve.Snapshot {
	var agg serve.Snapshot
	for _, sub := range s.subs {
		snap := sub.Stats()
		agg.Requests += snap.Requests
		agg.Nodes += snap.Nodes
		agg.Batches += snap.Batches
		agg.Shed += snap.Shed
		agg.Deadlines += snap.Deadlines
		agg.Panics += snap.Panics
		if snap.P50 > agg.P50 {
			agg.P50 = snap.P50
		}
		if snap.P99 > agg.P99 {
			agg.P99 = snap.P99
		}
		if snap.Elapsed > agg.Elapsed {
			agg.Elapsed = snap.Elapsed
		}
	}
	if agg.Batches > 0 {
		agg.MeanBatch = float64(agg.Nodes) / float64(agg.Batches)
	}
	if agg.Elapsed > 0 {
		agg.QueriesPerSec = float64(agg.Nodes) / agg.Elapsed.Seconds()
	}
	return agg
}

// Drain gracefully retires every shard server.
func (s *Server) Drain() {
	for _, sub := range s.subs {
		sub.Drain()
	}
}

// Close stops every shard server.
func (s *Server) Close() {
	for _, sub := range s.subs {
		sub.Close()
	}
}
