package shard

import (
	"strconv"

	"repro/internal/telemetry"
)

// Shard-layer metric families on the process-wide telemetry registry: the
// cross-shard traffic of the slab protocol (halo exchanges) and the
// per-owner fan-out of the routed decoupled server. Per-shard labels are
// the shard index, bounded by the shard count.
var (
	telExchanges = telemetry.Default().Counter("adafgl_shard_exchange_total",
		"Halo exchanges executed (one per propagation hop across all shards).")
	telExchangeBytes = telemetry.Default().Counter("adafgl_shard_exchange_bytes_total",
		"Bytes of halo rows copied between shards.")
	telExchangeSeconds = telemetry.Default().Histogram("adafgl_shard_exchange_seconds",
		"Wall time of one halo exchange.", telemetry.LatencyBuckets)
	telRouteRequests = telemetry.Default().CounterVec("adafgl_shard_requests_total",
		"Sub-requests routed to an owner shard.", "shard")
	telRouteNodes = telemetry.Default().CounterVec("adafgl_shard_fanout_nodes_total",
		"Queried nodes routed to an owner shard.", "shard")
)

// routeSeries caches one owner shard's fan-out counters so the routing hot
// path never pays a family map lookup.
type routeSeries struct {
	requests, nodes *telemetry.Counter
}

// newRouteSeries resolves the per-shard fan-out series once at server
// construction.
func newRouteSeries(shards int) []routeSeries {
	out := make([]routeSeries, shards)
	for o := range out {
		lbl := strconv.Itoa(o)
		out[o] = routeSeries{
			requests: telRouteRequests.With(lbl),
			nodes:    telRouteNodes.With(lbl),
		}
	}
	return out
}
