package shard

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// haloRef wires one halo (boundary) column of a shard to its owner: pos is
// the column position in this shard's Cols, and (owner, row) locate the
// node's live row in the owner shard's working slab. Exchange copies
// owner-slab rows into halo positions through these references.
type haloRef struct {
	pos   int32
	owner int32
	row   int32
}

// Shard is one partition's slice of the graph: the locally owned nodes with
// their feature rows and labels, plus the normalised adjacency rows of
// those nodes over the *column space* Cols — the locally owned nodes
// together with the halo (boundary) nodes reachable in one hop. Cols is
// sorted by global id, so a local SpMM accumulates each output row in
// ascending global-column order — exactly the order of the unsharded
// kernel, which is what makes sharded propagation bit-identical.
type Shard struct {
	// ID is the shard index within its Sharded set.
	ID int
	// Nodes lists the owned global ids, ascending; index i is local row i.
	Nodes []int
	// Cols lists the column-space global ids (locals ∪ halo), ascending.
	Cols []int
	// Adj is the len(Nodes) × len(Cols) normalised self-looped adjacency
	// slice, with column indices into Cols.
	Adj *sparse.CSR
	// X holds the owned nodes' feature rows (len(Nodes) × F).
	X *matrix.Dense
	// Labels holds the owned nodes' classes (nil when the source graph is
	// unlabelled).
	Labels []int

	plan       *sparse.Plan // blocked layout of Adj, built once
	colOfLocal []int32      // position in Cols of Nodes[i]
	halos      []haloRef
}

// Halo returns the number of halo (non-owned) columns of the shard.
func (s *Shard) Halo() int { return len(s.halos) }

// Bytes estimates the shard's resident memory: the CSR counted twice (the
// row layout plus its blocked propagation plan), the feature slab, labels
// and the id/halo tables. This is the per-process figure the scale bench
// tracks against shard count.
func (s *Shard) Bytes() int {
	csr := 8 * (len(s.Adj.RowPtr) + len(s.Adj.ColIdx) + len(s.Adj.Val))
	b := 2 * csr
	b += 8 * len(s.X.Data)
	b += 8 * len(s.Labels)
	b += 8 * (len(s.Nodes) + len(s.Cols))
	b += 4*len(s.colOfLocal) + 12*len(s.halos)
	return b
}

// Sharded is a complete sharded graph: every shard plus the plan that maps
// global ids to (owner, local row). It is the in-process stand-in for a
// shard-per-process fleet — each Shard only ever touches its own rows, and
// all cross-shard traffic goes through Exchange.
type Sharded struct {
	// Plan is the ownership and id mapping.
	Plan *Plan
	// Shards holds one entry per shard, indexed by shard id.
	Shards []*Shard
	// Features and Classes mirror the source graph's dimensions.
	Features, Classes int
	// Norm is the adjacency normalisation baked into every shard's Adj.
	Norm sparse.NormKind
}

// Bytes returns the summed Shard.Bytes across the set.
func (sh *Sharded) Bytes() int {
	total := 0
	for _, s := range sh.Shards {
		total += s.Bytes()
	}
	return total
}

// MaxShardBytes returns the largest single-shard footprint — the per-
// process peak a real fleet would see.
func (sh *Sharded) MaxShardBytes() int {
	max := 0
	for _, s := range sh.Shards {
		if b := s.Bytes(); b > max {
			max = b
		}
	}
	return max
}

// BuildFromGraph slices a materialised graph into shards under plan: each
// shard receives its rows of g's normalised adjacency (values copied
// verbatim, so they are bit-equal to the unsharded Ã), its feature rows and
// labels, and the halo tables. The graph must carry features.
func BuildFromGraph(g *graph.Graph, p *Plan, kind sparse.NormKind) (*Sharded, error) {
	if g.X == nil {
		return nil, fmt.Errorf("shard: BuildFromGraph: graph has no features")
	}
	if p.N() != g.N {
		return nil, fmt.Errorf("shard: BuildFromGraph: plan covers %d nodes, graph has %d", p.N(), g.N)
	}
	full := g.NormAdj(kind)
	sh := &Sharded{
		Plan: p, Shards: make([]*Shard, p.NumShards()),
		Features: g.X.Cols, Classes: g.Classes, Norm: kind,
	}
	nodesByShard := p.NodesByShard()
	for s := range sh.Shards {
		nodes := nodesByShard[s]
		var cols []int
		for _, v := range nodes {
			cs, _ := full.Row(v)
			cols = append(cols, cs...)
		}
		cols = sortedUnique(cols)
		pos := make(map[int]int32, len(cols))
		for i, c := range cols {
			pos[c] = int32(i)
		}
		adj := &sparse.CSR{NRows: len(nodes), NCols: len(cols), RowPtr: make([]int, len(nodes)+1)}
		for i, v := range nodes {
			cs, vs := full.Row(v)
			for k, c := range cs {
				adj.ColIdx = append(adj.ColIdx, int(pos[c]))
				adj.Val = append(adj.Val, vs[k])
			}
			adj.RowPtr[i+1] = len(adj.ColIdx)
		}
		var labels []int
		if g.Labels != nil {
			labels = make([]int, len(nodes))
			for i, v := range nodes {
				labels[i] = g.Labels[v]
			}
		}
		sh.Shards[s] = &Shard{
			ID: s, Nodes: nodes, Cols: cols, Adj: adj,
			X: matrix.SelectRows(g.X, nodes), Labels: labels,
		}
	}
	sh.finalize()
	return sh, nil
}

// BuildFromStream constructs the same sharded layout directly from an edge
// stream, never materialising the full edge list: per shard, one replay
// collects and deduplicates only that shard's adjacency rows. Two rounds
// run over all shards — round one records every node's degree (each shard
// knows its own nodes' degrees after deduplication; halo degrees come from
// the other shards' round-one results), round two rebuilds the rows and
// emits the normalised CSR. Peak transient memory beyond the finished
// shards is a single shard's rows plus the global degree vector.
func BuildFromStream(spec datasets.StreamSpec, p *Plan, kind sparse.NormKind) (*Sharded, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("shard: BuildFromStream: %w", err)
	}
	if p.N() != spec.Nodes {
		return nil, fmt.Errorf("shard: BuildFromStream: plan covers %d nodes, spec has %d", p.N(), spec.Nodes)
	}
	nodesByShard := p.NodesByShard()

	// Round one: per-shard row pass for the deduplicated degrees (self-loop
	// included, matching WithSelfLoops semantics on a stream with no
	// self-draws).
	deg := make([]int32, spec.Nodes)
	for s := 0; s < p.NumShards(); s++ {
		rows := streamRows(spec, p, s, nodesByShard[s])
		for i, v := range nodesByShard[s] {
			deg[v] = int32(len(rows[i]))
		}
	}

	sh := &Sharded{
		Plan: p, Shards: make([]*Shard, p.NumShards()),
		Features: spec.Features, Classes: spec.Classes, Norm: kind,
	}
	// Round two: rebuild each shard's rows and emit its normalised CSR,
	// feature slab and labels.
	for s := range sh.Shards {
		nodes := nodesByShard[s]
		rows := streamRows(spec, p, s, nodes)
		var cols []int
		for _, row := range rows {
			for _, c := range row {
				cols = append(cols, int(c))
			}
		}
		cols = sortedUnique(cols)
		pos := make(map[int]int32, len(cols))
		for i, c := range cols {
			pos[c] = int32(i)
		}
		adj := &sparse.CSR{NRows: len(nodes), NCols: len(cols), RowPtr: make([]int, len(nodes)+1)}
		for i, row := range rows {
			u := nodes[i]
			for _, c := range row {
				adj.ColIdx = append(adj.ColIdx, int(pos[int(c)]))
				adj.Val = append(adj.Val, normValue(kind, float64(deg[u]), float64(deg[c])))
			}
			adj.RowPtr[i+1] = len(adj.ColIdx)
		}
		x := matrix.New(len(nodes), spec.Features)
		labels := make([]int, len(nodes))
		for i, v := range nodes {
			spec.FeatureRow(v, x.Row(i))
			labels[i] = spec.Label(v)
		}
		sh.Shards[s] = &Shard{ID: s, Nodes: nodes, Cols: cols, Adj: adj, X: x, Labels: labels}
	}
	sh.finalize()
	return sh, nil
}

// streamRows replays the edge stream once and returns shard s's adjacency
// rows: for each owned node, the sorted, deduplicated global neighbour ids
// including the node itself (the Â = A + I self-loop).
func streamRows(spec datasets.StreamSpec, p *Plan, s int, nodes []int) [][]int32 {
	rows := make([][]int32, len(nodes))
	spec.ForEachEdge(func(u, v int) {
		if p.Owner(u) == s {
			rows[p.LocalID(u)] = append(rows[p.LocalID(u)], int32(v))
		}
		if p.Owner(v) == s {
			rows[p.LocalID(v)] = append(rows[p.LocalID(v)], int32(u))
		}
	})
	for i := range rows {
		rows[i] = append(rows[i], int32(nodes[i]))
		sort.Slice(rows[i], func(a, b int) bool { return rows[i][a] < rows[i][b] })
		rows[i] = uniqueSorted32(rows[i])
	}
	return rows
}

// normValue is the Eq. (1) entry value for a unit adjacency entry with row
// degree du and column degree dj — the exact floating-point expression
// sparse.Normalized applies to a unit Â entry, so stream-built shards are
// bit-equal to graph-built ones.
func normValue(kind sparse.NormKind, du, dj float64) float64 {
	switch kind {
	case sparse.NormRW:
		return 1 / dj
	case sparse.NormReverse:
		return 1 / du
	default:
		return 1 / (sqrt(du) * sqrt(dj))
	}
}

// finalize builds the per-shard local-column and halo tables; every shard's
// Nodes/Cols must be set.
func (sh *Sharded) finalize() {
	p := sh.Plan
	for _, s := range sh.Shards {
		s.colOfLocal = make([]int32, len(s.Nodes))
		local := 0
		for pos, v := range s.Cols {
			if p.Owner(v) == s.ID {
				s.colOfLocal[p.LocalID(v)] = int32(pos)
				local++
			}
		}
		s.halos = make([]haloRef, 0, len(s.Cols)-local)
	}
	// Halo references need every owner's colOfLocal, so wire them second.
	for _, s := range sh.Shards {
		for pos, v := range s.Cols {
			if o := p.Owner(v); o != s.ID {
				s.halos = append(s.halos, haloRef{
					pos:   int32(pos),
					owner: int32(o),
					row:   sh.Shards[o].colOfLocal[p.LocalID(v)],
				})
			}
		}
		s.plan = sparse.NewPlan(s.Adj)
	}
}

// sortedUnique sorts ints ascending and drops duplicates in place.
func sortedUnique(a []int) []int {
	sort.Ints(a)
	out := a[:0]
	for _, v := range a {
		if len(out) == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// uniqueSorted32 drops duplicates from a sorted int32 slice in place.
func uniqueSorted32(a []int32) []int32 {
	out := a[:0]
	for _, v := range a {
		if len(out) == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// sqrt mirrors sparse's normalisation helper (degrees here are always > 0
// thanks to the self-loop, but the guard keeps the expression identical).
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
