package shard

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/sparse"
)

// gatherGlobal reassembles per-shard local rows into the global matrix.
func gatherGlobal(sh *Sharded, locals []*matrix.Dense) *matrix.Dense {
	out := matrix.New(sh.Plan.N(), locals[0].Cols)
	for i, s := range sh.Shards {
		for l, v := range s.Nodes {
			copy(out.Row(v), locals[i].Row(l))
		}
	}
	return out
}

// TestEmbeddingMatchesUnshardedPropagation is the halo-exchange bit-identity
// anchor: K hops of sharded propagation, reassembled, must equal the
// unsharded blocked-plan propagation bit for bit — final-hop (SGC) and
// weighted-combination (GAMLP) recipes both.
func TestEmbeddingMatchesUnshardedPropagation(t *testing.T) {
	spec := datasets.DefaultStream(350, 13)
	g := spec.Materialize()
	p, err := PlanFromGraph(g, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := BuildFromGraph(g, p, sparse.NormSym)
	if err != nil {
		t.Fatal(err)
	}
	const hops = 3
	stack := models.PropagateK(g.NormAdjPlan(sparse.NormSym), g.X, hops)

	// Final-hop recipe (SGC).
	locals, err := sh.Embedding(hops, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := gatherGlobal(sh, locals)
	want := stack[hops]
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("final-hop embedding differs at %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}

	// Weighted-combination recipe (GAMLP): Σ_k w_k·X^(k) in ascending k.
	weights := []float64{0.4, 0.3, 0.2, 0.1}
	locals, err = sh.Embedding(hops, weights)
	if err != nil {
		t.Fatal(err)
	}
	got = gatherGlobal(sh, locals)
	want = matrix.New(g.N, g.X.Cols)
	for k, w := range weights {
		matrix.AddScaled(want, w, stack[k])
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("combined embedding differs at %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}

	// Hop zero with no weights is the raw feature matrix, exactly.
	locals, err = sh.Embedding(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got = gatherGlobal(sh, locals)
	for i := range g.X.Data {
		if got.Data[i] != g.X.Data[i] {
			t.Fatalf("hop-zero embedding differs at %d", i)
		}
	}
}

// TestEmbeddingShardCountInvariance checks the reassembled embedding is the
// same bit pattern at every shard count — the distributed answer does not
// depend on how the fleet is cut.
func TestEmbeddingShardCountInvariance(t *testing.T) {
	spec := datasets.DefaultStream(240, 29)
	g := spec.Materialize()
	var ref *matrix.Dense
	for _, shards := range []int{1, 2, 4} {
		p, err := PlanFromGraph(g, shards, 11)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := BuildFromGraph(g, p, sparse.NormSym)
		if err != nil {
			t.Fatal(err)
		}
		locals, err := sh.Embedding(2, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := gatherGlobal(sh, locals)
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref.Data {
			if got.Data[i] != ref.Data[i] {
				t.Fatalf("%d shards: embedding differs at %d from 1-shard reference", shards, i)
			}
		}
	}
}

// TestEmbeddingErrors covers the recipe validation.
func TestEmbeddingErrors(t *testing.T) {
	spec := datasets.DefaultStream(120, 3)
	p, err := PlanFromStream(spec, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := BuildFromStream(spec, p, sparse.NormSym)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Embedding(-1, nil); err == nil {
		t.Fatal("expected error for negative hops")
	}
	if _, err := sh.Embedding(2, []float64{1, 2}); err == nil {
		t.Fatal("expected error for wrong weight count")
	}
}

// TestForwardShardCountInvariance checks the layered (message-passing)
// pipeline produces one bit pattern at every shard count: propagation goes
// through halo exchange, dense heads apply row-locally.
func TestForwardShardCountInvariance(t *testing.T) {
	spec := datasets.DefaultStream(200, 31)
	g := spec.Materialize()
	w1 := matrix.New(g.X.Cols, 6)
	b1 := make([]float64, 6)
	w2 := matrix.New(6, spec.Classes)
	b2 := make([]float64, spec.Classes)
	for i := range w1.Data {
		w1.Data[i] = float64(i%7) - 3
	}
	for i := range w2.Data {
		w2.Data[i] = float64(i%5) - 2
	}
	for i := range b1 {
		b1[i] = float64(i) / 4
	}
	layers := []models.InferenceLayer{
		{Propagate: true},
		{Head: models.HeadLayer{W: w1, Bias: b1, ReLU: true}},
		{Propagate: true},
		{Head: models.HeadLayer{W: w2, Bias: b2}},
	}
	var ref *matrix.Dense
	for _, shards := range []int{1, 2, 4} {
		p, err := PlanFromGraph(g, shards, 19)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := BuildFromGraph(g, p, sparse.NormSym)
		if err != nil {
			t.Fatal(err)
		}
		got := gatherGlobal(sh, sh.Forward(layers))
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref.Data {
			if got.Data[i] != ref.Data[i] {
				t.Fatalf("%d shards: logits differ at %d from 1-shard reference", shards, i)
			}
		}
	}
}
