package shard

import (
	"bytes"
	"testing"

	"repro/internal/datasets"
	"repro/internal/sparse"
)

// Native fuzz target for the sharding layer. Seed corpora live in
// testdata/fuzz/FuzzShardRoundTrip/ (replayed by plain `go test`); CI runs
// the target for a bounded window. Run locally with:
//
//	go test -run='^$' -fuzz='^FuzzShardRoundTrip$' -fuzztime=30s ./internal/shard
//
// Inputs are raw bytes decoded into a small streamed spec plus a shard
// count, so the fuzzer explores plan/build/serve structure rather than huge
// payloads.

// decodeShardInput derives a bounded stream spec and shard count from fuzz
// bytes: byte 0 sizes the graph, byte 1 the shard count, byte 2 the seed and
// homophily. Everything stays small enough for a full build per exec.
func decodeShardInput(data []byte) (datasets.StreamSpec, int) {
	var n, s, m byte
	if len(data) > 0 {
		n = data[0]
	}
	if len(data) > 1 {
		s = data[1]
	}
	if len(data) > 2 {
		m = data[2]
	}
	spec := datasets.StreamSpec{
		Nodes: 8 + int(n)%40, Features: 3, Classes: 3, Communities: 6,
		AvgDegree: 4, EdgeHomophily: float64(int(m)%11) / 10, FeatureSignal: 0.5,
		TrainFrac: 0.2, ValFrac: 0.2, Seed: int64(m)*131 + int64(n),
	}
	return spec, 1 + int(s)%4
}

// FuzzShardRoundTrip drives the full shard pipeline on adversarial input:
// DecodePlan must never panic on raw bytes; a planned spec must survive the
// encode→decode roundtrip exactly; the streaming builder must stay bit-equal
// to slicing the materialised graph; and the reassembled sharded embedding
// must match the single-shard one bit for bit.
func FuzzShardRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{13, 1, 7, 0xfe, 0x01})
	f.Add([]byte{39, 3, 200, 9, 9, 9, 9})
	f.Add([]byte("ADFGSHP1 almost a plan"))
	p0, err := NewPlan([]int32{0, 1, 0, 1, 2}, 3)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(p0.Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw bytes through the decoder: errors allowed, panics are not; a
		// successful decode must re-encode to the identical artifact.
		if p, err := DecodePlan(data); err == nil {
			if !bytes.Equal(p.Encode(), data) {
				t.Fatalf("decode/encode not idempotent")
			}
		}

		spec, shards := decodeShardInput(data)
		p, err := PlanFromStream(spec, shards, spec.Seed)
		if err != nil {
			t.Fatalf("plan: %v", err)
		}
		rt, err := DecodePlan(p.Encode())
		if err != nil {
			t.Fatalf("roundtrip: %v", err)
		}
		for v := 0; v < p.N(); v++ {
			if rt.Owner(v) != p.Owner(v) || rt.LocalID(v) != p.LocalID(v) {
				t.Fatalf("roundtrip node %d mapping differs", v)
			}
		}

		st, err := BuildFromStream(spec, p, sparse.NormSym)
		if err != nil {
			t.Fatalf("stream build: %v", err)
		}
		gr, err := BuildFromGraph(spec.Materialize(), p, sparse.NormSym)
		if err != nil {
			t.Fatalf("graph build: %v", err)
		}
		for i := range st.Shards {
			a, b := st.Shards[i], gr.Shards[i]
			if len(a.Cols) != len(b.Cols) || len(a.Adj.Val) != len(b.Adj.Val) {
				t.Fatalf("shard %d: stream/graph shapes differ", i)
			}
			for k := range a.Adj.Val {
				if a.Adj.ColIdx[k] != b.Adj.ColIdx[k] || a.Adj.Val[k] != b.Adj.Val[k] {
					t.Fatalf("shard %d: adjacency differs at %d", i, k)
				}
			}
		}

		// Sharded propagation must reassemble to the single-shard answer.
		one, err := NewPlan(make([]int32, spec.Nodes), 1)
		if err != nil {
			t.Fatal(err)
		}
		whole, err := BuildFromStream(spec, one, sparse.NormSym)
		if err != nil {
			t.Fatal(err)
		}
		wantLoc, err := whole.Embedding(2, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotLoc, err := st.Embedding(2, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := gatherGlobal(whole, wantLoc)
		got := gatherGlobal(st, gotLoc)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("sharded embedding differs from unsharded at %d", i)
			}
		}
	})
}
