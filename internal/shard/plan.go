// Package shard breaks the one-graph-per-process ceiling: it partitions a
// graph — materialised or streamed — into per-shard CSR + feature slabs
// with halo (boundary) tables, runs K-hop propagation across shard edges by
// exchanging halo rows between hops, and serves predictions behind the same
// Predictor surface as a single-process serve.Server, routing each queried
// node id to its owner shard. Decoupled architectures (SGC, GAMLP, MLP) are
// bit-identical to the unsharded server at every shard count; message-
// passing architectures (GCN) are bit-identical across shard counts >= 2
// and delegate to the plain unsharded server at one shard. Construction is
// partition-aware: ownership comes from internal/partition's METIS on the
// graph (or on the community quotient of a streamed spec), so shard
// boundaries cut few edges and halos stay small.
package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Plan assigns every node to exactly one shard and fixes the global↔local
// id mapping: shard s owns the nodes {v : Owner(v) = s}, in ascending
// global order, and LocalID(v) is v's rank within its owner. Plans are
// immutable once built and serialisable (Encode/DecodePlan), so a router
// and its shards can agree on the mapping across process boundaries.
type Plan struct {
	shards int
	owner  []int32 // owner[v] = shard of global node v
	rank   []int32 // rank[v] = v's local id within its owner shard
	counts []int   // counts[s] = nodes owned by shard s
}

// NewPlan builds a plan from an ownership vector. Every owner must be in
// [0, shards) and every shard must own at least one node.
func NewPlan(owner []int32, shards int) (*Plan, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: NewPlan: %d shards < 1", shards)
	}
	if len(owner) < shards {
		return nil, fmt.Errorf("shard: NewPlan: %d nodes < %d shards", len(owner), shards)
	}
	p := &Plan{
		shards: shards,
		owner:  owner,
		rank:   make([]int32, len(owner)),
		counts: make([]int, shards),
	}
	for v, s := range owner {
		if s < 0 || int(s) >= shards {
			return nil, fmt.Errorf("shard: NewPlan: node %d owned by shard %d outside [0,%d)", v, s, shards)
		}
		p.rank[v] = int32(p.counts[s])
		p.counts[s]++
	}
	for s, c := range p.counts {
		if c == 0 {
			return nil, fmt.Errorf("shard: NewPlan: shard %d owns no nodes", s)
		}
	}
	return p, nil
}

// NumShards returns the shard count.
func (p *Plan) NumShards() int { return p.shards }

// N returns the total node count.
func (p *Plan) N() int { return len(p.owner) }

// Owner returns the shard owning global node v.
func (p *Plan) Owner(v int) int { return int(p.owner[v]) }

// LocalID returns v's local row index within its owner shard.
func (p *Plan) LocalID(v int) int { return int(p.rank[v]) }

// Size returns the number of nodes shard s owns.
func (p *Plan) Size(s int) int { return p.counts[s] }

// NodesByShard returns, per shard, the sorted global ids it owns (index i
// of shard s's slice is the node with LocalID i).
func (p *Plan) NodesByShard() [][]int {
	out := make([][]int, p.shards)
	for s, c := range p.counts {
		out[s] = make([]int, 0, c)
	}
	for v, s := range p.owner {
		out[s] = append(out[s], v)
	}
	return out
}

// PlanFromGraph plans shards for a materialised graph with METIS (balanced
// k-way edge-cut partitioning), so cross-shard edges — and with them halo
// sizes and exchange traffic — stay low. shards=1 yields the trivial plan.
func PlanFromGraph(g *graph.Graph, shards int, seed int64) (*Plan, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: PlanFromGraph: %d shards < 1", shards)
	}
	if g.N < shards {
		return nil, fmt.Errorf("shard: PlanFromGraph: %d nodes < %d shards", g.N, shards)
	}
	owner := make([]int32, g.N)
	if shards > 1 {
		part := partition.Metis(g, shards, rand.New(rand.NewSource(seed)))
		for v, s := range part {
			owner[v] = int32(s)
		}
	}
	return NewPlan(owner, shards)
}

// PlanFromStream plans shards for a streamed spec without materialising it:
// one bounded-memory pass accumulates the community quotient graph (spec
// communities as super-nodes, cross-community edge presence as super-
// edges), METIS partitions the quotient, and every node inherits its
// community's shard. Communities have near-equal sizes by construction, so
// balancing community counts balances node counts.
func PlanFromStream(spec datasets.StreamSpec, shards int, seed int64) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("shard: PlanFromStream: %w", err)
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: PlanFromStream: %d shards < 1", shards)
	}
	c := spec.NumCommunities()
	if c < shards {
		return nil, fmt.Errorf("shard: PlanFromStream: %d communities < %d shards", c, shards)
	}
	owner := make([]int32, spec.Nodes)
	if shards > 1 {
		cross := make([]bool, c*c)
		spec.ForEachEdge(func(u, v int) {
			a, b := spec.Community(u), spec.Community(v)
			if a != b {
				cross[a*c+b] = true
			}
		})
		var edges [][2]int
		for a := 0; a < c; a++ {
			for b := a + 1; b < c; b++ {
				if cross[a*c+b] || cross[b*c+a] {
					edges = append(edges, [2]int{a, b})
				}
			}
		}
		quotient := graph.New(c, edges, nil, nil, 0)
		part := partition.Metis(quotient, shards, rand.New(rand.NewSource(seed)))
		for v := range owner {
			owner[v] = int32(part[spec.Community(v)])
		}
	}
	return NewPlan(owner, shards)
}

// planMagic brands an encoded plan ("ADFGL shard plan v1").
var planMagic = [8]byte{'A', 'D', 'F', 'G', 'S', 'H', 'P', '1'}

// Encode serialises the plan: magic, shard count, node count, the ownership
// vector, and a CRC32 trailer over everything before it.
func (p *Plan) Encode() []byte {
	buf := make([]byte, 8+4+8+4*len(p.owner)+4)
	copy(buf, planMagic[:])
	binary.LittleEndian.PutUint32(buf[8:], uint32(p.shards))
	binary.LittleEndian.PutUint64(buf[12:], uint64(len(p.owner)))
	off := 20
	for _, s := range p.owner {
		binary.LittleEndian.PutUint32(buf[off:], uint32(s))
		off += 4
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	return buf
}

// DecodePlan parses an Encode artifact, validating structure, bounds and
// checksum; corrupt or truncated input errors, never panics or over-
// allocates (the node count is checked against the buffer length before any
// allocation).
func DecodePlan(data []byte) (*Plan, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("shard: DecodePlan: %d bytes too short", len(data))
	}
	if [8]byte(data[:8]) != planMagic {
		return nil, fmt.Errorf("shard: DecodePlan: bad magic %q", data[:8])
	}
	shards := int(binary.LittleEndian.Uint32(data[8:]))
	n := binary.LittleEndian.Uint64(data[12:])
	if want := uint64(24) + 4*n; uint64(len(data)) != want {
		return nil, fmt.Errorf("shard: DecodePlan: %d bytes for %d nodes (want %d)", len(data), n, want)
	}
	body := len(data) - 4
	if got, want := crc32.ChecksumIEEE(data[:body]), binary.LittleEndian.Uint32(data[body:]); got != want {
		return nil, fmt.Errorf("shard: DecodePlan: checksum mismatch %08x != %08x", got, want)
	}
	owner := make([]int32, n)
	for v := range owner {
		owner[v] = int32(binary.LittleEndian.Uint32(data[20+4*v:]))
	}
	p, err := NewPlan(owner, shards)
	if err != nil {
		return nil, fmt.Errorf("shard: DecodePlan: %w", err)
	}
	return p, nil
}
