package shard

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/partition"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// trainedCheckpoint runs a tiny federation of arch over a scaled Cora and
// packages the global model on the full graph (the serve package's fixture).
func trainedCheckpoint(t testing.TB, arch string, seed int64) *checkpoint.Checkpoint {
	t.Helper()
	spec, err := datasets.ByName("Cora")
	if err != nil {
		t.Fatal(err)
	}
	g := datasets.GenerateScaled(spec, 0.2, seed)
	cd := partition.CommunitySplit(g, 3, rand.New(rand.NewSource(seed)))
	cfg := models.DefaultConfig()
	cfg.Hidden = 8
	cfg.Dropout = 0
	clients := federated.BuildClients(cd.Subgraphs, models.Registry[arch], cfg, seed)
	opt := federated.DefaultOptions()
	opt.Rounds = 3
	opt.LocalEpochs = 1
	res, err := federated.Run(clients, seed+1, opt)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := checkpoint.FromResult(res, arch, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// predictAllLogits returns a Predictor's full-graph logits indexed by node.
func predictAllLogits(t testing.TB, p serve.Predictor) [][]float64 {
	t.Helper()
	preds, err := p.PredictAll()
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, p.Nodes())
	for _, pr := range preds {
		out[pr.Node] = pr.Logits
	}
	return out
}

// TestDecoupledShardedBitIdentical is the serving half of the tentpole
// claim: for every decoupled architecture, the shard-routed server answers
// bit-identically to the single-process server at every shard count.
func TestDecoupledShardedBitIdentical(t *testing.T) {
	for _, arch := range []string{"SGC", "GAMLP", "MLP"} {
		ck := trainedCheckpoint(t, arch, 23)
		ref, err := serve.New(ck, serve.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		want := predictAllLogits(t, ref)
		ref.Close()
		for _, shards := range []int{1, 2, 4} {
			srv, err := NewServer(ck, shards, serve.Options{Seed: 1})
			if err != nil {
				t.Fatalf("%s/%d: %v", arch, shards, err)
			}
			if !srv.Decoupled() {
				t.Fatalf("%s/%d: Decoupled() = false", arch, shards)
			}
			got := predictAllLogits(t, srv)
			for v := range want {
				for j := range want[v] {
					if got[v][j] != want[v][j] {
						t.Fatalf("%s/%d shards: node %d logit %d: %v != %v",
							arch, shards, v, j, got[v][j], want[v][j])
					}
				}
			}
			srv.Close()
		}
	}
}

// TestCoupledShardedInvariantAndClose checks the message-passing path: the
// sharded GCN answer is one bit pattern at every shard count >= 2, agrees
// with the unsharded server to kernel tolerance with identical argmax, and
// one shard delegates to the plain server (trivially bit-identical).
func TestCoupledShardedInvariantAndClose(t *testing.T) {
	ck := trainedCheckpoint(t, "GCN", 37)
	ref, err := serve.New(ck, serve.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := predictAllLogits(t, ref)
	refPreds, err := ref.PredictAll()
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	one, err := NewServer(ck, 1, serve.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := one.(*serve.Server); !ok {
		t.Fatalf("1 shard: got %T, want the plain *serve.Server", one)
	}
	got := predictAllLogits(t, one)
	for v := range want {
		for j := range want[v] {
			if got[v][j] != want[v][j] {
				t.Fatalf("1 shard: node %d logit %d differs", v, j)
			}
		}
	}
	one.Close()

	var sharded [][]float64
	for _, shards := range []int{2, 4} {
		srv, err := NewServer(ck, shards, serve.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		got := predictAllLogits(t, srv)
		preds, err := srv.PredictAll()
		if err != nil {
			t.Fatal(err)
		}
		if sharded == nil {
			sharded = got
		} else {
			for v := range sharded {
				for j := range sharded[v] {
					if got[v][j] != sharded[v][j] {
						t.Fatalf("%d shards: node %d logit %d differs from 2-shard answer", shards, v, j)
					}
				}
			}
		}
		for v := range want {
			if preds[v].Class != refPreds[v].Class {
				t.Fatalf("%d shards: node %d argmax %d, unsharded %d", shards, v, preds[v].Class, refPreds[v].Class)
			}
			for j := range want[v] {
				if d := math.Abs(got[v][j] - want[v][j]); d > 1e-9 {
					t.Fatalf("%d shards: node %d logit %d off by %g", shards, v, j, d)
				}
			}
		}
		srv.Close()
	}
}

// TestShardedRouting exercises the router surface: mixed-shard query order,
// global ids in answers, validation, labels, metadata, stats aggregation
// and context deadlines.
func TestShardedRouting(t *testing.T) {
	ck := trainedCheckpoint(t, "SGC", 41)
	p, err := NewServer(ck, 3, serve.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv := p.(*Server)

	if srv.Arch() != "SGC" || srv.Nodes() != ck.Graph.N || srv.Classes() != ck.Graph.Classes {
		t.Fatalf("metadata: %s %d/%d", srv.Arch(), srv.Nodes(), srv.Classes())
	}
	// A query striding across shards must come back in query order with
	// global ids.
	nodes := []int{srv.Nodes() - 1, 0, srv.Nodes() / 2, 1, srv.Nodes() / 3}
	preds, err := srv.Predict(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range preds {
		if pr.Node != nodes[i] {
			t.Fatalf("answer %d is node %d, want %d", i, pr.Node, nodes[i])
		}
	}
	if _, err := srv.Predict(nil); err == nil {
		t.Fatal("expected empty-list error")
	}
	if _, err := srv.Predict([]int{-1}); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := srv.Predict([]int{srv.Nodes()}); err == nil {
		t.Fatal("expected range error")
	}
	for _, v := range nodes {
		want, ok := srv.Label(v)
		if !ok || want != ck.Graph.Labels[v] {
			t.Fatalf("Label(%d) = %d,%v want %d", v, want, ok, ck.Graph.Labels[v])
		}
	}
	if _, ok := srv.Label(-1); ok {
		t.Fatal("Label(-1) should miss")
	}
	if _, ok := srv.Label(srv.Nodes()); ok {
		t.Fatal("Label(N) should miss")
	}

	snap := srv.Stats()
	if snap.Requests == 0 || snap.Nodes < uint64(len(nodes)) {
		t.Fatalf("aggregated stats undercount: %+v", snap)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.PredictCtx(ctx, []int{0}); !errors.Is(err, serve.ErrDeadline) {
		t.Fatalf("cancelled context: %v", err)
	}
}

// TestShardedDrain checks graceful retirement propagates to every shard:
// new queries are turned away, the server unwinds cleanly.
func TestShardedDrain(t *testing.T) {
	ck := trainedCheckpoint(t, "MLP", 43)
	p, err := NewServer(ck, 2, serve.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	if _, err := p.Predict([]int{0}); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("post-drain predict: %v", err)
	}
	p.Close() // idempotent after Drain
}

// TestNewServerErrors covers the constructor validation paths.
func TestNewServerErrors(t *testing.T) {
	if _, err := NewServer(nil, 2, serve.Options{}); err == nil {
		t.Fatal("expected nil-checkpoint error")
	}
	ck := trainedCheckpoint(t, "SGC", 47)
	if _, err := NewServer(ck, ck.Graph.N+1, serve.Options{Seed: 1}); err == nil {
		t.Fatal("expected oversized shard count error")
	}
	if _, err := NewServer(ck, 2, serve.Options{MaxBatch: -1}); err == nil {
		t.Fatal("expected options error")
	}
}

// TestNewFromPartsErrors covers the parts-constructor validation.
func TestNewFromPartsErrors(t *testing.T) {
	if _, err := NewFromParts(nil, "SGC", nil, models.EmbeddingSpec{}, serve.Options{}); err == nil {
		t.Fatal("expected nil shard set error")
	}
	spec := datasets.DefaultStream(120, 7)
	p, err := PlanFromStream(spec, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := BuildFromStream(spec, p, sparse.NormRW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromParts(sh, "SGC", nil, models.EmbeddingSpec{Norm: sparse.NormSym}, serve.Options{}); err == nil ||
		!strings.Contains(err.Error(), "norm") {
		t.Fatalf("norm mismatch: %v", err)
	}
	sh2, err := BuildFromStream(spec, p, sparse.NormSym)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromParts(sh2, "SGC", nil, models.EmbeddingSpec{Hops: 1, HopWeights: []float64{1}}, serve.Options{}); err == nil {
		t.Fatal("expected embedding recipe error")
	}
	if _, err := NewFromParts(sh2, "SGC", nil, models.EmbeddingSpec{}, serve.Options{MaxBatch: -2}); err == nil {
		t.Fatal("expected options error")
	}
}

// TestStreamServeMatchesGraphServe closes the loop on the streamed path:
// shards built from the edge stream serve the same bits as shards built
// from the materialised graph, behind the same head.
func TestStreamServeMatchesGraphServe(t *testing.T) {
	spec := datasets.DefaultStream(260, 53)
	st, gr := buildPair(t, spec, 3, sparse.NormSym)
	w := matrix.New(spec.Features, spec.Classes)
	for i := range w.Data {
		w.Data[i] = float64(i%9) - 4
	}
	head := []models.HeadLayer{{W: w, Bias: make([]float64, spec.Classes)}}
	rec := models.EmbeddingSpec{Hops: 2, Norm: sparse.NormSym}
	a, err := NewFromParts(st, "SGC", head, rec, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewFromParts(gr, "SGC", head, rec, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ga, gb := predictAllLogits(t, a), predictAllLogits(t, b)
	for v := range ga {
		for j := range ga[v] {
			if ga[v][j] != gb[v][j] {
				t.Fatalf("node %d logit %d: stream-built %v != graph-built %v", v, j, ga[v][j], gb[v][j])
			}
		}
	}
}

// TestWindowModelBackwardPanics pins the inference-only contract.
func TestWindowModelBackwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&windowModel{}).Backward(nil)
}
