package shard

import (
	"strings"
	"testing"

	"repro/internal/datasets"
)

// TestNewPlanValidation covers the ownership-vector contract: bad shard
// counts, out-of-range owners and empty shards are all rejected.
func TestNewPlanValidation(t *testing.T) {
	cases := []struct {
		name   string
		owner  []int32
		shards int
		want   string
	}{
		{"zero shards", []int32{0}, 0, "< 1"},
		{"more shards than nodes", []int32{0}, 2, "< 2 shards"},
		{"negative owner", []int32{0, -1}, 2, "outside"},
		{"owner too large", []int32{0, 2}, 2, "outside"},
		{"empty shard", []int32{0, 0, 2}, 3, "owns no nodes"},
	}
	for _, tc := range cases {
		if _, err := NewPlan(tc.owner, tc.shards); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestPlanMapping checks the plan invariants every consumer leans on: each
// node is owned exactly once, local ids are dense ranks in ascending global
// order, and NodesByShard inverts LocalID.
func TestPlanMapping(t *testing.T) {
	owner := []int32{1, 0, 1, 1, 0, 2, 2, 0}
	p, err := NewPlan(owner, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != len(owner) || p.NumShards() != 3 {
		t.Fatalf("N/NumShards = %d/%d", p.N(), p.NumShards())
	}
	total := 0
	for s := 0; s < p.NumShards(); s++ {
		total += p.Size(s)
	}
	if total != p.N() {
		t.Fatalf("shard sizes sum to %d, want %d", total, p.N())
	}
	byShard := p.NodesByShard()
	for s, nodes := range byShard {
		for i, v := range nodes {
			if p.Owner(v) != s || p.LocalID(v) != i {
				t.Fatalf("node %d: owner/local = %d/%d, want %d/%d", v, p.Owner(v), p.LocalID(v), s, i)
			}
			if i > 0 && nodes[i-1] >= v {
				t.Fatalf("shard %d nodes not ascending: %v", s, nodes)
			}
		}
	}
}

// TestPlanFromGraph checks the METIS-planned ownership covers every node
// with non-empty balanced-ish shards, and shards=1 yields the trivial plan.
func TestPlanFromGraph(t *testing.T) {
	g := datasets.DefaultStream(200, 3).Materialize()
	p, err := PlanFromGraph(g, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 4 || p.N() != g.N {
		t.Fatalf("plan %d shards over %d nodes", p.NumShards(), p.N())
	}
	one, err := PlanFromGraph(g, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < one.N(); v++ {
		if one.Owner(v) != 0 || one.LocalID(v) != v {
			t.Fatalf("trivial plan: node %d -> %d/%d", v, one.Owner(v), one.LocalID(v))
		}
	}
	if _, err := PlanFromGraph(g, 0, 7); err == nil {
		t.Fatal("expected error for 0 shards")
	}
	if _, err := PlanFromGraph(g, g.N+1, 7); err == nil {
		t.Fatal("expected error for more shards than nodes")
	}
}

// TestPlanFromStream checks streamed planning covers every node, keeps
// communities whole (nodes of one community share a shard) and rejects bad
// inputs.
func TestPlanFromStream(t *testing.T) {
	spec := datasets.DefaultStream(300, 5)
	p, err := PlanFromStream(spec, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != spec.Nodes || p.NumShards() != 4 {
		t.Fatalf("plan %d shards over %d nodes", p.NumShards(), p.N())
	}
	commShard := make(map[int]int)
	for v := 0; v < spec.Nodes; v++ {
		c := spec.Community(v)
		if s, ok := commShard[c]; ok && s != p.Owner(v) {
			t.Fatalf("community %d split across shards %d and %d", c, s, p.Owner(v))
		}
		commShard[c] = p.Owner(v)
	}
	if _, err := PlanFromStream(spec, 0, 9); err == nil {
		t.Fatal("expected error for 0 shards")
	}
	if _, err := PlanFromStream(spec, spec.NumCommunities()+1, 9); err == nil {
		t.Fatal("expected error for more shards than communities")
	}
	bad := spec
	bad.Nodes = 0
	if _, err := PlanFromStream(bad, 2, 9); err == nil {
		t.Fatal("expected error for invalid spec")
	}
}

// TestPlanEncodeDecode checks the wire roundtrip is exact and every
// corruption mode errors instead of panicking.
func TestPlanEncodeDecode(t *testing.T) {
	p, err := NewPlan([]int32{1, 0, 1, 2, 0, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	buf := p.Encode()
	got, err := DecodePlan(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShards() != p.NumShards() || got.N() != p.N() {
		t.Fatalf("roundtrip shape %d/%d", got.NumShards(), got.N())
	}
	for v := 0; v < p.N(); v++ {
		if got.Owner(v) != p.Owner(v) || got.LocalID(v) != p.LocalID(v) {
			t.Fatalf("roundtrip node %d: %d/%d != %d/%d",
				v, got.Owner(v), got.LocalID(v), p.Owner(v), p.LocalID(v))
		}
	}

	corrupt := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-5] }},
		{"huge node count", func(b []byte) []byte { b[12] = 0xff; b[18] = 0xff; return b }},
		{"flipped owner", func(b []byte) []byte { b[21] ^= 0x01; return b }},
		{"flipped crc", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
	}
	for _, tc := range corrupt {
		if _, err := DecodePlan(tc.mut(p.Encode())); err == nil {
			t.Errorf("%s: expected decode error", tc.name)
		}
	}
	// An owner vector that decodes cleanly but violates plan invariants
	// (empty shard) must also fail through NewPlan's checks.
	q, err := NewPlan([]int32{0, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf = q.Encode()
	// Rewriting node 2's owner to 0 empties shard 1 and breaks the CRC; a
	// recomputed CRC keeps the frame valid so the plan check must catch it.
	if _, err := DecodePlan(reencodeOwner(buf, 2, 0)); err == nil {
		t.Fatal("expected plan-invariant error")
	}
}

// reencodeOwner rewrites node v's owner inside an encoded plan and fixes up
// the CRC trailer, producing a frame-valid but possibly invariant-breaking
// artifact.
func reencodeOwner(buf []byte, v, owner int) []byte {
	p, err := DecodePlan(buf)
	if err != nil {
		panic(err)
	}
	owners := append([]int32(nil), p.owner...)
	owners[v] = int32(owner)
	forged := &Plan{shards: p.shards, owner: owners}
	return forged.Encode()
}
