//go:build race

package shard

// raceEnabled reports whether the race detector is compiled in; the scale
// smoke test skips under it (instrumented 100k-node builds are minutes, and
// the concurrency surface is covered by the small tests).
const raceEnabled = true
