package checkpoint

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/models"
	"repro/internal/sparse"
)

// Header is the cheap metadata view of a checkpoint file: everything a model
// registry needs to list and route artifacts — architecture, hyperparameters,
// parameter/graph dimensions — without materializing the parameter vector,
// features or adjacency. Peek produces it by reading only section prefixes
// and seeking past the bulk payloads.
type Header struct {
	// Arch is the models.Registry architecture name.
	Arch string
	// Config carries the architecture hyperparameters stored in the model
	// section.
	Config models.Config
	// Norm is the adjacency normalisation the model propagates with.
	Norm sparse.NormKind
	// Params is the length of the flattened parameter vector.
	Params int
	// Nodes and Classes are the serving graph's dimensions.
	Nodes, Classes int
	// Edges is the stored undirected edge count.
	Edges int
	// HasAdj reports whether the artifact embeds the precomputed normalised
	// adjacency (so loading skips the normalisation pass).
	HasAdj bool
	// Bytes is the file size on disk.
	Bytes int64
}

// peeker reads fixed-width fields from a file with a sticky named-op error,
// mirroring the in-memory reader but seeking instead of materializing bulk
// payloads.
type peeker struct {
	f   *os.File
	buf [8]byte
	err error
}

// fail latches the first error with the package op name.
func (p *peeker) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("checkpoint: Peek: "+format, args...)
	}
}

// read fills dst, latching truncation as an error.
func (p *peeker) read(dst []byte) {
	if p.err != nil {
		return
	}
	if _, err := io.ReadFull(p.f, dst); err != nil {
		p.fail("truncated input: %v", err)
	}
}

func (p *peeker) u32() uint32 {
	p.read(p.buf[:4])
	if p.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p.buf[:4])
}

func (p *peeker) u64() uint64 {
	p.read(p.buf[:8])
	if p.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p.buf[:8])
}

// dim reads a u64 that must fit a non-negative int dimension.
func (p *peeker) dim(what string) int {
	v := p.u64()
	if p.err != nil {
		return 0
	}
	if v > math.MaxInt32 {
		p.fail("%s %d out of range", what, v)
		return 0
	}
	return int(v)
}

// seekTo positions the file at absolute offset off, latching a target past
// EOF as truncation.
func (p *peeker) seekTo(off, size int64) {
	if p.err != nil {
		return
	}
	if off > size {
		p.fail("truncated input: section runs %d bytes past end of file", off-size)
		return
	}
	if _, err := p.f.Seek(off, io.SeekStart); err != nil {
		p.fail("seek: %v", err)
	}
}

// Peek reads only the metadata of the checkpoint at path: magic, version and
// per-section headers, the model section's architecture/hyperparameters and
// parameter count, and the graph section's dimensions. Bulk payloads
// (parameters, features, adjacency) are seeked over, not read, so peeking a
// multi-megabyte artifact costs a few kilobytes of IO — this is what lets a
// registry list a model-zoo directory without loading every model. Peek
// validates framing and field ranges but not section CRCs; a full Load still
// performs every integrity check before a model is served. Failures caused
// by the artifact's bytes (bad magic, framing violations, truncation) wrap
// ErrCorrupt; filesystem failures (open, stat) do not.
func Peek(path string) (*Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: Peek: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: Peek: %w", err)
	}
	h, err := peek(f, fi.Size())
	if err != nil {
		return nil, corrupt(err)
	}
	return h, nil
}

// peek reads the header of an opened artifact; every failure below is a
// property of the file's bytes, so Peek tags them all with ErrCorrupt.
func peek(f *os.File, size int64) (*Header, error) {
	p := &peeker{f: f}
	magic := make([]byte, len(Magic))
	p.read(magic)
	if p.err == nil && string(magic) != Magic {
		return nil, fmt.Errorf("checkpoint: Peek: bad magic %q", magic)
	}
	if v := p.u32(); p.err == nil && v != Version {
		return nil, fmt.Errorf("checkpoint: Peek: unsupported version %d (have %d)", v, Version)
	}
	nSec := p.u32()
	if p.err != nil {
		return nil, p.err
	}

	h := &Header{Bytes: size}
	var seenModel, seenGraph bool
	lastKind := uint32(0)
	for i := uint32(0); i < nSec; i++ {
		kind := p.u32()
		length := p.u64()
		if p.err != nil {
			return nil, p.err
		}
		if kind <= lastKind {
			return nil, fmt.Errorf("checkpoint: Peek: section kind %d out of order after %d", kind, lastKind)
		}
		lastKind = kind
		if length > uint64(size) {
			return nil, fmt.Errorf("checkpoint: Peek: section %d length %d exceeds file size %d", kind, length, size)
		}
		start, err := f.Seek(0, io.SeekCurrent)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: Peek: %w", err)
		}
		switch kind {
		case secModel:
			peekModel(p, h)
			seenModel = true
		case secGraph:
			h.Nodes = p.dim("node count")
			h.Classes = p.dim("class count")
			h.Edges = p.dim("edge count")
			seenGraph = true
		case secAdj:
			h.HasAdj = true
		default:
			return nil, fmt.Errorf("checkpoint: Peek: unknown section kind %d", kind)
		}
		if p.err != nil {
			return nil, p.err
		}
		// Jump to the end of the section payload plus its 4-byte CRC.
		p.seekTo(start+int64(length)+4, size)
		if p.err != nil {
			return nil, p.err
		}
	}
	if !seenModel {
		return nil, fmt.Errorf("checkpoint: Peek: missing model section")
	}
	if !seenGraph {
		return nil, fmt.Errorf("checkpoint: Peek: missing graph section")
	}
	return h, nil
}

// peekModel reads the model section prefix up to and including the parameter
// count, mirroring decodeModel's layout without materializing the vector.
func peekModel(p *peeker, h *Header) {
	n := p.u32()
	if p.err != nil {
		return
	}
	if n > 1<<10 {
		p.fail("architecture name length %d out of range", n)
		return
	}
	arch := make([]byte, n)
	p.read(arch)
	h.Arch = string(arch)
	h.Config.Hidden = p.dim("hidden")
	if p.err == nil && h.Config.Hidden > maxHidden {
		p.fail("hidden width %d exceeds cap %d", h.Config.Hidden, maxHidden)
		return
	}
	h.Config.Dropout = math.Float64frombits(p.u64())
	h.Config.Hops = p.dim("hops")
	if p.err == nil && h.Config.Hops > maxHops {
		p.fail("hop count %d exceeds cap %d", h.Config.Hops, maxHops)
		return
	}
	h.Config.Alpha = math.Float64frombits(p.u64())
	h.Config.LR = math.Float64frombits(p.u64())
	h.Config.WeightDecay = math.Float64frombits(p.u64())
	norm := p.u32()
	if p.err == nil {
		if norm > uint32(sparse.NormReverse) {
			p.fail("unknown NormKind %d", norm)
			return
		}
		h.Norm = sparse.NormKind(norm)
	}
	h.Params = p.dim("param count")
}
