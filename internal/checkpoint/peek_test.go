package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestPeekMatchesLoad checks the cheap header view agrees with a full load
// on every metadata field, for both a coupled artifact (with cached
// adjacency) and one stripped of it.
func TestPeekMatchesLoad(t *testing.T) {
	ck, g := trained(t, "GCN", 5)
	dir := t.TempDir()

	noAdj := *ck
	noAdj.Adj = nil
	for _, c := range []struct {
		name string
		ck   *Checkpoint
	}{
		{"with-adj", ck},
		{"no-adj", &noAdj},
	} {
		path := filepath.Join(dir, c.name+".ckpt")
		if err := Save(path, c.ck); err != nil {
			t.Fatal(err)
		}
		h, err := Peek(path)
		if err != nil {
			t.Fatalf("%s: Peek: %v", c.name, err)
		}
		if h.Arch != c.ck.Arch || h.Norm != c.ck.Norm || h.Config != c.ck.Config {
			t.Fatalf("%s: header model fields drifted: %+v", c.name, h)
		}
		if h.Params != len(c.ck.Params) {
			t.Fatalf("%s: param count %d, want %d", c.name, h.Params, len(c.ck.Params))
		}
		if h.Nodes != g.N || h.Classes != g.Classes || h.Edges != len(g.Edges) {
			t.Fatalf("%s: graph dims %d/%d/%d, want %d/%d/%d",
				c.name, h.Nodes, h.Classes, h.Edges, g.N, g.Classes, len(g.Edges))
		}
		if h.HasAdj != (c.ck.Adj != nil) {
			t.Fatalf("%s: HasAdj = %v", c.name, h.HasAdj)
		}
		fi, _ := os.Stat(path)
		if h.Bytes != fi.Size() {
			t.Fatalf("%s: Bytes = %d, want %d", c.name, h.Bytes, fi.Size())
		}
	}
}

// TestPeekCorrupt drives truncated and corrupt files through Peek: every
// case must yield a named-op error, never a panic.
func TestPeekCorrupt(t *testing.T) {
	ck, _ := trained(t, "SGC", 9)
	data, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	cases := map[string][]byte{
		"empty":           {},
		"short-magic":     data[:4],
		"bad-magic":       append([]byte("NOTACKPT"), data[8:]...),
		"header-only":     data[:16],
		"truncated-model": data[:40],
		"truncated-tail":  data[:len(data)-8],
	}
	for name, b := range cases {
		if _, err := Peek(write(name, b)); err == nil {
			t.Errorf("%s: Peek accepted corrupt input", name)
		}
	}
	if _, err := Peek(filepath.Join(dir, "does-not-exist.ckpt")); err == nil {
		t.Error("Peek accepted a missing file")
	}
}
