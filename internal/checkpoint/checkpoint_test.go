package checkpoint

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/sparse"
)

// trained runs a tiny federation and returns its checkpoint plus the global
// graph it serves.
func trained(t testing.TB, arch string, seed int64) (*Checkpoint, *graph.Graph) {
	t.Helper()
	spec, err := datasets.ByName("Cora")
	if err != nil {
		t.Fatal(err)
	}
	g := datasets.GenerateScaled(spec, 0.2, seed)
	cd := partition.CommunitySplit(g, 3, rand.New(rand.NewSource(seed)))
	cfg := models.DefaultConfig()
	cfg.Hidden = 8
	cfg.Dropout = 0
	clients := federated.BuildClients(cd.Subgraphs, models.Registry[arch], cfg, seed)
	opt := federated.DefaultOptions()
	opt.Rounds = 3
	opt.LocalEpochs = 1
	res, err := federated.Run(clients, seed+1, opt)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := FromResult(res, arch, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	return ck, g
}

// TestRoundTripBitIdentical is the core format contract: Encode→Decode→Encode
// must reproduce the exact bytes, and the decoded checkpoint must preserve
// every field.
func TestRoundTripBitIdentical(t *testing.T) {
	for _, arch := range []string{"GCN", "SGC"} {
		ck, g := trained(t, arch, 7)
		enc, err := ck.Encode()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("%s: Decode: %v", arch, err)
		}
		enc2, err := dec.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("%s: re-encode differs: %d vs %d bytes", arch, len(enc), len(enc2))
		}
		if dec.Arch != arch || dec.Norm != sparse.NormSym {
			t.Fatalf("%s: arch/norm drifted: %q %v", arch, dec.Arch, dec.Norm)
		}
		if dec.Config != ck.Config {
			t.Fatalf("%s: config drifted: %+v vs %+v", arch, dec.Config, ck.Config)
		}
		for i, v := range ck.Params {
			if dec.Params[i] != v {
				t.Fatalf("%s: Params[%d]: %v != %v", arch, i, dec.Params[i], v)
			}
		}
		if dec.Graph.N != g.N || dec.Graph.Classes != g.Classes || len(dec.Graph.Edges) != len(g.Edges) {
			t.Fatalf("%s: graph shape drifted", arch)
		}
		for i, v := range g.X.Data {
			if dec.Graph.X.Data[i] != v {
				t.Fatalf("%s: X[%d] drifted", arch, i)
			}
		}
		for i := range g.TrainMask {
			if dec.Graph.TrainMask[i] != g.TrainMask[i] ||
				dec.Graph.ValMask[i] != g.ValMask[i] ||
				dec.Graph.TestMask[i] != g.TestMask[i] {
				t.Fatalf("%s: masks drifted at %d", arch, i)
			}
		}
		if dec.Adj == nil || dec.Adj.NNZ() != ck.Adj.NNZ() {
			t.Fatalf("%s: adjacency section lost", arch)
		}
	}
}

// TestSaveLoadFile round-trips through the filesystem and checks Save's
// output is byte-stable across repeated saves.
func TestSaveLoadFile(t *testing.T) {
	ck, _ := trained(t, "GCN", 3)
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.ckpt")
	p2 := filepath.Join(dir, "b.ckpt")
	if err := Save(p1, ck); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(p1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(p2, loaded); err != nil {
		t.Fatal(err)
	}
	b1, _ := ck.Encode()
	b2, _ := loaded.Encode()
	if !bytes.Equal(b1, b2) {
		t.Fatal("save→load→save is not bit-identical")
	}
}

// TestModelRebuild verifies a loaded checkpoint rebuilds a model whose
// inference outputs match the original parameters exactly.
func TestModelRebuild(t *testing.T) {
	ck, g := trained(t, "GCN", 5)
	enc, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dec.Model(1)
	if err != nil {
		t.Fatal(err)
	}
	got := nn.Flatten(m)
	for i, v := range ck.Params {
		if got[i] != v {
			t.Fatalf("rebuilt param %d: %v != %v", i, got[i], v)
		}
	}
	// The rebuilt model is bound to the decoded graph, which must behave
	// like the original: same logits on the same features.
	orig, err := ck.Model(1)
	if err != nil {
		t.Fatal(err)
	}
	lg, lo := m.Logits(false), orig.Logits(false)
	if lg.Rows != g.N {
		t.Fatalf("logits rows %d for %d nodes", lg.Rows, g.N)
	}
	for i, v := range lo.Data {
		if lg.Data[i] != v {
			t.Fatalf("logits[%d]: rebuilt %v != original %v", i, lg.Data[i], v)
		}
	}
}

// TestFromResultValidation covers the named-op error paths of FromResult.
func TestFromResultValidation(t *testing.T) {
	ck, g := trained(t, "GCN", 9)
	if _, err := FromResult(nil, "GCN", ck.Config, g); err == nil {
		t.Fatal("nil result must fail")
	}
	if _, err := FromResult(&federated.Result{GlobalParams: ck.Params}, "NoSuchArch", ck.Config, g); err == nil {
		t.Fatal("unknown arch must fail")
	}
	if _, err := FromResult(&federated.Result{GlobalParams: ck.Params}, "GCN", ck.Config, nil); err == nil {
		t.Fatal("nil graph must fail")
	}
}

// TestDecodeCorrupt drives every header/section corruption class through
// Decode and requires a named-op error (prefix "checkpoint:"), never a panic.
func TestDecodeCorrupt(t *testing.T) {
	ck, _ := trained(t, "GCN", 13)
	good, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func() []byte{
		"empty":     func() []byte { return nil },
		"short":     func() []byte { return good[:4] },
		"badmagic":  func() []byte { b := clone(good); b[0] ^= 0xff; return b },
		"badversio": func() []byte { b := clone(good); b[8] ^= 0xff; return b },
		"truncated": func() []byte { return good[:len(good)/2] },
		"flippayl":  func() []byte { b := clone(good); b[len(b)/2] ^= 0x01; return b },
		"flipcrc":   func() []byte { b := clone(good); b[len(b)-1] ^= 0x01; return b },
		"trailing":  func() []byte { return append(clone(good), 0xEE) },
		"headeronly": func() []byte {
			return append([]byte(Magic), []byte{1, 0, 0, 0, 2, 0, 0, 0}...)
		},
	}
	for name, make := range cases {
		data := make()
		c, err := Decode(data)
		if err == nil {
			t.Fatalf("%s: Decode accepted corrupt input (got %+v)", name, c)
		}
		if got := err.Error(); len(got) < 11 || got[:11] != "checkpoint:" {
			t.Fatalf("%s: error not named-op: %q", name, got)
		}
	}
}

// TestDecodeHostileHyperparams: a CRC-valid checkpoint whose hyperparameters
// would make the registry builder allocate enormous matrices (or run 2^31
// propagation steps) must fail at Decode with a named-op error, before any
// model construction can panic or OOM.
func TestDecodeHostileHyperparams(t *testing.T) {
	for name, mutate := range map[string]func(*Checkpoint){
		"hidden": func(c *Checkpoint) { c.Config.Hidden = maxHidden + 1 },
		"hops":   func(c *Checkpoint) { c.Config.Hops = maxHops + 1 },
		"classes": func(c *Checkpoint) {
			c.Graph = c.Graph.Clone()
			c.Graph.Classes = maxHidden + 1
		},
	} {
		ck := miniCheckpoint(1, false)
		mutate(ck)
		enc, err := ck.Encode()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := Decode(enc); err == nil {
			t.Fatalf("%s: Decode accepted a hostile value", name)
		} else if got := err.Error(); got[:11] != "checkpoint:" {
			t.Fatalf("%s: error not named-op: %q", name, got)
		}
	}
}

// TestModelValidation covers Model's defence against inconsistent artifacts.
func TestModelValidation(t *testing.T) {
	ck, _ := trained(t, "GCN", 17)
	bad := *ck
	bad.Params = ck.Params[:len(ck.Params)-1]
	if _, err := bad.Model(1); err == nil {
		t.Fatal("short params must fail")
	}
	bad = *ck
	bad.Arch = "NoSuchArch"
	if _, err := bad.Model(1); err == nil {
		t.Fatal("unknown arch must fail")
	}
	bad = *ck
	bad.Adj = &sparse.CSR{NRows: 1, NCols: 1, RowPtr: []int{0, 0}}
	if _, err := bad.Model(1); err == nil {
		t.Fatal("mismatched adjacency must fail")
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }
