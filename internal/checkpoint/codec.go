package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// The container layout is fixed and fully little-endian:
//
//	magic   [8]byte  "ADFGLCK1"
//	version uint32   (currently 1)
//	count   uint32   number of sections
//	count × section:
//	    kind    uint32   (strictly increasing across sections)
//	    length  uint64   payload byte count
//	    payload [length]byte
//	    crc     uint32   IEEE CRC-32 of payload
//
// Every integer is fixed-width, every float64 is its IEEE-754 bit pattern,
// and sections are written in a fixed kind order, so encoding is a pure
// function of the Checkpoint value and Save→Load→Save round-trips are
// bit-identical.

// Magic is the 8-byte file signature opening every checkpoint.
const Magic = "ADFGLCK1"

// Version is the current container format version.
const Version = 1

// Section kinds, written in strictly increasing order.
const (
	secModel = 1 // arch, hyperparams, NormKind, flattened parameters
	secGraph = 2 // topology, features, labels, masks
	secAdj   = 3 // optional cached normalised adjacency (CSR)
)

// writer accumulates the little-endian encoding of one checkpoint.
type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) f64s(v []float64) {
	w.u64(uint64(len(v)))
	for _, x := range v {
		w.f64(x)
	}
}

func (w *writer) ints(v []int) {
	w.u64(uint64(len(v)))
	for _, x := range v {
		w.u64(uint64(int64(x)))
	}
}

func (w *writer) bools(v []bool) {
	w.u64(uint64(len(v)))
	for _, b := range v {
		if b {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}
}

// section frames the payload built by fill as one CRC-guarded section.
func (w *writer) section(kind uint32, fill func(p *writer)) {
	var p writer
	fill(&p)
	w.u32(kind)
	w.u64(uint64(len(p.buf)))
	w.buf = append(w.buf, p.buf...)
	w.u32(crc32.ChecksumIEEE(p.buf))
}

// reader decodes the little-endian encoding with sticky named-op errors:
// the first failure (truncation, bound violation, CRC mismatch) latches and
// every subsequent read returns zero values, so decode paths stay linear.
type reader struct {
	data []byte
	off  int
	err  error
}

// fail latches the first error, prefixed with the package op name.
func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("checkpoint: Decode: "+format, args...)
	}
}

// need reports whether n more bytes are available, failing otherwise.
func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if n < 0 || len(r.data)-r.off < n {
		r.fail("truncated input: need %d bytes at offset %d of %d", n, r.off, len(r.data))
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// count reads a u64 element count for elements of elemSize bytes, failing
// before any allocation if the remaining payload cannot possibly hold it
// (the allocation guard that keeps fuzzed length fields from ballooning).
func (r *reader) count(elemSize int, what string) int {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.data)-r.off)/uint64(elemSize) {
		r.fail("%s count %d exceeds remaining payload", what, n)
		return 0
	}
	return int(n)
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil || !r.need(int(n)) {
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) f64s(what string) []float64 {
	n := r.count(8, what)
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *reader) ints(what string) []int {
	n := r.count(8, what)
	if r.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int64(r.u64()))
	}
	return out
}

func (r *reader) bools(what string) []bool {
	n := r.count(1, what)
	if r.err != nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		switch r.u8() {
		case 0:
		case 1:
			out[i] = true
		default:
			r.fail("%s mask byte at %d is not 0/1", what, i)
			return nil
		}
	}
	return out
}

// dim reads a u64 that must fit a non-negative int dimension.
func (r *reader) dim(what string) int {
	v := r.u64()
	if r.err != nil {
		return 0
	}
	if v > math.MaxInt32 {
		r.fail("%s %d out of range", what, v)
		return 0
	}
	return int(v)
}

// sectionReader validates one section frame (kind, length, CRC) and returns
// a reader over its payload.
func (r *reader) sectionReader() (kind uint32, payload *reader) {
	kind = r.u32()
	n := r.u64()
	if r.err != nil {
		return 0, &reader{}
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("section %d length %d exceeds input", kind, n)
		return 0, &reader{}
	}
	body := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	want := r.u32()
	if r.err != nil {
		return 0, &reader{}
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		r.fail("section %d CRC mismatch: computed %08x, stored %08x", kind, got, want)
		return 0, &reader{}
	}
	return kind, &reader{data: body}
}
