package checkpoint

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/sparse"
)

// miniCheckpoint builds a small seeded checkpoint by hand (a 12-node ring
// with features, labels and masks) so fuzz seeds stay ~1 KB — large trained
// graphs would slow every mutation to a crawl.
func miniCheckpoint(seed int64, withAdj bool) *Checkpoint {
	rng := rand.New(rand.NewSource(seed))
	const n = 12
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	x := matrix.New(n, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(3)
	}
	g := graph.New(n, edges, x, labels, 3)
	for i := 0; i < n; i++ {
		g.TrainMask[i] = i%3 == 0
		g.ValMask[i] = i%3 == 1
		g.TestMask[i] = i%3 == 2
	}
	cfg := models.DefaultConfig()
	cfg.Hidden = 4
	params := make([]float64, 8)
	for i := range params {
		params[i] = rng.NormFloat64()
	}
	ck := &Checkpoint{Arch: "GCN", Config: cfg, Norm: sparse.NormSym, Params: params, Graph: g}
	if withAdj {
		ck.Adj = g.NormAdj(sparse.NormSym)
	}
	return ck
}

// FuzzCheckpointRoundTrip is the format's safety and determinism net:
// arbitrary bytes must never panic the decoder (only named-op errors), and
// anything the decoder accepts must re-encode canonically — Encode(Decode(b))
// decodes again to the exact same bytes. The seed corpus (testdata/fuzz)
// carries real encoded checkpoints of seeded trained models, so mutation
// explores the format's interior, not just the header.
func FuzzCheckpointRoundTrip(f *testing.F) {
	for _, seed := range []int64{2, 4} {
		enc, err := miniCheckpoint(seed, seed == 2).Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := Decode(data) // must not panic, whatever the bytes
		if err != nil {
			return
		}
		enc, err := ck.Encode()
		if err != nil {
			t.Fatalf("decoded checkpoint fails to encode: %v", err)
		}
		ck2, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical encoding fails to decode: %v", err)
		}
		enc2, err := ck2.Encode()
		if err != nil {
			t.Fatalf("second encode fails: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode→decode→encode not bit-identical: %d vs %d bytes", len(enc), len(enc2))
		}
	})
}
