// Package checkpoint gives trained AdaFGL models a life beyond the training
// process: a versioned, deterministic binary serialization (magic/version
// header, little-endian fixed-width fields, CRC-guarded sections) for a
// model's architecture, hyperparameters, normalisation kind and flattened
// parameters together with the graph it serves — topology, features, labels,
// masks, and optionally the precomputed normalised adjacency in CSR form so
// loading skips the normalisation pass. Save→Load round-trips are
// bit-identical (enforced by unit tests and FuzzCheckpointRoundTrip), models
// self-describe through the models.Registry architecture names, and
// federated training results become servable artifacts via FromResult.
package checkpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/federated"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/sparse"
)

// ErrCorrupt marks a structurally invalid, truncated or CRC-damaged
// checkpoint artifact. Every Decode, Load and Peek failure caused by the
// artifact's bytes (as opposed to the filesystem) wraps it, so registry-layer
// callers can errors.Is-classify "this file is bad" apart from "this file is
// unreachable" when deciding to quarantine. Test with errors.Is.
var ErrCorrupt = errors.New("checkpoint: corrupt artifact")

// corruptError tags an error as artifact corruption without altering its
// message: errors.Is(err, ErrCorrupt) holds, and the named-op text the
// decode/peek paths produced stays byte-identical.
type corruptError struct{ err error }

func (e *corruptError) Error() string { return e.err.Error() }

func (e *corruptError) Unwrap() error { return e.err }

func (e *corruptError) Is(target error) bool { return target == ErrCorrupt }

// corrupt wraps err as a corruptError; nil stays nil.
func corrupt(err error) error {
	if err == nil {
		return nil
	}
	return &corruptError{err: err}
}

// Checkpoint is one persisted model+graph artifact: everything needed to
// rebuild a servable node classifier. Arch names a models.Registry builder
// (the self-description hook shared by core and fgl training paths), Params
// is the nn.Flatten layout of that architecture, and Graph is the graph the
// model is bound to. Adj, when non-nil, is the cached
// WithSelfLoops().Normalized(Norm) adjacency of Graph, letting Model() seed
// the propagation-plan cache instead of renormalising at load.
type Checkpoint struct {
	// Arch is the models.Registry architecture name (e.g. "GCN", "SGC").
	Arch string
	// Config carries the architecture hyperparameters the model was built
	// with; Model() rebuilds with exactly these.
	Config models.Config
	// Norm is the adjacency normalisation the model propagates with.
	Norm sparse.NormKind
	// Params is the trained parameter vector in nn.Flatten order.
	Params []float64
	// Graph is the serving graph (topology, features, labels, masks).
	Graph *graph.Graph
	// Adj optionally caches Graph's normalised adjacency (CSR) for Norm.
	Adj *sparse.CSR
}

// FromResult packages a federated training result as a servable checkpoint:
// the aggregated global parameters of res, self-described by the registry
// architecture they were trained as, bound to g (typically the full graph
// when clients trained on subgraphs of it — the transductive serving
// surface). The graph's symmetric-normalised adjacency is embedded in CSR
// form so loading skips normalisation. Both core.AdaFGL (whose Result carries
// the Step-1 knowledge extractor) and the fgl wrappers produce a compatible
// Result.
func FromResult(res *federated.Result, arch string, cfg models.Config, g *graph.Graph) (*Checkpoint, error) {
	if res == nil || len(res.GlobalParams) == 0 {
		return nil, fmt.Errorf("checkpoint: FromResult: result has no global parameters")
	}
	if g == nil {
		return nil, fmt.Errorf("checkpoint: FromResult: nil graph")
	}
	if _, err := models.BuilderFor(arch); err != nil {
		return nil, fmt.Errorf("checkpoint: FromResult: %w", err)
	}
	params := append([]float64(nil), res.GlobalParams...)
	return &Checkpoint{
		Arch: arch, Config: cfg, Norm: sparse.NormSym,
		Params: params, Graph: g, Adj: g.NormAdj(sparse.NormSym),
	}, nil
}

// Model rebuilds the trained model: the registry builder for Arch is bound
// to Graph (seeding its propagation-plan cache from Adj when present) and
// loaded with Params. seed drives the builder's RNG; it only affects
// training-time dropout, never inference outputs.
func (c *Checkpoint) Model(seed int64) (models.Model, error) {
	build, err := models.BuilderFor(c.Arch)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: Model: %w", err)
	}
	if c.Graph == nil {
		return nil, fmt.Errorf("checkpoint: Model: checkpoint has no graph")
	}
	if c.Adj != nil {
		if c.Adj.NRows != c.Graph.N || c.Adj.NCols != c.Graph.N {
			return nil, fmt.Errorf("checkpoint: Model: cached adjacency is %dx%d for a %d-node graph",
				c.Adj.NRows, c.Adj.NCols, c.Graph.N)
		}
		c.Graph.SeedNormAdj(c.Norm, c.Adj)
	}
	m := build(c.Graph, c.Config, rand.New(rand.NewSource(seed)))
	if err := nn.Unflatten(m, c.Params); err != nil {
		return nil, fmt.Errorf("checkpoint: Model: parameters do not fit %s: %w", c.Arch, err)
	}
	return m, nil
}

// Encode serialises the checkpoint into the versioned binary container.
// Encoding is deterministic: equal checkpoints produce equal bytes.
func (c *Checkpoint) Encode() ([]byte, error) {
	if c.Graph == nil {
		return nil, fmt.Errorf("checkpoint: Encode: nil graph")
	}
	if c.Graph.X != nil && c.Graph.X.Rows != c.Graph.N {
		return nil, fmt.Errorf("checkpoint: Encode: features have %d rows for %d nodes", c.Graph.X.Rows, c.Graph.N)
	}
	var w writer
	w.buf = append(w.buf, Magic...)
	w.u32(Version)
	sections := uint32(2)
	if c.Adj != nil {
		sections++
	}
	w.u32(sections)

	w.section(secModel, func(p *writer) {
		p.str(c.Arch)
		p.u64(uint64(c.Config.Hidden))
		p.f64(c.Config.Dropout)
		p.u64(uint64(c.Config.Hops))
		p.f64(c.Config.Alpha)
		p.f64(c.Config.LR)
		p.f64(c.Config.WeightDecay)
		p.u32(uint32(c.Norm))
		p.f64s(c.Params)
	})
	w.section(secGraph, func(p *writer) {
		g := c.Graph
		p.u64(uint64(g.N))
		p.u64(uint64(g.Classes))
		p.u64(uint64(len(g.Edges)))
		for _, e := range g.Edges {
			p.u64(uint64(e[0]))
			p.u64(uint64(e[1]))
		}
		if g.X == nil {
			p.u8(0)
		} else {
			p.u8(1)
			p.u64(uint64(g.X.Rows))
			p.u64(uint64(g.X.Cols))
			p.f64s(g.X.Data)
		}
		if g.Labels == nil {
			p.u8(0)
		} else {
			p.u8(1)
			p.ints(g.Labels)
		}
		p.bools(g.TrainMask)
		p.bools(g.ValMask)
		p.bools(g.TestMask)
	})
	if c.Adj != nil {
		w.section(secAdj, func(p *writer) {
			p.u64(uint64(c.Adj.NRows))
			p.u64(uint64(c.Adj.NCols))
			p.ints(c.Adj.RowPtr)
			p.ints(c.Adj.ColIdx)
			p.f64s(c.Adj.Val)
		})
	}
	return w.buf, nil
}

// Decode parses a checkpoint from its binary encoding, validating the magic,
// version, section CRCs and every structural invariant. Corrupt or truncated
// input yields a named-op error wrapping ErrCorrupt, never a panic.
func Decode(data []byte) (*Checkpoint, error) {
	c, err := decode(data)
	if err != nil {
		return nil, corrupt(err)
	}
	return c, nil
}

// decode is Decode without the ErrCorrupt tagging: every failure below is by
// construction a property of the artifact's bytes.
func decode(data []byte) (*Checkpoint, error) {
	r := &reader{data: data}
	if !r.need(len(Magic)) {
		return nil, r.err
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("checkpoint: Decode: bad magic %q", data[:len(Magic)])
	}
	r.off = len(Magic)
	if v := r.u32(); r.err == nil && v != Version {
		return nil, fmt.Errorf("checkpoint: Decode: unsupported version %d (have %d)", v, Version)
	}
	nSec := r.u32()
	if r.err != nil {
		return nil, r.err
	}

	c := &Checkpoint{}
	var seenModel, seenGraph bool
	lastKind := uint32(0)
	for i := uint32(0); i < nSec; i++ {
		kind, p := r.sectionReader()
		if r.err != nil {
			return nil, r.err
		}
		if kind <= lastKind {
			return nil, fmt.Errorf("checkpoint: Decode: section kind %d out of order after %d", kind, lastKind)
		}
		lastKind = kind
		switch kind {
		case secModel:
			decodeModel(p, c)
			seenModel = true
		case secGraph:
			decodeGraph(p, c)
			seenGraph = true
		case secAdj:
			decodeAdj(p, c)
		default:
			return nil, fmt.Errorf("checkpoint: Decode: unknown section kind %d", kind)
		}
		if p.err != nil {
			return nil, p.err
		}
		if p.off != len(p.data) {
			return nil, fmt.Errorf("checkpoint: Decode: section %d has %d trailing bytes", kind, len(p.data)-p.off)
		}
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("checkpoint: Decode: %d trailing bytes after last section", len(r.data)-r.off)
	}
	if !seenModel {
		return nil, fmt.Errorf("checkpoint: Decode: missing model section")
	}
	if !seenGraph {
		return nil, fmt.Errorf("checkpoint: Decode: missing graph section")
	}
	if c.Adj != nil && (c.Adj.NRows != c.Graph.N || c.Adj.NCols != c.Graph.N) {
		return nil, fmt.Errorf("checkpoint: Decode: adjacency section is %dx%d for a %d-node graph",
			c.Adj.NRows, c.Adj.NCols, c.Graph.N)
	}
	return c, nil
}

// Sanity caps on decoded hyperparameters: a CRC-valid but hostile file must
// not make the registry builder allocate enormous weight matrices or run
// billions of propagation steps before Model() can notice the parameter
// vector does not fit. The caps are far above anything the architectures
// use (paper scale: hidden 64, hops 3).
const (
	maxHidden = 1 << 20
	maxHops   = 1 << 12
)

// decodeModel parses the model section into c.
func decodeModel(p *reader, c *Checkpoint) {
	c.Arch = p.str()
	c.Config.Hidden = p.dim("hidden")
	if p.err == nil && c.Config.Hidden > maxHidden {
		p.fail("hidden width %d exceeds cap %d", c.Config.Hidden, maxHidden)
		return
	}
	c.Config.Dropout = p.f64()
	c.Config.Hops = p.dim("hops")
	if p.err == nil && c.Config.Hops > maxHops {
		p.fail("hop count %d exceeds cap %d", c.Config.Hops, maxHops)
		return
	}
	c.Config.Alpha = p.f64()
	c.Config.LR = p.f64()
	c.Config.WeightDecay = p.f64()
	norm := p.u32()
	if p.err == nil {
		if norm > uint32(sparse.NormReverse) {
			p.fail("unknown NormKind %d", norm)
			return
		}
		c.Norm = sparse.NormKind(norm)
	}
	c.Params = p.f64s("params")
}

// decodeGraph parses the graph section into c, validating every index
// against the declared node count so graph construction cannot panic.
func decodeGraph(p *reader, c *Checkpoint) {
	n := p.dim("node count")
	classes := p.dim("class count")
	if p.err == nil && classes > maxHidden {
		p.fail("class count %d exceeds cap %d", classes, maxHidden)
		return
	}
	nEdges := p.count(16, "edge")
	if p.err != nil {
		return
	}
	edges := make([][2]int, nEdges)
	for i := range edges {
		u, v := p.dim("edge endpoint"), p.dim("edge endpoint")
		if p.err != nil {
			return
		}
		if u >= n || v >= n {
			p.fail("edge %d = {%d,%d} outside %d-node graph", i, u, v, n)
			return
		}
		edges[i] = [2]int{u, v}
	}
	var x *matrix.Dense
	if p.u8() == 1 {
		rows, cols := p.dim("feature rows"), p.dim("feature cols")
		if p.err != nil {
			return
		}
		if rows != n {
			p.fail("feature matrix has %d rows for %d nodes", rows, n)
			return
		}
		vals := p.f64s("feature")
		if p.err != nil {
			return
		}
		if len(vals) != rows*cols {
			p.fail("feature matrix %dx%d carries %d values", rows, cols, len(vals))
			return
		}
		x = matrix.FromSlice(rows, cols, vals)
	}
	var labels []int
	if p.err == nil && p.u8() == 1 {
		labels = p.ints("label")
		if p.err == nil && len(labels) != n {
			p.fail("%d labels for %d nodes", len(labels), n)
			return
		}
		// Downstream consumers index by label (one-hot encoding, class
		// histograms), so out-of-range values must die here, not there.
		if p.err == nil && n > 0 && classes <= 0 {
			p.fail("%d labelled nodes with class count %d", n, classes)
			return
		}
		for i, l := range labels {
			if l < 0 || l >= classes {
				p.fail("label %d at node %d outside [0, %d)", l, i, classes)
				return
			}
		}
	}
	train := p.bools("train")
	val := p.bools("val")
	test := p.bools("test")
	if p.err != nil {
		return
	}
	if len(train) != n || len(val) != n || len(test) != n {
		p.fail("mask lengths %d/%d/%d for %d nodes", len(train), len(val), len(test), n)
		return
	}
	g := graph.New(n, edges, x, labels, classes)
	copy(g.TrainMask, train)
	copy(g.ValMask, val)
	copy(g.TestMask, test)
	c.Graph = g
}

// decodeAdj parses the optional cached-adjacency section into c, validating
// the CSR invariants (monotone row pointers, in-range sorted-unique columns)
// the rest of the system assumes.
func decodeAdj(p *reader, c *Checkpoint) {
	nRows, nCols := p.dim("adj rows"), p.dim("adj cols")
	rowPtr := p.ints("adj rowptr")
	colIdx := p.ints("adj colidx")
	vals := p.f64s("adj val")
	if p.err != nil {
		return
	}
	if len(rowPtr) != nRows+1 || rowPtr[0] != 0 || rowPtr[nRows] != len(colIdx) || len(vals) != len(colIdx) {
		p.fail("adjacency framing: %d rowptr / %d colidx / %d vals for %d rows",
			len(rowPtr), len(colIdx), len(vals), nRows)
		return
	}
	for i := 0; i < nRows; i++ {
		if rowPtr[i+1] < rowPtr[i] {
			p.fail("adjacency rowptr decreases at row %d", i)
			return
		}
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			if colIdx[k] < 0 || colIdx[k] >= nCols {
				p.fail("adjacency column %d outside %d cols", colIdx[k], nCols)
				return
			}
			if k > rowPtr[i] && colIdx[k] <= colIdx[k-1] {
				p.fail("adjacency columns not sorted-unique in row %d", i)
				return
			}
		}
	}
	c.Adj = &sparse.CSR{NRows: nRows, NCols: nCols, RowPtr: rowPtr, ColIdx: colIdx, Val: vals}
}

// Save writes the checkpoint to path atomically (temp file + rename), so a
// crashed save never leaves a torn artifact behind.
func Save(path string, c *Checkpoint) error {
	data, err := c.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: Save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: Save: %w", err)
	}
	return nil
}

// Load reads and decodes the checkpoint at path.
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: Load: %w", err)
	}
	return Decode(data)
}
