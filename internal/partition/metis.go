package partition

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Metis partitions g into k balanced parts with a multilevel-flavoured
// heuristic: BFS region growing from spread-out seeds (respecting a strict
// size cap) followed by Kernighan–Lin boundary refinement passes that reduce
// the edge cut while keeping parts balanced. This reproduces the property
// the paper needs from METIS: balanced, locality-preserving subgraphs that
// inherit the global graph's topology.
func Metis(g *graph.Graph, k int, rng *rand.Rand) []int {
	n := g.N
	if k <= 1 || n == 0 {
		return make([]int, n)
	}
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	cap1 := (n + k - 1) / k // per-part size cap (±1 balance)
	sizes := make([]int, k)

	// Seeds: BFS-farthest sweep for spread-out starting points.
	seeds := spreadSeeds(g, k, rng)
	queues := make([][]int, k)
	for p, s := range seeds {
		if part[s] == -1 {
			part[s] = p
			sizes[p]++
			queues[p] = append(queues[p], s)
		}
	}
	// Round-robin BFS growth under the size cap.
	active := true
	for active {
		active = false
		for p := 0; p < k; p++ {
			if sizes[p] >= cap1 || len(queues[p]) == 0 {
				continue
			}
			v := queues[p][0]
			queues[p] = queues[p][1:]
			for _, u := range g.Neighbors(v) {
				if part[u] == -1 && sizes[p] < cap1 {
					part[u] = p
					sizes[p]++
					queues[p] = append(queues[p], u)
					active = true
				}
			}
			if len(queues[p]) > 0 {
				active = true
			}
		}
	}
	// Unreached nodes (other components): assign to the smallest part.
	for v := 0; v < n; v++ {
		if part[v] == -1 {
			best := 0
			for p := 1; p < k; p++ {
				if sizes[p] < sizes[best] {
					best = p
				}
			}
			part[v] = best
			sizes[best]++
		}
	}
	klRefine(g, part, sizes, cap1, rng)
	return part
}

// spreadSeeds picks k seed nodes far apart via repeated BFS eccentricity.
func spreadSeeds(g *graph.Graph, k int, rng *rand.Rand) []int {
	n := g.N
	seeds := []int{rng.Intn(n)}
	dist := make([]int, n)
	for len(seeds) < k {
		for i := range dist {
			dist[i] = 1 << 30
		}
		queue := make([]int, 0, n)
		for _, s := range seeds {
			dist[s] = 0
			queue = append(queue, s)
		}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.Neighbors(v) {
				if dist[u] > dist[v]+1 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		far, fd := rng.Intn(n), -1
		for v := 0; v < n; v++ {
			d := dist[v]
			if d == 1<<30 {
				d = 1 << 20 // unreachable: very far but bounded
			}
			if d > fd {
				far, fd = v, d
			}
		}
		seeds = append(seeds, far)
	}
	return seeds
}

// klRefine performs greedy boundary moves that reduce the edge cut while
// respecting the balance cap.
func klRefine(g *graph.Graph, part, sizes []int, cap1 int, rng *rand.Rand) {
	for pass := 0; pass < 3; pass++ {
		moved := 0
		order := rng.Perm(g.N)
		for _, v := range order {
			pv := part[v]
			// Gain of moving v to each neighbouring part.
			nbrCount := map[int]int{}
			for _, u := range g.Neighbors(v) {
				nbrCount[part[u]]++
			}
			cands := make([]int, 0, len(nbrCount))
			for p := range nbrCount {
				cands = append(cands, p)
			}
			sort.Ints(cands)
			bestP, bestGain := pv, 0
			for _, p := range cands {
				if p == pv || sizes[p] >= cap1 {
					continue
				}
				gain := nbrCount[p] - nbrCount[pv]
				if gain > bestGain {
					bestGain, bestP = gain, p
				}
			}
			if bestP != pv && sizes[pv] > 1 {
				sizes[pv]--
				sizes[bestP]++
				part[v] = bestP
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// EdgeCut counts edges crossing part boundaries.
func EdgeCut(g *graph.Graph, part []int) int {
	cut := 0
	for _, e := range g.Edges {
		if part[e[0]] != part[e[1]] {
			cut++
		}
	}
	return cut
}

// PartSizes returns the size of each part given k parts.
func PartSizes(part []int, k int) []int {
	sizes := make([]int, k)
	for _, p := range part {
		sizes[p]++
	}
	return sizes
}

// groupByPart inverts an assignment into per-part node lists with
// deterministic ordering.
func groupByPart(part []int, k int) [][]int {
	out := make([][]int, k)
	for v, p := range part {
		out[p] = append(out[p], v)
	}
	for _, l := range out {
		sort.Ints(l)
	}
	return out
}
