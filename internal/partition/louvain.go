// Package partition implements the two distributed-subgraph simulation
// strategies of the AdaFGL paper: community split (Louvain communities
// assigned to clients by the node-average principle) and structure Non-iid
// split (Definition 1: Metis-style balanced partitioning followed by
// per-client homophilous or heterophilous edge injection), plus the
// random-injection and meta-injection perturbation operators and the
// sparsity helpers used by the Fig. 10 experiments.
package partition

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Louvain runs the two-phase Louvain modularity optimisation (Blondel et al.
// 2008) and returns a community id per node. The rng only breaks move ties
// through node visiting order; the algorithm itself is standard.
func Louvain(g *graph.Graph, rng *rand.Rand) []int {
	// Work on a weighted graph that we coarsen level by level.
	n := g.N
	// adjacency as weighted maps for mutability during coarsening.
	adj := make([]map[int]float64, n)
	for i := range adj {
		adj[i] = make(map[int]float64)
	}
	for _, e := range g.Edges {
		if e[0] == e[1] {
			continue
		}
		adj[e[0]][e[1]]++
		adj[e[1]][e[0]]++
	}
	// membership maps original node -> current community label chain.
	membership := make([]int, n)
	for i := range membership {
		membership[i] = i
	}

	current := adj
	for level := 0; level < 10; level++ {
		comm, moved := louvainOnePass(current, rng)
		if !moved {
			break
		}
		// Relabel communities densely.
		dense := make(map[int]int)
		for _, c := range comm {
			if _, ok := dense[c]; !ok {
				dense[c] = len(dense)
			}
		}
		for i := range comm {
			comm[i] = dense[comm[i]]
		}
		// Update membership of original nodes.
		for i := range membership {
			membership[i] = comm[membership[i]]
		}
		if len(dense) == len(current) {
			break // no coarsening progress
		}
		// Build coarsened graph: communities become super-nodes. Internal
		// weight is kept as a self-loop (ordered-pair double counting gives
		// the A_ii = 2·w_internal convention used by the degree sum).
		next := make([]map[int]float64, len(dense))
		for i := range next {
			next[i] = make(map[int]float64)
		}
		for u, nbrs := range current {
			cu := comm[u]
			// Sorted neighbour order keeps float accumulation reproducible.
			vs := make([]int, 0, len(nbrs))
			for v := range nbrs {
				vs = append(vs, v)
			}
			sort.Ints(vs)
			for _, v := range vs {
				next[cu][comm[v]] += nbrs[v]
			}
		}
		current = next
	}
	return membership
}

// louvainOnePass greedily moves nodes between communities until no move
// improves modularity; returns the community assignment and whether any node
// moved.
func louvainOnePass(adj []map[int]float64, rng *rand.Rand) ([]int, bool) {
	n := len(adj)
	comm := make([]int, n)
	degree := make([]float64, n)
	var m2 float64 // 2m = total weighted degree
	for i := range adj {
		comm[i] = i
		for _, w := range adj[i] {
			degree[i] += w
		}
		m2 += degree[i]
	}
	if m2 == 0 {
		return comm, false
	}
	commDegree := make([]float64, n) // Σ degrees of community members
	copy(commDegree, degree)

	order := rng.Perm(n)
	movedAny := false
	for pass := 0; pass < 8; pass++ {
		movedPass := false
		for _, u := range order {
			cu := comm[u]
			// Weight from u to each neighbouring community. Self-loops move
			// with u, so they are constant across candidates and skipped.
			toComm := make(map[int]float64)
			for v, w := range adj[u] {
				if v == u {
					continue
				}
				toComm[comm[v]] += w
			}
			// Remove u from its community.
			commDegree[cu] -= degree[u]
			// Deterministic candidate order: map iteration order must not
			// influence tie-breaking (reproducible experiments).
			cands := make([]int, 0, len(toComm))
			for c := range toComm {
				cands = append(cands, c)
			}
			sort.Ints(cands)
			bestC, bestGain := cu, 0.0
			base := toComm[cu] - degree[u]*commDegree[cu]/m2
			for _, c := range cands {
				// Modularity gain of joining c:
				// ΔQ ∝ w - degree[u]*commDegree[c]/2m.
				gain := toComm[c] - degree[u]*commDegree[c]/m2
				if gain-base > bestGain+1e-12 {
					bestGain = gain - base
					bestC = c
				}
			}
			commDegree[bestC] += degree[u]
			if bestC != cu {
				comm[u] = bestC
				movedPass = true
				movedAny = true
			}
		}
		if !movedPass {
			break
		}
	}
	return comm, movedAny
}

// Modularity computes the Newman modularity of the given assignment on g,
// used to validate Louvain quality in tests.
func Modularity(g *graph.Graph, comm []int) float64 {
	m := float64(g.M())
	if m == 0 {
		return 0
	}
	deg := g.Degrees()
	var q float64
	// Σ_c (e_c/m - (d_c/2m)²)
	internal := make(map[int]float64)
	degSum := make(map[int]float64)
	for _, e := range g.Edges {
		if comm[e[0]] == comm[e[1]] {
			internal[comm[e[0]]]++
		}
	}
	for i, d := range deg {
		degSum[comm[i]] += float64(d)
	}
	for _, ec := range internal {
		q += ec / m
	}
	for _, dc := range degSum {
		q -= (dc / (2 * m)) * (dc / (2 * m))
	}
	return q
}
