package partition

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// ClientData is the outcome of a data-simulation strategy: one subgraph per
// client plus bookkeeping for analysis (Fig. 2 style reporting).
type ClientData struct {
	Subgraphs []*graph.Graph
	// Assignment maps each global node id to its client.
	Assignment []int
	// Injected records, per client, whether the structure Non-iid injection
	// enhanced homophily (+1), heterophily (-1) or nothing (0).
	Injected []int
}

// CommunitySplit implements the community split of the paper: Louvain
// communities are assigned to k clients following the node-average principle
// (largest community first onto the currently smallest client), preserving
// the global graph's topology within every client.
func CommunitySplit(g *graph.Graph, k int, rng *rand.Rand) *ClientData {
	comm := Louvain(g, rng)
	groups := map[int][]int{}
	for v, c := range comm {
		groups[c] = append(groups[c], v)
	}
	ids := make([]int, 0, len(groups))
	for c := range groups {
		ids = append(ids, c)
	}
	// Largest-first for balanced greedy assignment; ties broken by id for
	// determinism.
	sort.Slice(ids, func(i, j int) bool {
		if len(groups[ids[i]]) != len(groups[ids[j]]) {
			return len(groups[ids[i]]) > len(groups[ids[j]])
		}
		return ids[i] < ids[j]
	})
	assign := make([]int, g.N)
	sizes := make([]int, k)
	for _, c := range ids {
		smallest := 0
		for p := 1; p < k; p++ {
			if sizes[p] < sizes[smallest] {
				smallest = p
			}
		}
		for _, v := range groups[c] {
			assign[v] = smallest
		}
		sizes[smallest] += len(groups[c])
	}
	return buildClients(g, assign, k, nil)
}

// StructureNonIIDOptions configures Definition 1's injection step.
type StructureNonIIDOptions struct {
	// SamplingRatio is the fraction of original edges determining how many
	// edges are injected (paper default 0.5).
	SamplingRatio float64
	// HomoProb is the binary-selection probability of enhancing homophily
	// (paper default 0.5).
	HomoProb float64
	// Meta switches heterophilous injection to the Metattack-inspired
	// adversarial surrogate with budget MetaBudget·|E| (paper: 0.2).
	Meta       bool
	MetaBudget float64
}

// DefaultNonIID returns the paper's default injection options
// (random-injection, 50% sampling ratio, ps = 0.5). MetaBudget is set to the
// sampling ratio rather than the paper's 0.2: Metattack's meta-gradients let
// it cause more damage with 0.2·|E| flips than 0.5·|E| random edges, while
// our greedy surrogate needs equal modification counts to reproduce that
// ordering — equalising the budgets isolates attack quality (see DESIGN.md).
func DefaultNonIID() StructureNonIIDOptions {
	return StructureNonIIDOptions{SamplingRatio: 0.5, HomoProb: 0.5, Meta: false, MetaBudget: 0.5}
}

// StructureNonIIDSplit implements Definition 1: Metis partitions g into k
// subgraphs with topological consistency, then each client's subgraph
// receives a binary-selected homophilous or heterophilous edge injection,
// generating topology variance across clients.
func StructureNonIIDSplit(g *graph.Graph, k int, opt StructureNonIIDOptions, rng *rand.Rand) *ClientData {
	part := Metis(g, k, rng)
	cd := buildClients(g, part, k, rng)
	cd.Injected = make([]int, k)
	for i, sub := range cd.Subgraphs {
		if rng.Float64() < opt.HomoProb {
			RandomInject(sub, opt.SamplingRatio, true, rng)
			cd.Injected[i] = +1
		} else {
			if opt.Meta {
				// Meta-injection replaces random heterophilous perturbation
				// with the adversarial surrogate (Sec. IV-A uses Metattack
				// with a 0.2·|E| budget). The surrogate concentrates its
				// budget on neighbourhood takeovers, so it degrades accuracy
				// more per edge than random injection — the ordering the
				// paper's Tables IV/V measure.
				MetaInject(sub, opt.MetaBudget, rng)
			} else {
				RandomInject(sub, opt.SamplingRatio, false, rng)
			}
			cd.Injected[i] = -1
		}
	}
	return cd
}

// buildClients induces per-client subgraphs from an assignment.
func buildClients(g *graph.Graph, assign []int, k int, _ *rand.Rand) *ClientData {
	groups := groupByPart(assign, k)
	cd := &ClientData{Assignment: assign}
	for p := 0; p < k; p++ {
		sub, _ := g.Subgraph(groups[p])
		cd.Subgraphs = append(cd.Subgraphs, sub)
	}
	return cd
}

// RandomInject adds edges to g: the number of injected edges is
// ratio·|E|. When homophilous is true the new edges connect same-label
// non-adjacent pairs (homophilous augmentation); otherwise different-label
// pairs (heterophilous perturbation). Matches the paper's random-injection.
func RandomInject(g *graph.Graph, ratio float64, homophilous bool, rng *rand.Rand) int {
	target := int(float64(g.M()) * ratio)
	if target <= 0 || g.N < 2 {
		return 0
	}
	var added [][2]int
	batch := map[[2]int]bool{}
	tries := 0
	maxTries := target * 50
	for len(added) < target && tries < maxTries {
		tries++
		u, v := rng.Intn(g.N), rng.Intn(g.N)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if batch[key] || g.HasEdge(u, v) {
			continue
		}
		same := g.Labels[u] == g.Labels[v]
		if same != homophilous {
			continue
		}
		batch[key] = true
		added = append(added, key)
	}
	g.AddEdges(added)
	return len(added)
}

// MetaInject is the Metattack surrogate: a greedy adversarial perturbation
// that spends a budget of budget·|E| *adjacency flips* (edge insertions and
// deletions, like Metattack's bidirectional meta-gradient flips) on
// neighbourhood takeovers. Victims are processed training-nodes-first and
// cheapest-first; each takeover deletes the victim's same-class edges and
// connects it to wrong-class, feature-dissimilar hubs, flipping the
// aggregated neighbourhood majority outright. Concentrating the budget this
// way reproduces Metattack's measured property in the paper: substantially
// more damage per flip than random heterophilous injection (Tables IV/V,
// Fig. 5). Returns the number of flips performed.
func MetaInject(g *graph.Graph, budget float64, rng *rand.Rand) int {
	target := int(float64(g.M()) * budget)
	if target <= 0 || g.N < 2 {
		return 0
	}
	deg := g.Degrees()
	// Hub list per class: highest-degree nodes, used as attack sources.
	hubs := make(map[int][]int)
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if deg[order[a]] != deg[order[b]] {
			return deg[order[a]] > deg[order[b]]
		}
		return order[a] < order[b]
	})
	for _, v := range order {
		c := g.Labels[v]
		if len(hubs[c]) < 32 {
			hubs[c] = append(hubs[c], v)
		}
	}
	// Victim priority: unlabeled (test/val) nodes first, cheapest takeovers
	// first — Metattack maximises the loss on the unlabeled set, so its
	// flips concentrate on flipping unlabeled nodes' neighbourhoods.
	victims := make([]int, g.N)
	copy(victims, order)
	sort.Slice(victims, func(a, b int) bool {
		va, vb := victims[a], victims[b]
		if g.TrainMask[va] != g.TrainMask[vb] {
			return g.TrainMask[vb] // unlabeled before training nodes
		}
		if deg[va] != deg[vb] {
			return deg[va] < deg[vb]
		}
		return va < vb
	})

	var adds, dels [][2]int
	seenAdd := map[[2]int]bool{}
	spent := 0
	for _, victim := range victims {
		if spent >= target {
			break
		}
		vc := g.Labels[victim]
		// Delete the victim's same-class edges (one flip each).
		for _, u := range g.Neighbors(victim) {
			if spent >= target {
				break
			}
			if g.Labels[u] == vc {
				a, b := victim, u
				if a > b {
					a, b = b, a
				}
				dels = append(dels, [2]int{a, b})
				spent++
			}
		}
		// Connect to the most dissimilar wrong-class hubs (two flips).
		type cand struct {
			node  int
			score float64
		}
		var cands []cand
		for c, hs := range hubs {
			if c == vc {
				continue
			}
			for _, h := range hs {
				sim := 0.0
				if g.X != nil {
					sim = cosineRows(g.X.Row(victim), g.X.Row(h))
				}
				cands = append(cands, cand{h, float64(deg[h]+1) * (1 - sim)})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].score != cands[b].score {
				return cands[a].score > cands[b].score
			}
			return cands[a].node < cands[b].node
		})
		added := 0
		for _, c := range cands {
			if added >= 2 || spent >= target {
				break
			}
			a, b := victim, c.node
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			k := [2]int{a, b}
			if seenAdd[k] || g.HasEdge(a, b) {
				continue
			}
			seenAdd[k] = true
			adds = append(adds, k)
			added++
			spent++
		}
	}
	g.RemoveEdges(dels)
	g.AddEdges(adds)
	return spent
}

func cosineRows(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// SparsifyFeatures zeroes the feature rows of a fraction frac of unlabeled
// (non-train) nodes, simulating missing features (Fig. 10(a)).
func SparsifyFeatures(g *graph.Graph, frac float64, rng *rand.Rand) int {
	count := 0
	for i := 0; i < g.N; i++ {
		if g.TrainMask[i] {
			continue
		}
		if rng.Float64() < frac {
			row := g.X.Row(i)
			for j := range row {
				row[j] = 0
			}
			count++
		}
	}
	return count
}

// SparsifyLabels demotes a fraction frac of training nodes to unlabeled
// (moved to the test mask), simulating label sparsity (Fig. 10(c)).
func SparsifyLabels(g *graph.Graph, frac float64, rng *rand.Rand) int {
	count := 0
	for i := 0; i < g.N; i++ {
		if g.TrainMask[i] && rng.Float64() < frac {
			g.TrainMask[i] = false
			g.TestMask[i] = true
			count++
		}
	}
	return count
}
