package partition

import (
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// partitionFixture is a mid-sized planted-community graph the determinism
// and invariant tests share.
func partitionFixture(seed int64) *graph.Graph {
	return datasets.DefaultStream(400, seed).Materialize()
}

// samePartition reports whether two assignment vectors are identical.
func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLouvainDeterministic pins Louvain's seeded determinism: the same
// graph and seed yield bit-identical assignments across reruns and across
// worker counts — community detection must not depend on the parallel
// pool's width.
func TestLouvainDeterministic(t *testing.T) {
	g := partitionFixture(3)
	ref := Louvain(g, rand.New(rand.NewSource(5)))
	for run := 0; run < 3; run++ {
		if got := Louvain(g, rand.New(rand.NewSource(5))); !samePartition(got, ref) {
			t.Fatalf("rerun %d: Louvain differs on identical seed", run)
		}
	}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	for _, workers := range []int{1, 2, 7} {
		parallel.SetWorkers(workers)
		if got := Louvain(g, rand.New(rand.NewSource(5))); !samePartition(got, ref) {
			t.Fatalf("workers=%d: Louvain differs from reference", workers)
		}
	}
}

// TestMetisDeterministic pins METIS's seeded determinism across reruns and
// worker counts, for several shard counts.
func TestMetisDeterministic(t *testing.T) {
	g := partitionFixture(11)
	for _, k := range []int{2, 4, 8} {
		ref := Metis(g, k, rand.New(rand.NewSource(9)))
		for run := 0; run < 3; run++ {
			if got := Metis(g, k, rand.New(rand.NewSource(9))); !samePartition(got, ref) {
				t.Fatalf("k=%d rerun %d: Metis differs on identical seed", k, run)
			}
		}
		prev := parallel.SetWorkers(1)
		for _, workers := range []int{1, 3, 8} {
			parallel.SetWorkers(workers)
			if got := Metis(g, k, rand.New(rand.NewSource(9))); !samePartition(got, ref) {
				parallel.SetWorkers(prev)
				t.Fatalf("k=%d workers=%d: Metis differs from reference", k, workers)
			}
		}
		parallel.SetWorkers(prev)
	}
}

// bruteForceCut recounts cut edges off the symmetric CSR adjacency —
// independent of the canonical edge list EdgeCut iterates.
func bruteForceCut(g *graph.Graph, part []int) int {
	adj := g.Adj()
	cut := 0
	for u := 0; u < g.N; u++ {
		for k := adj.RowPtr[u]; k < adj.RowPtr[u+1]; k++ {
			if v := adj.ColIdx[k]; u < v && part[u] != part[v] {
				cut++
			}
		}
	}
	return cut
}

// TestPartitionInvariants property-checks both partitioners over several
// seeded graphs: every node assigned exactly once to a real part, no part
// empty, and the reported EdgeCut matching a brute-force recount.
func TestPartitionInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := partitionFixture(seed)
		const k = 5
		parts := map[string][]int{
			"metis":   Metis(g, k, rand.New(rand.NewSource(seed))),
			"louvain": Louvain(g, rand.New(rand.NewSource(seed))),
		}
		for name, part := range parts {
			if len(part) != g.N {
				t.Fatalf("%s/seed %d: %d assignments for %d nodes", name, seed, len(part), g.N)
			}
			max := 0
			for v, p := range part {
				if p < 0 {
					t.Fatalf("%s/seed %d: node %d unassigned (%d)", name, seed, v, p)
				}
				if p > max {
					max = p
				}
			}
			sizes := PartSizes(part, max+1)
			for p, n := range sizes {
				if n == 0 {
					t.Fatalf("%s/seed %d: part %d is empty (sizes %v)", name, seed, p, sizes)
				}
			}
			if name == "metis" && len(sizes) != k {
				t.Fatalf("metis/seed %d: %d parts, want %d", seed, len(sizes), k)
			}
			if got, want := EdgeCut(g, part), bruteForceCut(g, part); got != want {
				t.Fatalf("%s/seed %d: EdgeCut %d, brute force %d", name, seed, got, want)
			}
		}
	}
}
