package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/models"
)

// plantedGraph returns a graph with c planted communities of size sz, dense
// inside and sparse across; labels equal community id.
func plantedGraph(c, sz int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := c * sz
	labels := make([]int, n)
	var edges [][2]int
	for i := 0; i < n; i++ {
		labels[i] = i / sz
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := 0.02
			if labels[i] == labels[j] {
				p = 0.5
			}
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	x := matrix.New(n, 4)
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, rng.NormFloat64()+float64(labels[i]))
		}
	}
	return graph.New(n, edges, x, labels, c)
}

func TestLouvainRecoverPlantedCommunities(t *testing.T) {
	g := plantedGraph(4, 20, 1)
	rng := rand.New(rand.NewSource(2))
	comm := Louvain(g, rng)
	// Nodes in the same planted block should mostly share a community.
	agree, total := 0, 0
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			samePlanted := g.Labels[i] == g.Labels[j]
			sameFound := comm[i] == comm[j]
			total++
			if samePlanted == sameFound {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.9 {
		t.Fatalf("Louvain pair agreement %.3f < 0.9", frac)
	}
}

func TestLouvainModularityPositive(t *testing.T) {
	g := plantedGraph(3, 15, 3)
	comm := Louvain(g, rand.New(rand.NewSource(4)))
	q := Modularity(g, comm)
	if q < 0.3 {
		t.Fatalf("modularity %.3f too low for planted communities", q)
	}
	// Louvain must beat the trivial all-in-one assignment.
	trivial := make([]int, g.N)
	if q <= Modularity(g, trivial) {
		t.Fatal("Louvain must beat trivial assignment")
	}
}

func TestMetisBalance(t *testing.T) {
	g := plantedGraph(4, 25, 5)
	for _, k := range []int{2, 5, 10} {
		part := Metis(g, k, rand.New(rand.NewSource(6)))
		sizes := PartSizes(part, k)
		capLimit := (g.N + k - 1) / k
		for p, s := range sizes {
			if s == 0 {
				t.Fatalf("k=%d: part %d empty", k, p)
			}
			if s > capLimit+1 {
				t.Fatalf("k=%d: part %d size %d exceeds cap %d", k, p, s, capLimit)
			}
		}
	}
}

func TestMetisCutBeatsRandom(t *testing.T) {
	g := plantedGraph(4, 25, 7)
	rng := rand.New(rand.NewSource(8))
	part := Metis(g, 4, rng)
	metisCut := EdgeCut(g, part)
	randPart := make([]int, g.N)
	for i := range randPart {
		randPart[i] = rng.Intn(4)
	}
	if metisCut >= EdgeCut(g, randPart) {
		t.Fatalf("Metis cut %d not better than random %d", metisCut, EdgeCut(g, randPart))
	}
}

func TestCommunitySplitCoversAllNodes(t *testing.T) {
	g := plantedGraph(5, 20, 9)
	cd := CommunitySplit(g, 4, rand.New(rand.NewSource(10)))
	if len(cd.Subgraphs) != 4 {
		t.Fatalf("clients = %d, want 4", len(cd.Subgraphs))
	}
	total := 0
	for _, sub := range cd.Subgraphs {
		total += sub.N
	}
	if total != g.N {
		t.Fatalf("subgraphs cover %d nodes, want %d", total, g.N)
	}
	for v, p := range cd.Assignment {
		if p < 0 || p >= 4 {
			t.Fatalf("node %d assigned to invalid client %d", v, p)
		}
	}
}

func TestCommunitySplitPreservesHomophily(t *testing.T) {
	// Community split on a homophilous graph keeps clients homophilous
	// (the paper's Fig. 2(b) claim).
	s, err := datasets.ByName("Cora")
	if err != nil {
		t.Fatal(err)
	}
	g := datasets.GenerateScaled(s, 0.5, 11)
	cd := CommunitySplit(g, 5, rand.New(rand.NewSource(12)))
	for i, sub := range cd.Subgraphs {
		if sub.M() < 5 {
			continue
		}
		if h := sub.EdgeHomophily(); h < 0.6 {
			t.Errorf("client %d homophily %.3f < 0.6 under community split", i, h)
		}
	}
}

func TestStructureNonIIDCreatesTopologyVariance(t *testing.T) {
	s, err := datasets.ByName("Cora")
	if err != nil {
		t.Fatal(err)
	}
	g := datasets.GenerateScaled(s, 0.5, 13)
	cd := StructureNonIIDSplit(g, 6, DefaultNonIID(), rand.New(rand.NewSource(14)))
	if len(cd.Injected) != 6 {
		t.Fatalf("Injected len = %d", len(cd.Injected))
	}
	var homos, heteros int
	var minH, maxH = 1.0, 0.0
	for i, sub := range cd.Subgraphs {
		h := sub.EdgeHomophily()
		if h < minH {
			minH = h
		}
		if h > maxH {
			maxH = h
		}
		switch cd.Injected[i] {
		case 1:
			homos++
		case -1:
			heteros++
		default:
			t.Fatalf("client %d has no injection record", i)
		}
	}
	if homos == 0 || heteros == 0 {
		t.Skip("binary selection degenerate for this seed (all one side)")
	}
	// Structure Non-iid must create wider topology spread than community
	// split does on the same graph.
	if maxH-minH < 0.15 {
		t.Fatalf("homophily spread %.3f too narrow for structure Non-iid", maxH-minH)
	}
}

func TestRandomInjectHomophilous(t *testing.T) {
	g := plantedGraph(3, 15, 15)
	before := g.EdgeHomophily()
	mBefore := g.M()
	n := RandomInject(g, 0.5, true, rand.New(rand.NewSource(16)))
	if n == 0 {
		t.Fatal("no edges injected")
	}
	if g.M() != mBefore+n {
		t.Fatalf("edge count %d, want %d", g.M(), mBefore+n)
	}
	if g.EdgeHomophily() <= before {
		t.Fatalf("homophilous injection must raise homophily: %.3f -> %.3f", before, g.EdgeHomophily())
	}
}

func TestRandomInjectHeterophilous(t *testing.T) {
	g := plantedGraph(3, 15, 17)
	before := g.EdgeHomophily()
	n := RandomInject(g, 0.5, false, rand.New(rand.NewSource(18)))
	if n == 0 {
		t.Fatal("no edges injected")
	}
	if g.EdgeHomophily() >= before {
		t.Fatalf("heterophilous injection must lower homophily: %.3f -> %.3f", before, g.EdgeHomophily())
	}
}

func TestMetaInjectLowersHomophilyWithBudget(t *testing.T) {
	g := plantedGraph(3, 15, 19)
	mBefore := g.M()
	before := g.EdgeHomophily()
	n := MetaInject(g, 0.2, rand.New(rand.NewSource(20)))
	if n == 0 {
		t.Fatal("meta-injection flipped nothing")
	}
	if n > int(float64(mBefore)*0.2)+1 {
		t.Fatalf("budget exceeded: %d flips > %d", n, int(float64(mBefore)*0.2))
	}
	if g.EdgeHomophily() >= before {
		t.Fatal("meta-injection must lower homophily")
	}
}

func TestMetaInjectDamagesModelMoreThanRandom(t *testing.T) {
	// The property the paper measures (Tables IV/V): at equal modification
	// counts, the adversarial surrogate degrades downstream model accuracy
	// at least as much as random heterophilous injection. Homophily metrics
	// alone would mislead here (additions move H_edge more than deletions),
	// so the test trains a GCN on both attacked graphs.
	spec, err := datasets.ByName("Physics")
	if err != nil {
		t.Fatal(err)
	}
	cfg := models.DefaultConfig()
	cfg.Hidden = 16
	cfg.Dropout = 0
	gMeta := datasets.GenerateScaled(spec, 0.2, 5)
	gRand := gMeta.Clone()
	flips := MetaInject(gMeta, 0.5, rand.New(rand.NewSource(6)))
	added := RandomInject(gRand, 0.5, false, rand.New(rand.NewSource(6)))
	if flips == 0 || added == 0 {
		t.Fatal("injection produced no modifications")
	}
	mMeta := models.NewGCN(gMeta, cfg, rand.New(rand.NewSource(7)))
	mRand := models.NewGCN(gRand, cfg, rand.New(rand.NewSource(7)))
	oMeta, oRand := cfg.NewOptimizer(), cfg.NewOptimizer()
	for e := 0; e < 80; e++ {
		models.TrainEpoch(mMeta, oMeta, gMeta.Labels, gMeta.TrainMask)
		models.TrainEpoch(mRand, oRand, gRand.Labels, gRand.TrainMask)
	}
	accMeta := models.Accuracy(mMeta, gMeta.Labels, gMeta.TestMask)
	accRand := models.Accuracy(mRand, gRand.Labels, gRand.TestMask)
	t.Logf("GCN accuracy: meta-attacked %.3f, random-attacked %.3f", accMeta, accRand)
	if accMeta > accRand+0.02 {
		t.Fatalf("meta attack (%.3f) weaker than random (%.3f)", accMeta, accRand)
	}
}

func TestSparsifyFeatures(t *testing.T) {
	g := plantedGraph(2, 10, 23)
	rng := rand.New(rand.NewSource(24))
	g.SplitTransductive(0.3, 0.2, rng)
	n := SparsifyFeatures(g, 1.0, rng)
	if n == 0 {
		t.Fatal("nothing sparsified")
	}
	for i := 0; i < g.N; i++ {
		zero := true
		for _, v := range g.X.Row(i) {
			if v != 0 {
				zero = false
			}
		}
		if g.TrainMask[i] && zero {
			t.Fatal("train node features must be preserved")
		}
		if !g.TrainMask[i] && !zero {
			t.Fatal("non-train node features must be zeroed at frac=1")
		}
	}
}

func TestSparsifyLabels(t *testing.T) {
	g := plantedGraph(2, 10, 25)
	rng := rand.New(rand.NewSource(26))
	g.SplitTransductive(0.5, 0.2, rng)
	before := graph.CountMask(g.TrainMask)
	n := SparsifyLabels(g, 0.5, rng)
	after := graph.CountMask(g.TrainMask)
	if after != before-n {
		t.Fatalf("train count %d, want %d", after, before-n)
	}
	if n == 0 {
		t.Fatal("no labels removed at frac=0.5")
	}
}

// Property: Metis partitions always cover every node with a valid part id
// and never exceed the balance cap by more than 1.
func TestQuickMetisValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := plantedGraph(2+rng.Intn(3), 8+rng.Intn(8), seed)
		k := 2 + rng.Intn(5)
		part := Metis(g, k, rng)
		if len(part) != g.N {
			return false
		}
		sizes := PartSizes(part, k)
		capLimit := (g.N+k-1)/k + 1
		for _, s := range sizes {
			if s > capLimit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: community split partitions the node set exactly (no loss, no
// duplication), for any client count.
func TestQuickCommunitySplitPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := plantedGraph(3, 12, seed)
		k := 2 + rng.Intn(4)
		cd := CommunitySplit(g, k, rng)
		total := 0
		for _, sub := range cd.Subgraphs {
			total += sub.N
		}
		return total == g.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestModularityBounds(t *testing.T) {
	g := plantedGraph(3, 10, 27)
	comm := Louvain(g, rand.New(rand.NewSource(28)))
	q := Modularity(g, comm)
	if q < -0.5 || q > 1 {
		t.Fatalf("modularity %v outside [-0.5, 1]", q)
	}
	if math.IsNaN(q) {
		t.Fatal("modularity NaN")
	}
}

func BenchmarkLouvain(b *testing.B) {
	s, _ := datasets.ByName("Cora")
	g := datasets.Generate(s, 1)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Louvain(g, rng)
	}
}

func BenchmarkMetis(b *testing.B) {
	s, _ := datasets.ByName("Cora")
	g := datasets.Generate(s, 1)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Metis(g, 10, rng)
	}
}
