package registry

import (
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/serve"
)

// fastBreaker is a breaker configuration tests can wait out.
func fastBreaker() BreakerOptions {
	return BreakerOptions{Threshold: 2, Backoff: 20 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, Seed: 1}
}

// TestBreakerTripsOnLoadFailures walks the full breaker lifecycle on load
// errors: consecutive failed acquires degrade then trip the model, a tripped
// model fails fast with the typed TrippedError (Retry-After hint included),
// and once the artifact is healthy again the half-open probe closes the
// breaker.
func TestBreakerTripsOnLoadFailures(t *testing.T) {
	dir := t.TempDir()
	ck := makeCkpt(t, "SGC", 3, 100)
	path := saveCkpt(t, dir, "m@1.ckpt", ck)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	r := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}, Breaker: fastBreaker()})
	defer r.Close()
	if _, err := r.AddFile(path); err != nil {
		t.Fatal(err)
	}

	// Corrupt the artifact after registration: every load now fails.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Acquire("m"); err == nil || errors.Is(err, ErrTripped) {
		t.Fatalf("first failure must not be tripped yet: %v", err)
	}
	if got := r.List()[0].Health; got != "degraded" {
		t.Fatalf("health after 1 failure = %q, want degraded", got)
	}
	if _, err := r.Acquire("m"); err == nil {
		t.Fatal("second load must fail")
	}
	if got := r.List()[0].Health; got != "tripped" {
		t.Fatalf("health after %d failures = %q, want tripped", fastBreaker().Threshold, got)
	}

	// Tripped: the fast-fail path, typed, with a retry hint.
	_, err = r.Acquire("m")
	if !errors.Is(err, ErrTripped) {
		t.Fatalf("want ErrTripped, got %v", err)
	}
	var te *TrippedError
	if !errors.As(err, &te) {
		t.Fatalf("want *TrippedError in chain, got %v", err)
	}
	if te.RetryAfter() < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s floor", te.RetryAfter())
	}
	if info := r.List()[0]; info.RetryAt == "" || info.LastError == "" {
		t.Fatalf("tripped listing lacks retry_at/last_error: %+v", info)
	}

	// Heal the artifact, wait out the trip window: the half-open probe
	// succeeds and closes the breaker.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		h, err := r.Acquire("m")
		if err == nil {
			h.Release()
			break
		}
		if !errors.Is(err, ErrTripped) {
			t.Fatalf("probe failed with %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := r.List()[0].Health; got != "ok" {
		t.Fatalf("health after recovery = %q, want ok", got)
	}
}

// TestBreakerTripsOnPanics checks engine panics count toward the breaker:
// with every window panicking, consecutive predicts trip the model and the
// next predict fails fast with ErrTripped (503 at the HTTP layer).
func TestBreakerTripsOnPanics(t *testing.T) {
	dir := zooDir(t, "m@1")
	r := New(Options{
		Serve:   serve.Options{MaxBatch: 8, Seed: 1, Chaos: serve.ChaosOptions{PanicEvery: 1}},
		Breaker: fastBreaker(),
	})
	defer r.Close()
	if _, err := r.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fastBreaker().Threshold; i++ {
		if _, err := r.Predict("m", []int{0}); !errors.Is(err, serve.ErrModelPanic) {
			t.Fatalf("predict %d: want ErrModelPanic, got %v", i, err)
		}
	}
	if _, err := r.Predict("m", []int{0}); !errors.Is(err, ErrTripped) {
		t.Fatalf("want ErrTripped after %d panics, got %v", fastBreaker().Threshold, err)
	}
	if rd := r.Readiness(); rd.Ready || rd.Tripped != 1 {
		t.Fatalf("readiness with sole model tripped = %+v, want not ready", rd)
	}
}

// TestLenientScanQuarantine pins the self-healing startup: strict LoadDir
// fails on the corrupt zoo member with the typed checkpoint cause, lenient
// LoadDir quarantines it with the right reason and serves the rest.
func TestLenientScanQuarantine(t *testing.T) {
	dir := zooDir(t, "good@1")
	if err := os.WriteFile(filepath.Join(dir, "bad@1.ckpt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	strict := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}})
	defer strict.Close()
	if _, err := strict.LoadDir(dir); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("strict scan: want checkpoint.ErrCorrupt, got %v", err)
	}

	// Two more refusal classes: a bad version stem ("invalid") and a
	// dangling symlink ("unreadable").
	if err := os.WriteFile(filepath.Join(dir, "weird@x.ckpt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink(filepath.Join(dir, "gone"), filepath.Join(dir, "link@1.ckpt")); err != nil {
		t.Fatal(err)
	}

	lenient := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}, LenientScan: true})
	defer lenient.Close()
	infos, err := lenient.LoadDir(dir)
	if err != nil {
		t.Fatalf("lenient scan: %v", err)
	}
	if len(infos) != 1 || infos[0].Name != "good" {
		t.Fatalf("lenient scan registered %+v, want only good@1", infos)
	}
	reasons := map[string]string{}
	for _, q := range lenient.Quarantined() {
		if q.Error == "" {
			t.Fatalf("quarantine entry without error text: %+v", q)
		}
		reasons[filepath.Base(q.Path)] = q.Reason
	}
	want := map[string]string{"bad@1.ckpt": "corrupt", "weird@x.ckpt": "invalid", "link@1.ckpt": "unreadable"}
	for base, reason := range want {
		if reasons[base] != reason {
			t.Errorf("quarantine reason for %s = %q, want %q (all: %v)", base, reasons[base], reason, reasons)
		}
	}
	if preds, err := lenient.Predict("good", []int{0}); err != nil || len(preds) != 1 {
		t.Fatalf("surviving model must serve: %v", err)
	}
}

// TestLoadDirEmptyVsIOError pins the error split: a readable-but-empty
// directory is ErrNoArtifacts, a missing directory surfaces the os error and
// is NOT ErrNoArtifacts.
func TestLoadDirEmptyVsIOError(t *testing.T) {
	r := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}})
	defer r.Close()
	if _, err := r.LoadDir(t.TempDir()); !errors.Is(err, ErrNoArtifacts) {
		t.Fatalf("empty dir: want ErrNoArtifacts, got %v", err)
	}
	_, err := r.LoadDir(filepath.Join(t.TempDir(), "nope"))
	if err == nil || errors.Is(err, ErrNoArtifacts) {
		t.Fatalf("missing dir must be an I/O error, not ErrNoArtifacts: %v", err)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing dir: want os.ErrNotExist in chain, got %v", err)
	}
}

// TestAddFileTypedCorrupt pins the typed-cause contract of AddFile: corrupt
// bytes are errors.Is-able as checkpoint.ErrCorrupt, a missing file is not.
func TestAddFileTypedCorrupt(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad@1.ckpt")
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}})
	defer r.Close()
	if _, err := r.AddFile(bad); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("corrupt artifact: want checkpoint.ErrCorrupt, got %v", err)
	}
	_, err := r.AddFile(filepath.Join(dir, "missing@1.ckpt"))
	if err == nil || errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("missing artifact must not read as corrupt: %v", err)
	}
}

// TestReadyzAndHealthzReadiness pins the liveness/readiness split over HTTP:
// /v1/healthz always answers 200 (liveness), /v1/readyz answers 200 only
// while something can serve and 503 with the readiness body once nothing
// can.
func TestReadyzAndHealthzReadiness(t *testing.T) {
	// An empty registry is alive but not ready.
	empty := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}})
	tse := httptest.NewServer(empty.Handler())
	defer func() { tse.Close(); empty.Close() }()
	if status, _, body := get(t, tse.URL+"/v1/healthz"); status != 200 || body["ready"] != false {
		t.Fatalf("empty healthz = %d %v, want 200 with ready=false", status, body)
	}
	if status, _, body := get(t, tse.URL+"/v1/readyz"); status != 503 || body["ready"] != false {
		t.Fatalf("empty readyz = %d %v, want 503 with ready=false", status, body)
	}

	// A populated registry is ready, and healthz carries the summary.
	_, ts := zooServer(t, Options{DefaultModel: "base"})
	status, _, body := get(t, ts.URL+"/v1/readyz")
	if status != 200 || body["ready"] != true {
		t.Fatalf("readyz = %d %v, want 200 ready", status, body)
	}
	status, _, body = get(t, ts.URL+"/v1/healthz")
	if status != 200 || body["status"] != "ok" || body["ready"] != true {
		t.Fatalf("healthz = %d %v, want 200 ok+ready", status, body)
	}
	for _, key := range []string{"models", "versions", "loaded", "tripped", "quarantined"} {
		if _, ok := body[key]; !ok {
			t.Errorf("healthz missing %q: %v", key, body)
		}
	}
}
