package registry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// saveGCN writes one GCN artifact (the message-passing engine whose sharded
// windows halo-exchange at serving time) into a fresh zoo dir.
func saveGCN(t *testing.T, name string) string {
	t.Helper()
	dir := t.TempDir()
	saveCkpt(t, dir, name+".ckpt", makeCkpt(t, "GCN", 3, 100))
	return dir
}

// TestTracePropagatesHandlerToShardExchange pins the tentpole tracing
// contract: one trace ID, supplied by the HTTP caller, must annotate every
// stage of a sharded predict — the per-request serving span, the batcher's
// window span, and the halo-exchange spans of the sharded engine the window
// runs on. If any layer dropped or re-minted the ID, the request could not
// be followed across the stack.
func TestTracePropagatesHandlerToShardExchange(t *testing.T) {
	dir := saveGCN(t, "m@1")
	reg := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}, Shards: 2})
	defer reg.Close()
	if _, err := reg.LoadDir(dir); err != nil {
		t.Fatal(err)
	}

	tr := telemetry.DefaultTracer()
	tr.Reset()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	const wire = "00000000000000ab"
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/models/m/predict?nodes=0,5,11", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.TraceHeader, wire)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(telemetry.TraceHeader); got != wire {
		t.Fatalf("trace header echoed as %q, want %q", got, wire)
	}

	id, ok := telemetry.ParseTraceID(wire)
	if !ok {
		t.Fatalf("test trace id %q does not parse", wire)
	}
	stages := map[string]bool{}
	for _, ev := range tr.Events() {
		if ev.Trace == id {
			stages[ev.Name] = true
		}
	}
	for _, want := range []string{"serve.request", "serve.window", "shard.exchange"} {
		if !stages[want] {
			t.Errorf("no %s span carries trace %s (stages seen: %v)", want, wire, stages)
		}
	}
}

// TestMetricsEndpointFamilies covers the registry's scrape route: after one
// served request, GET /v1/metrics must answer a structurally valid
// Prometheus exposition containing the serving- and registry-layer families.
func TestMetricsEndpointFamilies(t *testing.T) {
	dir := zooDir(t, "m@1")
	reg := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}})
	defer reg.Close()
	if _, err := reg.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	if resp, err := srv.Client().Get(srv.URL + "/v1/models/m/predict?node=0"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %d", resp.StatusCode)
		}
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/v1/metrics content type %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.CheckExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, fam := range []string{
		"adafgl_serve_requests_total",
		"adafgl_serve_request_latency_seconds",
		"adafgl_registry_predicts_total",
		"adafgl_registry_cold_starts_total",
		"adafgl_registry_breaker_trips_total",
	} {
		if !telemetry.HasFamily(body, fam) {
			t.Errorf("exposition missing family %s", fam)
		}
	}
}
