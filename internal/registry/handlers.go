package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// legacyRefKey carries the default-model reference into handlers reached
// through a deprecated flat alias (no {model} path segment).
type legacyRefKey struct{}

// legacy wraps a v1 handler as a deprecated flat alias: the default model is
// resolved, Deprecation and Link (successor-version) headers are stamped,
// and the reference travels to the handler via the request context.
func (r *Registry) legacy(successorSuffix string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		ref, err := r.DefaultRef()
		if err != nil {
			serve.WriteError(w, statusFor(err), "registry.default", err)
			return
		}
		w.Header().Set("Deprecation", "true")
		successor := "/v1/healthz"
		if successorSuffix != "" {
			successor = fmt.Sprintf("/v1/models/%s%s", ref, successorSuffix)
		}
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		next(w, req.WithContext(context.WithValue(req.Context(), legacyRefKey{}, ref)))
	}
}

// modelRef extracts the model reference of a request: the {model} path
// segment on v1 routes, the default model on legacy aliases.
func modelRef(req *http.Request) string {
	if ref := req.PathValue("model"); ref != "" {
		return ref
	}
	ref, _ := req.Context().Value(legacyRefKey{}).(string)
	return ref
}

// statusFor maps registry and serving errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrInUse):
		return http.StatusConflict
	case errors.Is(err, ErrTripped), errors.Is(err, serve.ErrOverloaded),
		errors.Is(err, ErrRegistryClosed), errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, serve.ErrModelPanic):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// requireMethod writes the envelope 405 unless the request uses one of the
// allowed methods.
func requireMethod(w http.ResponseWriter, req *http.Request, op string, methods ...string) bool {
	for _, m := range methods {
		if req.Method == m {
			return true
		}
	}
	serve.WriteError(w, http.StatusMethodNotAllowed, op,
		fmt.Errorf("registry: %s: method %s not allowed", op, req.Method))
	return false
}

// handleList answers GET /v1/models with every artifact's metadata — health
// state included — plus the artifacts a lenient scan quarantined.
func (r *Registry) handleList(w http.ResponseWriter, req *http.Request) {
	if !requireMethod(w, req, "registry.models", http.MethodGet) {
		return
	}
	body := map[string]any{"models": r.List()}
	if q := r.Quarantined(); len(q) > 0 {
		body["quarantined"] = q
	}
	serve.WriteJSON(w, http.StatusOK, body)
}

// handlePredict answers single-node and node-set queries on one model,
// routing through the A/B splitter when the target is the control.
func (r *Registry) handlePredict(w http.ResponseWriter, req *http.Request) {
	ref := modelRef(req)
	var nodes []int
	switch req.Method {
	case http.MethodGet:
		var err error
		if nodes, err = serve.ParseNodesQuery(req); err != nil {
			serve.WriteError(w, http.StatusBadRequest, "registry.predict", err)
			return
		}
	case http.MethodPost:
		body, err := serve.DecodePredictBody(w, req)
		if err != nil {
			serve.WriteError(w, http.StatusBadRequest, "registry.predict", err)
			return
		}
		if body.All {
			r.handlePredictAll(w, req)
			return
		}
		nodes = body.Nodes
	default:
		requireMethod(w, req, "registry.predict", http.MethodGet, http.MethodPost)
		return
	}
	preds, err := r.PredictCtx(req.Context(), ref, nodes)
	if err != nil {
		serve.WriteError(w, statusFor(err), "registry.predict", err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, serve.PredictResponse{Predictions: preds})
}

// handlePredictAll answers the full-graph warm path on one model.
func (r *Registry) handlePredictAll(w http.ResponseWriter, req *http.Request) {
	ref := modelRef(req)
	h, err := r.Acquire(ref)
	if err != nil {
		serve.WriteError(w, statusFor(err), "registry.predict", err)
		return
	}
	n := h.Server().Nodes()
	h.Release()
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	preds, err := r.PredictCtx(req.Context(), ref, nodes)
	if err != nil {
		serve.WriteError(w, statusFor(err), "registry.predict", err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, serve.PredictResponse{Predictions: preds})
}

// handleMetrics answers GET /v1/metrics with the process-wide telemetry
// registry in Prometheus text format.
func (r *Registry) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if !requireMethod(w, req, "registry.metrics", http.MethodGet) {
		return
	}
	telemetry.Default().Handler().ServeHTTP(w, req)
}

// handleStats answers GET /v1/models/{model}/stats with the per-version
// counters and the active server's live snapshot.
func (r *Registry) handleStats(w http.ResponseWriter, req *http.Request) {
	if !requireMethod(w, req, "registry.stats", http.MethodGet) {
		return
	}
	name, _, err := ParseRef(modelRef(req))
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, "registry.stats", err)
		return
	}
	st, err := r.Stats(name)
	if err != nil {
		serve.WriteError(w, statusFor(err), "registry.stats", err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, st)
}

// handleModelStatsSnapshot answers the legacy /stats alias with the default
// model's live serve.Snapshot — byte-compatible with the old single-model
// endpoint.
func (r *Registry) handleModelStatsSnapshot(w http.ResponseWriter, req *http.Request) {
	h, err := r.Acquire(modelRef(req))
	if err != nil {
		serve.WriteError(w, statusFor(err), "registry.stats", err)
		return
	}
	defer h.Release()
	serve.WriteJSON(w, http.StatusOK, h.Server().Stats())
}

// swapRequest is the JSON body of POST /v1/models/{model}/swap.
type swapRequest struct {
	Version int `json:"version"`
}

// handleSwap answers POST /v1/models/{model}/swap: zero-downtime activation
// of another registered version.
func (r *Registry) handleSwap(w http.ResponseWriter, req *http.Request) {
	if !requireMethod(w, req, "registry.swap", http.MethodPost) {
		return
	}
	name, _, err := ParseRef(modelRef(req))
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, "registry.swap", err)
		return
	}
	var body swapRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<16)).Decode(&body); err != nil {
		serve.WriteError(w, http.StatusBadRequest, "registry.swap",
			fmt.Errorf("registry: swap: decode request: %w", err))
		return
	}
	prev, err := r.Swap(name, body.Version)
	if err != nil {
		serve.WriteError(w, statusFor(err), "registry.swap", err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, map[string]any{
		"name": name, "from": prev, "to": body.Version,
	})
}

// handleAB answers POST /v1/ab: install, replace or (with an empty config)
// disable the A/B experiment.
func (r *Registry) handleAB(w http.ResponseWriter, req *http.Request) {
	if !requireMethod(w, req, "registry.ab", http.MethodPost) {
		return
	}
	var cfg ABConfig
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<16)).Decode(&cfg); err != nil {
		serve.WriteError(w, http.StatusBadRequest, "registry.ab",
			fmt.Errorf("registry: ab: decode request: %w", err))
		return
	}
	if err := r.ConfigureAB(cfg); err != nil {
		serve.WriteError(w, statusFor(err), "registry.ab", err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, map[string]any{"configured": cfg.Control != "", "config": cfg})
}

// handleABReport answers GET /v1/ab/report with the live per-arm comparison.
func (r *Registry) handleABReport(w http.ResponseWriter, req *http.Request) {
	if !requireMethod(w, req, "registry.ab", http.MethodGet) {
		return
	}
	rep, err := r.ABReportNow()
	if err != nil {
		serve.WriteError(w, statusFor(err), "registry.ab", err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, rep)
}

// handleFleetHealthz answers GET /v1/healthz with fleet-level liveness plus
// the readiness summary. Liveness is unconditional — the process answering
// at all is the signal, so the status is always 200 "ok"; orchestrators that
// should stop routing traffic when nothing can serve use /v1/readyz.
func (r *Registry) handleFleetHealthz(w http.ResponseWriter, req *http.Request) {
	if !requireMethod(w, req, "registry.healthz", http.MethodGet) {
		return
	}
	r.mu.Lock()
	loaded := r.loaded
	r.mu.Unlock()
	rd := r.Readiness()
	serve.WriteJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "models": rd.Models, "versions": rd.Versions, "loaded": loaded,
		"ready": rd.Ready, "tripped": rd.Tripped, "quarantined": rd.Quarantined,
	})
}

// handleReadyz answers GET /v1/readyz with the readiness summary: 200 when
// the fleet can serve a prediction, 503 when it cannot (registry closed,
// nothing registered, or every version tripped). The body is the Readiness
// JSON either way, so probes and operators see why.
func (r *Registry) handleReadyz(w http.ResponseWriter, req *http.Request) {
	if !requireMethod(w, req, "registry.readyz", http.MethodGet) {
		return
	}
	rd := r.Readiness()
	status := http.StatusOK
	if !rd.Ready {
		status = http.StatusServiceUnavailable
	}
	serve.WriteJSON(w, status, rd)
}

// handleHealthz answers the legacy /healthz alias with the old single-model
// shape (status/arch/nodes/classes/decoupled) for the default model, plus
// the resolved model reference.
func (r *Registry) handleHealthz(w http.ResponseWriter, req *http.Request) {
	ref := modelRef(req)
	h, err := r.Acquire(ref)
	if err != nil {
		serve.WriteError(w, statusFor(err), "registry.healthz", err)
		return
	}
	defer h.Release()
	s := h.Server()
	serve.WriteJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"arch":      s.Arch(),
		"nodes":     s.Nodes(),
		"classes":   s.Classes(),
		"decoupled": s.Decoupled(),
		"model":     Ref(h.Name(), h.Version()),
	})
}
