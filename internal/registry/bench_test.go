package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// BenchmarkZooRouting prices the registry's routing layer: 64 concurrent
// single-node queries answered by a directly held serve.Server (path=direct,
// the baseline benchjson divides by) versus the same queries routed through
// Registry.Predict with its acquire/stats/A-B machinery (path=routed), with
// and without an active A/B split. ns/op covers one full 64-query wave; the
// routed/direct ratio is the fleet-routing overhead the zoo experiment
// asserts stays under 10%.
func BenchmarkZooRouting(b *testing.B) {
	const conc = 64
	dir := zooDir(b, "base@1", "ada@1")
	opt := Options{Serve: serve.Options{MaxBatch: conc, MaxWait: 2 * time.Millisecond, Seed: 1}}

	wave := func(b *testing.B, predict func(q int) error) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for q := 0; q < conc; q++ {
				wg.Add(1)
				go func(q int) {
					defer wg.Done()
					if err := predict(q); err != nil {
						b.Error(err)
					}
				}(q)
			}
			wg.Wait()
		}
		b.StopTimer()
		if el := b.Elapsed().Seconds(); el > 0 {
			b.ReportMetric(float64(conc*b.N)/el, "queries/s")
		}
	}

	for _, mode := range []struct {
		path string
		ab   bool
	}{
		{"direct", false},
		{"routed", false},
		{"routed-ab", true},
	} {
		b.Run(fmt.Sprintf("conc=%d/path=%s", conc, mode.path), func(b *testing.B) {
			r := New(opt)
			defer r.Close()
			if _, err := r.LoadDir(dir); err != nil {
				b.Fatal(err)
			}
			if mode.ab {
				if err := r.ConfigureAB(ABConfig{Control: "base", Candidate: "ada", Fraction: 0.5}); err != nil {
					b.Fatal(err)
				}
			}
			h, err := r.Acquire("base")
			if err != nil {
				b.Fatal(err)
			}
			defer h.Release()
			nodes := h.Server().Nodes()
			if mode.path == "direct" {
				srv := h.Server()
				wave(b, func(q int) error {
					_, err := srv.Predict([]int{(q * 17) % nodes})
					return err
				})
				return
			}
			wave(b, func(q int) error {
				_, err := r.Predict("base", []int{(q * 17) % nodes})
				return err
			})
		})
	}
}
