package registry

import (
	"testing"

	"repro/internal/serve"
	"repro/internal/shard"
)

// TestShardedRegistryBitIdentical covers Options.Shards: a registry told to
// serve shard-aware must answer every model exactly as the plain registry —
// the routing layer above cannot tell the two apart.
func TestShardedRegistryBitIdentical(t *testing.T) {
	dir := zooDir(t, "m@1")

	plain := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}})
	defer plain.Close()
	sharded := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}, Shards: 2})
	defer sharded.Close()
	for _, r := range []*Registry{plain, sharded} {
		if _, err := r.LoadDir(dir); err != nil {
			t.Fatal(err)
		}
	}

	// The sharded registry really is serving through the shard router.
	h, err := sharded.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Server().(*shard.Server); !ok {
		t.Fatalf("sharded registry serves a %T, want *shard.Server", h.Server())
	}
	h.Release()

	nodes := []int{0, 5, 11, 2, 40, 7}
	a, err := plain.Predict("m", nodes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sharded.Predict("m", nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("prediction counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Class != b[i].Class {
			t.Fatalf("query %d: plain (%d,%d) vs sharded (%d,%d)",
				i, a[i].Node, a[i].Class, b[i].Node, b[i].Class)
		}
		for j := range a[i].Logits {
			if a[i].Logits[j] != b[i].Logits[j] {
				t.Fatalf("query %d logit %d differs between plain and sharded registry", i, j)
			}
		}
	}

	// Stats flow through the sharded Predictor too.
	st, err := sharded.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.Server == nil || st.Server.Requests == 0 {
		t.Fatalf("sharded stats = %+v", st.Server)
	}
}
