// Package registry turns the single-model serving layer into a fleet: it
// indexes many checkpoint artifacts by name@version (directory scan or
// explicit add, metadata from the cheap checkpoint.Peek header), lazily
// starts one serve.Server per model under an LRU bound, and hands out
// refcounted acquire handles so a checkpoint swap is zero-downtime —
// in-flight batch windows finish on the old model while new requests route
// to the new one, and a retired server is drained, never killed. On top of
// the registry sits the versioned v1 HTTP API (GET /v1/models,
// /v1/models/{name}/predict|stats|swap, the /v1/ab A/B splitter) plus thin
// deprecated aliases for the flat single-model routes, so the paper's
// baseline-vs-AdaFGL comparison runs live behind one port.
package registry

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/serve"
	"repro/internal/shard"
)

// DefaultMaxLoaded is the LRU bound on concurrently started servers used
// when Options.MaxLoaded is 0.
const DefaultMaxLoaded = 4

// ErrNotFound marks lookups of unknown models or versions; the HTTP layer
// maps it to 404. Test with errors.Is.
var ErrNotFound = errors.New("model not found")

// ErrInUse marks mutations rejected because a model is acquired or active;
// the HTTP layer maps it to 409. Test with errors.Is.
var ErrInUse = errors.New("model in use")

// ErrRegistryClosed is the failure every call sinks to once the registry has
// been closed; the HTTP layer maps it to 503. Test with errors.Is.
var ErrRegistryClosed = errors.New("registry closed")

// ErrNoArtifacts marks a LoadDir of a readable directory that simply holds
// no *.ckpt files — distinct from I/O failures (unreadable directory), which
// surface the underlying os error instead. Test with errors.Is.
var ErrNoArtifacts = errors.New("no checkpoint artifacts")

// Options configures a Registry.
type Options struct {
	// Serve is the template batching configuration applied to every
	// per-model server the registry starts (Seed included).
	Serve serve.Options
	// MaxLoaded bounds how many per-model servers may be started at once;
	// the least-recently-used unacquired server is drained to make room.
	// Acquired servers are never evicted, even if that means temporarily
	// exceeding the bound. 0 selects DefaultMaxLoaded.
	MaxLoaded int
	// DefaultModel names the model ("name" or "name@version") answering the
	// legacy flat routes (/predict, /healthz, /stats). Empty defaults to the
	// sole registered model name, erroring when the zoo holds several.
	DefaultModel string
	// Breaker configures the per-model circuit breaker; the zero value
	// selects the package defaults (trip after DefaultBreakerThreshold
	// consecutive failures, exponential backoff from DefaultBreakerBackoff).
	Breaker BreakerOptions
	// LenientScan makes LoadDir quarantine unreadable or corrupt artifacts —
	// recording path and reason, see Quarantined — instead of failing the
	// whole scan. This is the self-healing startup mode of adafgl-serve: one
	// bad file in the zoo directory must not keep every good model offline.
	LenientScan bool
	// Shards, when > 1, serves every model shard-aware: each started
	// instance is a shard.NewServer fleet instead of a single-process
	// serve.Server. Predictions are unchanged (bit-identical for decoupled
	// architectures); only the memory/throughput scaling profile differs.
	// 0 or 1 serves unsharded.
	Shards int
}

// Registry is a concurrent, versioned index of checkpoint artifacts with
// lazily started, LRU-bounded, refcount-guarded serving instances. All
// methods are safe for concurrent use. Create with New, release with Close.
type Registry struct {
	mu     sync.Mutex
	opt    Options
	models map[string]*model
	loaded int    // started servers
	tick   uint64 // LRU clock
	// coldStarts counts successful server boots; concurrent acquires of one
	// loading entry must dedupe to a single boot, so tests pin this.
	coldStarts int
	closed     bool
	ab         *abState

	// breaker holds the defaults-resolved circuit-breaker parameters; rng is
	// its seeded jitter stream (guarded by mu). quarantined records the
	// artifacts a lenient LoadDir refused to register.
	breaker     BreakerOptions
	rng         *rand.Rand
	quarantined []QuarantinedArtifact
}

// model is one named line of versions with a single active one.
type model struct {
	name     string
	active   int
	versions map[int]*entry
}

// entry is one name@version artifact: its on-disk path, peeked header, and
// (once started) serving instance with refcount and LRU stamp.
type entry struct {
	name    string
	version int
	path    string
	hdr     *checkpoint.Header

	srv     serve.Predictor
	loading chan struct{} // non-nil while a goroutine starts the server
	refs    int
	last    uint64 // LRU tick of the most recent acquire
	stats   modelStats

	// Circuit-breaker state, guarded by Registry.mu: health is the exposed
	// state, failures the consecutive breaker-relevant failure run, trips the
	// consecutive trip count driving the exponential backoff, retryAt when an
	// open trip window lapses, lastErr the failure that opened it.
	health   HealthState
	failures int
	trips    int
	retryAt  time.Time
	lastErr  error
}

// ref formats the entry's name@version key.
func (e *entry) ref() string { return Ref(e.name, e.version) }

// Ref formats a name and version as the canonical "name@version" key.
func Ref(name string, version int) string { return fmt.Sprintf("%s@%d", name, version) }

// ParseRef splits a model reference "name" or "name@version" into its parts;
// version 0 means "the active version". Names must be non-empty and free of
// '/', '@' and whitespace so they can live in URL paths and filenames.
func ParseRef(ref string) (name string, version int, err error) {
	name = ref
	if i := strings.IndexByte(ref, '@'); i >= 0 {
		name = ref[:i]
		version, err = strconv.Atoi(ref[i+1:])
		if err != nil || version < 1 {
			return "", 0, fmt.Errorf("registry: ParseRef: bad version in %q", ref)
		}
	}
	if err := checkName(name); err != nil {
		return "", 0, err
	}
	return name, version, nil
}

// checkName validates a bare model name.
func checkName(name string) error {
	if name == "" || strings.ContainsAny(name, "/@ \t\n") {
		return fmt.Errorf("registry: bad model name %q", name)
	}
	return nil
}

// ModelInfo is the listing metadata of one registered artifact, drawn from
// the peeked checkpoint header plus the registry's runtime state.
type ModelInfo struct {
	// Name and Version key the artifact in the registry.
	Name    string `json:"name"`
	Version int    `json:"version"`
	// Active reports whether this version answers requests addressed to the
	// bare name.
	Active bool `json:"active"`
	// Loaded reports whether a serving instance is currently started.
	Loaded bool `json:"loaded"`
	// Arch is the checkpointed architecture's registry name.
	Arch string `json:"arch"`
	// Nodes and Classes are the serving graph's dimensions.
	Nodes   int `json:"nodes"`
	Classes int `json:"classes"`
	// Params is the length of the flattened parameter vector.
	Params int `json:"params"`
	// HasAdj reports whether the artifact embeds the normalised adjacency.
	HasAdj bool `json:"cached_adj"`
	// Bytes is the artifact's file size.
	Bytes int64 `json:"bytes"`
	// Path is the artifact's location on disk.
	Path string `json:"path"`
	// Health is the circuit-breaker state: "ok", "degraded" or "tripped".
	Health string `json:"health"`
	// LastError is the most recent breaker-relevant failure; empty while
	// healthy.
	LastError string `json:"last_error,omitempty"`
	// RetryAt is when a tripped model's backoff window lapses (RFC 3339);
	// empty unless tripped.
	RetryAt string `json:"retry_at,omitempty"`
}

// New creates an empty registry.
func New(opt Options) *Registry {
	if opt.MaxLoaded <= 0 {
		opt.MaxLoaded = DefaultMaxLoaded
	}
	return &Registry{
		opt: opt, models: make(map[string]*model),
		breaker: opt.Breaker.withDefaults(),
		rng:     breakerRNG(opt.Breaker.Seed),
	}
}

// Add registers the checkpoint at path as name@version, peeking its header
// for listing metadata without loading the model. The first version added
// under a name becomes its active version. Duplicate versions are rejected.
func (r *Registry) Add(name string, version int, path string) (ModelInfo, error) {
	if err := checkName(name); err != nil {
		return ModelInfo{}, fmt.Errorf("registry: Add: %w", err)
	}
	if version < 1 {
		return ModelInfo{}, fmt.Errorf("registry: Add: version %d < 1", version)
	}
	hdr, err := checkpoint.Peek(path)
	if err != nil {
		return ModelInfo{}, fmt.Errorf("registry: Add: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ModelInfo{}, fmt.Errorf("registry: Add: %w", ErrRegistryClosed)
	}
	m := r.models[name]
	if m == nil {
		m = &model{name: name, active: version, versions: make(map[int]*entry)}
		r.models[name] = m
	}
	if _, ok := m.versions[version]; ok {
		return ModelInfo{}, fmt.Errorf("registry: Add: duplicate version %s", Ref(name, version))
	}
	e := &entry{name: name, version: version, path: path, hdr: hdr}
	m.versions[version] = e
	return r.infoLocked(m, e), nil
}

// AddFile registers path under the name and version encoded in its file
// stem: "name@3.ckpt" is version 3 of "name", a stem with no '@' is
// version 1.
func (r *Registry) AddFile(path string) (ModelInfo, error) {
	stem := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	name, version, err := ParseRef(stem)
	if err != nil {
		return ModelInfo{}, fmt.Errorf("registry: AddFile: %w", err)
	}
	if version == 0 {
		version = 1
	}
	return r.Add(name, version, path)
}

// QuarantinedArtifact records one zoo file a lenient LoadDir refused to
// register, with the reason (corrupt bytes, unreadable file, bad name), so
// operators can see what is missing from the listing and why.
type QuarantinedArtifact struct {
	// Path is the refused artifact's location on disk.
	Path string `json:"path"`
	// Reason classifies the refusal: "corrupt" for artifacts whose bytes
	// fail checkpoint validation, "unreadable" for filesystem failures,
	// "invalid" for bad names or versions.
	Reason string `json:"reason"`
	// Error is the full named-op failure text.
	Error string `json:"error"`
}

// LoadDir scans dir for *.ckpt artifacts and registers each via AddFile, in
// sorted filename order so version lines build deterministically. It returns
// the infos of everything added. A readable directory holding no *.ckpt
// files fails with ErrNoArtifacts — distinct, via errors.Is, from an
// unreadable directory, which surfaces the underlying os error. In strict
// mode (the default) the first bad artifact fails the whole scan; with
// Options.LenientScan bad artifacts are quarantined (see Quarantined) and
// the scan registers everything else — the self-healing startup of
// adafgl-serve.
func (r *Registry) LoadDir(dir string) ([]ModelInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("registry: LoadDir: %w", err)
	}
	var names []string
	for _, de := range entries {
		if !de.IsDir() && filepath.Ext(de.Name()) == ".ckpt" {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("registry: LoadDir: %s holds no *.ckpt files: %w", dir, ErrNoArtifacts)
	}
	infos := make([]ModelInfo, 0, len(names))
	for _, n := range names {
		path := filepath.Join(dir, n)
		info, err := r.AddFile(path)
		if err != nil {
			if !r.opt.LenientScan {
				return nil, fmt.Errorf("registry: LoadDir: %s: %w", n, err)
			}
			r.mu.Lock()
			r.quarantined = append(r.quarantined, QuarantinedArtifact{
				Path: path, Reason: quarantineReason(err), Error: err.Error(),
			})
			r.mu.Unlock()
			continue
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// quarantineReason classifies a refused artifact's failure for its
// quarantine record.
func quarantineReason(err error) string {
	switch {
	case errors.Is(err, checkpoint.ErrCorrupt):
		return "corrupt"
	case errors.Is(err, os.ErrNotExist), errors.Is(err, os.ErrPermission):
		return "unreadable"
	}
	var pathErr *os.PathError
	if errors.As(err, &pathErr) {
		return "unreadable"
	}
	return "invalid"
}

// Quarantined returns the artifacts a lenient LoadDir refused to register,
// in scan order.
func (r *Registry) Quarantined() []QuarantinedArtifact {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]QuarantinedArtifact(nil), r.quarantined...)
}

// infoLocked assembles the ModelInfo of e; r.mu must be held.
func (r *Registry) infoLocked(m *model, e *entry) ModelInfo {
	info := ModelInfo{
		Name: e.name, Version: e.version,
		Active: m.active == e.version, Loaded: e.srv != nil,
		Arch: e.hdr.Arch, Nodes: e.hdr.Nodes, Classes: e.hdr.Classes,
		Params: e.hdr.Params, HasAdj: e.hdr.HasAdj, Bytes: e.hdr.Bytes,
		Path: e.path, Health: e.health.String(),
	}
	if e.lastErr != nil {
		info.LastError = e.lastErr.Error()
	}
	if e.health == HealthTripped {
		info.RetryAt = e.retryAt.Format(time.RFC3339Nano)
	}
	return info
}

// List returns every registered artifact's metadata, sorted by name then
// version.
func (r *Registry) List() []ModelInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []ModelInfo
	for _, m := range r.models {
		for _, e := range m.versions {
			out = append(out, r.infoLocked(m, e))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// DefaultRef resolves the model reference answering the legacy flat routes:
// Options.DefaultModel when set, otherwise the sole registered name.
func (r *Registry) DefaultRef() (string, error) {
	if r.opt.DefaultModel != "" {
		return r.opt.DefaultModel, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.models) == 1 {
		for name := range r.models {
			return name, nil
		}
	}
	return "", fmt.Errorf("registry: DefaultRef: %d models registered and no -default-model configured: %w",
		len(r.models), ErrNotFound)
}

// resolveLocked finds the entry for name@version (version 0 = active);
// r.mu must be held.
func (r *Registry) resolveLocked(name string, version int) (*model, *entry, error) {
	m := r.models[name]
	if m == nil {
		return nil, nil, fmt.Errorf("registry: unknown model %q: %w", name, ErrNotFound)
	}
	v := version
	if v == 0 {
		v = m.active
	}
	e := m.versions[v]
	if e == nil {
		return nil, nil, fmt.Errorf("registry: model %s has no version %d: %w", name, v, ErrNotFound)
	}
	return m, e, nil
}

// Handle is one acquired lease on a serving instance. The server is
// guaranteed started and never evicted or drained while the handle is held.
// Release it promptly — swaps retire old servers only after their last
// handle is gone.
type Handle struct {
	r    *Registry
	e    *entry
	srv  serve.Predictor // pinned at acquire: stays valid across Close/evict
	once sync.Once
}

// Server returns the leased serving instance.
func (h *Handle) Server() serve.Predictor { return h.srv }

// Name returns the leased model's name.
func (h *Handle) Name() string { return h.e.name }

// Version returns the leased model's version.
func (h *Handle) Version() int { return h.e.version }

// Release returns the lease. Idempotent.
func (h *Handle) Release() {
	h.once.Do(func() {
		h.r.mu.Lock()
		h.e.refs--
		h.r.mu.Unlock()
	})
}

// Acquire leases the serving instance for ref ("name" resolves to the active
// version, "name@version" pins one), starting it first if needed — possibly
// draining the least-recently-used idle server to stay within MaxLoaded.
// Concurrent acquires of a loading model wait for the one load.
func (r *Registry) Acquire(ref string) (*Handle, error) {
	name, version, err := ParseRef(ref)
	if err != nil {
		return nil, fmt.Errorf("registry: Acquire: %w", err)
	}
	return r.acquire(name, version)
}

// acquire implements Acquire for a parsed reference.
func (r *Registry) acquire(name string, version int) (*Handle, error) {
	r.mu.Lock()
	for {
		if r.closed {
			r.mu.Unlock()
			return nil, fmt.Errorf("registry: Acquire: %w", ErrRegistryClosed)
		}
		_, e, err := r.resolveLocked(name, version)
		if err != nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("registry: Acquire: %w", err)
		}
		// Circuit breaker: inside an open trip window the acquire fails fast
		// with the typed TrippedError (503 + Retry-After at the HTTP layer);
		// once the window lapsed this falls through as the half-open probe.
		if err := r.tripCheckLocked(e); err != nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("registry: Acquire: %w", err)
		}
		if e.srv != nil {
			e.refs++
			r.tick++
			e.last = r.tick
			h := &Handle{r: r, e: e, srv: e.srv}
			r.mu.Unlock()
			return h, nil
		}
		if e.loading != nil {
			// Another goroutine is starting this server: wait off-lock for
			// it to finish, then re-resolve (the entry may have been removed
			// or the load may have failed).
			ch := e.loading
			r.mu.Unlock()
			<-ch
			r.mu.Lock()
			continue
		}
		// This goroutine starts the server. Mark the entry loading, pick
		// eviction victims under the lock, then do all slow work (draining
		// victims, loading the checkpoint) outside it.
		e.loading = make(chan struct{})
		victims := r.evictLocked()
		r.mu.Unlock()

		for _, v := range victims {
			v.Drain()
		}
		srv, err := r.start(e.path)

		r.mu.Lock()
		close(e.loading)
		e.loading = nil
		if err == nil && r.closed {
			// The registry shut down while this server was loading; it was
			// not in Close's drain set, so retire it here.
			r.mu.Unlock()
			srv.Drain()
			return nil, fmt.Errorf("registry: Acquire: %w", ErrRegistryClosed)
		}
		if err != nil {
			// A failed load (unreadable file, corrupt bytes, rebuild error)
			// counts toward tripping the model's breaker.
			r.recordFailureLocked(e, err)
			r.mu.Unlock()
			return nil, fmt.Errorf("registry: Acquire: %s: %w", e.ref(), err)
		}
		r.recordSuccessLocked(e)
		e.srv = srv
		r.loaded++
		r.coldStarts++
		telColdStarts.Inc()
		e.refs++
		r.tick++
		e.last = r.tick
		r.mu.Unlock()
		return &Handle{r: r, e: e, srv: srv}, nil
	}
}

// start loads the checkpoint at path and boots its serving instance —
// single-process by default, a sharded fleet when Options.Shards asks for
// one.
func (r *Registry) start(path string) (serve.Predictor, error) {
	ck, err := checkpoint.Load(path)
	if err != nil {
		return nil, err
	}
	if r.opt.Shards > 1 {
		return shard.NewServer(ck, r.opt.Shards, r.opt.Serve)
	}
	return serve.New(ck, r.opt.Serve)
}

// evictLocked picks started, unacquired, non-loading entries — least
// recently used first — until one more server fits within MaxLoaded,
// detaches their serving instances and returns them for the caller to drain
// outside the lock. Acquired servers are never evicted; when everything is
// acquired the bound is exceeded rather than failing the acquire.
func (r *Registry) evictLocked() []serve.Predictor {
	var victims []serve.Predictor
	for r.loaded+1 > r.opt.MaxLoaded {
		var lru *entry
		for _, m := range r.models {
			for _, e := range m.versions {
				if e.srv == nil || e.refs > 0 || e.loading != nil {
					continue
				}
				if lru == nil || e.last < lru.last {
					lru = e
				}
			}
		}
		if lru == nil {
			break // everything started is acquired: exceed the bound
		}
		victims = append(victims, lru.srv)
		lru.srv = nil
		r.loaded--
		telEvictions.Inc()
	}
	return victims
}

// Swap atomically makes version the active one for name, pre-starting its
// serving instance so the flip is zero-downtime: requests that already
// acquired the old version finish on it (their handles pin the old server),
// while every acquire after Swap returns routes to the new version. The old
// server stays warm for pinned acquires until the LRU reclaims it. Returns
// the previously active version.
func (r *Registry) Swap(name string, version int) (int, error) {
	if err := checkName(name); err != nil {
		return 0, fmt.Errorf("registry: Swap: %w", err)
	}
	if version < 1 {
		return 0, fmt.Errorf("registry: Swap: version %d < 1", version)
	}
	// Pre-start the incoming server while the outgoing one keeps serving;
	// the temporary handle also pins it against LRU eviction mid-swap.
	h, err := r.acquire(name, version)
	if err != nil {
		return 0, fmt.Errorf("registry: Swap: %w", err)
	}
	defer h.Release()
	r.mu.Lock()
	defer r.mu.Unlock()
	m, _, err := r.resolveLocked(name, version)
	if err != nil {
		return 0, fmt.Errorf("registry: Swap: %w", err)
	}
	prev := m.active
	m.active = version
	telSwaps.Inc()
	return prev, nil
}

// Remove deregisters name@version and drains its serving instance if
// started. The active version and acquired versions are protected: removing
// them fails with ErrInUse (swap away first).
func (r *Registry) Remove(name string, version int) error {
	r.mu.Lock()
	m, e, err := r.resolveLocked(name, version)
	if err != nil {
		r.mu.Unlock()
		return fmt.Errorf("registry: Remove: %w", err)
	}
	if m.active == e.version && len(m.versions) > 1 {
		r.mu.Unlock()
		return fmt.Errorf("registry: Remove: %s is the active version: %w", e.ref(), ErrInUse)
	}
	if e.refs > 0 || e.loading != nil {
		r.mu.Unlock()
		return fmt.Errorf("registry: Remove: %s is acquired: %w", e.ref(), ErrInUse)
	}
	srv := e.srv
	if srv != nil {
		e.srv = nil
		r.loaded--
	}
	delete(m.versions, version)
	if len(m.versions) == 0 {
		delete(r.models, name)
	}
	r.mu.Unlock()
	if srv != nil {
		srv.Drain()
	}
	return nil
}

// Close drains every started serving instance and fails all future calls.
// In-flight predictions finish; this is the graceful fleet shutdown the
// serve binary runs on SIGTERM.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	var servers []serve.Predictor
	for _, m := range r.models {
		for _, e := range m.versions {
			if e.srv != nil {
				servers = append(servers, e.srv)
				e.srv = nil
				r.loaded--
			}
		}
	}
	r.mu.Unlock()
	for _, s := range servers {
		s.Drain()
	}
}
