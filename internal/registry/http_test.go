package registry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

// zooServer stands up the HTTP surface over a fresh two-model registry.
func zooServer(t *testing.T, opt Options) (*Registry, *httptest.Server) {
	t.Helper()
	dir := zooDir(t, "base@1", "ada@1")
	if opt.Serve.MaxBatch == 0 {
		opt.Serve = serve.Options{MaxBatch: 8, Seed: 1}
	}
	r := New(opt)
	if _, err := r.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(func() { ts.Close(); r.Close() })
	return r, ts
}

// get fetches a URL and returns status, headers and decoded-to-map body.
func get(t *testing.T, url string) (int, http.Header, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var m map[string]any
	if len(body) > 0 {
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("GET %s: non-JSON body %q", url, body)
		}
	}
	return resp.StatusCode, resp.Header, m
}

// postJSON posts a JSON value and returns status and decoded body.
func postJSON(t *testing.T, url string, v any) (int, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(v)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var m map[string]any
	if len(body) > 0 {
		json.Unmarshal(body, &m)
	}
	return resp.StatusCode, m
}

// wantEnvelope asserts a decoded body is the structured error envelope with
// the expected code.
func wantEnvelope(t *testing.T, m map[string]any, code string) {
	t.Helper()
	e, ok := m["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error envelope in %v", m)
	}
	if e["code"] != code {
		t.Fatalf("envelope code = %v, want %s (envelope %v)", e["code"], code, e)
	}
	if e["op"] == "" || e["msg"] == "" {
		t.Fatalf("envelope missing op/msg: %v", e)
	}
}

// TestV1Routes walks the happy paths of the versioned API.
func TestV1Routes(t *testing.T) {
	_, ts := zooServer(t, Options{DefaultModel: "base"})

	// Fleet list with peeked metadata.
	status, _, m := get(t, ts.URL+"/v1/models")
	if status != 200 {
		t.Fatalf("/v1/models status %d", status)
	}
	models, _ := m["models"].([]any)
	if len(models) != 2 {
		t.Fatalf("listed %d models", len(models))
	}
	first, _ := models[0].(map[string]any)
	if first["name"] != "ada" || first["arch"] != "SGC" || first["active"] != true {
		t.Fatalf("first listed model = %v", first)
	}

	// Single-node predict, by name and by pinned version.
	for _, ref := range []string{"base", "base@1"} {
		status, _, m = get(t, ts.URL+"/v1/models/"+ref+"/predict?node=0")
		if status != 200 {
			t.Fatalf("predict %s status %d: %v", ref, status, m)
		}
		if preds, _ := m["predictions"].([]any); len(preds) != 1 {
			t.Fatalf("predict %s returned %v", ref, m)
		}
	}

	// POST body predict.
	status, m = postJSON(t, ts.URL+"/v1/models/base/predict", serve.PredictRequest{Nodes: []int{1, 2}})
	if status != 200 {
		t.Fatalf("POST predict status %d: %v", status, m)
	}
	if preds, _ := m["predictions"].([]any); len(preds) != 2 {
		t.Fatalf("POST predict returned %v", m)
	}

	// Per-model stats carry per-version counters and a live snapshot.
	status, _, m = get(t, ts.URL+"/v1/models/base/stats")
	if status != 200 {
		t.Fatalf("stats status %d", status)
	}
	if m["name"] != "base" || m["active_version"] != float64(1) {
		t.Fatalf("stats payload %v", m)
	}
	versions, _ := m["versions"].(map[string]any)
	v1, _ := versions["1"].(map[string]any)
	if v1["requests"].(float64) < 3 {
		t.Fatalf("stats did not count requests: %v", v1)
	}
	if m["server"] == nil {
		t.Fatal("stats missing live server snapshot")
	}

	// Fleet healthz.
	status, _, m = get(t, ts.URL+"/v1/healthz")
	if status != 200 || m["status"] != "ok" || m["models"] != float64(2) {
		t.Fatalf("fleet healthz %d %v", status, m)
	}
}

// TestV1Errors walks the error surface: every failure is the envelope with
// the mapped status.
func TestV1Errors(t *testing.T) {
	_, ts := zooServer(t, Options{DefaultModel: "base"})

	cases := []struct {
		method, path string
		body         any
		status       int
	}{
		{"GET", "/v1/models/ghost/predict?node=0", nil, 404},      // unknown model
		{"GET", "/v1/models/base@9/predict?node=0", nil, 404},     // unknown version
		{"GET", "/v1/models/base/predict", nil, 400},              // no nodes
		{"GET", "/v1/models/base/predict?node=999999", nil, 400},  // out of range
		{"GET", "/v1/models/bad@name@2/predict?node=0", nil, 400}, // bad ref
		{"POST", "/v1/models/base/swap", map[string]int{"version": 9}, 404},
		{"DELETE", "/v1/models/base/predict?node=0", nil, 405},
		{"POST", "/v1/models", nil, 405},
		{"GET", "/v1/ab/report", nil, 404}, // no experiment configured
		{"POST", "/v1/ab", ABConfig{Control: "base", Candidate: "base", Fraction: 0.5}, 400},
		{"POST", "/v1/ab", ABConfig{Control: "base", Candidate: "ghost", Fraction: 0.5}, 404},
		{"POST", "/v1/ab", ABConfig{Control: "base", Candidate: "ada", Fraction: 1.5}, 400},
	}
	for _, c := range cases {
		var b []byte
		if c.body != nil {
			b, _ = json.Marshal(c.body)
		}
		req, err := http.NewRequest(c.method, ts.URL+c.path, bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s %s: status %d, want %d (%s)", c.method, c.path, resp.StatusCode, c.status, body)
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Errorf("%s %s: non-JSON error body %q", c.method, c.path, body)
			continue
		}
		wantEnvelope(t, m, serve.CodeForStatus(c.status))
	}
}

// TestLegacyAliases keeps the original flat API contract: the README curl
// lines answer exactly as before, now with deprecation headers pointing at
// the v1 successors, and errors use the shared envelope.
func TestLegacyAliases(t *testing.T) {
	_, ts := zooServer(t, Options{DefaultModel: "base"})

	// /predict answers the old shape.
	status, hdr, m := get(t, ts.URL+"/predict?node=0")
	if status != 200 {
		t.Fatalf("/predict status %d: %v", status, m)
	}
	if preds, _ := m["predictions"].([]any); len(preds) != 1 {
		t.Fatalf("/predict body %v", m)
	}
	if hdr.Get("Deprecation") != "true" {
		t.Fatal("/predict missing Deprecation header")
	}
	if link := hdr.Get("Link"); !strings.Contains(link, "/v1/models/base/predict") ||
		!strings.Contains(link, `rel="successor-version"`) {
		t.Fatalf("/predict Link header %q", link)
	}

	// /healthz answers the old single-model shape plus the resolved ref.
	status, hdr, m = get(t, ts.URL+"/healthz")
	if status != 200 || m["status"] != "ok" || m["arch"] != "SGC" || m["model"] != "base@1" {
		t.Fatalf("/healthz %d %v", status, m)
	}
	if hdr.Get("Deprecation") != "true" || !strings.Contains(hdr.Get("Link"), "/v1/healthz") {
		t.Fatalf("/healthz headers %v", hdr)
	}

	// /stats answers the raw live snapshot (old shape: requests/nodes/...).
	status, _, m = get(t, ts.URL+"/stats")
	if status != 200 {
		t.Fatalf("/stats status %d", status)
	}
	if _, ok := m["requests"]; !ok {
		t.Fatalf("/stats body %v is not the legacy snapshot shape", m)
	}

	// Legacy errors still use the envelope.
	status, _, m = get(t, ts.URL+"/predict?node=notanumber")
	if status != 400 {
		t.Fatalf("legacy bad node status %d", status)
	}
	wantEnvelope(t, m, "bad_request")
}

// TestLegacyDefaultAmbiguous: with several models and no configured default,
// the flat aliases answer 404 with the envelope instead of guessing.
func TestLegacyDefaultAmbiguous(t *testing.T) {
	_, ts := zooServer(t, Options{})
	status, _, m := get(t, ts.URL+"/predict?node=0")
	if status != 404 {
		t.Fatalf("ambiguous default status %d: %v", status, m)
	}
	wantEnvelope(t, m, "not_found")
}

// TestABOverHTTP configures an experiment through the API, drives traffic,
// and checks per-arm accounting plus per-node stickiness.
func TestABOverHTTP(t *testing.T) {
	r, ts := zooServer(t, Options{DefaultModel: "base"})

	status, m := postJSON(t, ts.URL+"/v1/ab", ABConfig{Control: "base", Candidate: "ada", Fraction: 0.5, Salt: 7})
	if status != 200 || m["configured"] != true {
		t.Fatalf("configure AB: %d %v", status, m)
	}

	// Route a spread of nodes twice through the control-addressed endpoint;
	// the second pass must hit the same arms (stickiness), and both arms must
	// see traffic at fraction 0.5 over enough nodes.
	nodes := make([]int, 64)
	for i := range nodes {
		nodes[i] = i * 7 % 128
	}
	for pass := 0; pass < 2; pass++ {
		status, m = postJSON(t, ts.URL+"/v1/models/base/predict", serve.PredictRequest{Nodes: nodes})
		if status != 200 {
			t.Fatalf("AB predict pass %d: %d %v", pass, status, m)
		}
		if preds, _ := m["predictions"].([]any); len(preds) != len(nodes) {
			t.Fatalf("AB predict pass %d returned %d predictions", pass, len(preds))
		}
	}

	status, _, m = get(t, ts.URL+"/v1/ab/report")
	if status != 200 {
		t.Fatalf("ab/report status %d", status)
	}
	ctrl, _ := m["control"].(map[string]any)
	cand, _ := m["candidate"].(map[string]any)
	if ctrl["model"] != "base" || cand["model"] != "ada" {
		t.Fatalf("report arms %v / %v", ctrl, cand)
	}
	cs, _ := ctrl["stats"].(map[string]any)
	as, _ := cand["stats"].(map[string]any)
	cfg, _ := r.ABActive()
	wantCand := 0
	for _, n := range nodes {
		if ABRoute(cfg, n) {
			wantCand++
		}
	}
	if wantCand == 0 || wantCand == len(nodes) {
		t.Fatalf("hash split degenerate: %d/%d to candidate", wantCand, len(nodes))
	}
	if got := int(as["nodes"].(float64)); got != 2*wantCand {
		t.Errorf("candidate arm saw %d nodes, want %d (sticky split)", got, 2*wantCand)
	}
	if got := int(cs["nodes"].(float64)); got != 2*(len(nodes)-wantCand) {
		t.Errorf("control arm saw %d nodes, want %d", got, 2*(len(nodes)-wantCand))
	}
	if cs["accuracy"].(float64) <= 0 || as["accuracy"].(float64) <= 0 {
		t.Errorf("arms report zero online accuracy: ctrl %v cand %v", cs["accuracy"], as["accuracy"])
	}

	// Pinned-version requests bypass the splitter; direct candidate traffic
	// is not folded into the experiment.
	before := int(as["nodes"].(float64))
	status, m = postJSON(t, ts.URL+"/v1/models/base@1/predict", serve.PredictRequest{Nodes: nodes})
	if status != 200 {
		t.Fatalf("pinned predict status %d: %v", status, m)
	}
	_, _, m = get(t, ts.URL+"/v1/ab/report")
	cand, _ = m["candidate"].(map[string]any)
	as, _ = cand["stats"].(map[string]any)
	if got := int(as["nodes"].(float64)); got != before {
		t.Errorf("pinned request leaked into AB accounting: %d -> %d", before, got)
	}

	// Disabling resets routing.
	status, m = postJSON(t, ts.URL+"/v1/ab", ABConfig{})
	if status != 200 || m["configured"] != false {
		t.Fatalf("disable AB: %d %v", status, m)
	}
	if _, ok := r.ABActive(); ok {
		t.Fatal("AB still active after disable")
	}
	status, _, _ = get(t, ts.URL+"/v1/ab/report")
	if status != 404 {
		t.Fatalf("report after disable status %d", status)
	}
}
