package registry

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// HealthState is the per-model circuit-breaker state the registry tracks for
// every registered artifact.
type HealthState int

const (
	// HealthOK means the model is serving normally (or has never been
	// exercised).
	HealthOK HealthState = iota
	// HealthDegraded means recent load or predict failures were observed but
	// the consecutive-failure threshold has not been reached; requests still
	// flow.
	HealthDegraded
	// HealthTripped means the breaker is open: acquires answer a fast
	// TrippedError (HTTP 503 + Retry-After) without touching the artifact
	// until the backoff window lapses, after which the next acquire is let
	// through as a lazy half-open probe.
	HealthTripped
)

// String renders the state for listings and logs.
func (h HealthState) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	case HealthTripped:
		return "tripped"
	}
	return fmt.Sprintf("HealthState(%d)", int(h))
}

// Default circuit-breaker parameters, used when the corresponding
// BreakerOptions field is zero.
const (
	// DefaultBreakerThreshold is the consecutive-failure count that trips a
	// model's breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerBackoff is the base trip window; it doubles on every
	// consecutive trip.
	DefaultBreakerBackoff = 500 * time.Millisecond
	// DefaultBreakerMaxBackoff caps the exponential trip window.
	DefaultBreakerMaxBackoff = 30 * time.Second
)

// BreakerOptions configures the registry's per-model circuit breaker.
// Consecutive load failures (unreadable or corrupt artifact, model rebuild
// errors) and engine panics (serve.ErrModelPanic) count toward Threshold;
// any success resets the run. A tripped model fails acquires fast with
// TrippedError until its backoff window — Backoff doubled per consecutive
// trip, capped at MaxBackoff, stretched by up to 20% seeded jitter — lapses;
// the next acquire after that is the half-open probe whose outcome either
// closes the breaker or re-trips it with a doubled window.
type BreakerOptions struct {
	// Threshold is the consecutive-failure count that trips the breaker.
	// 0 selects DefaultBreakerThreshold; negative disables the breaker.
	Threshold int
	// Backoff is the base trip window. 0 selects DefaultBreakerBackoff.
	Backoff time.Duration
	// MaxBackoff caps the exponentially growing trip window. 0 selects
	// DefaultBreakerMaxBackoff.
	MaxBackoff time.Duration
	// Seed drives the jitter stream, so a seeded torture scenario trips and
	// recovers on the same schedule every run.
	Seed int64
}

// withDefaults resolves zero fields to the package defaults.
func (b BreakerOptions) withDefaults() BreakerOptions {
	if b.Threshold == 0 {
		b.Threshold = DefaultBreakerThreshold
	}
	if b.Backoff <= 0 {
		b.Backoff = DefaultBreakerBackoff
	}
	if b.MaxBackoff <= 0 {
		b.MaxBackoff = DefaultBreakerMaxBackoff
	}
	return b
}

// ErrTripped marks acquires rejected by an open per-model circuit breaker;
// the HTTP layer maps it to 503 with a Retry-After header. Test with
// errors.Is; errors.As a *TrippedError for the retry hint.
var ErrTripped = errors.New("registry: model circuit tripped")

// TrippedError is the typed failure of an acquire on a tripped model. It
// matches errors.Is(err, ErrTripped) and implements serve.RetryAfterer, so
// serve.WriteError stamps the remaining trip window as the Retry-After
// header.
type TrippedError struct {
	// Ref is the tripped model's name@version key.
	Ref string
	// Until is when the trip window lapses and the next acquire probes.
	Until time.Time
	// Cause is the failure that tripped the breaker.
	Cause error
}

// Error renders the named-op failure.
func (e *TrippedError) Error() string {
	return fmt.Sprintf("registry: %s: circuit tripped until %s (cause: %v)",
		e.Ref, e.Until.Format(time.RFC3339), e.Cause)
}

// Is matches the ErrTripped sentinel.
func (e *TrippedError) Is(target error) bool { return target == ErrTripped }

// Unwrap exposes the tripping cause to errors.Is/As chains.
func (e *TrippedError) Unwrap() error { return e.Cause }

// RetryAfter reports the remaining trip window (at least 1s), satisfying
// serve.RetryAfterer.
func (e *TrippedError) RetryAfter() time.Duration {
	d := time.Until(e.Until)
	if d < time.Second {
		d = time.Second
	}
	return d
}

// tripCheckLocked gates an acquire on e's breaker state: inside an open trip
// window it returns the fast TrippedError; once the window lapsed it lets
// the caller through as the lazy half-open probe (leaving the state tripped
// until the probe's outcome is recorded). r.mu must be held.
func (r *Registry) tripCheckLocked(e *entry) error {
	if e.health != HealthTripped {
		return nil
	}
	if time.Now().Before(e.retryAt) {
		return &TrippedError{Ref: e.ref(), Until: e.retryAt, Cause: e.lastErr}
	}
	return nil
}

// recordFailureLocked accounts one breaker-relevant failure (load error or
// engine panic) on e, tripping it once the consecutive run reaches the
// threshold. The trip window grows exponentially with consecutive trips and
// carries seeded jitter, so a half-open probe that fails re-trips with a
// doubled window. r.mu must be held.
func (r *Registry) recordFailureLocked(e *entry, cause error) {
	if r.breaker.Threshold < 0 {
		return
	}
	e.failures++
	e.lastErr = cause
	if e.failures < r.breaker.Threshold {
		recordHealthTransition(e.ref(), e.health, HealthDegraded)
		e.health = HealthDegraded
		return
	}
	d := r.breaker.Backoff << e.trips
	if d <= 0 || d > r.breaker.MaxBackoff {
		d = r.breaker.MaxBackoff
	}
	// Stretch by up to 20% from the seeded stream: herds of clients retrying
	// a recovering model spread out instead of re-tripping it in lockstep.
	d += time.Duration(float64(d) * 0.2 * r.rng.Float64())
	recordHealthTransition(e.ref(), e.health, HealthTripped)
	telBreakerTrips.With(e.ref()).Inc()
	e.health = HealthTripped
	e.retryAt = time.Now().Add(d)
	e.trips++
	// The consecutive-failure run is NOT reset: the half-open probe's single
	// failure pushes the count past the threshold again immediately.
	e.failures = r.breaker.Threshold
}

// recordSuccessLocked closes e's breaker after a successful load or predict:
// the failure run, trip count and backoff all reset. r.mu must be held.
func (r *Registry) recordSuccessLocked(e *entry) {
	if e.health == HealthOK && e.failures == 0 {
		return
	}
	recordHealthTransition(e.ref(), e.health, HealthOK)
	e.health = HealthOK
	e.failures, e.trips = 0, 0
	e.retryAt = time.Time{}
	e.lastErr = nil
}

// breakerRNG builds the registry's seeded jitter stream.
func breakerRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Readiness is the fleet readiness summary behind GET /v1/readyz and the
// readiness fields of GET /v1/healthz: liveness means the process answers,
// readiness means it can actually serve a prediction.
type Readiness struct {
	// Ready reports whether the fleet can serve: the registry is open and at
	// least one registered version is not tripped.
	Ready bool `json:"ready"`
	// Models and Versions count registered names and artifacts.
	Models   int `json:"models"`
	Versions int `json:"versions"`
	// Tripped counts versions whose circuit breaker is currently open.
	Tripped int `json:"tripped"`
	// Quarantined counts artifacts a lenient scan refused to register.
	Quarantined int `json:"quarantined"`
}

// Readiness computes the current fleet readiness summary.
func (r *Registry) Readiness() Readiness {
	r.mu.Lock()
	defer r.mu.Unlock()
	var versions, tripped int
	for _, m := range r.models {
		for _, e := range m.versions {
			versions++
			if e.health == HealthTripped {
				tripped++
			}
		}
	}
	return Readiness{
		Ready:       !r.closed && versions > 0 && tripped < versions,
		Models:      len(r.models),
		Versions:    versions,
		Tripped:     tripped,
		Quarantined: len(r.quarantined),
	}
}
