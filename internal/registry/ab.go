package registry

import (
	"context"
	"fmt"
	"hash/fnv"

	"repro/internal/serve"
)

// ABConfig is the A/B splitter configuration set by POST /v1/ab: requests
// addressed to Control's active version are rerouted node-by-node, sending
// the Fraction of node-hash space below p to Candidate. Hashing is
// deterministic in (node, Salt), so repeat queries for a node are sticky to
// one arm — the property that makes online accuracy per arm well-defined.
type ABConfig struct {
	// Control is the model name whose traffic is split (the incumbent — an
	// FGL baseline in the paper's comparison).
	Control string `json:"control"`
	// Candidate receives the split-off fraction (AdaFGL in the paper's
	// comparison).
	Candidate string `json:"candidate"`
	// Fraction is the share of node-hash space routed to Candidate,
	// in [0, 1].
	Fraction float64 `json:"fraction"`
	// Salt perturbs the node hash so successive experiments draw different
	// node partitions. Optional.
	Salt uint64 `json:"salt,omitempty"`
}

// abState carries the active experiment and its per-arm counters (A/B
// traffic only — per-model totals accumulate separately).
type abState struct {
	cfg                ABConfig
	control, candidate modelStats
}

// ConfigureAB installs (or replaces) the A/B experiment. Both models must be
// registered and distinct; Fraction must lie in [0, 1]. Arm counters start
// at zero. An empty Control disables splitting.
func (r *Registry) ConfigureAB(cfg ABConfig) error {
	if cfg.Control == "" && cfg.Candidate == "" {
		r.mu.Lock()
		r.ab = nil
		r.mu.Unlock()
		return nil
	}
	if cfg.Fraction < 0 || cfg.Fraction > 1 {
		return fmt.Errorf("registry: ConfigureAB: fraction %v outside [0,1]", cfg.Fraction)
	}
	if cfg.Control == cfg.Candidate {
		return fmt.Errorf("registry: ConfigureAB: control and candidate are both %q", cfg.Control)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range []string{cfg.Control, cfg.Candidate} {
		if _, _, err := r.resolveLocked(name, 0); err != nil {
			return fmt.Errorf("registry: ConfigureAB: %w", err)
		}
	}
	r.ab = &abState{cfg: cfg}
	return nil
}

// ABActive returns the current A/B configuration, if one is installed.
func (r *Registry) ABActive() (ABConfig, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ab == nil {
		return ABConfig{}, false
	}
	return r.ab.cfg, true
}

// abHash maps a node id (with salt) onto [0, 1) via FNV-1a — deterministic,
// so a node's arm never changes within one experiment.
func abHash(node int, salt uint64) float64 {
	h := fnv.New64a()
	var buf [16]byte
	v := uint64(node)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
		buf[8+i] = byte(salt >> (8 * i))
	}
	h.Write(buf[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// ABRoute reports which arm the splitter sends node to under cfg: true means
// the candidate. Exposed so tests and benches can assert stickiness.
func ABRoute(cfg ABConfig, node int) bool {
	return abHash(node, cfg.Salt) < cfg.Fraction
}

// predictAB answers a control-addressed request under the active experiment:
// nodes are partitioned by the deterministic hash, each non-empty arm runs
// one predict on its model's active version, per-arm counters are updated,
// and the answers are merged back into request order.
func (r *Registry) predictAB(ctx context.Context, cfg ABConfig, nodes []int) ([]serve.Prediction, error) {
	var ctrlNodes, candNodes []int
	var ctrlPos, candPos []int
	for i, n := range nodes {
		if ABRoute(cfg, n) {
			candNodes = append(candNodes, n)
			candPos = append(candPos, i)
		} else {
			ctrlNodes = append(ctrlNodes, n)
			ctrlPos = append(ctrlPos, i)
		}
	}
	telABNodes.With("control").Add(uint64(len(ctrlNodes)))
	telABNodes.With("candidate").Add(uint64(len(candNodes)))
	out := make([]serve.Prediction, len(nodes))
	run := func(name string, armNodes, pos []int, arm func(*abState) *modelStats) error {
		if len(armNodes) == 0 {
			return nil
		}
		preds, labelled, correct, lat, err := r.predictOn(ctx, name, 0, armNodes)
		if err != nil {
			return err
		}
		for i, p := range preds {
			out[pos[i]] = p
		}
		// Fold into the experiment counters, provided the same experiment is
		// still installed (a concurrent reconfigure resets the arms).
		r.mu.Lock()
		if r.ab != nil && r.ab.cfg == cfg {
			arm(r.ab).record(len(armNodes), labelled, correct, lat)
		}
		r.mu.Unlock()
		return nil
	}
	if err := run(cfg.Control, ctrlNodes, ctrlPos, func(s *abState) *modelStats { return &s.control }); err != nil {
		return nil, err
	}
	if err := run(cfg.Candidate, candNodes, candPos, func(s *abState) *modelStats { return &s.candidate }); err != nil {
		return nil, err
	}
	return out, nil
}

// ABArmReport is one arm of the A/B report: the model behind it and its
// cumulative counters over experiment traffic.
type ABArmReport struct {
	// Model is the arm's model name.
	Model string `json:"model"`
	// Stats are the arm's counters (accuracy over labelled nodes, latency
	// percentiles over the recent window).
	Stats ArmStats `json:"stats"`
}

// ABReport is the payload of GET /v1/ab/report: the live comparison of
// control vs candidate — the paper's baseline-vs-AdaFGL table as an online
// measurement.
type ABReport struct {
	// Config echoes the installed experiment.
	Config ABConfig `json:"config"`
	// Control and Candidate carry the per-arm measurements.
	Control   ABArmReport `json:"control"`
	Candidate ABArmReport `json:"candidate"`
}

// ABReportNow assembles the current A/B report; it errors when no experiment
// is configured.
func (r *Registry) ABReportNow() (*ABReport, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ab == nil {
		return nil, fmt.Errorf("registry: ABReportNow: no A/B experiment configured: %w", ErrNotFound)
	}
	return &ABReport{
		Config:    r.ab.cfg,
		Control:   ABArmReport{Model: r.ab.cfg.Control, Stats: r.ab.control.view()},
		Candidate: ABArmReport{Model: r.ab.cfg.Candidate, Stats: r.ab.candidate.view()},
	}, nil
}
