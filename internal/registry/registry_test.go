package registry

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/models"
	"repro/internal/partition"
	"repro/internal/serve"
)

// makeCkpt trains arch on a graph drawn from dataSeed with training stream
// trainSeed and returns the checkpoint. Distinct trainSeeds over one
// dataSeed produce different parameters on the same graph — the shape of a
// version line.
func makeCkpt(t testing.TB, arch string, dataSeed, trainSeed int64) *checkpoint.Checkpoint {
	t.Helper()
	spec, err := datasets.ByName("Cora")
	if err != nil {
		t.Fatal(err)
	}
	g := datasets.GenerateScaled(spec, 0.2, dataSeed)
	cd := partition.CommunitySplit(g, 3, rand.New(rand.NewSource(trainSeed)))
	cfg := models.DefaultConfig()
	cfg.Hidden = 8
	cfg.Dropout = 0
	clients := federated.BuildClients(cd.Subgraphs, models.Registry[arch], cfg, trainSeed)
	opt := federated.DefaultOptions()
	opt.Rounds = 3
	opt.LocalEpochs = 1
	res, err := federated.Run(clients, trainSeed+1, opt)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := checkpoint.FromResult(res, arch, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// saveCkpt writes ck into dir under name (no extension juggling: pass
// "m@1.ckpt") and returns the path.
func saveCkpt(t testing.TB, dir, name string, ck *checkpoint.Checkpoint) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := checkpoint.Save(path, ck); err != nil {
		t.Fatal(err)
	}
	return path
}

// zooDir saves one SGC artifact per given name into a temp dir and returns
// it. Each name gets its own training stream.
func zooDir(t testing.TB, names ...string) string {
	t.Helper()
	dir := t.TempDir()
	for i, n := range names {
		saveCkpt(t, dir, n+".ckpt", makeCkpt(t, "SGC", 3, int64(100+i)))
	}
	return dir
}

// TestParseRef covers the reference grammar.
func TestParseRef(t *testing.T) {
	if name, v, err := ParseRef("m"); err != nil || name != "m" || v != 0 {
		t.Fatalf("ParseRef(m) = %q %d %v", name, v, err)
	}
	if name, v, err := ParseRef("m@3"); err != nil || name != "m" || v != 3 {
		t.Fatalf("ParseRef(m@3) = %q %d %v", name, v, err)
	}
	for _, bad := range []string{"", "@1", "m@", "m@0", "m@x", "a/b", "a b", "a@1@2"} {
		if _, _, err := ParseRef(bad); err == nil {
			t.Errorf("ParseRef(%q) accepted", bad)
		}
	}
}

// TestAddListRemove covers registration, duplicate rejection, filename
// parsing, listing metadata and removal protection.
func TestAddListRemove(t *testing.T) {
	dir := t.TempDir()
	ck1 := makeCkpt(t, "SGC", 3, 100)
	ck2 := makeCkpt(t, "SGC", 3, 200)
	p1 := saveCkpt(t, dir, "m@1.ckpt", ck1)
	p2 := saveCkpt(t, dir, "m@2.ckpt", ck2)

	r := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}})
	defer r.Close()
	if _, err := r.AddFile(p1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddFile(p1); err == nil {
		t.Fatal("duplicate version accepted")
	}
	if _, err := r.AddFile(p2); err != nil {
		t.Fatal(err)
	}

	infos := r.List()
	if len(infos) != 2 {
		t.Fatalf("List returned %d infos", len(infos))
	}
	if infos[0].Name != "m" || infos[0].Version != 1 || !infos[0].Active || infos[0].Loaded {
		t.Fatalf("info[0] = %+v", infos[0])
	}
	if infos[0].Arch != "SGC" || infos[0].Nodes == 0 || infos[0].Params != len(ck1.Params) || !infos[0].HasAdj {
		t.Fatalf("metadata not peeked: %+v", infos[0])
	}
	if infos[1].Version != 2 || infos[1].Active {
		t.Fatalf("info[1] = %+v", infos[1])
	}

	// Unknown model and version are ErrNotFound.
	if _, err := r.Acquire("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Acquire(ghost) = %v", err)
	}
	if _, err := r.Acquire("m@9"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Acquire(m@9) = %v", err)
	}

	// The active version cannot be removed while siblings exist; after
	// swapping away it can.
	if err := r.Remove("m", 1); !errors.Is(err, ErrInUse) {
		t.Fatalf("Remove(active) = %v", err)
	}
	if _, err := r.Swap("m", 2); err != nil {
		t.Fatal(err)
	}
	// An acquired version cannot be removed.
	h, err := r.Acquire("m@1")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("m", 1); !errors.Is(err, ErrInUse) {
		t.Fatalf("Remove(acquired) = %v", err)
	}
	h.Release()
	if err := r.Remove("m", 1); err != nil {
		t.Fatalf("Remove after release: %v", err)
	}
	if err := r.Remove("m", 2); err != nil {
		t.Fatalf("Remove(last version): %v", err)
	}
	if len(r.List()) != 0 {
		t.Fatal("registry not empty after removals")
	}
}

// TestLoadDir covers the directory scan.
func TestLoadDir(t *testing.T) {
	dir := zooDir(t, "a@1", "b@1", "b@2")
	r := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}})
	defer r.Close()
	infos, err := r.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("LoadDir added %d artifacts", len(infos))
	}
	if _, err := r.LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// TestLRUNeverEvictsAcquired is the eviction contract: with MaxLoaded=2 and
// three models, starting the third evicts the idle one — never the one whose
// handle is still held, which must keep answering afterwards.
func TestLRUNeverEvictsAcquired(t *testing.T) {
	dir := zooDir(t, "a@1", "b@1", "c@1")
	r := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}, MaxLoaded: 2})
	defer r.Close()
	if _, err := r.LoadDir(dir); err != nil {
		t.Fatal(err)
	}

	ha, err := r.Acquire("a") // held for the whole test
	if err != nil {
		t.Fatal(err)
	}
	hb, err := r.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	hb.Release()
	if _, err := r.Acquire("c"); err != nil { // must evict b, not a
		t.Fatal(err)
	}

	loaded := map[string]bool{}
	for _, info := range r.List() {
		loaded[info.Name] = info.Loaded
	}
	if !loaded["a"] || loaded["b"] || !loaded["c"] {
		t.Fatalf("loaded set = %v, want a and c", loaded)
	}
	// The held handle still answers (its server was never drained).
	if _, err := ha.Server().Predict([]int{0}); err != nil {
		t.Fatalf("acquired server was evicted: %v", err)
	}
	ha.Release()
}

// TestPredictRecordsStats checks the per-model counters accumulate, carry
// accuracy, and survive a swap.
func TestPredictRecordsStats(t *testing.T) {
	dir := zooDir(t, "m@1", "m@2")
	r := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}})
	defer r.Close()
	if _, err := r.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Predict("m", []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Swap("m", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Predict("m", []int{3}); err != nil {
		t.Fatal(err)
	}
	st, err := r.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := st.Versions["1"], st.Versions["2"]
	if v1.Requests != 1 || v1.Nodes != 3 || v1.Labelled != 3 {
		t.Fatalf("v1 stats = %+v", v1)
	}
	if v2.Requests != 1 || v2.Nodes != 1 {
		t.Fatalf("v2 stats = %+v", v2)
	}
	if st.ActiveVersion != 2 || st.Server == nil {
		t.Fatalf("stats header = %+v", st)
	}
	if _, err := r.Stats("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stats(ghost) = %v", err)
	}
}

// TestRegistryClosed checks every entry point fails cleanly after Close.
func TestRegistryClosed(t *testing.T) {
	dir := zooDir(t, "m@1")
	r := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}})
	if _, err := r.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Predict("m", []int{0}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if _, err := r.Acquire("m"); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("Acquire after Close = %v", err)
	}
	if _, err := r.Add("x", 1, filepath.Join(dir, "m@1.ckpt")); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("Add after Close = %v", err)
	}
}
