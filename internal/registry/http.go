package registry

import (
	"net/http"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// Handler returns the multi-model HTTP surface of the registry — the
// versioned v1 API plus deprecated aliases for the flat single-model routes:
//
//	GET  /v1/models                      list artifacts + metadata
//	GET  /v1/models/{model}/predict      ?node=3 | ?nodes=1,2 ({model} is
//	                                     "name" or "name@version")
//	POST /v1/models/{model}/predict      {"nodes":[...]} or {"all":true}
//	GET  /v1/models/{model}/predict/all  full-graph warm path
//	GET  /v1/models/{model}/stats        per-version counters + live snapshot
//	POST /v1/models/{model}/swap         {"version":N} zero-downtime swap
//	POST /v1/ab                          configure the A/B splitter
//	GET  /v1/ab/report                   online accuracy/latency per arm
//	GET  /v1/healthz                     fleet liveness + readiness summary
//	GET  /v1/readyz                      readiness probe: 200 serving, 503 not
//	GET  /v1/metrics                     Prometheus text exposition
//	                                     (process-wide telemetry registry)
//
//	/predict, /predict/all, /healthz, /stats   deprecated aliases onto the
//	default model; they answer exactly like the old single-model API and
//	carry Deprecation plus Link (successor-version) headers.
//
// Every error, on every route including the aliases, is the structured JSON
// envelope {"error":{"op","code","msg"}} (serve.ErrorEnvelope), except
// /v1/readyz whose not-ready 503 carries the Readiness body itself so probes
// see why. Handlers validate before touching the engine; unknown models are
// 404, a closed registry or server or a tripped/overloaded model 503 (with
// Retry-After), a missed deadline 504, conflicting mutations 409. The whole
// mux is wrapped in serve.Recover, so even a handler panic answers the
// structured 500 envelope instead of killing the connection.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	// Method routing happens inside the handlers so that wrong-method
	// requests still answer with the shared error envelope (the mux's
	// built-in 405 writes text/plain).
	mux.HandleFunc("/v1/models", r.handleList)
	mux.HandleFunc("/v1/models/{model}/predict", r.handlePredict)
	mux.HandleFunc("/v1/models/{model}/predict/all", r.handlePredictAll)
	mux.HandleFunc("/v1/models/{model}/stats", r.handleStats)
	mux.HandleFunc("/v1/models/{model}/swap", r.handleSwap)
	mux.HandleFunc("/v1/ab", r.handleAB)
	mux.HandleFunc("/v1/ab/report", r.handleABReport)
	mux.HandleFunc("/v1/healthz", r.handleFleetHealthz)
	mux.HandleFunc("/v1/readyz", r.handleReadyz)
	mux.HandleFunc("/v1/metrics", r.handleMetrics)
	// Deprecated flat aliases onto the default model.
	mux.HandleFunc("/predict", r.legacy("/predict", r.handlePredict))
	mux.HandleFunc("/predict/all", r.legacy("/predict", r.handlePredictAll))
	mux.HandleFunc("/healthz", r.legacy("", r.handleHealthz))
	mux.HandleFunc("/stats", r.legacy("/stats", r.handleModelStatsSnapshot))
	// Every request carries a trace ID (incoming X-Trace-Id or freshly
	// minted) so per-request error logs and engine spans correlate.
	return serve.Recover("registry.handler", telemetry.TraceHTTP(mux))
}
