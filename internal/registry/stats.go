package registry

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/serve"
)

// statsWindow bounds the per-model latency reservoir: percentiles cover the
// most recent statsWindow requests of that model.
const statsWindow = 1 << 12

// modelStats accumulates the per-model (name@version) serving counters that
// survive swaps and server restarts: request/node totals, online accuracy
// against the serving graph's labels, and a recent-latency reservoir.
// Guarded by Registry.mu.
type modelStats struct {
	requests, nodes   uint64
	labelled, correct uint64
	lat               []time.Duration
	latNext           int
	latFull           bool
	totalLat          time.Duration
}

// record accounts one completed predict of n nodes, of which labelled
// carried ground-truth labels and correct were classified right.
func (s *modelStats) record(n, labelled, correct int, lat time.Duration) {
	s.requests++
	s.nodes += uint64(n)
	s.labelled += uint64(labelled)
	s.correct += uint64(correct)
	s.totalLat += lat
	if s.latFull {
		s.lat[s.latNext] = lat
		s.latNext = (s.latNext + 1) % statsWindow
	} else {
		s.lat = append(s.lat, lat)
		if len(s.lat) == statsWindow {
			s.latFull = true
		}
	}
}

// ArmStats is the JSON view of one model's cumulative serving counters —
// the per-model half of the v1 stats endpoint and one arm of an A/B report.
type ArmStats struct {
	// Requests and Nodes are completed predict calls and node queries.
	Requests uint64 `json:"requests"`
	Nodes    uint64 `json:"nodes"`
	// Labelled and Correct count queried nodes with ground-truth labels and
	// those classified correctly; Accuracy is their ratio (the online
	// accuracy of the paper's live comparison).
	Labelled uint64  `json:"labelled"`
	Correct  uint64  `json:"correct"`
	Accuracy float64 `json:"accuracy"`
	// MeanLat, P50 and P99 summarise per-request latency (P50/P99 over the
	// recent window).
	MeanLat time.Duration `json:"mean_lat_ns"`
	P50     time.Duration `json:"p50_ns"`
	P99     time.Duration `json:"p99_ns"`
}

// view renders the counters; Registry.mu must be held.
func (s *modelStats) view() ArmStats {
	a := ArmStats{
		Requests: s.requests, Nodes: s.nodes,
		Labelled: s.labelled, Correct: s.correct,
	}
	if s.labelled > 0 {
		a.Accuracy = float64(s.correct) / float64(s.labelled)
	}
	if s.requests > 0 {
		a.MeanLat = s.totalLat / time.Duration(s.requests)
	}
	if len(s.lat) > 0 {
		sorted := append([]time.Duration(nil), s.lat...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		a.P50 = sorted[len(sorted)/2]
		a.P99 = sorted[(len(sorted)*99)/100]
	}
	return a
}

// ModelStats is the full v1 stats payload for one model name: the active
// version, cumulative per-version counters, and the live snapshot of the
// active serving instance when started.
type ModelStats struct {
	// Name is the model line; ActiveVersion the version answering bare-name
	// requests.
	Name          string `json:"name"`
	ActiveVersion int    `json:"active_version"`
	// Versions maps "version" to that artifact's cumulative counters.
	Versions map[string]ArmStats `json:"versions"`
	// Server, when non-nil, is the active instance's live batching snapshot.
	Server *serve.Snapshot `json:"server,omitempty"`
}

// Stats assembles the v1 stats payload for name.
func (r *Registry) Stats(name string) (*ModelStats, error) {
	r.mu.Lock()
	m := r.models[name]
	if m == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("registry: Stats: unknown model %q: %w", name, ErrNotFound)
	}
	st := &ModelStats{Name: name, ActiveVersion: m.active, Versions: make(map[string]ArmStats, len(m.versions))}
	var activeSrv serve.Predictor
	for v, e := range m.versions {
		st.Versions[fmt.Sprintf("%d", v)] = e.stats.view()
		if v == m.active {
			activeSrv = e.srv
		}
	}
	r.mu.Unlock()
	if activeSrv != nil {
		snap := activeSrv.Stats()
		st.Server = &snap
	}
	return st, nil
}

// Predict routes one prediction through the registry: ref's model is
// acquired (starting it if needed), queried, and its per-model counters
// updated — including online accuracy for labelled nodes. When the A/B
// splitter is configured and ref resolves to the control model's active
// version, the request is split between control and candidate by the
// deterministic per-node hash instead.
func (r *Registry) Predict(ref string, nodes []int) ([]serve.Prediction, error) {
	return r.PredictCtx(context.Background(), ref, nodes)
}

// PredictCtx is Predict under a caller context: deadlines apply to the
// underlying serve call, and a telemetry trace ID carried by ctx (injected
// by the TraceHTTP middleware) threads through the batching window into the
// sharded engine's exchange spans.
func (r *Registry) PredictCtx(ctx context.Context, ref string, nodes []int) ([]serve.Prediction, error) {
	name, version, err := ParseRef(ref)
	if err != nil {
		return nil, fmt.Errorf("registry: Predict: %w", err)
	}
	if version == 0 {
		if cfg, ok := r.ABActive(); ok && name == cfg.Control {
			return r.predictAB(ctx, cfg, nodes)
		}
	}
	preds, _, _, _, err := r.predictOn(ctx, name, version, nodes)
	return preds, err
}

// predictOn answers nodes on name@version (0 = active), recording the
// model's counters, and reports the scoring and latency so A/B arm
// accounting can reuse them without re-acquiring the model. Engine panics
// (serve.ErrModelPanic) count toward the model's circuit breaker — sheds,
// deadlines and validation errors are the client's or the load's fault, not
// the model's, and do not; a successful predict closes the breaker.
func (r *Registry) predictOn(ctx context.Context, name string, version int, nodes []int) (preds []serve.Prediction, labelled, correct int, lat time.Duration, err error) {
	h, err := r.acquire(name, version)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	defer h.Release()
	start := time.Now()
	preds, err = h.Server().PredictCtx(ctx, nodes)
	if err != nil {
		if errors.Is(err, serve.ErrModelPanic) {
			r.mu.Lock()
			r.recordFailureLocked(h.e, err)
			r.mu.Unlock()
		}
		return nil, 0, 0, 0, err
	}
	lat = time.Since(start)
	labelled, correct = scorePreds(h.Server(), preds)
	telPredicts.With(h.e.ref()).Inc()
	r.mu.Lock()
	r.recordSuccessLocked(h.e)
	h.e.stats.record(len(nodes), labelled, correct, lat)
	r.mu.Unlock()
	return preds, labelled, correct, lat, nil
}

// scorePreds counts labelled nodes and correct classifications among preds.
func scorePreds(s serve.Predictor, preds []serve.Prediction) (labelled, correct int) {
	for _, p := range preds {
		if want, ok := s.Label(p.Node); ok {
			labelled++
			if p.Class == want {
				correct++
			}
		}
	}
	return labelled, correct
}
