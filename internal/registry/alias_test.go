package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/serve"
)

// getRaw fetches a URL and returns status, headers and the raw body bytes.
func getRaw(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestAliasBodiesByteIdenticalToV1 pins the migration contract of the
// deprecated flat aliases: every alias carries Deprecation plus an exact
// successor-version Link header, its prediction bodies are byte-identical to
// the v1 successor's, and the successors themselves are NOT marked
// deprecated.
func TestAliasBodiesByteIdenticalToV1(t *testing.T) {
	_, ts := zooServer(t, Options{DefaultModel: "base"})

	cases := []struct {
		alias     string
		v1        string
		successor string // exact Link target
	}{
		{"/predict?node=0", "/v1/models/base/predict?node=0", "/v1/models/base/predict"},
		{"/predict?nodes=1,2,3", "/v1/models/base/predict?nodes=1,2,3", "/v1/models/base/predict"},
		{"/predict/all", "/v1/models/base/predict/all", "/v1/models/base/predict"},
	}
	for _, c := range cases {
		status, hdr, aliasBody := getRaw(t, ts.URL+c.alias)
		if status != 200 {
			t.Fatalf("%s status %d: %s", c.alias, status, aliasBody)
		}
		if hdr.Get("Deprecation") != "true" {
			t.Errorf("%s missing Deprecation header", c.alias)
		}
		want := fmt.Sprintf("<%s>; rel=%q", c.successor, "successor-version")
		if link := hdr.Get("Link"); link != want {
			t.Errorf("%s Link = %q, want %q", c.alias, link, want)
		}
		v1Status, v1Hdr, v1Body := getRaw(t, ts.URL+c.v1)
		if v1Status != 200 {
			t.Fatalf("%s status %d: %s", c.v1, v1Status, v1Body)
		}
		if !bytes.Equal(aliasBody, v1Body) {
			t.Errorf("%s body diverged from %s:\n alias %s\n v1    %s", c.alias, c.v1, aliasBody, v1Body)
		}
		if v1Hdr.Get("Deprecation") != "" || v1Hdr.Get("Link") != "" {
			t.Errorf("%s is the successor; it must not carry deprecation headers", c.v1)
		}
	}

	// The healthz alias keeps the old single-model shape (so its body
	// legitimately differs from the fleet-level successor), but the headers
	// still point the way.
	status, hdr, _ := getRaw(t, ts.URL+"/healthz")
	if status != 200 || hdr.Get("Deprecation") != "true" {
		t.Fatalf("/healthz not marked deprecated (status %d)", status)
	}
	if link := hdr.Get("Link"); link != `</v1/healthz>; rel="successor-version"` {
		t.Errorf("/healthz Link = %q", link)
	}
}

// TestHealthzAliasTrippedDefaultModel pins the alias contract under the new
// readiness semantics: when the default model's breaker trips, the flat
// /healthz alias answers the structured 503 envelope with a Retry-After
// header — while still carrying its Deprecation and successor Link headers,
// and while the fleet-level /v1/healthz successor stays a 200 liveness
// answer.
func TestHealthzAliasTrippedDefaultModel(t *testing.T) {
	_, ts := zooServer(t, Options{
		DefaultModel: "base",
		Serve:        serve.Options{MaxBatch: 8, Seed: 1, Chaos: serve.ChaosOptions{PanicEvery: 1}},
		Breaker:      BreakerOptions{Threshold: 1, Backoff: time.Minute, Seed: 1},
	})

	// Healthy first: byte-compat body shape with the old single-model route.
	status, hdr, body := getRaw(t, ts.URL+"/healthz")
	if status != 200 || hdr.Get("Deprecation") != "true" {
		t.Fatalf("healthy alias = %d (Deprecation %q): %s", status, hdr.Get("Deprecation"), body)
	}

	// One panicking predict trips the default model (threshold 1).
	if status, _, _ := getRaw(t, ts.URL+"/predict?node=0"); status != 500 {
		t.Fatalf("panicking predict status = %d, want 500", status)
	}

	status, hdr, body = getRaw(t, ts.URL+"/healthz")
	if status != 503 {
		t.Fatalf("tripped alias status = %d, want 503: %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("tripped alias missing Retry-After")
	}
	if hdr.Get("Deprecation") != "true" || hdr.Get("Link") != `</v1/healthz>; rel="successor-version"` {
		t.Errorf("tripped alias lost deprecation headers: Deprecation %q Link %q",
			hdr.Get("Deprecation"), hdr.Get("Link"))
	}
	var env map[string]any
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("tripped alias body not JSON: %s", body)
	}
	wantEnvelope(t, env, "unavailable")

	// Liveness is unconditional: the fleet successor still answers 200.
	if status, _, _ := getRaw(t, ts.URL+"/v1/healthz"); status != 200 {
		t.Fatalf("/v1/healthz liveness = %d, want 200", status)
	}
}

// TestStatsAliasMatchesV1ServerSnapshot checks the legacy /stats alias
// answers the same live snapshot the v1 stats route embeds as its "server"
// field — same counters, same headers contract. Wall-time fields (elapsed,
// qps, latency quantiles) tick between two requests, so the comparison pins
// the deterministic counters.
func TestStatsAliasMatchesV1ServerSnapshot(t *testing.T) {
	_, ts := zooServer(t, Options{DefaultModel: "base"})

	// Drive known traffic first so the counters are non-trivial.
	for i := 0; i < 3; i++ {
		if status, _, body := getRaw(t, ts.URL+"/predict?nodes=0,1"); status != 200 {
			t.Fatalf("warm-up predict status %d: %s", status, body)
		}
	}

	status, hdr, legacyBody := getRaw(t, ts.URL+"/stats")
	if status != 200 {
		t.Fatalf("/stats status %d", status)
	}
	if hdr.Get("Deprecation") != "true" {
		t.Error("/stats missing Deprecation header")
	}
	if link := hdr.Get("Link"); link != `</v1/models/base/stats>; rel="successor-version"` {
		t.Errorf("/stats Link = %q", link)
	}
	v1Status, _, v1Body := getRaw(t, ts.URL+"/v1/models/base/stats")
	if v1Status != 200 {
		t.Fatalf("/v1 stats status %d", v1Status)
	}

	var legacy map[string]any
	if err := json.Unmarshal(legacyBody, &legacy); err != nil {
		t.Fatalf("legacy /stats body %q: %v", legacyBody, err)
	}
	var v1 struct {
		Server map[string]any `json:"server"`
	}
	if err := json.Unmarshal(v1Body, &v1); err != nil {
		t.Fatalf("/v1 stats body %q: %v", v1Body, err)
	}
	if v1.Server == nil {
		t.Fatalf("/v1 stats has no server snapshot: %s", v1Body)
	}
	for _, key := range []string{"requests", "nodes", "batches", "mean_batch"} {
		if legacy[key] != v1.Server[key] {
			t.Errorf("snapshot %s diverged: alias %v vs v1 %v", key, legacy[key], v1.Server[key])
		}
	}
	if legacy["requests"].(float64) < 3 {
		t.Fatalf("warm-up traffic not counted: %v", legacy["requests"])
	}
}
