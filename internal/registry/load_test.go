package registry

import (
	"sync"
	"testing"

	"repro/internal/serve"
)

// TestConcurrentColdStartsDedupe hammers Acquire on one never-started model
// from many goroutines at once: every caller must get a working handle on the
// SAME serving instance, and the checkpoint must have been loaded exactly
// once (the loading-channel rendezvous, not N racing boots). Run under -race
// by the CI race job.
func TestConcurrentColdStartsDedupe(t *testing.T) {
	dir := zooDir(t, "m@1")
	r := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}})
	defer r.Close()
	if _, err := r.LoadDir(dir); err != nil {
		t.Fatal(err)
	}

	const callers = 32
	handles := make([]*Handle, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			handles[i], errs[i] = r.Acquire("m")
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	srv := handles[0].Server()
	for i, h := range handles {
		if h.Server() != srv {
			t.Fatalf("caller %d got a different server instance", i)
		}
		if _, err := h.Server().Predict([]int{0}); err != nil {
			t.Fatalf("caller %d predict: %v", i, err)
		}
		h.Release()
	}
	r.mu.Lock()
	starts := r.coldStarts
	r.mu.Unlock()
	if starts != 1 {
		t.Fatalf("32 concurrent acquires booted the server %d times, want 1", starts)
	}
}

// TestPinnedHandleSurvivesEvictionStorm holds one acquired handle while a
// storm of concurrent acquires over three other models forces LRU eviction
// churn far past MaxLoaded=2. The pinned server must keep answering the whole
// time and must never be evicted: a later acquire of the same ref returns the
// very same instance. Run under -race by the CI race job.
func TestPinnedHandleSurvivesEvictionStorm(t *testing.T) {
	dir := zooDir(t, "pin@1", "b@1", "c@1", "d@1")
	r := New(Options{Serve: serve.Options{MaxBatch: 8, Seed: 1}, MaxLoaded: 2})
	defer r.Close()
	if _, err := r.LoadDir(dir); err != nil {
		t.Fatal(err)
	}

	pinned, err := r.Acquire("pin")
	if err != nil {
		t.Fatal(err)
	}

	others := []string{"b", "c", "d"}
	const workers = 8
	const iters = 20
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h, err := r.Acquire(others[(w+i)%len(others)])
				if err != nil {
					errCh <- err
					return
				}
				if _, err := h.Server().Predict([]int{i % 4}); err != nil {
					h.Release()
					errCh <- err
					return
				}
				h.Release()
				// The pinned server keeps answering mid-storm.
				if _, err := pinned.Server().Predict([]int{0}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	// Never evicted: re-acquiring returns the identical serving instance.
	again, err := r.Acquire("pin")
	if err != nil {
		t.Fatal(err)
	}
	if again.Server() != pinned.Server() {
		t.Fatal("pinned server was evicted and rebooted during the storm")
	}
	again.Release()
	if _, err := pinned.Server().Predict([]int{1}); err != nil {
		t.Fatalf("pinned server dead after storm: %v", err)
	}
	pinned.Release()
}
