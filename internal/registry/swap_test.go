package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// refPreds computes the in-process reference answer for every node of ck's
// graph on a directly constructed server — the ground truth a routed
// prediction must match bitwise.
func refPreds(t *testing.T, dir, name string) []serve.Prediction {
	t.Helper()
	r := New(Options{Serve: serve.Options{MaxBatch: 1, Seed: 1}})
	defer r.Close()
	if _, err := r.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire(name)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	nodes := make([]int, h.Server().Nodes())
	for i := range nodes {
		nodes[i] = i
	}
	preds, err := h.Server().Predict(nodes)
	if err != nil {
		t.Fatal(err)
	}
	return preds
}

// samePred reports bitwise prediction equality.
func samePred(a, b serve.Prediction) bool {
	if a.Node != b.Node || a.Class != b.Class || len(a.Logits) != len(b.Logits) {
		return false
	}
	for i := range a.Logits {
		if a.Logits[i] != b.Logits[i] {
			return false
		}
	}
	return true
}

// TestSwapUnderLoad is the zero-downtime contract: 64 goroutines hammer
// /v1/models/m/predict over HTTP while the main goroutine swaps the active
// version back and forth several times. Every request must answer 200, and
// every prediction must be bit-identical to one of the two versions'
// in-process reference answers — a response mixing versions, or hitting a
// torn-down server, fails.
func TestSwapUnderLoad(t *testing.T) {
	dir := zooDir(t, "m@1", "m@2")
	ref1 := refPreds(t, dir, "m@1")
	ref2 := refPreds(t, dir, "m@2")
	// The two versions were trained with different seeds; make sure the test
	// can actually tell them apart.
	distinct := false
	for i := range ref1 {
		if !samePred(ref1[i], ref2[i]) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatal("v1 and v2 predict identically; test cannot distinguish versions")
	}

	r := New(Options{Serve: serve.Options{MaxBatch: 8, MaxWait: 200 * time.Microsecond, Seed: 1}})
	defer r.Close()
	if _, err := r.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	const goroutines = 64
	const perG = 40
	nodes := len(ref1)
	var bad atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := func(format string, args ...any) {
		bad.Add(1)
		firstErr.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for q := 0; q < perG; q++ {
				select {
				case <-stop:
					return
				default:
				}
				node := rng.Intn(nodes)
				resp, err := http.Get(fmt.Sprintf("%s/v1/models/m/predict?node=%d", ts.URL, node))
				if err != nil {
					fail("g%d q%d: %v", g, q, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail("g%d q%d: status %d: %s", g, q, resp.StatusCode, body)
					return
				}
				var pr serve.PredictResponse
				if err := json.Unmarshal(body, &pr); err != nil || len(pr.Predictions) != 1 {
					fail("g%d q%d: bad body %s", g, q, body)
					return
				}
				p := pr.Predictions[0]
				if !samePred(p, ref1[node]) && !samePred(p, ref2[node]) {
					fail("g%d q%d node %d: prediction matches neither version: %+v", g, q, node, p)
					return
				}
			}
		}(g)
	}

	// Swap back and forth through the HTTP surface while the storm runs.
	swaps := 0
	for i := 0; i < 6; i++ {
		to := 2 - i%2 // 2,1,2,1,2,1
		body, _ := json.Marshal(map[string]int{"version": to})
		resp, err := http.Post(ts.URL+"/v1/models/m/swap", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("swap %d: status %d", i, resp.StatusCode)
		}
		swaps++
		time.Sleep(2 * time.Millisecond) // let load land on the new version
	}
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d bad responses during %d swaps; first: %s", n, swaps, firstErr.Load())
	}
	if swaps < 5 {
		t.Fatalf("only %d swaps executed", swaps)
	}
}
