package registry

import (
	"repro/internal/telemetry"
)

// Fleet-layer metric families on the process-wide telemetry registry:
// lifecycle events (cold starts, evictions, swaps), circuit-breaker
// activity (trips, health transitions) and routed predict traffic. The
// model label is the name@version ref, bounded by the artifact count; the
// health-transition "to" label is one of ok/degraded/tripped.
var (
	telColdStarts = telemetry.Default().Counter("adafgl_registry_cold_starts_total",
		"Serving instances booted (deduped concurrent acquires count once).")
	telEvictions = telemetry.Default().Counter("adafgl_registry_evictions_total",
		"Idle serving instances drained by the LRU bound.")
	telSwaps = telemetry.Default().Counter("adafgl_registry_swaps_total",
		"Successful zero-downtime active-version swaps.")
	telBreakerTrips = telemetry.Default().CounterVec("adafgl_registry_breaker_trips_total",
		"Circuit-breaker trips per model.", "model")
	telHealth = telemetry.Default().CounterVec("adafgl_registry_health_transitions_total",
		"Health-state transitions per model.", "model", "to")
	telPredicts = telemetry.Default().CounterVec("adafgl_registry_predicts_total",
		"Successful routed predicts per model.", "model")
	telABNodes = telemetry.Default().CounterVec("adafgl_registry_ab_nodes_total",
		"Node queries routed to an A/B arm.", "arm")
)

// recordHealthTransition emits the transition counter when a model's
// breaker state actually changes. Called under Registry.mu next to the
// state write; counter mutation is atomic and never blocks.
func recordHealthTransition(ref string, from, to HealthState) {
	if from != to {
		telHealth.With(ref, to.String()).Inc()
	}
}
