package federated

import (
	"math/rand"
	"time"
)

// Clock is the duration source ordering client-update arrivals for
// AsyncServer. The default (nil AsyncOptions.Clock) is the seeded virtual
// clock driven by AsyncOptions.Speed, under which a run's commit schedule is
// a pure function of the seed and the speed model — bit-reproducible for any
// worker count. NewWallClock swaps in real elapsed time so the async engine
// orders arrivals by actual training completion, the behaviour a wall-clock
// deployment needs (and which is, by nature, not reproducible).
//
// A Clock is stateful across one AsyncServer.Run and is reset at the start of
// each run; it must not be shared by concurrent runs. The interface is
// intentionally sealed (unexported methods): the two implementations in this
// package cover the simulation/deployment split.
type Clock interface {
	// reset prepares the clock for a run over n clients.
	reset(n int)
	// stamp assigns job.finish at dispatch time for clocks that know the
	// duration up front (the virtual clock); work is the job's nominal cost
	// (local epochs × labeled nodes). Wall clocks leave the stamp to harvest.
	stamp(job *asyncJob, work float64)
	// completed signals that a job's training goroutine has finished (its
	// done channel is already closed). Called from worker goroutines.
	completed(job *asyncJob)
	// harvest removes and returns the next-arriving job from inflight,
	// blocking until that job's training has completed and setting its final
	// finish stamp. Called only from the Run loop.
	harvest(inflight *[]*asyncJob) *asyncJob
}

// virtualClock is the default simulated-time source: job durations come from
// a SpeedModel with per-client seeded jitter streams, and arrivals are
// ordered by (finish, dispatch sequence) so the schedule never depends on
// goroutine scheduling.
type virtualClock struct {
	speed  *SpeedModel
	jitter []*rand.Rand
	now    float64
}

// newVirtualClock builds the seeded default clock; a nil speed model runs
// every client at nominal speed.
func newVirtualClock(speed *SpeedModel) *virtualClock {
	if speed == nil {
		speed = &SpeedModel{}
	}
	return &virtualClock{speed: speed}
}

func (c *virtualClock) reset(n int) {
	c.now = 0
	c.jitter = make([]*rand.Rand, n)
	for i := range c.jitter {
		c.jitter[i] = rand.New(rand.NewSource(c.speed.Seed + 7907*int64(i)))
	}
}

func (c *virtualClock) stamp(job *asyncJob, work float64) {
	job.finish = c.now + c.speed.duration(work, job.client, c.jitter[job.client])
}

func (c *virtualClock) completed(job *asyncJob) {}

// advance moves simulated time forward to t (never backward) — used by the
// fault layer to idle the server to the next scheduled event when nothing is
// in flight.
func (c *virtualClock) advance(t float64) {
	if t > c.now {
		c.now = t
	}
}

func (c *virtualClock) harvest(inflight *[]*asyncJob) *asyncJob {
	jobs := *inflight
	best := 0
	for i, job := range jobs[1:] {
		if job.finish < jobs[best].finish ||
			(job.finish == jobs[best].finish && job.seq < jobs[best].seq) {
			best = i + 1
		}
	}
	job := jobs[best]
	*inflight = append(jobs[:best], jobs[best+1:]...)
	<-job.done
	c.now = job.finish
	return job
}

// wallClock orders arrivals by real elapsed time: a job "arrives" when its
// training goroutine actually finishes, and its finish stamp (and therefore
// Result.RoundTime) is seconds since the run started. Schedules depend on
// machine load and worker count, so wall-clock runs are not reproducible —
// that is the point: this is the duration source for real deployments, while
// the virtual clock remains the default for simulation and tests.
type wallClock struct {
	epoch    time.Time
	arrivals chan *asyncJob
	now      float64 // latest harvested finish, keeps the timeline monotone
}

// NewWallClock returns a Clock that measures real elapsed time, for running
// the asynchronous engine in wall-clock deployments instead of simulation.
// Select it via AsyncOptions.Clock. RoundTime entries become seconds since
// the run started. Do not reuse one wall clock across concurrent runs.
func NewWallClock() Clock { return &wallClock{} }

func (c *wallClock) reset(n int) {
	c.epoch = time.Now()
	c.now = 0
	// Each client has at most one job in flight, so n buffers every possible
	// unharvested completion (including stragglers past the final commit).
	c.arrivals = make(chan *asyncJob, n)
}

func (c *wallClock) stamp(job *asyncJob, work float64) { job.finish = -1 }

// completed stamps the job with its actual completion time — not harvest
// time, which would absorb server-side aggregation delay — and announces it.
// The write is safe: it happens-before the channel send harvest receives.
func (c *wallClock) completed(job *asyncJob) {
	job.finish = time.Since(c.epoch).Seconds()
	c.arrivals <- job
}

func (c *wallClock) harvest(inflight *[]*asyncJob) *asyncJob {
	job := <-c.arrivals
	// Stamping (in completed) and sending are not one atomic step across
	// worker goroutines, so arrivals can be received fractionally out of
	// stamp order; clamp to keep the committed timeline monotone.
	if job.finish < c.now {
		job.finish = c.now
	}
	c.now = job.finish
	jobs := *inflight
	for i, j := range jobs {
		if j == job {
			*inflight = append(jobs[:i], jobs[i+1:]...)
			break
		}
	}
	<-job.done
	return job
}
