package federated

import (
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/partition"
)

func inductiveClients(t *testing.T, k int, seed int64) []*Client {
	t.Helper()
	s, err := datasets.ByName("Reddit")
	if err != nil {
		t.Fatal(err)
	}
	g := datasets.GenerateScaled(s, 0.15, seed)
	cd := partition.CommunitySplit(g, k, rand.New(rand.NewSource(seed)))
	cfg := models.DefaultConfig()
	cfg.Hidden = 16
	cfg.Dropout = 0
	subs := make([]*graph.Graph, len(cd.Subgraphs))
	for i, sub := range cd.Subgraphs {
		subs[i] = graph.MakeInductive(sub)
	}
	return BuildClients(subs, models.Registry["GCN"], cfg, seed)
}

func TestMakeInductiveHidesTestNodes(t *testing.T) {
	s, err := datasets.ByName("Flickr")
	if err != nil {
		t.Fatal(err)
	}
	g := datasets.GenerateScaled(s, 0.1, 1)
	obs := graph.MakeInductive(g)
	if obs.Eval != g {
		t.Fatal("Eval must point at the full graph")
	}
	want := g.N - graph.CountMask(g.TestMask)
	if obs.N != want {
		t.Fatalf("observed graph has %d nodes, want %d", obs.N, want)
	}
	for v := 0; v < obs.N; v++ {
		if obs.TestMask[v] {
			t.Fatal("observed graph must contain no test nodes")
		}
	}
	if obs.M() >= g.M() {
		t.Fatal("hiding test nodes must remove their edges")
	}
}

func TestInductiveClientEvaluatesOnFullGraph(t *testing.T) {
	clients := inductiveClients(t, 3, 2)
	for _, c := range clients {
		if c.TestSize() == 0 {
			t.Fatalf("client %d: inductive TestSize must count full-graph test nodes", c.ID)
		}
		if graph.CountMask(c.Graph.TestMask) != 0 {
			t.Fatalf("client %d: observed graph leaked test nodes", c.ID)
		}
	}
	// Training on observed graphs, evaluating on full graphs, must learn.
	srv := NewServer(clients, 3)
	o := DefaultOptions()
	o.Rounds = 15
	o.LocalEpochs = 2
	res, err := srv.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAcc < 0.3 {
		t.Fatalf("inductive accuracy %.3f implausibly low", res.TestAcc)
	}
	if res.RoundAcc[len(res.RoundAcc)-1] <= res.RoundAcc[0] {
		t.Fatal("inductive federated training did not improve")
	}
}

func TestInductiveCloneCarriesEval(t *testing.T) {
	s, _ := datasets.ByName("Reddit")
	g := datasets.GenerateScaled(s, 0.1, 4)
	obs := graph.MakeInductive(g)
	c := obs.Clone()
	if c.Eval == nil || c.Eval.N != g.N {
		t.Fatal("Clone must deep-copy the Eval graph")
	}
	c.Eval.Labels[0] = (c.Eval.Labels[0] + 1) % c.Eval.Classes
	if g.Labels[0] == c.Eval.Labels[0] {
		t.Fatal("Eval clone must be independent")
	}
}
