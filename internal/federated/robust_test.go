package federated

import (
	"math"
	"strings"
	"testing"

	"repro/internal/nn"
)

func TestParseAggregator(t *testing.T) {
	cases := map[string]AggregatorKind{
		"": AggFedAvg, "fedavg": AggFedAvg, "median": AggMedian,
		"trim": AggTrimmedMean, "trimmed": AggTrimmedMean, "trimmed-mean": AggTrimmedMean,
	}
	for in, want := range cases {
		got, err := ParseAggregator(in)
		if err != nil || got != want {
			t.Fatalf("ParseAggregator(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseAggregator("krum"); err == nil || !strings.Contains(err.Error(), "federated: robust:") {
		t.Fatalf("unknown aggregator must fail with a named error, got %v", err)
	}
	for kind, name := range map[AggregatorKind]string{AggFedAvg: "fedavg", AggMedian: "median", AggTrimmedMean: "trim"} {
		if kind.String() != name {
			t.Fatalf("%d.String() = %q, want %q", kind, kind.String(), name)
		}
	}
}

func TestAggregatorPrimitives(t *testing.T) {
	ups := [][]float64{{1, 10}, {2, 20}, {3, 90}}
	ws := []float64{1, 1, 2}

	mean := weightedMean(2, ups, ws)
	if want := (1 + 2 + 2*3) / 4.0; mean[0] != want {
		t.Fatalf("weightedMean[0] = %v, want %v", mean[0], want)
	}

	med := coordinateMedian(2, ups)
	if med[0] != 2 || med[1] != 20 {
		t.Fatalf("odd-count median = %v, want [2 20]", med)
	}
	medEven := coordinateMedian(1, [][]float64{{4}, {1}, {3}, {2}})
	if medEven[0] != 2.5 {
		t.Fatalf("even-count median = %v, want 2.5", medEven[0])
	}

	// TrimFrac 1/3 drops one from each end: only the middle value survives.
	trim := trimmedMean(2, ups, ws, 0.34)
	if trim[0] != 2 || trim[1] != 20 {
		t.Fatalf("trimmedMean = %v, want [2 20]", trim)
	}
	// TrimFrac 0 is exactly the weighted mean.
	if got := trimmedMean(2, ups, ws, 0); got[0] != mean[0] || got[1] != mean[1] {
		t.Fatalf("zero-trim trimmedMean %v != weightedMean %v", got, mean)
	}
	// A trim that would drop everything is capped to leave survivors.
	two := trimmedMean(1, [][]float64{{1}, {5}}, []float64{1, 1}, 0.49)
	if two[0] != 3 {
		t.Fatalf("capped trim of two updates = %v, want their mean 3", two[0])
	}
}

func TestClipDelta(t *testing.T) {
	base := []float64{1, 1}
	in := []float64{1 + 3, 1 + 4} // delta norm 5
	if got := clipDelta(in, base, 10); got != 5 {
		t.Fatalf("within-limit clip returned %v, want the raw norm 5", got)
	}
	if in[0] != 4 || in[1] != 5 {
		t.Fatalf("within-limit clip must not rescale, got %v", in)
	}
	if got := clipDelta(in, base, 1); got != 1 {
		t.Fatalf("clip returned %v, want the limit 1", got)
	}
	var ss float64
	for i := range in {
		d := in[i] - base[i]
		ss += d * d
	}
	if norm := math.Sqrt(ss); math.Abs(norm-1) > 1e-12 {
		t.Fatalf("post-clip delta norm = %v, want 1", norm)
	}
}

func TestRobustValidateRejectsBadKnobs(t *testing.T) {
	clients := coraClients(t, 2, 11)
	bad := []RobustOptions{
		{Aggregator: AggregatorKind(99)},
		{TrimFrac: -0.1}, {TrimFrac: 0.5}, {TrimFrac: math.NaN()},
		{ClipNorm: -1}, {ClipNorm: math.Inf(1)}, {ClipNorm: math.NaN()},
		{NoiseStd: -1}, {NoiseStd: math.NaN()},
	}
	for _, ro := range bad {
		o := quickOpts()
		o.Rounds = 1
		o.Robust = ro
		if _, err := NewServer(clients, 1).Run(o); err == nil || !strings.Contains(err.Error(), "federated: robust:") {
			t.Fatalf("sync engine accepted bad robust options %+v (err=%v)", ro, err)
		}
		o.Async = AsyncOptions{Enabled: true}
		if _, err := NewAsyncServer(clients, 1).Run(o); err == nil || !strings.Contains(err.Error(), "federated: robust:") {
			t.Fatalf("async engine accepted bad robust options %+v (err=%v)", ro, err)
		}
	}
}

// Zero local epochs make every update an exact echo of the broadcast, so
// every aggregator — mean, median, trimmed mean — must return the broadcast
// itself: the "equal FedAvg with zero attackers" degenerate case. Median and
// trimmed survivors reproduce the echo bit for bit; the FedAvg weighted mean
// ∑wv/∑w of identical values is exact to one ulp, hence the 1e-12 tolerance
// (the same bound the engine's historical conservation test uses).
func TestAggregatorsConserveZeroEpochEchoes(t *testing.T) {
	for _, agg := range []AggregatorKind{AggFedAvg, AggMedian, AggTrimmedMean} {
		clients := coraClients(t, 3, 17)
		before := append([]float64(nil), nn.Flatten(clients[0].Model)...)
		o := DefaultOptions()
		o.Rounds = 3
		o.LocalEpochs = 0
		o.Robust = RobustOptions{Aggregator: agg, TrimFrac: 0.25, ClipNorm: 10}
		o.Async = AsyncOptions{Enabled: true, MinUpdates: 2, Staleness: 0.5,
			Speed: &SpeedModel{Slowdown: []float64{1, 3, 9}, Seed: 5}}
		res, err := Run(clients, 18, o)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.GlobalParams {
			if math.Abs(v-before[i]) > 1e-12 {
				t.Fatalf("%v: zero-epoch echoes must be conserved: [%d] %v != %v", agg, i, v, before[i])
			}
		}
	}
}

// With zero attackers and a full barrier, median and trimmed-mean runs stay
// in lockstep with FedAvg on real training too whenever the participant set
// is symmetric enough; here we pin the cheap exact case — identical updates —
// directly on the primitives.
func TestMedianAndTrimEqualFedAvgOnIdenticalUpdates(t *testing.T) {
	u := []float64{0.5, -2, 3.25}
	ups := [][]float64{u, u, u, u}
	ws := []float64{3, 1, 2, 5}
	mean := weightedMean(3, ups, ws)
	med := coordinateMedian(3, ups)
	trim := trimmedMean(3, ups, ws, 0.25)
	for i := range u {
		if mean[i] != u[i] || med[i] != u[i] || trim[i] != u[i] {
			t.Fatalf("identical updates must aggregate to themselves: mean %v median %v trim %v", mean, med, trim)
		}
	}
}

func TestClippingBoundsEveryCommittedUpdateNorm(t *testing.T) {
	const clip = 0.05
	for _, async := range []bool{false, true} {
		clients := coraClients(t, 3, 23)
		o := quickOpts()
		o.Rounds = 4
		o.Robust.ClipNorm = clip
		o.Async.Enabled = async
		res, err := Run(clients, 24, o)
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxUpdateNorm <= 0 {
			t.Fatalf("async=%v: MaxUpdateNorm not recorded", async)
		}
		if res.MaxUpdateNorm > clip+1e-12 {
			t.Fatalf("async=%v: committed update norm %v exceeds clip %v", async, res.MaxUpdateNorm, clip)
		}
	}
}

func TestDPNoiseIsSeededAndDeterministic(t *testing.T) {
	run := func(noiseSeed int64) *Result {
		clients := coraClients(t, 2, 31)
		o := quickOpts()
		o.Rounds = 3
		o.Robust.NoiseStd = 0.01
		o.Robust.NoiseSeed = noiseSeed
		res, err := Run(clients, 32, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(7), run(7), run(8)
	for i := range a.GlobalParams {
		if a.GlobalParams[i] != b.GlobalParams[i] {
			t.Fatalf("same noise seed must be bit-identical at [%d]", i)
		}
	}
	same := true
	for i := range a.GlobalParams {
		if a.GlobalParams[i] != c.GlobalParams[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different noise seeds produced identical params; noise is not applied")
	}
}

// A lone scaled-update attacker wrecks the FedAvg aggregate but barely moves
// the coordinate median: the robust run's final global must stay far closer
// to the attack-free reference.
func TestMedianResistsScaledUpdateAttack(t *testing.T) {
	run := func(agg AggregatorKind, attack bool) *Result {
		clients := coraClients(t, 4, 41)
		o := quickOpts()
		o.Rounds = 6
		o.Robust.Aggregator = agg
		o.Async.Enabled = true
		if attack {
			o.Async.Faults.Events = []FaultEvent{
				{Time: 0, Client: 3, Kind: FaultCorrupt, Attack: Attack{Kind: AttackScale, Factor: 50}},
			}
		}
		res, err := Run(clients, 42, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dist := func(a, b []float64) float64 {
		var ss float64
		for i := range a {
			d := a[i] - b[i]
			ss += d * d
		}
		return math.Sqrt(ss)
	}
	honest := run(AggFedAvg, false)
	avg := dist(run(AggFedAvg, true).GlobalParams, honest.GlobalParams)
	med := dist(run(AggMedian, true).GlobalParams, honest.GlobalParams)
	if med >= avg {
		t.Fatalf("median must resist the scale attack better than FedAvg: median dist %v >= fedavg dist %v", med, avg)
	}
}
