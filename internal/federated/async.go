package federated

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/nn"
	"repro/internal/parallel"
)

// AsyncOptions configures the asynchronous staleness-aware aggregation
// engine (AsyncServer). The zero value disables it, keeping the synchronous
// FedAvg reference path.
type AsyncOptions struct {
	// Enabled routes federated.Run through AsyncServer instead of Server.
	Enabled bool
	// MinUpdates is the K of buffered K-of-N aggregation: the server commits
	// a round as soon as K client updates are buffered instead of waiting
	// for every participant. 0 (or any value >= the per-round participant
	// count) commits only when all participants have arrived — a full
	// synchronous barrier, bit-identical to Server.Run when Staleness
	// leaves fresh updates undiscounted.
	MinUpdates int
	// Staleness is the α of the FedAsync-style discount α/(1+s): an update
	// trained from a global model s commits old joins the aggregate with
	// weight n_i·α/(1+s). 0 means 1.0, under which fresh updates (s = 0)
	// carry exactly their synchronous weight n_i — the setting that makes
	// MinUpdates = N degrade gracefully to the bit-exact synchronous
	// reference. Lower α shrinks every buffered update toward the fresh
	// participants, higher staleness shrinks stragglers harder.
	Staleness float64
	// Speed is the simulated per-client duration model driving the virtual
	// clock. Nil runs every client at nominal speed (duration = local epochs
	// × labeled-node count, no jitter). Ignored when Clock is set.
	Speed *SpeedModel
	// Clock overrides the duration source. Nil keeps the seeded virtual
	// clock built from Speed (bit-reproducible simulation); NewWallClock()
	// orders arrivals by real training completion for deployments.
	Clock Clock
	// Faults is the fault-injection schedule: per-client crash, leave,
	// join and corrupt events ordered by the virtual clock. The zero value
	// injects nothing and keeps the engine's historical code path exactly;
	// a non-empty schedule requires the virtual clock.
	Faults Faults
}

// SpeedModel deterministically assigns a simulated duration to every local
// training job, driving AsyncServer's virtual clock. A job's duration is
//
//	LocalEpochs × max(1, train size) × Slowdown[client] × (1 + Jitter·u)
//
// with u drawn uniformly from [-1, 1) on a stream seeded by (Seed, client),
// so durations — and therefore the whole commit schedule — are a pure
// function of the model and the dispatch sequence, never of worker count or
// machine load. Time units are abstract ("one epoch over one labeled node");
// only ratios between clients and engines are meaningful.
type SpeedModel struct {
	// Slowdown multiplies client i's durations by Slowdown[i] (1.0 =
	// nominal). Clients beyond len(Slowdown), and entries <= 0, run at 1.0.
	// A skewed fleet — e.g. one entry at 4 — reproduces the straggler
	// scenarios the async engine exists for.
	Slowdown []float64
	// Jitter is the relative amplitude of per-dispatch duration noise in
	// [0, 1); 0 disables it.
	Jitter float64
	// Seed seeds the per-client jitter streams.
	Seed int64
}

// duration returns the simulated cost of one dispatch of client index ci
// whose nominal work (epochs × labeled nodes) is work. jr is the client's
// private jitter stream; it is only consumed when Jitter > 0.
func (m *SpeedModel) duration(work float64, ci int, jr *rand.Rand) float64 {
	d := work
	if ci < len(m.Slowdown) && m.Slowdown[ci] > 0 {
		d *= m.Slowdown[ci]
	}
	if m.Jitter > 0 {
		d *= 1 + m.Jitter*(2*jr.Float64()-1)
	}
	return d
}

// AsyncServer coordinates buffered asynchronous FedAvg over a set of
// clients: clients train concurrently on a bounded worker pool, the server
// commits a round as soon as AsyncOptions.MinUpdates updates are buffered,
// and late (stale) updates are discounted FedAsync-style instead of stalling
// the fleet. A seeded virtual clock (SpeedModel) orders arrivals, so runs
// are bit-reproducible for every worker count; with MinUpdates covering all
// participants the engine degrades to the synchronous reference exactly.
type AsyncServer struct {
	Clients []*Client
	rng     *rand.Rand
}

// NewAsyncServer wraps the clients; the rng drives participation sampling
// exactly as in NewServer, so a MinUpdates=N async run samples the same
// participant permutations as the synchronous server under the same seed.
func NewAsyncServer(clients []*Client, seed int64) *AsyncServer {
	return &AsyncServer{Clients: clients, rng: rand.New(rand.NewSource(seed))}
}

// asyncJob tracks one dispatched local-training task from broadcast to
// arrival at the server.
type asyncJob struct {
	client  int     // index into Clients
	version int     // global model version trained from
	seq     int     // global dispatch sequence number
	finish  float64 // arrival time on the engine's Clock (virtual units, or wall seconds)
	weight  float64 // FedAvg data-size weight n_i
	done    chan struct{}
	params  []float64
	base    []float64 // the broadcast snapshot trained from (clip reference)
	lost    bool      // client crashed mid-flight: discard at harvest
	err     error
}

// Run executes asynchronous buffered FedAvg for opt.Rounds commits.
//
// Scheduling is event-driven on the engine's Clock (the seeded virtual clock
// by default; NewWallClock for real time): every dispatched client
// trains concurrently (bounded by parallel.Workers()), but the server
// harvests arrivals strictly in (virtual finish time, dispatch sequence)
// order and aggregates each commit's buffer in dispatch order — so the
// sequence of global models depends only on the seed and the speed model,
// never on scheduling. Each commit averages the K buffered updates with
// weights n_i·α/(1+staleness), plus the current global anchored by the data
// mass of clients still in flight (FedBuff-style, so a small buffer cannot
// yank the model toward one client; the anchor vanishes at K = N).
// Contributors are then re-broadcast the new global model and re-dispatched,
// while still-running clients keep training on the parameters they were
// given. Round accuracies are evaluated after the schedule finishes
// (evaluation is RNG-free, so the curve matches the synchronous engine's
// interleaved evaluation bit for bit).
//
// A non-empty opt.Async.Faults schedule overlays crash/leave/join/corrupt
// events on the same virtual timeline: events at time T apply before
// arrivals stamped at T, crashed clients lose their in-flight update and
// later rejoin from the stale broadcast they last received (their first
// post-rejoin update paying the staleness discount), left clients stop
// being re-dispatched, and corrupted clients rewrite their uploads with the
// installed Attack. When a fault leaves fewer than K arrivals reachable the
// commit degrades to what is actually achievable, and a run whose fleet
// dies entirely ends early with the rounds committed so far. Faulted runs
// remain bit-reproducible for any worker count; opt.Robust's clipping,
// alternative aggregators and seeded noise apply to both engines.
func (s *AsyncServer) Run(opt Options) (*Result, error) {
	dim, err := checkClients(s.Clients)
	if err != nil {
		return nil, err
	}
	if err := opt.Robust.validate(); err != nil {
		return nil, err
	}
	var ft *faultRun
	if !opt.Async.Faults.Empty() {
		if opt.Async.Clock != nil {
			if _, ok := opt.Async.Clock.(*virtualClock); !ok {
				return nil, fmt.Errorf("federated: faults: a fault schedule requires the virtual clock")
			}
		}
		if ft, err = newFaultRun(opt.Async.Faults, len(s.Clients)); err != nil {
			return nil, err
		}
	}
	nPart := participantCount(len(s.Clients), opt.Participation)
	k := opt.Async.MinUpdates
	if k <= 0 || k > nPart {
		k = nPart
	}
	alpha := opt.Async.Staleness
	if alpha <= 0 {
		alpha = 1
	}
	clock := opt.Async.Clock
	if clock == nil {
		clock = newVirtualClock(opt.Async.Speed)
	}
	clock.reset(len(s.Clients))

	global := nn.Flatten(s.Clients[0].Model) // initial broadcast model
	res := &Result{BytesPerRound: k * dim * 8 * 2}
	noise := newNoiseStream(opt)

	var (
		grp      = parallel.NewGroup(parallel.Workers())
		inflight []*asyncJob
		buffer   []*asyncJob
		busy     = make([]bool, len(s.Clients))
		now      float64
		version  int
		seq      int
		// Per-client stale-resume state, used only under faults: the
		// broadcast (and its version) each client last received, so a
		// crashed client rejoins from the parameters it actually holds.
		lastBcast [][]float64
		lastVer   []int
	)
	if ft != nil {
		lastBcast = make([][]float64, len(s.Clients))
		lastVer = make([]int, len(s.Clients))
	}
	dispatch := func(ci int) {
		c := s.Clients[ci]
		w := float64(c.TrainSize())
		if w == 0 {
			w = 1
		}
		job := &asyncJob{
			client: ci, version: version, seq: seq, weight: w,
			done: make(chan struct{}),
		}
		clock.stamp(job, float64(opt.LocalEpochs)*w)
		seq++
		busy[ci] = true
		inflight = append(inflight, job)
		// Snapshot the broadcast: the server may commit new globals while
		// this client is still training on the old one.
		bcast := append([]float64(nil), global...)
		var atk Attack
		if ft != nil {
			if ft.stale[ci] && lastBcast[ci] != nil {
				// Post-crash rejoin: resume from the stale broadcast the
				// client last received; the old version makes its next
				// update pay the staleness discount naturally.
				bcast = lastBcast[ci]
				job.version = lastVer[ci]
			}
			ft.stale[ci] = false
			lastBcast[ci] = bcast
			lastVer[ci] = job.version
			atk = ft.attack[ci]
		}
		job.base = bcast
		grp.Go(func() error {
			defer func() {
				close(job.done)
				clock.completed(job)
			}()
			if err := nn.Unflatten(c.Model, bcast); err != nil {
				job.err = fmt.Errorf("federated: broadcast to client %d: %w", c.ID, err)
				return job.err
			}
			c.TrainLocal(opt.LocalEpochs)
			params := nn.Flatten(c.Model)
			if atk.Kind != AttackNone {
				params = atk.apply(bcast, params)
			}
			job.params = params
			return nil
		})
	}

	// Initial wave: one participation draw, like the synchronous round head.
	// Time-zero fault events (corrupt-from-start, down-at-start joins)
	// apply before anything is dispatched.
	if ft != nil {
		ft.process(0, nil)
	}
	perm := s.rng.Perm(len(s.Clients))
	sampled := perm[:nPart]
	for _, ci := range sampled {
		if ft != nil && ft.down[ci] {
			continue
		}
		dispatch(ci)
	}

	globals := make([][]float64, 0, opt.Rounds)
	var staleSum float64
	var staleCount int
	for commit := 0; commit < opt.Rounds; commit++ {
		fleetDead := false
		for len(buffer) < k {
			if ft != nil {
				if len(inflight) == 0 {
					// No arrival can happen. Commit whatever the faults let
					// arrive; with an empty buffer, idle forward to the next
					// scheduled event (a join may revive the fleet) or — out
					// of events — end the run early.
					if len(buffer) > 0 {
						break
					}
					if ft.next < len(ft.events) {
						now = ft.events[ft.next].Time
						clock.(*virtualClock).advance(now)
						ft.process(now, inflight)
						for _, ci := range sampled {
							if !busy[ci] && !ft.down[ci] {
								dispatch(ci)
							}
						}
						continue
					}
					fleetDead = true
					break
				}
				// Apply every event up to the next arrival before
				// harvesting it: a crash scheduled first loses that update.
				// Lost jobs stay in flight until harvested here, so their
				// clients free up for post-rejoin dispatch deterministically.
				ft.process(peekNextFinish(inflight), inflight)
			}
			job := clock.harvest(&inflight)
			if job.err != nil {
				grp.Wait() // let in-flight clients finish before unwinding
				return nil, job.err
			}
			now = job.finish
			busy[job.client] = false
			if job.lost {
				res.DroppedUpdates++
				res.DroppedWeight += job.weight
				continue
			}
			buffer = append(buffer, job)
		}
		if fleetDead {
			break
		}
		// Commit: aggregate the buffer in dispatch order (not arrival
		// order), so when the buffer spans one synchronous wave the
		// summation order — and hence the float result — matches Server.Run.
		sort.Slice(buffer, func(i, j int) bool { return buffer[i].seq < buffer[j].seq })
		updates := make([][]float64, 0, len(buffer)+1)
		weights := make([]float64, 0, len(buffer)+1)
		for _, u := range buffer {
			w := u.weight
			staleness := version - u.version
			if d := alpha / (1 + float64(staleness)); d != 1 {
				w *= d
			}
			staleSum += float64(staleness)
			staleCount++
			if opt.Robust.ClipNorm > 0 {
				if n := clipDelta(u.params, u.base, opt.Robust.ClipNorm); n > res.MaxUpdateNorm {
					res.MaxUpdateNorm = n
				}
			}
			updates = append(updates, u.params)
			weights = append(weights, w)
		}
		// Clients still training anchor the aggregate with their data mass
		// through the current global (their last incorporated state), so a
		// small buffer cannot yank the model toward one client. When every
		// participant has arrived (K = N) the anchor weight is zero and the
		// commit reduces to the exact synchronous weighted mean. The anchor
		// joins as a pseudo-update so every aggregator treats it uniformly;
		// under FedAvg the arithmetic is exactly the historical inline loop.
		var anchorW float64
		for _, u := range inflight {
			if !u.lost {
				anchorW += u.weight
			}
		}
		if anchorW > 0 {
			updates = append(updates, global)
			weights = append(weights, anchorW)
		}
		global = opt.Robust.aggregate(dim, updates, weights)
		if noise != nil {
			noise.add(global)
		}
		version++
		buffer = buffer[:0]
		res.RoundTime = append(res.RoundTime, now)
		globals = append(globals, global)
		meanStale := 0.0
		if staleCount > 0 {
			meanStale = staleSum / float64(staleCount)
		}
		recordCommit(staleCount, res.DroppedUpdates, meanStale)
		if commit+1 < opt.Rounds {
			// Re-broadcast to every idle sampled participant; busy clients
			// keep training on their stale snapshot. One permutation per
			// commit keeps server-RNG consumption aligned with Server.Run.
			perm := s.rng.Perm(len(s.Clients))
			sampled = perm[:nPart]
			for _, ci := range sampled {
				if busy[ci] {
					continue
				}
				if ft != nil && ft.down[ci] {
					continue
				}
				dispatch(ci)
			}
		}
	}
	// Stragglers past the last commit never contribute; wait them out so the
	// final evaluation below cannot race their model writes.
	if err := grp.Wait(); err != nil {
		return nil, err
	}
	res.DispatchedUpdates = seq
	res.CommittedUpdates = staleCount
	for _, job := range inflight {
		if job.lost {
			res.DroppedUpdates++
			res.DroppedWeight += job.weight
		} else {
			res.StragglerUpdates++
		}
	}
	if staleCount > 0 {
		res.MeanStaleness = staleSum / float64(staleCount)
	}
	for _, g := range globals {
		acc := evalGlobal(s.Clients, g)
		res.RoundAcc = append(res.RoundAcc, acc)
		telRoundAcc.Set(acc)
	}
	res.GlobalParams = global
	if err := finalize(s.Clients, global, opt, res); err != nil {
		return nil, err
	}
	return res, nil
}

// peekNextFinish returns the finish stamp of the job the virtual clock will
// harvest next — min (finish, seq), matching virtualClock.harvest — so fault
// events can be applied up to (and including) that instant first.
func peekNextFinish(inflight []*asyncJob) float64 {
	best := inflight[0]
	for _, j := range inflight[1:] {
		if j.finish < best.finish || (j.finish == best.finish && j.seq < best.seq) {
			best = j
		}
	}
	return best.finish
}
