// Package federated implements the multi-client collaborative training
// substrate of the AdaFGL paper: FedAvg orchestration (Eq. 3–4) over
// graph-bound client models, partial client participation, per-round
// convergence recording (Figs. 8/9/11) and communication accounting
// (Table VIII). Two aggregation engines share one protocol surface: Server
// is the synchronous reference (every round barriers on all participants)
// and AsyncServer is the buffered, staleness-aware asynchronous engine
// (commits after K of N updates, discounting late ones FedAsync-style,
// scheduled on a seeded virtual clock so runs stay bit-reproducible for any
// worker count). federated.Run dispatches between them via Options.Async.
package federated

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/parallel"
)

// Client is one federated participant holding a private subgraph and a
// local model bound to it. If the subgraph carries an inductive Eval graph
// (graph.MakeInductive), evaluation runs on the full graph with the trained
// parameters transplanted into a second model instance.
type Client struct {
	ID    int
	Graph *graph.Graph
	Model models.Model
	cfg   models.Config

	build     models.Builder
	evalModel models.Model
	evalRNG   *rand.Rand
}

// NewClient builds a client with its own model instance. The model is built
// on a private RNG stream derived from rng, never on rng itself: the model
// keeps drawing from its RNG at training time (dropout), so sharing one
// source across clients would make concurrent local training racy and its
// results dependent on scheduling order.
func NewClient(id int, g *graph.Graph, build models.Builder, cfg models.Config, rng *rand.Rand) *Client {
	modelRNG := rand.New(rand.NewSource(rng.Int63()))
	evalRNG := rand.New(rand.NewSource(rng.Int63()))
	return &Client{
		ID: id, Graph: g, Model: build(g, cfg, modelRNG), cfg: cfg,
		build: build, evalRNG: evalRNG,
	}
}

// TrainLocal runs epochs of local full-batch training (Eq. 3) and returns
// the last loss.
func (c *Client) TrainLocal(epochs int) float64 {
	opt := c.cfg.NewOptimizer()
	var loss float64
	for e := 0; e < epochs; e++ {
		loss = models.TrainEpoch(c.Model, opt, c.Graph.Labels, c.Graph.TrainMask)
	}
	return loss
}

// TrainSize returns the client's labeled-data size n_i used as the FedAvg
// aggregation weight.
func (c *Client) TrainSize() int { return graph.CountMask(c.Graph.TrainMask) }

// TestAccuracy evaluates the client's current model on its local test mask.
// Under the inductive protocol the trained parameters are transplanted into
// a model bound to the full evaluation graph, so unseen test nodes are
// classified with their true (previously hidden) neighbourhoods.
func (c *Client) TestAccuracy() float64 {
	if c.Graph.Eval == nil {
		return models.Accuracy(c.Model, c.Graph.Labels, c.Graph.TestMask)
	}
	if c.evalModel == nil {
		c.evalModel = c.build(c.Graph.Eval, c.cfg, c.evalRNG)
	}
	if err := nn.Unflatten(c.evalModel, nn.Flatten(c.Model)); err != nil {
		return 0
	}
	return models.Accuracy(c.evalModel, c.Graph.Eval.Labels, c.Graph.Eval.TestMask)
}

// TestSize returns the number of test nodes scoring this client (full graph
// under the inductive protocol).
func (c *Client) TestSize() int {
	if c.Graph.Eval != nil {
		return graph.CountMask(c.Graph.Eval.TestMask)
	}
	return graph.CountMask(c.Graph.TestMask)
}

// Options configures a federated run. The zero value is not usable (zero
// rounds, zero participation); start from DefaultOptions (the scale the
// runnable examples use) or PaperOptions (Sec. IV-A's full protocol) and
// override fields.
type Options struct {
	// Rounds is the number of aggregation rounds (server commits). Must be
	// >= 1. DefaultOptions: 30 (the examples' scale); PaperOptions: 100.
	Rounds int
	// LocalEpochs is the number of full-batch local training epochs each
	// participant runs per round (Eq. 3). 0 makes every round a parameter
	// no-op. DefaultOptions: 3; PaperOptions: 5.
	LocalEpochs int
	// Participation is the fraction of clients sampled uniformly (without
	// replacement) each round, in (0, 1]; at least one client always
	// participates. Both defaults use 1.0 (full participation, the paper's
	// main protocol; Fig. 11 sweeps it down to 0.2).
	Participation float64
	// LocalCorrection fine-tunes each client's copy of the final global
	// model locally for this many epochs before evaluation (the paper's
	// "local corrections for all federated implementations of GNNs").
	// 0 (both defaults) evaluates the broadcast model as-is.
	LocalCorrection int
	// Seed drives participation sampling and, through BuildClients, every
	// client's private RNG streams; two runs with equal Options and client
	// fleets are bit-identical. Both defaults use 1.
	Seed int64
	// Async selects and configures the asynchronous staleness-aware
	// aggregation engine (AsyncServer). The zero value keeps the synchronous
	// FedAvg reference path.
	Async AsyncOptions
	// Robust configures the robust-aggregation defences (update-norm
	// clipping, coordinate-median / trimmed-mean alternatives to FedAvg,
	// seeded DP noise) shared by both engines. The zero value keeps plain
	// FedAvg bit-identically.
	Robust RobustOptions
}

// DefaultOptions is the practical scale the runnable examples use
// (examples/quickstart runs it verbatim): 30 rounds of 3 local epochs with
// full participation converge on every laptop-scale synthetic dataset in
// seconds. Use PaperOptions for the full Sec. IV-A protocol.
func DefaultOptions() Options {
	return Options{Rounds: 30, LocalEpochs: 3, Participation: 1.0, LocalCorrection: 0, Seed: 1}
}

// PaperOptions mirrors Sec. IV-A: 100 rounds, 5 local epochs, full
// participation.
func PaperOptions() Options {
	return Options{Rounds: 100, LocalEpochs: 5, Participation: 1.0, LocalCorrection: 0, Seed: 1}
}

// Result summarises a federated run.
type Result struct {
	// TestAcc is the train-size-weighted mean client test accuracy of the
	// final (optionally locally corrected) models.
	TestAcc float64
	// PerClient holds each client's final test accuracy (Fig. 2(d)).
	PerClient []float64
	// RoundAcc records the weighted test accuracy of the global model after
	// every aggregation round (Figs. 8/9).
	RoundAcc []float64
	// GlobalParams is the final aggregated model — AdaFGL's federated
	// knowledge extractor.
	GlobalParams []float64
	// BytesPerRound is the communication volume of one round: every
	// participating client uploads and receives one parameter vector
	// (8 bytes per float64). Under the async engine a round commits after
	// MinUpdates uploads, so the volume scales with K instead of the
	// participant count.
	BytesPerRound int
	// RoundTime is the simulated wall-clock (SpeedModel time units) at which
	// each aggregation round committed. Filled only by the async engine; the
	// synchronous path leaves it nil. Comparing an async run's RoundTime
	// against a MinUpdates=N run of the same fleet gives the
	// convergence-vs-wall-clock tradeoff directly.
	RoundTime []float64
	// MeanStaleness is the mean staleness, in committed rounds, of every
	// update aggregated during the run. Filled only by the async engine;
	// 0 whenever commits wait for all participants (MinUpdates = N).
	MeanStaleness float64
	// DispatchedUpdates counts every local-training job the server
	// dispatched. The data-mass ledger always balances exactly:
	// DispatchedUpdates = CommittedUpdates + DroppedUpdates +
	// StragglerUpdates.
	DispatchedUpdates int
	// CommittedUpdates counts the updates that reached an aggregate.
	CommittedUpdates int
	// DroppedUpdates counts updates lost to crash faults (dispatched but
	// never aggregated). Always 0 without a fault schedule.
	DroppedUpdates int
	// DroppedWeight is the total data mass n_i of the dropped updates.
	DroppedWeight float64
	// StragglerUpdates counts updates still in flight when the run's last
	// round committed (dispatched, neither aggregated nor lost).
	StragglerUpdates int
	// MaxUpdateNorm is the largest per-update delta norm actually committed
	// when Options.Robust.ClipNorm > 0 (so it never exceeds ClipNorm);
	// 0 when clipping is off.
	MaxUpdateNorm float64
}

// Server coordinates FedAvg over a set of clients.
type Server struct {
	Clients []*Client
	rng     *rand.Rand
}

// NewServer wraps the clients; the rng drives participation sampling.
func NewServer(clients []*Client, seed int64) *Server {
	return &Server{Clients: clients, rng: rand.New(rand.NewSource(seed))}
}

// checkClients validates a fleet for aggregation (non-empty, uniform
// parameter dimension) and returns the shared dimension.
func checkClients(clients []*Client) (int, error) {
	if len(clients) == 0 {
		return 0, fmt.Errorf("federated: no clients")
	}
	dim := len(nn.Flatten(clients[0].Model))
	for _, c := range clients[1:] {
		if len(nn.Flatten(c.Model)) != dim {
			return 0, fmt.Errorf("federated: client %d parameter dim mismatch", c.ID)
		}
	}
	return dim, nil
}

// participantCount resolves Options.Participation to a per-round client
// count (at least one).
func participantCount(n int, participation float64) int {
	nPart := int(float64(n) * participation)
	if nPart < 1 {
		nPart = 1
	}
	return nPart
}

// Run executes FedAvg per Eq. (4): broadcast, parallel local training,
// data-size-weighted aggregation; repeated for opt.Rounds.
func (s *Server) Run(opt Options) (*Result, error) {
	dim, err := checkClients(s.Clients)
	if err != nil {
		return nil, err
	}
	if err := opt.Robust.validate(); err != nil {
		return nil, err
	}
	global := nn.Flatten(s.Clients[0].Model) // initial broadcast model
	res := &Result{}
	noise := newNoiseStream(opt)

	nPart := participantCount(len(s.Clients), opt.Participation)
	res.BytesPerRound = nPart * dim * 8 * 2 // upload + download

	// Scratch for the parallel local-training fan-out: each participant's
	// slot is written by exactly one goroutine and reduced sequentially in
	// participant order, so the aggregate is bit-identical for any worker
	// count. Every client only touches its own model, optimizer and RNGs.
	locals := make([][]float64, len(s.Clients))
	weights := make([]float64, len(s.Clients))

	for round := 0; round < opt.Rounds; round++ {
		perm := s.rng.Perm(len(s.Clients))
		participants := perm[:nPart]

		grp := parallel.NewGroup(parallel.Workers())
		for slot, ci := range participants {
			grp.Go(func() error {
				c := s.Clients[ci]
				if err := nn.Unflatten(c.Model, global); err != nil {
					return fmt.Errorf("federated: broadcast to client %d: %w", c.ID, err)
				}
				c.TrainLocal(opt.LocalEpochs)
				w := float64(c.TrainSize())
				if w == 0 {
					w = 1
				}
				locals[slot] = nn.Flatten(c.Model)
				weights[slot] = w
				return nil
			})
		}
		if err := grp.Wait(); err != nil {
			return nil, err
		}

		// Robust defences, in fixed order: clip each update's delta against
		// the round's broadcast, aggregate with the selected rule (the
		// FedAvg default reproduces the historical inline loop bit for
		// bit), then add the seeded DP noise.
		if opt.Robust.ClipNorm > 0 {
			for slot := range participants {
				if n := clipDelta(locals[slot], global, opt.Robust.ClipNorm); n > res.MaxUpdateNorm {
					res.MaxUpdateNorm = n
				}
			}
		}
		global = opt.Robust.aggregate(dim, locals[:nPart], weights[:nPart])
		if noise != nil {
			noise.add(global)
		}
		acc := evalGlobal(s.Clients, global)
		res.RoundAcc = append(res.RoundAcc, acc)
		recordCommit((round+1)*nPart, 0, 0)
		telRoundAcc.Set(acc)
	}
	res.DispatchedUpdates = nPart * opt.Rounds
	res.CommittedUpdates = res.DispatchedUpdates
	res.GlobalParams = global
	if err := finalize(s.Clients, global, opt, res); err != nil {
		return nil, err
	}
	return res, nil
}

// finalize broadcasts the final global parameters, optionally applies local
// correction, and fills res.PerClient/res.TestAcc with the test-size-weighted
// evaluation — fanned out per client with a sequential weighted reduction.
// Shared by the synchronous and asynchronous engines so the evaluation
// protocol cannot drift between them.
func finalize(clients []*Client, global []float64, opt Options, res *Result) error {
	accs := make([]float64, len(clients))
	grp := parallel.NewGroup(parallel.Workers())
	for ci, c := range clients {
		grp.Go(func() error {
			if err := nn.Unflatten(c.Model, global); err != nil {
				return err
			}
			if opt.LocalCorrection > 0 {
				c.TrainLocal(opt.LocalCorrection)
			}
			accs[ci] = c.TestAccuracy()
			return nil
		})
	}
	if err := grp.Wait(); err != nil {
		return err
	}
	var weighted, total float64
	for ci, c := range clients {
		res.PerClient = append(res.PerClient, accs[ci])
		w := float64(c.TestSize())
		weighted += accs[ci] * w
		total += w
	}
	if total > 0 {
		res.TestAcc = weighted / total
	}
	return nil
}

// evalGlobal loads the global parameters into every client and returns the
// test-size-weighted accuracy.
func evalGlobal(clients []*Client, global []float64) float64 {
	accs := make([]float64, len(clients))
	var failed atomic.Bool
	grp := parallel.NewGroup(parallel.Workers())
	for ci, c := range clients {
		grp.Go(func() error {
			if failed.Load() {
				return nil // another client already sank the round; skip the work
			}
			if err := nn.Unflatten(c.Model, global); err != nil {
				failed.Store(true) // evalGlobal is best-effort: report 0
				return nil
			}
			accs[ci] = c.TestAccuracy()
			return nil
		})
	}
	grp.Wait()
	if failed.Load() {
		return 0
	}
	var weighted, total float64
	for ci, c := range clients {
		w := float64(c.TestSize())
		weighted += accs[ci] * w
		total += w
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// Run executes the engine opt selects on a fresh server over clients: the
// synchronous FedAvg reference by default, the asynchronous staleness-aware
// engine when opt.Async.Enabled. seed drives participation sampling either
// way, so the two engines consume server randomness identically.
func Run(clients []*Client, seed int64, opt Options) (*Result, error) {
	if opt.Async.Enabled {
		return NewAsyncServer(clients, seed).Run(opt)
	}
	return NewServer(clients, seed).Run(opt)
}

// BuildClients constructs one client per subgraph with a shared architecture.
func BuildClients(subgraphs []*graph.Graph, build models.Builder, cfg models.Config, seed int64) []*Client {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Client, len(subgraphs))
	for i, g := range subgraphs {
		out[i] = NewClient(i, g, build, cfg, rng)
	}
	return out
}
