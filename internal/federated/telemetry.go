package federated

// Telemetry families for live training runs. Everything here is
// observation-only: gauges and counters are written from values the engines
// already compute, never read back, so a scrape can watch a long federated
// run converge without perturbing its bit-exact result.

import "repro/internal/telemetry"

var (
	// telRounds counts committed aggregation rounds across all runs in the
	// process (sync rounds and async commits alike).
	telRounds = telemetry.Default().Counter(
		"adafgl_federated_rounds_total",
		"Committed federated aggregation rounds (sync rounds + async commits).")
	// telRoundAcc tracks the most recent round's global test accuracy.
	telRoundAcc = telemetry.Default().Gauge(
		"adafgl_federated_round_accuracy",
		"Global test accuracy after the most recent committed round.")
	// telCommitted / telDropped / telStragglers mirror the running run's
	// update accounting.
	telCommitted = telemetry.Default().Gauge(
		"adafgl_federated_committed_updates",
		"Client updates committed into the global model by the current run.")
	telDropped = telemetry.Default().Gauge(
		"adafgl_federated_dropped_updates",
		"Client updates lost to faults or attacks in the current run.")
	// telStaleness tracks the running mean staleness (in versions) of
	// committed async updates; 0 for synchronous runs.
	telStaleness = telemetry.Default().Gauge(
		"adafgl_federated_mean_staleness",
		"Mean staleness (global versions behind) of committed updates.")
)

// recordCommit accounts one committed aggregation round: the cumulative
// round counter plus the run-progress gauges.
func recordCommit(committed, dropped int, meanStale float64) {
	telRounds.Inc()
	telCommitted.Set(float64(committed))
	telDropped.Set(float64(dropped))
	telStaleness.Set(meanStale)
}
