package federated

import (
	"math"
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/parallel"
)

func TestFaultsValidateRejectsBadSchedules(t *testing.T) {
	clients := coraClients(t, 2, 51)
	bad := []Faults{
		{DownAtStart: []int{-1}},
		{DownAtStart: []int{2}},
		{Events: []FaultEvent{{Time: -1, Client: 0, Kind: FaultCrash}}},
		{Events: []FaultEvent{{Time: math.NaN(), Client: 0, Kind: FaultCrash}}},
		{Events: []FaultEvent{{Time: math.Inf(1), Client: 0, Kind: FaultCrash}}},
		{Events: []FaultEvent{{Time: 1, Client: 5, Kind: FaultCrash}}},
		{Events: []FaultEvent{{Time: 1, Client: 0, Kind: FaultKind(42)}}},
		{Events: []FaultEvent{{Time: 1, Client: 0, Kind: FaultCorrupt, Attack: Attack{Kind: AttackKind(9)}}}},
		{Events: []FaultEvent{{Time: 1, Client: 0, Kind: FaultCorrupt, Attack: Attack{Kind: AttackScale, Factor: math.Inf(1)}}}},
	}
	for _, f := range bad {
		o := quickOpts()
		o.Rounds = 1
		o.Async = AsyncOptions{Enabled: true, Faults: f}
		if _, err := Run(clients, 1, o); err == nil || !strings.Contains(err.Error(), "federated: faults:") {
			t.Fatalf("engine accepted bad fault schedule %+v (err=%v)", f, err)
		}
	}
}

func TestFaultsRequireVirtualClock(t *testing.T) {
	clients := coraClients(t, 2, 52)
	o := quickOpts()
	o.Rounds = 1
	o.Async = AsyncOptions{Enabled: true, Clock: NewWallClock(),
		Faults: Faults{Events: []FaultEvent{{Time: 1, Client: 0, Kind: FaultLeave}}}}
	if _, err := Run(clients, 1, o); err == nil || !strings.Contains(err.Error(), "virtual clock") {
		t.Fatalf("wall clock + faults must be rejected, got %v", err)
	}
}

func TestAttackApply(t *testing.T) {
	base := []float64{1, 2}
	local := []float64{2, 0} // delta (+1, -2)
	if got := (Attack{Kind: AttackSignFlip}).apply(base, local); got[0] != 0 || got[1] != 4 {
		t.Fatalf("signflip = %v, want [0 4]", got)
	}
	if got := (Attack{Kind: AttackScale, Factor: 3}).apply(base, local); got[0] != 4 || got[1] != -4 {
		t.Fatalf("scale×3 = %v, want [4 -4]", got)
	}
	if got := (Attack{}).apply(base, local); &got[0] != &local[0] {
		t.Fatal("AttackNone must pass the update through unchanged")
	}
}

// churnOpts builds a schedule exercising every fault kind on real training:
// an early crash that loses the in-flight initial update, a rejoin, a late
// join from DownAtStart, a graceful leave and a corrupt arm. Event times are
// calibrated to the fleet's nominal commit period (epochs × slowest client)
// so they land mid-run for any subgraph split.
func churnOpts(clients []*Client, rounds int) Options {
	maxW := 1
	for _, c := range clients {
		if s := c.TrainSize(); s > maxW {
			maxW = s
		}
	}
	// One commit period is at most epochs × maxW × slowest slowdown × max
	// jitter; events scheduled in units of it land in the first few rounds.
	unit := 2 * float64(maxW) * 2 * 1.2
	o := DefaultOptions()
	o.Rounds = rounds
	o.LocalEpochs = 2
	o.Async = AsyncOptions{
		Enabled:   true,
		Staleness: 0.6,
		Speed:     &SpeedModel{Slowdown: []float64{1, 1.5, 2, 1}, Jitter: 0.2, Seed: 9},
		Faults: Faults{
			DownAtStart: []int{3},
			Events: []FaultEvent{
				{Time: 0, Client: 2, Kind: FaultCorrupt, Attack: Attack{Kind: AttackSignFlip}},
				{Time: 1, Client: 0, Kind: FaultCrash}, // loses client 0's in-flight initial update
				{Time: 0.5 * unit, Client: 0, Kind: FaultJoin},
				{Time: 1 * unit, Client: 3, Kind: FaultJoin},
				{Time: 2 * unit, Client: 1, Kind: FaultLeave},
			},
		},
	}
	return o
}

// The data-mass ledger must balance exactly on any faulted run: every
// dispatched update is committed, dropped by a crash, or still in flight at
// the end — nothing disappears. This is the crash-and-rejoin conservation
// property of the chaos suite.
func TestFaultLedgerBalancesUnderChurn(t *testing.T) {
	clients := coraClients(t, 4, 61)
	res, err := Run(clients, 62, churnOpts(clients, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.DispatchedUpdates != res.CommittedUpdates+res.DroppedUpdates+res.StragglerUpdates {
		t.Fatalf("ledger out of balance: dispatched %d != committed %d + dropped %d + straggler %d",
			res.DispatchedUpdates, res.CommittedUpdates, res.DroppedUpdates, res.StragglerUpdates)
	}
	if res.DroppedUpdates < 1 {
		t.Fatalf("the scheduled crash must lose at least one in-flight update, dropped = %d", res.DroppedUpdates)
	}
	if res.DroppedWeight <= 0 {
		t.Fatalf("dropped updates must carry data mass, DroppedWeight = %v", res.DroppedWeight)
	}
	if len(res.RoundAcc) != 8 {
		t.Fatalf("fleet survives this schedule; want all 8 commits, got %d", len(res.RoundAcc))
	}
}

// Every faulted schedule must be a pure function of the seed: bit-identical
// across re-runs and across worker counts (the chaos determinism property,
// run under -race in CI).
func TestFaultedRunDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *Result {
		old := parallel.Workers()
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		clients := coraClients(t, 4, 71)
		res, err := Run(clients, 72, churnOpts(clients, 6))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if len(got.GlobalParams) != len(ref.GlobalParams) {
			t.Fatalf("workers=%d: param dim drifted", workers)
		}
		for i := range ref.GlobalParams {
			if got.GlobalParams[i] != ref.GlobalParams[i] {
				t.Fatalf("workers=%d: GlobalParams[%d] %v != %v", workers, i, got.GlobalParams[i], ref.GlobalParams[i])
			}
		}
		if len(got.RoundTime) != len(ref.RoundTime) {
			t.Fatalf("workers=%d: commit count drifted", workers)
		}
		for i := range ref.RoundTime {
			if got.RoundTime[i] != ref.RoundTime[i] {
				t.Fatalf("workers=%d: RoundTime[%d] %v != %v", workers, i, got.RoundTime[i], ref.RoundTime[i])
			}
		}
		if got.DispatchedUpdates != ref.DispatchedUpdates || got.DroppedUpdates != ref.DroppedUpdates ||
			got.StragglerUpdates != ref.StragglerUpdates || got.MeanStaleness != ref.MeanStaleness {
			t.Fatalf("workers=%d: accounting drifted: %+v vs %+v", workers, got, ref)
		}
	}
}

// A crash-and-rejoin client resumes from the stale broadcast it last
// received, so its first post-rejoin update pays the staleness discount:
// under a full barrier (otherwise staleness 0 throughout) the run's mean
// staleness must turn positive.
func TestCrashRejoinResumesStale(t *testing.T) {
	run := func(faults Faults) *Result {
		clients := coraClients(t, 3, 81)
		o := DefaultOptions()
		o.Rounds = 6
		o.LocalEpochs = 2
		o.Async = AsyncOptions{Enabled: true, Faults: faults}
		res, err := Run(clients, 82, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	steady := run(Faults{})
	if steady.MeanStaleness != 0 {
		t.Fatalf("full-barrier steady run must have zero staleness, got %v", steady.MeanStaleness)
	}
	// Crash at t=1 is guaranteed to catch client 1's initial dispatch in
	// flight (every duration is epochs × train size ≥ 2); the join right
	// after brings it back at the next commit boundary with stale params.
	crashed := run(Faults{Events: []FaultEvent{
		{Time: 1, Client: 1, Kind: FaultCrash},
		{Time: 2, Client: 1, Kind: FaultJoin},
	}})
	if crashed.DroppedUpdates != 1 {
		t.Fatalf("want exactly the crashed in-flight update dropped, got %d", crashed.DroppedUpdates)
	}
	if crashed.MeanStaleness <= 0 {
		t.Fatalf("rejoining from stale params must pay a staleness discount, mean staleness = %v", crashed.MeanStaleness)
	}
}

// A graceful leave delivers the in-flight update (nothing dropped) but stops
// re-dispatch, shrinking the dispatch count versus the steady run.
func TestLeaveDeliversInFlightButStopsRedispatch(t *testing.T) {
	run := func(faults Faults) *Result {
		clients := coraClients(t, 3, 91)
		o := DefaultOptions()
		o.Rounds = 5
		o.LocalEpochs = 2
		o.Async = AsyncOptions{Enabled: true, Faults: faults}
		res, err := Run(clients, 92, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	steady := run(Faults{})
	left := run(Faults{Events: []FaultEvent{{Time: 100, Client: 2, Kind: FaultLeave}}})
	if left.DroppedUpdates != 0 {
		t.Fatalf("a graceful leave must not drop updates, got %d", left.DroppedUpdates)
	}
	if left.DispatchedUpdates >= steady.DispatchedUpdates {
		t.Fatalf("left client kept being dispatched: %d >= steady %d", left.DispatchedUpdates, steady.DispatchedUpdates)
	}
	if len(left.RoundAcc) != 5 {
		t.Fatalf("two live clients still commit every round, got %d of 5", len(left.RoundAcc))
	}
}

// When every client leaves, the run ends early with the rounds committed so
// far instead of deadlocking, and the result still finalizes.
func TestFleetDeathEndsRunEarly(t *testing.T) {
	clients := coraClients(t, 2, 101)
	o := DefaultOptions()
	o.Rounds = 10
	o.LocalEpochs = 1
	o.Async = AsyncOptions{Enabled: true, Faults: Faults{Events: []FaultEvent{
		{Time: 1, Client: 0, Kind: FaultLeave},
		{Time: 1, Client: 1, Kind: FaultLeave},
	}}}
	res, err := Run(clients, 102, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundAcc) >= 10 {
		t.Fatalf("dead fleet must end early, committed %d rounds", len(res.RoundAcc))
	}
	if res.GlobalParams == nil || len(res.PerClient) != 2 {
		t.Fatal("early-ended run must still finalize")
	}
	if res.DispatchedUpdates != res.CommittedUpdates+res.DroppedUpdates+res.StragglerUpdates {
		t.Fatal("ledger out of balance on early-ended run")
	}
}

// A client joining mid-run from DownAtStart starts contributing: its
// dispatch count exceeds the waves where it was down, and zero-epoch echoes
// stay conserved through the whole churn (the parameter-level conservation
// arm of the chaos suite).
func TestZeroEpochConservationUnderFaults(t *testing.T) {
	clients := coraClients(t, 3, 111)
	before := append([]float64(nil), nn.Flatten(clients[0].Model)...)
	o := DefaultOptions()
	o.Rounds = 4
	o.LocalEpochs = 0 // echo updates: any weighted mix must conserve params
	o.Async = AsyncOptions{Enabled: true, MinUpdates: 1, Staleness: 0.5,
		Faults: Faults{
			DownAtStart: []int{2},
			Events: []FaultEvent{
				{Time: 0, Client: 2, Kind: FaultJoin},
				{Time: 0, Client: 1, Kind: FaultCorrupt, Attack: Attack{Kind: AttackScale, Factor: 25}},
			},
		}}
	res, err := Run(clients, 112, o)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.GlobalParams {
		if math.Abs(v-before[i]) > 1e-12 {
			t.Fatalf("zero-epoch churn must conserve parameters: [%d] %v != %v", i, v, before[i])
		}
	}
}

// A total blackout (every client crashes) followed by a later join must not
// deadlock: the server idles forward on the virtual clock to the join event
// and the revived fleet finishes every round.
func TestBlackoutThenRejoinRevivesFleet(t *testing.T) {
	clients := coraClients(t, 2, 131)
	o := DefaultOptions()
	o.Rounds = 4
	o.LocalEpochs = 1
	o.Async = AsyncOptions{Enabled: true, Faults: Faults{Events: []FaultEvent{
		{Time: 1, Client: 0, Kind: FaultCrash},
		{Time: 1, Client: 1, Kind: FaultCrash},
		{Time: 1e6, Client: 0, Kind: FaultJoin},
		{Time: 1e6, Client: 1, Kind: FaultJoin},
	}}}
	res, err := Run(clients, 132, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundAcc) != 4 {
		t.Fatalf("revived fleet must commit all 4 rounds, got %d", len(res.RoundAcc))
	}
	if res.DroppedUpdates != 2 {
		t.Fatalf("both initial updates crash away, dropped = %d", res.DroppedUpdates)
	}
	if res.RoundTime[0] < 1e6 {
		t.Fatalf("first commit must happen after the blackout ends, at %v", res.RoundTime[0])
	}
}

func TestFaultAndAttackKindStrings(t *testing.T) {
	if FaultCrash.String() != "crash" || FaultLeave.String() != "leave" ||
		FaultJoin.String() != "join" || FaultCorrupt.String() != "corrupt" {
		t.Fatal("fault kind names drifted")
	}
	if AttackNone.String() != "none" || AttackSignFlip.String() != "signflip" || AttackScale.String() != "scale" {
		t.Fatal("attack kind names drifted")
	}
	if !strings.Contains(FaultKind(77).String(), "77") || !strings.Contains(AttackKind(77).String(), "77") {
		t.Fatal("unknown kinds must print their raw value")
	}
}

func TestPaperOptionsProtocol(t *testing.T) {
	o := PaperOptions()
	if o.Rounds != 100 || o.LocalEpochs != 5 || o.Participation != 1.0 {
		t.Fatalf("PaperOptions drifted from Sec. IV-A: %+v", o)
	}
}

// The steady schedule through the fault layer must not exist: an empty
// Faults keeps the engine on its historical code path, bit-identical to a
// run without the field set (regression guard for the Options plumbing).
func TestEmptyFaultsBitIdenticalToLegacyPath(t *testing.T) {
	run := func(o Options) *Result {
		clients := coraClients(t, 3, 121)
		res, err := Run(clients, 122, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	o := quickOpts()
	o.Rounds = 5
	o.Async = AsyncOptions{Enabled: true, MinUpdates: 2,
		Speed: &SpeedModel{Slowdown: []float64{1, 2, 3}, Seed: 3}}
	a := run(o)
	o.Async.Faults = Faults{} // explicit zero value
	b := run(o)
	for i := range a.GlobalParams {
		if a.GlobalParams[i] != b.GlobalParams[i] {
			t.Fatalf("empty fault schedule changed the run at [%d]", i)
		}
	}
}
