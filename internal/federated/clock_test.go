package federated

import (
	"testing"
)

// TestAsyncWallClockRuns exercises the real-time duration source: the run
// must complete, fill RoundTime with nondecreasing nonnegative wall seconds,
// and produce a sane evaluation. Wall-clock schedules are not reproducible,
// so only structural properties are asserted.
func TestAsyncWallClockRuns(t *testing.T) {
	o := asyncOpts(2, nil)
	o.Async.Clock = NewWallClock()
	res, err := NewAsyncServer(coraClients(t, 4, 11), 12).Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundTime) != o.Rounds {
		t.Fatalf("RoundTime entries: got %d, want %d", len(res.RoundTime), o.Rounds)
	}
	prev := 0.0
	for i, tm := range res.RoundTime {
		if tm < prev {
			t.Fatalf("RoundTime[%d] = %v goes backwards (prev %v)", i, tm, prev)
		}
		prev = tm
	}
	if res.TestAcc < 0 || res.TestAcc > 1 {
		t.Fatalf("TestAcc out of range: %v", res.TestAcc)
	}
	if len(res.RoundAcc) != o.Rounds {
		t.Fatalf("RoundAcc entries: got %d, want %d", len(res.RoundAcc), o.Rounds)
	}
}

// TestAsyncWallClockFullBarrier runs the wall clock at MinUpdates = N. The
// commit schedule is real-time ordered, but with a full barrier every commit
// aggregates exactly the sampled wave, so the result must still match the
// synchronous reference bit for bit (aggregation order is dispatch order,
// not arrival order).
func TestAsyncWallClockFullBarrier(t *testing.T) {
	o := asyncOpts(0, nil)
	sync, err := NewServer(coraClients(t, 3, 21), 22).Run(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Async.Clock = NewWallClock()
	wall, err := NewAsyncServer(coraClients(t, 3, 21), 22).Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sync.GlobalParams {
		if wall.GlobalParams[i] != sync.GlobalParams[i] {
			t.Fatalf("GlobalParams[%d]: wall %v != sync %v", i, wall.GlobalParams[i], sync.GlobalParams[i])
		}
	}
	if wall.TestAcc != sync.TestAcc {
		t.Fatalf("TestAcc: wall %v != sync %v", wall.TestAcc, sync.TestAcc)
	}
}

// TestVirtualClockDefault pins the refactoring contract: leaving
// AsyncOptions.Clock nil must reproduce the seeded virtual clock engine
// exactly (same schedule, same RoundTime) as passing the equivalent
// explicitly-constructed virtual clock.
func TestVirtualClockDefault(t *testing.T) {
	speed := skewedSpeed()
	o := asyncOpts(2, speed)
	a, err := NewAsyncServer(coraClients(t, 4, 51), 52).Run(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Async.Clock = newVirtualClock(speed)
	b, err := NewAsyncServer(coraClients(t, 4, 51), 52).Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.RoundTime {
		if a.RoundTime[i] != b.RoundTime[i] {
			t.Fatalf("RoundTime[%d]: default %v != explicit %v", i, a.RoundTime[i], b.RoundTime[i])
		}
	}
	for i := range a.GlobalParams {
		if a.GlobalParams[i] != b.GlobalParams[i] {
			t.Fatalf("GlobalParams[%d] differ", i)
		}
	}
}
