package federated

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/partition"
)

func coraClients(t testing.TB, k int, seed int64) []*Client {
	t.Helper()
	s, err := datasets.ByName("Cora")
	if err != nil {
		t.Fatal(err)
	}
	g := datasets.GenerateScaled(s, 0.3, seed)
	cd := partition.CommunitySplit(g, k, rand.New(rand.NewSource(seed)))
	cfg := models.DefaultConfig()
	cfg.Hidden = 16
	cfg.Dropout = 0
	return BuildClients(cd.Subgraphs, models.Registry["GCN"], cfg, seed)
}

func quickOpts() Options {
	o := DefaultOptions()
	o.Rounds = 15
	o.LocalEpochs = 2
	return o
}

func TestFedAvgImprovesOverRounds(t *testing.T) {
	clients := coraClients(t, 4, 1)
	srv := NewServer(clients, 2)
	res, err := srv.Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundAcc) != 15 {
		t.Fatalf("RoundAcc len = %d, want 15", len(res.RoundAcc))
	}
	early := res.RoundAcc[0]
	late := res.RoundAcc[len(res.RoundAcc)-1]
	if late <= early {
		t.Fatalf("federated training did not improve: %.3f -> %.3f", early, late)
	}
	if res.TestAcc < 0.5 {
		t.Fatalf("final weighted accuracy %.3f too low", res.TestAcc)
	}
}

func TestFedAvgAggregationIsWeightedMean(t *testing.T) {
	clients := coraClients(t, 3, 3)
	// One round, zero local epochs: aggregation of identical broadcast
	// models must reproduce the broadcast exactly (weight conservation).
	srv := NewServer(clients, 4)
	o := DefaultOptions()
	o.Rounds = 1
	o.LocalEpochs = 0
	before := nn.Flatten(clients[0].Model)
	res, err := srv.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.GlobalParams {
		if math.Abs(v-before[i]) > 1e-12 {
			t.Fatal("zero-epoch FedAvg must be a no-op on parameters")
		}
	}
}

func TestPartialParticipation(t *testing.T) {
	clients := coraClients(t, 5, 5)
	srv := NewServer(clients, 6)
	o := quickOpts()
	o.Participation = 0.4 // 2 of 5 clients per round
	res, err := srv.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	full := coraClients(t, 5, 5)
	srvFull := NewServer(full, 6)
	resFull, err := srvFull.Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Partial participation halves the per-round communication.
	if res.BytesPerRound >= resFull.BytesPerRound {
		t.Fatalf("partial participation bytes %d !< full %d", res.BytesPerRound, resFull.BytesPerRound)
	}
	if len(res.PerClient) != 5 {
		t.Fatal("all clients must be evaluated at the end")
	}
}

func TestLocalCorrectionImprovesClients(t *testing.T) {
	// Averaged over several seeds so the assertion tracks the property
	// (correction is not harmful) rather than one lucky draw.
	var meanBase, meanCorr float64
	seeds := []int64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		base := coraClients(t, 4, seed)
		srv := NewServer(base, seed+1)
		o := quickOpts()
		res, err := srv.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		corrected := coraClients(t, 4, seed)
		srv2 := NewServer(corrected, seed+1)
		o.LocalCorrection = 10
		res2, err := srv2.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		meanBase += res.TestAcc
		meanCorr += res2.TestAcc
	}
	meanBase /= float64(len(seeds))
	meanCorr /= float64(len(seeds))
	if meanCorr < meanBase-0.05 {
		t.Fatalf("local correction hurt on average: %.3f -> %.3f", meanBase, meanCorr)
	}
}

func TestNoClientsError(t *testing.T) {
	srv := NewServer(nil, 1)
	if _, err := srv.Run(DefaultOptions()); err == nil {
		t.Fatal("empty server must error")
	}
}

func TestTrainSizeWeights(t *testing.T) {
	clients := coraClients(t, 3, 9)
	for _, c := range clients {
		if c.TrainSize() <= 0 {
			t.Fatalf("client %d has no training data", c.ID)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *Result {
		clients := coraClients(t, 3, 11)
		srv := NewServer(clients, 12)
		res, err := srv.Run(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if math.Abs(a.TestAcc-b.TestAcc) > 1e-12 {
		t.Fatalf("same seeds must reproduce: %.6f vs %.6f", a.TestAcc, b.TestAcc)
	}
	for i := range a.RoundAcc {
		if a.RoundAcc[i] != b.RoundAcc[i] {
			t.Fatal("round curves differ under same seed")
		}
	}
}

func TestFederatedBeatsIsolatedTraining(t *testing.T) {
	// The core FL premise (Sec. I): collaborative training should not lose
	// badly to isolated local training on small homophilous subgraphs.
	clients := coraClients(t, 6, 13)
	srv := NewServer(clients, 14)
	o := quickOpts()
	o.Rounds = 30
	res, err := srv.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	iso := coraClients(t, 6, 13)
	var weighted, total float64
	for _, c := range iso {
		c.TrainLocal(60) // same gradient budget
		w := 1.0
		weighted += c.TestAccuracy() * w
		total += w
	}
	isoAcc := weighted / total
	if res.TestAcc < isoAcc-0.1 {
		t.Fatalf("FedAvg %.3f lost badly to isolated %.3f on homophilous community split", res.TestAcc, isoAcc)
	}
}

func BenchmarkFedAvgRound(b *testing.B) {
	clients := coraClients(b, 5, 1)
	srv := NewServer(clients, 2)
	o := DefaultOptions()
	o.Rounds = 1
	o.LocalEpochs = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Run(o); err != nil {
			b.Fatal(err)
		}
	}
}
