package federated

import (
	"fmt"
	"math"
	"sort"
)

// FaultKind classifies one scheduled fault event on the async engine's
// virtual timeline.
type FaultKind int

const (
	// FaultCrash takes the client down at Time and loses its in-flight
	// update (the trained parameters never reach the server). When the
	// client later rejoins it resumes from the stale broadcast it last
	// received, with the matching old model version, so the FedAsync
	// staleness discount applies to its first post-rejoin update naturally.
	FaultCrash FaultKind = iota
	// FaultLeave takes the client down gracefully at Time: an in-flight
	// update still arrives and aggregates, but the client is not
	// re-dispatched until a FaultJoin brings it back.
	FaultLeave
	// FaultJoin brings the client (back) up at Time. It is folded into the
	// schedule at the next commit boundary: the server re-dispatches joined
	// clients together with that commit's idle participants.
	FaultJoin
	// FaultCorrupt installs Attack on the client from Time on: every update
	// it uploads afterwards is corrupted before it leaves the client. An
	// AttackNone attack clears a previously installed one.
	FaultCorrupt
)

// String names the fault kind for logs and error messages.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultLeave:
		return "leave"
	case FaultJoin:
		return "join"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// AttackKind classifies how a byzantine client corrupts its uploads.
type AttackKind int

const (
	// AttackNone uploads honestly (and, on a FaultCorrupt event, clears a
	// previously installed attack).
	AttackNone AttackKind = iota
	// AttackSignFlip uploads base − (local − base): the honest update's
	// delta with its sign flipped, the classical gradient-reversal attacker.
	AttackSignFlip
	// AttackScale uploads base + Factor·(local − base): the honest delta
	// blown up (or shrunk) by Factor, the attacker norm clipping exists to
	// bound.
	AttackScale
)

// String names the attack kind for logs and error messages.
func (k AttackKind) String() string {
	switch k {
	case AttackNone:
		return "none"
	case AttackSignFlip:
		return "signflip"
	case AttackScale:
		return "scale"
	}
	return fmt.Sprintf("AttackKind(%d)", int(k))
}

// Attack describes a byzantine upload corruption installed by a FaultCorrupt
// event. The corruption is a pure function of the broadcast base and the
// honestly trained local parameters, so attacked runs stay bit-reproducible.
type Attack struct {
	// Kind selects the corruption rule.
	Kind AttackKind
	// Factor is AttackScale's delta multiplier; other kinds ignore it.
	Factor float64
}

// apply returns the corrupted upload for the given broadcast base and
// honestly trained local parameters. AttackNone returns local unchanged.
func (a Attack) apply(base, local []float64) []float64 {
	switch a.Kind {
	case AttackSignFlip:
		out := make([]float64, len(local))
		for i := range local {
			out[i] = base[i] - (local[i] - base[i])
		}
		return out
	case AttackScale:
		out := make([]float64, len(local))
		for i := range local {
			out[i] = base[i] + a.Factor*(local[i]-base[i])
		}
		return out
	}
	return local
}

// FaultEvent schedules one fault at a virtual-clock time. Events at time T
// take effect before update arrivals stamped at T, and events sharing a time
// apply in slice order.
type FaultEvent struct {
	// Time is the virtual-clock instant the event fires at (same abstract
	// units as SpeedModel durations and Result.RoundTime). Must be finite
	// and >= 0; events at 0 apply before the initial dispatch wave.
	Time float64
	// Client is the index of the affected client.
	Client int
	// Kind selects what happens to the client.
	Kind FaultKind
	// Attack is the corruption installed by FaultCorrupt events; other
	// kinds ignore it.
	Attack Attack
}

// Faults is the fault-injection schedule of one async run: a list of
// per-client events ordered by the engine's virtual clock, so every faulted
// run is bit-reproducible for any worker count. The zero value injects
// nothing and keeps the engine's historical code path. Faults require the
// seeded virtual clock (the default); AsyncServer.Run rejects a fault
// schedule combined with a wall clock.
type Faults struct {
	// Events is the schedule; AsyncServer.Run sorts a copy stably by Time,
	// so same-time events keep their slice order.
	Events []FaultEvent
	// DownAtStart lists clients that begin the run down (joining later via
	// a FaultJoin event): they are skipped by the initial dispatch wave.
	DownAtStart []int
}

// Empty reports whether the schedule injects nothing.
func (f Faults) Empty() bool { return len(f.Events) == 0 && len(f.DownAtStart) == 0 }

// validate rejects malformed schedules (client out of range, non-finite or
// negative times, unknown kinds, non-finite attack factors) with named
// errors before a run starts.
func (f Faults) validate(n int) error {
	for _, ci := range f.DownAtStart {
		if ci < 0 || ci >= n {
			return fmt.Errorf("federated: faults: DownAtStart client %d out of range [0, %d)", ci, n)
		}
	}
	for i, ev := range f.Events {
		if !(ev.Time >= 0) || math.IsInf(ev.Time, 0) {
			return fmt.Errorf("federated: faults: event %d time %v must be finite and >= 0", i, ev.Time)
		}
		if ev.Client < 0 || ev.Client >= n {
			return fmt.Errorf("federated: faults: event %d client %d out of range [0, %d)", i, ev.Client, n)
		}
		switch ev.Kind {
		case FaultCrash, FaultLeave, FaultJoin:
		case FaultCorrupt:
			switch ev.Attack.Kind {
			case AttackNone, AttackSignFlip:
			case AttackScale:
				if math.IsNaN(ev.Attack.Factor) || math.IsInf(ev.Attack.Factor, 0) {
					return fmt.Errorf("federated: faults: event %d scale factor %v must be finite", i, ev.Attack.Factor)
				}
			default:
				return fmt.Errorf("federated: faults: event %d unknown attack kind %d", i, int(ev.Attack.Kind))
			}
		default:
			return fmt.Errorf("federated: faults: event %d unknown fault kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// faultRun is the mutable per-run state of a fault schedule: the sorted
// event cursor plus each client's liveness, staleness and attack status.
// All mutation happens on the Run loop goroutine.
type faultRun struct {
	events []FaultEvent
	next   int
	down   []bool
	stale  []bool // next dispatch reuses the client's stale broadcast (post-crash rejoin)
	attack []Attack
}

// newFaultRun validates the schedule and builds the run state for n clients.
func newFaultRun(f Faults, n int) (*faultRun, error) {
	if err := f.validate(n); err != nil {
		return nil, err
	}
	events := append([]FaultEvent(nil), f.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	fr := &faultRun{
		events: events,
		down:   make([]bool, n),
		stale:  make([]bool, n),
		attack: make([]Attack, n),
	}
	for _, ci := range f.DownAtStart {
		fr.down[ci] = true
	}
	return fr, nil
}

// process applies every event scheduled at or before virtual time t. Crashes
// mark the client's in-flight job lost, so the harvest loop discards it.
func (fr *faultRun) process(t float64, inflight []*asyncJob) {
	for fr.next < len(fr.events) && fr.events[fr.next].Time <= t {
		ev := fr.events[fr.next]
		fr.next++
		switch ev.Kind {
		case FaultCrash:
			fr.down[ev.Client] = true
			fr.stale[ev.Client] = true
			for _, job := range inflight {
				if job.client == ev.Client {
					job.lost = true
				}
			}
		case FaultLeave:
			fr.down[ev.Client] = true
		case FaultJoin:
			fr.down[ev.Client] = false
		case FaultCorrupt:
			fr.attack[ev.Client] = ev.Attack
		}
	}
}
