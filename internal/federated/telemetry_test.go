package federated

import (
	"testing"

	"repro/internal/telemetry"
)

// TestTelemetryBitIdentical is the observation-only contract at the training
// layer: the same federated run executed with telemetry enabled and disabled
// must land on bitwise-equal global parameters and round curves. The
// instruments may count, gauge and time — they may never touch an RNG or a
// float the training pipeline reads.
func TestTelemetryBitIdentical(t *testing.T) {
	o := DefaultOptions()
	o.Rounds = 3
	o.LocalEpochs = 1

	run := func(enabled bool) *Result {
		t.Helper()
		defer telemetry.SetEnabled(telemetry.SetEnabled(enabled))
		res, err := Run(coraClients(t, 3, 17), 18, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	on := run(true)
	off := run(false)

	if len(on.GlobalParams) != len(off.GlobalParams) {
		t.Fatalf("param dims differ: %d vs %d", len(on.GlobalParams), len(off.GlobalParams))
	}
	for i := range on.GlobalParams {
		if on.GlobalParams[i] != off.GlobalParams[i] {
			t.Fatalf("GlobalParams[%d]: on %v != off %v", i, on.GlobalParams[i], off.GlobalParams[i])
		}
	}
	if len(on.RoundAcc) != len(off.RoundAcc) {
		t.Fatalf("round counts differ: %d vs %d", len(on.RoundAcc), len(off.RoundAcc))
	}
	for r := range on.RoundAcc {
		if on.RoundAcc[r] != off.RoundAcc[r] {
			t.Fatalf("RoundAcc[%d]: on %v != off %v", r, on.RoundAcc[r], off.RoundAcc[r])
		}
	}
}

// TestTelemetryRoundCounter covers the federated families: an enabled run
// advances the rounds counter by its round count and leaves the accuracy
// gauge on the final round's value.
func TestTelemetryRoundCounter(t *testing.T) {
	defer telemetry.SetEnabled(telemetry.SetEnabled(true))
	o := DefaultOptions()
	o.Rounds = 3
	o.LocalEpochs = 1

	before := telRounds.Value()
	res, err := Run(coraClients(t, 3, 19), 20, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := telRounds.Value() - before; got != uint64(o.Rounds) {
		t.Errorf("rounds counter advanced by %d, want %d", got, o.Rounds)
	}
	if want := res.RoundAcc[len(res.RoundAcc)-1]; telRoundAcc.Value() != want {
		t.Errorf("round-accuracy gauge = %v, want final round %v", telRoundAcc.Value(), want)
	}
}
