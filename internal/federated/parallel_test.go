package federated

import (
	"testing"

	"repro/internal/parallel"
)

// runWithWorkers builds a fresh 4-client federation from a fixed seed and
// runs FedAvg under the given worker count.
func runWithWorkers(t *testing.T, workers int) *Result {
	t.Helper()
	orig := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(orig)
	clients := coraClients(t, 4, 11)
	srv := NewServer(clients, 12)
	o := DefaultOptions()
	o.Rounds = 6
	o.LocalEpochs = 2
	o.LocalCorrection = 2
	res, err := srv.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunBitIdenticalAcrossWorkerCounts is the federated determinism
// contract: the concurrent per-client fan-out must reproduce the serial
// run exactly — identical per-round accuracies, per-client accuracies and
// (strongest) bit-identical aggregated global parameters, which implies
// identical local losses as well.
func TestRunBitIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := runWithWorkers(t, 1)
	for _, w := range []int{2, 8} {
		par := runWithWorkers(t, w)
		if par.TestAcc != serial.TestAcc {
			t.Fatalf("workers=%d: TestAcc %v, serial %v", w, par.TestAcc, serial.TestAcc)
		}
		if len(par.RoundAcc) != len(serial.RoundAcc) {
			t.Fatalf("workers=%d: %d rounds, serial %d", w, len(par.RoundAcc), len(serial.RoundAcc))
		}
		for r := range par.RoundAcc {
			if par.RoundAcc[r] != serial.RoundAcc[r] {
				t.Fatalf("workers=%d: round %d acc %v, serial %v", w, r, par.RoundAcc[r], serial.RoundAcc[r])
			}
		}
		for ci := range par.PerClient {
			if par.PerClient[ci] != serial.PerClient[ci] {
				t.Fatalf("workers=%d: client %d acc %v, serial %v", w, ci, par.PerClient[ci], serial.PerClient[ci])
			}
		}
		for i := range par.GlobalParams {
			if par.GlobalParams[i] != serial.GlobalParams[i] {
				t.Fatalf("workers=%d: global param %d = %v, serial %v", w, i, par.GlobalParams[i], serial.GlobalParams[i])
			}
		}
	}
}

// TestRunDeterministicUnderPartialParticipation covers the sampled-client
// path: participation sampling happens on the server goroutine, so worker
// count must not change which clients train.
func TestRunDeterministicUnderPartialParticipation(t *testing.T) {
	run := func(workers int) *Result {
		orig := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(orig)
		clients := coraClients(t, 5, 21)
		srv := NewServer(clients, 22)
		o := DefaultOptions()
		o.Rounds = 5
		o.LocalEpochs = 1
		o.Participation = 0.4
		res, err := srv.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, par := run(1), run(8)
	for i := range par.GlobalParams {
		if par.GlobalParams[i] != serial.GlobalParams[i] {
			t.Fatalf("partial participation: param %d = %v, serial %v", i, par.GlobalParams[i], serial.GlobalParams[i])
		}
	}
	if par.TestAcc != serial.TestAcc {
		t.Fatalf("partial participation: TestAcc %v, serial %v", par.TestAcc, serial.TestAcc)
	}
}
