package federated

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/parallel"
)

// asyncOpts returns a quick protocol routed through the async engine.
func asyncOpts(k int, speed *SpeedModel) Options {
	o := DefaultOptions()
	o.Rounds = 8
	o.LocalEpochs = 2
	o.Async = AsyncOptions{Enabled: true, MinUpdates: k, Speed: speed}
	return o
}

// skewedSpeed is a fleet with one heavy straggler (client 0 runs 8x slower)
// and mild jitter elsewhere.
func skewedSpeed() *SpeedModel {
	return &SpeedModel{Slowdown: []float64{8, 1, 1, 1, 1, 1}, Jitter: 0.1, Seed: 3}
}

// TestAsyncKofNBitIdenticalToSync is the engine's degradation contract:
// with MinUpdates = N (every commit barriers on all participants) and the
// default staleness discount, the async engine must reproduce the
// synchronous reference bit for bit — same global parameters, same round
// curve, same per-client accuracies — regardless of the speed model, which
// can then only relabel the virtual timeline.
func TestAsyncKofNBitIdenticalToSync(t *testing.T) {
	o := asyncOpts(0, skewedSpeed()) // MinUpdates 0 = all participants
	sync, err := NewServer(coraClients(t, 4, 31), 32).Run(o)
	if err != nil {
		t.Fatal(err)
	}
	async, err := NewAsyncServer(coraClients(t, 4, 31), 32).Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(async.GlobalParams) != len(sync.GlobalParams) {
		t.Fatalf("param dims differ: %d vs %d", len(async.GlobalParams), len(sync.GlobalParams))
	}
	for i := range sync.GlobalParams {
		if async.GlobalParams[i] != sync.GlobalParams[i] {
			t.Fatalf("GlobalParams[%d]: async %v != sync %v", i, async.GlobalParams[i], sync.GlobalParams[i])
		}
	}
	if len(async.RoundAcc) != len(sync.RoundAcc) {
		t.Fatalf("round counts differ: %d vs %d", len(async.RoundAcc), len(sync.RoundAcc))
	}
	for r := range sync.RoundAcc {
		if async.RoundAcc[r] != sync.RoundAcc[r] {
			t.Fatalf("RoundAcc[%d]: async %v != sync %v", r, async.RoundAcc[r], sync.RoundAcc[r])
		}
	}
	for ci := range sync.PerClient {
		if async.PerClient[ci] != sync.PerClient[ci] {
			t.Fatalf("PerClient[%d]: async %v != sync %v", ci, async.PerClient[ci], sync.PerClient[ci])
		}
	}
	if async.TestAcc != sync.TestAcc {
		t.Fatalf("TestAcc: async %v != sync %v", async.TestAcc, sync.TestAcc)
	}
	if async.BytesPerRound != sync.BytesPerRound {
		t.Fatalf("BytesPerRound: async %d != sync %d", async.BytesPerRound, sync.BytesPerRound)
	}
	if async.MeanStaleness != 0 {
		t.Fatalf("K=N commits can never be stale, got mean staleness %v", async.MeanStaleness)
	}
	if len(async.RoundTime) != o.Rounds {
		t.Fatalf("async must fill RoundTime, got %d entries", len(async.RoundTime))
	}
}

// TestAsyncKofNPartialParticipationMatchesSync extends the degradation
// contract to sampled participation: the async engine consumes server
// randomness like the synchronous one, so the sampled fleets coincide.
func TestAsyncKofNPartialParticipationMatchesSync(t *testing.T) {
	o := asyncOpts(0, skewedSpeed())
	o.Participation = 0.6
	sync, err := NewServer(coraClients(t, 5, 41), 42).Run(o)
	if err != nil {
		t.Fatal(err)
	}
	async, err := NewAsyncServer(coraClients(t, 5, 41), 42).Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sync.GlobalParams {
		if async.GlobalParams[i] != sync.GlobalParams[i] {
			t.Fatalf("GlobalParams[%d] diverge under partial participation", i)
		}
	}
	if async.TestAcc != sync.TestAcc {
		t.Fatalf("TestAcc: async %v != sync %v", async.TestAcc, sync.TestAcc)
	}
}

// TestAsyncDeterministicAcrossWorkerCounts is the determinism contract: the
// virtual clock, not goroutine scheduling, orders arrivals and commits, so
// -workers 1 and -workers 8 must produce identical results even at K = 1
// (the most schedule-sensitive setting).
func TestAsyncDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers, k int) *Result {
		orig := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(orig)
		res, err := NewAsyncServer(coraClients(t, 5, 51), 52).Run(asyncOpts(k, skewedSpeed()))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, k := range []int{1, 3} {
		serial, par := run(1, k), run(8, k)
		for i := range serial.GlobalParams {
			if serial.GlobalParams[i] != par.GlobalParams[i] {
				t.Fatalf("K=%d: GlobalParams[%d] differ across worker counts", k, i)
			}
		}
		for r := range serial.RoundAcc {
			if serial.RoundAcc[r] != par.RoundAcc[r] {
				t.Fatalf("K=%d: RoundAcc[%d] differs across worker counts", k, r)
			}
			if serial.RoundTime[r] != par.RoundTime[r] {
				t.Fatalf("K=%d: RoundTime[%d] differs across worker counts", k, r)
			}
		}
		if serial.TestAcc != par.TestAcc || serial.MeanStaleness != par.MeanStaleness {
			t.Fatalf("K=%d: summary stats differ across worker counts", k)
		}
	}
}

// TestAsyncKOne exercises the minimum commit threshold: every arrival
// commits a round, the timeline is strictly increasing, and training still
// converges to a sane model.
func TestAsyncKOne(t *testing.T) {
	// Per-arrival commits move the global by one client's data mass at a
	// time (the in-flight anchor holds the rest), so the same optimisation
	// distance needs roughly N times the commits of a synchronous round.
	o := asyncOpts(1, skewedSpeed())
	o.Rounds = 60
	res, err := NewAsyncServer(coraClients(t, 4, 61), 62).Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundAcc) != 60 || len(res.RoundTime) != 60 {
		t.Fatalf("want 60 commits, got %d acc / %d times", len(res.RoundAcc), len(res.RoundTime))
	}
	for r := 1; r < len(res.RoundTime); r++ {
		if res.RoundTime[r] < res.RoundTime[r-1] {
			t.Fatalf("virtual clock ran backwards at commit %d: %v -> %v", r, res.RoundTime[r-1], res.RoundTime[r])
		}
	}
	if res.TestAcc < 0.4 {
		t.Fatalf("K=1 async accuracy %.3f implausibly low", res.TestAcc)
	}
	// With one 8x straggler, K=1 commits are gated by fast clients, so the
	// buffer must have absorbed stale straggler updates along the way.
	if res.MeanStaleness <= 0 {
		t.Fatal("K=1 under an 8x straggler must observe stale updates")
	}
}

// TestAsyncStragglerSlowerThanRound pins the edge the engine exists for: a
// client so slow that entire commit epochs pass while it trains. The run
// must stay deterministic, the straggler's updates must arrive with large
// staleness, and the fleet must not stall on it.
func TestAsyncStragglerSlowerThanRound(t *testing.T) {
	speed := &SpeedModel{Slowdown: []float64{500, 1, 1, 1}, Seed: 7}
	o := asyncOpts(3, speed) // commits need 3 of 4: never wait for the straggler
	o.Rounds = 12
	res, err := NewAsyncServer(coraClients(t, 4, 71), 72).Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundAcc) != 12 {
		t.Fatalf("fleet stalled on the straggler: %d of 12 commits", len(res.RoundAcc))
	}
	// The same schedule must replay exactly.
	res2, err := NewAsyncServer(coraClients(t, 4, 71), 72).Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.GlobalParams {
		if res.GlobalParams[i] != res2.GlobalParams[i] {
			t.Fatal("straggler schedule does not replay deterministically")
		}
	}
	// A 500x straggler finishes its first dispatch after the 12-commit
	// horizon, so commits are carried entirely by the three fast clients.
	if res.MeanStaleness != 0 {
		t.Fatalf("straggler slower than the whole run should never commit, mean staleness %v", res.MeanStaleness)
	}
}

// TestAsyncBeatsSyncWallClockUnderSkew is the engine's reason to exist,
// asserted structurally: under a >= 4x client-speed skew, reaching the same
// commit count costs the synchronous barrier (K = N) a straggler-gated round
// every round, while K < N commits ride the fast clients — so the async
// timeline must finish well ahead of the synchronous one.
func TestAsyncBeatsSyncWallClockUnderSkew(t *testing.T) {
	speed := &SpeedModel{Slowdown: []float64{4, 1, 1, 1, 1}, Seed: 11}
	runK := func(k int) *Result {
		res, err := NewAsyncServer(coraClients(t, 5, 81), 82).Run(asyncOpts(k, speed))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	syncRef, async := runK(0), runK(4) // K=N barrier vs drop-one commits
	syncEnd := syncRef.RoundTime[len(syncRef.RoundTime)-1]
	asyncEnd := async.RoundTime[len(async.RoundTime)-1]
	if asyncEnd >= syncEnd {
		t.Fatalf("async (K=4) simulated end %v not ahead of sync barrier %v", asyncEnd, syncEnd)
	}
	// The barrier pays the 4x straggler every round; K=N-1 should cut the
	// timeline by at least 2x at this skew.
	if asyncEnd > syncEnd/2 {
		t.Fatalf("async end %v should be < half of sync %v under 4x skew", asyncEnd, syncEnd)
	}
}

// TestAsyncZeroEpochConservation checks the staleness-weighted aggregation
// arithmetic with zero local epochs: every update echoes its broadcast, so
// regardless of K, staleness or discounts the normalized weighted mean must
// conserve the initial parameters (the async analogue of the synchronous
// weighted-mean no-op test), and the commit bookkeeping must expose the
// expected staleness trace.
func TestAsyncZeroEpochConservation(t *testing.T) {
	clients := coraClients(t, 2, 91)
	before := append([]float64(nil), nn.Flatten(clients[0].Model)...)
	o := DefaultOptions()
	o.Rounds = 2
	o.LocalEpochs = 0 // updates are exact echoes of the broadcast
	o.Async = AsyncOptions{Enabled: true, MinUpdates: 1, Staleness: 0.5,
		Speed: &SpeedModel{Slowdown: []float64{1, 10}, Seed: 1}}
	res, err := NewAsyncServer(clients, 92).Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundAcc) != 2 {
		t.Fatalf("want 2 commits, got %d", len(res.RoundAcc))
	}
	for i, v := range res.GlobalParams {
		if math.Abs(v-before[i]) > 1e-12 {
			t.Fatalf("zero-epoch async aggregation must conserve parameters: [%d] %v != %v", i, v, before[i])
		}
	}
	// Zero epochs mean zero durations for everyone, so arrivals tie and the
	// dispatch sequence breaks them: commit 1 takes the first initial
	// dispatch (staleness 0), commit 2 the second (staleness 1).
	if res.MeanStaleness != 0.5 {
		t.Fatalf("expected mean staleness (0+1)/2 = 0.5, got %v", res.MeanStaleness)
	}
}
