package federated

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// AggregatorKind selects the server-side rule that combines one commit's
// buffered client updates into the next global model. The zero value is the
// paper's FedAvg weighted mean; the alternatives are the classical
// byzantine-robust statistics evaluated by the chaos scenarios.
type AggregatorKind int

const (
	// AggFedAvg is the data-size-weighted mean of Eq. (4) — the default, and
	// the rule whose code path is bit-identical to the pre-robust engines.
	AggFedAvg AggregatorKind = iota
	// AggMedian takes the unweighted coordinate-wise median of the updates.
	// Aggregation weights (data size, staleness discount) are ignored: the
	// median's breakdown point is what resists sign-flip and scaled-update
	// attackers, and weighting would hand attackers with large subgraphs
	// extra influence back.
	AggMedian
	// AggTrimmedMean sorts each coordinate, drops the
	// floor(TrimFrac × n) most extreme updates from each end, and takes the
	// weighted mean of the survivors. TrimFrac = 0 keeps every update, which
	// makes it FedAvg exactly.
	AggTrimmedMean
)

// String names the aggregator the way flags and bench tables spell it.
func (k AggregatorKind) String() string {
	switch k {
	case AggMedian:
		return "median"
	case AggTrimmedMean:
		return "trim"
	default:
		return "fedavg"
	}
}

// ParseAggregator maps a flag spelling ("fedavg", "median", "trim") to its
// AggregatorKind.
func ParseAggregator(s string) (AggregatorKind, error) {
	switch s {
	case "", "fedavg":
		return AggFedAvg, nil
	case "median":
		return AggMedian, nil
	case "trim", "trimmed", "trimmed-mean":
		return AggTrimmedMean, nil
	}
	return AggFedAvg, fmt.Errorf("federated: robust: unknown aggregator %q (want fedavg, median or trim)", s)
}

// RobustOptions configures the robust-aggregation defences shared by both
// engines (Server and AsyncServer). The zero value is plain FedAvg with no
// clipping and no noise — bit-identical to the engines before these knobs
// existed. Defences compose in a fixed order per commit: each received
// update is norm-clipped against the broadcast it was trained from, the
// selected aggregator combines the clipped updates, and seeded Gaussian
// noise is added to the committed aggregate last.
type RobustOptions struct {
	// Aggregator selects the combination rule (FedAvg mean, coordinate
	// median, or trimmed mean).
	Aggregator AggregatorKind
	// TrimFrac is the per-side trim fraction for AggTrimmedMean in
	// [0, 0.5): floor(TrimFrac × n) updates are dropped from each end of
	// every coordinate's sorted value list. 0 trims nothing. Ignored by the
	// other aggregators.
	TrimFrac float64
	// ClipNorm, when > 0, rescales every committed update so the L2 norm of
	// its delta against the broadcast parameters it was trained from is at
	// most ClipNorm — the standard defence against scaled-update attackers
	// (and the sensitivity bound DP noise calibrates against).
	ClipNorm float64
	// NoiseStd, when > 0, adds zero-mean Gaussian noise with this standard
	// deviation to every coordinate of every committed aggregate, drawn from
	// one seeded stream so runs stay bit-reproducible for any worker count.
	NoiseStd float64
	// NoiseSeed seeds the noise stream; 0 derives a seed from Options.Seed.
	NoiseSeed int64
}

// validate rejects non-finite or out-of-range robustness knobs with named
// errors before a run starts.
func (ro RobustOptions) validate() error {
	switch ro.Aggregator {
	case AggFedAvg, AggMedian, AggTrimmedMean:
	default:
		return fmt.Errorf("federated: robust: unknown aggregator kind %d", ro.Aggregator)
	}
	if !(ro.TrimFrac >= 0 && ro.TrimFrac < 0.5) {
		return fmt.Errorf("federated: robust: TrimFrac %v outside [0, 0.5)", ro.TrimFrac)
	}
	if !(ro.ClipNorm >= 0) || math.IsInf(ro.ClipNorm, 0) {
		return fmt.Errorf("federated: robust: ClipNorm %v must be finite and >= 0", ro.ClipNorm)
	}
	if !(ro.NoiseStd >= 0) || math.IsInf(ro.NoiseStd, 0) {
		return fmt.Errorf("federated: robust: NoiseStd %v must be finite and >= 0", ro.NoiseStd)
	}
	return nil
}

// aggregate combines weighted updates into the next global model with the
// selected rule. updates and weights are parallel and non-empty; for the
// FedAvg kind the accumulation order is exactly the historical inline loop
// (updates in caller order, one running totalW), so zero-valued
// RobustOptions keep both engines bit-identical to their pre-robust code.
func (ro RobustOptions) aggregate(dim int, updates [][]float64, weights []float64) []float64 {
	switch ro.Aggregator {
	case AggMedian:
		return coordinateMedian(dim, updates)
	case AggTrimmedMean:
		return trimmedMean(dim, updates, weights, ro.TrimFrac)
	default:
		return weightedMean(dim, updates, weights)
	}
}

// weightedMean is Eq. (4)'s data-size-weighted mean, accumulated in caller
// order to preserve the engines' historical float summation order.
func weightedMean(dim int, updates [][]float64, weights []float64) []float64 {
	agg := make([]float64, dim)
	var totalW float64
	for u, params := range updates {
		w := weights[u]
		for i, v := range params {
			agg[i] += w * v
		}
		totalW += w
	}
	for i := range agg {
		agg[i] /= totalW
	}
	return agg
}

// coordinateMedian returns the unweighted per-coordinate median (mean of the
// two middle values for even counts).
func coordinateMedian(dim int, updates [][]float64) []float64 {
	agg := make([]float64, dim)
	vals := make([]float64, len(updates))
	for i := 0; i < dim; i++ {
		for u, params := range updates {
			vals[u] = params[i]
		}
		sort.Float64s(vals)
		m := len(vals) / 2
		if len(vals)%2 == 1 {
			agg[i] = vals[m]
		} else {
			agg[i] = (vals[m-1] + vals[m]) / 2
		}
	}
	return agg
}

// trimmedMean sorts each coordinate, drops floor(frac × n) updates from each
// end (capped so at least one survives), and takes the weighted mean of the
// survivors in sorted order.
func trimmedMean(dim int, updates [][]float64, weights []float64, frac float64) []float64 {
	n := len(updates)
	trim := int(frac * float64(n))
	if 2*trim >= n {
		trim = (n - 1) / 2
	}
	if trim == 0 {
		return weightedMean(dim, updates, weights)
	}
	agg := make([]float64, dim)
	type vw struct{ v, w float64 }
	vals := make([]vw, n)
	for i := 0; i < dim; i++ {
		for u, params := range updates {
			vals[u] = vw{params[i], weights[u]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		var sum, totalW float64
		for _, e := range vals[trim : n-trim] {
			sum += e.w * e.v
			totalW += e.w
		}
		agg[i] = sum / totalW
	}
	return agg
}

// clipDelta rescales params in place so the L2 norm of params − base is at
// most limit, and returns the delta norm actually committed (the pre-clip
// norm when it was already within the limit, otherwise limit).
func clipDelta(params, base []float64, limit float64) float64 {
	var ss float64
	for i := range params {
		d := params[i] - base[i]
		ss += d * d
	}
	norm := math.Sqrt(ss)
	if norm <= limit {
		return norm
	}
	scale := limit / norm
	for i := range params {
		params[i] = base[i] + scale*(params[i]-base[i])
	}
	return limit
}

// noiseStream is the seeded Gaussian DP-noise source, consumed once per
// commit in commit order so noisy runs stay bit-reproducible for any worker
// count.
type noiseStream struct {
	std float64
	rng *rand.Rand
}

// newNoiseStream returns the run's noise source, or nil when NoiseStd is 0.
func newNoiseStream(opt Options) *noiseStream {
	if opt.Robust.NoiseStd <= 0 {
		return nil
	}
	seed := opt.Robust.NoiseSeed
	if seed == 0 {
		seed = opt.Seed*7919 + 13
	}
	return &noiseStream{std: opt.Robust.NoiseStd, rng: rand.New(rand.NewSource(seed))}
}

// add perturbs every coordinate of a committed aggregate in place.
func (ns *noiseStream) add(params []float64) {
	for i := range params {
		params[i] += ns.std * ns.rng.NormFloat64()
	}
}
