// Command adafgl-bench regenerates any table or figure of the AdaFGL paper's
// evaluation section from the synthetic benchmark suite.
//
// Usage:
//
//	adafgl-bench -list
//	adafgl-bench -exp table2 -factor 0.3 -rounds 30 -runs 3
//	adafgl-bench -exp all -paper        # full protocol (slow on one CPU)
//	adafgl-bench -exp chaos             # failure scenarios x robust aggregators
//	adafgl-bench -exp table2 -robust median -clip 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/federated"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (table1..table8, fig2..fig11, or 'all')")
		list      = flag.Bool("list", false, "list available experiments")
		paper     = flag.Bool("paper", false, "use the paper-scale protocol (slow)")
		factor    = flag.Float64("factor", 0, "dataset scale factor override")
		clients   = flag.Int("clients", 0, "client count override")
		rounds    = flag.Int("rounds", 0, "federated rounds override")
		epochs    = flag.Int("epochs", 0, "local epochs override")
		runs      = flag.Int("runs", 0, "seeds per cell override")
		seed      = flag.Int64("seed", 0, "base seed override")
		workers   = flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS); results are identical for every value")
		gemmTiles = flag.String("gemm-tiles", "", "blocked GEMM tile sizes \"MC,KC,NC\" (empty = engine defaults); affects speed only (outputs stay within 1e-12)")
		spmmPanel = flag.Int("spmm-panel", 0, "blocked SpMM panel width in sparse columns (0 = engine default); affects speed only (results are bit-identical)")

		async          = flag.Bool("async", false, "run Step-1 federated training on the asynchronous staleness-aware aggregation engine")
		asyncK         = flag.Int("async-k", 0, "async commit threshold K: commit a round once K client updates are buffered (0 or >= participants = full synchronous barrier)")
		asyncStaleness = flag.Float64("async-staleness", 0, "async staleness discount α — an update s rounds stale is weighted α/(1+s) (0 = 1.0, leaving fresh updates undiscounted)")
		asyncWall      = flag.Bool("async-wall", false, "order async arrivals by real training completion (wall clock) instead of the seeded virtual clock; implies -async; not reproducible")

		shardNodes = flag.Int("shard-nodes", 1_000_000, "streamed graph size for the shard scaling experiment")
		shardMax   = flag.Int("shard-max", 8, "largest shard count of the shard experiment's sweep")

		robust    = flag.String("robust", "", "Step-1 robust aggregator: fedavg (default), median, or trim")
		trimFrac  = flag.Float64("trim-frac", 0.2, "trimmed-mean fraction dropped per side when -robust trim (in [0, 0.5))")
		clip      = flag.Float64("clip", 0, "L2 update-norm clipping bound applied to every client update before aggregation (0 = off)")
		dpNoise   = flag.Float64("dp-noise", 0, "seeded Gaussian noise stddev added to the committed global each round (0 = off)")
		noiseSeed = flag.Int64("dp-noise-seed", 0, "noise stream seed (0 = derived from the run seed)")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)
	if err := matrix.SetTilingSpec(*gemmTiles); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *spmmPanel > 0 {
		sparse.SetBlocking(sparse.Blocking{Panel: *spmmPanel})
	}

	if *list {
		for _, id := range bench.IDs() {
			fmt.Printf("%-8s %s\n", id, bench.Experiments[id].Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "missing -exp (try -list)")
		os.Exit(2)
	}

	scale := bench.DefaultScale()
	scale.Factor = 0.3
	scale.Rounds = 30
	scale.Runs = 3
	if *paper {
		scale = bench.PaperScale()
	}
	if *factor > 0 {
		scale.Factor = *factor
	}
	if *clients > 0 {
		scale.Clients = *clients
	}
	if *rounds > 0 {
		scale.Rounds = *rounds
	}
	if *epochs > 0 {
		scale.LocalEpochs = *epochs
	}
	if *runs > 0 {
		scale.Runs = *runs
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	scale.ShardNodes = *shardNodes
	scale.ShardMax = *shardMax
	scale.Async = federated.AsyncOptions{Enabled: *async || *asyncWall, MinUpdates: *asyncK, Staleness: *asyncStaleness}
	if *asyncWall {
		scale.Async.Clock = federated.NewWallClock()
	}
	agg, err := federated.ParseAggregator(*robust)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scale.Robust = federated.RobustOptions{Aggregator: agg, ClipNorm: *clip, NoiseStd: *dpNoise, NoiseSeed: *noiseSeed}
	if agg == federated.AggTrimmedMean {
		scale.Robust.TrimFrac = *trimFrac
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		lines, err := bench.RunExperiment(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
