// Command docslint is the documentation gate of the repository, run by
// `make docs-lint` and the CI docs-lint job. It enforces two tiers:
//
//  1. Every package under internal/ must carry a package comment
//     ("// Package <name> ..." on some file's package clause).
//  2. Strict packages (the shared substrate other layers build on:
//     internal/federated, internal/scenario, internal/sparse,
//     internal/matrix, internal/parallel, the serving surface
//     internal/checkpoint, internal/serve, internal/registry,
//     internal/partition and internal/shard, plus the observability layer
//     internal/telemetry) must additionally document every exported
//     top-level identifier — funcs, methods with exported receivers,
//     types, consts and vars.
//
// Violations are printed one per line as file:line: message and the exit
// status is 1; a clean tree prints nothing and exits 0.
//
// Usage:
//
//	go run ./cmd/docslint [root]
//
// root defaults to ".". Test files and generated assembly stubs are exempt
// from the strict tier only if unexported; exported symbols in build-tagged
// files are checked like any other.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// strictDirs lists the packages whose exported surface must be fully
// documented, relative to the repository root.
var strictDirs = map[string]bool{
	"internal/federated":  true,
	"internal/scenario":   true,
	"internal/sparse":     true,
	"internal/matrix":     true,
	"internal/parallel":   true,
	"internal/checkpoint": true,
	"internal/serve":      true,
	"internal/registry":   true,
	"internal/partition":  true,
	"internal/shard":      true,
	"internal/telemetry":  true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dirs, err := goPackageDirs(filepath.Join(root, "internal"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "docslint:", err)
		os.Exit(2)
	}
	var problems []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			rel = dir
		}
		rel = filepath.ToSlash(rel)
		p, err := lintDir(dir, rel, strictDirs[rel])
		if err != nil {
			fmt.Fprintln(os.Stderr, "docslint:", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "docslint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// goPackageDirs returns every directory under root containing at least one
// non-test .go file.
func goPackageDirs(root string) ([]string, error) {
	set := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		set[filepath.Dir(path)] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(set))
	for d := range set {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// lintDir parses one package directory and reports its documentation
// violations. rel is the root-relative path used in messages; strict adds
// the exported-identifier tier.
func lintDir(dir, rel string, strict bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", rel, err)
	}
	var problems []string
	for name, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.HasPrefix(strings.TrimSpace(f.Doc.Text()), "Package ") {
				hasPkgDoc = true
				break
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment (\"// Package %s ...\")", rel, name, name))
		}
		if !strict {
			continue
		}
		// Deterministic file order for stable output.
		files := make([]string, 0, len(pkg.Files))
		for fname := range pkg.Files {
			files = append(files, fname)
		}
		sort.Strings(files)
		for _, fname := range files {
			problems = append(problems, lintFile(fset, pkg.Files[fname])...)
		}
	}
	return problems, nil
}

// lintFile reports every exported top-level identifier of f that lacks a
// doc comment.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s is undocumented", filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil && exportedRecv(d) == "" {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				name := d.Name.Name
				if d.Recv != nil {
					kind = "method"
					name = exportedRecv(d) + "." + name
				}
				report(d.Pos(), kind, name)
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						report(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					for _, id := range sp.Names {
						if id.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							report(id.Pos(), strings.ToLower(d.Tok.String()), id.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedRecv returns the exported receiver type name of a method, or ""
// for functions and methods on unexported types (whose exported methods are
// not reachable outside the package and are therefore exempt).
func exportedRecv(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers parse as index expressions: T[P] / T[P1, P2].
	switch x := t.(type) {
	case *ast.IndexExpr:
		t = x.X
	case *ast.IndexListExpr:
		t = x.X
	}
	if id, ok := t.(*ast.Ident); ok && id.IsExported() {
		return id.Name
	}
	return ""
}
