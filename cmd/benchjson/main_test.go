package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestParseExtraMetrics pins the custom-metric capture: b.ReportMetric pairs
// after ns/op land in Extra keyed by unit, the allocation columns are
// skipped, and plain benchmark lines carry no Extra map at all.
func TestParseExtraMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.txt")
	text := "goos: linux\n" +
		"BenchmarkTortureOverload-8 \t       1\t  34896874 ns/op\t   5529996 p99-ns\t         0.01562 shed-rate\n" +
		"BenchmarkGEMM/n=128/path=naive-8 \t 100\t 123456 ns/op\t 2048 B/op\t 3 allocs/op\n" +
		"PASS\n"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	results, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d records, want 2", len(results))
	}
	torture := results[0]
	if torture.Op != "TortureOverload" || torture.NsPerOp != 34896874 {
		t.Fatalf("torture record = %+v", torture)
	}
	if torture.Extra["p99-ns"] != 5529996 || torture.Extra["shed-rate"] != 0.01562 {
		t.Fatalf("extra metrics = %v", torture.Extra)
	}
	gemm := results[1]
	if gemm.Extra != nil {
		t.Fatalf("allocation columns must not become extras: %v", gemm.Extra)
	}
}
