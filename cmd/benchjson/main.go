// Command benchjson converts `go test -bench` output into the
// machine-readable bench trajectory artifact BENCH_smoke.json: one record
// per benchmark with the operation, its parameter string, ns/op, and — for
// sweeps that carry a path=<kernel> parameter — the speedup against the
// sibling baseline kernel (path=naive for the GEMM sweep, path=rowstream or
// path=rebuild for the SpMM sweeps, path=single for the serving-batcher
// sweep, path=direct for the registry-routing sweep, path=whole for the
// shard-scale sweep, path=notelemetry for the telemetry-overhead sweep —
// there the enabled row's speedup is its fraction of uninstrumented
// throughput, so values near 1.0 mean the instruments stay inside their
// budget). Custom metrics a
// benchmark emits via b.ReportMetric (e.g. the torture harness's shed-rate
// and p99-ns) land in the record's "extra" map keyed by unit. CI runs it on
// the smoke-bench output so
// the artifact tracks every engine's speedup over time; `make bench` mirrors
// it locally.
//
// Usage:
//
//	benchjson -in bench-smoke.txt -out BENCH_smoke.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark record.
type Result struct {
	// Op is the benchmark name up to the first '/', without the Benchmark
	// prefix (e.g. "SpMM", "GEMM").
	Op string `json:"op"`
	// Size is the sub-benchmark parameter string (e.g.
	// "n=50000/deg=20/cols=64/path=blocked/workers=1"); empty for flat
	// benchmarks.
	Size string `json:"size"`
	// NsPerOp is the measured time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// Speedup is baseline ns/op divided by this record's ns/op, present when
	// a sibling baseline-path record exists (the baseline itself reports 1).
	Speedup float64 `json:"speedup,omitempty"`
	// Extra holds custom metrics the benchmark emitted via b.ReportMetric,
	// keyed by unit (e.g. "shed-rate", "p99-ns"); absent when none were
	// reported. The standard ns/op figure is never duplicated here.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// benchLine matches `BenchmarkFoo/sub-8   	 10	 123456 ns/op ...`,
// capturing the name (GOMAXPROCS suffix stripped), the ns/op figure, and the
// remainder of the line (custom b.ReportMetric pairs).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// metricPair matches one `<value> <unit>` custom-metric token after ns/op.
var metricPair = regexp.MustCompile(`([0-9.eE+-]+) ([^\s]+)`)

// baselinePaths are the path= values treated as the reference kernel of
// their sweep.
var baselinePaths = map[string]bool{"naive": true, "rowstream": true, "rebuild": true, "single": true, "direct": true, "whole": true, "notelemetry": true}

func main() {
	in := flag.String("in", "bench-smoke.txt", "go test -bench output to parse")
	out := flag.String("out", "BENCH_smoke.json", "JSON artifact to write")
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	results, err := Parse(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	FillSpeedups(results)

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(results), *out)
}

// Parse extracts benchmark records from go test -bench output.
func Parse(f *os.File) ([]*Result, error) {
	var results []*Result
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %v", sc.Text(), err)
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		op, size, _ := strings.Cut(name, "/")
		r := &Result{Op: op, Size: size, NsPerOp: ns}
		for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil || pair[2] == "B/op" || pair[2] == "allocs/op" {
				continue
			}
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[pair[2]] = v
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// FillSpeedups computes per-record speedups against the baseline kernel of
// each sweep group: records sharing (op, parameters minus the path= and
// tiles= tokens) form a group, and the group's path∈baselinePaths record
// supplies the reference ns/op every sibling is divided into.
func FillSpeedups(results []*Result) {
	base := make(map[string]float64)
	for _, r := range results {
		key, path := groupKey(r)
		if baselinePaths[path] {
			base[key] = r.NsPerOp
		}
	}
	for _, r := range results {
		key, path := groupKey(r)
		if path == "" {
			continue
		}
		if b, ok := base[key]; ok && r.NsPerOp > 0 {
			r.Speedup = b / r.NsPerOp
		}
	}
}

// groupKey strips the path= and tiles= tokens from a record's parameters,
// returning the residual key and the path value.
func groupKey(r *Result) (key, path string) {
	var rest []string
	for _, tok := range strings.Split(r.Size, "/") {
		switch {
		case strings.HasPrefix(tok, "path="):
			path = strings.TrimPrefix(tok, "path=")
		case strings.HasPrefix(tok, "tiles="):
			// Tile configs compare against the single untiled baseline.
		default:
			rest = append(rest, tok)
		}
	}
	return r.Op + "|" + strings.Join(rest, "/"), path
}
