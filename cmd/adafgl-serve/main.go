// Command adafgl-serve serves node-classification queries from trained
// AdaFGL model checkpoints over HTTP. It fronts a model registry
// (internal/registry): one or many checkpoint artifacts keyed by
// name@version, each lazily started as a batching inference server
// (internal/serve) under an LRU bound, with zero-downtime version swaps and
// an A/B traffic splitter.
//
// Usage:
//
//	adafgl-serve -ckpt model.ckpt -addr :8080
//	adafgl-serve -model-dir zoo/ -default-model adafgl
//	adafgl-serve -model-dir zoo/ -batch 128 -batch-wait 1ms -max-loaded 2
//
// -ckpt registers a single artifact (filename stem "name@3.ckpt" carries the
// name and version; a bare stem is version 1). -model-dir scans a directory
// of *.ckpt artifacts. Both may be combined. The directory scan is lenient by
// default: unreadable or corrupt artifacts are quarantined (logged at
// startup, listed under "quarantined" in GET /v1/models) and the healthy rest
// serve; -strict-scan restores fail-fast startup.
//
// Resilience knobs: -max-pending bounds the per-model admission queue (excess
// requests shed with 503 + Retry-After), -request-timeout enforces a
// server-side deadline (504), and -breaker-threshold/-breaker-backoff/
// -breaker-max-backoff govern the per-model circuit breaker (consecutive
// failures trip the model; it fails fast with 503 until a jittered,
// exponentially growing window elapses and a half-open probe succeeds).
// -read-header-timeout, -read-timeout and -idle-timeout harden the listener
// against slow or stuck connections.
//
// Observability: logs go to stderr via log/slog (-log-format json switches to
// one JSON object per line); 5xx responses are logged with the request's
// trace ID (X-Trace-Id, honoured when the client sends one). GET /v1/metrics
// exposes the process-wide telemetry registry in Prometheus text format,
// including Go runtime gauges. -pprof-addr starts a side listener with the
// standard net/http/pprof handlers plus GET /debug/runtime, a JSON snapshot
// of every scalar runtime/metrics sample. Telemetry never alters results:
// predictions are bit-identical with it enabled or disabled.
//
// Endpoints (see internal/registry for the full contract):
//
//	GET  /v1/models                      registered artifacts + metadata
//	GET  /v1/models/{model}/predict      ?node=3 | ?nodes=1,2,3
//	POST /v1/models/{model}/predict      {"nodes":[...]} or {"all":true}
//	GET  /v1/models/{model}/predict/all
//	GET  /v1/models/{model}/stats        per-version counters + live snapshot
//	POST /v1/models/{model}/swap         {"version":2} zero-downtime swap
//	POST /v1/ab                          {"control":...,"candidate":...,"fraction":0.5}
//	GET  /v1/ab/report                   online accuracy/latency per arm
//	GET  /v1/healthz                     fleet liveness (always 200) + readiness summary
//	GET  /v1/readyz                      readiness probe (503 until something can serve)
//	GET  /v1/metrics                     Prometheus text exposition
//
//	/predict, /predict/all, /healthz, /stats — deprecated aliases onto the
//	default model (Deprecation + Link headers point at the v1 successors).
//
// On SIGINT/SIGTERM the listener stops accepting, in-flight HTTP requests
// get a grace period, and every model's batch queue is drained before exit —
// no admitted query is dropped.
//
// Produce checkpoints with examples/quickstart -save or examples/model-zoo,
// or any training run via checkpoint.FromResult.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/parallel"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// newLogger builds the process logger on stderr in the selected format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

// statusWriter captures the response status so the error log can report it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// logErrors logs every 5xx response with its trace ID. It wraps OUTSIDE the
// registry handler, whose TraceHTTP middleware stamps X-Trace-Id on the
// response before the handlers run, so the ID is available here afterwards.
func logErrors(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		if sw.status >= 500 {
			logger.Error("request failed",
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"trace", w.Header().Get(telemetry.TraceHeader))
		}
	})
}

// pprofMux builds the -pprof-addr side surface: the standard net/http/pprof
// handlers plus a JSON snapshot of every scalar runtime/metrics sample.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(telemetry.RuntimeSnapshot())
	})
	return mux
}

func main() {
	var (
		ckptPath     = flag.String("ckpt", "", "single checkpoint file to register (stem \"name@3.ckpt\" sets name and version)")
		modelDir     = flag.String("model-dir", "", "directory of *.ckpt artifacts to register")
		defaultModel = flag.String("default-model", "", "model answering the legacy flat routes (default: the sole registered name)")
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		batch        = flag.Int("batch", serve.DefaultMaxBatch, "max queried nodes coalesced per batch window (1 disables batching)")
		batchWait    = flag.Duration("batch-wait", serve.DefaultMaxWait, "max time the first request of a window waits for company (0 = flush as soon as the queue drains)")
		workers      = flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS); results are identical for every value")
		maxLoaded    = flag.Int("max-loaded", registry.DefaultMaxLoaded, "max concurrently started model servers (LRU drains idle ones)")
		grace        = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight HTTP requests")

		maxPending  = flag.Int("max-pending", serve.DefaultMaxPending, "admission-control budget: max queued nodes per model before sheds (503); negative disables")
		reqTimeout  = flag.Duration("request-timeout", 0, "server-side deadline per predict request (504 past it); 0 disables, explicit client deadlines still apply")
		strictScan  = flag.Bool("strict-scan", false, "fail startup on any unreadable -model-dir artifact instead of quarantining it")
		brkThresh   = flag.Int("breaker-threshold", registry.DefaultBreakerThreshold, "consecutive model failures before the circuit breaker trips; negative disables")
		brkBackoff  = flag.Duration("breaker-backoff", registry.DefaultBreakerBackoff, "initial trip window (doubles per re-trip, jittered, capped by -breaker-max-backoff)")
		brkBackMax  = flag.Duration("breaker-max-backoff", registry.DefaultBreakerMaxBackoff, "upper bound on the breaker trip window")
		readHdrWait = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout: max wait for request headers (slowloris guard)")
		readWait    = flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout: max wait for a full request read")
		idleWait    = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout: max keep-alive idle time per connection")

		logFormat = flag.String("log-format", "text", "log output format: text or json (one object per line)")
		pprofAddr = flag.String("pprof-addr", "", "side listen address for net/http/pprof and /debug/runtime (empty disables)")
	)
	flag.Parse()
	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	slog.SetDefault(logger)
	parallel.SetWorkers(*workers)
	telemetry.RegisterRuntimeGauges(telemetry.Default())
	if *ckptPath == "" && *modelDir == "" {
		fmt.Fprintln(os.Stderr, "missing -ckpt or -model-dir")
		flag.Usage()
		os.Exit(2)
	}

	reg := registry.New(registry.Options{
		Serve: serve.Options{
			MaxBatch:       *batch,
			MaxWait:        *batchWait,
			MaxPending:     *maxPending,
			RequestTimeout: *reqTimeout,
		},
		MaxLoaded:    *maxLoaded,
		DefaultModel: *defaultModel,
		LenientScan:  !*strictScan,
		Breaker: registry.BreakerOptions{
			Threshold:  *brkThresh,
			Backoff:    *brkBackoff,
			MaxBackoff: *brkBackMax,
		},
	})
	start := time.Now()
	if *modelDir != "" {
		if _, err := reg.LoadDir(*modelDir); err != nil {
			logger.Error("model-dir scan failed", "dir", *modelDir, "error", err)
			os.Exit(1)
		}
		for _, q := range reg.Quarantined() {
			logger.Warn("quarantined artifact",
				"path", q.Path, "reason", q.Reason, "error", q.Error)
		}
	}
	if *ckptPath != "" {
		if _, err := reg.AddFile(*ckptPath); err != nil {
			logger.Error("checkpoint load failed", "path", *ckptPath, "error", err)
			os.Exit(1)
		}
	}
	infos := reg.List()
	for _, info := range infos {
		logger.Info("registered model",
			"model", fmt.Sprintf("%s@%d", info.Name, info.Version),
			"active", info.Active, "arch", info.Arch,
			"nodes", info.Nodes, "classes", info.Classes,
			"params", info.Params, "path", info.Path)
	}
	logger.Info("registry ready",
		"artifacts", len(infos),
		"elapsed", time.Since(start).Round(time.Millisecond).String(),
		"max_loaded", *maxLoaded, "batch", *batch, "batch_wait", batchWait.String())

	if *pprofAddr != "" {
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: pprofMux(), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "addr", *pprofAddr, "error", err)
			}
		}()
		logger.Info("pprof listening", "addr", *pprofAddr)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           logErrors(logger, reg.Handler()),
		ReadHeaderTimeout: *readHdrWait,
		ReadTimeout:       *readWait,
		IdleTimeout:       *idleWait,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	select {
	case err := <-errc:
		logger.Error("listener failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, give in-flight HTTP requests a
	// deadline, then drain every model's batch queue via the registry.
	logger.Info("shutting down", "grace", grace.String())
	shutCtx, shutCancel := context.WithTimeout(context.Background(), *grace)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "error", err)
	}
	reg.Close()
	logger.Info("drained; bye")
}
